//! # camp-bench — figure/table reproduction harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). Each harness prints the series the paper reports, with a
//! `paper≈` annotation giving the published value where one exists, so
//! EXPERIMENTS.md can record shape agreement.
//!
//! Shared conventions:
//!
//! * problems larger than the MAC budget are clamped
//!   structure-preservingly (identical across methods — normalized
//!   metrics unaffected); set `CAMP_MAC_BUDGET` (MACs) to change the
//!   default of 32 M, e.g. `CAMP_MAC_BUDGET=200000000` for longer runs;
//! * speedups are clock-cycle ratios against OpenBLAS-SGEMM-like on the
//!   A64FX-like core (Figs. 13/14/18, Table 1) or BLIS-int32 on the edge
//!   core (Fig. 12), exactly as in the paper.

use camp_gemm::{simulate_gemm, GemmOptions, GemmResult, Method};
use camp_models::GemmShape;
use camp_pipeline::CoreConfig;

/// MAC budget for harness runs (env `CAMP_MAC_BUDGET`, default 32 M).
pub fn mac_budget() -> u64 {
    std::env::var("CAMP_MAC_BUDGET").ok().and_then(|s| s.parse().ok()).unwrap_or(32_000_000)
}

/// Default harness options (verification off — correctness is covered by
/// the test suite; harness runs measure performance).
pub fn harness_options() -> GemmOptions {
    GemmOptions { mac_budget: mac_budget(), verify: false, ..GemmOptions::default() }
}

/// Simulate one method on one shape with harness options.
pub fn run(core: CoreConfig, method: Method, shape: GemmShape) -> GemmResult {
    simulate_gemm(core, method, shape.m, shape.n, shape.k, &harness_options())
}

/// The six methods of Fig. 13/14, in legend order.
pub fn fig13_methods() -> [Method; 6] {
    [
        Method::Camp4,
        Method::Camp8,
        Method::HandvInt8,
        Method::Gemmlowp,
        Method::HandvInt32,
        Method::OpenblasF32,
    ]
}

/// Format a speedup column.
pub fn fmt_x(v: f64) -> String {
    format!("{v:5.2}x")
}

/// Print a standard header block for a harness.
pub fn header(id: &str, what: &str) {
    println!("==============================================================");
    println!("{id}: {what}");
    println!("mac_budget={} (set CAMP_MAC_BUDGET to change)", mac_budget());
    println!("==============================================================");
}
