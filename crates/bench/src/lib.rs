//! # camp-bench — figure/table reproduction harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index). Each harness prints the series the paper reports, with a
//! `paper≈` annotation giving the published value where one exists, so
//! EXPERIMENTS.md can record shape agreement.
//!
//! Shared conventions:
//!
//! * problems larger than the MAC budget are clamped
//!   structure-preservingly (identical across methods — normalized
//!   metrics unaffected); set `CAMP_MAC_BUDGET` (MACs) to change the
//!   default of 32 M, e.g. `CAMP_MAC_BUDGET=200000000` for longer runs;
//! * speedups are clock-cycle ratios against OpenBLAS-SGEMM-like on the
//!   A64FX-like core (Figs. 13/14/18, Table 1) or BLIS-int32 on the edge
//!   core (Fig. 12), exactly as in the paper.

use camp_core::WorkerPool;
use camp_gemm::{
    simulate_gemm_batch_on, simulate_gemm_on, GemmOptions, GemmProblem, GemmResult, Method,
    SerialScheduler, SimBatchResult, SimScheduler,
};
use camp_models::GemmShape;
use camp_pipeline::CoreConfig;

/// MAC budget for harness runs (env `CAMP_MAC_BUDGET`, default 32 M).
pub fn mac_budget() -> u64 {
    std::env::var("CAMP_MAC_BUDGET").ok().and_then(|s| s.parse().ok()).unwrap_or(32_000_000)
}

/// Simulator scheduler threads for harness runs: `--sim-threads N` (or
/// `--sim-threads=N`) on the command line, else the unified
/// `CAMP_SIM_THREADS` story ([`camp_core::backend::sim_threads_from_env`]:
/// unset = 1/serial, `0` = all cores). Results are bit-identical at any
/// value; only wall-clock changes.
pub fn sim_threads() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--sim-threads" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return camp_core::backend::resolve_threads(v);
            }
        } else if let Some(v) = a.strip_prefix("--sim-threads=").and_then(|v| v.parse().ok()) {
            return camp_core::backend::resolve_threads(v);
        }
    }
    camp_core::backend::sim_threads_from_env()
}

/// The harness-side simulated-GeMM runner: owns the worker pool the
/// driver's independent (jc, pc) block units (and batch items) are
/// scheduled on. `--sim-threads 1` (the default) runs serially with no
/// pool; any thread count produces bit-identical results (the driver's
/// decomposition, not the scheduler, defines them), so the flag only
/// buys wall-clock on paper-fidelity sweeps.
pub struct SimRunner {
    threads: usize,
    pool: Option<WorkerPool>,
}

impl SimRunner {
    /// A runner honoring [`sim_threads`] (CLI flag / env / default 1).
    pub fn from_cli() -> Self {
        SimRunner::with_threads(sim_threads())
    }

    /// A runner with an explicit thread count (0 and 1 both mean
    /// serial).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        SimRunner { threads, pool: (threads > 1).then(|| WorkerPool::new(threads)) }
    }

    /// Scheduler threads (1 = serial, no pool spawned).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The scheduler simulated work runs on.
    pub fn scheduler(&self) -> &dyn SimScheduler {
        match &self.pool {
            Some(pool) => pool,
            None => &SerialScheduler,
        }
    }

    /// Simulate one blocked GeMM on this runner's scheduler. The
    /// result is reframed to the single-core view
    /// ([`GemmResult::into_single_core`]): harness binaries quote the
    /// paper's single-core cycle counts, GOPS, busy and stall *rates*,
    /// so their `stats.cycles` must be the serialized sum, not the
    /// max-across-lanes parallel model (which stays available through
    /// the `camp_gemm` API directly).
    pub fn simulate(
        &self,
        core: CoreConfig,
        method: Method,
        m: usize,
        n: usize,
        k: usize,
        opts: &GemmOptions,
    ) -> GemmResult {
        simulate_gemm_on(core, method, m, n, k, opts, self.scheduler()).into_single_core()
    }

    /// Simulate a batch of [`GemmProblem`]s on this runner's scheduler.
    pub fn simulate_batch(
        &self,
        core: CoreConfig,
        problems: &[GemmProblem<'_>],
        opts: &GemmOptions,
    ) -> SimBatchResult {
        simulate_gemm_batch_on(core, problems, opts, self.scheduler())
    }

    /// [`SimRunner::simulate`] with harness options on `shape`.
    pub fn run(&self, core: CoreConfig, method: Method, shape: GemmShape) -> GemmResult {
        self.simulate(core, method, shape.m, shape.n, shape.k, &harness_options())
    }
}

/// Default harness options (verification off — correctness is covered by
/// the test suite; harness runs measure performance).
pub fn harness_options() -> GemmOptions {
    GemmOptions { mac_budget: mac_budget(), verify: false, ..GemmOptions::default() }
}

/// The six methods of Fig. 13/14, in legend order.
pub fn fig13_methods() -> [Method; 6] {
    [
        Method::Camp4,
        Method::Camp8,
        Method::HandvInt8,
        Method::Gemmlowp,
        Method::HandvInt32,
        Method::OpenblasF32,
    ]
}

/// Format a speedup column.
pub fn fmt_x(v: f64) -> String {
    format!("{v:5.2}x")
}

/// Print a standard header block for a harness.
pub fn header(id: &str, what: &str) {
    println!("==============================================================");
    println!("{id}: {what}");
    println!("mac_budget={} (set CAMP_MAC_BUDGET to change)", mac_budget());
    println!("sim_threads={} (pass --sim-threads N; results are identical)", sim_threads());
    println!("==============================================================");
}
