//! Fig. 4: functional-unit busy rate of the vector baselines (ulmBLAS
//! hand-vectorized vs gemmlowp) across the CNN-layer GeMMs, sorted by
//! operation count — the "inadequate number of functional units"
//! motivation (§2.3).

use camp_bench::{header, SimRunner};
use camp_gemm::Method;
use camp_models::cnn;
use camp_pipeline::{CoreConfig, FuKind};

fn main() {
    header("Fig. 4", "Baseline vector-FU busy rate vs #operations (A64FX core)");
    let sim = SimRunner::from_cli();
    let mut layers = cnn::all_cnn_layers();
    layers.sort_by_key(|(_, _, s)| s.ops());

    println!(
        "{:>10} {:>14} {:>14}   paper: both >0.9 on compute-bound layers",
        "GOPs", "ulmBLAS busy", "gemmlowp busy"
    );
    for (_, _, shape) in layers {
        let ulm = sim.run(CoreConfig::a64fx(), Method::HandvInt8, shape);
        let lowp = sim.run(CoreConfig::a64fx(), Method::Gemmlowp, shape);
        // vector arithmetic pipes (2 per core): MUL class carries the MACs
        let b1 = ulm.stats.fu_busy_rate(FuKind::VMul, 2) + ulm.stats.fu_busy_rate(FuKind::VAlu, 2);
        let b2 =
            lowp.stats.fu_busy_rate(FuKind::VMul, 2) + lowp.stats.fu_busy_rate(FuKind::VAlu, 2);
        println!("{:>10.2} {:>14.2} {:>14.2}", shape.ops() as f64 / 1e9, b1.min(1.0), b2.min(1.0));
    }
}
