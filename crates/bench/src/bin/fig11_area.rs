//! Fig. 11 / §6.1: CAMP block area and overhead vs the A64FX core
//! (TSMC 7 nm) and the Sargantana SoC (GF 22FDX), from the analytic
//! gate model.

use camp_bench::header;
use camp_energy::{AreaModel, TechNode};

fn main() {
    header("Fig. 11 / §6.1", "CAMP physical design: area and overhead");
    let model = AreaModel::paper();
    println!("gate inventory: {:.0} NAND2-equivalents", model.gates());
    println!();
    println!("{:12} {:>12} {:>12} {:>24}", "node", "area mm²", "overhead", "paper");
    for (node, paper_mm2, paper_ovh) in
        [(TechNode::tsmc7(), 0.027263, "1% of A64FX core"), (TechNode::gf22(), 0.0782, "4% of SoC")]
    {
        let r = model.report(node);
        println!(
            "{:12} {:>12.4} {:>11.1}% {:>14.4} mm², {}",
            node.name, r.mm2, r.overhead_pct, paper_mm2, paper_ovh
        );
    }
}
