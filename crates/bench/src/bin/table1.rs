//! Table 1: speedup of Int8/Int4 matrix multiplication over FP32 for
//! 512×512 square matrices, per architecture.
//!
//! The ARM/Intel commercial rows are cited from the paper (we cannot run
//! SME/AVX silicon); the CAMP rows are measured on our simulators.

use camp_bench::{harness_options, header, SimRunner};
use camp_gemm::Method;
use camp_pipeline::CoreConfig;

fn main() {
    header("Table 1", "Int8/Int4 speedup over FP32, SMM 512");
    let opts = harness_options();
    let sim = SimRunner::from_cli();
    let (m, n, k) = (512, 512, 512);

    // cited rows
    println!("{:24} {:>8} {:>8} {:>8}   (source)", "Architecture", "FP32", "Int8", "Int4");
    println!("{:24} {:>8} {:>8} {:>8}   cited", "ARMv8+SVE", "1x", "✗", "✗");
    println!("{:24} {:>8} {:>8} {:>8}   cited", "ARMv9+SME", "1x", "2x", "✗");
    println!("{:24} {:>8} {:>8} {:>8}   cited", "Intel AVX+IFMA", "1x", "4.5x", "✗");

    // measured: ARM-SVE/CAMP vs its own FP32 baseline
    let a64 = CoreConfig::a64fx();
    let fp32 = sim.simulate(a64, Method::OpenblasF32, m, n, k, &opts);
    let i8 = sim.simulate(a64, Method::Camp8, m, n, k, &opts);
    let i4 = sim.simulate(a64, Method::Camp4, m, n, k, &opts);
    println!(
        "{:24} {:>8} {:>7.1}x {:>7.1}x   measured (paper: 7.4x / 12.4x)",
        "ARMv8+SVE/CAMP",
        "1x",
        fp32.stats.cycles as f64 / i8.stats.cycles as f64,
        fp32.stats.cycles as f64 / i4.stats.cycles as f64,
    );

    // measured: RISC-V/CAMP vs an edge FP32-class baseline. The edge SoC
    // has no FP32 vector GeMM library; the paper normalizes against its
    // 32-bit path, which BLIS-int32 (= handv-int32 on the edge core)
    // represents.
    let edge = CoreConfig::edge_riscv();
    let base = sim.simulate(edge, Method::HandvInt32, m, n, k, &opts);
    let e8 = sim.simulate(edge, Method::Camp8, m, n, k, &opts);
    let e4 = sim.simulate(edge, Method::Camp4, m, n, k, &opts);
    println!(
        "{:24} {:>8} {:>7.1}x {:>7.1}x   measured (paper: 14.1x / 25.1x)",
        "RISC-V/CAMP",
        "1x",
        base.stats.cycles as f64 / e8.stats.cycles as f64,
        base.stats.cycles as f64 / e4.stats.cycles as f64,
    );
}
