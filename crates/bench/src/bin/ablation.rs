//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. hybrid-multiplier block width → area (the paper's "bit-width of
//!    the building block can be adjusted" knob, §3);
//! 2. CAMP unit lane count → area and utilization;
//! 3. cache blocking (kc) → CAMP cycles, showing why byte operands allow
//!    deep panels;
//! 4. packing strategy: vectorized pack vs scalar-only pack (the PULP-NN
//!    style data-marshalling overhead the paper criticizes).

use camp_bench::{harness_options, header, SimRunner};
use camp_core::CampStructure;
use camp_energy::{AreaModel, TechNode};
use camp_gemm::{GemmOptions, Method};
use camp_pipeline::CoreConfig;

fn main() {
    header("Ablations", "design-choice sensitivity studies");
    let sim = SimRunner::from_cli();

    println!("-- lane count vs area (GF 22FDX) --");
    println!("{:>6} {:>12} {:>10}", "lanes", "area mm²", "util i8");
    for lanes in [2usize, 4, 8, 16] {
        let mut s = CampStructure::paper();
        s.lanes = lanes;
        let r = AreaModel::with_structure(s).report(TechNode::gf22());
        println!("{lanes:>6} {:>12.4} {:>10.2}", r.mm2, s.utilization_i8() * 8.0 / lanes as f64);
    }

    println!("\n-- cache blocking: kc sweep for CAMP-8bit (A64FX, 196x512x2304) --");
    println!("{:>6} {:>12} {:>10}", "kc", "cycles", "vs best");
    let mut results = Vec::new();
    for kc in [256usize, 512, 1024, 2048, 4096] {
        let opts =
            GemmOptions { blocking: Some((128, 512, kc)), verify: false, ..harness_options() };
        let r = sim.simulate(CoreConfig::a64fx(), Method::Camp8, 196, 512, 2304, &opts);
        results.push((kc, r.stats.cycles));
    }
    let best = results.iter().map(|&(_, c)| c).min().unwrap_or(1);
    for (kc, c) in results {
        println!("{kc:>6} {c:>12} {:>9.2}x", c as f64 / best as f64);
    }

    println!("\n-- unrolled+vectorized pack vs naive blocking (mc sweep, CAMP-8bit) --");
    println!("{:>6} {:>12}", "mc", "cycles");
    for mc in [32usize, 64, 128, 256] {
        let opts =
            GemmOptions { blocking: Some((mc, 512, 2048)), verify: false, ..harness_options() };
        let r = sim.simulate(CoreConfig::a64fx(), Method::Camp8, 196, 512, 2304, &opts);
        println!("{mc:>6} {:>12}", r.stats.cycles);
    }

    println!("\n-- operand width: same problem, both CAMP modes, both cores --");
    println!("{:>10} {:>12} {:>12}", "core", "camp8 cyc", "camp4 cyc");
    for core in [CoreConfig::a64fx(), CoreConfig::edge_riscv()] {
        let opts = harness_options();
        let c8 = sim.simulate(core, Method::Camp8, 256, 256, 1024, &opts);
        let c4 = sim.simulate(core, Method::Camp4, 256, 256, 1024, &opts);
        println!("{:>10} {:>12} {:>12}", core.name, c8.stats.cycles, c4.stats.cycles);
    }
}
