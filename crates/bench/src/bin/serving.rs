//! Serving-path shootout on repeated BERT-base attention batches,
//! through the unified request API: per-call loop vs batched vs
//! submit/poll session with registered weights.
//!
//! A serving workload answers the *same* model's attention inventory
//! over and over — the weights never change, only the activations. The
//! three contenders pay different per-batch overheads:
//!
//! * **per-call loop** — one `CampBackend::execute` per request:
//!   thread fan-out and B re-packing on every single GeMM;
//! * **batched** — one `CampBackend::execute_batch` per batch: fan-out
//!   once per batch, each unique B packed once *per batch* (re-packed
//!   every repetition);
//! * **session** — weights registered once up front
//!   (`register_weights`), request batches streamed through
//!   `Session::submit` with several in flight: zero B-packing per
//!   batch, and the staging thread pre-packs batch N+1's activations
//!   while batch N computes.
//!
//! Results are checked bit-identical before timing; throughput is
//! reported in requests (GeMMs) per second. Knobs: `CAMP_THREADS` (the
//! unified thread story — see `camp_core::backend`), `CAMP_BENCH_REPS`,
//! `CAMP_SERVING_BATCHES`, and `CAMP_SERVING_SMOKE=1` shrinks
//! everything to a one-iteration CI smoke run.
//!
//! After the shootout, the **multi-tenant dispatcher sweep** measures
//! the `camp_core::dispatch::Dispatcher` under open-loop arrival: N
//! tenant threads (alternating decode/prefill priority) each submit
//! request batches on a fixed arrival schedule calibrated to one
//! tenant's closed-loop service rate, so offered load scales with N
//! while batch latency is charged from the *scheduled* arrival — queue
//! time included, saturation retries included. Results land in
//! `BENCH_serving.json` (p50/p99 batch latency + achieved req/s per
//! session count); `serving --check-baseline` re-runs the smoke-sized
//! sweep and exits 1 if achieved throughput falls below the checked-in
//! baseline row by more than `CAMP_BENCH_TOLERANCE` (relative,
//! default 0.5).

use camp_core::backend::CampBackend;
use camp_core::{
    CampEngine, DType, DispatchOptions, DispatchSession, Dispatcher, GemmRequest, Priority,
    RequestError, StealPolicy, TicketId,
};
use camp_models::LlmModel;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Best-of-`reps` wall time in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn req_per_sec(requests: usize, secs: f64) -> f64 {
    requests as f64 / secs
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// One measured point of the multi-tenant sweep: `mode` + `sessions`
/// is the row key the baseline gate matches on.
struct ServingRow {
    mode: &'static str,
    sessions: usize,
    gemms_per_batch: usize,
    batches_per_tenant: usize,
    req_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    rejected: u64,
    stolen: u64,
}

/// One tenant under open-loop arrival: submit a batch every `interval`
/// from the tenant's own clock, charging each batch's latency from its
/// *scheduled* arrival (queueing delay included). A `Saturated`
/// rejection collects the oldest in-flight batch to make room and
/// retries — the retry wait is part of the rejected batch's latency.
fn tenant_loop(
    mut session: DispatchSession<CampEngine>,
    reqs: Vec<GemmRequest>,
    batches: usize,
    interval: Duration,
    prio: Priority,
) -> (Vec<f64>, u64) {
    let start = Instant::now();
    let mut lats = Vec::with_capacity(batches);
    let mut inflight: VecDeque<(TicketId, Instant)> = VecDeque::new();
    let mut rejected = 0u64;
    let collect_head = |session: &mut DispatchSession<CampEngine>,
                        inflight: &mut VecDeque<(TicketId, Instant)>,
                        lats: &mut Vec<f64>| {
        let (t, scheduled) = inflight.pop_front().expect("in-flight batch to collect");
        session.wait(t).expect("serving batch completes");
        lats.push(scheduled.elapsed().as_secs_f64());
    };
    for i in 0..batches {
        let scheduled = start + interval.mul_f64(i as f64);
        while Instant::now() < scheduled {
            std::hint::spin_loop();
        }
        loop {
            // drain already-finished heads so latency stamps stay fresh
            while let Some(&(t, scheduled)) = inflight.front() {
                match session.poll(t) {
                    Some(out) => {
                        out.expect("serving batch completes");
                        lats.push(scheduled.elapsed().as_secs_f64());
                        inflight.pop_front();
                    }
                    None => break,
                }
            }
            match session.submit_with(reqs.clone(), prio, None) {
                Ok(t) => {
                    inflight.push_back((t, scheduled));
                    break;
                }
                Err(RequestError::Saturated { .. }) => {
                    rejected += 1;
                    collect_head(&mut session, &mut inflight, &mut lats);
                }
                Err(e) => panic!("serving submission failed: {e}"),
            }
        }
    }
    while !inflight.is_empty() {
        collect_head(&mut session, &mut inflight, &mut lats);
    }
    (lats, rejected)
}

fn percentile_ms(sorted: &[f64], pct: usize) -> f64 {
    sorted[(sorted.len() - 1) * pct / 100] * 1e3
}

/// The multi-tenant dispatcher sweep for one workload `mode`: calibrate
/// a closed-loop service time, then measure each session count under
/// open-loop arrival at one offered batch per tenant per service time
/// (offered load scales with N, so the sweep walks into saturation).
fn dispatcher_sweep(
    mut engine: CampEngine,
    reqs: &[GemmRequest],
    batches: usize,
    session_counts: &[usize],
    mode: &'static str,
) -> (CampEngine, Vec<ServingRow>) {
    let opts = DispatchOptions { stagers: 2, queue_depth: 8, steal: StealPolicy::Eager };

    // calibration: one closed-loop tenant, serial in-flight
    let dispatcher = Dispatcher::with_options(engine, opts);
    let mut session = dispatcher.session();
    let t0 = Instant::now();
    for _ in 0..batches {
        let t = session.submit(reqs.to_vec()).expect("valid requests");
        let _ = session.wait(t).expect("calibration batch completes");
    }
    let service = t0.elapsed().as_secs_f64() / batches as f64;
    drop(session);
    engine = dispatcher.into_backend();

    let mut rows = Vec::new();
    for &sessions in session_counts {
        let dispatcher = Arc::new(Dispatcher::with_options(engine, opts));
        let interval = Duration::from_secs_f64(service);
        let t0 = Instant::now();
        let tenants: Vec<_> = (0..sessions)
            .map(|s| {
                let session = dispatcher.session();
                let reqs = reqs.to_vec();
                let prio = if s % 2 == 0 { Priority::Decode } else { Priority::Prefill };
                std::thread::spawn(move || tenant_loop(session, reqs, batches, interval, prio))
            })
            .collect();
        let mut lats = Vec::new();
        let mut rejected = 0u64;
        for t in tenants {
            let (mut l, r) = t.join().expect("tenant thread panicked");
            lats.append(&mut l);
            rejected += r;
        }
        let wall = t0.elapsed().as_secs_f64();
        let stats = dispatcher.stats();
        assert_eq!(stats.executed as usize, sessions * batches, "a tenant's batch was lost");
        engine = Arc::into_inner(dispatcher).expect("all tenants joined").into_backend();

        lats.sort_by(|a, b| a.total_cmp(b));
        rows.push(ServingRow {
            mode,
            sessions,
            gemms_per_batch: reqs.len(),
            batches_per_tenant: batches,
            req_per_sec: req_per_sec(sessions * batches * reqs.len(), wall),
            p50_ms: percentile_ms(&lats, 50),
            p99_ms: percentile_ms(&lats, 99),
            rejected,
            stolen: stats.stolen,
        });
    }
    (engine, rows)
}

/// Pull `"key": value` out of one hand-rolled JSON row line (the
/// writer puts one row object per line, so line-wise scanning is an
/// exact parse of our own output).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Compare freshly measured sweep rows against the checked-in baseline:
/// every baseline row matching a fresh row's (mode, sessions) key must
/// keep `req_per_sec >= baseline * (1 - tol)`. Latency percentiles are
/// reported but not gated — shared CI runners make absolute tail
/// latency too noisy to fail a build on.
fn check_baseline(rows: &[ServingRow], tol: f64) -> bool {
    let path = "BENCH_serving.json";
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-baseline: cannot read {path}: {e}");
            return false;
        }
    };
    let mut matched = 0usize;
    let mut ok = true;
    for line in text.lines() {
        let (Some(mode), Some(sessions), Some(base)) =
            (field(line, "mode"), field(line, "sessions"), field(line, "req_per_sec"))
        else {
            continue;
        };
        let (Ok(sessions), Ok(base)) = (sessions.parse::<usize>(), base.parse::<f64>()) else {
            continue;
        };
        let Some(r) = rows.iter().find(|r| r.mode == mode && r.sessions == sessions) else {
            continue;
        };
        matched += 1;
        let floor = base * (1.0 - tol);
        let verdict = if r.req_per_sec >= floor { "ok  " } else { "FAIL" };
        println!(
            "{verdict} {mode:<6} sessions={sessions}: {:.0} req/s vs baseline {base:.0} \
             (floor {floor:.0})",
            r.req_per_sec
        );
        if r.req_per_sec < floor {
            ok = false;
        }
    }
    if matched == 0 {
        eprintln!("check-baseline: no baseline rows matched the sweep (schema drift?)");
        return false;
    }
    println!(
        "check-baseline: {matched} rows compared, tolerance {tol} — {}",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

fn main() {
    let check = std::env::args().any(|a| a == "--check-baseline");
    let smoke = check || std::env::var("CAMP_SERVING_SMOKE").map(|v| v == "1").unwrap_or(false);
    let threads = camp_core::backend::host_threads_from_env();
    let reps = env_usize("CAMP_BENCH_REPS", if smoke { 1 } else { 5 });
    let batches = env_usize("CAMP_SERVING_BATCHES", if smoke { 2 } else { 8 });

    let mut cfg = LlmModel::BertBase.config();
    if smoke {
        cfg.layers = 1;
        cfg.seq_len = 32;
    }
    let workload = cfg.attention_workload(0x5E12_71C3);
    let dense = workload.gemm_requests(DType::I8);
    let per_batch = dense.len();
    let total_requests = per_batch * batches;

    println!("==============================================================");
    println!("serving: per-call loop vs batched vs session (BERT base attention)");
    println!(
        "layers={} seq={} heads={}: {} GeMMs/batch x {} batches, \
         engine threads={}, best of {}{}",
        cfg.layers,
        cfg.seq_len,
        cfg.heads,
        per_batch,
        batches,
        threads,
        reps,
        if smoke { " [smoke]" } else { "" }
    );
    println!("==============================================================");

    // --- engines: one per contender, identically configured ---
    let mut eng_loop = CampEngine::with_threads(threads);
    let mut eng_batch = CampEngine::with_threads(threads);
    let mut eng_session = CampEngine::with_threads(threads);
    let handles = workload.register(&mut eng_session, DType::I8);
    let session_reqs = workload.gemm_requests_with_handles(&handles);

    // --- correctness + warm-up before any timing ---
    let golden = eng_batch.execute_batch(&dense).expect("well-formed batch");
    for (out, req) in golden.outputs.iter().zip(&dense) {
        let per_call = eng_loop.execute(req).expect("well-formed request");
        assert_eq!(out, &per_call.output, "batched diverged at {}x{:?}", req.m(), req.n());
    }
    let session_out = {
        let mut session = eng_session.serve();
        let t = session.submit(session_reqs.clone()).expect("valid requests");
        let out = session.wait(t);
        eng_session = session.into_backend();
        out
    };
    assert_eq!(
        session_out.outputs, golden.outputs,
        "session results diverged from the batched path"
    );
    let session_stats = session_out.stats.as_host().expect("host session");
    assert_eq!(session_stats.packed_b_bytes, 0, "session must not pack B");

    // --- per-call loop: every GeMM pays setup and B packing ---
    let t_loop = time_best(reps, || {
        for _ in 0..batches {
            for req in &dense {
                let _ = eng_loop.execute(req).expect("well-formed request");
            }
        }
    });

    // --- batched: B deduped within a batch, re-packed per batch ---
    let t_batch = time_best(reps, || {
        for _ in 0..batches {
            let _ = eng_batch.execute_batch(&dense).expect("well-formed batch");
        }
    });

    // --- session: registered weights, all batches in flight ---
    // Request batches are materialized (cheap Arc clones) before the
    // clock starts: a real serving caller owns its activations, and the
    // other two contenders reuse prebuilt requests in their timed loops.
    let mut t_session = f64::INFINITY;
    for _ in 0..reps {
        let mut session = eng_session.serve();
        let request_batches: Vec<_> = (0..batches).map(|_| session_reqs.clone()).collect();
        let t = Instant::now();
        let tickets: Vec<_> = request_batches
            .into_iter()
            .map(|b| session.submit(b).expect("valid requests"))
            .collect();
        for ticket in tickets {
            let _ = session.wait(ticket);
        }
        t_session = t_session.min(t.elapsed().as_secs_f64());
        eng_session = session.into_backend();
    }

    println!(
        "per-call loop {:9.2} ms  {:>12.0} req/s",
        t_loop * 1e3,
        req_per_sec(total_requests, t_loop)
    );
    println!(
        "batched       {:9.2} ms  {:>12.0} req/s   {:.2}x vs loop",
        t_batch * 1e3,
        req_per_sec(total_requests, t_batch),
        t_loop / t_batch
    );
    println!(
        "session       {:9.2} ms  {:>12.0} req/s   {:.2}x vs loop, {:.2}x vs batched",
        t_session * 1e3,
        req_per_sec(total_requests, t_session),
        t_loop / t_session,
        t_batch / t_session
    );
    println!(
        "registered weights: {} panels, {:.2} MiB packed once (batched re-packs every batch)",
        eng_session.registered_weights(),
        eng_session.registered_weight_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("target: session >= batched on repeated batches -> {:.2}x", t_batch / t_session);

    // ---- multi-tenant dispatcher sweep (open-loop arrival) ----
    println!();
    println!("multi-tenant dispatcher sweep: open-loop arrival, 2 stagers, queue depth 8");
    let counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let mode = if smoke { "smoke" } else { "full" };
    let (_engine, mut rows) = dispatcher_sweep(eng_session, &session_reqs, batches, counts, mode);

    // a full run also measures the smoke-sized sweep, so the checked-in
    // baseline always contains the rows a CI `--check-baseline` run
    // (which is smoke-sized) compares against
    if !smoke {
        let mut cfg = LlmModel::BertBase.config();
        cfg.layers = 1;
        cfg.seq_len = 32;
        let workload = cfg.attention_workload(0x5E12_71C3);
        let mut engine = CampEngine::with_threads(threads);
        let handles = workload.register(&mut engine, DType::I8);
        let reqs = workload.gemm_requests_with_handles(&handles);
        let (_engine, smoke_rows) = dispatcher_sweep(engine, &reqs, 2, &[1, 2], "smoke");
        rows.extend(smoke_rows);
    }

    for r in &rows {
        println!(
            "{:<6} sessions={}: {:>10.0} req/s  p50 {:>8.2} ms  p99 {:>8.2} ms  \
             rejected {}  stolen {}",
            r.mode, r.sessions, r.req_per_sec, r.p50_ms, r.p99_ms, r.rejected, r.stolen
        );
    }

    if check {
        let tol = env_f64("CAMP_BENCH_TOLERANCE", 0.5);
        if !check_baseline(&rows, tol) {
            std::process::exit(1);
        }
        return;
    }

    // ---- BENCH_serving.json (hand-rolled: no serde in the image) ----
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"serving\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"stagers\": 2,");
    let _ = writeln!(j, "  \"queue_depth\": 8,");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"mode\": \"{}\", \"sessions\": {}, \"gemms_per_batch\": {}, \
             \"batches_per_tenant\": {}, \"req_per_sec\": {:.1}, \"p50_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"rejected\": {}, \"stolen\": {}}}",
            r.mode,
            r.sessions,
            r.gemms_per_batch,
            r.batches_per_tenant,
            r.req_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.rejected,
            r.stolen
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    let out = "BENCH_serving.json";
    std::fs::write(out, &j).expect("write BENCH_serving.json");
    println!("\nwrote {out}");
}
