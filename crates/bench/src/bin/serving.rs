//! Serving-path shootout on repeated BERT-base attention batches,
//! through the unified request API: per-call loop vs batched vs
//! submit/poll session with registered weights.
//!
//! A serving workload answers the *same* model's attention inventory
//! over and over — the weights never change, only the activations. The
//! three contenders pay different per-batch overheads:
//!
//! * **per-call loop** — one `CampBackend::execute` per request:
//!   thread fan-out and B re-packing on every single GeMM;
//! * **batched** — one `CampBackend::execute_batch` per batch: fan-out
//!   once per batch, each unique B packed once *per batch* (re-packed
//!   every repetition);
//! * **session** — weights registered once up front
//!   (`register_weights`), request batches streamed through
//!   `Session::submit` with several in flight: zero B-packing per
//!   batch, and the staging thread pre-packs batch N+1's activations
//!   while batch N computes.
//!
//! Results are checked bit-identical before timing; throughput is
//! reported in requests (GeMMs) per second. Knobs: `CAMP_THREADS` (the
//! unified thread story — see `camp_core::backend`), `CAMP_BENCH_REPS`,
//! `CAMP_SERVING_BATCHES`, and `CAMP_SERVING_SMOKE=1` shrinks
//! everything to a one-iteration CI smoke run.

use camp_core::backend::CampBackend;
use camp_core::{CampEngine, DType};
use camp_models::LlmModel;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Best-of-`reps` wall time in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn req_per_sec(requests: usize, secs: f64) -> f64 {
    requests as f64 / secs
}

fn main() {
    let smoke = std::env::var("CAMP_SERVING_SMOKE").map(|v| v == "1").unwrap_or(false);
    let threads = camp_core::backend::host_threads_from_env();
    let reps = env_usize("CAMP_BENCH_REPS", if smoke { 1 } else { 5 });
    let batches = env_usize("CAMP_SERVING_BATCHES", if smoke { 2 } else { 8 });

    let mut cfg = LlmModel::BertBase.config();
    if smoke {
        cfg.layers = 1;
        cfg.seq_len = 32;
    }
    let workload = cfg.attention_workload(0x5E12_71C3);
    let dense = workload.gemm_requests(DType::I8);
    let per_batch = dense.len();
    let total_requests = per_batch * batches;

    println!("==============================================================");
    println!("serving: per-call loop vs batched vs session (BERT base attention)");
    println!(
        "layers={} seq={} heads={}: {} GeMMs/batch x {} batches, \
         engine threads={}, best of {}{}",
        cfg.layers,
        cfg.seq_len,
        cfg.heads,
        per_batch,
        batches,
        threads,
        reps,
        if smoke { " [smoke]" } else { "" }
    );
    println!("==============================================================");

    // --- engines: one per contender, identically configured ---
    let mut eng_loop = CampEngine::with_threads(threads);
    let mut eng_batch = CampEngine::with_threads(threads);
    let mut eng_session = CampEngine::with_threads(threads);
    let handles = workload.register(&mut eng_session, DType::I8);
    let session_reqs = workload.gemm_requests_with_handles(&handles);

    // --- correctness + warm-up before any timing ---
    let golden = eng_batch.execute_batch(&dense).expect("well-formed batch");
    for (out, req) in golden.outputs.iter().zip(&dense) {
        let per_call = eng_loop.execute(req).expect("well-formed request");
        assert_eq!(out, &per_call.output, "batched diverged at {}x{:?}", req.m(), req.n());
    }
    let session_out = {
        let mut session = eng_session.serve();
        let t = session.submit(session_reqs.clone()).expect("valid requests");
        let out = session.wait(t);
        eng_session = session.into_backend();
        out
    };
    assert_eq!(
        session_out.outputs, golden.outputs,
        "session results diverged from the batched path"
    );
    let session_stats = session_out.stats.as_host().expect("host session");
    assert_eq!(session_stats.packed_b_bytes, 0, "session must not pack B");

    // --- per-call loop: every GeMM pays setup and B packing ---
    let t_loop = time_best(reps, || {
        for _ in 0..batches {
            for req in &dense {
                let _ = eng_loop.execute(req).expect("well-formed request");
            }
        }
    });

    // --- batched: B deduped within a batch, re-packed per batch ---
    let t_batch = time_best(reps, || {
        for _ in 0..batches {
            let _ = eng_batch.execute_batch(&dense).expect("well-formed batch");
        }
    });

    // --- session: registered weights, all batches in flight ---
    // Request batches are materialized (cheap Arc clones) before the
    // clock starts: a real serving caller owns its activations, and the
    // other two contenders reuse prebuilt requests in their timed loops.
    let mut t_session = f64::INFINITY;
    for _ in 0..reps {
        let mut session = eng_session.serve();
        let request_batches: Vec<_> = (0..batches).map(|_| session_reqs.clone()).collect();
        let t = Instant::now();
        let tickets: Vec<_> = request_batches
            .into_iter()
            .map(|b| session.submit(b).expect("valid requests"))
            .collect();
        for ticket in tickets {
            let _ = session.wait(ticket);
        }
        t_session = t_session.min(t.elapsed().as_secs_f64());
        eng_session = session.into_backend();
    }

    println!(
        "per-call loop {:9.2} ms  {:>12.0} req/s",
        t_loop * 1e3,
        req_per_sec(total_requests, t_loop)
    );
    println!(
        "batched       {:9.2} ms  {:>12.0} req/s   {:.2}x vs loop",
        t_batch * 1e3,
        req_per_sec(total_requests, t_batch),
        t_loop / t_batch
    );
    println!(
        "session       {:9.2} ms  {:>12.0} req/s   {:.2}x vs loop, {:.2}x vs batched",
        t_session * 1e3,
        req_per_sec(total_requests, t_session),
        t_loop / t_session,
        t_batch / t_session
    );
    println!(
        "registered weights: {} panels, {:.2} MiB packed once (batched re-packs every batch)",
        eng_session.registered_weights(),
        eng_session.registered_weight_bytes() as f64 / (1024.0 * 1024.0)
    );
    println!("target: session >= batched on repeated batches -> {:.2}x", t_batch / t_session);
}
