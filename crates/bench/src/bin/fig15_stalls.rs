//! Fig. 15: CAMP functional-unit busy rate and the proportion of stalls
//! by cause (Functional Unit / Read / Write) across the CNN-layer GeMMs,
//! sorted by operation count.

use camp_bench::{header, SimRunner};
use camp_gemm::Method;
use camp_models::cnn;
use camp_pipeline::{CoreConfig, FuKind};

fn main() {
    header("Fig. 15", "CAMP FU busy rate + stall breakdown (A64FX core)");
    let sim = SimRunner::from_cli();
    let mut layers = cnn::all_cnn_layers();
    layers.sort_by_key(|(_, _, s)| s.ops());

    println!(
        "{:>9} {:>10} {:>8} {:>8} {:>8}   paper: busy 0.07-0.22, stalls write-heavy",
        "GOPs", "CAMP busy", "FU%", "Read%", "Write%"
    );
    let mut busy_sum = 0.0;
    let mut n = 0;
    for (_, _, shape) in layers {
        let r = sim.run(CoreConfig::a64fx(), Method::Camp8, shape);
        let busy = r.stats.fu_busy_rate(FuKind::Camp, 1);
        let (f, rd, w) = r.stats.stall_proportions();
        busy_sum += busy;
        n += 1;
        println!(
            "{:>9.2} {:>10.2} {:>7.0}% {:>7.0}% {:>7.0}%",
            shape.ops() as f64 / 1e9,
            busy,
            100.0 * f,
            100.0 * rd,
            100.0 * w
        );
    }
    println!(
        "\naverage CAMP busy rate: {:.2} (paper: <0.10–0.22 across operations)",
        busy_sum / n as f64
    );
}
