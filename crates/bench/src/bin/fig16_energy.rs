//! Fig. 16: normalized energy of 8-bit and 4-bit CAMP across the
//! benchmarks, relative to the A64FX baseline (OpenBLAS) at 100 %.

use camp_bench::{header, SimRunner};
use camp_energy::EnergyModel;
use camp_gemm::Method;
use camp_models::{cnn, Benchmark, LlmModel};
use camp_pipeline::CoreConfig;

fn geo_shape(b: Benchmark) -> camp_models::GemmShape {
    // representative (median-by-ops) layer of each benchmark
    let mut ls = cnn::layers(b);
    ls.sort_by_key(|s| s.ops());
    ls[ls.len() / 2]
}

fn main() {
    header("Fig. 16", "Normalized energy of CAMP vs the A64FX baseline (=100%)");
    let sim = SimRunner::from_cli();
    let model = EnergyModel::a64fx_7nm();
    println!(
        "{:12} {:>12} {:>12}   paper: 10-30% (over 80% reduction)",
        "benchmark", "8-bit CAMP", "4-bit CAMP"
    );

    let mut cases: Vec<(String, camp_models::GemmShape)> =
        vec![("SMM".into(), camp_models::GemmShape::new(512, 512, 512))];
    for b in [Benchmark::AlexNet, Benchmark::MobileNet, Benchmark::ResNet, Benchmark::Vgg] {
        cases.push((b.name().into(), geo_shape(b)));
    }
    for m in LlmModel::all() {
        cases.push((m.name().into(), m.config().ff_shape()));
    }

    for (name, shape) in cases {
        let base = sim.run(CoreConfig::a64fx(), Method::OpenblasF32, shape);
        let e_base = model.evaluate(&base.stats).total_pj;
        let c8 = model.evaluate(&sim.run(CoreConfig::a64fx(), Method::Camp8, shape).stats).total_pj;
        let c4 = model.evaluate(&sim.run(CoreConfig::a64fx(), Method::Camp4, shape).stats).total_pj;
        println!("{:12} {:>11.1}% {:>11.1}%", name, 100.0 * c8 / e_base, 100.0 * c4 / e_base);
    }
}
