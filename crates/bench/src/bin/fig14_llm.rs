//! Fig. 14: normalized speedup and instruction count for the LLM
//! benchmarks (feed-forward and self-attention layers), vs OpenBLAS on
//! the A64FX-like core.
//!
//! The two CAMP rows run through the unified backend API: each layer
//! shape is built once as a typed `GemmRequest` (synthetic quantized
//! operands) and executed on a `SimBackend` — the same surface the
//! host engine serves — with the harness MAC budget as the backend's
//! clamp. The four non-camp baselines have no dtype on the request
//! surface (they are method-level ISA baselines), so they run through
//! the classic `SimRunner` path; both paths report the single-core
//! stats frame, so ratios are apples-to-apples.

use camp_bench::{fig13_methods, header, mac_budget, sim_threads, SimRunner};
use camp_core::backend::{CampBackend, SimBackend};
use camp_core::{DType, GemmRequest};
use camp_gemm::reference::SplitMix64;
use camp_gemm::Method;
use camp_models::{GemmShape, LlmModel};
use camp_pipeline::{CoreConfig, SimStats};

/// Simulate one layer shape under `method`, routing the camp kernels
/// through the request/backend surface.
fn run_method(
    sim: &SimRunner,
    backend: &mut SimBackend,
    method: Method,
    shape: GemmShape,
) -> SimStats {
    let dtype = match method {
        Method::Camp8 => Some(DType::I8),
        Method::Camp4 => Some(DType::I4),
        _ => None,
    };
    match dtype {
        Some(dtype) => {
            let mut rng = SplitMix64::new(0xF16_14C0);
            let a = rng.i8_vec(shape.m * shape.k, -8, 7);
            let b = rng.i8_vec(shape.k * shape.n, -8, 7);
            let req = GemmRequest::builder()
                .m(shape.m)
                .n(shape.n)
                .k(shape.k)
                .activation(a)
                .weights(camp_core::Operand::from_dense(b))
                .dtype(dtype)
                .build()
                .expect("layer shapes are coherent");
            let outcome = backend.execute(&req).expect("simulated execution");
            *outcome.stats.as_sim().expect("sim backend reports sim stats")
        }
        None => sim.run(CoreConfig::a64fx(), method, shape).stats,
    }
}

fn main() {
    header("Fig. 14", "LLM FF/SA speedup + instruction-count ratio (vs OpenBLAS)");
    let sim = SimRunner::from_cli();
    let mut backend = SimBackend::new(CoreConfig::a64fx())
        .with_threads(sim_threads())
        .with_mac_budget(mac_budget());
    let methods = fig13_methods();
    print!("{:12} {:>5}", "model", "layer");
    for m in methods {
        print!(" {:>12}", m.name());
    }
    println!();
    println!("paper: CAMP-4bit up to 15x over OpenBLAS across layers");

    for model in LlmModel::all() {
        let cfg = model.config();
        for (tag, shape) in [("FF", cfg.ff_shape()), ("SA", cfg.sa_shape())] {
            let base = sim.run(CoreConfig::a64fx(), Method::OpenblasF32, shape);
            print!("{:12} {:>5}", model.name(), tag);
            for &m in &methods {
                let stats = run_method(&sim, &mut backend, m, shape);
                print!(
                    " {:>6.2}/{:<5.2}",
                    base.stats.cycles as f64 / stats.cycles as f64,
                    stats.insts as f64 / base.stats.insts as f64
                );
            }
            println!();
        }
    }
    println!("(each cell: speedup/IC-ratio; CAMP rows via the unified GemmRequest backend)");
}
