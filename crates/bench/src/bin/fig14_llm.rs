//! Fig. 14: normalized speedup and instruction count for the LLM
//! benchmarks (feed-forward and self-attention layers), vs OpenBLAS on
//! the A64FX-like core.

use camp_bench::{fig13_methods, header, SimRunner};
use camp_gemm::Method;
use camp_models::LlmModel;
use camp_pipeline::CoreConfig;

fn main() {
    header("Fig. 14", "LLM FF/SA speedup + instruction-count ratio (vs OpenBLAS)");
    let sim = SimRunner::from_cli();
    let methods = fig13_methods();
    print!("{:12} {:>5}", "model", "layer");
    for m in methods {
        print!(" {:>12}", m.name());
    }
    println!();
    println!("paper: CAMP-4bit up to 15x over OpenBLAS across layers");

    for model in LlmModel::all() {
        let cfg = model.config();
        for (tag, shape) in [("FF", cfg.ff_shape()), ("SA", cfg.sa_shape())] {
            let base = sim.run(CoreConfig::a64fx(), Method::OpenblasF32, shape);
            print!("{:12} {:>5}", model.name(), tag);
            for &m in &methods {
                let r = sim.run(CoreConfig::a64fx(), m, shape);
                print!(
                    " {:>6.2}/{:<5.2}",
                    base.stats.cycles as f64 / r.stats.cycles as f64,
                    r.stats.insts as f64 / base.stats.insts as f64
                );
            }
            println!();
        }
    }
    println!("(each cell: speedup/IC-ratio)");
}
