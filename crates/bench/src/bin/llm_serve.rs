//! End-to-end LLM serving sweep: N concurrent `InferSession` tenants
//! streaming KV-cached decode steps through one dispatcher-wrapped
//! engine.
//!
//! Each tenant prefills its own prompt (at `Priority::Prefill`), then
//! serves a fixed number of decode tokens (GEMV-shaped m = 1 batches
//! at `Priority::Decode`), recording every **inter-token latency** —
//! the time between consecutive tokens the user would see. The sweep
//! scales the tenant count while the engine stays fixed, so it walks
//! the continuous-batching story of the dispatcher: decode throughput
//! (tokens/s) and the p50/p99 inter-token tail as sessions pile on.
//!
//! Results land in `BENCH_llm.json` (schema-versioned, one row per
//! `(mode, sessions)` key); `llm_serve --check-baseline` re-runs the
//! smoke-sized sweep and exits 1 if tokens/s falls below the
//! checked-in baseline row by more than `CAMP_BENCH_TOLERANCE`
//! (relative, default 0.5). Knobs: `CAMP_THREADS`, `CAMP_LLM_SMOKE=1`
//! shrinks the model and step counts to a CI smoke run.

use camp_core::{CampEngine, DispatchOptions, Dispatcher, StealPolicy};
use camp_infer::{InferSession, Model};
use camp_models::TransformerConfig;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn percentile_ms(sorted: &[f64], pct: usize) -> f64 {
    sorted[(sorted.len() - 1) * pct / 100] * 1e3
}

/// One measured point of the sweep: `mode` + `sessions` is the row key
/// the baseline gate matches on.
struct LlmRow {
    mode: &'static str,
    sessions: usize,
    prompt_len: usize,
    steps: usize,
    tok_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    prefill_ms: f64,
    shed: u64,
}

/// One tenant: prefill, then `steps` decode tokens, returning the
/// prefill latency and every inter-token latency. Decode is closed
/// loop by nature — token t+1 cannot start before token t lands.
fn tenant_loop(
    mut session: InferSession<CampEngine>,
    prompt: Vec<u32>,
    steps: usize,
) -> (f64, Vec<f64>) {
    let t0 = Instant::now();
    session.prefill(&prompt).expect("prefill");
    let prefill = t0.elapsed().as_secs_f64();
    let mut lats = Vec::with_capacity(steps);
    let mut last = Instant::now();
    for _ in 0..steps {
        session.decode_step().expect("decode");
        let now = Instant::now();
        lats.push((now - last).as_secs_f64());
        last = now;
    }
    (prefill, lats)
}

/// Sweep session counts over one model on one engine; returns the
/// engine for reuse (weights stay registered across dispatchers).
fn llm_sweep(
    mut engine: CampEngine,
    model: &Arc<Model>,
    session_counts: &[usize],
    prompt_len: usize,
    steps: usize,
    mode: &'static str,
) -> (CampEngine, Vec<LlmRow>) {
    let handles = Arc::new(model.register(&mut engine));
    let opts = DispatchOptions { stagers: 2, queue_depth: 8, steal: StealPolicy::Eager };
    let vocab = model.vocab() as u32;
    let mut rows = Vec::new();
    for &sessions in session_counts {
        let dispatcher = Arc::new(Dispatcher::with_options(engine, opts));
        let t0 = Instant::now();
        let tenants: Vec<_> = (0..sessions)
            .map(|s| {
                let infer = InferSession::new(&dispatcher, Arc::clone(model), Arc::clone(&handles));
                let prompt: Vec<u32> =
                    (0..prompt_len).map(|i| (s as u32 * 31 + i as u32 * 7) % vocab).collect();
                std::thread::spawn(move || tenant_loop(infer, prompt, steps))
            })
            .collect();
        let mut lats = Vec::new();
        let mut prefill = 0.0f64;
        for t in tenants {
            let (p, mut l) = t.join().expect("tenant thread panicked");
            prefill += p;
            lats.append(&mut l);
        }
        let wall = t0.elapsed().as_secs_f64();
        let stats = dispatcher.stats();
        engine = Arc::into_inner(dispatcher).expect("all tenants joined").into_backend();
        assert_eq!(lats.len(), sessions * steps, "a tenant lost tokens");

        lats.sort_by(|a, b| a.total_cmp(b));
        rows.push(LlmRow {
            mode,
            sessions,
            prompt_len,
            steps,
            tok_per_sec: (sessions * steps) as f64 / wall,
            p50_ms: percentile_ms(&lats, 50),
            p99_ms: percentile_ms(&lats, 99),
            prefill_ms: prefill / sessions as f64 * 1e3,
            shed: stats.shed,
        });
    }
    (engine, rows)
}

/// Pull `"key": value` out of one hand-rolled JSON row line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Compare fresh rows against the checked-in baseline: every baseline
/// row matching a fresh row's (mode, sessions) key must keep
/// `tok_per_sec >= baseline * (1 - tol)`. Latency percentiles are
/// reported but not gated — shared CI runners make absolute tail
/// latency too noisy to fail a build on.
fn check_baseline(rows: &[LlmRow], tol: f64) -> bool {
    let path = "BENCH_llm.json";
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-baseline: cannot read {path}: {e}");
            return false;
        }
    };
    let mut matched = 0usize;
    let mut ok = true;
    for line in text.lines() {
        let (Some(mode), Some(sessions), Some(base)) =
            (field(line, "mode"), field(line, "sessions"), field(line, "tok_per_sec"))
        else {
            continue;
        };
        let (Ok(sessions), Ok(base)) = (sessions.parse::<usize>(), base.parse::<f64>()) else {
            continue;
        };
        let Some(r) = rows.iter().find(|r| r.mode == mode && r.sessions == sessions) else {
            continue;
        };
        matched += 1;
        let floor = base * (1.0 - tol);
        let verdict = if r.tok_per_sec >= floor { "ok  " } else { "FAIL" };
        println!(
            "{verdict} {mode:<6} sessions={sessions}: {:.1} tok/s vs baseline {base:.1} \
             (floor {floor:.1})",
            r.tok_per_sec
        );
        if r.tok_per_sec < floor {
            ok = false;
        }
    }
    if matched == 0 {
        eprintln!("check-baseline: no baseline rows matched the sweep (schema drift?)");
        return false;
    }
    println!(
        "check-baseline: {matched} rows compared, tolerance {tol} — {}",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// The serving model: big enough that decode GEMVs are real work,
/// small enough that a full sweep stays in CI budget.
fn full_config() -> TransformerConfig {
    TransformerConfig { hidden: 128, ff_dim: 256, heads: 4, layers: 3, seq_len: 64 }
}

fn smoke_config() -> TransformerConfig {
    TransformerConfig { hidden: 32, ff_dim: 64, heads: 2, layers: 1, seq_len: 32 }
}

fn main() {
    let check = std::env::args().any(|a| a == "--check-baseline");
    let smoke = check || std::env::var("CAMP_LLM_SMOKE").map(|v| v == "1").unwrap_or(false);
    let threads = camp_core::backend::host_threads_from_env();
    const VOCAB: usize = 64;
    const SEED: u64 = 0x11FE_2ACE;

    let (prompt_len, steps) = if smoke { (4, 4) } else { (8, 16) };
    let counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    let cfg = if smoke { smoke_config() } else { full_config() };
    let model = Arc::new(Model::new(cfg, VOCAB, SEED));

    println!("==============================================================");
    println!("llm_serve: concurrent InferSession tenants over one dispatcher");
    println!(
        "model: {} layers x d={} ({} heads), ff={}, vocab={}; prompt={} decode={} \
         engine threads={}{}",
        cfg.layers,
        cfg.hidden,
        cfg.heads,
        cfg.ff_dim,
        VOCAB,
        prompt_len,
        steps,
        threads,
        if smoke { " [smoke]" } else { "" }
    );
    println!("==============================================================");

    let engine = CampEngine::with_threads(threads);
    let mode = if smoke { "smoke" } else { "full" };
    let (engine, mut rows) = llm_sweep(engine, &model, counts, prompt_len, steps, mode);

    // a full run also measures the smoke-sized sweep, so the checked-in
    // baseline always contains the rows a CI `--check-baseline` run
    // (which is smoke-sized) compares against
    if !smoke {
        let smoke_model = Arc::new(Model::new(smoke_config(), VOCAB, SEED));
        let (_engine, smoke_rows) = llm_sweep(engine, &smoke_model, &[1, 2], 4, 4, "smoke");
        rows.extend(smoke_rows);
    } else {
        drop(engine);
    }

    for r in &rows {
        println!(
            "{:<6} sessions={}: {:>8.1} tok/s  inter-token p50 {:>7.2} ms  p99 {:>7.2} ms  \
             prefill {:>7.2} ms  shed {}",
            r.mode, r.sessions, r.tok_per_sec, r.p50_ms, r.p99_ms, r.prefill_ms, r.shed
        );
    }

    if check {
        let tol = env_f64("CAMP_BENCH_TOLERANCE", 0.5);
        if !check_baseline(&rows, tol) {
            std::process::exit(1);
        }
        return;
    }

    // ---- BENCH_llm.json (hand-rolled: no serde in the image) ----
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"llm_serve\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"vocab\": {VOCAB},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"mode\": \"{}\", \"sessions\": {}, \"prompt_len\": {}, \"steps\": {}, \
             \"tok_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"prefill_ms\": {:.3}, \"shed\": {}}}",
            r.mode,
            r.sessions,
            r.prompt_len,
            r.steps,
            r.tok_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.prefill_ms,
            r.shed
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    let out = "BENCH_llm.json";
    std::fs::write(out, &j).expect("write BENCH_llm.json");
    println!("\nwrote {out}");
}
