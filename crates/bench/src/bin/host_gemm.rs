//! Host micro-kernel shootout: scalar vs the dispatched SIMD tier,
//! emitted as `BENCH_host_gemm.json`.
//!
//! This is the harness for the host-silicon half of the codebase (the
//! serving engine), not the simulated CAMP core: it times the same
//! blocked GeMM once on the scalar reference tier and once on the tier
//! `HostKernel::detect()` picked (AVX2 / NEON when the CPU has them),
//! and reports GOPS (`2·m·n·k / seconds / 1e9`) plus the speedup per
//! shape. Results are bit-identical across tiers by construction
//! (property-tested in `tests/host_kernels.rs`), so only throughput is
//! interesting here.
//!
//! Covered paths:
//!
//! * **i8 → i32** (and **i4**) through the engine's request API with
//!   registered weights — the serving steady state, B pre-packed,
//!   blocked tile path;
//! * **skinny** shapes (m ≤ 8 / n ≤ 8) — the Pire-style fast paths;
//! * **f32** through [`HostGemmF32`] — the FMA-chain subsystem.
//!
//! Knobs: `CAMP_BENCH_SMOKE=1` shrinks shapes/reps to a CI smoke run,
//! `CAMP_BENCH_REPS` overrides best-of repetitions, `CAMP_THREADS`
//! widens the engine's worker pool (the thread sweep always includes 1
//! and the machine's core count). `CAMP_FORCE_SCALAR=1` collapses the
//! comparison (both columns scalar) — useful only to sanity-check the
//! fallback, and called out in the output when active.

use camp_core::backend::CampBackend;
use camp_core::{CampEngine, DType, GemmRequest};
use camp_gemm::host::{force_scalar, HostGemmF32, HostKernel};
use std::fmt::Write as _;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Best-of-`reps` wall time in seconds for one invocation of `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up: pools grown, pages faulted in
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gops(m: usize, n: usize, k: usize, secs: f64) -> f64 {
    (2.0 * (m as f64) * (n as f64) * (k as f64)) / secs / 1e9
}

struct Row {
    dtype: &'static str,
    path: &'static str,
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    scalar_gops: f64,
    simd_gops: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.simd_gops / self.scalar_gops
    }
}

/// Deterministic operand bytes (same generator family as the tests).
fn gen_i8(len: usize, s: u32, lo: i32, hi: i32) -> Vec<i8> {
    let span = (hi - lo + 1) as u32;
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(s).wrapping_add(s ^ 0x9e37) % span) as i32 + lo)
        .map(|v| v as i8)
        .collect()
}

fn gen_f32(len: usize, s: u32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(s).wrapping_add(s) % 2001) as f32 / 1000.0 - 1.0)
        .collect()
}

/// Time one integer shape on one engine (steady state: weights
/// registered up front, so B-packing is off the timed path).
fn int_secs(
    kernel: &'static HostKernel,
    threads: usize,
    reps: usize,
    m: usize,
    n: usize,
    k: usize,
    dtype: DType,
) -> f64 {
    let (lo, hi) = if dtype == DType::I4 { (-8, 7) } else { (-128, 127) };
    let a = gen_i8(m * k, 0x1234_5679, lo, hi);
    let b = gen_i8(k * n, 0x0BAD_F00D | 1, lo, hi);
    let mut eng = CampEngine::with_threads_and_kernel(threads, kernel);
    let h = CampBackend::register_weights(&mut eng, n, k, &b, dtype);
    let req = GemmRequest::with_weights(m, a, h).expect("coherent");
    time_best(reps, || {
        let out = eng.execute(&req).expect("registered handle");
        assert_eq!(out.output.c.len(), m * n);
    })
}

fn f32_secs(kernel: &'static HostKernel, reps: usize, m: usize, n: usize, k: usize) -> f64 {
    let a = gen_f32(m * k, 0x5151_5151);
    let b = gen_f32(k * n, 0x2E2E_2E2F);
    let mut ctx = HostGemmF32::with_kernel(kernel);
    let mut c = vec![0f32; m * n];
    time_best(reps, || ctx.gemm_into(m, n, k, &a, &b, &mut c))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::var("CAMP_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let reps = env_usize("CAMP_BENCH_REPS", if smoke { 1 } else { 5 });
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut thread_counts = vec![1usize];
    if cores > 1 {
        thread_counts.push(cores);
    }

    let scalar = HostKernel::scalar();
    let simd = HostKernel::detect();
    let info = simd.info();

    println!("==============================================================");
    println!("host_gemm: scalar vs dispatched SIMD micro-kernels");
    println!("dispatched: {info}");
    if force_scalar() {
        println!("NOTE: CAMP_FORCE_SCALAR is set — both columns run the scalar tier");
    }
    println!(
        "threads swept: {thread_counts:?}; best of {reps}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("==============================================================");

    // (dtype, path, m, n, k): the blocked tile path at paper-ish sizes,
    // both skinny fast paths, and the f32 subsystem.
    let int_shapes: &[(&str, DType, &str, usize, usize, usize)] = if smoke {
        &[
            ("i8", DType::I8, "blocked", 32, 32, 64),
            ("i4", DType::I4, "blocked", 32, 32, 64),
            ("i8", DType::I8, "small_m", 2, 64, 64),
            ("i8", DType::I8, "small_n", 64, 2, 64),
        ]
    } else {
        &[
            ("i8", DType::I8, "blocked", 256, 256, 256),
            ("i8", DType::I8, "blocked", 512, 512, 512),
            ("i4", DType::I4, "blocked", 256, 256, 256),
            ("i8", DType::I8, "small_m", 2, 2048, 2048),
            ("i8", DType::I8, "small_m", 8, 4096, 1024),
            ("i8", DType::I8, "small_n", 2048, 4, 2048),
        ]
    };
    let f32_shapes: &[(&str, usize, usize, usize)] = if smoke {
        &[("blocked", 32, 32, 64), ("small_m", 2, 64, 64)]
    } else {
        &[("blocked", 256, 256, 256), ("blocked", 384, 384, 384), ("small_m", 2, 2048, 2048)]
    };

    let mut rows: Vec<Row> = Vec::new();
    for &(dtype_name, dtype, path, m, n, k) in int_shapes {
        for &threads in &thread_counts {
            rows.push(Row {
                dtype: dtype_name,
                path,
                m,
                n,
                k,
                threads,
                scalar_gops: gops(m, n, k, int_secs(scalar, threads, reps, m, n, k, dtype)),
                simd_gops: gops(m, n, k, int_secs(simd, threads, reps, m, n, k, dtype)),
            });
        }
    }
    for &(path, m, n, k) in f32_shapes {
        rows.push(Row {
            dtype: "f32",
            path,
            m,
            n,
            k,
            threads: 1,
            scalar_gops: gops(m, n, k, f32_secs(scalar, reps, m, n, k)),
            simd_gops: gops(m, n, k, f32_secs(simd, reps, m, n, k)),
        });
    }

    println!(
        "{:<5} {:<8} {:>5} {:>5} {:>5} {:>3}  {:>12} {:>12} {:>8}",
        "dtype", "path", "m", "n", "k", "t", "scalar GOPS", "simd GOPS", "speedup"
    );
    for r in &rows {
        println!(
            "{:<5} {:<8} {:>5} {:>5} {:>5} {:>3}  {:>12.3} {:>12.3} {:>7.2}x",
            r.dtype,
            r.path,
            r.m,
            r.n,
            r.k,
            r.threads,
            r.scalar_gops,
            r.simd_gops,
            r.speedup()
        );
    }

    // ---- BENCH_host_gemm.json (hand-rolled: no serde in the image) ----
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"host_gemm\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"reps\": {reps},");
    let _ = writeln!(j, "  \"kernel\": {{");
    let _ = writeln!(j, "    \"tier\": \"{}\",", json_escape(&info.tier));
    let _ = writeln!(j, "    \"simd\": {},", info.simd);
    let _ = writeln!(j, "    \"features\": \"{}\",", json_escape(&info.features.summary()));
    let _ = writeln!(j, "    \"int_tile\": [{}, {}],", info.int_tile.0, info.int_tile.1);
    let _ = writeln!(j, "    \"f32_tile\": [{}, {}],", info.f32_tile.0, info.f32_tile.1);
    let _ = writeln!(
        j,
        "    \"int_blocking\": [{}, {}, {}],",
        info.int_blocking.0, info.int_blocking.1, info.int_blocking.2
    );
    let _ = writeln!(
        j,
        "    \"f32_blocking\": [{}, {}, {}]",
        info.f32_blocking.0, info.f32_blocking.1, info.f32_blocking.2
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"thread_counts\": {thread_counts:?},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"dtype\": \"{}\", \"path\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
             \"threads\": {}, \"scalar_gops\": {:.4}, \"simd_gops\": {:.4}, \
             \"speedup\": {:.3}}}",
            r.dtype,
            r.path,
            r.m,
            r.n,
            r.k,
            r.threads,
            r.scalar_gops,
            r.simd_gops,
            r.speedup()
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");

    let out = "BENCH_host_gemm.json";
    std::fs::write(out, &j).expect("write BENCH_host_gemm.json");
    println!("\nwrote {out}");
}
