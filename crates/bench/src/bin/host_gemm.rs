//! Host micro-kernel shootout: scalar vs the dispatched SIMD tier,
//! emitted as `BENCH_host_gemm.json` (schema 2).
//!
//! This is the harness for the host-silicon half of the codebase (the
//! serving engine), not the simulated CAMP core: it times the same
//! blocked GeMM once on the scalar reference tier and once on the tier
//! `HostKernel::detect()` picked (AVX2 / AVX-512 / NEON when the CPU
//! has them), and reports GOPS (`2·m·n·k / seconds / 1e9`) plus the
//! speedup per shape. Results are bit-identical across tiers by
//! construction (property-tested in `tests/host_kernels.rs`), so only
//! throughput is interesting here.
//!
//! Covered paths:
//!
//! * **i8 → i32** (and **i4**) through the engine's request API with
//!   registered weights — the serving steady state, B pre-packed,
//!   blocked tile path;
//! * **skinny** shapes (m ≤ 8 / n ≤ 8) — the Pire-style fast paths;
//!   `small_n` runs against a registered (panel) B, `small_n_dense`
//!   runs the one-shot dense request that routes to the no-pack
//!   skinny-n kernel;
//! * **pack_a / pack_b / pack_nib** — the SIMD packers, reported as
//!   packed GB/s in the GOPS columns (same speedup semantics);
//! * **f32** through [`HostGemmF32`] — the FMA-chain subsystem.
//!
//! A full run always includes the smoke shapes, so a checked-in
//! baseline produced by a full run can gate a CI smoke run:
//! `host_gemm --check-baseline` re-measures the smoke set and fails
//! (exit 1) if any per-shape speedup falls below the baseline's by
//! more than `CAMP_BENCH_TOLERANCE` (relative, default 0.5). Speedups
//! — not absolute GOPS — are compared, so the gate tolerates slower
//! runners; it still assumes the runner reaches the baseline's SIMD
//! tier (the check prints both tiers when they differ).
//!
//! Knobs: `CAMP_BENCH_SMOKE=1` shrinks shapes/reps to a CI smoke run,
//! `CAMP_BENCH_REPS` overrides best-of repetitions, `CAMP_THREADS`
//! widens the engine's worker pool (the thread sweep always includes 1
//! and the machine's core count). `CAMP_FORCE_SCALAR=1` /
//! `CAMP_FORCE_TIER=<tier>` pin the dispatched column to one tier —
//! useful to bench a lower tier on a wider machine, and called out in
//! the output when active.

use camp_core::backend::CampBackend;
use camp_core::{CampEngine, DType, GemmRequest};
use camp_gemm::host::{force_scalar, forced_tier, HostGemmF32, HostKernel};
use std::fmt::Write as _;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Best-of-`reps` wall time in seconds for one invocation of `f`.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f(); // warm-up: pools grown, pages faulted in
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gops(m: usize, n: usize, k: usize, secs: f64) -> f64 {
    (2.0 * (m as f64) * (n as f64) * (k as f64)) / secs / 1e9
}

struct Row {
    dtype: &'static str,
    path: &'static str,
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    /// GOPS for GeMM rows, packed GB/s for `pack_*` rows.
    scalar_gops: f64,
    simd_gops: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.simd_gops / self.scalar_gops
    }

    fn key_matches(&self, dtype: &str, path: &str, m: usize, n: usize, k: usize, t: usize) -> bool {
        self.dtype == dtype
            && self.path == path
            && self.m == m
            && self.n == n
            && self.k == k
            && self.threads == t
    }
}

/// Deterministic operand bytes (same generator family as the tests).
fn gen_i8(len: usize, s: u32, lo: i32, hi: i32) -> Vec<i8> {
    let span = (hi - lo + 1) as u32;
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(s).wrapping_add(s ^ 0x9e37) % span) as i32 + lo)
        .map(|v| v as i8)
        .collect()
}

fn gen_f32(len: usize, s: u32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as u32).wrapping_mul(s).wrapping_add(s) % 2001) as f32 / 1000.0 - 1.0)
        .collect()
}

/// Time one integer shape on one engine (steady state: weights
/// registered up front, so B-packing is off the timed path).
fn int_secs(
    kernel: &'static HostKernel,
    threads: usize,
    reps: usize,
    m: usize,
    n: usize,
    k: usize,
    dtype: DType,
) -> f64 {
    let (lo, hi) = if dtype == DType::I4 { (-8, 7) } else { (-128, 127) };
    let a = gen_i8(m * k, 0x1234_5679, lo, hi);
    let b = gen_i8(k * n, 0x0BAD_F00D | 1, lo, hi);
    let mut eng = CampEngine::with_threads_and_kernel(threads, kernel);
    let h = CampBackend::register_weights(&mut eng, n, k, &b, dtype);
    let req = GemmRequest::with_weights(m, a, h).expect("coherent");
    time_best(reps, || {
        let out = eng.execute(&req).expect("registered handle");
        assert_eq!(out.output.c.len(), m * n);
    })
}

/// Time one i8 shape as a one-shot dense request (no registered B):
/// skinny-n shapes route to the dense no-pack kernel here.
fn int_dense_secs(
    kernel: &'static HostKernel,
    threads: usize,
    reps: usize,
    m: usize,
    n: usize,
    k: usize,
) -> f64 {
    let a = gen_i8(m * k, 0x1234_5679, -128, 127);
    let b = gen_i8(k * n, 0x0BAD_F00D | 1, -128, 127);
    let mut eng = CampEngine::with_threads_and_kernel(threads, kernel);
    let req = GemmRequest::dense(m, n, k, a, b).expect("coherent");
    time_best(reps, || {
        let out = eng.execute(&req).expect("dense request");
        assert_eq!(out.output.c.len(), m * n);
    })
}

fn f32_secs(kernel: &'static HostKernel, reps: usize, m: usize, n: usize, k: usize) -> f64 {
    let a = gen_f32(m * k, 0x5151_5151);
    let b = gen_f32(k * n, 0x2E2E_2E2F);
    let mut ctx = HostGemmF32::with_kernel(kernel);
    let mut c = vec![0f32; m * n];
    time_best(reps, || ctx.gemm_into(m, n, k, &a, &b, &mut c))
}

/// Packed GB/s for one packer. `pack_a` packs an `rows×k` A image,
/// `pack_b` a `k×rows` B image, `pack_nib` squeezes `rows` i4 values;
/// the metric is bytes of packed output per second.
fn pack_gbs(kernel: &'static HostKernel, reps: usize, path: &str, rows: usize, k: usize) -> f64 {
    let (secs, bytes) = match path {
        "pack_a" => {
            let a = gen_i8(rows * k, 0x77AA_77AB, -128, 127);
            let mut buf = vec![0i8; rows * k];
            (time_best(reps, || kernel.pack_a_block(&mut buf, &a, rows, k, 0, 0, k)), rows * k)
        }
        "pack_b" => {
            let b = gen_i8(k * rows, 0x3355_3357, -128, 127);
            let mut buf = vec![0i8; rows * k];
            (time_best(reps, || kernel.pack_b_block(&mut buf, &b, rows, k, 0, 0, k)), rows * k)
        }
        "pack_nib" => {
            let vals = gen_i8(rows, 0x1357_9bdf, -8, 7);
            (
                time_best(reps, || {
                    let packed = kernel.pack_nibbles(&vals);
                    assert_eq!(packed.len(), rows.div_ceil(2));
                }),
                rows / 2,
            )
        }
        other => panic!("unknown pack path {other}"),
    };
    bytes as f64 / secs / 1e9
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Pull `"key": value` out of one hand-rolled JSON row line (the
/// writer puts one row object per line, so line-wise scanning is an
/// exact parse of our own output).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Compare freshly measured smoke rows against the checked-in
/// baseline: every baseline row that matches a fresh row's key must
/// keep `speedup >= baseline_speedup * (1 - tol)`.
fn check_baseline(rows: &[Row], tol: f64, fresh_tier: &str) -> bool {
    let path = "BENCH_host_gemm.json";
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-baseline: cannot read {path}: {e}");
            return false;
        }
    };
    if let Some(tier) = text.lines().find_map(|l| field(l, "tier")) {
        if tier != fresh_tier {
            println!("note: baseline tier \"{tier}\" != this run's \"{fresh_tier}\"");
        }
    }
    let mut matched = 0usize;
    let mut ok = true;
    for line in text.lines() {
        let (Some(dtype), Some(path), Some(speedup)) =
            (field(line, "dtype"), field(line, "path"), field(line, "speedup"))
        else {
            continue;
        };
        let parse = |key| field(line, key).and_then(|v| v.parse::<usize>().ok());
        let (Some(m), Some(n), Some(k), Some(t)) =
            (parse("m"), parse("n"), parse("k"), parse("threads"))
        else {
            continue;
        };
        let Ok(base) = speedup.parse::<f64>() else { continue };
        let Some(r) = rows.iter().find(|r| r.key_matches(dtype, path, m, n, k, t)) else {
            continue;
        };
        matched += 1;
        let floor = base * (1.0 - tol);
        let fresh = r.speedup();
        let verdict = if fresh >= floor { "ok  " } else { "FAIL" };
        println!(
            "{verdict} {dtype:<4} {path:<12} {m:>5}x{n:<5}x{k:<5} t={t}: \
             speedup {fresh:.2}x vs baseline {base:.2}x (floor {floor:.2}x)"
        );
        if fresh < floor {
            ok = false;
        }
    }
    if matched == 0 {
        eprintln!("check-baseline: no baseline rows matched the smoke set (schema drift?)");
        return false;
    }
    println!(
        "check-baseline: {matched} rows compared, tolerance {tol} — {}",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

fn main() {
    let check = std::env::args().any(|a| a == "--check-baseline");
    let smoke = check || std::env::var("CAMP_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let reps = env_usize(
        "CAMP_BENCH_REPS",
        if check {
            3
        } else if smoke {
            1
        } else {
            5
        },
    );
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    // The gate compares keyed rows, so it sticks to the thread count
    // every machine has; measurement runs sweep the core count too.
    let mut thread_counts = vec![1usize];
    if cores > 1 && !check {
        thread_counts.push(cores);
    }

    let scalar = HostKernel::scalar();
    let simd = HostKernel::detect();
    let info = simd.info();

    println!("==============================================================");
    println!("host_gemm: scalar vs dispatched SIMD micro-kernels");
    println!("dispatched: {info}");
    if force_scalar() {
        println!("NOTE: CAMP_FORCE_SCALAR is set — both columns run the scalar tier");
    } else if let Some(tier) = forced_tier() {
        println!("NOTE: CAMP_FORCE_TIER pins the dispatched column to {}", tier.name());
    }
    println!(
        "threads swept: {thread_counts:?}; best of {reps}{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!("==============================================================");

    // (dtype, path, m, n, k): the blocked tile path at paper-ish sizes,
    // both skinny fast paths (panel and dense B), and the f32
    // subsystem. Full runs keep every smoke shape so a full-run
    // baseline can gate smoke runs.
    let smoke_int: &[(&str, DType, &str, usize, usize, usize)] = &[
        ("i8", DType::I8, "blocked", 32, 32, 64),
        ("i4", DType::I4, "blocked", 32, 32, 64),
        ("i8", DType::I8, "small_m", 2, 64, 64),
        ("i8", DType::I8, "small_n", 64, 2, 64),
    ];
    let full_int: &[(&str, DType, &str, usize, usize, usize)] = &[
        ("i8", DType::I8, "blocked", 256, 256, 256),
        ("i8", DType::I8, "blocked", 512, 512, 512),
        ("i4", DType::I4, "blocked", 256, 256, 256),
        ("i8", DType::I8, "small_m", 2, 2048, 2048),
        ("i8", DType::I8, "small_m", 8, 4096, 1024),
        ("i8", DType::I8, "small_n", 2048, 4, 2048),
    ];
    let smoke_dense: &[(usize, usize, usize)] = &[(64, 2, 64)];
    let full_dense: &[(usize, usize, usize)] = &[(2048, 4, 2048)];
    // (path, rows, k) — see `pack_gbs` for the shape semantics.
    let smoke_pack: &[(&str, usize, usize)] =
        &[("pack_a", 128, 128), ("pack_b", 128, 128), ("pack_nib", 1 << 14, 0)];
    let full_pack: &[(&str, usize, usize)] =
        &[("pack_a", 1024, 2048), ("pack_b", 1024, 2048), ("pack_nib", 1 << 22, 0)];
    let smoke_f32: &[(&str, usize, usize, usize)] =
        &[("blocked", 32, 32, 64), ("small_m", 2, 64, 64)];
    let full_f32: &[(&str, usize, usize, usize)] =
        &[("blocked", 256, 256, 256), ("blocked", 384, 384, 384), ("small_m", 2, 2048, 2048)];

    let int_shapes: Vec<_> = if smoke {
        smoke_int.to_vec()
    } else {
        smoke_int.iter().chain(full_int).copied().collect()
    };
    let dense_shapes: Vec<_> = if smoke {
        smoke_dense.to_vec()
    } else {
        smoke_dense.iter().chain(full_dense).copied().collect()
    };
    let pack_shapes: Vec<_> = if smoke {
        smoke_pack.to_vec()
    } else {
        smoke_pack.iter().chain(full_pack).copied().collect()
    };
    let f32_shapes: Vec<_> = if smoke {
        smoke_f32.to_vec()
    } else {
        smoke_f32.iter().chain(full_f32).copied().collect()
    };

    let mut rows: Vec<Row> = Vec::new();
    for &(dtype_name, dtype, path, m, n, k) in &int_shapes {
        for &threads in &thread_counts {
            rows.push(Row {
                dtype: dtype_name,
                path,
                m,
                n,
                k,
                threads,
                scalar_gops: gops(m, n, k, int_secs(scalar, threads, reps, m, n, k, dtype)),
                simd_gops: gops(m, n, k, int_secs(simd, threads, reps, m, n, k, dtype)),
            });
        }
    }
    for &(m, n, k) in &dense_shapes {
        rows.push(Row {
            dtype: "i8",
            path: "small_n_dense",
            m,
            n,
            k,
            threads: 1,
            scalar_gops: gops(m, n, k, int_dense_secs(scalar, 1, reps, m, n, k)),
            simd_gops: gops(m, n, k, int_dense_secs(simd, 1, reps, m, n, k)),
        });
    }
    for &(path, r, k) in &pack_shapes {
        rows.push(Row {
            dtype: "i8",
            path,
            m: r,
            n: 0,
            k,
            threads: 1,
            scalar_gops: pack_gbs(scalar, reps, path, r, k),
            simd_gops: pack_gbs(simd, reps, path, r, k),
        });
    }
    for &(path, m, n, k) in &f32_shapes {
        rows.push(Row {
            dtype: "f32",
            path,
            m,
            n,
            k,
            threads: 1,
            scalar_gops: gops(m, n, k, f32_secs(scalar, reps, m, n, k)),
            simd_gops: gops(m, n, k, f32_secs(simd, reps, m, n, k)),
        });
    }

    println!(
        "{:<5} {:<13} {:>6} {:>5} {:>5} {:>3}  {:>12} {:>12} {:>8}",
        "dtype", "path", "m", "n", "k", "t", "scalar GOPS", "simd GOPS", "speedup"
    );
    for r in &rows {
        println!(
            "{:<5} {:<13} {:>6} {:>5} {:>5} {:>3}  {:>12.3} {:>12.3} {:>7.2}x",
            r.dtype,
            r.path,
            r.m,
            r.n,
            r.k,
            r.threads,
            r.scalar_gops,
            r.simd_gops,
            r.speedup()
        );
    }

    if check {
        let tol = env_f64("CAMP_BENCH_TOLERANCE", 0.5);
        if !check_baseline(&rows, tol, &info.tier) {
            std::process::exit(1);
        }
        return;
    }

    // ---- BENCH_host_gemm.json (hand-rolled: no serde in the image) ----
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"host_gemm\",");
    let _ = writeln!(j, "  \"schema\": 2,");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"reps\": {reps},");
    let _ = writeln!(j, "  \"kernel\": {{");
    let _ = writeln!(j, "    \"tier\": \"{}\",", json_escape(&info.tier));
    let _ = writeln!(j, "    \"simd\": {},", info.simd);
    let _ = writeln!(j, "    \"features\": \"{}\",", json_escape(&info.features.summary()));
    let _ = writeln!(j, "    \"int_tile_i8\": [{}, {}],", info.int_tile_i8.0, info.int_tile_i8.1);
    let _ = writeln!(j, "    \"int_tile_i4\": [{}, {}],", info.int_tile_i4.0, info.int_tile_i4.1);
    let _ = writeln!(j, "    \"f32_tile\": [{}, {}],", info.f32_tile.0, info.f32_tile.1);
    let _ = writeln!(
        j,
        "    \"int_blocking\": [{}, {}, {}],",
        info.int_blocking.0, info.int_blocking.1, info.int_blocking.2
    );
    let _ = writeln!(
        j,
        "    \"f32_blocking\": [{}, {}, {}]",
        info.f32_blocking.0, info.f32_blocking.1, info.f32_blocking.2
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"thread_counts\": {thread_counts:?},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"dtype\": \"{}\", \"path\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \
             \"threads\": {}, \"scalar_gops\": {:.4}, \"simd_gops\": {:.4}, \
             \"speedup\": {:.3}}}",
            r.dtype,
            r.path,
            r.m,
            r.n,
            r.k,
            r.threads,
            r.scalar_gops,
            r.simd_gops,
            r.speedup()
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");

    let out = "BENCH_host_gemm.json";
    std::fs::write(out, &j).expect("write BENCH_host_gemm.json");
    println!("\nwrote {out}");
}
