//! Fig. 13: per-layer normalized speedup (higher is better) and
//! instruction count (lower is better) for the CNN benchmarks, with
//! OpenBLAS-SGEMM on the A64FX-like core as the baseline.

use camp_bench::{fig13_methods, header, SimRunner};
use camp_gemm::Method;
use camp_models::{cnn, Benchmark};
use camp_pipeline::CoreConfig;

fn main() {
    header("Fig. 13", "CNN per-layer speedup + instruction-count ratio (vs OpenBLAS)");
    let sim = SimRunner::from_cli();
    let methods = fig13_methods();
    print!("{:10} {:>5}", "bench", "layer");
    for m in methods {
        print!(" {:>12}", m.name());
    }
    println!();
    println!("paper avgs: CAMP-4bit up to 11–17x, CAMP-8bit ~2x handv-int8, gemmlowp 1.5–2x");

    for bench in [Benchmark::AlexNet, Benchmark::ResNet, Benchmark::MobileNet, Benchmark::Vgg] {
        let layers = cnn::layers(bench);
        let mut sums = vec![(0.0f64, 0.0f64); methods.len()];
        for (li, &shape) in layers.iter().enumerate() {
            let base = sim.run(CoreConfig::a64fx(), Method::OpenblasF32, shape);
            print!("{:10} {:>5}", bench.name(), li + 1);
            for (mi, &m) in methods.iter().enumerate() {
                let r = sim.run(CoreConfig::a64fx(), m, shape);
                let spd = base.stats.cycles as f64 / r.stats.cycles as f64;
                let ic = r.stats.insts as f64 / base.stats.insts as f64;
                sums[mi].0 += spd;
                sums[mi].1 += ic;
                print!(" {:>6.2}/{:<5.2}", spd, ic);
            }
            println!();
        }
        print!("{:10} {:>5}", bench.name(), "Avg");
        for (mi, _) in methods.iter().enumerate() {
            print!(
                " {:>6.2}/{:<5.2}",
                sums[mi].0 / layers.len() as f64,
                sums[mi].1 / layers.len() as f64
            );
        }
        println!();
        println!();
    }
    println!("(each cell: speedup/IC-ratio)");
}
