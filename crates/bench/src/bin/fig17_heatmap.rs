//! Fig. 17: heatmap of the percentage of vector instructions the CAMP
//! implementation needs relative to handv-int8 and gemmlowp, split into
//! reads (R), writes (W) and arithmetic (Alu). Lower is better.

use camp_bench::{header, SimRunner};
use camp_gemm::Method;
use camp_models::{cnn, Benchmark, GemmShape, LlmModel};
use camp_pipeline::CoreConfig;

fn pct(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        100.0 * a as f64 / b as f64
    }
}

fn median_shape(b: Benchmark) -> GemmShape {
    let mut ls = cnn::layers(b);
    ls.sort_by_key(|s| s.ops());
    ls[ls.len() / 2]
}

fn main() {
    header("Fig. 17", "CAMP vector instructions as % of handv-int8 / gemmlowp");
    let sim = SimRunner::from_cli();
    println!(
        "{:14} {:>8} {:>8} {:>9} {:>8} {:>8} {:>9}   paper: 10-47%",
        "benchmark", "R-hnd8", "W-hnd8", "Alu-hnd8", "R-lowp", "W-lowp", "Alu-lowp"
    );

    let mut cases: Vec<(String, GemmShape)> = vec![
        ("AlexNet".into(), median_shape(Benchmark::AlexNet)),
        ("SMM".into(), GemmShape::new(512, 512, 512)),
        ("MobileNet".into(), median_shape(Benchmark::MobileNet)),
        ("ResNet".into(), median_shape(Benchmark::ResNet)),
        ("VGG".into(), median_shape(Benchmark::Vgg)),
    ];
    for m in LlmModel::all() {
        cases.push((format!("{} FF", m.name()), m.config().ff_shape()));
        cases.push((format!("{} SA", m.name()), m.config().sa_shape()));
    }

    for (name, shape) in cases {
        let camp = sim.run(CoreConfig::a64fx(), Method::Camp8, shape);
        let hnd8 = sim.run(CoreConfig::a64fx(), Method::HandvInt8, shape);
        let lowp = sim.run(CoreConfig::a64fx(), Method::Gemmlowp, shape);
        println!(
            "{:14} {:>7.1}% {:>7.1}% {:>8.1}% {:>7.1}% {:>7.1}% {:>8.1}%",
            name,
            pct(camp.stats.vector_reads(), hnd8.stats.vector_reads()),
            pct(camp.stats.vector_writes(), hnd8.stats.vector_writes()),
            pct(camp.stats.vector_alu(), hnd8.stats.vector_alu()),
            pct(camp.stats.vector_reads(), lowp.stats.vector_reads()),
            pct(camp.stats.vector_writes(), lowp.stats.vector_writes()),
            pct(camp.stats.vector_alu(), lowp.stats.vector_alu()),
        );
    }
}
