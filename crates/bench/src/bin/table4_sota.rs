//! Table 4: performance/efficiency comparison with state-of-the-art edge
//! designs on the reference convolution (input 16×16×32, filters
//! 64×3×3×32). Competitor rows are cited from the paper; the "This work"
//! row is measured on the edge-SoC simulator + energy/area models.

use camp_bench::{harness_options, header, SimRunner};
use camp_energy::{AreaModel, EnergyModel, TechNode};
use camp_gemm::Method;
use camp_models::Conv2d;
use camp_pipeline::CoreConfig;

fn main() {
    header("Table 4", "Edge conv benchmark vs state of the art");
    let (conv, h, w) = Conv2d::table4_benchmark();
    let shape = conv.gemm_shape(h, w);
    println!("benchmark conv as GeMM: {shape} ({} MACs)", shape.macs());

    println!(
        "\n{:16} {:>10} {:>6} {:>8} {:>10} {:>12}   (cited rows from Table 4)",
        "architecture", "data", "tech", "area mm²", "GOPS", "TOPS/W"
    );
    for (name, data, tech, area, perf, eff) in [
        ("PULP-NN [25]", "8b/4b/2b", "-", "-", "0.6-0.2", "-"),
        ("Bruschi+ [13]", "8b/4b/2b", "-", "-", "6.1-2.4", "-"),
        ("Ottavi+ [46]", "8b/4b/2b", "22", "0.002", "1.1-3.3", "0.2-0.6"),
        ("XpulpNN [26]", "8b/4b/2b", "22", "8x0.04", "19.8-47.9", "0.7-1.1"),
        ("Mix-GEMM [51]", "8b-2b", "22", "0.0136", "4.2-7.9", "0.4-0.8"),
    ] {
        println!("{name:16} {data:>10} {tech:>6} {area:>8} {perf:>10} {eff:>12}");
    }

    // This work: measured.
    let opts = harness_options();
    let sim = SimRunner::from_cli();
    let edge = CoreConfig::edge_riscv();
    let e = EnergyModel::edge_22nm();
    let area = AreaModel::paper().report(TechNode::gf22());
    let mut perf = Vec::new();
    let mut eff = Vec::new();
    for method in [Method::Camp8, Method::Camp4] {
        let r = sim.simulate(edge, method, shape.m, shape.n, shape.k, &opts);
        let rep = e.evaluate(&r.stats);
        perf.push(rep.gops);
        eff.push(rep.gops_per_watt / 1000.0);
    }
    println!(
        "{:16} {:>10} {:>6} {:>8.4} {:>4.1}-{:<5.1} {:>6.2}-{:<5.2}   measured",
        "This work", "8b/4b", "22", area.mm2, perf[0], perf[1], eff[0], eff[1]
    );
    println!("\npaper row: area 0.0782, perf 12.6-21.7 GOPS, eff 0.2-0.3 TOPS/W");
    println!("paper §6.2 prose: conv 13/23 GOPS, 270/405 GOPS/W for 8-/4-bit");
}
