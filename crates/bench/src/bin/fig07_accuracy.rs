//! Fig. 7: model accuracy vs weight/input bit-width.
//!
//! Substitution experiment (see DESIGN.md §1.12): a pure-Rust MLP on a
//! synthetic classification task, post-training-quantized at every
//! (weight, input) bit-width pair. The paper's claim being reproduced:
//! accuracy is roughly flat down to 4 bits and collapses below, which
//! justifies the 4-bit building block.

use camp_bench::header;
use camp_quant::{run_accuracy_grid, StudyConfig};

fn main() {
    header("Fig. 7", "Accuracy vs weight/input bit-width (synthetic-MLP substitution)");
    let grid = run_accuracy_grid(&StudyConfig::default());
    println!("fp32 test accuracy: {:.1}%", 100.0 * grid.fp32_accuracy);
    println!("\n{:>10} | input bits 2..8", "wt bits");
    print!("{:>10} |", "");
    for ib in 2..=8 {
        print!("{ib:>7}");
    }
    println!();
    for wb in 2..=8u32 {
        print!("{wb:>10} |");
        for ib in 2..=8u32 {
            print!("{:>6.1}%", 100.0 * grid.at(wb, ib));
        }
        println!();
    }
    println!("\npaper shape: flat down to 4 bits, significant degradation below 4.");
    let flat = grid.at(4, 4) > grid.fp32_accuracy - 0.12;
    let cliff = grid.at(2, 2) < grid.at(4, 4);
    println!("measured: 4-bit within 12pp of fp32: {flat}; 2-bit below 4-bit: {cliff}");
}
