//! Batched vs per-call host-engine GeMM on the Fig. 14 attention
//! inventory (BERT base, s = 128).
//!
//! The LLM evaluation is dominated by many *small* per-head GeMMs —
//! (s×dₕ)·(dₕ×s) score and (s×s)·(s×dₕ) context products, 12 heads ×
//! 12 layers — shapes where per-call setup (thread fan-out, operand
//! re-packing) swamps compute. This harness times the same problem
//! list two ways on identically configured engines:
//!
//! * **per-call loop**: one `gemm_i8` call per problem (row-partition
//!   threads spawned per call, B re-packed per call);
//! * **batched**: one `gemm_i8_batch` call (threads spawned once per
//!   batch, each unique B packed once).
//!
//! Results are checked bit-identical before timing. Set `CAMP_THREADS`
//! to override the engine worker count and `CAMP_BENCH_REPS` for more
//! stable numbers.

use camp_core::{CampEngine, GemmProblem};
use camp_models::LlmModel;
use std::time::Instant;

/// Best-of-`reps` wall time in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn run_set(name: &str, problems: &[GemmProblem<'_>], threads: usize, reps: usize) -> f64 {
    let mut eng_batch = CampEngine::with_threads(threads);
    let mut eng_loop = CampEngine::with_threads(threads);

    // correctness + pool warm-up before timing
    let (batch_c, batch_stats) = eng_batch.gemm_i8_batch_with_stats(problems);
    let mut loop_packed = 0u64;
    for (c, p) in batch_c.iter().zip(problems) {
        let (c_ref, s) = eng_loop.gemm_i8_with_stats(p.m, p.n, p.k, p.a, p.b);
        assert_eq!(c, &c_ref, "batched result diverged at {}x{}x{}", p.m, p.n, p.k);
        loop_packed += s.packed_bytes();
    }

    let t_loop = time_best(reps, || {
        for p in problems {
            let _ = eng_loop.gemm_i8(p.m, p.n, p.k, p.a, p.b);
        }
    });
    let t_batch = time_best(reps, || {
        let _ = eng_batch.gemm_i8_batch(problems);
    });
    let speedup = t_loop / t_batch;
    let macs: u64 = problems.iter().map(GemmProblem::macs).sum();
    println!("{name}");
    println!(
        "  {} GeMMs, {:.1} M MACs, pack traffic {:.2} MiB per-call vs {:.2} MiB batched ({:.1}x dedup)",
        problems.len(),
        macs as f64 / 1e6,
        mib(loop_packed),
        mib(batch_stats.packed_bytes()),
        loop_packed as f64 / batch_stats.packed_bytes() as f64,
    );
    println!(
        "  per-call loop {:8.2} ms   batched {:8.2} ms   speedup {:.2}x",
        t_loop * 1e3,
        t_batch * 1e3,
        speedup
    );
    speedup
}

fn main() {
    // Both sides run the same engine configuration: a server-style
    // worker pool of at least 16 threads (more if the host has more
    // cores). The per-call loop pays that pool's fan-out on every GeMM;
    // the batch pays it once — which, with B dedup, is exactly the
    // overhead being measured. On hosts with fewer cores than the pool
    // the win is spawn amortization + pack dedup rather than parallel
    // scaling (the printed core count makes the basis explicit).
    let threads =
        std::env::var("CAMP_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).max(16)
        });
    let reps = std::env::var("CAMP_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let cfg = LlmModel::BertBase.config();
    let workload = cfg.attention_workload(0xA77E_1710);
    let all = workload.problems();
    // the per-head core of the inventory: score/context products only
    // (each layer's slice is [4 projections, then 2 GeMMs per head])
    let per_head: Vec<GemmProblem<'_>> =
        all.chunks(4 + 2 * cfg.heads).flat_map(|layer| layer[4..].iter().copied()).collect();

    println!("==============================================================");
    println!("attention_batch: batched vs per-call engine GeMM (BERT base, s=128)");
    println!(
        "engine threads={threads} (CAMP_THREADS) on {cores} core(s), \
         same config both sides, best of {reps} (CAMP_BENCH_REPS)"
    );
    println!("==============================================================");
    let headline = run_set("per-head attention (score + context)", &per_head, threads, reps);
    run_set("full attention inventory (+ QKV/output projections)", &all, threads, reps);
    println!("target: batched >= 1.3x on the per-head set -> {:.2}x", headline);
}
