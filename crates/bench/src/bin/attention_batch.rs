//! Batched vs per-call host-backend GeMM on the Fig. 14 attention
//! inventory (BERT base, s = 128), through the unified request API.
//!
//! The LLM evaluation is dominated by many *small* per-head GeMMs —
//! (s×dₕ)·(dₕ×s) score and (s×s)·(s×dₕ) context products, 12 heads ×
//! 12 layers — shapes where per-call setup (thread fan-out, operand
//! re-packing) swamps compute. This harness builds the problem list
//! **once** as typed [`GemmRequest`]s and times it two ways on
//! identically configured engines:
//!
//! * **per-call loop**: one `CampBackend::execute` per request (setup
//!   and B packing per call; small requests run on one worker, so the
//!   pool buys them nothing);
//! * **batched**: one `CampBackend::execute_batch` (setup once per
//!   batch, each unique B packed once — requests share operand buffers,
//!   which is what the dedup keys on — and small items spread across
//!   all workers).
//!
//! Results are checked bit-identical before timing. The headline is the
//! pack-traffic dedup factor; the wall-clock speedup additionally needs
//! real cores (cross-item parallelism is the batch's other win). Set
//! `CAMP_THREADS` (the unified thread story — see `camp_core::backend`)
//! to override the engine worker count and `CAMP_BENCH_REPS` for more
//! stable numbers.

use camp_core::backend::{host_threads_from_env, CampBackend};
use camp_core::{CampEngine, GemmRequest};
use camp_models::LlmModel;
use std::time::Instant;

/// Best-of-`reps` wall time in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn host_packed(backend_stats: &camp_core::ExecStats) -> u64 {
    backend_stats.as_host().expect("host engine stats").packed_bytes()
}

fn macs(reqs: &[GemmRequest]) -> u64 {
    reqs.iter().map(|r| (r.m() * r.n().unwrap_or(0) * r.k().unwrap_or(0)) as u64).sum()
}

fn run_set(name: &str, reqs: &[GemmRequest], threads: usize, reps: usize) -> (f64, f64) {
    let mut eng_batch = CampEngine::with_threads(threads);
    let mut eng_loop = CampEngine::with_threads(threads);

    // correctness + pool warm-up before timing
    let batch = eng_batch.execute_batch(reqs).expect("well-formed batch");
    let mut loop_packed = 0u64;
    for (out, req) in batch.outputs.iter().zip(reqs) {
        let per_call = eng_loop.execute(req).expect("well-formed request");
        assert_eq!(
            out,
            &per_call.output,
            "batched result diverged at {}x{}x{:?}",
            req.m(),
            out.n,
            req.k()
        );
        loop_packed += host_packed(&per_call.stats);
    }
    let batch_packed = host_packed(&batch.stats);

    let t_loop = time_best(reps, || {
        for req in reqs {
            let _ = eng_loop.execute(req).expect("well-formed request");
        }
    });
    let t_batch = time_best(reps, || {
        let _ = eng_batch.execute_batch(reqs).expect("well-formed batch");
    });
    let speedup = t_loop / t_batch;
    println!("{name}");
    println!(
        "  {} GeMMs, {:.1} M MACs, pack traffic {:.2} MiB per-call vs {:.2} MiB batched ({:.1}x dedup)",
        reqs.len(),
        macs(reqs) as f64 / 1e6,
        mib(loop_packed),
        mib(batch_packed),
        loop_packed as f64 / batch_packed as f64,
    );
    println!(
        "  per-call loop {:8.2} ms   batched {:8.2} ms   speedup {:.2}x",
        t_loop * 1e3,
        t_batch * 1e3,
        speedup
    );
    (speedup, loop_packed as f64 / batch_packed as f64)
}

fn main() {
    // Both sides run the same engine configuration: a server-style
    // worker pool of at least 16 threads (more if the host has more
    // cores), overridable through the unified CAMP_THREADS story. A
    // small per-call request runs on one worker (fan-out would cost
    // more than it buys), so the batch's wins are B-pack dedup plus
    // cross-item parallelism; on hosts with fewer cores than the pool
    // only the dedup shows up in wall-clock (the printed core count
    // makes the basis explicit).
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let threads =
        if std::env::var("CAMP_THREADS").is_ok() { host_threads_from_env() } else { cores.max(16) };
    let reps = std::env::var("CAMP_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(5);

    let cfg = LlmModel::BertBase.config();
    let workload = cfg.attention_workload(0xA77E_1710);
    let all = workload.gemm_requests(camp_core::DType::I8);
    // the per-head core of the inventory: score/context products only
    // (each layer's slice is [4 projections, then 2 GeMMs per head])
    let per_head: Vec<GemmRequest> =
        all.chunks(4 + 2 * cfg.heads).flat_map(|layer| layer[4..].iter().cloned()).collect();

    println!("==============================================================");
    println!("attention_batch: batched vs per-call GemmRequests (BERT base, s=128)");
    println!(
        "engine threads={threads} (CAMP_THREADS) on {cores} core(s), \
         same config both sides, best of {reps} (CAMP_BENCH_REPS)"
    );
    println!("==============================================================");
    let (speedup, dedup) =
        run_set("per-head attention (score + context)", &per_head, threads, reps);
    run_set("full attention inventory (+ QKV/output projections)", &all, threads, reps);
    println!(
        "target: per-head B-pack dedup >= 1.5x -> {dedup:.2}x (wall-clock {speedup:.2}x on {cores} core(s))"
    );
}
