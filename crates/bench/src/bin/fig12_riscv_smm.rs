//! Fig. 12: square-matrix multiplication on the edge RISC-V SoC —
//! normalized speed-up and instruction reduction of CAMP 8-/4-bit vs the
//! BLIS-int32 baseline, across matrix sizes.

use camp_bench::{harness_options, header, SimRunner};
use camp_gemm::Method;
use camp_pipeline::CoreConfig;

fn main() {
    header("Fig. 12", "Edge RISC-V SMM: speedup + instruction reduction vs BLIS-int32");
    let opts = harness_options();
    let sim = SimRunner::from_cli();
    let edge = CoreConfig::edge_riscv();
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "size", "spd 8bit", "spd 4bit", "instred8", "instred4", "GOPS8", "GOPS4"
    );
    println!("{:>6} paper: speedups ≈7–25x growing with size; 4bit/8bit ≈ linear", "");
    for &s in &[64usize, 128, 192, 256, 320, 384, 448, 512] {
        let base = sim.simulate(edge, Method::HandvInt32, s, s, s, &opts);
        let c8 = sim.simulate(edge, Method::Camp8, s, s, s, &opts);
        let c4 = sim.simulate(edge, Method::Camp4, s, s, s, &opts);
        println!(
            "{:>6} {:>9.2}x {:>9.2}x {:>11.2}x {:>11.2}x {:>9.1} {:>9.1}",
            s,
            base.stats.cycles as f64 / c8.stats.cycles as f64,
            base.stats.cycles as f64 / c4.stats.cycles as f64,
            base.stats.insts as f64 / c8.stats.insts as f64,
            base.stats.insts as f64 / c4.stats.insts as f64,
            c8.serial_gops,
            c4.serial_gops,
        );
    }
    println!("\npaper §6.2: CAMP reaches 16 GOPS (8-bit) and 28 GOPS (4-bit) on SMM.");
    println!("(all columns are the single-core view — GemmResult::into_single_core;");
    println!(" the parallel lane model is documented in docs/SIMULATOR.md)");
}
