//! Fig. 5: the hybrid multiplier — exhaustive correctness self-check and
//! the divide-and-conquer block scaling that aligns it with outer
//! products (§3).

use camp_bench::header;
use camp_core::hybrid::HybridMultiplier;

fn main() {
    header("Fig. 5", "Hybrid multiplier: structure, scaling and self-check");

    // exhaustive 8×8 self-check
    let mut h = HybridMultiplier::new();
    let mut checked = 0u64;
    for a in i8::MIN..=i8::MAX {
        for b in i8::MIN..=i8::MAX {
            assert_eq!(h.mul_i8(a, b), a as i16 * b as i16);
            checked += 1;
        }
    }
    println!("exhaustive 8-bit check: {checked} products OK");
    println!(
        "activity: {} 4-bit block mults ({} per product), {} recombine adds",
        h.activity().block_mults,
        h.activity().block_mults / checked,
        h.activity().recombine_adds
    );

    println!("\nblock scaling (Eq. 2: halving width quarters the blocks):");
    println!("{:>8} {:>12}", "bits", "4-bit blocks");
    for bits in [4u32, 8, 16, 32] {
        println!("{bits:>8} {:>12}", HybridMultiplier::blocks_for(bits));
    }

    println!("\nouter-product alignment (the §3 insight):");
    println!("  8-bit mode: 256 8-bit products/issue × 4 blocks = 1024 blocks (100% of array)");
    println!("  4-bit mode: 512 4-bit products/issue × 1 block  =  512 blocks ( 50% of array)");
    println!("  halving operand width doubles vector elements and quadruples pairwise");
    println!("  products — matching the recursive multiplier decomposition exactly.");
}
