//! Fig. 18: CAMP vs Arm MMLA (`smmla`) vs OpenBLAS on square matrix
//! multiplication, normalized to OpenBLAS (size indices 3–6 of the SMM
//! suite: 128, 256, 512, 1024).

use camp_bench::{header, SimRunner};
use camp_gemm::Method;
use camp_models::GemmShape;
use camp_pipeline::CoreConfig;

fn main() {
    header("Fig. 18", "CAMP vs MMLA vs OpenBLAS (SMM, normalized to OpenBLAS)");
    let sim = SimRunner::from_cli();
    println!(
        "{:>6} {:>10} {:>10} {:>10}   paper: camp4 8.2-17.4x, camp8 4.9-8.5x, MMLA 2.2-2.7x",
        "size", "CAMP-4bit", "CAMP-8bit", "MMLA"
    );
    for &s in &[128usize, 256, 512, 1024] {
        let shape = GemmShape::new(s, s, s);
        let base = sim.run(CoreConfig::a64fx(), Method::OpenblasF32, shape);
        let c4 = sim.run(CoreConfig::a64fx(), Method::Camp4, shape);
        let c8 = sim.run(CoreConfig::a64fx(), Method::Camp8, shape);
        let mm = sim.run(CoreConfig::a64fx(), Method::Mmla, shape);
        let b = base.stats.cycles as f64;
        println!(
            "{:>6} {:>9.1}x {:>9.1}x {:>9.1}x",
            s,
            b / c4.stats.cycles as f64,
            b / c8.stats.cycles as f64,
            b / mm.stats.cycles as f64
        );
    }
    println!("\n(CAMP's advantage grows with size while MMLA's register pressure");
    println!(" limits it — the §7.2 observation.)");
}
