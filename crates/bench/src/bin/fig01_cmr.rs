//! Fig. 1: L1D cache miss rate for naive matmul vs ulmBLAS-style blocked
//! GeMM — square matrices 128–1024 plus ResNet layers — on the
//! A64FX-like hierarchy.

use camp_bench::header;
use camp_cache::HierarchyConfig;
use camp_gemm::trace::{blocked_trace, naive_trace, BlockedTraceParams};
use camp_models::{cnn, Benchmark};

fn main() {
    header("Fig. 1", "L1D cache miss rate: naive Matmul vs ulmBLAS (blocked)");
    let cfg = HierarchyConfig::a64fx();
    let budget = 30_000_000;
    let p = BlockedTraceParams::default();

    println!(
        "{:12} {:>12} {:>12}   paper≈ naive 23-36%, ulmBLAS <5%",
        "case", "naive CMR", "ulmBLAS CMR"
    );
    for &s in &[128usize, 256, 512, 1024] {
        let nv = naive_trace(cfg, s, s, s, 4, budget);
        let bl = blocked_trace(cfg, s, s, s, 4, p, budget);
        println!(
            "S-{:<10} {:>11.1}% {:>11.1}%",
            s,
            100.0 * nv.l1_miss_rate,
            100.0 * bl.l1_miss_rate
        );
    }
    for (i, shape) in cnn::layers(Benchmark::ResNet).iter().take(7).enumerate() {
        let nv = naive_trace(cfg, shape.m, shape.n, shape.k, 4, budget);
        let bl = blocked_trace(cfg, shape.m, shape.n, shape.k, 4, p, budget);
        println!(
            "Res-L{:<7} {:>11.1}% {:>11.1}%",
            i + 1,
            100.0 * nv.l1_miss_rate,
            100.0 * bl.l1_miss_rate
        );
    }
}
