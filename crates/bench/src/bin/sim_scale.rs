//! Simulator scaling sweep: the same blocked simulated GeMM workload
//! on 1, 2 and 4 scheduler threads (`SimRunner::with_threads`), to
//! track the wall-clock payoff of the parallel driver. Results are
//! bit-identical at every thread count — the driver's decomposition,
//! not the scheduler, defines them — and the sweep asserts that before
//! timing anything.
//!
//! Results land in `BENCH_sim.json` (schema-versioned, one row per
//! `(mode, threads)` key); `sim_scale --check-baseline` re-runs the
//! smoke-sized sweep and exits 1 if simulated-GeMMs/s falls below the
//! checked-in baseline row by more than `CAMP_BENCH_TOLERANCE`
//! (relative, default 0.5). `CAMP_SIM_SMOKE=1` forces the smoke-sized
//! sweep outside the gate.

use camp_bench::SimRunner;
use camp_gemm::{GemmOptions, Method};
use camp_pipeline::CoreConfig;
use std::fmt::Write as _;
use std::time::Instant;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// One measured point: `mode` + `threads` is the row key the baseline
/// gate matches on.
struct SimRow {
    mode: &'static str,
    threads: usize,
    m: usize,
    n: usize,
    k: usize,
    reps: usize,
    sims_per_sec: f64,
    speedup_vs_serial: f64,
}

/// Time `reps` simulations of one blocked problem on `runner`.
fn time_sweep(runner: &SimRunner, shape: (usize, usize, usize), reps: usize) -> f64 {
    let (m, n, k) = shape;
    let opts =
        GemmOptions { verify: false, blocking: Some((32, 32, 128)), ..GemmOptions::default() };
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = runner.simulate(CoreConfig::a64fx(), Method::Camp8, m, n, k, &opts);
    }
    t0.elapsed().as_secs_f64()
}

fn sweep(shape: (usize, usize, usize), reps: usize, mode: &'static str) -> Vec<SimRow> {
    let (m, n, k) = shape;
    let opts =
        GemmOptions { verify: false, blocking: Some((32, 32, 128)), ..GemmOptions::default() };
    // bit-identity across thread counts, before any timing
    let golden =
        SimRunner::with_threads(1).simulate(CoreConfig::a64fx(), Method::Camp8, m, n, k, &opts);
    let mut rows = Vec::new();
    let mut serial_time = 0.0f64;
    for threads in [1usize, 2, 4] {
        let runner = SimRunner::with_threads(threads);
        let r = runner.simulate(CoreConfig::a64fx(), Method::Camp8, m, n, k, &opts);
        assert_eq!(
            r.serial_cycles, golden.serial_cycles,
            "simulated cycles must not depend on scheduler threads"
        );
        assert_eq!(r.stats.macs, golden.stats.macs, "simulated work must be thread-invariant");
        let secs = time_sweep(&runner, shape, reps);
        if threads == 1 {
            serial_time = secs;
        }
        rows.push(SimRow {
            mode,
            threads,
            m,
            n,
            k,
            reps,
            sims_per_sec: reps as f64 / secs,
            speedup_vs_serial: serial_time / secs,
        });
    }
    rows
}

/// Pull `"key": value` out of one hand-rolled JSON row line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// Every baseline row matching a fresh row's (mode, threads) key must
/// keep `sims_per_sec >= baseline * (1 - tol)`.
fn check_baseline(rows: &[SimRow], tol: f64) -> bool {
    let path = "BENCH_sim.json";
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-baseline: cannot read {path}: {e}");
            return false;
        }
    };
    let mut matched = 0usize;
    let mut ok = true;
    for line in text.lines() {
        let (Some(mode), Some(threads), Some(base)) =
            (field(line, "mode"), field(line, "threads"), field(line, "sims_per_sec"))
        else {
            continue;
        };
        let (Ok(threads), Ok(base)) = (threads.parse::<usize>(), base.parse::<f64>()) else {
            continue;
        };
        let Some(r) = rows.iter().find(|r| r.mode == mode && r.threads == threads) else {
            continue;
        };
        matched += 1;
        let floor = base * (1.0 - tol);
        let verdict = if r.sims_per_sec >= floor { "ok  " } else { "FAIL" };
        println!(
            "{verdict} {mode:<6} threads={threads}: {:.2} sims/s vs baseline {base:.2} \
             (floor {floor:.2})",
            r.sims_per_sec
        );
        if r.sims_per_sec < floor {
            ok = false;
        }
    }
    if matched == 0 {
        eprintln!("check-baseline: no baseline rows matched the sweep (schema drift?)");
        return false;
    }
    println!(
        "check-baseline: {matched} rows compared, tolerance {tol} — {}",
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

fn main() {
    let check = std::env::args().any(|a| a == "--check-baseline");
    let smoke = check || std::env::var("CAMP_SIM_SMOKE").map(|v| v == "1").unwrap_or(false);

    let (shape, reps) = if smoke { ((64, 64, 128), 2) } else { ((96, 96, 256), 4) };
    println!("==============================================================");
    println!("sim_scale: --sim-threads scaling of the parallel simulation driver");
    println!(
        "camp.s8 {}x{}x{} blocked (32,32,128) on the A64FX-like core, {} reps{}",
        shape.0,
        shape.1,
        shape.2,
        reps,
        if smoke { " [smoke]" } else { "" }
    );
    println!("==============================================================");

    let mode = if smoke { "smoke" } else { "full" };
    let mut rows = sweep(shape, reps, mode);
    // a full run also measures the smoke-sized sweep, so the checked-in
    // baseline always contains the rows a CI `--check-baseline` run
    // (which is smoke-sized) compares against
    if !smoke {
        rows.extend(sweep((64, 64, 128), 2, "smoke"));
    }

    for r in &rows {
        println!(
            "{:<6} threads={}: {:>7.2} sims/s  {:.2}x vs serial",
            r.mode, r.threads, r.sims_per_sec, r.speedup_vs_serial
        );
    }

    if check {
        let tol = env_f64("CAMP_BENCH_TOLERANCE", 0.5);
        if !check_baseline(&rows, tol) {
            std::process::exit(1);
        }
        return;
    }

    // ---- BENCH_sim.json (hand-rolled: no serde in the image) ----
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"sim_scale\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"m\": {}, \"n\": {}, \"k\": {}, \
             \"reps\": {}, \"sims_per_sec\": {:.3}, \"speedup_vs_serial\": {:.3}}}",
            r.mode, r.threads, r.m, r.n, r.k, r.reps, r.sims_per_sec, r.speedup_vs_serial
        );
        j.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    let out = "BENCH_sim.json";
    std::fs::write(out, &j).expect("write BENCH_sim.json");
    println!("\nwrote {out}");
}
