//! Criterion benches for the quantization stack.

use camp_quant::{AffineQuantizer, SymmetricQuantizer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_quant(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantization");
    g.sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    let data: Vec<f32> = (0..65536).map(|i| ((i as f32) * 0.173).sin() * 4.0).collect();
    g.bench_function("symmetric_fit_quantize_64k", |b| {
        b.iter(|| {
            let q = SymmetricQuantizer::fit(&data, 8);
            q.quantize_all(&data)
        })
    });
    g.bench_function("affine_fit_quantize_64k", |b| {
        b.iter(|| {
            let q = AffineQuantizer::fit(&data, 8);
            data.iter().map(|&x| q.quantize(x)).collect::<Vec<i8>>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
