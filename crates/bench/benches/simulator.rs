//! Criterion benches for the simulation stack itself: end-to-end
//! simulated-GeMM latency per core model, the parallel driver across
//! (jc, pc) block units and batch items (`--sim-threads N` /
//! `CAMP_SIM_THREADS` picks the pool size), and cache trace throughput.

use camp_bench::SimRunner;
use camp_cache::{Hierarchy, HierarchyConfig};
use camp_gemm::{simulate_gemm, GemmOptions, GemmProblem, Method};
use camp_pipeline::CoreConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let opts = GemmOptions { verify: false, ..GemmOptions::default() };
    g.bench_function("camp8_gemm_64x64x128_a64fx", |b| {
        b.iter(|| simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 64, 64, 128, &opts))
    });
    g.bench_function("camp8_gemm_64x64x128_edge", |b| {
        b.iter(|| simulate_gemm(CoreConfig::edge_riscv(), Method::Camp8, 64, 64, 128, &opts))
    });
    g.bench_function("openblas_gemm_64x64x128_a64fx", |b| {
        b.iter(|| simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, 64, 64, 128, &opts))
    });
    g.finish();

    // the parallel driver: same work, units scheduled on the pool; the
    // serial/N-thread results are bit-identical, so this measures pure
    // wall-clock. A blocking override splits the problem into several
    // lanes and depth blocks even at modest size.
    let mut gp = c.benchmark_group("simulator_parallel");
    gp.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let popts =
        GemmOptions { verify: false, blocking: Some((32, 32, 128)), ..GemmOptions::default() };
    let serial = SimRunner::with_threads(1);
    let pool = SimRunner::from_cli();
    gp.bench_function("camp8_96x96x256_blocked_serial", |b| {
        b.iter(|| serial.simulate(CoreConfig::a64fx(), Method::Camp8, 96, 96, 256, &popts))
    });
    gp.bench_function(&format!("camp8_96x96x256_blocked_{}thr", pool.threads()), |b| {
        b.iter(|| pool.simulate(CoreConfig::a64fx(), Method::Camp8, 96, 96, 256, &popts))
    });
    // batch of attention-style small problems sharing one weight matrix:
    // B-dedup plus cross-item parallelism
    let (n, k) = (32, 64);
    let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
    let acts: Vec<Vec<i8>> =
        (0..8).map(|h| (0..16 * k).map(|i| ((i + h) % 13) as i8 - 6).collect()).collect();
    let problems: Vec<GemmProblem<'_>> =
        acts.iter().map(|a| GemmProblem::new(16, n, k, a, &w)).collect();
    let bopts = GemmOptions { verify: false, ..GemmOptions::default() };
    gp.bench_function("batch8_shared_b_serial", |b| {
        b.iter(|| serial.simulate_batch(CoreConfig::a64fx(), &problems, &bopts))
    });
    gp.bench_function(&format!("batch8_shared_b_{}thr", pool.threads()), |b| {
        b.iter(|| pool.simulate_batch(CoreConfig::a64fx(), &problems, &bopts))
    });
    gp.finish();

    let mut g2 = c.benchmark_group("cache_trace");
    g2.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    g2.bench_function("streaming_1M_accesses", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::a64fx());
            for i in 0..1_000_000u64 {
                h.access(i * 64 % (1 << 22), 64, false, 1);
            }
            h.l1d().stats().misses
        })
    });
    g2.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
