//! Criterion benches for the simulation stack itself: end-to-end
//! simulated-GeMM latency per core model and cache trace throughput.

use camp_cache::{Hierarchy, HierarchyConfig};
use camp_gemm::{simulate_gemm, GemmOptions, Method};
use camp_pipeline::CoreConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    let opts = GemmOptions { verify: false, ..GemmOptions::default() };
    g.bench_function("camp8_gemm_64x64x128_a64fx", |b| {
        b.iter(|| simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 64, 64, 128, &opts))
    });
    g.bench_function("camp8_gemm_64x64x128_edge", |b| {
        b.iter(|| simulate_gemm(CoreConfig::edge_riscv(), Method::Camp8, 64, 64, 128, &opts))
    });
    g.bench_function("openblas_gemm_64x64x128_a64fx", |b| {
        b.iter(|| simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, 64, 64, 128, &opts))
    });
    g.finish();

    let mut g2 = c.benchmark_group("cache_trace");
    g2.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(200));
    g2.bench_function("streaming_1M_accesses", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(HierarchyConfig::a64fx());
            for i in 0..1_000_000u64 {
                h.access(i * 64 % (1 << 22), 64, false, 1);
            }
            h.l1d().stats().misses
        })
    });
    g2.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
