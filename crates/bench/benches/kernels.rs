//! Criterion benches for the native (host-speed) CAMP GeMM engine —
//! the library a downstream user calls — against the naive reference,
//! plus a serial-vs-parallel comparison at an LLM-ish shape so the
//! multi-core speedup is tracked in the perf trajectory.

use camp_core::{camp_gemm_i4, camp_gemm_i8, gemm_i32_ref, CampEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn data(len: usize, seed: i32, lo: i32, hi: i32) -> Vec<i8> {
    (0..len).map(|i| ((i as i32 * seed) % (hi - lo + 1) + lo) as i8).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_gemm");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for &s in &[64usize, 128, 256] {
        let a = data(s * s, 31, -8, 7);
        let b = data(s * s, 17, -8, 7);
        g.bench_with_input(BenchmarkId::new("camp_i8", s), &s, |bch, &s| {
            bch.iter(|| camp_gemm_i8(s, s, s, &a, &b))
        });
        g.bench_with_input(BenchmarkId::new("camp_i4", s), &s, |bch, &s| {
            bch.iter(|| camp_gemm_i4(s, s, s, &a, &b))
        });
        g.bench_with_input(BenchmarkId::new("naive_ref", s), &s, |bch, &s| {
            bch.iter(|| gemm_i32_ref(s, s, s, &a, &b))
        });
    }
    g.finish();
}

/// Serial vs parallel host engine at a BERT-base-like feed-forward
/// shape (512×512×4096). Engines are reused across iterations so the
/// pack pools stay warm — steady-state throughput, no allocator noise.
fn bench_host_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_engine");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let (m, n, k) = (512usize, 512usize, 4096usize);
    let a = data(m * k, 31, -8, 7);
    let b = data(k * n, 17, -8, 7);

    let mut serial = CampEngine::new();
    g.bench_function("camp_i8_512x512x4096_serial", |bch| {
        bch.iter(|| serial.gemm_i8(m, n, k, &a, &b))
    });

    let mut parallel = CampEngine::with_threads(0);
    let threads = parallel.threads();
    g.bench_with_input(
        BenchmarkId::new("camp_i8_512x512x4096_parallel", threads),
        &threads,
        |bch, _| bch.iter(|| parallel.gemm_i8(m, n, k, &a, &b)),
    );
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_host_parallel);
criterion_main!(benches);
