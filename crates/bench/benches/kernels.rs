//! Criterion benches for the native (host-speed) CAMP GeMM engine —
//! the library a downstream user calls — against the naive reference.

use camp_core::{camp_gemm_i4, camp_gemm_i8, gemm_i32_ref};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn data(len: usize, seed: i32, lo: i32, hi: i32) -> Vec<i8> {
    (0..len).map(|i| ((i as i32 * seed) % (hi - lo + 1) + lo) as i8).collect()
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_gemm");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    for &s in &[64usize, 128, 256] {
        let a = data(s * s, 31, -8, 7);
        let b = data(s * s, 17, -8, 7);
        g.bench_with_input(BenchmarkId::new("camp_i8", s), &s, |bch, &s| {
            bch.iter(|| camp_gemm_i8(s, s, s, &a, &b))
        });
        g.bench_with_input(BenchmarkId::new("camp_i4", s), &s, |bch, &s| {
            bch.iter(|| camp_gemm_i4(s, s, s, &a, &b))
        });
        g.bench_with_input(BenchmarkId::new("naive_ref", s), &s, |bch, &s| {
            bch.iter(|| gemm_i32_ref(s, s, s, &a, &b))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
