//! Criterion benches for the native (host-speed) CAMP GeMM engine —
//! the library a downstream user calls — against the naive reference,
//! plus a serial-vs-parallel comparison at an LLM-ish shape so the
//! multi-core speedup is tracked in the perf trajectory. All engine
//! calls go through the unified request surface: requests are built
//! once outside the timed loop (the intended steady-state usage) and
//! re-executed per iteration.

use camp_core::backend::CampBackend;
use camp_core::{gemm_i32_ref, CampEngine, DType, GemmRequest};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn data(len: usize, seed: i32, lo: i32, hi: i32) -> Vec<i8> {
    (0..len).map(|i| ((i as i32 * seed) % (hi - lo + 1) + lo) as i8).collect()
}

fn square_request(s: usize, dtype: DType) -> GemmRequest {
    let a = data(s * s, 31, -8, 7);
    let b = data(s * s, 17, -8, 7);
    GemmRequest::builder()
        .m(s)
        .n(s)
        .k(s)
        .activation(a)
        .weights(camp_core::Operand::from_dense(b))
        .dtype(dtype)
        .build()
        .expect("square shapes are coherent")
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_gemm");
    g.sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));
    let mut engine = CampEngine::new();
    for &s in &[64usize, 128, 256] {
        let a = data(s * s, 31, -8, 7);
        let b = data(s * s, 17, -8, 7);
        let req_i8 = square_request(s, DType::I8);
        let req_i4 = square_request(s, DType::I4);
        g.bench_with_input(BenchmarkId::new("camp_i8", s), &s, |bch, _| {
            bch.iter(|| engine.execute(&req_i8).expect("well-formed"))
        });
        g.bench_with_input(BenchmarkId::new("camp_i4", s), &s, |bch, _| {
            bch.iter(|| engine.execute(&req_i4).expect("well-formed"))
        });
        g.bench_with_input(BenchmarkId::new("naive_ref", s), &s, |bch, &s| {
            bch.iter(|| gemm_i32_ref(s, s, s, &a, &b))
        });
    }
    g.finish();
}

/// Serial vs parallel host engine at a BERT-base-like feed-forward
/// shape (512×512×4096). Engines and the request are reused across
/// iterations so the pack pools stay warm — steady-state throughput,
/// no allocator noise.
fn bench_host_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("host_engine");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let (m, n, k) = (512usize, 512usize, 4096usize);
    let req = GemmRequest::dense(m, n, k, data(m * k, 31, -8, 7), data(k * n, 17, -8, 7))
        .expect("shape is coherent");

    let mut serial = CampEngine::new();
    g.bench_function("camp_i8_512x512x4096_serial", |bch| {
        bch.iter(|| serial.execute(&req).expect("well-formed"))
    });

    let mut parallel = CampEngine::with_threads(0);
    let threads = CampBackend::threads(&parallel);
    g.bench_with_input(
        BenchmarkId::new("camp_i8_512x512x4096_parallel", threads),
        &threads,
        |bch, _| bch.iter(|| parallel.execute(&req).expect("well-formed")),
    );
    g.finish();
}

criterion_group!(benches, bench_gemm, bench_host_parallel);
criterion_main!(benches);
