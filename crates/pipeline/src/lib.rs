//! # camp-pipeline — timing models over the virtual vector ISA
//!
//! Plays the role of gem5 (for the A64FX-like ARM SVE system) and the
//! bare-metal RTL simulation (for the edge RISC-V SoC) in the paper's
//! methodology (§5.1). The timing skeleton is the same for both cores —
//! a *dataflow + resources* model:
//!
//! * instructions dispatch in program order through a configurable-width
//!   front end, bounded by a reorder window (ROB) for the OoO core;
//! * each instruction starts when its sources are ready and a functional
//!   unit of its class is free;
//! * loads get their latency from the `camp-cache` hierarchy; vector
//!   memory operations may be micro-sequenced into multiple beats on the
//!   edge core's narrow (128-bit) memory path;
//! * stores drain through a finite store buffer;
//! * the binding constraint of every instruction is recorded as its stall
//!   cause — **FU**, **Read** (load data / load port) or **Write** (store
//!   buffer / store port) — which reproduces the taxonomy of Fig. 15.
//!
//! The in-order core additionally enforces in-order issue and blocking
//! misses; the OoO core lets independent instructions overlap within its
//! window.
//!
//! # Example
//!
//! ```
//! use camp_isa::asm::Assembler;
//! use camp_isa::reg::{S, V};
//! use camp_pipeline::{CoreConfig, Simulator};
//!
//! let mut a = Assembler::new("axpy-ish");
//! a.li(S(1), 0);
//! a.vload(V(0), S(1), 0);
//! a.vadd_i32(V(1), V(0), V(0));
//! a.vstore(V(1), S(1), 64);
//! let prog = a.finish();
//!
//! let mut sim = Simulator::new(CoreConfig::a64fx(), 1 << 12);
//! sim.run(&prog, 1_000)?;
//! assert!(sim.stats().cycles > 0);
//! # Ok::<(), camp_isa::machine::ExecError>(())
//! ```

mod config;
mod sim;
mod stats;

pub use config::NUM_FU_KINDS;
pub use config::{CoreConfig, CoreKind, FuDesc, FuKind};
pub use sim::Simulator;
pub use stats::SimStats;
