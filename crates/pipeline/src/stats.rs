//! Simulation statistics: everything the figure harnesses consume.

use crate::config::{FuKind, NUM_FU_KINDS};
use camp_cache::CacheStats;
use camp_isa::inst::InstClass;

/// Aggregated statistics of a simulated run (or several runs — the
/// blocked-GeMM driver accumulates across program invocations).
///
/// Two merge operators compose stats blocks (see `docs/SIMULATOR.md`
/// for the full contract):
///
/// * [`SimStats::merge`] — **sequential** composition: everything adds,
///   including `cycles`. Used when one machine runs two program phases
///   back to back (packing then macro-kernels), and within one parallel
///   *lane* of the blocked driver (the depth blocks of a column strip
///   are serialized by the C read-modify-write dependency).
/// * [`SimStats::merge_parallel`] — **parallel** composition: `cycles`
///   is the max across lanes (independent column strips, or independent
///   batch items, finish together at the slowest lane), every other
///   field — instruction counts, stalls, FU busy cycles, cache
///   accesses/misses, memory traffic — is *work* and still adds, so
///   energy models that charge per event are unaffected by how the work
///   was scheduled.
///
/// Both operators are associative, and commutative on the summed
/// fields (`merge_parallel` is commutative outright), so a parallel
/// driver may merge per-block stats in any grouping and report the same
/// totals as a serial run over the same blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Total cycles (max completion time across all instructions).
    pub cycles: u64,
    /// Dynamic instruction count.
    pub insts: u64,
    /// Dynamic counts by class: indexed like `class_index`.
    pub class_counts: [u64; 8],
    /// Multiply-accumulate operations represented by the executed
    /// instructions (for GOPS accounting).
    pub macs: u64,
    /// Stall cycles whose binding constraint was a busy arithmetic FU or
    /// an arithmetic producer.
    pub stall_fu: u64,
    /// Stall cycles waiting for load data or a load port.
    pub stall_read: u64,
    /// Stall cycles waiting for the store buffer or a store port.
    pub stall_write: u64,
    /// Busy cycles per FU kind (occupancy × issues).
    pub fu_busy: [u64; NUM_FU_KINDS],
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// `camp` issues in 8-bit mode.
    pub camp_issues_i8: u64,
    /// `camp` issues in 4-bit mode.
    pub camp_issues_i4: u64,
    /// L1D statistics snapshot.
    pub l1d: CacheStats,
    /// L2 statistics snapshot.
    pub l2: CacheStats,
    /// Main-memory reads (line fills).
    pub mem_reads: u64,
    /// Main-memory writes (writebacks).
    pub mem_writes: u64,
}

/// Dense index for an [`InstClass`].
pub(crate) fn class_index(c: InstClass) -> usize {
    match c {
        InstClass::ScalarAlu => 0,
        InstClass::ScalarMem => 1,
        InstClass::Branch => 2,
        InstClass::VLoad => 3,
        InstClass::VStore => 4,
        InstClass::VAlu => 5,
        InstClass::VMul => 6,
        InstClass::Camp => 7,
    }
}

impl SimStats {
    /// Dynamic count of one instruction class.
    pub fn count(&self, c: InstClass) -> u64 {
        self.class_counts[class_index(c)]
    }

    /// Vector loads (the "R" column of Fig. 17).
    pub fn vector_reads(&self) -> u64 {
        self.count(InstClass::VLoad)
    }

    /// Vector stores (the "W" column of Fig. 17).
    pub fn vector_writes(&self) -> u64 {
        self.count(InstClass::VStore)
    }

    /// Vector arithmetic instructions including CAMP (the "Alu" column of
    /// Fig. 17).
    pub fn vector_alu(&self) -> u64 {
        self.count(InstClass::VAlu) + self.count(InstClass::VMul) + self.count(InstClass::Camp)
    }

    /// All vector-unit instructions.
    pub fn vector_insts(&self) -> u64 {
        self.vector_reads() + self.vector_writes() + self.vector_alu()
    }

    /// Busy *rate* of one FU kind: busy cycles divided by `cycles ×
    /// units`, i.e. 1.0 means every unit of the pool was busy every cycle.
    pub fn fu_busy_rate(&self, kind: FuKind, units: u32) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fu_busy[kind.index()] as f64 / (self.cycles as f64 * units.max(1) as f64)
        }
    }

    /// Total attributed stall cycles.
    pub fn stall_total(&self) -> u64 {
        self.stall_fu + self.stall_read + self.stall_write
    }

    /// Proportion of stalls in each category (FU, Read, Write); zeros if
    /// there were no stalls.
    pub fn stall_proportions(&self) -> (f64, f64, f64) {
        let t = self.stall_total();
        if t == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                self.stall_fu as f64 / t as f64,
                self.stall_read as f64 / t as f64,
                self.stall_write as f64 / t as f64,
            )
        }
    }

    /// Giga-operations per second at `freq_ghz` (2 ops per MAC, the
    /// convention the paper's GOPS numbers use).
    pub fn gops(&self, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            2.0 * self.macs as f64 / self.cycles as f64 * freq_ghz
        }
    }

    /// Fold another stats block into this one **sequentially**: every
    /// field adds, cycles included — used when the driver runs packing
    /// programs and macro-kernels back to back on one machine, and to
    /// chain the depth blocks of one parallel lane (serialized by the C
    /// read-modify-write dependency).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.work_merge(other);
    }

    /// Fold another stats block into this one as a **parallel lane**:
    /// `cycles` becomes the max across lanes (independent lanes finish
    /// together at the slowest one), every other field still adds — the
    /// work performed does not change with the schedule. Associative and
    /// commutative, so lanes may be merged in any grouping.
    pub fn merge_parallel(&mut self, other: &SimStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.work_merge(other);
    }

    /// The shared work-summing half of both merge operators: everything
    /// except `cycles`.
    fn work_merge(&mut self, other: &SimStats) {
        self.insts += other.insts;
        for i in 0..self.class_counts.len() {
            self.class_counts[i] += other.class_counts[i];
        }
        self.macs += other.macs;
        self.stall_fu += other.stall_fu;
        self.stall_read += other.stall_read;
        self.stall_write += other.stall_write;
        for i in 0..NUM_FU_KINDS {
            self.fu_busy[i] += other.fu_busy[i];
        }
        self.mispredicts += other.mispredicts;
        self.camp_issues_i8 += other.camp_issues_i8;
        self.camp_issues_i4 += other.camp_issues_i4;
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        self.mem_reads += other.mem_reads;
        self.mem_writes += other.mem_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let classes = [
            InstClass::ScalarAlu,
            InstClass::ScalarMem,
            InstClass::Branch,
            InstClass::VLoad,
            InstClass::VStore,
            InstClass::VAlu,
            InstClass::VMul,
            InstClass::Camp,
        ];
        let mut seen = [false; 8];
        for c in classes {
            let i = class_index(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn vector_groupings() {
        let mut s = SimStats::default();
        s.class_counts[class_index(InstClass::VLoad)] = 10;
        s.class_counts[class_index(InstClass::VStore)] = 5;
        s.class_counts[class_index(InstClass::VAlu)] = 3;
        s.class_counts[class_index(InstClass::VMul)] = 4;
        s.class_counts[class_index(InstClass::Camp)] = 2;
        assert_eq!(s.vector_reads(), 10);
        assert_eq!(s.vector_writes(), 5);
        assert_eq!(s.vector_alu(), 9);
        assert_eq!(s.vector_insts(), 24);
    }

    #[test]
    fn busy_rate_normalizes_by_units() {
        let mut s = SimStats { cycles: 100, ..SimStats::default() };
        s.fu_busy[FuKind::VMul.index()] = 100;
        assert!((s.fu_busy_rate(FuKind::VMul, 1) - 1.0).abs() < 1e-12);
        assert!((s.fu_busy_rate(FuKind::VMul, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stall_proportions_sum_to_one() {
        let s = SimStats { stall_fu: 10, stall_read: 30, stall_write: 60, ..SimStats::default() };
        let (f, r, w) = s.stall_proportions();
        assert!((f + r + w - 1.0).abs() < 1e-12);
        assert!((w - 0.6).abs() < 1e-12);
    }

    #[test]
    fn gops_accounting() {
        let s = SimStats { cycles: 1000, macs: 8000, ..SimStats::default() };
        // 8 MACs/cycle × 2 ops × 2 GHz = 32 GOPS
        assert!((s.gops(2.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats { cycles: 10, insts: 5, ..SimStats::default() };
        let b = SimStats { cycles: 20, insts: 7, stall_read: 3, ..SimStats::default() };
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.insts, 12);
        assert_eq!(a.stall_read, 3);
    }

    #[test]
    fn merge_parallel_maxes_cycles_and_sums_work() {
        let mut a = SimStats { cycles: 10, insts: 5, mem_reads: 2, ..SimStats::default() };
        let b =
            SimStats { cycles: 20, insts: 7, stall_read: 3, mem_reads: 4, ..SimStats::default() };
        a.merge_parallel(&b);
        assert_eq!(a.cycles, 20, "parallel lanes finish at the slowest");
        assert_eq!(a.insts, 12, "work still sums");
        assert_eq!(a.stall_read, 3);
        assert_eq!(a.mem_reads, 6);
    }

    /// A stats block with every field non-trivially populated, varied by
    /// `seed` so merge-law tests cannot pass by symmetry.
    fn dense(seed: u64) -> SimStats {
        let mut s = SimStats {
            cycles: 100 + seed * 37,
            insts: 50 + seed * 11,
            macs: seed * 1000 + 1,
            stall_fu: seed + 2,
            stall_read: seed * 2 + 3,
            stall_write: seed * 5 + 1,
            mispredicts: seed + 1,
            camp_issues_i8: seed * 13,
            camp_issues_i4: seed * 17,
            l1d: CacheStats {
                accesses: seed * 100 + 9,
                misses: seed * 10 + 1,
                ..CacheStats::default()
            },
            l2: CacheStats {
                accesses: seed * 60 + 4,
                misses: seed * 6 + 2,
                ..CacheStats::default()
            },
            mem_reads: seed * 4,
            mem_writes: seed * 3,
            ..SimStats::default()
        };
        for (i, c) in s.class_counts.iter_mut().enumerate() {
            *c = seed * 3 + i as u64;
        }
        for (i, f) in s.fu_busy.iter_mut().enumerate() {
            *f = seed * 7 + i as u64;
        }
        s
    }

    #[test]
    fn both_merges_are_associative() {
        let (a, b, c) = (dense(1), dense(5), dense(9));
        for op in [SimStats::merge, SimStats::merge_parallel] {
            let mut left = a;
            op(&mut left, &b);
            op(&mut left, &c);
            let mut bc = b;
            op(&mut bc, &c);
            let mut right = a;
            op(&mut right, &bc);
            assert_eq!(left, right, "(a·b)·c must equal a·(b·c)");
        }
    }

    #[test]
    fn both_merges_are_commutative() {
        // merge is commutative outright (cycles add); merge_parallel is
        // commutative because max commutes — so a parallel driver may
        // collect lane results in completion order.
        let (a, b) = (dense(2), dense(7));
        for op in [SimStats::merge, SimStats::merge_parallel] {
            let mut ab = a;
            op(&mut ab, &b);
            let mut ba = b;
            op(&mut ba, &a);
            assert_eq!(ab, ba, "a·b must equal b·a");
        }
    }

    #[test]
    fn lane_grouping_does_not_change_the_parallel_total() {
        // four lanes merged as ((1·2)·(3·4)) and (((1·2)·3)·4) — the
        // grouping a work-stealing scheduler might produce vs a serial
        // fold — must agree field for field
        let lanes = [dense(1), dense(2), dense(3), dense(4)];
        let mut pairwise = {
            let mut left = lanes[0];
            left.merge_parallel(&lanes[1]);
            let mut right = lanes[2];
            right.merge_parallel(&lanes[3]);
            left.merge_parallel(&right);
            left
        };
        let mut folded = lanes[0];
        for l in &lanes[1..] {
            folded.merge_parallel(l);
        }
        assert_eq!(pairwise, folded);
        // and the max-cycles model is what it claims
        pairwise.cycles = 0;
        folded.cycles = 0;
        assert_eq!(pairwise, folded);
    }
}
