//! Simulation statistics: everything the figure harnesses consume.

use crate::config::{FuKind, NUM_FU_KINDS};
use camp_cache::CacheStats;
use camp_isa::inst::InstClass;

/// Aggregated statistics of a simulated run (or several runs — the
/// blocked-GeMM driver accumulates across program invocations).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Total cycles (max completion time across all instructions).
    pub cycles: u64,
    /// Dynamic instruction count.
    pub insts: u64,
    /// Dynamic counts by class: indexed like `class_index`.
    pub class_counts: [u64; 8],
    /// Multiply-accumulate operations represented by the executed
    /// instructions (for GOPS accounting).
    pub macs: u64,
    /// Stall cycles whose binding constraint was a busy arithmetic FU or
    /// an arithmetic producer.
    pub stall_fu: u64,
    /// Stall cycles waiting for load data or a load port.
    pub stall_read: u64,
    /// Stall cycles waiting for the store buffer or a store port.
    pub stall_write: u64,
    /// Busy cycles per FU kind (occupancy × issues).
    pub fu_busy: [u64; NUM_FU_KINDS],
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// `camp` issues in 8-bit mode.
    pub camp_issues_i8: u64,
    /// `camp` issues in 4-bit mode.
    pub camp_issues_i4: u64,
    /// L1D statistics snapshot.
    pub l1d: CacheStats,
    /// L2 statistics snapshot.
    pub l2: CacheStats,
    /// Main-memory reads (line fills).
    pub mem_reads: u64,
    /// Main-memory writes (writebacks).
    pub mem_writes: u64,
}

/// Dense index for an [`InstClass`].
pub(crate) fn class_index(c: InstClass) -> usize {
    match c {
        InstClass::ScalarAlu => 0,
        InstClass::ScalarMem => 1,
        InstClass::Branch => 2,
        InstClass::VLoad => 3,
        InstClass::VStore => 4,
        InstClass::VAlu => 5,
        InstClass::VMul => 6,
        InstClass::Camp => 7,
    }
}

impl SimStats {
    /// Dynamic count of one instruction class.
    pub fn count(&self, c: InstClass) -> u64 {
        self.class_counts[class_index(c)]
    }

    /// Vector loads (the "R" column of Fig. 17).
    pub fn vector_reads(&self) -> u64 {
        self.count(InstClass::VLoad)
    }

    /// Vector stores (the "W" column of Fig. 17).
    pub fn vector_writes(&self) -> u64 {
        self.count(InstClass::VStore)
    }

    /// Vector arithmetic instructions including CAMP (the "Alu" column of
    /// Fig. 17).
    pub fn vector_alu(&self) -> u64 {
        self.count(InstClass::VAlu) + self.count(InstClass::VMul) + self.count(InstClass::Camp)
    }

    /// All vector-unit instructions.
    pub fn vector_insts(&self) -> u64 {
        self.vector_reads() + self.vector_writes() + self.vector_alu()
    }

    /// Busy *rate* of one FU kind: busy cycles divided by `cycles ×
    /// units`, i.e. 1.0 means every unit of the pool was busy every cycle.
    pub fn fu_busy_rate(&self, kind: FuKind, units: u32) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.fu_busy[kind.index()] as f64 / (self.cycles as f64 * units.max(1) as f64)
        }
    }

    /// Total attributed stall cycles.
    pub fn stall_total(&self) -> u64 {
        self.stall_fu + self.stall_read + self.stall_write
    }

    /// Proportion of stalls in each category (FU, Read, Write); zeros if
    /// there were no stalls.
    pub fn stall_proportions(&self) -> (f64, f64, f64) {
        let t = self.stall_total();
        if t == 0 {
            (0.0, 0.0, 0.0)
        } else {
            (
                self.stall_fu as f64 / t as f64,
                self.stall_read as f64 / t as f64,
                self.stall_write as f64 / t as f64,
            )
        }
    }

    /// Giga-operations per second at `freq_ghz` (2 ops per MAC, the
    /// convention the paper's GOPS numbers use).
    pub fn gops(&self, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            2.0 * self.macs as f64 / self.cycles as f64 * freq_ghz
        }
    }

    /// Fold another stats block into this one (cycles add — used when the
    /// driver runs packing programs and macro-kernels back to back).
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.insts += other.insts;
        for i in 0..self.class_counts.len() {
            self.class_counts[i] += other.class_counts[i];
        }
        self.macs += other.macs;
        self.stall_fu += other.stall_fu;
        self.stall_read += other.stall_read;
        self.stall_write += other.stall_write;
        for i in 0..NUM_FU_KINDS {
            self.fu_busy[i] += other.fu_busy[i];
        }
        self.mispredicts += other.mispredicts;
        self.camp_issues_i8 += other.camp_issues_i8;
        self.camp_issues_i4 += other.camp_issues_i4;
        self.l1d.merge(&other.l1d);
        self.l2.merge(&other.l2);
        self.mem_reads += other.mem_reads;
        self.mem_writes += other.mem_writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let classes = [
            InstClass::ScalarAlu,
            InstClass::ScalarMem,
            InstClass::Branch,
            InstClass::VLoad,
            InstClass::VStore,
            InstClass::VAlu,
            InstClass::VMul,
            InstClass::Camp,
        ];
        let mut seen = [false; 8];
        for c in classes {
            let i = class_index(c);
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn vector_groupings() {
        let mut s = SimStats::default();
        s.class_counts[class_index(InstClass::VLoad)] = 10;
        s.class_counts[class_index(InstClass::VStore)] = 5;
        s.class_counts[class_index(InstClass::VAlu)] = 3;
        s.class_counts[class_index(InstClass::VMul)] = 4;
        s.class_counts[class_index(InstClass::Camp)] = 2;
        assert_eq!(s.vector_reads(), 10);
        assert_eq!(s.vector_writes(), 5);
        assert_eq!(s.vector_alu(), 9);
        assert_eq!(s.vector_insts(), 24);
    }

    #[test]
    fn busy_rate_normalizes_by_units() {
        let mut s = SimStats { cycles: 100, ..SimStats::default() };
        s.fu_busy[FuKind::VMul.index()] = 100;
        assert!((s.fu_busy_rate(FuKind::VMul, 1) - 1.0).abs() < 1e-12);
        assert!((s.fu_busy_rate(FuKind::VMul, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stall_proportions_sum_to_one() {
        let s = SimStats { stall_fu: 10, stall_read: 30, stall_write: 60, ..SimStats::default() };
        let (f, r, w) = s.stall_proportions();
        assert!((f + r + w - 1.0).abs() < 1e-12);
        assert!((w - 0.6).abs() < 1e-12);
    }

    #[test]
    fn gops_accounting() {
        let s = SimStats { cycles: 1000, macs: 8000, ..SimStats::default() };
        // 8 MACs/cycle × 2 ops × 2 GHz = 32 GOPS
        assert!((s.gops(2.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats { cycles: 10, insts: 5, ..SimStats::default() };
        let b = SimStats { cycles: 20, insts: 7, stall_read: 3, ..SimStats::default() };
        a.merge(&b);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.insts, 12);
        assert_eq!(a.stall_read, 3);
    }
}
