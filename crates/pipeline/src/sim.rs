//! The execution-driven timing simulator.

use crate::config::{CoreConfig, CoreKind, FuKind};
use crate::stats::{class_index, SimStats};
use camp_cache::Hierarchy;
use camp_isa::inst::{CampMode, Inst, InstClass, Program};
use camp_isa::machine::{ExecError, Machine, StepOut};
use camp_isa::reg::{ScalarReg, VectorReg};
use std::collections::VecDeque;

/// Per-program timing state (reset at each [`Simulator::run`]; caches and
/// architectural state persist).
struct Timing {
    disp_cycle: u64,
    slot_used: u32,
    ready_x: [u64; 32],
    ready_v: [u64; 32],
    x_from_load: [bool; 32],
    v_from_load: [bool; 32],
    unit_free: Vec<Vec<u64>>,
    rob: VecDeque<u64>,
    last_retire: u64,
    store_buf: VecDeque<u64>,
    last_drain: u64,
    max_finish: u64,
}

impl Timing {
    fn new(cfg: &CoreConfig) -> Self {
        let unit_free =
            FuKind::all().iter().map(|&k| vec![0u64; cfg.fu(k).count.max(1) as usize]).collect();
        Timing {
            disp_cycle: 0,
            slot_used: 0,
            ready_x: [0; 32],
            ready_v: [0; 32],
            x_from_load: [false; 32],
            v_from_load: [false; 32],
            unit_free,
            rob: VecDeque::new(),
            last_retire: 0,
            store_buf: VecDeque::new(),
            last_drain: 0,
            max_finish: 0,
        }
    }

    fn min_free(&self, kind: FuKind) -> (usize, u64) {
        let units = &self.unit_free[kind.index()];
        let mut best = 0;
        for (i, &f) in units.iter().enumerate() {
            if f < units[best] {
                best = i;
            }
        }
        (best, units[best])
    }
}

enum StallCause {
    None,
    Fu,
    Read,
    Write,
}

/// Execution-driven simulator: functional machine + cache hierarchy +
/// core timing model.
///
/// Architectural state (registers, memory) and cache contents persist
/// across [`run`](Simulator::run) calls so a host-side driver can execute
/// packing programs and macro-kernels back to back, the way the paper's
/// blocked GeMM executes; statistics accumulate into [`stats`](Simulator::stats)
/// (cycle spans add up).
///
/// A `Simulator` owns all of its state and shares nothing, which is the
/// foundation of the parallel blocked driver: each independent
/// (jc, pc) block unit instantiates its own simulator (own memory, own
/// cold caches), runs deterministically on whatever thread a scheduler
/// picks, and its [`SimStats`] are merged afterwards —
/// [`SimStats::merge`] chains sequential phases, whereas
/// [`SimStats::merge_parallel`] folds independent lanes (cycles max,
/// work summed). See `docs/SIMULATOR.md` for the merge contract.
pub struct Simulator {
    cfg: CoreConfig,
    machine: Machine,
    hier: Hierarchy,
    stats: SimStats,
    trace: bool,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator").field("core", &self.cfg.name).finish_non_exhaustive()
    }
}

impl Simulator {
    /// Create a simulator with `mem_bytes` of machine memory.
    pub fn new(cfg: CoreConfig, mem_bytes: usize) -> Self {
        Simulator {
            hier: Hierarchy::new(cfg.hierarchy),
            cfg,
            machine: Machine::new(mem_bytes),
            stats: SimStats::default(),
            trace: std::env::var_os("CAMP_SIM_TRACE").is_some(),
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Mutable access to the architectural machine (workload setup and
    /// result inspection).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The architectural machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Reset accumulated statistics (cache contents and architectural
    /// state are preserved, so this discards warmup).
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.hier.reset_stats();
    }

    fn sources(inst: &Inst, t: &Timing) -> (u64, bool) {
        let mut ready = 0u64;
        let mut from_load = false;
        let mut upd_x = |r: ScalarReg| {
            let rd = t.ready_x[r.index()];
            if rd > ready {
                ready = rd;
                from_load = t.x_from_load[r.index()];
            }
        };
        // (separate closure borrows are fine because we only borrow t)
        match *inst {
            Inst::Li { .. } | Inst::Nop => {}
            Inst::Addi { rs, .. }
            | Inst::Slli { rs, .. }
            | Inst::Srli { rs, .. }
            | Inst::Andi { rs, .. } => upd_x(rs),
            Inst::Add { rs1, rs2, .. }
            | Inst::Sub { rs1, rs2, .. }
            | Inst::Mul { rs1, rs2, .. } => {
                upd_x(rs1);
                upd_x(rs2);
            }
            Inst::Branch { rs1, rs2, .. } => {
                upd_x(rs1);
                upd_x(rs2);
            }
            Inst::LoadS { base, .. } => upd_x(base),
            Inst::StoreS { rs, base, .. } => {
                upd_x(rs);
                upd_x(base);
            }
            Inst::VLoad { base, .. } | Inst::VLoadRep { base, .. } => upd_x(base),
            Inst::VStore { vs, base, .. } => {
                upd_x(base);
                let rd = t.ready_v[vs.index()];
                if rd > ready {
                    ready = rd;
                    from_load = t.v_from_load[vs.index()];
                }
            }
            Inst::VDup { rs, .. } => upd_x(rs),
            Inst::VZero { .. } => {}
            Inst::VBin { vd, vs1, vs2, op, .. } => {
                let mut srcs = vec![vs1, vs2];
                if matches!(op, camp_isa::inst::VOp::Mla) {
                    srcs.push(vd);
                }
                for v in srcs {
                    let rd = t.ready_v[v.index()];
                    if rd > ready {
                        ready = rd;
                        from_load = t.v_from_load[v.index()];
                    }
                }
            }
            Inst::VMull { vs1, vs2, .. }
            | Inst::VZip { vs1, vs2, .. }
            | Inst::VPack4 { vs1, vs2, .. } => {
                for v in [vs1, vs2] {
                    let rd = t.ready_v[v.index()];
                    if rd > ready {
                        ready = rd;
                        from_load = t.v_from_load[v.index()];
                    }
                }
            }
            Inst::VAdalp { vd, vs } => {
                for v in [vd, vs] {
                    let rd = t.ready_v[v.index()];
                    if rd > ready {
                        ready = rd;
                        from_load = t.v_from_load[v.index()];
                    }
                }
            }
            Inst::VSxtl { vs, .. } | Inst::VUnpack4 { vs, .. } => {
                let rd = t.ready_v[vs.index()];
                if rd > ready {
                    ready = rd;
                    from_load = t.v_from_load[vs.index()];
                }
            }
            Inst::Smmla { vd, vs1, vs2 } => {
                for v in [vd, vs1, vs2] {
                    let rd = t.ready_v[v.index()];
                    if rd > ready {
                        ready = rd;
                        from_load = t.v_from_load[v.index()];
                    }
                }
            }
            Inst::Camp { vd, vs1, vs2, .. } => {
                // vd participates through the auxiliary-register chain,
                // whose readiness is already tracked at II granularity.
                for v in [vd, vs1, vs2] {
                    let rd = t.ready_v[v.index()];
                    if rd > ready {
                        ready = rd;
                        from_load = t.v_from_load[v.index()];
                    }
                }
            }
        }
        (ready, from_load)
    }

    fn dest(inst: &Inst) -> (Option<ScalarReg>, Option<VectorReg>) {
        match *inst {
            Inst::Li { rd, .. }
            | Inst::Addi { rd, .. }
            | Inst::Add { rd, .. }
            | Inst::Sub { rd, .. }
            | Inst::Mul { rd, .. }
            | Inst::Slli { rd, .. }
            | Inst::Srli { rd, .. }
            | Inst::Andi { rd, .. }
            | Inst::LoadS { rd, .. } => (Some(rd), None),
            Inst::VLoad { vd, .. }
            | Inst::VLoadRep { vd, .. }
            | Inst::VDup { vd, .. }
            | Inst::VZero { vd }
            | Inst::VBin { vd, .. }
            | Inst::VMull { vd, .. }
            | Inst::VAdalp { vd, .. }
            | Inst::VSxtl { vd, .. }
            | Inst::VZip { vd, .. }
            | Inst::VPack4 { vd, .. }
            | Inst::VUnpack4 { vd, .. }
            | Inst::Smmla { vd, .. }
            | Inst::Camp { vd, .. } => (None, Some(vd)),
            Inst::Branch { .. } | Inst::StoreS { .. } | Inst::VStore { .. } | Inst::Nop => {
                (None, None)
            }
        }
    }

    fn time_step(&mut self, t: &mut Timing, out: &StepOut) {
        let inst = &out.inst;
        let class = inst.class();
        let kind = self.cfg.fu_kind(inst);
        let fu = self.cfg.fu(kind);
        let in_order = matches!(self.cfg.kind, CoreKind::InOrder);

        // ---- dispatch slot ----
        let mut disp = t.disp_cycle;
        if !in_order && t.rob.len() >= self.cfg.rob_size as usize {
            if let Some(oldest) = t.rob.pop_front() {
                disp = disp.max(oldest);
            }
        }

        // ---- constraints ----
        let (src_ready, src_from_load) = Self::sources(inst, t);

        // Functional units are modeled as pipelined bandwidth: each op
        // consumes one issue slot (of `occupancy` cycles) on the least-
        // loaded unit, allocated no earlier than dispatch. Execution
        // start additionally waits for source operands. (Booking the
        // slot at the dependence-delayed start instead would let one
        // late consumer idle the unit for all younger independent ops.)
        let beats = if class.is_vector() { self.cfg.vmem_beats } else { 1 };
        let occupancy = match class {
            InstClass::VLoad | InstClass::VStore | InstClass::ScalarMem => beats,
            _ => fu.ii,
        };
        let (unit_idx, unit_free) = t.min_free(kind);
        let slot = unit_free.max(disp);
        t.unit_free[kind.index()][unit_idx] = slot + occupancy as u64;
        self.stats.fu_busy[kind.index()] += occupancy as u64;
        let fu_free = slot;

        let is_store = matches!(inst, Inst::StoreS { .. } | Inst::VStore { .. });
        let mut start = disp.max(src_ready).max(fu_free);

        // store buffer: drain completed entries, wait if full
        let mut sb_bound = 0u64;
        if is_store {
            while t.store_buf.front().is_some_and(|&d| d <= start) {
                t.store_buf.pop_front();
            }
            if t.store_buf.len() >= self.cfg.store_buffer as usize {
                if let Some(&front) = t.store_buf.front() {
                    sb_bound = front;
                    start = start.max(front);
                    while t.store_buf.front().is_some_and(|&d| d <= start) {
                        t.store_buf.pop_front();
                    }
                }
            }
        }

        // ---- stall attribution ----
        let cause = if start <= disp {
            StallCause::None
        } else if sb_bound == start {
            StallCause::Write
        } else if fu_free == start {
            match kind {
                FuKind::LoadPort => StallCause::Read,
                FuKind::StorePort => StallCause::Write,
                _ => StallCause::Fu,
            }
        } else if src_from_load {
            StallCause::Read
        } else {
            StallCause::Fu
        };
        let stall = start.saturating_sub(disp);
        match cause {
            StallCause::None => {}
            StallCause::Fu => self.stats.stall_fu += stall,
            StallCause::Read => self.stats.stall_read += stall,
            StallCause::Write => self.stats.stall_write += stall,
        }

        // ---- latency ----
        let (latency, l1_missed) = match class {
            InstClass::VLoad | InstClass::VStore | InstClass::ScalarMem => {
                let acc = out.mem.expect("memory instruction reports an access");
                let res = self.hier.access(acc.addr, acc.size, acc.is_store, out.index as u64);
                if acc.is_store {
                    // Store latency is hidden by the buffer; occupancy is
                    // the port time.
                    (1, !res.l1_hit)
                } else {
                    (res.latency + (beats - 1), !res.l1_hit)
                }
            }
            _ => (self.cfg.exec_latency(inst), false),
        };
        let finish = start + latency as u64;

        // ---- resource updates ----
        if is_store {
            let drain = t.last_drain.max(start) + self.cfg.store_drain_interval as u64;
            t.store_buf.push_back(drain);
            t.last_drain = drain;
        }

        // ---- destination readiness ----
        let (xd, vd) = Self::dest(inst);
        let is_load = matches!(class, InstClass::VLoad) || matches!(inst, Inst::LoadS { .. });
        if let Some(r) = xd {
            if r.index() != 0 {
                t.ready_x[r.index()] = finish;
                t.x_from_load[r.index()] = is_load;
            }
        }
        if let Some(v) = vd {
            // The CAMP auxiliary register accepts a new accumulation
            // every II cycles; only a non-camp consumer needs the final
            // value, which the driver reads once per tile.
            let ready =
                if matches!(inst, Inst::Camp { .. }) { start + fu.ii as u64 } else { finish };
            t.ready_v[v.index()] = ready;
            t.v_from_load[v.index()] = is_load;
        }

        // ---- retirement window ----
        if !in_order {
            let retire = t.last_retire.max(finish);
            t.rob.push_back(retire);
            t.last_retire = retire;
        }

        // ---- dispatch cursor ----
        t.slot_used += 1;
        if t.slot_used >= self.cfg.dispatch_width {
            t.disp_cycle += 1;
            t.slot_used = 0;
        }
        if in_order && start > t.disp_cycle {
            // in-order issue: later instructions cannot issue earlier
            t.disp_cycle = start;
            t.slot_used = 0;
        }
        if in_order && self.cfg.blocking_misses && l1_missed && !is_store {
            // blocking cache: the pipeline waits for the fill
            let resume = finish;
            if resume > t.disp_cycle {
                self.stats.stall_read += resume - t.disp_cycle;
                t.disp_cycle = resume;
                t.slot_used = 0;
            }
        }

        // ---- branches ----
        if let Inst::Branch { target, .. } = inst {
            let predicted_taken = (*target as u64) <= out.index as u64;
            if out.branch_taken != predicted_taken {
                self.stats.mispredicts += 1;
                let resume = start + 1 + self.cfg.mispredict_penalty as u64;
                if resume > t.disp_cycle {
                    t.disp_cycle = resume;
                    t.slot_used = 0;
                }
            }
        }

        if self.trace && self.stats.insts < 400 {
            eprintln!(
                "[trace] #{:<4} idx={:<4} {:?} disp={} src={} fu={} start={} fin={}",
                self.stats.insts,
                out.index,
                inst.class(),
                disp,
                src_ready,
                fu_free,
                start,
                finish
            );
        }

        // ---- bookkeeping ----
        self.stats.insts += 1;
        self.stats.class_counts[class_index(class)] += 1;
        self.stats.macs += inst.macs();
        if let Inst::Camp { mode, .. } = inst {
            match mode {
                CampMode::I8 => self.stats.camp_issues_i8 += 1,
                CampMode::I4 => self.stats.camp_issues_i4 += 1,
            }
        }
        t.max_finish = t.max_finish.max(finish);
    }

    /// Execute `prog` to completion, accumulating statistics.
    ///
    /// # Errors
    /// Propagates [`ExecError`] from the functional machine, including
    /// `StepLimit` if `max_steps` is exhausted.
    pub fn run(&mut self, prog: &Program, max_steps: u64) -> Result<(), ExecError> {
        self.machine.rewind();
        let mut t = Timing::new(&self.cfg);
        let mut steps: u64 = 0;
        while let Some(out) = self.machine.step(prog)? {
            steps += 1;
            if steps > max_steps {
                return Err(ExecError::StepLimit);
            }
            self.time_step(&mut t, &out);
        }
        self.stats.cycles += t.max_finish;
        // snapshot cache state (totals, not deltas)
        self.stats.l1d = *self.hier.l1d().stats();
        self.stats.l2 = *self.hier.l2().stats();
        self.stats.mem_reads = self.hier.mem_reads();
        self.stats.mem_writes = self.hier.mem_writes();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_isa::asm::Assembler;
    use camp_isa::inst::{CampMode, ElemType};
    use camp_isa::reg::{S, V};

    fn run_on(cfg: CoreConfig, prog: &Program) -> SimStats {
        let mut sim = Simulator::new(cfg, 1 << 20);
        sim.run(prog, 10_000_000).unwrap();
        *sim.stats()
    }

    #[test]
    fn empty_program_costs_nothing() {
        let prog = Assembler::new("empty").finish();
        let s = run_on(CoreConfig::a64fx(), &prog);
        assert_eq!(s.cycles, 0);
        assert_eq!(s.insts, 0);
    }

    #[test]
    fn single_issue_inorder_is_at_least_one_cycle_per_inst() {
        let mut a = Assembler::new("t");
        for _ in 0..100 {
            a.nop();
        }
        let s = run_on(CoreConfig::edge_riscv(), &a.finish());
        assert!(s.cycles >= 99, "got {}", s.cycles);
    }

    #[test]
    fn ooo_overlaps_independent_work() {
        // 64 independent vector adds: the OoO core with 2 VALU pipes
        // should finish much faster than 64 serial latencies.
        let mut a = Assembler::new("t");
        a.vzero(V(0));
        for i in 0..8 {
            for _ in 0..8 {
                a.vbin(camp_isa::inst::VOp::Add, ElemType::I32, V(1 + i), V(0), V(0));
            }
        }
        let s = run_on(CoreConfig::a64fx(), &a.finish());
        // 64 adds / 2 pipes = 32 cycles + latency tail
        assert!(s.cycles < 64, "OoO too slow: {}", s.cycles);
    }

    #[test]
    fn dependent_chain_is_latency_bound() {
        let mut a = Assembler::new("t");
        a.vzero(V(0));
        a.vzero(V(1));
        for _ in 0..32 {
            a.vmla_i32(V(1), V(1), V(0)); // vd is also a source: serial chain
        }
        let s = run_on(CoreConfig::a64fx(), &a.finish());
        let lat = CoreConfig::a64fx().vmul.latency as u64;
        assert!(s.cycles >= 32 * (lat - 1), "chain not serialized: {}", s.cycles);
    }

    #[test]
    fn camp_back_to_back_has_unit_ii() {
        let mut a = Assembler::new("t");
        a.vzero(V(0));
        a.vzero(V(1));
        a.vzero(V(2));
        for _ in 0..128 {
            a.camp(CampMode::I8, V(2), V(0), V(1));
        }
        let s = run_on(CoreConfig::a64fx(), &a.finish());
        // II=1 accumulation chain: ~128 cycles, NOT 128×latency
        assert!(s.cycles < 200, "aux-register chaining broken: {}", s.cycles);
        assert_eq!(s.camp_issues_i8, 128);
    }

    #[test]
    fn load_misses_block_the_edge_core() {
        let mut a = Assembler::new("t");
        a.li(S(1), 0);
        for i in 0..8 {
            a.vload(V(i), S(1), (i as i64) * 4096); // all cold misses
        }
        let s = run_on(CoreConfig::edge_riscv(), &a.finish());
        // each miss costs ~ 2+12+80 cycles, serialized
        assert!(s.cycles > 8 * 80, "blocking misses not modeled: {}", s.cycles);
        assert!(s.stall_read > 0);
    }

    #[test]
    fn store_pressure_attributes_write_stalls() {
        let cfg = CoreConfig { store_buffer: 2, store_drain_interval: 8, ..CoreConfig::a64fx() };
        let mut a = Assembler::new("t");
        a.li(S(1), 0);
        a.vzero(V(0));
        for i in 0..64 {
            a.vstore(V(0), S(1), i * 64);
        }
        let mut sim = Simulator::new(cfg, 1 << 20);
        sim.run(&a.finish(), 100_000).unwrap();
        assert!(sim.stats().stall_write > 0, "no write stalls recorded");
    }

    #[test]
    fn fu_busy_rate_saturates_on_mla_loop() {
        let mut a = Assembler::new("t");
        a.vzero(V(0));
        for i in 1..=16 {
            a.vzero(V(i));
        }
        for _ in 0..64 {
            for i in 0..16 {
                a.vmla_i32(V(1 + i), V(0), V(0));
            }
        }
        let s = run_on(CoreConfig::a64fx(), &a.finish());
        let rate = s.fu_busy_rate(FuKind::VMul, 2);
        assert!(rate > 0.8, "vmul should be saturated, rate {rate}");
    }

    #[test]
    fn loop_exit_counts_one_mispredict() {
        let mut a = Assembler::new("t");
        a.li(S(1), 10);
        a.label("top");
        a.addi(S(1), S(1), -1);
        a.bne(S(1), S(0), "top");
        let s = run_on(CoreConfig::a64fx(), &a.finish());
        assert_eq!(s.mispredicts, 1);
    }

    #[test]
    fn stats_accumulate_across_runs() {
        let mut a = Assembler::new("t");
        a.nop();
        a.nop();
        let p = a.finish();
        let mut sim = Simulator::new(CoreConfig::a64fx(), 1 << 12);
        sim.run(&p, 100).unwrap();
        let c1 = sim.stats().insts;
        sim.run(&p, 100).unwrap();
        assert_eq!(sim.stats().insts, c1 * 2);
    }

    #[test]
    fn reset_stats_clears() {
        let mut a = Assembler::new("t");
        a.nop();
        let p = a.finish();
        let mut sim = Simulator::new(CoreConfig::a64fx(), 1 << 12);
        sim.run(&p, 100).unwrap();
        sim.reset_stats();
        assert_eq!(sim.stats().insts, 0);
        assert_eq!(sim.stats().l1d.accesses, 0);
    }

    #[test]
    fn functional_results_survive_timing() {
        // timing must not disturb architectural results
        let mut a = Assembler::new("t");
        a.li(S(1), 0);
        a.li(S(2), 7);
        a.vdup(ElemType::I32, V(0), S(2));
        a.vmla_i32(V(1), V(0), V(0));
        a.vstore(V(1), S(1), 0);
        let p = a.finish();
        let mut sim = Simulator::new(CoreConfig::edge_riscv(), 1 << 12);
        sim.run(&p, 1000).unwrap();
        assert_eq!(sim.machine().read_i32(0), 49);
    }

    #[test]
    fn step_limit_reported() {
        let mut a = Assembler::new("t");
        a.label("spin");
        a.beq(S(0), S(0), "spin");
        let p = a.finish();
        let mut sim = Simulator::new(CoreConfig::a64fx(), 1 << 12);
        assert!(matches!(sim.run(&p, 10), Err(ExecError::StepLimit)));
    }
}
