//! Core timing configurations (Table 2 and §5.1 of the paper).

use camp_cache::HierarchyConfig;
use camp_isa::inst::{ElemType, Inst, InstClass, VOp};

/// Functional-unit kinds used for binding and busy-rate accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Scalar ALU (also executes branches).
    ScalarAlu,
    /// Vector simple ALU (adds, dups, zips, packs, extends).
    VAlu,
    /// Vector multiplier pipeline (mul/mla/mull/smmla, f32 FMA).
    VMul,
    /// The CAMP unit.
    Camp,
    /// Load port (scalar and vector loads).
    LoadPort,
    /// Store port (scalar and vector stores).
    StorePort,
}

/// Number of FU kinds (array sizing).
pub const NUM_FU_KINDS: usize = 6;

impl FuKind {
    /// Dense index for array-based bookkeeping.
    pub fn index(self) -> usize {
        match self {
            FuKind::ScalarAlu => 0,
            FuKind::VAlu => 1,
            FuKind::VMul => 2,
            FuKind::Camp => 3,
            FuKind::LoadPort => 4,
            FuKind::StorePort => 5,
        }
    }

    /// All kinds, in index order.
    pub fn all() -> [FuKind; NUM_FU_KINDS] {
        [
            FuKind::ScalarAlu,
            FuKind::VAlu,
            FuKind::VMul,
            FuKind::Camp,
            FuKind::LoadPort,
            FuKind::StorePort,
        ]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FuKind::ScalarAlu => "scalar",
            FuKind::VAlu => "valu",
            FuKind::VMul => "vmul",
            FuKind::Camp => "camp",
            FuKind::LoadPort => "load",
            FuKind::StorePort => "store",
        }
    }
}

/// Description of one FU pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuDesc {
    /// Number of identical units.
    pub count: u32,
    /// Result latency in cycles.
    pub latency: u32,
    /// Initiation interval (cycles a unit stays busy per op).
    pub ii: u32,
}

/// Pipeline discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Single-issue-style in-order core with blocking misses
    /// (Sargantana-like edge RISC-V).
    InOrder,
    /// Superscalar out-of-order core (A64FX-like).
    OutOfOrder,
}

/// Full core + memory configuration.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Clock frequency in GHz (GOPS accounting).
    pub freq_ghz: f64,
    /// Pipeline discipline.
    pub kind: CoreKind,
    /// Instructions dispatched per cycle.
    pub dispatch_width: u32,
    /// Reorder-window entries (OoO only; ignored in order).
    pub rob_size: u32,
    /// Scalar ALU pool.
    pub scalar_alu: FuDesc,
    /// Vector simple-ALU pool.
    pub valu: FuDesc,
    /// Vector multiplier pool.
    pub vmul: FuDesc,
    /// CAMP unit pool.
    pub camp: FuDesc,
    /// Load ports.
    pub load_ports: u32,
    /// Store ports.
    pub store_ports: u32,
    /// Beats per 512-bit vector memory access (1 = full-width bus,
    /// 4 = 128-bit edge path).
    pub vmem_beats: u32,
    /// Store-buffer entries.
    pub store_buffer: u32,
    /// Cycles between store-buffer drains to the cache.
    pub store_drain_interval: u32,
    /// Branch mispredict penalty in cycles.
    pub mispredict_penalty: u32,
    /// Whether a load miss blocks the pipeline until fill (edge core).
    pub blocking_misses: bool,
    /// Memory hierarchy.
    pub hierarchy: HierarchyConfig,
}

impl CoreConfig {
    /// The A64FX-like OoO SVE core of Table 2: 2.0 GHz, dispatch 4,
    /// 128-entry window, two vector pipes, two load ports, one store
    /// port, full-width (512-bit) L1 bus, CAMP unit with II = 1.
    pub fn a64fx() -> Self {
        CoreConfig {
            name: "a64fx-sve",
            freq_ghz: 2.0,
            kind: CoreKind::OutOfOrder,
            dispatch_width: 4,
            rob_size: 128,
            scalar_alu: FuDesc { count: 2, latency: 1, ii: 1 },
            valu: FuDesc { count: 2, latency: 4, ii: 1 },
            vmul: FuDesc { count: 2, latency: 6, ii: 1 },
            camp: FuDesc { count: 1, latency: 6, ii: 1 },
            load_ports: 2,
            store_ports: 1,
            vmem_beats: 1,
            store_buffer: 24,
            store_drain_interval: 1,
            mispredict_penalty: 7,
            blocking_misses: false,
            hierarchy: HierarchyConfig::a64fx(),
        }
    }

    /// The Sargantana-like edge RISC-V SoC of §5.1: 1 GHz, in-order,
    /// single-issue, 128-bit memory path (512-bit vector ops take 4
    /// beats), blocking misses, CAMP unit micro-sequenced over 4 beats.
    pub fn edge_riscv() -> Self {
        CoreConfig {
            name: "edge-riscv",
            freq_ghz: 1.0,
            kind: CoreKind::InOrder,
            dispatch_width: 1,
            rob_size: 1,
            scalar_alu: FuDesc { count: 1, latency: 1, ii: 1 },
            valu: FuDesc { count: 1, latency: 4, ii: 4 },
            vmul: FuDesc { count: 1, latency: 6, ii: 4 },
            camp: FuDesc { count: 1, latency: 8, ii: 4 },
            load_ports: 1,
            store_ports: 1,
            vmem_beats: 4,
            store_buffer: 4,
            store_drain_interval: 1,
            mispredict_penalty: 3,
            blocking_misses: true,
            hierarchy: HierarchyConfig::edge_riscv(),
        }
    }

    /// FU pool for a kind.
    pub fn fu(&self, kind: FuKind) -> FuDesc {
        match kind {
            FuKind::ScalarAlu => self.scalar_alu,
            FuKind::VAlu => self.valu,
            FuKind::VMul => self.vmul,
            FuKind::Camp => self.camp,
            FuKind::LoadPort => FuDesc { count: self.load_ports, latency: 0, ii: self.vmem_beats },
            FuKind::StorePort => {
                FuDesc { count: self.store_ports, latency: 1, ii: self.vmem_beats }
            }
        }
    }

    /// Bind an instruction to its FU kind.
    pub fn fu_kind(&self, inst: &Inst) -> FuKind {
        match inst.class() {
            InstClass::ScalarAlu | InstClass::Branch => FuKind::ScalarAlu,
            InstClass::VAlu => FuKind::VAlu,
            InstClass::VMul => FuKind::VMul,
            InstClass::Camp => FuKind::Camp,
            InstClass::VLoad | InstClass::VStore | InstClass::ScalarMem => {
                if matches!(inst, Inst::StoreS { .. } | Inst::VStore { .. }) {
                    FuKind::StorePort
                } else {
                    FuKind::LoadPort
                }
            }
        }
    }

    /// Execution latency for non-memory instructions (f32 multiply-class
    /// ops run a longer FMA pipeline than integer ops).
    pub fn exec_latency(&self, inst: &Inst) -> u32 {
        match inst {
            Inst::VBin { op: VOp::Mla | VOp::Mul, ty: ElemType::F32, .. } => self.vmul.latency + 3,
            _ => {
                let kind = self.fu_kind(inst);
                self.fu(kind).latency
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_isa::reg::{S, V};

    #[test]
    fn fu_kind_binding() {
        let c = CoreConfig::a64fx();
        assert_eq!(c.fu_kind(&Inst::Nop), FuKind::ScalarAlu);
        assert_eq!(c.fu_kind(&Inst::VLoad { vd: V(0), base: S(1), offset: 0 }), FuKind::LoadPort);
        assert_eq!(c.fu_kind(&Inst::VStore { vs: V(0), base: S(1), offset: 0 }), FuKind::StorePort);
        assert_eq!(
            c.fu_kind(&Inst::StoreS { rs: S(1), base: S(2), offset: 0, width: 4 }),
            FuKind::StorePort
        );
        assert_eq!(
            c.fu_kind(&Inst::LoadS { rd: S(1), base: S(2), offset: 0, width: 4 }),
            FuKind::LoadPort
        );
    }

    #[test]
    fn fp_fma_is_slower_than_int_mla() {
        let c = CoreConfig::a64fx();
        let fma = Inst::VBin { op: VOp::Mla, ty: ElemType::F32, vd: V(0), vs1: V(1), vs2: V(2) };
        let mla = Inst::VBin { op: VOp::Mla, ty: ElemType::I32, vd: V(0), vs1: V(1), vs2: V(2) };
        assert!(c.exec_latency(&fma) > c.exec_latency(&mla));
    }

    #[test]
    fn presets_are_distinct() {
        let a = CoreConfig::a64fx();
        let e = CoreConfig::edge_riscv();
        assert_eq!(a.kind, CoreKind::OutOfOrder);
        assert_eq!(e.kind, CoreKind::InOrder);
        assert!(a.dispatch_width > e.dispatch_width);
        assert!(e.vmem_beats > a.vmem_beats);
    }

    #[test]
    fn fu_index_roundtrip() {
        for (i, k) in FuKind::all().iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.name().is_empty());
        }
    }
}
