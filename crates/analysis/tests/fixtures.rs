//! Each tree under `tests/lint_fixtures/` is a deliberately-bad
//! mini-workspace; the suite pins the *exact* diagnostics (file, line,
//! pass) every rule must produce — no more, no fewer — so a pass can
//! neither go blind nor start flagging neighbouring clean code.

use std::path::PathBuf;

use camp_analysis::lint::{run_all, Diagnostic, Workspace};

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures").join(name);
    let ws = Workspace::load(&root).unwrap_or_else(|e| panic!("loading fixture {name}: {e}"));
    run_all(&ws)
}

/// `(file, line, pass)` triples, in the order camp-lint reports them.
fn keys(diags: &[Diagnostic]) -> Vec<(&str, usize, &str)> {
    diags.iter().map(|d| (d.file.as_str(), d.line, d.pass)).collect()
}

#[test]
fn missing_safety_fixture_flags_both_unjustified_sites() {
    let diags = lint_fixture("missing_safety");
    assert_eq!(
        keys(&diags),
        vec![("src/lib.rs", 4, "safety"), ("src/lib.rs", 7, "safety")],
        "got: {diags:#?}"
    );
}

#[test]
fn undocumented_knob_fixture_flags_the_read_and_the_stale_row() {
    let diags = lint_fixture("undocumented_knob");
    assert_eq!(
        keys(&diags),
        vec![("docs/KNOBS.md", 6, "knobs"), ("src/lib.rs", 5, "knobs")],
        "got: {diags:#?}"
    );
    let stale = &diags[0];
    assert!(stale.message.contains("stale"), "registry-row finding names the cause: {stale}");
}

#[test]
fn unguarded_target_feature_fixture_flags_safe_fn_and_direct_call() {
    let diags = lint_fixture("unguarded_target_feature");
    assert_eq!(
        keys(&diags),
        vec![
            ("crates/gemm/src/host/avx2.rs", 3, "target-feature"),
            ("crates/gemm/src/lib.rs", 7, "target-feature"),
        ],
        "got: {diags:#?}"
    );
}

#[test]
fn avx512_routing_fixture_flags_the_direct_call_but_not_the_dispatch_table() {
    let diags = lint_fixture("avx512_routing");
    assert_eq!(
        keys(&diags),
        vec![("crates/gemm/src/weights.rs", 5, "target-feature")],
        "host/mod.rs may name avx512::, nothing else may — got: {diags:#?}"
    );
    assert!(diags[0].message.contains("avx512::"), "names the tier module: {}", diags[0]);
}

#[test]
fn expired_shim_fixture_flags_expiry_and_missing_milestone() {
    let diags = lint_fixture("expired_shim");
    assert_eq!(
        keys(&diags),
        vec![("src/lib.rs", 4, "deprecation"), ("src/lib.rs", 7, "deprecation")],
        "got: {diags:#?}"
    );
    assert!(diags[0].message.contains("expired"), "line 4 is the expired shim: {}", diags[0]);
    assert!(diags[1].message.contains("milestone"), "line 7 lacks a milestone: {}", diags[1]);
}

#[test]
fn bare_accumulator_fixture_flags_only_the_integer_bare_add() {
    let diags = lint_fixture("bare_accumulator");
    assert_eq!(
        keys(&diags),
        vec![("crates/gemm/src/host/scalar.rs", 7, "accumulator")],
        "wrapped and f32 variants must stay clean — got: {diags:#?}"
    );
}

#[test]
fn diagnostics_render_as_file_line_pass_message() {
    let diags = lint_fixture("missing_safety");
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("src/lib.rs:4: [safety] "),
        "CI greps this exact shape, got: {rendered}"
    );
}
