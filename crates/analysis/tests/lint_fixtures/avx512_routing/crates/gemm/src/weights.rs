//! Known-bad fixture: reaches into the AVX-512 tier module directly
//! instead of going through the HostKernel dispatch table.

pub fn pack(buf: &mut [i8], b: &[i8]) {
    crate::host::avx512::pack_b_block(buf, b);
}
