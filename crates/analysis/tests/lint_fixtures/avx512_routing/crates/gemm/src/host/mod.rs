//! Dispatch table: the one file allowed to name the SIMD tier
//! modules, AVX-512 included.

pub mod avx512;

pub fn dispatch(a: &[i8], b: &[i8], acc: &mut [i32]) {
    avx512::tile_i8(a, b, acc);
}
