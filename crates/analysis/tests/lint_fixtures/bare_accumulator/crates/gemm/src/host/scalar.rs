//! Known-bad fixture: an integer micro-kernel accumulating with bare
//! `+=` / `*` instead of `wrapping_*` exact-product arithmetic.

pub fn tile_i8(a: &[i8], b: &[i8], acc: &mut [i32], k: usize) {
    for l in 0..k {
        let prod = (a[l] as i32).wrapping_mul(b[l] as i32);
        acc[0] += prod; // the violation: bare add on the accumulator
    }
}

pub fn tile_i8_fixed(a: &[i8], b: &[i8], acc: &mut [i32], k: usize) {
    for l in 0..k {
        let prod = (a[l] as i32).wrapping_mul(b[l] as i32);
        acc[0] = acc[0].wrapping_add(prod);
    }
}

pub fn tile_f32(a: &[f32], b: &[f32], acc: &mut [f32], k: usize) {
    for l in 0..k {
        acc[0] += a[l] * b[l]; // fine: float path is exempt
    }
}
