//! Known-bad fixture: a deprecated shim whose removal milestone has
//! passed (the package is v0.3.0), and one with no milestone at all.

#[deprecated(since = "0.1.0", note = "use new_api; remove: v0.3")]
pub fn old_api() {}

#[deprecated(since = "0.2.0", note = "use new_api")]
pub fn undated_shim() {}

#[deprecated(since = "0.2.0", note = "use new_api; remove: v0.9")]
pub fn still_in_cycle() {}

pub fn new_api() {}
