//! Known-bad fixture: three `unsafe` sites, only one justified.

pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

pub unsafe fn no_docs_at_all(p: *const u8) -> u8 {
    *p
}

pub fn justified_is_fine(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}
