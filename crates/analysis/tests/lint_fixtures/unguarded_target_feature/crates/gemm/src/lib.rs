//! Known-bad fixture: calls a SIMD tier module directly instead of
//! going through the HostKernel dispatch table in host/mod.rs.

pub mod host;

pub fn fast_path(a: &[i8], b: &[i8], acc: &mut [i32]) {
    host::avx2::tile_i8(a, b, acc);
}
