//! Known-bad fixture: a `#[target_feature]` function declared safe.

#[target_feature(enable = "avx2")]
pub fn tile_i8(_a: &[i8], _b: &[i8], _acc: &mut [i32]) {
    // body irrelevant — the signature is the violation
}
