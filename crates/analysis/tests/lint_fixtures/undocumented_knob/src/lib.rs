//! Known-bad fixture: reads an env knob missing from docs/KNOBS.md,
//! while the registry documents a knob nothing reads.

pub fn threads() -> usize {
    std::env::var("CAMP_BOGUS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
}

pub fn documented_and_used() -> bool {
    std::env::var("CAMP_REAL_KNOB").is_ok()
}
