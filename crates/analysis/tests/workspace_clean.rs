//! The real workspace must lint clean: this is the same gate CI runs
//! via `cargo run -p camp-analysis --bin camp-lint`, expressed as a
//! test so `cargo test` alone catches regressions.

use std::path::PathBuf;

use camp_analysis::lint::{run_all, Workspace};

#[test]
fn the_workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf();
    let ws = Workspace::load(&root).expect("workspace loads");
    assert!(ws.files.len() > 50, "walker found the tree ({} files)", ws.files.len());
    let diags = run_all(&ws);
    assert!(
        diags.is_empty(),
        "camp-lint found {} issue(s):\n{}",
        diags.len(),
        diags.iter().map(|d| format!("  {d}")).collect::<Vec<_>>().join("\n")
    );
}
