//! `camp-lint`: run the camp-analysis pass suite over the workspace.
//!
//! ```text
//! cargo run -p camp-analysis --bin camp-lint [ROOT]
//! ```
//!
//! `ROOT` defaults to the enclosing workspace (found by walking up from
//! the current directory to a `Cargo.toml` with a `[workspace]` table).
//! Prints one `file:line: [pass] message` per finding and exits
//! non-zero if there are any — CI runs this as a hard gate.

use std::path::PathBuf;
use std::process::ExitCode;

use camp_analysis::lint::{run_all, Workspace};

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("camp-lint: no workspace root found (pass one explicitly)");
                return ExitCode::FAILURE;
            }
        },
    };
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("camp-lint: cannot load {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let diags = run_all(&ws);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!(
            "camp-lint: clean ({} files, v{}.{})",
            ws.files.len(),
            ws.version.0,
            ws.version.1
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("camp-lint: {} finding(s) across {} files", diags.len(), ws.files.len());
        ExitCode::FAILURE
    }
}
