//! The `camp-lint` pass suite: lexical/structural static analysis over
//! the workspace's Rust sources (no crates.io dependencies — the build
//! environment is offline, and these rules don't need type inference).
//!
//! Five passes guard the invariants the unsafe/SIMD/serving core was
//! reviewed against, so they stay machine-checked as the tree grows:
//!
//! | pass             | rule                                                             |
//! |------------------|------------------------------------------------------------------|
//! | `safety`         | every `unsafe` block/fn/impl carries a `// SAFETY:` justification |
//! | `target-feature` | `#[target_feature]` fns are `unsafe` and reachable only through the `HostKernel` dispatch table in `host/mod.rs` |
//! | `knobs`          | every `CAMP_*` env knob is registered in `docs/KNOBS.md` (and no registry row is stale) |
//! | `deprecation`    | `#[deprecated]` shims carry a `remove: vX.Y` milestone and fail once the workspace version reaches it |
//! | `accumulator`    | integer kernels in `gemm/src/host/` use `wrapping_*` arithmetic — no bare `+`/`-`/`*` on accumulators |
//!
//! The passes work on a [`SourceFile`]'s *stripped* view (comments and
//! string literals blanked, so `unsafe` in a doc comment or `"avx2::"`
//! in a message never trips a rule) plus the raw lines (where comment
//! text itself is the subject, as in the `safety` pass).

use std::fmt;
use std::path::{Path, PathBuf};

/// One finding: `file:line: [pass] message`, the format CI greps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the linted root.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Which pass fired.
    pub pass: &'static str,
    /// What is wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.pass, self.message)
    }
}

// ---- source model ---------------------------------------------------------

/// A parsed source file: raw lines, a comment/string-stripped shadow
/// (same line numbering, offending regions blanked with spaces), and
/// the string literals encountered while stripping.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the linted root, with `/` separators.
    pub rel: String,
    /// Raw text, split into lines.
    pub raw: Vec<String>,
    /// Stripped text: comments and string/char literals blanked.
    pub code: Vec<String>,
    /// `(line, literal_content)` for every `"…"` literal.
    pub strings: Vec<(usize, String)>,
}

impl SourceFile {
    pub fn parse(rel: String, text: &str) -> SourceFile {
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let (code, strings) = strip(text);
        SourceFile { rel, raw, code, strings }
    }
}

/// Lexer state for [`strip`].
enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    Char,
}

/// Blank comments and string/char literals out of `text`, preserving
/// line structure; collect string-literal contents on the side.
fn strip(text: &str) -> (Vec<String>, Vec<(usize, String)>) {
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut strings = Vec::new();
    let mut cur_lit = String::new();
    let mut line = 1usize;
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
        }
        match st {
            St::Code => match c {
                '/' if b.get(i + 1) == Some(&'/') => {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if b.get(i + 1) == Some(&'*') => {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    // raw string? look back over r / br and hashes
                    st = St::Str;
                    cur_lit.clear();
                    out.push(' ');
                }
                'r' | 'b' => {
                    // r"…", r#"…"#, br"…" open a raw string
                    let mut j = i + 1;
                    if c == 'b' && b.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if (c == 'r' || (c == 'b' && j > i + 1)) && b.get(j) == Some(&'"') {
                        for _ in i..=j {
                            out.push(' ');
                        }
                        cur_lit.clear();
                        st = St::RawStr(hashes);
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // char literal vs lifetime: 'x' / '\n' are chars,
                    // 'env is a lifetime (no closing quote)
                    let is_char = match b.get(i + 1) {
                        Some('\\') => true,
                        Some(n) if *n != '\'' => b.get(i + 2) == Some(&'\''),
                        _ => false,
                    };
                    if is_char {
                        st = St::Char;
                        out.push(' ');
                    } else {
                        out.push('\'');
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(d) => {
                if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(d + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if d == 1 { St::Code } else { St::BlockComment(d - 1) };
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Str => match c {
                '\\' => {
                    cur_lit.push('\\');
                    if let Some(n) = b.get(i + 1) {
                        cur_lit.push(*n);
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    out.push(' ');
                }
                '"' => {
                    strings.push((line, std::mem::take(&mut cur_lit)));
                    st = St::Code;
                    out.push(' ');
                }
                _ => {
                    cur_lit.push(c);
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if b.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        strings.push((line, std::mem::take(&mut cur_lit)));
                        st = St::Code;
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        continue;
                    }
                }
                cur_lit.push(c);
                out.push(if c == '\n' { '\n' } else { ' ' });
            }
            St::Char => {
                if c == '\\' {
                    if b.get(i + 1).is_some() {
                        out.push_str("  ");
                        i += 2;
                        continue;
                    }
                    out.push(' ');
                } else if c == '\'' {
                    st = St::Code;
                    out.push(' ');
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
        }
        i += 1;
    }
    (out.lines().map(str::to_owned).collect(), strings)
}

// ---- workspace model ------------------------------------------------------

/// The linted tree: every `.rs` file under `root` (excluding build
/// output, VCS internals and the lint's own known-bad fixtures), the
/// knob registry, and the workspace version for deprecation expiry.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// `docs/KNOBS.md` lines, if the registry exists.
    pub knobs_md: Option<Vec<String>>,
    /// `(major, minor)` from the root `Cargo.toml`.
    pub version: (u64, u64),
}

/// Directory names never descended into. `lint_fixtures` holds
/// deliberately-bad trees (linted *by the fixture tests*, never as part
/// of the real workspace), and `crates/analysis/tests` asserts on
/// knob/pattern literals that would otherwise trip the very passes
/// they test.
const EXCLUDED_DIRS: &[&str] = &["target", ".git", "lint_fixtures", "related"];

impl Workspace {
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> =
                std::fs::read_dir(&dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
            entries.sort();
            for path in entries {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if path.is_dir() {
                    if !EXCLUDED_DIRS.contains(&name) {
                        stack.push(path);
                    }
                    continue;
                }
                if name.ends_with(".rs") {
                    let rel = rel_path(root, &path);
                    if rel.starts_with("crates/analysis/tests/") {
                        continue;
                    }
                    let text = std::fs::read_to_string(&path)?;
                    files.push(SourceFile::parse(rel, &text));
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        let knobs_md = std::fs::read_to_string(root.join("docs/KNOBS.md"))
            .ok()
            .map(|t| t.lines().map(str::to_owned).collect());
        let version = parse_version(&std::fs::read_to_string(root.join("Cargo.toml"))?);
        Ok(Workspace { root: root.to_path_buf(), files, knobs_md, version })
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// First `version = "x.y.z"` in a manifest (the workspace version).
fn parse_version(manifest: &str) -> (u64, u64) {
    for line in manifest.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("version") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                if let Some((ver, _)) = v.trim().trim_start_matches('"').split_once('"') {
                    return parse_major_minor(ver).unwrap_or((0, 0));
                }
                let ver = v.trim().trim_matches('"');
                return parse_major_minor(ver).unwrap_or((0, 0));
            }
        }
    }
    (0, 0)
}

fn parse_major_minor(s: &str) -> Option<(u64, u64)> {
    let mut it = s.split('.');
    let major = it.next()?.trim().parse().ok()?;
    let minor = it.next()?.trim().trim_end_matches(|c: char| !c.is_ascii_digit()).parse().ok()?;
    Some((major, minor))
}

// ---- pass: safety ---------------------------------------------------------

/// True if `code[idx..]` starts the exact word `word` at a boundary.
fn word_at(code: &str, idx: usize, word: &str) -> bool {
    if !code[idx..].starts_with(word) {
        return false;
    }
    let before_ok = idx == 0
        || !code[..idx].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
    let after = code[idx + word.len()..].chars().next();
    before_ok && !after.is_some_and(|c| c.is_alphanumeric() || c == '_')
}

fn line_has_word(code: &str, word: &str) -> bool {
    code.match_indices(word).any(|(i, _)| word_at(code, i, word))
}

/// Every `unsafe` (block, fn, impl, extern) must be justified by a
/// `// SAFETY:` comment on the same line or in the contiguous
/// comment/attribute block above it (`/// # Safety` sections count for
/// `unsafe fn` declarations).
pub fn check_safety(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, code) in f.code.iter().enumerate() {
        if !line_has_word(code, "unsafe") {
            continue;
        }
        if justified(f, i) {
            continue;
        }
        out.push(Diagnostic {
            file: f.rel.clone(),
            line: i + 1,
            pass: "safety",
            message: "`unsafe` without a `// SAFETY:` justification (add one on the line(s) \
                      above stating why the invariants hold)"
                .into(),
        });
    }
    out
}

fn justified(f: &SourceFile, line_idx: usize) -> bool {
    let accept = |raw: &str| raw.contains("SAFETY:") || raw.contains("# Safety");
    if accept(&f.raw[line_idx]) {
        return true;
    }
    // walk the contiguous comment/attribute block upward
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let t = f.raw[i].trim();
        // comments, attributes, and lines that leave a statement open
        // (`let x: T =` above a multi-line `unsafe { … }`) are context
        let is_context = t.starts_with("//")
            || t.starts_with("#[")
            || t.starts_with("#!")
            || t.starts_with(")]")
            || t.ends_with('=')
            || t.ends_with('(')
            || t.ends_with(',');
        if !is_context {
            return false;
        }
        if accept(t) {
            return true;
        }
    }
    false
}

// ---- pass: target-feature -------------------------------------------------

/// SIMD tier modules only the dispatch table may name.
const TIER_MODULES: &[&str] = &["avx2::", "avx512::", "neon::"];

/// `#[target_feature(enable = …)]` functions must be declared `unsafe`
/// (callers acknowledge the CPU-feature precondition), and the tier
/// modules must be reachable *only* through `host/mod.rs` — the
/// `HostKernel` dispatch table — never by direct cross-module calls.
pub fn check_target_feature(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, code) in f.code.iter().enumerate() {
        if code.contains("#[target_feature") {
            // the attributed fn follows, past other attrs/blank lines
            let mut ok = false;
            let mut found_fn = false;
            for j in i + 1..(i + 8).min(f.code.len()) {
                let t = f.code[j].trim();
                if t.starts_with("#[") || t.is_empty() {
                    continue;
                }
                if line_has_word(t, "fn") {
                    found_fn = true;
                    ok = line_has_word(t, "unsafe");
                }
                break;
            }
            if !found_fn || !ok {
                out.push(Diagnostic {
                    file: f.rel.clone(),
                    line: i + 1,
                    pass: "target-feature",
                    message: "#[target_feature] function must be declared `unsafe fn` (callers \
                              must acknowledge the CPU-feature precondition)"
                        .into(),
                });
            }
        }
    }
    // dispatch-table discipline: only host/mod.rs names the tier modules
    let is_dispatch_table = f.rel.ends_with("gemm/src/host/mod.rs");
    if !is_dispatch_table {
        for (i, code) in f.code.iter().enumerate() {
            for m in TIER_MODULES {
                if code.contains(m) {
                    out.push(Diagnostic {
                        file: f.rel.clone(),
                        line: i + 1,
                        pass: "target-feature",
                        message: format!(
                            "direct `{m}` reference outside the HostKernel dispatch table \
                             (route SIMD tiers through host/mod.rs so feature detection \
                             stays the single gate)"
                        ),
                    });
                }
            }
        }
    }
    out
}

// ---- pass: knobs ----------------------------------------------------------

/// Extract `CAMP_*` knob names from a string.
fn knob_names(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(pos) = rest.find("CAMP_") {
        let tail = &rest[pos..];
        let end = tail
            .char_indices()
            .position(|(_, c)| !(c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
            .unwrap_or(tail.len());
        if end > "CAMP_".len() {
            out.push(tail[..end].to_owned());
        }
        rest = &rest[pos + end.max(1)..];
    }
    out
}

/// Every `CAMP_*` string literal in code (the env-var reads) must have
/// a row in `docs/KNOBS.md` with type/default/validation columns, and
/// every registry row must correspond to a knob still read somewhere.
pub fn check_knobs(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // knob uses: (name, file, line), one per literal occurrence
    let mut used: Vec<(String, &str, usize)> = Vec::new();
    for f in &ws.files {
        for (line, lit) in &f.strings {
            for name in knob_names(lit) {
                if lit == &name {
                    // exact literal — an env read or its documentation
                    used.push((name, &f.rel, *line));
                }
            }
        }
    }
    // registry rows: knob -> line in docs/KNOBS.md
    let mut documented: Vec<(String, usize)> = Vec::new();
    if let Some(md) = &ws.knobs_md {
        for (i, line) in md.iter().enumerate() {
            let t = line.trim();
            if !t.starts_with('|') || t.starts_with("|-") || t.starts_with("| -") {
                continue;
            }
            let names = knob_names(t);
            if names.is_empty() {
                continue;
            }
            let cells = t.split('|').map(str::trim).filter(|c| !c.is_empty()).count();
            if cells < 5 {
                out.push(Diagnostic {
                    file: "docs/KNOBS.md".into(),
                    line: i + 1,
                    pass: "knobs",
                    message: format!(
                        "registry row for `{}` is missing columns (need name, type, default, \
                         clamp/validation, owning module)",
                        names[0]
                    ),
                });
            }
            for n in names {
                documented.push((n, i + 1));
            }
        }
    }
    for (name, file, line) in &used {
        if !documented.iter().any(|(d, _)| d == name) {
            out.push(Diagnostic {
                file: (*file).to_owned(),
                line: *line,
                pass: "knobs",
                message: format!(
                    "env knob `{name}` is not registered in docs/KNOBS.md (add a row with \
                     type, default, clamp rule and owning module)"
                ),
            });
        }
    }
    for (name, line) in &documented {
        if !used.iter().any(|(u, _, _)| u == name) {
            out.push(Diagnostic {
                file: "docs/KNOBS.md".into(),
                line: *line,
                pass: "knobs",
                message: format!(
                    "registry row `{name}` matches no knob read in the tree \
                                  (stale — remove the row or restore the knob)"
                ),
            });
        }
    }
    out
}

// ---- pass: deprecation ----------------------------------------------------

/// `#[deprecated]` items must carry a removal milestone in their note
/// (`remove: vX.Y`); once the workspace version reaches it, the shim
/// has outlived its deprecation cycle and the lint fails until it is
/// deleted.
pub fn check_deprecation(ws: &Workspace, f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, code) in f.code.iter().enumerate() {
        if !code.contains("#[deprecated") {
            continue;
        }
        // gather the attribute's raw text (note strings live there)
        let mut attr = String::new();
        for raw in f.raw.iter().skip(i).take(8) {
            attr.push_str(raw);
            attr.push('\n');
            if raw.contains(")]") {
                break;
            }
        }
        let Some(milestone) = attr.split("remove: v").nth(1).and_then(parse_major_minor) else {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                pass: "deprecation",
                message: "#[deprecated] without a removal milestone — add `remove: vX.Y` to \
                          the note so the shim cannot outlive its deprecation cycle"
                    .into(),
            });
            continue;
        };
        if ws.version >= milestone {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                pass: "deprecation",
                message: format!(
                    "deprecation expired: workspace is v{}.{} and this shim was scheduled for \
                     removal at v{}.{} — delete it",
                    ws.version.0, ws.version.1, milestone.0, milestone.1
                ),
            });
        }
    }
    out
}

// ---- pass: accumulator ----------------------------------------------------

/// Blank the contents of `[…]` index expressions so `a[i * k + l]`
/// never reads as accumulator arithmetic.
fn blank_brackets(line: &str) -> String {
    let mut depth = 0u32;
    line.chars()
        .map(|c| match c {
            '[' => {
                depth += 1;
                '['
            }
            ']' => {
                depth = depth.saturating_sub(1);
                ']'
            }
            _ if depth > 0 => ' ',
            _ => c,
        })
        .collect()
}

/// Function spans of a file: `(first_line, last_line, signature)`,
/// tracked lexically by brace depth.
fn fn_spans(code: &[String]) -> Vec<(usize, usize, String)> {
    let mut spans = Vec::new();
    let mut open: Vec<(usize, u32, String)> = Vec::new(); // (start, entry_depth, sig)
    let mut pending_sig: Option<(usize, String)> = None;
    let mut depth = 0u32;
    for (i, line) in code.iter().enumerate() {
        if pending_sig.is_none() {
            if let Some(pos) = line.match_indices("fn").find(|(p, _)| word_at(line, *p, "fn")) {
                pending_sig = Some((i, line[pos.0..].to_owned()));
            }
        } else if let Some((_, sig)) = &mut pending_sig {
            sig.push(' ');
            sig.push_str(line);
        }
        for c in line.chars() {
            match c {
                '{' => {
                    if let Some((start, sig)) = pending_sig.take() {
                        // body opens: sig text up to this brace
                        let sig = sig.split('{').next().unwrap_or("").to_owned();
                        open.push((start, depth, sig));
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some((start, d, sig)) = open.last().cloned() {
                        if d == depth {
                            open.pop();
                            spans.push((start, i, sig));
                        }
                    }
                }
                ';' if depth == open.last().map_or(0, |(_, d, _)| *d) => {
                    // declaration without body (trait method, extern)
                    pending_sig = None;
                }
                _ => {}
            }
        }
    }
    spans
}

/// In integer kernels under `gemm/src/host/`, accumulators must use
/// `wrapping_*` / exact-product arithmetic: a bare `+`, `-` or `*`
/// with an `acc…` identifier as operand can overflow (and panics in
/// debug builds mid-kernel). Functions whose signature mentions `f32`
/// are the float path and exempt.
pub fn check_accumulator(f: &SourceFile) -> Vec<Diagnostic> {
    if !f.rel.contains("gemm/src/host/") {
        return Vec::new();
    }
    let spans = fn_spans(&f.code);
    let mut out = Vec::new();
    for (i, code) in f.code.iter().enumerate() {
        // innermost enclosing fn decides the dtype context
        let sig = spans
            .iter()
            .filter(|(s, e, _)| *s <= i && i <= *e)
            .min_by_key(|(s, e, _)| e - s)
            .map(|(_, _, sig)| sig.as_str());
        let Some(sig) = sig else { continue };
        if sig.contains("f32") || sig.contains("f64") {
            continue;
        }
        let line = blank_brackets(code);
        if bare_acc_arithmetic(&line) {
            out.push(Diagnostic {
                file: f.rel.clone(),
                line: i + 1,
                pass: "accumulator",
                message: "bare arithmetic on an integer accumulator — use `wrapping_add` / \
                          `wrapping_mul` (exact-product semantics; debug builds panic on \
                          overflow mid-kernel otherwise)"
                    .into(),
            });
        }
    }
    out
}

/// Does the (bracket-blanked) line apply a bare `+`/`-`/`*` to an
/// identifier containing `acc`?
fn bare_acc_arithmetic(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut i = 0;
    while i < chars.len() {
        if !is_ident(chars[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < chars.len() && is_ident(chars[i]) {
            i += 1;
        }
        let ident: String = chars[start..i].iter().collect();
        if !ident.to_ascii_lowercase().contains("acc") {
            continue;
        }
        // operator after the identifier (past spaces, [, ], ., calls)?
        let mut j = i;
        while j < chars.len() && (chars[j] == ' ' || chars[j] == '[' || chars[j] == ']') {
            j += 1;
        }
        if j < chars.len() && matches!(chars[j], '+' | '*') {
            return true;
        }
        if j < chars.len() && chars[j] == '-' && chars.get(j + 1) != Some(&'>') {
            return true;
        }
        // operator before the identifier (binary use as rhs operand)?
        let mut k = start;
        while k > 0 && chars[k - 1] == ' ' {
            k -= 1;
        }
        if k > 0 && matches!(chars[k - 1], '+' | '*' | '-') {
            // distinguish binary ops from unary minus / deref / &mut:
            // binary has a value (ident, ), ]) on its left
            let mut l = k - 1;
            while l > 0 && chars[l - 1] == ' ' {
                l -= 1;
            }
            if l > 0 && (is_ident(chars[l - 1]) || chars[l - 1] == ')' || chars[l - 1] == ']') {
                return true;
            }
        }
    }
    false
}

// ---- driver ---------------------------------------------------------------

/// Run every pass over the workspace; findings come back sorted by
/// file/line for stable output.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        out.extend(check_safety(f));
        out.extend(check_target_feature(f));
        out.extend(check_deprecation(ws, f));
        out.extend(check_accumulator(f));
    }
    out.extend(check_knobs(ws));
    out.sort_by(|a, b| (&a.file, a.line, a.pass).cmp(&(&b.file, b.line, b.pass)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile::parse(rel.into(), text)
    }

    #[test]
    fn stripper_blanks_comments_strings_and_chars() {
        let (code, strings) = strip(
            "let s = \"unsafe { }\"; // unsafe trailing\nlet c = 'x';\nlet l: &'static str = s;",
        );
        assert!(!code[0].contains("unsafe"));
        assert!(!code[1].contains('x'));
        assert!(code[2].contains("'static"), "lifetimes survive: {}", code[2]);
        assert_eq!(strings, vec![(1, "unsafe { }".into())]);
    }

    #[test]
    fn safety_pass_requires_justification() {
        let bad = file("a.rs", "fn f() {\n    unsafe { g() };\n}\n");
        assert_eq!(check_safety(&bad).len(), 1);
        let good = file(
            "a.rs",
            "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() };\n}\n",
        );
        assert!(check_safety(&good).is_empty());
        let doc = file("a.rs", "/// # Safety\n/// caller checks\npub unsafe fn f() {}\n");
        assert!(check_safety(&doc).is_empty());
    }

    #[test]
    fn safety_pass_sees_through_attributes() {
        let good = file(
            "a.rs",
            "// SAFETY: scheduler-enforced exclusivity\n#[allow(dead_code)]\nunsafe impl Send for X {}\n",
        );
        assert!(check_safety(&good).is_empty());
    }

    #[test]
    fn target_feature_fns_must_be_unsafe() {
        let bad = file("k.rs", "#[target_feature(enable = \"avx2\")]\nfn tile() {}\n");
        assert_eq!(check_target_feature(&bad).len(), 1);
        let good = file("k.rs", "#[target_feature(enable = \"avx2\")]\nunsafe fn tile() {}\n");
        assert!(check_target_feature(&good).is_empty());
    }

    #[test]
    fn tier_modules_are_dispatch_table_only() {
        let bad = file("crates/gemm/src/lib.rs", "pub use host::avx2::tile;\n");
        assert_eq!(check_target_feature(&bad).len(), 1);
        let table = file("crates/gemm/src/host/mod.rs", "f32_tile: avx2::f32_tile,\n");
        assert!(check_target_feature(&table).is_empty());
        let comment = file("crates/gemm/src/lib.rs", "// avx2::tile is dispatched\n");
        assert!(check_target_feature(&comment).is_empty(), "comments are stripped");
    }

    #[test]
    fn accumulator_pass_flags_bare_ops_in_integer_fns_only() {
        let bad = file(
            "crates/gemm/src/host/scalar.rs",
            "fn tile_i8(acc: &mut [i32]) {\n    acc[0] += 2 * 3;\n}\n",
        );
        assert_eq!(check_accumulator(&bad).len(), 1);
        let wrapped = file(
            "crates/gemm/src/host/scalar.rs",
            "fn tile_i8(acc: &mut [i32]) {\n    acc[0] = acc[0].wrapping_add(p);\n}\n",
        );
        assert!(check_accumulator(&wrapped).is_empty());
        let float = file(
            "crates/gemm/src/host/scalar.rs",
            "fn tile_f32(acc: &mut [f32]) {\n    acc[0] += 2.0 * x;\n}\n",
        );
        assert!(check_accumulator(&float).is_empty(), "f32 kernels are exempt");
        let index = file(
            "crates/gemm/src/host/scalar.rs",
            "fn tile_i8(acc: &mut [i32]) {\n    let v = a[i * k + l];\n    acc[i] = v;\n}\n",
        );
        assert!(check_accumulator(&index).is_empty(), "index arithmetic is fine");
    }

    #[test]
    fn knob_names_are_extracted_exactly() {
        assert_eq!(
            knob_names("CAMP_MC and CAMP_FORCE_SCALAR!"),
            vec!["CAMP_MC", "CAMP_FORCE_SCALAR"]
        );
        assert!(knob_names("CAMP_ alone").is_empty());
    }

    #[test]
    fn version_parsing_handles_workspace_manifests() {
        assert_eq!(parse_version("[workspace.package]\nversion = \"0.1.0\"\n"), (0, 1));
        assert_eq!(parse_major_minor("0.3"), Some((0, 3)));
    }
}
