//! camp-analysis: lexical/structural lint passes over the workspace.
//!
//! The single entry point is [`lint::run_all`] over a loaded
//! [`lint::Workspace`]; the `camp-lint` binary wraps it for CI and the
//! command line. See `docs/ANALYSIS.md` for the rule catalogue and
//! `tests/lint_fixtures/` for known-bad trees each rule must flag.
pub mod lint;
