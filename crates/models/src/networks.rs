//! Full network definitions: the convolution layers of AlexNet, VGG-16,
//! ResNet-18 and MobileNet-v1, from which the Table 3 GeMM dimensions
//! can be *derived* (m = out_h·out_w, n = out_channels,
//! k = in_channels·kernel²) rather than transcribed.
//!
//! This validates the workload zoo from first principles: the tests
//! check that the derived shapes reproduce the corresponding Table 3
//! rows. The paper evaluates a representative subset of distinct layer
//! shapes per network (repeated shapes collapse to one row), which the
//! subset tests mirror.

use crate::cnn::GemmShape;
use crate::conv::Conv2d;

/// One convolution layer with its input geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Human-readable layer name.
    pub name: &'static str,
    /// The convolution.
    pub conv: Conv2d,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
}

impl ConvLayer {
    #[allow(clippy::too_many_arguments)]
    const fn new(
        name: &'static str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        ConvLayer {
            name,
            conv: Conv2d { in_channels, out_channels, kernel, stride, padding },
            in_h,
            in_w,
        }
    }

    /// The GeMM this layer becomes under im2col.
    pub fn gemm(&self) -> GemmShape {
        self.conv.gemm_shape(self.in_h, self.in_w)
    }
}

/// AlexNet's five convolution layers (227×227 input variant).
pub fn alexnet() -> Vec<ConvLayer> {
    vec![
        ConvLayer::new("conv1", 3, 96, 11, 4, 0, 227, 227),
        ConvLayer::new("conv2", 96, 256, 5, 1, 2, 27, 27),
        ConvLayer::new("conv3", 256, 384, 3, 1, 1, 13, 13),
        ConvLayer::new("conv4", 384, 384, 3, 1, 1, 13, 13),
        ConvLayer::new("conv5", 384, 256, 3, 1, 1, 13, 13),
    ]
}

/// VGG-16's distinct convolution shapes (224×224 input).
pub fn vgg16() -> Vec<ConvLayer> {
    vec![
        ConvLayer::new("conv1_1", 3, 64, 3, 1, 1, 224, 224),
        ConvLayer::new("conv1_2", 64, 64, 3, 1, 1, 224, 224),
        ConvLayer::new("conv2_1", 64, 128, 3, 1, 1, 112, 112),
        ConvLayer::new("conv2_2", 128, 128, 3, 1, 1, 112, 112),
        ConvLayer::new("conv3_1", 128, 256, 3, 1, 1, 56, 56),
        ConvLayer::new("conv3_2", 256, 256, 3, 1, 1, 56, 56),
        ConvLayer::new("conv4_1", 256, 512, 3, 1, 1, 28, 28),
        ConvLayer::new("conv4_2", 512, 512, 3, 1, 1, 28, 28),
        ConvLayer::new("conv5", 512, 512, 3, 1, 1, 14, 14),
    ]
}

/// ResNet-18's distinct convolution shapes (224×224 input).
pub fn resnet18() -> Vec<ConvLayer> {
    vec![
        ConvLayer::new("conv1", 3, 64, 7, 2, 3, 224, 224),
        ConvLayer::new("conv2_x", 64, 64, 3, 1, 1, 56, 56),
        ConvLayer::new("conv3_x", 128, 128, 3, 1, 1, 28, 28),
        ConvLayer::new("conv4_x", 256, 256, 3, 1, 1, 14, 14),
        ConvLayer::new("conv5_x", 512, 512, 3, 1, 1, 7, 7),
    ]
}

/// MobileNet-v1's distinct pointwise (1×1) convolutions — the layers
/// that dominate its GeMM time (depthwise layers don't map to GeMM).
pub fn mobilenet_v1() -> Vec<ConvLayer> {
    vec![
        ConvLayer::new("conv1", 3, 32, 3, 2, 1, 224, 224),
        ConvLayer::new("pw2", 32, 64, 1, 1, 0, 112, 112),
        ConvLayer::new("pw3", 64, 128, 1, 1, 0, 56, 56),
        ConvLayer::new("pw4", 128, 128, 1, 1, 0, 56, 56),
        ConvLayer::new("pw5", 128, 256, 1, 1, 0, 28, 28),
        ConvLayer::new("pw6", 256, 256, 1, 1, 0, 28, 28),
        ConvLayer::new("pw7", 256, 512, 1, 1, 0, 14, 14),
        ConvLayer::new("pw12", 512, 1024, 1, 1, 0, 7, 7),
        ConvLayer::new("pw13", 1024, 1024, 1, 1, 0, 7, 7),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::{layers, Benchmark};

    #[test]
    fn resnet_conv1_derives_table3_row1() {
        // Table 3 ResNet row 1: 12544, 64, 147
        let l = &resnet18()[0];
        let g = l.gemm();
        assert_eq!(g, GemmShape::new(12544, 64, 147)); // 112² , 64, 3·7·7
        assert!(layers(Benchmark::ResNet).contains(&g));
    }

    #[test]
    fn vgg_conv1_2_derives_table3_m() {
        // VGG 224² spatial → m = 50176; conv1_1 has k = 27 = 3·3·3
        let g = vgg16()[0].gemm();
        assert_eq!(g, GemmShape::new(50176, 64, 27));
        assert!(layers(Benchmark::Vgg).contains(&g));
        let g2 = vgg16()[1].gemm();
        assert_eq!(g2, GemmShape::new(50176, 64, 576));
        assert!(layers(Benchmark::Vgg).contains(&g2));
    }

    #[test]
    fn vgg_deeper_layers_derive_table3() {
        // conv4_2: 28² = 784, 512, 512·9 = 4608 — Table 3 VGG row 9
        let g = vgg16()[7].gemm();
        assert_eq!(g, GemmShape::new(784, 512, 4608));
        assert!(layers(Benchmark::Vgg).contains(&g));
    }

    #[test]
    fn resnet_residual_blocks_derive_table3() {
        // conv2_x: 56² = 3136, 64, 64·9 = 576 — Table 3 ResNet row 4
        let g = resnet18()[1].gemm();
        assert_eq!(g, GemmShape::new(3136, 64, 576));
        assert!(layers(Benchmark::ResNet).contains(&g));
        // conv5_x: 7² = 49, 512, 512·9 = 4608 — Table 3 ResNet row 6
        let g5 = resnet18()[4].gemm();
        assert_eq!(g5, GemmShape::new(49, 512, 4608));
        assert!(layers(Benchmark::ResNet).contains(&g5));
    }

    #[test]
    fn mobilenet_pointwise_derive_table3() {
        // pw13: 49, 1024, 1024 — Table 3 MobileNet row 7
        let g = mobilenet_v1()[8].gemm();
        assert_eq!(g, GemmShape::new(49, 1024, 1024));
        assert!(layers(Benchmark::MobileNet).contains(&g));
        // pw12: 49, 1024, 512 — row 8
        let g12 = mobilenet_v1()[7].gemm();
        assert_eq!(g12, GemmShape::new(49, 1024, 512));
        assert!(layers(Benchmark::MobileNet).contains(&g12));
        // pw5: 784, 256, 128 — row 9
        let g5 = mobilenet_v1()[4].gemm();
        assert_eq!(g5, GemmShape::new(784, 256, 128));
    }

    #[test]
    fn alexnet_conv_geometry_is_consistent() {
        // AlexNet conv3: 13² = 169, 384, 256·9 = 2304 — Table 3 row 2
        let g = alexnet()[2].gemm();
        assert_eq!(g, GemmShape::new(169, 384, 2304));
        assert!(layers(Benchmark::AlexNet).contains(&g));
        // conv1: 3025 = 55², k = 3·11·11 = 363 — Table 3 row 4
        let g1 = alexnet()[0].gemm();
        assert_eq!(g1, GemmShape::new(3025, 96, 363));
    }

    #[test]
    fn every_layer_has_positive_dims() {
        for l in alexnet().iter().chain(&vgg16()).chain(&resnet18()).chain(&mobilenet_v1()) {
            let g = l.gemm();
            assert!(g.m > 0 && g.n > 0 && g.k > 0, "{}", l.name);
        }
    }
}
