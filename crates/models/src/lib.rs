//! # camp-models — the paper's workload zoo
//!
//! * [`cnn`] — the CNN layer GeMM dimensions of Table 3 (AlexNet, SMM,
//!   ResNet, VGG, MobileNet), transcribed exactly;
//! * [`transformer`] — BERT base/large, GPT-2 large and GPT-3 small
//!   configurations and the self-attention / feed-forward GeMM shapes the
//!   paper evaluates (Fig. 14), plus
//!   [`transformer::TransformerConfig::attention_workload`], which
//!   materializes the full per-head attention inventory as a ready-to-run
//!   batch for `camp-core`'s batched engine;
//! * [`conv`] — a convolution layer description, the `im2col` transform
//!   (§2.1) and a direct convolution reference to validate it, plus the
//!   Table 4 edge benchmark convolution.

pub mod cnn;
pub mod conv;
pub mod networks;
pub mod transformer;

pub use cnn::{benchmark, Benchmark, GemmShape};
pub use conv::{im2col, Conv2d, Tensor3};
pub use networks::ConvLayer;
pub use transformer::{AttentionWorkload, LlmModel, TransformerConfig};
