//! Convolution layers, `im2col` (§2.1) and the Table 4 edge benchmark.

use crate::cnn::GemmShape;

/// A dense CHW tensor of i8 activations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor3 {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Row-major CHW data, length `c*h*w`.
    pub data: Vec<i8>,
}

impl Tensor3 {
    /// Zero tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Tensor3 { c, h, w, data: vec![0; c * h * w] }
    }

    /// Element accessor.
    pub fn at(&self, c: usize, y: usize, x: usize) -> i8 {
        self.data[(c * self.h + y) * self.w + x]
    }

    /// Mutable element accessor.
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut i8 {
        &mut self.data[(c * self.h + y) * self.w + x]
    }
}

/// A 2-D convolution layer description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters).
    pub out_channels: usize,
    /// Kernel height/width (square).
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub padding: usize,
}

impl Conv2d {
    /// The Table 4 comparison benchmark: input 16×16×32, filters
    /// 64×3×3×32 (stride 1, padding 1).
    pub fn table4_benchmark() -> (Conv2d, usize, usize) {
        (Conv2d { in_channels: 32, out_channels: 64, kernel: 3, stride: 1, padding: 1 }, 16, 16)
    }

    /// Output spatial size for an `h×w` input.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.padding - self.kernel) / self.stride + 1,
            (w + 2 * self.padding - self.kernel) / self.stride + 1,
        )
    }

    /// The GeMM this convolution becomes under `im2col`:
    /// m = out_h·out_w, n = out_channels, k = in_channels·kernel².
    pub fn gemm_shape(&self, h: usize, w: usize) -> GemmShape {
        let (oh, ow) = self.out_size(h, w);
        GemmShape::new(oh * ow, self.out_channels, self.in_channels * self.kernel * self.kernel)
    }

    /// Direct (reference) convolution with i32 accumulation.
    ///
    /// `weights` is `[out_c][in_c][kh][kw]` row-major.
    pub fn direct(&self, input: &Tensor3, weights: &[i8]) -> Vec<i32> {
        assert_eq!(input.c, self.in_channels);
        assert_eq!(weights.len(), self.out_channels * self.in_channels * self.kernel * self.kernel);
        let (oh, ow) = self.out_size(input.h, input.w);
        let mut out = vec![0i32; self.out_channels * oh * ow];
        for oc in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0i32;
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel {
                            for kx in 0..self.kernel {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if iy < 0
                                    || ix < 0
                                    || iy >= input.h as isize
                                    || ix >= input.w as isize
                                {
                                    continue;
                                }
                                let iv = input.at(ic, iy as usize, ix as usize) as i32;
                                let wv = weights[((oc * self.in_channels + ic) * self.kernel + ky)
                                    * self.kernel
                                    + kx] as i32;
                                acc = acc.wrapping_add(iv.wrapping_mul(wv));
                            }
                        }
                    }
                    out[(oc * oh + oy) * ow + ox] = acc;
                }
            }
        }
        out
    }
}

/// `im2col`: unroll the input so the convolution becomes one GeMM
/// (§2.1). Returns the patch matrix, row-major m×k with
/// m = out_h·out_w and k = in_c·kernel².
pub fn im2col(conv: &Conv2d, input: &Tensor3) -> Vec<i8> {
    let (oh, ow) = conv.out_size(input.h, input.w);
    let k = conv.in_channels * conv.kernel * conv.kernel;
    let mut out = vec![0i8; oh * ow * k];
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let mut col = 0;
            for ic in 0..conv.in_channels {
                for ky in 0..conv.kernel {
                    for kx in 0..conv.kernel {
                        let iy = (oy * conv.stride + ky) as isize - conv.padding as isize;
                        let ix = (ox * conv.stride + kx) as isize - conv.padding as isize;
                        out[row * k + col] =
                            if iy < 0 || ix < 0 || iy >= input.h as isize || ix >= input.w as isize
                            {
                                0
                            } else {
                                input.at(ic, iy as usize, ix as usize)
                            };
                        col += 1;
                    }
                }
            }
        }
    }
    out
}

/// Flatten conv weights `[out_c][in_c·k·k]` into the k×n B matrix of the
/// im2col GeMM (n = out_c).
pub fn weights_to_b(conv: &Conv2d, weights: &[i8]) -> Vec<i8> {
    let k = conv.in_channels * conv.kernel * conv.kernel;
    let n = conv.out_channels;
    let mut b = vec![0i8; k * n];
    for oc in 0..n {
        for kk in 0..k {
            b[kk * n + oc] = weights[oc * k + kk];
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_core::gemm_i32_ref;

    fn filled_input(c: usize, h: usize, w: usize) -> Tensor3 {
        let mut t = Tensor3::zeros(c, h, w);
        for i in 0..t.data.len() {
            t.data[i] = ((i * 7) % 15) as i8 - 7;
        }
        t
    }

    fn filled_weights(conv: &Conv2d) -> Vec<i8> {
        let len = conv.out_channels * conv.in_channels * conv.kernel * conv.kernel;
        (0..len).map(|i| ((i * 5) % 13) as i8 - 6).collect()
    }

    #[test]
    fn out_size_with_padding() {
        let c = Conv2d { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        assert_eq!(c.out_size(16, 16), (16, 16));
        let c2 = Conv2d { in_channels: 1, out_channels: 1, kernel: 3, stride: 2, padding: 0 };
        assert_eq!(c2.out_size(9, 9), (4, 4));
    }

    #[test]
    fn im2col_gemm_equals_direct_convolution() {
        let conv = Conv2d { in_channels: 3, out_channels: 4, kernel: 3, stride: 1, padding: 1 };
        let input = filled_input(3, 8, 8);
        let weights = filled_weights(&conv);

        let direct = conv.direct(&input, &weights);

        let a = im2col(&conv, &input); // m×k patches
        let b = weights_to_b(&conv, &weights); // k×n
        let shape = conv.gemm_shape(8, 8);
        let c = gemm_i32_ref(shape.m, shape.n, shape.k, &a, &b);

        // direct output is [oc][oy][ox]; GeMM output is [row=oy*ow+ox][oc]
        let (oh, ow) = conv.out_size(8, 8);
        for oc in 0..4 {
            for r in 0..oh * ow {
                assert_eq!(c[r * 4 + oc], direct[oc * oh * ow + r], "oc={oc} r={r}");
            }
        }
    }

    #[test]
    fn table4_benchmark_shape() {
        let (conv, h, w) = Conv2d::table4_benchmark();
        let s = conv.gemm_shape(h, w);
        assert_eq!(s, GemmShape::new(256, 64, 288));
        // 2·m·n·k operations for GOPS accounting
        assert_eq!(s.ops(), 2 * 256 * 64 * 288);
    }

    #[test]
    fn strided_conv_matches_gemm_too() {
        let conv = Conv2d { in_channels: 2, out_channels: 3, kernel: 3, stride: 2, padding: 1 };
        let input = filled_input(2, 9, 9);
        let weights = filled_weights(&conv);
        let direct = conv.direct(&input, &weights);
        let a = im2col(&conv, &input);
        let b = weights_to_b(&conv, &weights);
        let s = conv.gemm_shape(9, 9);
        let c = gemm_i32_ref(s.m, s.n, s.k, &a, &b);
        let (oh, ow) = conv.out_size(9, 9);
        for oc in 0..3 {
            for r in 0..oh * ow {
                assert_eq!(c[r * 3 + oc], direct[oc * oh * ow + r]);
            }
        }
    }
}
