//! Transformer (LLM) workloads: BERT base/large, GPT-2 large, GPT-3
//! small — the Fig. 14 benchmark set.
//!
//! The paper evaluates "the matrix multiplications in the self-attention
//! and feed-forward layers" (§5.2) without listing dimensions, so the
//! GeMM shapes are derived from the public model configurations:
//!
//! | model | hidden d | FF dim | heads | layers |
//! |---|---|---|---|---|
//! | BERT base   | 768  | 3072 | 12 | 12 |
//! | BERT large  | 1024 | 4096 | 16 | 24 |
//! | GPT-2 large | 1280 | 5120 | 20 | 36 |
//! | GPT-3 small | 768  | 3072 | 12 | 12 |
//!
//! With sequence length `s` (default 128, a typical inference setting),
//! the self-attention (SA) projections are (s × d) · (d × d) GeMMs and
//! the feed-forward (FF) layers are (s × d) · (d × 4d) and
//! (s × 4d) · (4d × d).

use std::sync::Arc;

use crate::cnn::GemmShape;
use camp_core::backend::CampBackend;
use camp_core::{DType, GemmRequest, Operand, WeightHandle};
use camp_gemm::batch::GemmProblem;
use camp_gemm::reference::SplitMix64;

/// Architecture hyper-parameters of one transformer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Feed-forward inner dimension (usually 4 × hidden).
    pub ff_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder/decoder layer count.
    pub layers: usize,
    /// Evaluation sequence length.
    pub seq_len: usize,
}

impl TransformerConfig {
    /// The self-attention projection GeMMs for one layer: Q, K, V and
    /// output projections, each (s × d) · (d × d).
    pub fn self_attention_gemms(&self) -> Vec<GemmShape> {
        let d = self.hidden;
        let s = self.seq_len;
        vec![
            GemmShape::new(s, d, d), // Q
            GemmShape::new(s, d, d), // K
            GemmShape::new(s, d, d), // V
            GemmShape::new(s, d, d), // output projection
        ]
    }

    /// The attention score/context GeMMs, per head: (s × dₕ)·(dₕ × s)
    /// and (s × s)·(s × dₕ).
    pub fn attention_score_gemms(&self) -> Vec<GemmShape> {
        let dh = self.hidden / self.heads;
        let s = self.seq_len;
        vec![GemmShape::new(s, s, dh), GemmShape::new(s, dh, s)]
    }

    /// The feed-forward GeMMs for one layer: up- and down-projection.
    pub fn feed_forward_gemms(&self) -> Vec<GemmShape> {
        let s = self.seq_len;
        vec![
            GemmShape::new(s, self.ff_dim, self.hidden),
            GemmShape::new(s, self.hidden, self.ff_dim),
        ]
    }

    /// The representative SA GeMM used for Fig. 14's "SA" bar (the QKV
    /// projection dominates SA runtime at moderate sequence lengths).
    pub fn sa_shape(&self) -> GemmShape {
        GemmShape::new(self.seq_len, self.hidden, self.hidden)
    }

    /// The representative FF GeMM used for Fig. 14's "FF" bar.
    pub fn ff_shape(&self) -> GemmShape {
        GemmShape::new(self.seq_len, self.ff_dim, self.hidden)
    }

    /// Materialize the full per-head attention GeMM inventory of this
    /// configuration as a ready-to-run batch (the Fig. 14 self-attention
    /// workload, expanded per layer and head): for every layer the four
    /// (s×d)·(d×d) Q/K/V/output projections, then per head the
    /// (s×dₕ)·(dₕ×s) score and (s×s)·(s×dₕ) context products.
    ///
    /// Operands are synthetic quantized tensors (4-bit range, so the
    /// batch runs under both the `camp.s8` and `camp.s4` kernels),
    /// deterministic in `seed`. Weight matrices and per-head operands
    /// are shared across layers — the operand-reuse structure a batched
    /// engine deduplicates (a real checkpoint has distinct weights per
    /// layer, but QKV weights are still shared across that layer's
    /// heads; sharing across layers additionally exercises the dedup
    /// path without inflating the workload's memory footprint).
    pub fn attention_workload(&self, seed: u64) -> AttentionWorkload {
        let (s, d, dh) = (self.seq_len, self.hidden, self.hidden / self.heads);
        let mut rng = SplitMix64::new(seed);
        let mut tensor = |len: usize| -> Vec<i8> { rng.i8_vec(len, -8, 7) };
        AttentionWorkload {
            cfg: *self,
            x: tensor(s * d),
            weights: std::array::from_fn(|_| tensor(d * d)),
            q: (0..self.heads).map(|_| tensor(s * dh)).collect(),
            kt: (0..self.heads).map(|_| tensor(dh * s)).collect(),
            probs: (0..self.heads).map(|_| tensor(s * s)).collect(),
            v: (0..self.heads).map(|_| tensor(s * dh)).collect(),
        }
    }
}

/// Owned operand storage for one transformer's attention GeMM batch
/// (see [`TransformerConfig::attention_workload`]). The storage is the
/// *unique* tensor set; [`AttentionWorkload::problems`] expands it into
/// the full per-layer, per-head problem list, with shared operands
/// borrowing the same buffers.
#[derive(Debug, Clone)]
pub struct AttentionWorkload {
    cfg: TransformerConfig,
    /// s×d hidden activations (A of every projection).
    x: Vec<i8>,
    /// The four d×d projection weights: Q, K, V, output.
    weights: [Vec<i8>; 4],
    /// Per-head s×dₕ query blocks (A of the score product).
    q: Vec<Vec<i8>>,
    /// Per-head dₕ×s transposed key blocks (B of the score product).
    kt: Vec<Vec<i8>>,
    /// Per-head s×s attention probabilities (A of the context product).
    probs: Vec<Vec<i8>>,
    /// Per-head s×dₕ value blocks (B of the context product).
    v: Vec<Vec<i8>>,
}

impl AttentionWorkload {
    /// The configuration this workload was built from.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// The ready-to-run batch: every attention GeMM of every layer, in
    /// execution order — per layer the Q/K/V/output projections, then
    /// (score, context) per head. Problems borrow the workload's
    /// storage, so projections across layers share one weight buffer
    /// each and per-head operands repeat across layers.
    pub fn problems(&self) -> Vec<GemmProblem<'_>> {
        let (s, d, dh) = (self.cfg.seq_len, self.cfg.hidden, self.cfg.hidden / self.cfg.heads);
        let mut out = Vec::with_capacity(self.len());
        for _layer in 0..self.cfg.layers {
            for w in &self.weights {
                out.push(GemmProblem::new(s, d, d, &self.x, w));
            }
            for h in 0..self.cfg.heads {
                out.push(GemmProblem::new(s, s, dh, &self.q[h], &self.kt[h]));
                out.push(GemmProblem::new(s, dh, s, &self.probs[h], &self.v[h]));
            }
        }
        out
    }

    /// Number of GeMMs in the batch: layers × (4 + 2·heads).
    pub fn len(&self) -> usize {
        self.cfg.layers * (4 + 2 * self.cfg.heads)
    }

    /// True for a zero-layer configuration.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total multiply-accumulate operations across the batch.
    pub fn total_macs(&self) -> u64 {
        self.problems().iter().map(GemmProblem::macs).sum()
    }

    /// Register every unique B operand of this workload with a
    /// backend's weight registry — the four projection weights, and
    /// each head's Kᵀ and V blocks — packing each exactly **once per
    /// model** instead of once per call. Works on any
    /// [`CampBackend`] (the host engine pre-packs; the simulated
    /// backend keeps a raw mirror). The returned handle set drives
    /// [`AttentionWorkload::gemm_requests_with_handles`] and the
    /// legacy [`AttentionWorkload::problems_with_handles`].
    pub fn register<B: CampBackend>(&self, backend: &mut B, dtype: DType) -> AttentionHandles {
        let (s, d, dh) = (self.cfg.seq_len, self.cfg.hidden, self.cfg.hidden / self.cfg.heads);
        AttentionHandles {
            // projection weights: k=d rows, n=d columns
            weights: std::array::from_fn(|i| {
                backend.register_weights(d, d, &self.weights[i], dtype)
            }),
            // score product B = Kᵀ (dh×s): k=dh, n=s
            kt: self.kt.iter().map(|t| backend.register_weights(s, dh, t, dtype)).collect(),
            // context product B = V (s×dh): k=s, n=dh
            v: self.v.iter().map(|t| backend.register_weights(dh, s, t, dtype)).collect(),
            dtype,
        }
    }

    /// The same batch as [`AttentionWorkload::problems`], with every B
    /// operand referenced through its registered handle: the engine
    /// packs **zero** B bytes running it (`EngineStats::packed_b_bytes
    /// == 0`), per call, forever.
    pub fn problems_with_handles(&self, h: &AttentionHandles) -> Vec<GemmProblem<'_>> {
        let (s, d, dh) = (self.cfg.seq_len, self.cfg.hidden, self.cfg.hidden / self.cfg.heads);
        let mut out = Vec::with_capacity(self.len());
        for _layer in 0..self.cfg.layers {
            for w in &h.weights {
                out.push(GemmProblem::with_handle(s, d, d, &self.x, *w).with_dtype(h.dtype));
            }
            for head in 0..self.cfg.heads {
                out.push(
                    GemmProblem::with_handle(s, s, dh, &self.q[head], h.kt[head])
                        .with_dtype(h.dtype),
                );
                out.push(
                    GemmProblem::with_handle(s, dh, s, &self.probs[head], h.v[head])
                        .with_dtype(h.dtype),
                );
            }
        }
        out
    }

    /// The full inventory as typed [`GemmRequest`]s over **dense**
    /// operands, ready for any backend's `execute_batch`: unique
    /// tensors are converted to shared buffers once, so requests across
    /// layers/heads keep the operand identity the batch B-dedup keys on
    /// (exactly like [`AttentionWorkload::problems`]).
    pub fn gemm_requests(&self, dtype: DType) -> Vec<GemmRequest> {
        let (s, d, dh) = (self.cfg.seq_len, self.cfg.hidden, self.cfg.hidden / self.cfg.heads);
        let arc = |t: &Vec<i8>| -> Arc<[i8]> { Arc::from(&t[..]) };
        let x = arc(&self.x);
        let weights: Vec<Arc<[i8]>> = self.weights.iter().map(arc).collect();
        let q: Vec<Arc<[i8]>> = self.q.iter().map(arc).collect();
        let kt: Vec<Arc<[i8]>> = self.kt.iter().map(arc).collect();
        let probs: Vec<Arc<[i8]>> = self.probs.iter().map(arc).collect();
        let v: Vec<Arc<[i8]>> = self.v.iter().map(arc).collect();
        let dense = |m: usize, n: usize, k: usize, a: &Arc<[i8]>, b: &Arc<[i8]>| -> GemmRequest {
            GemmRequest::builder()
                .m(m)
                .n(n)
                .k(k)
                .activation(Arc::clone(a))
                .weights(Operand::Dense(Arc::clone(b)))
                .dtype(dtype)
                .build()
                .expect("attention workload shapes are coherent")
        };
        let mut out = Vec::with_capacity(self.len());
        for _layer in 0..self.cfg.layers {
            for w in &weights {
                out.push(dense(s, d, d, &x, w));
            }
            for head in 0..self.cfg.heads {
                out.push(dense(s, s, dh, &q[head], &kt[head]));
                out.push(dense(s, dh, s, &probs[head], &v[head]));
            }
        }
        out
    }

    /// The same inventory with every B operand referenced through its
    /// registered handle ([`AttentionWorkload::register`]): the host
    /// engine packs **zero** B bytes running it, per call, forever; a
    /// serving session submits these directly.
    pub fn gemm_requests_with_handles(&self, h: &AttentionHandles) -> Vec<GemmRequest> {
        let s = self.cfg.seq_len;
        let arc = |t: &Vec<i8>| -> Arc<[i8]> { Arc::from(&t[..]) };
        let x = arc(&self.x);
        let q: Vec<Arc<[i8]>> = self.q.iter().map(arc).collect();
        let probs: Vec<Arc<[i8]>> = self.probs.iter().map(arc).collect();
        let with = |m: usize, a: Arc<[i8]>, handle: WeightHandle| -> GemmRequest {
            GemmRequest::with_weights(m, a, handle).expect("attention workload shapes are coherent")
        };
        let mut out = Vec::with_capacity(self.len());
        for _layer in 0..self.cfg.layers {
            for w in &h.weights {
                out.push(with(s, Arc::clone(&x), *w));
            }
            for head in 0..self.cfg.heads {
                out.push(with(s, Arc::clone(&q[head]), h.kt[head]));
                out.push(with(s, Arc::clone(&probs[head]), h.v[head]));
            }
        }
        out
    }

    /// The same inventory as owned legacy serving requests.
    #[deprecated(
        since = "0.2.0",
        note = "use gemm_requests_with_handles and submit the GemmRequests; remove: v0.3"
    )]
    #[allow(deprecated)]
    pub fn requests(&self, h: &AttentionHandles) -> Vec<camp_core::session::Request> {
        use camp_core::session::Request;
        let s = self.cfg.seq_len;
        let mut out = Vec::with_capacity(self.len());
        for _layer in 0..self.cfg.layers {
            for w in &h.weights {
                out.push(Request { m: s, a: self.x.clone(), weights: *w });
            }
            for head in 0..self.cfg.heads {
                out.push(Request { m: s, a: self.q[head].clone(), weights: h.kt[head] });
                out.push(Request { m: s, a: self.probs[head].clone(), weights: h.v[head] });
            }
        }
        out
    }
}

/// Handles of one registered [`AttentionWorkload`] (see
/// [`AttentionWorkload::register`]): QKV/output projection weights plus
/// each head's Kᵀ and V blocks, all packed once for `dtype`'s kernel.
#[derive(Debug, Clone)]
pub struct AttentionHandles {
    /// The four d×d projection weights: Q, K, V, output.
    pub weights: [WeightHandle; 4],
    /// Per-head Kᵀ blocks (B of the score product).
    pub kt: Vec<WeightHandle>,
    /// Per-head V blocks (B of the context product).
    pub v: Vec<WeightHandle>,
    /// Kernel every handle was registered for.
    pub dtype: DType,
}

/// The four LLMs of the paper (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlmModel {
    /// BERT base (110 M parameters).
    BertBase,
    /// BERT large (340 M).
    BertLarge,
    /// GPT-2 large (774 M).
    Gpt2Large,
    /// GPT-3 small (125 M).
    Gpt3Small,
}

impl LlmModel {
    /// All models in the paper's order.
    pub fn all() -> [LlmModel; 4] {
        [LlmModel::BertBase, LlmModel::BertLarge, LlmModel::Gpt2Large, LlmModel::Gpt3Small]
    }

    /// Display name matching Fig. 14.
    pub fn name(self) -> &'static str {
        match self {
            LlmModel::BertBase => "BERT Base",
            LlmModel::BertLarge => "BERT Large",
            LlmModel::Gpt2Large => "GPT-2 Large",
            LlmModel::Gpt3Small => "GPT-3 Small",
        }
    }

    /// Architecture configuration (sequence length 128).
    pub fn config(self) -> TransformerConfig {
        let (hidden, ff_dim, heads, layers) = match self {
            LlmModel::BertBase => (768, 3072, 12, 12),
            LlmModel::BertLarge => (1024, 4096, 16, 24),
            LlmModel::Gpt2Large => (1280, 5120, 20, 36),
            LlmModel::Gpt3Small => (768, 3072, 12, 12),
        };
        TransformerConfig { hidden, ff_dim, heads, layers, seq_len: 128 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_core::CampEngine;

    #[test]
    fn configs_match_public_models() {
        assert_eq!(LlmModel::BertBase.config().hidden, 768);
        assert_eq!(LlmModel::BertLarge.config().ff_dim, 4096);
        assert_eq!(LlmModel::Gpt2Large.config().heads, 20);
        assert_eq!(LlmModel::Gpt3Small.config().layers, 12);
    }

    #[test]
    fn sa_and_ff_shapes() {
        let c = LlmModel::BertBase.config();
        assert_eq!(c.sa_shape(), GemmShape::new(128, 768, 768));
        assert_eq!(c.ff_shape(), GemmShape::new(128, 3072, 768));
    }

    #[test]
    fn per_layer_gemm_inventory() {
        let c = LlmModel::BertLarge.config();
        assert_eq!(c.self_attention_gemms().len(), 4);
        assert_eq!(c.feed_forward_gemms().len(), 2);
        let score = c.attention_score_gemms();
        assert_eq!(score[0], GemmShape::new(128, 128, 64));
    }

    #[test]
    fn ff_is_heavier_than_sa() {
        for m in LlmModel::all() {
            let c = m.config();
            assert!(c.ff_shape().macs() > c.sa_shape().macs());
        }
    }

    fn tiny_config() -> TransformerConfig {
        TransformerConfig { hidden: 8, ff_dim: 32, heads: 2, layers: 3, seq_len: 4 }
    }

    #[test]
    fn attention_workload_inventory_matches_fig14_structure() {
        let cfg = tiny_config();
        let w = cfg.attention_workload(7);
        let problems = w.problems();
        assert_eq!(problems.len(), w.len());
        assert_eq!(w.len(), cfg.layers * (4 + 2 * cfg.heads));
        let per_layer = 4 + 2 * cfg.heads;
        for layer in 0..cfg.layers {
            let base = layer * per_layer;
            // four (s×d)·(d×d) projections ...
            for p in &problems[base..base + 4] {
                assert_eq!((p.m, p.n, p.k), (cfg.seq_len, cfg.hidden, cfg.hidden));
            }
            // ... then per head the score and context products
            let dh = cfg.hidden / cfg.heads;
            for h in 0..cfg.heads {
                let score = &problems[base + 4 + 2 * h];
                let context = &problems[base + 4 + 2 * h + 1];
                assert_eq!((score.m, score.n, score.k), (cfg.seq_len, cfg.seq_len, dh));
                assert_eq!((context.m, context.n, context.k), (cfg.seq_len, dh, cfg.seq_len));
                let shapes = cfg.attention_score_gemms();
                assert_eq!(GemmShape::new(score.m, score.n, score.k), shapes[0]);
                assert_eq!(GemmShape::new(context.m, context.n, context.k), shapes[1]);
            }
        }
    }

    #[test]
    fn attention_workload_shares_weights_across_layers() {
        let cfg = tiny_config();
        let w = cfg.attention_workload(7);
        let problems = w.problems();
        let per_layer = 4 + 2 * cfg.heads;
        // every layer's Q projection must reuse the same packed-B
        // identity (same buffer), and so for each head's operands
        for layer in 1..cfg.layers {
            for slot in 0..per_layer {
                assert_eq!(
                    problems[slot].b_key(),
                    problems[layer * per_layer + slot].b_key(),
                    "layer {layer} slot {slot} must share B with layer 0"
                );
            }
        }
        // ... while the four projection weights are distinct operands
        assert_ne!(problems[0].b_key(), problems[1].b_key());
        assert_ne!(problems[1].b_key(), problems[2].b_key());
        assert_ne!(problems[2].b_key(), problems[3].b_key());
    }

    #[test]
    fn registered_workload_mirrors_the_slice_problems() {
        let cfg = tiny_config();
        let w = cfg.attention_workload(7);
        let mut eng = CampEngine::new();
        let handles = w.register(&mut eng, DType::I8);
        // one registration per unique operand: 4 weights + 2 per head
        assert_eq!(eng.registered_weights(), 4 + 2 * cfg.heads);
        let by_handle = w.problems_with_handles(&handles);
        let by_slice = w.problems();
        assert_eq!(by_handle.len(), by_slice.len());
        for (h, s) in by_handle.iter().zip(&by_slice) {
            assert_eq!((h.m, h.n, h.k), (s.m, s.n, s.k));
            assert_eq!(h.a, s.a, "activations must alias the same storage");
            assert!(h.handle.is_some());
            let meta = eng.weight_meta(h.handle.unwrap());
            assert_eq!((meta.n, meta.k), (h.n, h.k), "registration shape must match");
        }
        // typed requests carry the same inventory (handle and dense)
        let reqs = w.gemm_requests_with_handles(&handles);
        assert_eq!(reqs.len(), by_slice.len());
        for (r, s) in reqs.iter().zip(&by_slice) {
            assert_eq!(r.m(), s.m);
            assert_eq!(r.activation(), s.a);
        }
        let dense = w.gemm_requests(DType::I8);
        assert_eq!(dense.len(), by_slice.len());
        for (r, s) in dense.iter().zip(&by_slice) {
            assert_eq!(r.activation(), s.a);
            assert_eq!((r.n(), r.k()), (Some(s.n), Some(s.k)));
        }
        // dense requests preserve the cross-layer operand sharing the
        // batch dedup keys on (same Arc across layers)
        let per_layer = 4 + 2 * cfg.heads;
        let (camp_core::Operand::Dense(b0), camp_core::Operand::Dense(b1)) =
            (dense[0].weights(), dense[per_layer].weights())
        else {
            panic!("dense operands expected");
        };
        assert_eq!(b0.as_ptr(), b1.as_ptr(), "layers must share one weight buffer");
    }

    #[test]
    fn attention_workload_is_quantized_and_deterministic() {
        let cfg = tiny_config();
        let w1 = cfg.attention_workload(42);
        let w2 = cfg.attention_workload(42);
        let w3 = cfg.attention_workload(43);
        let (p1, p2, p3) = (w1.problems(), w2.problems(), w3.problems());
        assert_eq!(p1[0].a, p2[0].a, "same seed must reproduce the workload");
        assert_ne!(p1[0].a, p3[0].a, "different seeds must differ");
        for p in &p1 {
            assert!(p.a.iter().all(|&v| (-8..=7).contains(&v)), "4-bit range");
            assert!(p.b.iter().all(|&v| (-8..=7).contains(&v)), "4-bit range");
            assert_eq!(p.a.len(), p.m * p.k);
            assert_eq!(p.b.len(), p.k * p.n);
        }
        assert_eq!(w1.total_macs(), p1.iter().map(|p| p.macs()).sum::<u64>());
        assert!(!w1.is_empty());
    }
}
