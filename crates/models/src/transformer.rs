//! Transformer (LLM) workloads: BERT base/large, GPT-2 large, GPT-3
//! small — the Fig. 14 benchmark set.
//!
//! The paper evaluates "the matrix multiplications in the self-attention
//! and feed-forward layers" (§5.2) without listing dimensions, so the
//! GeMM shapes are derived from the public model configurations:
//!
//! | model | hidden d | FF dim | heads | layers |
//! |---|---|---|---|---|
//! | BERT base   | 768  | 3072 | 12 | 12 |
//! | BERT large  | 1024 | 4096 | 16 | 24 |
//! | GPT-2 large | 1280 | 5120 | 20 | 36 |
//! | GPT-3 small | 768  | 3072 | 12 | 12 |
//!
//! With sequence length `s` (default 128, a typical inference setting),
//! the self-attention (SA) projections are (s × d) · (d × d) GeMMs and
//! the feed-forward (FF) layers are (s × d) · (d × 4d) and
//! (s × 4d) · (4d × d).

use crate::cnn::GemmShape;

/// Architecture hyper-parameters of one transformer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Hidden (embedding) dimension.
    pub hidden: usize,
    /// Feed-forward inner dimension (usually 4 × hidden).
    pub ff_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder/decoder layer count.
    pub layers: usize,
    /// Evaluation sequence length.
    pub seq_len: usize,
}

impl TransformerConfig {
    /// The self-attention projection GeMMs for one layer: Q, K, V and
    /// output projections, each (s × d) · (d × d).
    pub fn self_attention_gemms(&self) -> Vec<GemmShape> {
        let d = self.hidden;
        let s = self.seq_len;
        vec![
            GemmShape::new(s, d, d), // Q
            GemmShape::new(s, d, d), // K
            GemmShape::new(s, d, d), // V
            GemmShape::new(s, d, d), // output projection
        ]
    }

    /// The attention score/context GeMMs, per head: (s × dₕ)·(dₕ × s)
    /// and (s × s)·(s × dₕ).
    pub fn attention_score_gemms(&self) -> Vec<GemmShape> {
        let dh = self.hidden / self.heads;
        let s = self.seq_len;
        vec![GemmShape::new(s, s, dh), GemmShape::new(s, dh, s)]
    }

    /// The feed-forward GeMMs for one layer: up- and down-projection.
    pub fn feed_forward_gemms(&self) -> Vec<GemmShape> {
        let s = self.seq_len;
        vec![
            GemmShape::new(s, self.ff_dim, self.hidden),
            GemmShape::new(s, self.hidden, self.ff_dim),
        ]
    }

    /// The representative SA GeMM used for Fig. 14's "SA" bar (the QKV
    /// projection dominates SA runtime at moderate sequence lengths).
    pub fn sa_shape(&self) -> GemmShape {
        GemmShape::new(self.seq_len, self.hidden, self.hidden)
    }

    /// The representative FF GeMM used for Fig. 14's "FF" bar.
    pub fn ff_shape(&self) -> GemmShape {
        GemmShape::new(self.seq_len, self.ff_dim, self.hidden)
    }
}

/// The four LLMs of the paper (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlmModel {
    /// BERT base (110 M parameters).
    BertBase,
    /// BERT large (340 M).
    BertLarge,
    /// GPT-2 large (774 M).
    Gpt2Large,
    /// GPT-3 small (125 M).
    Gpt3Small,
}

impl LlmModel {
    /// All models in the paper's order.
    pub fn all() -> [LlmModel; 4] {
        [LlmModel::BertBase, LlmModel::BertLarge, LlmModel::Gpt2Large, LlmModel::Gpt3Small]
    }

    /// Display name matching Fig. 14.
    pub fn name(self) -> &'static str {
        match self {
            LlmModel::BertBase => "BERT Base",
            LlmModel::BertLarge => "BERT Large",
            LlmModel::Gpt2Large => "GPT-2 Large",
            LlmModel::Gpt3Small => "GPT-3 Small",
        }
    }

    /// Architecture configuration (sequence length 128).
    pub fn config(self) -> TransformerConfig {
        let (hidden, ff_dim, heads, layers) = match self {
            LlmModel::BertBase => (768, 3072, 12, 12),
            LlmModel::BertLarge => (1024, 4096, 16, 24),
            LlmModel::Gpt2Large => (1280, 5120, 20, 36),
            LlmModel::Gpt3Small => (768, 3072, 12, 12),
        };
        TransformerConfig { hidden, ff_dim, heads, layers, seq_len: 128 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_match_public_models() {
        assert_eq!(LlmModel::BertBase.config().hidden, 768);
        assert_eq!(LlmModel::BertLarge.config().ff_dim, 4096);
        assert_eq!(LlmModel::Gpt2Large.config().heads, 20);
        assert_eq!(LlmModel::Gpt3Small.config().layers, 12);
    }

    #[test]
    fn sa_and_ff_shapes() {
        let c = LlmModel::BertBase.config();
        assert_eq!(c.sa_shape(), GemmShape::new(128, 768, 768));
        assert_eq!(c.ff_shape(), GemmShape::new(128, 3072, 768));
    }

    #[test]
    fn per_layer_gemm_inventory() {
        let c = LlmModel::BertLarge.config();
        assert_eq!(c.self_attention_gemms().len(), 4);
        assert_eq!(c.feed_forward_gemms().len(), 2);
        let score = c.attention_score_gemms();
        assert_eq!(score[0], GemmShape::new(128, 128, 64));
    }

    #[test]
    fn ff_is_heavier_than_sa() {
        for m in LlmModel::all() {
            let c = m.config();
            assert!(c.ff_shape().macs() > c.sa_shape().macs());
        }
    }
}
