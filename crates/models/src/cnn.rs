//! Table 3 of the paper: the m×k · k×n GeMM dimensions of every
//! evaluated CNN layer and the square-matrix (SMM) suite.

use std::fmt;

/// One GeMM problem: C (m×n) = A (m×k) · B (k×n).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of A / C.
    pub m: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
}

impl GemmShape {
    /// Construct a shape.
    pub const fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// Multiply-accumulate operations of this GeMM.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Operations (2 per MAC), the x-axis unit of Figs. 4/15.
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

/// The benchmark suites of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// AlexNet convolution layers (5 GeMMs).
    AlexNet,
    /// Square matrix multiplication, 32–1024.
    Smm,
    /// ResNet layers (8 GeMMs).
    ResNet,
    /// VGG layers (9 GeMMs).
    Vgg,
    /// MobileNet layers (10 GeMMs).
    MobileNet,
}

impl Benchmark {
    /// All CNN-side benchmarks in the paper's order.
    pub fn all() -> [Benchmark; 5] {
        [
            Benchmark::AlexNet,
            Benchmark::Smm,
            Benchmark::ResNet,
            Benchmark::Vgg,
            Benchmark::MobileNet,
        ]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::AlexNet => "AlexNet",
            Benchmark::Smm => "SMM",
            Benchmark::ResNet => "ResNet",
            Benchmark::Vgg => "VGG",
            Benchmark::MobileNet => "MobileNet",
        }
    }
}

/// Table 3, transcribed: the (m, n, k) triples per benchmark.
///
/// The table reports `m,n,k` of an `m·k × k·n` product; size index 1 is
/// first. (Two obvious typos in the camera-ready table — "2544" for
/// MobileNet-1 and "12544" given row context — are transcribed as
/// printed.)
pub fn layers(b: Benchmark) -> Vec<GemmShape> {
    let t: &[(usize, usize, usize)] = match b {
        Benchmark::AlexNet => &[
            (169, 256, 3456),
            (169, 384, 2304),
            (169, 384, 3456),
            (3025, 96, 363),
            (729, 256, 2400),
        ],
        Benchmark::Smm => &[
            (32, 32, 32),
            (64, 64, 64),
            (128, 128, 128),
            (256, 256, 256),
            (512, 512, 512),
            (1024, 1024, 1024),
        ],
        Benchmark::ResNet => &[
            (12544, 64, 147),
            (196, 256, 1152),
            (196, 256, 2304),
            (3136, 64, 576),
            (49, 512, 2304),
            (49, 512, 4608),
            (784, 128, 1152),
            (784, 128, 576),
        ],
        Benchmark::Vgg => &[
            (12544, 128, 1152),
            (12544, 128, 576),
            (196, 512, 4608),
            (3136, 256, 1152),
            (3136, 256, 2304),
            (50176, 64, 27),
            (50176, 64, 576),
            (784, 512, 2304),
            (784, 512, 4608),
        ],
        Benchmark::MobileNet => &[
            (2544, 32, 27),
            (12544, 64, 32),
            (196, 512, 256),
            (196, 512, 512),
            (3136, 128, 128),
            (3136, 128, 64),
            (49, 1024, 1024),
            (49, 1024, 512),
            (784, 256, 128),
            (784, 256, 256),
        ],
    };
    t.iter().map(|&(m, n, k)| GemmShape::new(m, n, k)).collect()
}

/// All CNN-layer GeMMs of Table 3 (excluding the SMM suite), tagged with
/// their benchmark — the population behind Figs. 4, 13, 15, 16 and 17.
pub fn all_cnn_layers() -> Vec<(Benchmark, usize, GemmShape)> {
    let mut out = Vec::new();
    for b in [Benchmark::AlexNet, Benchmark::ResNet, Benchmark::Vgg, Benchmark::MobileNet] {
        for (i, s) in layers(b).into_iter().enumerate() {
            out.push((b, i + 1, s));
        }
    }
    out
}

/// Convenience alias used across the harnesses.
pub fn benchmark(b: Benchmark) -> Vec<GemmShape> {
    layers(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts_match_paper() {
        assert_eq!(layers(Benchmark::AlexNet).len(), 5);
        assert_eq!(layers(Benchmark::Smm).len(), 6);
        assert_eq!(layers(Benchmark::ResNet).len(), 8);
        assert_eq!(layers(Benchmark::Vgg).len(), 9);
        assert_eq!(layers(Benchmark::MobileNet).len(), 10);
    }

    #[test]
    fn spot_check_entries() {
        assert_eq!(layers(Benchmark::ResNet)[0], GemmShape::new(12544, 64, 147));
        assert_eq!(layers(Benchmark::Vgg)[5], GemmShape::new(50176, 64, 27));
        assert_eq!(layers(Benchmark::Smm)[4], GemmShape::new(512, 512, 512));
    }

    #[test]
    fn ops_accounting() {
        let s = GemmShape::new(10, 20, 30);
        assert_eq!(s.macs(), 6000);
        assert_eq!(s.ops(), 12000);
        assert_eq!(s.to_string(), "10x20x30");
    }

    #[test]
    fn all_cnn_layers_is_32_entries() {
        // 5 + 8 + 9 + 10 layers
        assert_eq!(all_cnn_layers().len(), 32);
    }

    #[test]
    fn benchmarks_have_names() {
        for b in Benchmark::all() {
            assert!(!b.name().is_empty());
        }
    }
}
