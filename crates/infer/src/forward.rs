//! The quantized forward pass and the executors that run its GeMMs.
//!
//! The crate-internal `forward` pass emits every GeMM of a
//! transformer block as an
//! [`InferGemm`] — activation bytes plus either a logical weight id or
//! a dense KV-derived operand — and hands batches to a [`GemmExec`].
//! The executors differ only in *who multiplies*:
//!
//! * [`DispatchExec`] submits [`GemmRequest`] batches to a
//!   [`Dispatcher`](camp_core::Dispatcher) tenant session (the serving
//!   path; decode steps tagged [`Priority::Decode`]),
//! * [`BackendExec`] calls [`CampBackend::execute_batch`] directly
//!   (host engine or cycle-accurate simulator),
//! * [`RefExec`] replays each GeMM on [`gemm_i32_ref`],
//! * [`CheckedExec`] wraps any of them and cross-validates every
//!   layer's output against the reference as it happens.
//!
//! Everything outside the GeMMs — requantization, causal masking,
//! saturating residual adds, ReLU, argmax — is plain deterministic
//! host code, so two executors that agree on GeMM outputs agree on
//! every token, bit for bit.

use std::sync::Arc;

use camp_core::backend::CampBackend;
use camp_core::dispatch::{DispatchSession, Priority};
use camp_core::GemmRequest;
use camp_gemm::reference::gemm_i32_ref;

use crate::kv::KvCache;
use crate::model::{Model, ModelHandles, WeightId};
use crate::session::InferError;

/// The B-side of one inference GeMM.
#[derive(Debug, Clone)]
pub enum BOperand {
    /// A static model weight by logical id — each executor resolves it
    /// to its own backend's handle (or to the raw bytes).
    Weight(WeightId),
    /// A KV-derived dense operand (per-head Kᵀ or V), row-major k×n.
    Dense(Arc<[i8]>),
}

/// One GeMM of the forward pass, executor-agnostic.
#[derive(Debug, Clone)]
pub struct InferGemm {
    /// Rows of the activation / result.
    pub m: usize,
    /// Output columns.
    pub n: usize,
    /// Reduction depth.
    pub k: usize,
    /// Row-major m×k i8 activation.
    pub a: Arc<[i8]>,
    /// The weight side.
    pub b: BOperand,
}

/// Executes batches of inference GeMMs, returning each result as a
/// row-major m×n wrapping-i32 accumulator in submission order.
pub trait GemmExec {
    /// Run one batch.
    fn run(&mut self, batch: Vec<InferGemm>) -> Result<Vec<Vec<i32>>, InferError>;
}

/// Replay one GeMM on the scalar reference.
fn ref_gemm(model: &Model, g: &InferGemm) -> Vec<i32> {
    match &g.b {
        BOperand::Weight(id) => {
            let w = model.weight(*id);
            debug_assert_eq!((g.n, g.k), (w.n, w.k));
            gemm_i32_ref(g.m, g.n, g.k, &g.a, &w.q)
        }
        BOperand::Dense(b) => gemm_i32_ref(g.m, g.n, g.k, &g.a, b),
    }
}

/// The ground-truth executor: every GeMM on `gemm_i32_ref`.
#[derive(Debug)]
pub struct RefExec<'m> {
    model: &'m Model,
}

impl<'m> RefExec<'m> {
    /// Reference executor for `model` (needs the raw weight bytes).
    pub fn new(model: &'m Model) -> Self {
        RefExec { model }
    }
}

impl GemmExec for RefExec<'_> {
    fn run(&mut self, batch: Vec<InferGemm>) -> Result<Vec<Vec<i32>>, InferError> {
        Ok(batch.iter().map(|g| ref_gemm(self.model, g)).collect())
    }
}

/// Build the [`GemmRequest`]s for one batch against a backend's
/// registered handles.
fn to_requests(
    batch: &[InferGemm],
    handles: &ModelHandles,
) -> Result<Vec<GemmRequest>, InferError> {
    batch
        .iter()
        .map(|g| {
            match &g.b {
                BOperand::Weight(id) => {
                    GemmRequest::with_weights(g.m, g.a.clone(), handles.get(*id))
                }
                BOperand::Dense(b) => GemmRequest::dense(g.m, g.n, g.k, g.a.clone(), b.clone()),
            }
            .map_err(InferError::Request)
        })
        .collect()
}

/// Direct-to-backend executor: one [`CampBackend::execute_batch`] call
/// per batch. This is how the cycle-accurate simulator costs a decode
/// step, and the no-dispatcher baseline on the host engine.
#[derive(Debug)]
pub struct BackendExec<'a, B: CampBackend> {
    backend: &'a mut B,
    handles: &'a ModelHandles,
}

impl<'a, B: CampBackend> BackendExec<'a, B> {
    /// Executor over `backend`, whose registry holds `handles`.
    pub fn new(backend: &'a mut B, handles: &'a ModelHandles) -> Self {
        BackendExec { backend, handles }
    }
}

impl<B: CampBackend> GemmExec for BackendExec<'_, B> {
    fn run(&mut self, batch: Vec<InferGemm>) -> Result<Vec<Vec<i32>>, InferError> {
        let reqs = to_requests(&batch, self.handles)?;
        let outcome = self.backend.execute_batch(&reqs).map_err(InferError::Request)?;
        Ok(outcome.outputs.into_iter().map(|o| o.c).collect())
    }
}

/// The serving executor: batches go through a dispatcher tenant
/// session, tagged with this executor's priority.
#[derive(Debug)]
pub struct DispatchExec<'a, B: CampBackend + Send + 'static> {
    session: &'a mut DispatchSession<B>,
    handles: &'a ModelHandles,
    priority: Priority,
}

impl<'a, B: CampBackend + Send + 'static> DispatchExec<'a, B> {
    /// Executor submitting through `session` at `priority`.
    pub fn new(
        session: &'a mut DispatchSession<B>,
        handles: &'a ModelHandles,
        priority: Priority,
    ) -> Self {
        DispatchExec { session, handles, priority }
    }
}

impl<B: CampBackend + Send + 'static> GemmExec for DispatchExec<'_, B> {
    fn run(&mut self, batch: Vec<InferGemm>) -> Result<Vec<Vec<i32>>, InferError> {
        let reqs = to_requests(&batch, self.handles)?;
        let ticket =
            self.session.submit_with(reqs, self.priority, None).map_err(InferError::Request)?;
        let outcome = self.session.wait(ticket).map_err(InferError::Request)?;
        Ok(outcome.outputs.into_iter().map(|o| o.c).collect())
    }
}

/// Wraps any executor and cross-validates every GeMM output against
/// `gemm_i32_ref` — the per-layer reference check, made structural. A
/// mismatch surfaces as [`InferError::CrossCheck`] with the index of
/// the offending GeMM within its batch.
#[derive(Debug)]
pub struct CheckedExec<'m, E> {
    model: &'m Model,
    inner: E,
}

impl<'m, E: GemmExec> CheckedExec<'m, E> {
    /// Cross-checking wrapper around `inner`.
    pub fn new(model: &'m Model, inner: E) -> Self {
        CheckedExec { model, inner }
    }
}

impl<E: GemmExec> GemmExec for CheckedExec<'_, E> {
    fn run(&mut self, batch: Vec<InferGemm>) -> Result<Vec<Vec<i32>>, InferError> {
        let expected: Vec<Vec<i32>> = batch.iter().map(|g| ref_gemm(self.model, g)).collect();
        let got = self.inner.run(batch)?;
        for (op, (g, e)) in got.iter().zip(&expected).enumerate() {
            if g != e {
                return Err(InferError::CrossCheck { op });
            }
        }
        Ok(got)
    }
}

/// Requantize one i32 accumulator back to i8.
#[inline]
fn requant(acc: i32, mult: f32) -> i8 {
    (acc as f32 * mult).round().clamp(-127.0, 127.0) as i8
}

/// Per-output-channel requantization of a row-major m×n accumulator.
fn requant_channels(acc: &[i32], m: usize, n: usize, mults: &[f32]) -> Vec<i8> {
    debug_assert_eq!(acc.len(), m * n);
    debug_assert_eq!(mults.len(), n);
    let mut out = vec![0i8; m * n];
    for i in 0..m {
        for c in 0..n {
            out[i * n + c] = requant(acc[i * n + c], mults[c]);
        }
    }
    out
}

/// Saturating i8 residual add, in place.
fn residual_add(x: &mut [i8], delta: &[i8]) {
    debug_assert_eq!(x.len(), delta.len());
    for (a, &b) in x.iter_mut().zip(delta) {
        *a = a.saturating_add(b);
    }
}

/// Extract the per-head column block `[head·dₕ, (head+1)·dₕ)` of a
/// row-major m×d matrix.
fn head_block(x: &[i8], m: usize, d: usize, head: usize, dh: usize) -> Vec<i8> {
    let off = head * dh;
    let mut out = vec![0i8; m * dh];
    for i in 0..m {
        out[i * dh..(i + 1) * dh].copy_from_slice(&x[i * d + off..][..dh]);
    }
    out
}

/// One forward pass over `tokens` occupying absolute positions
/// `start..start + tokens.len()`: embeds, runs every layer's GeMMs
/// through `exec` (appending this step's K/V rows to `kv`), and
/// returns the argmax token of the final position's logits.
///
/// Prefill and decode are the *same* function — a decode step is a
/// one-token call — which is what makes the decode-equals-recompute
/// parity structural rather than aspirational.
pub(crate) fn forward(
    model: &Model,
    exec: &mut dyn GemmExec,
    kv: &mut KvCache,
    start: usize,
    tokens: &[u32],
) -> Result<u32, InferError> {
    if tokens.is_empty() {
        return Err(InferError::EmptyPrompt);
    }
    for &t in tokens {
        if t as usize >= model.vocab() {
            return Err(InferError::TokenOutOfRange { token: t, vocab: model.vocab() });
        }
    }
    let cfg = model.config();
    let (d, heads, dh) = (cfg.hidden, cfg.heads, model.head_dim());
    let m = tokens.len();
    kv.ensure_room(m)?;

    let mut x: Vec<i8> = Vec::with_capacity(m * d);
    for (i, &t) in tokens.iter().enumerate() {
        x.extend_from_slice(&model.embed_row(t, start + i));
    }

    for l in 0..cfg.layers {
        let ids = model.layer(l);
        let xa: Arc<[i8]> = x.clone().into();
        let proj = exec.run(vec![
            InferGemm { m, n: d, k: d, a: xa.clone(), b: BOperand::Weight(ids.wq) },
            InferGemm { m, n: d, k: d, a: xa.clone(), b: BOperand::Weight(ids.wk) },
            InferGemm { m, n: d, k: d, a: xa, b: BOperand::Weight(ids.wv) },
        ])?;
        let q_act = requant_channels(&proj[0], m, d, &model.weight(ids.wq).mults);
        let k_act = requant_channels(&proj[1], m, d, &model.weight(ids.wk).mults);
        let v_act = requant_channels(&proj[2], m, d, &model.weight(ids.wv).mults);
        for i in 0..m {
            kv.push(l, &k_act[i * d..(i + 1) * d], &v_act[i * d..(i + 1) * d]);
        }
        let t_total = kv.layer_len(l);
        let base = kv.base();

        // per-head attention scores: (m × dₕ) · (dₕ × t)
        let scores = exec.run(
            (0..heads)
                .map(|h| InferGemm {
                    m,
                    n: t_total,
                    k: dh,
                    a: head_block(&q_act, m, d, h, dh).into(),
                    b: BOperand::Dense(kv.k_head_t(l, h, dh)),
                })
                .collect(),
        )?;

        // the "softmax" stand-in: causal mask + static-scale requant,
        // no row-max subtraction — row-local, so prefill row i and the
        // decode step at position start+i compute identical probs
        let score_mult = model.score_mult();
        let probs: Vec<Vec<i8>> = scores
            .iter()
            .map(|acc| {
                let mut p = vec![0i8; m * t_total];
                for i in 0..m {
                    let pos = start + i;
                    for j in 0..t_total {
                        if base + j <= pos {
                            p[i * t_total + j] = requant(acc[i * t_total + j], score_mult);
                        }
                    }
                }
                p
            })
            .collect();

        // per-head context: (m × t) · (t × dₕ)
        let ctxs = exec.run(
            probs
                .iter()
                .enumerate()
                .map(|(h, p)| InferGemm {
                    m,
                    n: dh,
                    k: t_total,
                    a: p.clone().into(),
                    b: BOperand::Dense(kv.v_head(l, h, dh)),
                })
                .collect(),
        )?;
        let mut ctx = vec![0i8; m * d];
        for (h, acc) in ctxs.iter().enumerate() {
            for i in 0..m {
                let mult = model.ctx_mult(start + i);
                for c in 0..dh {
                    ctx[i * d + h * dh + c] = requant(acc[i * dh + c], mult);
                }
            }
        }

        let out = exec.run(vec![InferGemm {
            m,
            n: d,
            k: d,
            a: ctx.into(),
            b: BOperand::Weight(ids.wo),
        }])?;
        residual_add(&mut x, &requant_channels(&out[0], m, d, &model.weight(ids.wo).mults));

        let ff = cfg.ff_dim;
        let up = exec.run(vec![InferGemm {
            m,
            n: ff,
            k: d,
            a: x.clone().into(),
            b: BOperand::Weight(ids.wup),
        }])?;
        let mut u = requant_channels(&up[0], m, ff, &model.weight(ids.wup).mults);
        for v in &mut u {
            *v = (*v).max(0); // ReLU
        }
        let down = exec.run(vec![InferGemm {
            m,
            n: d,
            k: ff,
            a: u.into(),
            b: BOperand::Weight(ids.wdown),
        }])?;
        residual_add(&mut x, &requant_channels(&down[0], m, d, &model.weight(ids.wdown).mults));
    }

    // unembed only the final position: the one GEMV that turns the
    // hidden state into logits
    let last: Arc<[i8]> = x[(m - 1) * d..].to_vec().into();
    let logits = exec.run(vec![InferGemm {
        m: 1,
        n: model.vocab(),
        k: d,
        a: last,
        b: BOperand::Weight(model.unembed_id()),
    }])?;
    Ok(argmax(&logits[0]))
}

/// Token selection: argmax over the logits, ties to the lowest index.
fn argmax(logits: &[i32]) -> u32 {
    let mut best = 0usize;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::KvPolicy;
    use camp_core::CampEngine;
    use camp_models::TransformerConfig;

    fn tiny() -> TransformerConfig {
        TransformerConfig { hidden: 8, ff_dim: 16, heads: 2, layers: 2, seq_len: 8 }
    }

    #[test]
    fn argmax_ties_to_lowest_index() {
        assert_eq!(argmax(&[1, 5, 5, 2]), 1);
        assert_eq!(argmax(&[-3]), 0);
    }

    #[test]
    fn engine_forward_cross_checks_against_reference_per_layer() {
        let model = Model::new(tiny(), 32, 11);
        let mut engine = CampEngine::new();
        let handles = model.register(&mut engine);
        let mut kv = KvCache::new(tiny().layers, tiny().hidden, 8, KvPolicy::Reject);
        let mut exec = CheckedExec::new(&model, BackendExec::new(&mut engine, &handles));
        let first = forward(&model, &mut exec, &mut kv, 0, &[3, 1, 4]).unwrap();
        assert!((first as usize) < model.vocab(), "served token must be in vocabulary");
        // decode a few steps; every GeMM of every layer is compared
        // to gemm_i32_ref inside the executor
        let mut tok = first;
        for step in 0..3 {
            tok = forward(&model, &mut exec, &mut kv, 3 + step, &[tok]).unwrap();
        }
        assert_eq!(kv.len(), 6);
    }

    #[test]
    fn token_stream_is_not_degenerate() {
        let model = Model::new(tiny(), 32, 5);
        let mut kv = KvCache::new(tiny().layers, tiny().hidden, 16, KvPolicy::Reject);
        let mut exec = RefExec::new(&model);
        let mut tok = forward(&model, &mut exec, &mut kv, 0, &[7, 2]).unwrap();
        let mut stream = vec![tok];
        for step in 0..8 {
            tok = forward(&model, &mut exec, &mut kv, 2 + step, &[tok]).unwrap();
            stream.push(tok);
        }
        let distinct: std::collections::BTreeSet<u32> = stream.iter().copied().collect();
        assert!(distinct.len() > 1, "requant scales collapsed the signal: {stream:?}");
    }

    #[test]
    fn rejects_bad_tokens_and_empty_prompts() {
        let model = Model::new(tiny(), 32, 5);
        let mut kv = KvCache::new(tiny().layers, tiny().hidden, 8, KvPolicy::Reject);
        let mut exec = RefExec::new(&model);
        assert!(matches!(
            forward(&model, &mut exec, &mut kv, 0, &[]),
            Err(InferError::EmptyPrompt)
        ));
        assert!(matches!(
            forward(&model, &mut exec, &mut kv, 0, &[99]),
            Err(InferError::TokenOutOfRange { token: 99, vocab: 32 })
        ));
        assert!(kv.is_empty(), "failed validation must not touch the cache");
    }
}
