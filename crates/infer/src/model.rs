//! The quantized transformer model: deterministic weight generation,
//! per-channel i8 quantization, and one-time backend registration.
//!
//! A [`Model`] owns every weight matrix in quantized row-major k×n
//! form (the GeMM B-operand layout) together with the per-output-
//! channel f32 scales the [`PerChannelQuantizer`] fitted, plus the
//! requantization multipliers derived from them. The raw bytes stay in
//! the model so the reference executor can replay any layer against
//! [`gemm_i32_ref`](camp_gemm::reference::gemm_i32_ref); backends get
//! the same bytes exactly once via [`Model::register`].

use std::sync::Arc;

use camp_core::backend::CampBackend;
use camp_core::{DType, WeightHandle};
use camp_gemm::reference::SplitMix64;
use camp_models::TransformerConfig;
use camp_quant::PerChannelQuantizer;

/// Logical index of one weight matrix inside a [`Model`] — stable
/// across backends, unlike the per-backend [`WeightHandle`]s a
/// [`ModelHandles`] maps it to.
pub type WeightId = usize;

/// Target RMS of i8 activations between layers; embeddings are drawn
/// uniformly from [-8, 7] whose RMS is ≈ 4.6, and every requantizer is
/// normalized to keep that band through the stack (clamping to the
/// full i8 range handles the tails).
const ACT_RMS: f64 = 4.6;

/// One quantized weight matrix: k×n i8 bytes (GeMM B layout), the
/// per-output-channel f32 scales, and the requant multipliers that
/// fold those scales into the i32→i8 step on the activation path.
#[derive(Debug, Clone)]
pub struct ModelWeight {
    /// Output channels (GeMM n).
    pub n: usize,
    /// Reduction depth (GeMM k).
    pub k: usize,
    /// Quantized bytes, row-major k×n — exactly what
    /// [`CampBackend::register_weights`] and `gemm_i32_ref` consume.
    pub q: Arc<[i8]>,
    /// Per-output-channel quantizer scales (len n).
    pub scales: Vec<f32>,
    /// Per-output-channel i32→i8 requant multipliers (len n),
    /// proportional to `scales` and normalized per matrix so the
    /// activation RMS band survives the layer.
    pub mults: Vec<f32>,
}

/// The six weight matrices of one transformer layer, by [`WeightId`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct LayerIds {
    pub wq: WeightId,
    pub wk: WeightId,
    pub wv: WeightId,
    pub wo: WeightId,
    pub wup: WeightId,
    pub wdown: WeightId,
}

/// A quantized transformer built from a [`TransformerConfig`]:
/// embedding tables, per-layer projection and feed-forward weights,
/// and the unembedding matrix, all generated deterministically from a
/// seed and quantized per output channel.
#[derive(Debug)]
pub struct Model {
    cfg: TransformerConfig,
    vocab: usize,
    seed: u64,
    /// Token embedding table, row-major vocab×hidden i8.
    embed: Vec<i8>,
    /// Positional embedding table, row-major seq_len×hidden i8.
    pos: Vec<i8>,
    weights: Vec<ModelWeight>,
    layers: Vec<LayerIds>,
    unembed: WeightId,
    /// Static attention-score requant multiplier (head dim is fixed).
    score_mult: f32,
}

impl Model {
    /// Build a model with `vocab` output tokens from deterministic
    /// seeded weights. The same `(cfg, vocab, seed)` triple always
    /// yields bit-identical weights, scales and multipliers, on every
    /// platform.
    ///
    /// # Panics
    /// Panics when `hidden` is not divisible by `heads` or any
    /// dimension is zero.
    pub fn new(cfg: TransformerConfig, vocab: usize, seed: u64) -> Model {
        assert!(cfg.hidden > 0 && cfg.ff_dim > 0 && cfg.layers > 0 && cfg.seq_len > 0);
        assert!(
            cfg.heads > 0 && cfg.hidden.is_multiple_of(cfg.heads),
            "hidden must split across heads"
        );
        assert!(vocab > 0, "empty vocabulary");
        let d = cfg.hidden;
        let mut rng = SplitMix64::new(seed);
        let embed = rng.i8_vec(vocab * d, -8, 7);
        let pos = rng.i8_vec(cfg.seq_len * d, -8, 7);
        let mut weights = Vec::with_capacity(cfg.layers * 6 + 1);
        let mut push = |rng: &mut SplitMix64, n: usize, k: usize| -> WeightId {
            weights.push(quantize_weight(rng, n, k));
            weights.len() - 1
        };
        let layers = (0..cfg.layers)
            .map(|_| LayerIds {
                wq: push(&mut rng, d, d),
                wk: push(&mut rng, d, d),
                wv: push(&mut rng, d, d),
                wo: push(&mut rng, d, d),
                wup: push(&mut rng, cfg.ff_dim, d),
                wdown: push(&mut rng, d, cfg.ff_dim),
            })
            .collect();
        let unembed = push(&mut rng, vocab, d);
        let dh = d / cfg.heads;
        // score acc sums dh products of two RMS-4.6 i8 operands; pull
        // it back to the activation band before it becomes the probs
        let score_mult = (ACT_RMS / ((dh as f64).sqrt() * ACT_RMS * ACT_RMS)) as f32;
        Model { cfg, vocab, seed, embed, pos, weights, layers, unembed, score_mult }
    }

    /// The architecture this model instantiates.
    pub fn config(&self) -> TransformerConfig {
        self.cfg
    }

    /// Output vocabulary size (valid tokens are `0..vocab`).
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The seed the weights were generated from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Head dimension dₕ = hidden / heads.
    pub fn head_dim(&self) -> usize {
        self.cfg.hidden / self.cfg.heads
    }

    /// One weight matrix by id (see [`ModelWeight`]).
    pub fn weight(&self, id: WeightId) -> &ModelWeight {
        &self.weights[id]
    }

    /// How many weight matrices the model registers.
    pub fn weight_count(&self) -> usize {
        self.weights.len()
    }

    pub(crate) fn layer(&self, l: usize) -> LayerIds {
        self.layers[l]
    }

    pub(crate) fn unembed_id(&self) -> WeightId {
        self.unembed
    }

    pub(crate) fn score_mult(&self) -> f32 {
        self.score_mult
    }

    /// Context requantizer for the row at absolute position `pos`: the
    /// causal mask leaves `pos + 1` live terms in the context GeMM's
    /// reduction, so normalization depends only on the row's absolute
    /// position — identical whether the row is computed by a prefill
    /// or by a KV-cached decode step (the parity invariant).
    pub(crate) fn ctx_mult(&self, pos: usize) -> f32 {
        (ACT_RMS / (((pos + 1) as f64).sqrt() * ACT_RMS * ACT_RMS)) as f32
    }

    /// The embedding row for `token` at absolute position `pos`:
    /// token row plus positional row, saturating i8. Positions beyond
    /// `seq_len` wrap around the positional table (only reachable with
    /// the sliding-window KV policy).
    pub(crate) fn embed_row(&self, token: u32, pos: usize) -> Vec<i8> {
        let d = self.cfg.hidden;
        let tok = &self.embed[token as usize * d..(token as usize + 1) * d];
        let p = pos % self.cfg.seq_len;
        let pe = &self.pos[p * d..(p + 1) * d];
        tok.iter().zip(pe).map(|(&t, &e)| t.saturating_add(e)).collect()
    }

    /// Register every weight matrix with `backend`, in [`WeightId`]
    /// order. Call this **before** creating the backend's dispatcher —
    /// the dispatcher validates requests against the registration
    /// snapshot taken when it starts.
    pub fn register<B: CampBackend>(&self, backend: &mut B) -> ModelHandles {
        let handles = self
            .weights
            .iter()
            .map(|w| backend.register_weights(w.n, w.k, &w.q, DType::I8))
            .collect();
        ModelHandles { handles }
    }
}

/// The per-backend [`WeightHandle`]s of one registered [`Model`],
/// indexed by [`WeightId`]. Handles are only meaningful on the backend
/// (or dispatcher wrapping it) they were registered with.
#[derive(Debug, Clone)]
pub struct ModelHandles {
    handles: Vec<WeightHandle>,
}

impl ModelHandles {
    /// The backend handle for one weight matrix.
    pub fn get(&self, id: WeightId) -> WeightHandle {
        self.handles[id]
    }

    /// Number of registered matrices.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether no weights were registered.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }
}

/// Generate one n-output-channel × k weight matrix: deterministic f32
/// values with per-channel amplitudes (so per-channel quantization is
/// load-bearing, not a no-op), fitted and quantized per output channel,
/// then transposed into the k×n GeMM B layout.
fn quantize_weight(rng: &mut SplitMix64, n: usize, k: usize) -> ModelWeight {
    // channel-major n×k f32 weights: each output channel is one row,
    // which is exactly the layout PerChannelQuantizer::fit expects
    let mut wt = Vec::with_capacity(n * k);
    for c in 0..n {
        let amp = 0.02 * (1.0 + (c % 5) as f32);
        for _ in 0..k {
            // 24 high bits of the stream mapped onto [-1, 1)
            let u = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            wt.push(amp * (2.0 * u - 1.0));
        }
    }
    let quantizer = PerChannelQuantizer::fit(&wt, k, 8);
    let qt = quantizer.quantize_all(&wt);
    let scales: Vec<f32> = (0..n).map(|c| quantizer.scale(c)).collect();
    let mut q = vec![0i8; k * n];
    for c in 0..n {
        for r in 0..k {
            q[r * n + c] = qt[c * k + r];
        }
    }
    let mults = requant_mults(&scales, &qt, k);
    ModelWeight { n, k, q: q.into(), scales, mults }
}

/// Per-channel i32→i8 requant multipliers: proportional to the
/// channel's quantizer scale (dequantization is honest per channel)
/// and normalized per matrix so an RMS-[`ACT_RMS`] input activation
/// comes out in the same band.
fn requant_mults(scales: &[f32], qt: &[i8], k: usize) -> Vec<f32> {
    let mut mean = 0.0f64;
    for (c, row) in qt.chunks_exact(k).enumerate() {
        let ms = row.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>() / k as f64;
        mean += ms.sqrt() * f64::from(scales[c]);
    }
    mean /= scales.len() as f64;
    // acc_rms[c] ≈ √k · ACT_RMS · rms(q[c]); out[c] = acc · s[c] · g,
    // so g normalizes the *mean* channel to ACT_RMS while preserving
    // the per-channel scale ratios
    let g = 1.0 / ((k as f64).sqrt() * mean.max(1e-12));
    scales.iter().map(|&s| (f64::from(s) * g) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransformerConfig {
        TransformerConfig { hidden: 8, ff_dim: 16, heads: 2, layers: 2, seq_len: 8 }
    }

    #[test]
    fn model_is_deterministic() {
        let a = Model::new(tiny(), 32, 42);
        let b = Model::new(tiny(), 32, 42);
        assert_eq!(a.embed, b.embed);
        assert_eq!(a.pos, b.pos);
        for (x, y) in a.weights.iter().zip(&b.weights) {
            assert_eq!(x.q, y.q);
            assert_eq!(x.scales, y.scales);
            assert_eq!(x.mults, y.mults);
        }
        let c = Model::new(tiny(), 32, 43);
        assert_ne!(a.weights[0].q, c.weights[0].q, "seed must matter");
    }

    #[test]
    fn weight_layout_matches_config() {
        let m = Model::new(tiny(), 32, 7);
        assert_eq!(m.weight_count(), 2 * 6 + 1);
        let l = m.layer(0);
        let wq = m.weight(l.wq);
        assert_eq!((wq.n, wq.k), (8, 8));
        let wup = m.weight(l.wup);
        assert_eq!((wup.n, wup.k), (16, 8));
        let wdown = m.weight(l.wdown);
        assert_eq!((wdown.n, wdown.k), (8, 16));
        let un = m.weight(m.unembed_id());
        assert_eq!((un.n, un.k), (32, 8));
        for w in &m.weights {
            assert_eq!(w.q.len(), w.n * w.k);
            assert_eq!(w.scales.len(), w.n);
            assert_eq!(w.mults.len(), w.n);
            assert!(w.mults.iter().all(|&f| f.is_finite() && f > 0.0));
        }
    }

    #[test]
    fn quantization_respects_per_channel_scales() {
        let m = Model::new(tiny(), 32, 7);
        let w = m.weight(0);
        // channels were generated with 5 distinct amplitudes, so the
        // fitted per-channel scales must not all collapse to one value
        let first = w.scales[0];
        assert!(w.scales.iter().any(|&s| (s - first).abs() > 1e-9));
        // mults stay proportional to scales within one matrix
        let ratio = w.mults[0] / w.scales[0];
        for (mlt, s) in w.mults.iter().zip(&w.scales) {
            assert!((mlt / s - ratio).abs() < 1e-3 * ratio.abs());
        }
    }
}
