//! Per-session K/V cache: per-layer tensors with append-on-decode and
//! a capacity/eviction policy.
//!
//! Each layer stores its K and V activations row-major `t × hidden`
//! (one row per served position). A prefill appends `s` rows, a decode
//! step appends one; the attention GeMMs consume per-head views —
//! the crate-internal `k_head_t` accessor materializes the transposed
//! dₕ×t score operand, `v_head` the t×dₕ context operand — as dense
//! B-side operands, since (unlike the static weights) they grow every
//! step.

use std::sync::Arc;

use crate::session::InferError;

/// What to do when appending would exceed the cache's capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KvPolicy {
    /// Refuse the step with [`InferError::KvFull`]; the session keeps
    /// its state and the caller decides (default).
    #[default]
    Reject,
    /// Sliding window: evict the oldest rows from every layer to make
    /// room. Positions keep counting up; the causal mask simply sees a
    /// truncated history. This breaks the decode-equals-recompute
    /// bit-parity guarantee once eviction kicks in — by construction,
    /// the recompute would see rows the window dropped.
    Window,
}

/// Environment knob overriding the default per-session KV capacity
/// (rows per layer). Unset or unparsable means the model's `seq_len`.
pub const KV_CAPACITY_ENV: &str = "CAMP_KV_CAPACITY";

/// Per-layer K/V storage for one inference session.
#[derive(Debug, Clone)]
pub struct KvCache {
    /// Flattened per-layer K then V, each row-major `len × hidden`.
    k: Vec<Vec<i8>>,
    v: Vec<Vec<i8>>,
    hidden: usize,
    capacity: usize,
    policy: KvPolicy,
    /// Absolute position of row 0 (nonzero only after Window eviction).
    base: usize,
}

impl KvCache {
    /// An empty cache for `layers` layers of width `hidden`, holding at
    /// most `capacity` rows per layer.
    ///
    /// # Panics
    /// Panics when `capacity` or `hidden` is zero.
    pub fn new(layers: usize, hidden: usize, capacity: usize, policy: KvPolicy) -> KvCache {
        assert!(capacity > 0, "KV capacity must be at least one row");
        assert!(hidden > 0, "KV row width must be nonzero");
        KvCache {
            k: vec![Vec::new(); layers],
            v: vec![Vec::new(); layers],
            hidden,
            capacity,
            policy,
            base: 0,
        }
    }

    /// Capacity honoring the `CAMP_KV_CAPACITY` environment knob, with
    /// `default` (typically the model's `seq_len`) when unset or
    /// unparsable. Zero is treated as unset.
    pub fn capacity_from_env(default: usize) -> usize {
        match std::env::var(KV_CAPACITY_ENV) {
            Ok(s) => match s.trim().parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => default,
            },
            Err(_) => default,
        }
    }

    /// Rows currently cached per layer.
    pub fn len(&self) -> usize {
        self.k.first().map_or(0, |l| l.len() / self.hidden)
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum rows per layer.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The eviction policy.
    pub fn policy(&self) -> KvPolicy {
        self.policy
    }

    /// Absolute position of the oldest cached row (nonzero only after
    /// [`KvPolicy::Window`] eviction).
    pub fn base(&self) -> usize {
        self.base
    }

    /// Drop everything but keep the configuration; positions restart
    /// at zero.
    pub fn clear(&mut self) {
        for l in &mut self.k {
            l.clear();
        }
        for l in &mut self.v {
            l.clear();
        }
        self.base = 0;
    }

    /// Make room for `rows` new positions before a forward pass:
    /// either error ([`KvPolicy::Reject`]) or evict the oldest rows
    /// from every layer ([`KvPolicy::Window`]). A step larger than the
    /// whole capacity is refused under either policy.
    pub(crate) fn ensure_room(&mut self, rows: usize) -> Result<(), InferError> {
        if rows > self.capacity {
            return Err(InferError::KvFull { capacity: self.capacity });
        }
        let need = self.len() + rows;
        if need <= self.capacity {
            return Ok(());
        }
        let evict = need - self.capacity;
        match self.policy {
            KvPolicy::Reject => Err(InferError::KvFull { capacity: self.capacity }),
            KvPolicy::Window => {
                let cut = evict * self.hidden;
                for l in self.k.iter_mut().chain(self.v.iter_mut()) {
                    l.drain(..cut);
                }
                self.base += evict;
                Ok(())
            }
        }
    }

    /// Append one position's K and V rows to `layer`. Callers must
    /// have reserved space with [`KvCache::ensure_room`] first.
    pub(crate) fn push(&mut self, layer: usize, k_row: &[i8], v_row: &[i8]) {
        debug_assert_eq!(k_row.len(), self.hidden);
        debug_assert_eq!(v_row.len(), self.hidden);
        self.k[layer].extend_from_slice(k_row);
        self.v[layer].extend_from_slice(v_row);
    }

    /// Rows currently cached in one specific layer — differs from
    /// [`KvCache::len`] only mid-forward, while later layers have not
    /// been pushed yet.
    pub(crate) fn layer_len(&self, layer: usize) -> usize {
        self.k[layer].len() / self.hidden
    }

    /// The transposed per-head key operand Kᵀ (dₕ × t) for the
    /// attention score GeMM, as a dense B-side operand.
    pub(crate) fn k_head_t(&self, layer: usize, head: usize, dh: usize) -> Arc<[i8]> {
        let t = self.layer_len(layer);
        let src = &self.k[layer];
        let off = head * dh;
        let mut out = vec![0i8; dh * t];
        for r in 0..dh {
            for j in 0..t {
                out[r * t + j] = src[j * self.hidden + off + r];
            }
        }
        out.into()
    }

    /// The per-head value operand V (t × dₕ) for the attention context
    /// GeMM, as a dense B-side operand.
    pub(crate) fn v_head(&self, layer: usize, head: usize, dh: usize) -> Arc<[i8]> {
        let t = self.layer_len(layer);
        let src = &self.v[layer];
        let off = head * dh;
        let mut out = vec![0i8; t * dh];
        for j in 0..t {
            out[j * dh..(j + 1) * dh].copy_from_slice(&src[j * self.hidden + off..][..dh]);
        }
        out.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_views() {
        let mut kv = KvCache::new(1, 4, 8, KvPolicy::Reject);
        assert!(kv.is_empty());
        kv.ensure_room(2).unwrap();
        kv.push(0, &[1, 2, 3, 4], &[5, 6, 7, 8]);
        kv.push(0, &[9, 10, 11, 12], &[13, 14, 15, 16]);
        assert_eq!(kv.len(), 2);
        // two heads of dh = 2: head 1 covers columns 2..4
        let kt = kv.k_head_t(0, 1, 2);
        assert_eq!(&kt[..], &[3, 11, 4, 12], "dh x t transpose");
        let v = kv.v_head(0, 1, 2);
        assert_eq!(&v[..], &[7, 8, 15, 16], "t x dh slice");
    }

    #[test]
    fn reject_policy_errors_when_full() {
        let mut kv = KvCache::new(2, 4, 2, KvPolicy::Reject);
        kv.ensure_room(2).unwrap();
        for l in 0..2 {
            kv.push(l, &[0; 4], &[0; 4]);
            kv.push(l, &[0; 4], &[0; 4]);
        }
        let err = kv.ensure_room(1).unwrap_err();
        assert!(matches!(err, InferError::KvFull { capacity: 2 }));
        assert_eq!(kv.len(), 2, "a rejected step must not disturb the cache");
        assert_eq!(kv.base(), 0);
    }

    #[test]
    fn window_policy_evicts_oldest() {
        let mut kv = KvCache::new(1, 2, 2, KvPolicy::Window);
        kv.ensure_room(2).unwrap();
        kv.push(0, &[1, 1], &[1, 1]);
        kv.push(0, &[2, 2], &[2, 2]);
        kv.ensure_room(1).unwrap();
        kv.push(0, &[3, 3], &[3, 3]);
        assert_eq!(kv.len(), 2);
        assert_eq!(kv.base(), 1, "row 0 now holds absolute position 1");
        let kt = kv.k_head_t(0, 0, 2);
        assert_eq!(&kt[..], &[2, 3, 2, 3]);
        // a step wider than the whole window is refused even here
        assert!(kv.ensure_room(3).is_err());
    }

    #[test]
    fn capacity_env_defaults_when_unset() {
        // no env mutation (tests run in parallel): only meaningful
        // when the knob is not set in the surrounding environment
        if std::env::var(KV_CAPACITY_ENV).is_err() {
            assert_eq!(KvCache::capacity_from_env(128), 128);
        }
    }
}
