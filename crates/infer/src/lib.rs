//! # camp-infer — end-to-end quantized LLM inference
//!
//! The paper stops at per-layer GeMM inventories (Fig. 14 / §5.2);
//! this crate turns them into served tokens. A [`Model`] built from a
//! [`TransformerConfig`] registers every per-layer weight matrix once
//! as a [`WeightHandle`](camp_core::WeightHandle) in the backend's
//! weight registry, a [`KvCache`] holds per-session K/V tensors with
//! append-on-decode, and an [`InferSession`] drives prefill and
//! GEMV-shaped (m = 1) decode steps through
//! [`GemmRequest`](camp_core::GemmRequest) batches
//! submitted to a [`Dispatcher`](camp_core::Dispatcher) tenant —
//! decode steps tagged [`Priority::Decode`](camp_core::Priority) so
//! continuous batching across sessions falls out of the scheduler.
//!
//! # Quantization contract
//!
//! Deterministic f32 weights (seeded
//! [`SplitMix64`](camp_gemm::reference::SplitMix64)) are quantized to
//! i8 with [`PerChannelQuantizer`](camp_quant::PerChannelQuantizer):
//! one f32 scale per *output channel* (per column of the k×n GeMM B
//! operand). Activations stay i8 end to end: every GeMM accumulates in
//! wrapping i32 and the host requantizes the accumulator back to i8
//! between layers with a per-channel multiplier proportional to that
//! channel's quantizer scale. All non-GeMM arithmetic (requantize,
//! causal mask, saturating residual adds, ReLU, argmax) runs on the
//! host in plain deterministic code, so a forward pass is **bit
//! identical** across backends whenever the GeMMs are — which the
//! backend-parity suite guarantees for `CampEngine` and `SimBackend`
//! at every thread count. Cross-validation against
//! [`gemm_i32_ref`](camp_gemm::reference::gemm_i32_ref) is structural:
//! wrap any executor in [`CheckedExec`] and every layer's GeMM output
//! is compared to the reference as it happens.
//!
//! # Decode == recompute, bit for bit
//!
//! The attention "softmax" stand-in is an elementwise static-scale
//! requantization with causal masking and **no row-max subtraction**,
//! and the context requantizer is normalized by the row's absolute
//! position — both are row-local, so the token computed for position
//! `t` by one KV-cached decode step is bit-identical to the one a full
//! prefill of positions `0..=t` computes for its last row. The
//! `infer_parity` proptest pins this on both backends.
//!
//! ```
//! use camp_core::backend::CampBackend;
//! use camp_core::CampEngine;
//! use camp_infer::{InferSession, Model};
//! use camp_models::TransformerConfig;
//! use std::sync::Arc;
//!
//! let cfg = TransformerConfig { hidden: 8, ff_dim: 16, heads: 2, layers: 2, seq_len: 16 };
//! let model = Arc::new(Model::new(cfg, 32, 7));
//! let mut engine = CampEngine::new();
//! let handles = Arc::new(model.register(&mut engine)); // before dispatch()
//! let dispatcher = engine.dispatch();
//! let mut session = InferSession::new(&dispatcher, model, handles);
//! let ticket = session.prefill(&[3, 1, 4, 1, 5]).unwrap();
//! let mut tokens = vec![ticket.first];
//! for _ in 0..4 {
//!     tokens.push(session.decode_step().unwrap());
//! }
//! assert_eq!(tokens.len(), 5);
//! ```

pub mod forward;
pub mod kv;
pub mod model;
pub mod session;

pub use forward::{BOperand, BackendExec, CheckedExec, DispatchExec, GemmExec, InferGemm, RefExec};
pub use kv::{KvCache, KvPolicy};
pub use model::{Model, ModelHandles, ModelWeight, WeightId};
pub use session::{InferContext, InferError, InferSession, InferTicket};

pub use camp_models::TransformerConfig;
