//! The serving facade: one [`InferSession`] per user, one dispatcher
//! tenant each, prefill at [`Priority::Prefill`] and decode steps at
//! [`Priority::Decode`] — so the PR-9 scheduler interleaves many
//! sessions' tokens over one engine without any cooperation between
//! them.

use std::fmt;
use std::sync::Arc;

use camp_core::backend::CampBackend;
use camp_core::dispatch::{DispatchSession, Dispatcher, Priority};
use camp_core::RequestError;

use crate::forward::{forward, DispatchExec, GemmExec};
use crate::kv::{KvCache, KvPolicy};
use crate::model::{Model, ModelHandles};

/// Everything that can go wrong while serving a token.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InferError {
    /// A GeMM was rejected or failed inside the backend/dispatcher.
    Request(RequestError),
    /// The KV cache is full and the policy is [`KvPolicy::Reject`],
    /// or one step is wider than the whole capacity.
    KvFull {
        /// Rows per layer the cache can hold.
        capacity: usize,
    },
    /// A prefill was called with no tokens, or a decode step before
    /// any prefill.
    EmptyPrompt,
    /// A prompt token outside the model's vocabulary.
    TokenOutOfRange {
        /// The offending token.
        token: u32,
        /// The model's vocabulary size.
        vocab: usize,
    },
    /// A [`CheckedExec`](crate::CheckedExec) caught a GeMM output that
    /// differs from `gemm_i32_ref`.
    CrossCheck {
        /// Index of the mismatching GeMM within its batch.
        op: usize,
    },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::Request(e) => write!(f, "gemm request failed: {e}"),
            InferError::KvFull { capacity } => {
                write!(f, "KV cache full ({capacity} rows per layer) and policy is Reject")
            }
            InferError::EmptyPrompt => write!(f, "no tokens: prefill a prompt first"),
            InferError::TokenOutOfRange { token, vocab } => {
                write!(f, "token {token} outside vocabulary of {vocab}")
            }
            InferError::CrossCheck { op } => {
                write!(f, "GeMM {op} in batch diverged from gemm_i32_ref")
            }
        }
    }
}

impl std::error::Error for InferError {}

impl From<RequestError> for InferError {
    fn from(e: RequestError) -> Self {
        InferError::Request(e)
    }
}

/// Receipt of a completed prefill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferTicket {
    /// How many prompt tokens were consumed.
    pub prompt_len: usize,
    /// The first served token (argmax after the prompt's last
    /// position) — the seed for [`InferSession::decode_step`].
    pub first: u32,
}

/// Backend-agnostic decode state: the KV cache plus the position and
/// last-token cursors. [`InferSession`] wraps one of these around a
/// dispatcher tenant; tests and the simulator drive it with any
/// [`GemmExec`] directly.
#[derive(Debug, Clone)]
pub struct InferContext {
    kv: KvCache,
    pos: usize,
    last: Option<u32>,
}

impl InferContext {
    /// Fresh state over `kv`.
    pub fn new(kv: KvCache) -> Self {
        InferContext { kv, pos: 0, last: None }
    }

    /// Fresh state with the model's default cache: capacity from the
    /// `CAMP_KV_CAPACITY` knob (falling back to `seq_len`), policy
    /// [`KvPolicy::Reject`].
    pub fn for_model(model: &Model) -> Self {
        let cfg = model.config();
        let cap = KvCache::capacity_from_env(cfg.seq_len);
        InferContext::new(KvCache::new(cfg.layers, cfg.hidden, cap, KvPolicy::Reject))
    }

    /// Next absolute position to be served.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// The most recent token (prompt tail or last served).
    pub fn last_token(&self) -> Option<u32> {
        self.last
    }

    /// The cache (for capacity/occupancy introspection).
    pub fn kv(&self) -> &KvCache {
        &self.kv
    }

    /// Run a prefill over `prompt` with `exec`. Appends to any
    /// existing state, so multi-turn prompting works; positions keep
    /// counting up.
    pub fn prefill_with(
        &mut self,
        model: &Model,
        exec: &mut dyn GemmExec,
        prompt: &[u32],
    ) -> Result<InferTicket, InferError> {
        let first = forward(model, exec, &mut self.kv, self.pos, prompt)?;
        self.pos += prompt.len();
        self.last = Some(first);
        Ok(InferTicket { prompt_len: prompt.len(), first })
    }

    /// Serve one more token with `exec`: a single KV-cached m = 1
    /// forward over the previous token.
    pub fn decode_with(
        &mut self,
        model: &Model,
        exec: &mut dyn GemmExec,
    ) -> Result<u32, InferError> {
        let last = self.last.ok_or(InferError::EmptyPrompt)?;
        let tok = forward(model, exec, &mut self.kv, self.pos, &[last])?;
        self.pos += 1;
        self.last = Some(tok);
        Ok(tok)
    }
}

/// One user's inference session: a dispatcher tenant plus the model,
/// its registered handles, and the per-session KV cache.
///
/// Sessions are independent — create as many as the dispatcher has
/// queue slots for, from any thread; the scheduler interleaves their
/// prefill and decode batches over the shared engine by priority.
#[derive(Debug)]
pub struct InferSession<B: CampBackend + Send + 'static> {
    model: Arc<Model>,
    handles: Arc<ModelHandles>,
    session: DispatchSession<B>,
    ctx: InferContext,
}

impl<B: CampBackend + Send + 'static> InferSession<B> {
    /// A session over `dispatcher` with the default KV cache (see
    /// [`InferContext::for_model`]). `handles` must come from
    /// registering `model` on the backend this dispatcher wraps,
    /// *before* the dispatcher was created.
    pub fn new(dispatcher: &Dispatcher<B>, model: Arc<Model>, handles: Arc<ModelHandles>) -> Self {
        let ctx = InferContext::for_model(&model);
        InferSession { model, handles, session: dispatcher.session(), ctx }
    }

    /// A session with an explicit KV cache (capacity/policy control).
    pub fn with_kv(
        dispatcher: &Dispatcher<B>,
        model: Arc<Model>,
        handles: Arc<ModelHandles>,
        kv: KvCache,
    ) -> Self {
        InferSession { model, handles, session: dispatcher.session(), ctx: InferContext::new(kv) }
    }

    /// The model this session serves.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Backend-agnostic decode state.
    pub fn context(&self) -> &InferContext {
        &self.ctx
    }

    /// Consume `prompt` (at [`Priority::Prefill`]) and return the
    /// ticket holding the first served token.
    pub fn prefill(&mut self, prompt: &[u32]) -> Result<InferTicket, InferError> {
        let mut exec = DispatchExec::new(&mut self.session, &self.handles, Priority::Prefill);
        self.ctx.prefill_with(&self.model, &mut exec, prompt)
    }

    /// Serve the next token: one GEMV-shaped (m = 1) KV-cached forward
    /// pass, every batch tagged [`Priority::Decode`] so the scheduler
    /// favors it over competing prefills.
    pub fn decode_step(&mut self) -> Result<u32, InferError> {
        let mut exec = DispatchExec::new(&mut self.session, &self.handles, Priority::Decode);
        self.ctx.decode_with(&self.model, &mut exec)
    }

    /// Serve `n` tokens (stops early only on error).
    pub fn generate(&mut self, n: usize) -> Result<Vec<u32>, InferError> {
        (0..n).map(|_| self.decode_step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward::RefExec;
    use camp_core::backend::CampBackend;
    use camp_core::CampEngine;
    use camp_models::TransformerConfig;

    fn tiny() -> TransformerConfig {
        TransformerConfig { hidden: 8, ff_dim: 16, heads: 2, layers: 2, seq_len: 16 }
    }

    #[test]
    fn session_streams_tokens_through_the_dispatcher() {
        let model = Arc::new(Model::new(tiny(), 32, 3));
        let mut engine = CampEngine::new();
        let handles = Arc::new(model.register(&mut engine));
        let dispatcher = engine.dispatch();
        let mut s = InferSession::new(&dispatcher, Arc::clone(&model), Arc::clone(&handles));
        let ticket = s.prefill(&[1, 2, 3]).unwrap();
        assert_eq!(ticket.prompt_len, 3);
        let toks = s.generate(4).unwrap();
        assert_eq!(toks.len(), 4);
        assert_eq!(s.context().position(), 7);
        // the dispatcher path must agree with the pure reference
        let mut ctx = InferContext::for_model(&model);
        let mut exec = RefExec::new(&model);
        let t = ctx.prefill_with(&model, &mut exec, &[1, 2, 3]).unwrap();
        assert_eq!(t, ticket);
        for expect in &toks {
            assert_eq!(ctx.decode_with(&model, &mut exec).unwrap(), *expect);
        }
    }

    #[test]
    fn concurrent_sessions_share_one_engine() {
        let model = Arc::new(Model::new(tiny(), 32, 9));
        let mut engine = CampEngine::new();
        let handles = Arc::new(model.register(&mut engine));
        let dispatcher = engine.dispatch();
        let mut a = InferSession::new(&dispatcher, Arc::clone(&model), Arc::clone(&handles));
        let mut b = InferSession::new(&dispatcher, Arc::clone(&model), Arc::clone(&handles));
        a.prefill(&[4, 5]).unwrap();
        b.prefill(&[6, 7, 8]).unwrap();
        // interleave decode steps; each session's stream must match a
        // solo run of the same prompt on the reference executor
        let mut got_a = Vec::new();
        let mut got_b = Vec::new();
        for _ in 0..3 {
            got_a.push(a.decode_step().unwrap());
            got_b.push(b.decode_step().unwrap());
        }
        for (prompt, got) in [(vec![4u32, 5], got_a), (vec![6, 7, 8], got_b)] {
            let mut ctx = InferContext::for_model(&model);
            let mut exec = RefExec::new(&model);
            ctx.prefill_with(&model, &mut exec, &prompt).unwrap();
            for expect in &got {
                assert_eq!(ctx.decode_with(&model, &mut exec).unwrap(), *expect);
            }
        }
    }

    #[test]
    fn decode_before_prefill_is_an_error() {
        let model = Model::new(tiny(), 32, 3);
        let mut ctx = InferContext::for_model(&model);
        let mut exec = RefExec::new(&model);
        assert!(matches!(ctx.decode_with(&model, &mut exec), Err(InferError::EmptyPrompt)));
    }

    #[test]
    fn kv_capacity_bounds_the_stream() {
        let model = Model::new(tiny(), 32, 3);
        let cfg = model.config();
        let kv = KvCache::new(cfg.layers, cfg.hidden, 4, KvPolicy::Reject);
        let mut ctx = InferContext::new(kv);
        let mut exec = RefExec::new(&model);
        ctx.prefill_with(&model, &mut exec, &[1, 2, 3]).unwrap();
        ctx.decode_with(&model, &mut exec).unwrap();
        assert_eq!(ctx.decode_with(&model, &mut exec), Err(InferError::KvFull { capacity: 4 }));
        // a sliding window keeps serving past the same capacity
        let kv = KvCache::new(cfg.layers, cfg.hidden, 4, KvPolicy::Window);
        let mut ctx = InferContext::new(kv);
        ctx.prefill_with(&model, &mut exec, &[1, 2, 3]).unwrap();
        for _ in 0..6 {
            ctx.decode_with(&model, &mut exec).unwrap();
        }
        assert_eq!(ctx.kv().len(), 4);
        assert_eq!(ctx.kv().base(), 5);
    }
}
