//! Model of the `Session` submit → stage → compute → poll ticket
//! lifecycle: the three-thread pipeline (submitter, stager, driver)
//! with its four condvars and MAX_STAGED backpressure, driven through
//! every bounded schedule over a minimal backend.
//!
//! The backend is a mock on purpose: the model explores the pipeline's
//! synchronization, not the GeMM math (covered by the parity suites).
//! `prepare` and `execute_prepared` are pure, so any lost batch,
//! dropped wakeup or shutdown hang is the session's fault.

use camp_core::backend::{BatchOutcome, CampBackend, Capability, ExecStats, Output};
use camp_core::engine::EngineStats;
use camp_core::{DType, GemmRequest, RequestError, WeightHandle, WeightMeta, WeightSnapshot};
use camp_gemm::KernelInfo;

/// Minimal pass-through backend: stages requests unchanged, "computes"
/// a zero matrix per request.
struct NullBackend;

impl CampBackend for NullBackend {
    type Prepared = GemmRequest;

    fn name(&self) -> &'static str {
        "model-null"
    }

    fn threads(&self) -> usize {
        1
    }

    fn supports(&self, _cap: Capability) -> bool {
        false
    }

    fn kernel_info(&self) -> KernelInfo {
        unimplemented!("not part of the modeled pipeline")
    }

    fn register_weights(&mut self, _n: usize, _k: usize, _b: &[i8], _dtype: DType) -> WeightHandle {
        unimplemented!("models submit dense requests only")
    }

    fn evict_weights(&mut self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
        unimplemented!("models submit dense requests only")
    }

    fn clear_weights(&mut self) {}

    fn try_weight_meta(&self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
        unimplemented!("models submit dense requests only")
    }

    fn weight_snapshot(&self) -> WeightSnapshot {
        WeightSnapshot::empty()
    }

    fn execute_batch(&mut self, _reqs: &[GemmRequest]) -> Result<BatchOutcome, RequestError> {
        unimplemented!("sessions drive execute_prepared")
    }

    fn prepare(req: GemmRequest, _weights: &WeightSnapshot) -> GemmRequest {
        req
    }

    fn execute_prepared(&mut self, batch: Vec<GemmRequest>) -> BatchOutcome {
        let outputs =
            batch.iter().map(|r| Output::new(vec![0; r.m()], r.m(), 1)).collect::<Vec<_>>();
        BatchOutcome::new(outputs, ExecStats::Host(EngineStats::default()))
    }
}

fn tiny_request() -> GemmRequest {
    GemmRequest::dense(1, 1, 1, vec![1i8], vec![1i8]).expect("well-formed request")
}

/// One batch through the full lifecycle: submit hands the ticket out,
/// the stager and driver pipeline it, wait redeems exactly one result,
/// and drop shuts all three threads down — in every schedule.
#[test]
fn submit_wait_shutdown_lifecycle() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let mut session = NullBackend.serve();
            let t = session.submit(vec![tiny_request()]).expect("valid submission");
            let outcome = session.wait(t);
            assert_eq!(outcome.outputs.len(), 1, "one request in, one output out");
            assert_eq!(outcome.outputs[0].m, 1);
            drop(session); // stager + driver must join in every schedule
        });
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
    eprintln!("session lifecycle: {} interleavings", report.iterations);
}

/// Two tickets redeemed in reverse order: completion is
/// submission-ordered, collection is not — the done-map/condvar side
/// of the protocol must hand each result out exactly once anyway.
#[test]
fn out_of_order_collection() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let mut session = NullBackend.serve();
            let t1 = session.submit(vec![tiny_request()]).expect("valid submission");
            let t2 =
                session.submit(vec![tiny_request(), tiny_request()]).expect("valid submission");
            assert_eq!(session.wait(t2).outputs.len(), 2);
            assert_eq!(session.wait(t1).outputs.len(), 1);
        });
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
    eprintln!("session out-of-order: {} interleavings", report.iterations);
}

/// into_backend drains the pipeline: every submitted batch computes
/// before the backend comes back, in every schedule.
#[test]
fn into_backend_drains_in_every_schedule() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let mut session = NullBackend.serve();
            let _t = session.submit(vec![tiny_request()]).expect("valid submission");
            // drain without collecting: the uncollected result is dropped
            let _backend = session.into_backend();
        });
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
}
