//! Models of the `WorkerPool` latch/condvar park-unpark protocol.
//!
//! The pool's one `unsafe` (transmuting `Job<'env>` to `'static`)
//! is sound iff `run` cannot return before every job has finished —
//! the completion latch. These models let jobs write through borrows
//! of `run`'s caller's stack in *every* schedule the bound admits: a
//! latch bug (early return, missed decrement, lost wakeup) would
//! surface as a lost write, a deadlock, or a use-after-return caught
//! by the assertion.

use camp_core::pool::{Job, WorkerPool};

/// One worker, two queued jobs: the minimal shape where the submitter
/// parks on the latch condvar and the worker's final decrement must
/// unpark it.
#[test]
fn single_worker_latch_protocol() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let pool = WorkerPool::new(1);
            let mut slots = [0usize; 2];
            {
                let jobs: Vec<Job<'_>> = slots
                    .iter_mut()
                    .enumerate()
                    .map(|(i, slot)| -> Job<'_> { Box::new(move || *slot = i + 1) })
                    .collect();
                pool.run(jobs);
            }
            // the borrows jobs wrote through are dead before run returned
            assert_eq!(slots, [1, 2], "a queued job was lost or ran after run() returned");
        });
    // the acceptance gate: the latch protocol genuinely branches (the
    // submitter can find the latch already open, or park and be woken)
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
    eprintln!("pool latch (1 worker): {} interleavings", report.iterations);
}

/// Two workers racing for two jobs: covers the queue hand-off (both
/// jobs to one worker, or one each) and concurrent latch decrements.
#[test]
fn two_workers_race_for_the_queue() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let pool = WorkerPool::new(2);
            let mut slots = [0usize; 2];
            {
                let jobs: Vec<Job<'_>> = slots
                    .iter_mut()
                    .enumerate()
                    .map(|(i, slot)| -> Job<'_> { Box::new(move || *slot = i + 1) })
                    .collect();
                pool.run(jobs);
            }
            assert_eq!(slots, [1, 2]);
        });
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
    eprintln!("pool latch (2 workers): {} interleavings", report.iterations);
}

/// Shutdown handshake: dropping a pool with idle parked workers must
/// wake and join them in every schedule (no worker left parked on a
/// condvar nobody will signal again).
#[test]
fn shutdown_wakes_parked_workers() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let pool = WorkerPool::new(1);
            let mut hit = 0usize;
            pool.run(vec![Box::new(|| hit = 1) as Job<'_>]);
            assert_eq!(hit, 1);
            drop(pool); // must terminate in every interleaving
        });
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
}
