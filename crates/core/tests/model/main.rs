//! Exhaustive concurrency models of the serving core, checked by the
//! `camp-loom` interleaving explorer (see `shims/loom`).
//!
//! These tests compile to an empty binary under a normal `cargo test`:
//! the whole suite is gated on the `loom` cfg, which also swaps
//! `camp_core::sync` from `std` primitives to the model checker. Run
//! them with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p camp-core --test model
//! ```
//!
//! Each model drives the *real* `WorkerPool` / `Session` / `Dispatcher`
//! code — the
//! same latch, queues and condvars production uses — through every
//! thread interleaving up to a bounded preemption depth, so the
//! happens-before arguments written as `// SAFETY:` comments (the
//! lifetime-erasing transmute in `pool.rs` above all) are machine
//! checked, not just reviewed.

#![cfg(loom)]

mod dispatch_model;
mod pool_latch;
mod pool_panic;
mod seeded_bug;
mod session_lifecycle;
