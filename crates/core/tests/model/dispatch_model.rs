//! Models of the multi-tenant `Dispatcher` pipeline: N session queues,
//! a stager crew and one driver negotiating over three condvars, driven
//! through every bounded schedule. The backends are mocks on purpose —
//! the models explore the dispatch protocol (admission, claiming,
//! completion, eviction controls, shutdown), not the GeMM math.
//!
//! Model sizes are deliberately tiny (1 stager, 1–2 sessions, 1–2
//! batches): the schedule tree already covers every claim/complete/
//! shutdown reordering at that size, and each extra thread multiplies
//! the tree. The acceptance bar here is stricter than the pool models:
//! every model must branch through **more than 50 interleavings**.

use camp_core::backend::{BatchOutcome, CampBackend, Capability, ExecStats, Output};
use camp_core::dispatch::{DispatchOptions, Dispatcher, Priority, StealPolicy};
use camp_core::engine::EngineStats;
use camp_core::{DType, GemmRequest, RequestError, WeightHandle, WeightMeta, WeightSnapshot};
use camp_gemm::weights::WeightRegistry;
use camp_gemm::KernelInfo;

/// Implements the boilerplate half of [`CampBackend`] (identity
/// `prepare`, zero-matrix `execute_prepared`) for a mock that only
/// customizes its weight registry.
macro_rules! model_backend_boilerplate {
    () => {
        type Prepared = GemmRequest;

        fn name(&self) -> &'static str {
            "model-dispatch"
        }

        fn threads(&self) -> usize {
            1
        }

        fn supports(&self, _cap: Capability) -> bool {
            false
        }

        fn kernel_info(&self) -> KernelInfo {
            unimplemented!("not part of the modeled pipeline")
        }

        fn execute_batch(&mut self, _reqs: &[GemmRequest]) -> Result<BatchOutcome, RequestError> {
            unimplemented!("dispatchers drive execute_prepared")
        }

        fn prepare(req: GemmRequest, _weights: &WeightSnapshot) -> GemmRequest {
            req
        }

        fn execute_prepared(&mut self, batch: Vec<GemmRequest>) -> BatchOutcome {
            self.executed += batch.len();
            let outputs =
                batch.iter().map(|r| Output::new(vec![0; r.m()], r.m(), 1)).collect::<Vec<_>>();
            BatchOutcome::new(outputs, ExecStats::Host(EngineStats::default()))
        }
    };
}

/// Weightless mock: counts executed requests so drain models can assert
/// nothing was lost, once the backend comes back out.
struct CountingBackend {
    executed: usize,
}

impl CampBackend for CountingBackend {
    model_backend_boilerplate!();

    fn register_weights(&mut self, _n: usize, _k: usize, _b: &[i8], _dtype: DType) -> WeightHandle {
        unimplemented!("this model submits dense requests only")
    }

    fn evict_weights(&mut self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
        unimplemented!("this model submits dense requests only")
    }

    fn clear_weights(&mut self) {}

    fn try_weight_meta(&self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
        unimplemented!("this model submits dense requests only")
    }

    fn weight_snapshot(&self) -> WeightSnapshot {
        WeightSnapshot::empty()
    }
}

/// Mock with a *working* registry (a raw mirror, same as `SimBackend`),
/// so the eviction-control path — condemn, queue, driver-side evict —
/// runs against real generation-stamped handles.
struct RegistryBackend {
    registry: WeightRegistry,
    executed: usize,
}

impl CampBackend for RegistryBackend {
    model_backend_boilerplate!();

    fn register_weights(&mut self, n: usize, k: usize, b: &[i8], dtype: DType) -> WeightHandle {
        self.registry.register(n, k, b, dtype)
    }

    fn evict_weights(&mut self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        self.registry.evict(h)
    }

    fn clear_weights(&mut self) {
        self.registry.clear();
    }

    fn try_weight_meta(&self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        self.registry.try_meta(h)
    }

    fn weight_snapshot(&self) -> WeightSnapshot {
        self.registry.snapshot()
    }
}

fn tiny_request() -> GemmRequest {
    GemmRequest::dense(1, 1, 1, vec![1i8], vec![1i8]).expect("well-formed request")
}

fn one_stager() -> DispatchOptions {
    DispatchOptions { stagers: 1, queue_depth: 8, steal: StealPolicy::Eager }
}

/// Two tenants, mixed priorities, out-of-order redemption: both tickets
/// redeem exactly once and the teardown joins in every schedule.
#[test]
fn two_tenants_complete_in_every_schedule() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let dispatcher =
                Dispatcher::with_options(CountingBackend { executed: 0 }, one_stager());
            let mut a = dispatcher.session();
            let mut b = dispatcher.session();
            let ta = a.submit(vec![tiny_request()]).expect("valid submission");
            let tb = b
                .submit_with(vec![tiny_request()], Priority::Decode, None)
                .expect("valid submission");
            assert_eq!(b.wait(tb).expect("decode batch completes").outputs.len(), 1);
            assert_eq!(a.wait(ta).expect("prefill batch completes").outputs.len(), 1);
            drop((a, b));
            let backend = dispatcher.into_backend();
            assert_eq!(backend.executed, 2, "a tenant's batch was lost");
        });
    assert!(report.iterations > 50, "expected >50 interleavings, got {report:?}");
    eprintln!("dispatch two-tenant: {} interleavings", report.iterations);
}

/// A concurrent submitter thread races the pipeline: session handles
/// are `Send`, and a tenant submitting from its own thread neither
/// corrupts another tenant's queue nor loses its wakeup.
///
/// Four threads (stager, driver, two submitters): preemption bound 1
/// keeps the schedule tree inside the iteration budget — bound 2
/// exceeds 500k interleavings at this size.
#[test]
fn concurrent_submitters_race_the_pipeline() {
    let report =
        loom::model::Builder { preemption_bound: 1, max_iterations: 500_000 }.check(|| {
            let dispatcher =
                Dispatcher::with_options(CountingBackend { executed: 0 }, one_stager());
            let mut a = dispatcher.session();
            let mut b = dispatcher.session();
            let h = loom::thread::spawn(move || {
                let tb = b.submit(vec![tiny_request()]).expect("valid submission");
                assert_eq!(b.wait(tb).expect("batch completes").outputs.len(), 1);
            });
            let ta = a.submit(vec![tiny_request()]).expect("valid submission");
            assert_eq!(a.wait(ta).expect("batch completes").outputs.len(), 1);
            h.join().expect("submitter thread panicked");
            drop(a);
            let backend = dispatcher.into_backend();
            assert_eq!(backend.executed, 2, "a tenant's batch was lost");
        });
    assert!(report.iterations > 50, "expected >50 interleavings, got {report:?}");
    eprintln!("dispatch concurrent submitters: {} interleavings", report.iterations);
}

/// Backpressure at depth 1: the bound rejects deterministically while a
/// batch is in flight, and a drained session always re-admits — i.e.
/// saturation is a state, not a ratchet, in every schedule.
#[test]
fn saturation_recovers_in_every_schedule() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let dispatcher =
                Dispatcher::with_options(CountingBackend { executed: 0 }, one_stager());
            let mut session = dispatcher.session_with_depth(1);
            let t1 = session.submit(vec![tiny_request()]).expect("first admission");
            // the second submission races the pipeline: if the first
            // batch is still in flight the bound fires, and if the
            // pipeline already drained it the admission must succeed —
            // nothing else is allowed
            let second = session.submit(vec![tiny_request()]);
            assert!(session.wait(t1).is_ok());
            match second {
                Ok(t) => assert!(session.wait(t).is_ok()),
                Err(e) => assert_eq!(e, RequestError::Saturated { depth: 1 }),
            }
            // drained: in flight is 0 again, admission must reopen
            let t2 = session.submit(vec![tiny_request()]).expect("drained session re-admits");
            assert!(session.wait(t2).is_ok());
        });
    assert!(report.iterations > 50, "expected >50 interleavings, got {report:?}");
    eprintln!("dispatch saturation: {} interleavings", report.iterations);
}

/// `into_backend` drains: an uncollected batch still executes before
/// the backend comes back, in every schedule — including the one where
/// shutdown is signalled before the stager ever claimed it.
#[test]
fn shutdown_drains_uncollected_work() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let dispatcher =
                Dispatcher::with_options(CountingBackend { executed: 0 }, one_stager());
            let mut session = dispatcher.session();
            let _t = session.submit(vec![tiny_request()]).expect("valid submission");
            drop(session); // closes the queue; the claimed batch must still run
            let backend = dispatcher.into_backend();
            assert!(backend.executed <= 1, "a batch executed twice");
        });
    assert!(report.iterations > 50, "expected >50 interleavings, got {report:?}");
    eprintln!("dispatch shutdown drain: {} interleavings", report.iterations);
}

/// Eviction racing a live submission: whatever the schedule, the batch
/// either computed against the still-live registration or failed as
/// `StaleHandle` — never a panic, and the registration is gone after.
#[test]
fn eviction_races_err_stale_and_never_panic() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let mut backend =
                RegistryBackend { registry: WeightRegistry::raw_mirror(), executed: 0 };
            let h = backend.register_weights(1, 1, &[1i8], DType::I8);
            let dispatcher = Dispatcher::with_options(backend, one_stager());
            let mut session = dispatcher.session();
            let submitted = match session.submit(vec![
                GemmRequest::with_weights(1, vec![1i8], h).expect("well-formed request")
            ]) {
                Ok(t) => Some(t),
                // the eviction below is not the only racer: admission
                // itself may observe the condemnation first
                Err(e) => {
                    assert_eq!(e, RequestError::StaleHandle);
                    None
                }
            };
            // race the control op against staging and execution
            let meta = dispatcher.evict_weights(h).expect("first eviction wins");
            assert_eq!((meta.n, meta.k), (1, 1));
            if let Some(t) = submitted {
                match session.wait(t) {
                    Ok(outcome) => assert_eq!(outcome.outputs.len(), 1),
                    Err(e) => assert_eq!(e, RequestError::StaleHandle),
                }
            }
            drop(session);
            let mut backend = dispatcher.into_backend();
            assert_eq!(
                backend.evict_weights(h).unwrap_err(),
                RequestError::StaleHandle,
                "the driver must have applied the eviction before handing the backend back"
            );
        });
    assert!(report.iterations > 50, "expected >50 interleavings, got {report:?}");
    eprintln!("dispatch eviction race: {} interleavings", report.iterations);
}

/// The bug class the dispatcher's admission protocol avoids, seeded and
/// asserted to be *caught*: an in-flight count kept in an atomic
/// outside the condvar's mutex, with a check-then-wait submitter and a
/// lock-free decrement+notify on the completion side — the classic lost
/// wakeup. A `wait` would park forever on a queue that is already
/// drained. If the explorer ever stops finding this, the dispatcher's
/// own models above prove nothing.
mod seeded {
    use loom::sync::atomic::{AtomicUsize, Ordering};
    use loom::sync::{Arc, Condvar, Mutex};

    pub struct BuggyBackpressure {
        in_flight: AtomicUsize, // BUG: lives outside `gate`
        gate: Mutex<()>,
        drained: Condvar,
    }

    impl BuggyBackpressure {
        pub fn new(pending: usize) -> Self {
            BuggyBackpressure {
                in_flight: AtomicUsize::new(pending),
                gate: Mutex::new(()),
                drained: Condvar::new(),
            }
        }

        /// Driver side: batch done, open admission back up.
        pub fn complete(&self) {
            // BUG: decrement and notify WITHOUT holding `gate`
            if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.drained.notify_all();
            }
        }

        /// Submitter side: wait for the queue to drain.
        pub fn wait_drained(&self) {
            // BUG: check-then-wait — not re-checked under the mutex, so
            // `complete` can slip in between and the wakeup is lost
            while self.in_flight.load(Ordering::SeqCst) > 0 {
                let g = self.gate.lock().unwrap();
                drop(self.drained.wait(g).unwrap());
            }
        }
    }

    #[test]
    fn lost_wakeup_in_buggy_backpressure_is_caught() {
        let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
                let bp = Arc::new(BuggyBackpressure::new(1));
                let driver = Arc::clone(&bp);
                let h = loom::thread::spawn(move || driver.complete());
                bp.wait_drained();
                let _ = h.join();
            });
        }));
        let msg = match verdict {
            Err(payload) => *payload.downcast::<String>().expect("model failure carries a message"),
            Ok(report) => {
                panic!("the seeded lost-wakeup bug was NOT caught ({report:?}) — checker is broken")
            }
        };
        assert!(msg.contains("deadlock"), "failure must identify the hang: {msg}");
        assert!(msg.contains("condvar"), "failure must point at the lost wakeup: {msg}");
        eprintln!("seeded dispatch bug caught as expected:\n{msg}");
    }
}
