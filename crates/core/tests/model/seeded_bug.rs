//! Negative control for the model checker itself: a deliberately
//! buggy re-implementation of the pool's completion latch, asserted to
//! be *caught*. If the explorer ever stops finding this lost wakeup,
//! the `analysis` CI gate is vacuous and this test fails first.

use std::panic::{catch_unwind, AssertUnwindSafe};

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};

/// The bug class the real `Latch` avoids: the pending count lives
/// *outside* the mutex the condvar pairs with, so the worker's
/// decrement+notify can slip between the submitter's count check and
/// its `wait` — a classic lost wakeup, i.e. `WorkerPool::run` would
/// park forever while the job is already done.
struct BuggyLatch {
    pending: AtomicUsize,
    gate: Mutex<()>,
    done: Condvar,
}

impl BuggyLatch {
    fn job_finished(&self) {
        // decrement and notify WITHOUT holding `gate`
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        // check-then-wait race: not re-checked under the mutex
        while self.pending.load(Ordering::SeqCst) > 0 {
            let g = self.gate.lock().unwrap();
            drop(self.done.wait(g).unwrap());
        }
    }
}

#[test]
fn lost_wakeup_in_a_buggy_latch_is_caught() {
    let verdict = catch_unwind(AssertUnwindSafe(|| {
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let latch = Arc::new(BuggyLatch {
                pending: AtomicUsize::new(1),
                gate: Mutex::new(()),
                done: Condvar::new(),
            });
            let worker = Arc::clone(&latch);
            let h = loom::thread::spawn(move || worker.job_finished());
            latch.wait();
            let _ = h.join();
        });
    }));
    let msg = match verdict {
        Err(payload) => *payload.downcast::<String>().expect("model failure carries a message"),
        Ok(report) => {
            panic!("the seeded lost-wakeup bug was NOT caught ({report:?}) — checker is broken")
        }
    };
    assert!(msg.contains("deadlock"), "failure must identify the hang: {msg}");
    assert!(msg.contains("condvar"), "failure must point at the lost wakeup: {msg}");
    eprintln!("seeded bug caught as expected:\n{msg}");
}

/// The corrected protocol — the count guarded by the condvar's mutex,
/// exactly like `pool::Latch` — passes the very same exploration.
#[test]
fn the_fixed_latch_protocol_survives_the_same_schedules() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let latch = Arc::new((Mutex::new(1usize), Condvar::new()));
            let worker = Arc::clone(&latch);
            let h = loom::thread::spawn(move || {
                let (count, done) = &*worker;
                let mut g = count.lock().unwrap();
                *g -= 1;
                if *g == 0 {
                    done.notify_all();
                }
            });
            let (count, done) = &*latch;
            let mut g = count.lock().unwrap();
            while *g > 0 {
                g = done.wait(g).unwrap();
            }
            drop(g);
            h.join().unwrap();
        });
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
}
