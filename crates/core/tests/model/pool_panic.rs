//! Model of the pool's panic-isolation path: a panicking job must be
//! counted by the latch like any other (no hang), re-raised on the
//! submitting thread, and must leave the pool serving later runs —
//! in every interleaving.

use std::panic::{catch_unwind, AssertUnwindSafe};

use camp_core::pool::{Job, WorkerPool};

#[test]
fn panicking_job_completes_the_latch_and_spares_the_pool() {
    let report =
        loom::model::Builder { preemption_bound: 2, max_iterations: 500_000 }.check(|| {
            let pool = WorkerPool::new(1);
            let r = catch_unwind(AssertUnwindSafe(|| {
                pool.run(vec![
                    Box::new(|| panic!("poisoned request")) as Job<'_>,
                    Box::new(|| ()) as Job<'_>,
                ]);
            }));
            assert!(r.is_err(), "the job panic must re-raise on the submitter");
            // the worker survived the unwind: the pool still executes
            let mut ok = false;
            pool.run(vec![Box::new(|| ok = true) as Job<'_>]);
            assert!(ok, "pool must keep serving after an isolated panic");
        });
    assert!(report.iterations > 1, "expected >1 interleaving, got {report:?}");
    eprintln!("pool panic isolation: {} interleavings", report.iterations);
}
