//! Persistent worker pool for the host-speed engine.
//!
//! The PR 1/PR 2 engine spawned fresh `std::thread::scope` workers on
//! *every* parallel GeMM call — fine for a benchmark harness, pure
//! overhead for a serving engine answering millions of small requests.
//! A [`WorkerPool`] spawns its threads once (per [`crate::CampEngine`])
//! and parks them on a condvar between calls; [`WorkerPool::run`]
//! enqueues a set of borrowed jobs and blocks until every one of them
//! has finished, which is what makes lending stack references to the
//! workers sound (the same completion guarantee `std::thread::scope`
//! provides, without the per-call spawn).
//!
//! Panics inside a job do not kill the pool: the worker catches the
//! unwind, the batch completes, and `run` re-raises a panic on the
//! submitting thread — so a poisoned request cannot wedge the engine.
//!
//! The pool is also the execution substrate of the *simulated* driver:
//! it implements [`camp_gemm::SimScheduler`], so `simulate_gemm_on` /
//! `simulate_gemm_batch_on` can schedule their independent (jc, pc)
//! block units on the same threads (see the impl below for an
//! example), and [`crate::CampEngine::worker_pool`] shares an engine's
//! pool for exactly that purpose — one thread budget for both halves.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

// the sync seam: std primitives normally, the camp-loom model checker
// under `--cfg loom` (see crate::sync and tests/model/)
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Condvar, Mutex};

/// A borrowed job: a closure the submitting call owns for `'env`.
/// [`WorkerPool::run`] guarantees it finishes before returning, so the
/// pool may erase the lifetime internally.
pub type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<StaticJob>,
    /// Jobs claimed by a worker over the pool's lifetime (monotonic). A
    /// claimed job always finishes — panics are caught inside the
    /// wrapper `run` builds — so after every `run` has returned this
    /// equals the number of jobs ever submitted, which is what lets
    /// serving tests assert the pool leaked no permits.
    jobs_run: u64,
    shutdown: bool,
}

struct SharedQueue {
    state: Mutex<QueueState>,
    work: Condvar,
}

/// Per-`run` completion latch: counts jobs still queued or executing,
/// and how many of them panicked.
struct Latch {
    state: Mutex<(usize, usize)>,
    done: Condvar,
}

impl Latch {
    fn new(pending: usize) -> Self {
        Latch { state: Mutex::new((pending, 0)), done: Condvar::new() }
    }

    fn job_finished(&self, panicked: bool) {
        let mut st = self.state.lock().expect("latch poisoned");
        st.0 -= 1;
        st.1 += panicked as usize;
        if st.0 == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every job of this run has finished; returns the
    /// number that panicked.
    fn wait(&self) -> usize {
        let mut st = self.state.lock().expect("latch poisoned");
        while st.0 > 0 {
            st = self.done.wait(st).expect("latch poisoned");
        }
        st.1
    }
}

/// Fixed set of persistent worker threads executing borrowed jobs; see
/// the [module docs](self).
pub struct WorkerPool {
    shared: Arc<SharedQueue>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.handles.len()).finish()
    }
}

impl WorkerPool {
    /// Spawn `workers` persistent threads (at least one), parked until
    /// the first [`WorkerPool::run`].
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(SharedQueue {
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::Builder::new()
                    .name(format!("camp-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn engine worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Jobs currently enqueued and not yet claimed by a worker. Zero
    /// whenever no [`WorkerPool::run`] is in flight: `run` does not
    /// return before every job it queued has finished.
    pub fn queued_jobs(&self) -> usize {
        self.shared.state.lock().expect("worker pool poisoned").jobs.len()
    }

    /// Total jobs workers have claimed over the pool's lifetime
    /// (monotonic). Between runs this equals the number of jobs ever
    /// submitted — `queued_jobs() == 0 && jobs_run() == submitted` is
    /// the "no leaked permits" invariant the serving tests assert.
    pub fn jobs_run(&self) -> u64 {
        self.shared.state.lock().expect("worker pool poisoned").jobs_run
    }

    /// Execute `jobs` on the pool and block until all of them have
    /// finished. Jobs may borrow from the caller's stack: none of them
    /// outlives this call.
    ///
    /// # Panics
    /// Panics (after every job has finished) if any job panicked, so a
    /// failing worker surfaces on the submitting thread exactly like
    /// the scoped-thread path it replaces.
    pub fn run<'env>(&self, jobs: Vec<Job<'env>>) {
        if jobs.is_empty() {
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        {
            let mut st = self.shared.state.lock().expect("worker pool poisoned");
            for job in jobs {
                let latch = Arc::clone(&latch);
                let wrapped: Job<'env> = Box::new(move || {
                    let panicked = catch_unwind(AssertUnwindSafe(job)).is_err();
                    latch.job_finished(panicked);
                });
                // SAFETY: `run` does not return until the latch reports
                // every job (queued *or* executing) finished, so the
                // closure — and everything it borrows for 'env — is
                // dead before the borrows it captures expire. This is
                // the std::thread::scope guarantee, amortized.
                let wrapped: StaticJob =
                    unsafe { std::mem::transmute::<Job<'env>, StaticJob>(wrapped) };
                st.jobs.push_back(wrapped);
            }
            self.shared.work.notify_all();
        }
        let panics = latch.wait();
        assert!(panics == 0, "{panics} engine worker job(s) panicked");
    }
}

/// The pool doubles as the scheduler of `camp-gemm`'s parallel
/// simulated driver: [`camp_gemm::SimScheduler::run_jobs`] is exactly
/// [`WorkerPool::run`] (same borrowed-job type, same
/// finished-before-return guarantee), so one pool can serve host-speed
/// GeMMs and simulated (jc, pc) block units interchangeably — share an
/// engine's pool via [`crate::CampEngine::worker_pool`], or build a
/// standalone one:
///
/// ```
/// use camp_core::WorkerPool;
/// use camp_gemm::{simulate_gemm_on, GemmOptions, Method, SimScheduler};
/// use camp_pipeline::CoreConfig;
///
/// let pool = WorkerPool::new(2);
/// let opts = GemmOptions::default();
/// let r = simulate_gemm_on(CoreConfig::a64fx(), Method::Camp8, 16, 16, 32, &opts, &pool);
/// assert!(r.correct);
/// ```
impl camp_gemm::SimScheduler for WorkerPool {
    fn run_jobs<'env>(&self, jobs: Vec<camp_gemm::SimJob<'env>>) {
        self.run(jobs);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("worker pool poisoned");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            // a worker that panicked outside a job already reported it
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &SharedQueue) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("worker pool poisoned");
            loop {
                if let Some(job) = st.jobs.pop_front() {
                    st.jobs_run += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("worker pool poisoned");
            }
        };
        // panics are caught and counted inside the wrapper `run` built
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_borrow_the_callers_stack() {
        let pool = WorkerPool::new(4);
        let mut slots = vec![0usize; 16];
        let jobs: Vec<Job<'_>> = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| -> Job<'_> { Box::new(move || *slot = i + 1) })
            .collect();
        pool.run(jobs);
        assert_eq!(slots, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_runs() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            let jobs: Vec<Job<'_>> = (0..3)
                .map(|_| -> Job<'_> {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            pool.run(jobs);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn zero_worker_requests_still_get_one_thread() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let mut hit = false;
        pool.run(vec![Box::new(|| hit = true) as Job<'_>]);
        assert!(hit);
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let pool = WorkerPool::new(2);
        pool.run(Vec::new());
        assert_eq!((pool.queued_jobs(), pool.jobs_run()), (0, 0));
    }

    #[test]
    fn job_counters_balance_between_runs() {
        let pool = WorkerPool::new(3);
        for round in 1..=4u64 {
            let jobs: Vec<Job<'_>> = (0..5).map(|_| Box::new(|| ()) as Job<'_>).collect();
            pool.run(jobs);
            assert_eq!(pool.queued_jobs(), 0, "run returned with jobs still queued");
            assert_eq!(pool.jobs_run(), round * 5);
        }
    }

    #[test]
    fn job_panics_surface_on_the_submitter_and_spare_the_pool() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| panic!("poisoned request")) as Job<'_>,
                Box::new(|| ()) as Job<'_>,
            ]);
        }));
        assert!(r.is_err(), "job panic must propagate to the submitter");
        // the pool survives and keeps executing later runs
        let mut ok = false;
        pool.run(vec![Box::new(|| ok = true) as Job<'_>]);
        assert!(ok);
    }

    #[test]
    fn more_jobs_than_workers_all_complete() {
        let pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..100)
            .map(|_| -> Job<'_> {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }
}
