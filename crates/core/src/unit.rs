//! The CAMP functional unit: lanes, intra-lane adders, inter-lane
//! accumulators (Fig. 8 of the paper).
//!
//! [`CampUnit::execute`] computes exactly what the hardware computes, at
//! the granularity the hardware computes it: each 64-bit lane receives
//! its slice of the two operand registers, forms outer products with its
//! hybrid multipliers, intra-lane adders combine the per-lane partial
//! products, and inter-lane accumulators reduce across lanes into the
//! auxiliary register.

use crate::hybrid::HybridMultiplier;
use crate::structure::CampStructure;

/// Operand-width mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// 8-bit operands: 4×16 × 16×4.
    I8,
    /// 4-bit operands: 4×32 × 32×4.
    I4,
}

/// Dynamic activity counters for the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampActivity {
    /// `camp` issues in 8-bit mode.
    pub issues_i8: u64,
    /// `camp` issues in 4-bit mode.
    pub issues_i4: u64,
    /// 4-bit building-block multiplications performed.
    pub block_mults: u64,
    /// Intra-lane adder operations.
    pub intra_adds: u64,
    /// Inter-lane accumulator operations (including the final accumulate
    /// into the auxiliary register).
    pub inter_adds: u64,
}

impl CampActivity {
    /// Fold counters from another unit.
    pub fn merge(&mut self, other: &CampActivity) {
        self.issues_i8 += other.issues_i8;
        self.issues_i4 += other.issues_i4;
        self.block_mults += other.block_mults;
        self.intra_adds += other.intra_adds;
        self.inter_adds += other.inter_adds;
    }
}

/// One CAMP unit instance.
#[derive(Debug, Clone, Default)]
pub struct CampUnit {
    structure: CampStructure,
    mult: HybridMultiplier,
    activity: CampActivity,
}

impl CampUnit {
    /// A unit with the paper's structure (8 lanes × 32 multipliers).
    pub fn new() -> Self {
        CampUnit::default()
    }

    /// Static structure of this unit.
    pub fn structure(&self) -> &CampStructure {
        &self.structure
    }

    /// Accumulated activity.
    pub fn activity(&self) -> CampActivity {
        let mut a = self.activity;
        a.block_mults = self.mult.activity().block_mults;
        a
    }

    /// Reset activity counters.
    pub fn reset_activity(&mut self) {
        self.activity = CampActivity::default();
        self.mult.reset_activity();
    }

    /// Execute one `camp` operation: `acc[i][j] += Σ_l A[i,l]·B[l,j]`.
    ///
    /// `a` holds the 4×k column-major block, `b` the k×4 row-major block
    /// (k = 16 in [`Mode::I8`], 32 in [`Mode::I4`]); both occupy one full
    /// 512-bit register. Accumulation wraps (hardware i32 accumulators).
    pub fn execute(&mut self, mode: Mode, a: &[u8; 64], b: &[u8; 64], acc: &mut [[i32; 4]; 4]) {
        let lanes = self.structure.lanes;
        let mut lane_tiles = [[[0i32; 4]; 4]; 8];

        match mode {
            Mode::I8 => {
                self.activity.issues_i8 += 1;
                // Each lane sees 8 bytes: two 4-element columns of A and
                // the two matching 4-element rows of B.
                for (w, tile) in lane_tiles.iter_mut().enumerate().take(lanes) {
                    let mut halves = [[[0i32; 4]; 4]; 2];
                    for (h, half) in halves.iter_mut().enumerate() {
                        let l = w * 2 + h; // k index
                        for i in 0..4 {
                            let av = a[l * 4 + i] as i8;
                            for j in 0..4 {
                                let bv = b[l * 4 + j] as i8;
                                half[i][j] = self.mult.mul_i8(av, bv) as i32;
                            }
                        }
                    }
                    // 16 intra-lane adders combine the two half products.
                    for i in 0..4 {
                        for j in 0..4 {
                            tile[i][j] = halves[0][i][j].wrapping_add(halves[1][i][j]);
                        }
                    }
                    self.activity.intra_adds += 16;
                }
            }
            Mode::I4 => {
                self.activity.issues_i4 += 1;
                let nib = |buf: &[u8; 64], n: usize| -> i8 {
                    let byte = buf[n / 2];
                    let raw = if n.is_multiple_of(2) { byte & 0x0f } else { byte >> 4 };
                    ((raw << 4) as i8) >> 4
                };
                // Each lane sees 16 nibbles: four columns of A, four rows
                // of B; the reconfigured blocks produce four 4×4 outer
                // products which the intra-lane adders chain (3 adds per
                // output index).
                for (w, tile) in lane_tiles.iter_mut().enumerate().take(lanes) {
                    for c in 0..4 {
                        let l = w * 4 + c;
                        for i in 0..4 {
                            let av = nib(a, l * 4 + i);
                            for j in 0..4 {
                                let bv = nib(b, l * 4 + j);
                                let p = self.mult.mul_i4(av, bv) as i32;
                                tile[i][j] = tile[i][j].wrapping_add(p);
                            }
                        }
                    }
                    self.activity.intra_adds += 16 * 3;
                }
            }
        }

        // Inter-lane accumulators: reduce the 8 lane tiles (7 adds per
        // output index) and accumulate into the auxiliary register (1 more).
        for i in 0..4 {
            for j in 0..4 {
                let mut s = lane_tiles[0][i][j];
                for tile in lane_tiles.iter().take(lanes).skip(1) {
                    s = s.wrapping_add(tile[i][j]);
                }
                acc[i][j] = acc[i][j].wrapping_add(s);
            }
        }
        self.activity.inter_adds += 16 * lanes as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_tile_i8(a: &[u8; 64], b: &[u8; 64]) -> [[i32; 4]; 4] {
        let mut t = [[0i32; 4]; 4];
        for l in 0..16 {
            for i in 0..4 {
                for j in 0..4 {
                    t[i][j] += (a[l * 4 + i] as i8 as i32) * (b[l * 4 + j] as i8 as i32);
                }
            }
        }
        t
    }

    fn patt(seed: u8) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, o) in out.iter_mut().enumerate() {
            *o = (i as u8).wrapping_mul(37).wrapping_add(seed);
        }
        out
    }

    #[test]
    fn i8_matches_reference() {
        let a = patt(3);
        let b = patt(11);
        let mut unit = CampUnit::new();
        let mut acc = [[0i32; 4]; 4];
        unit.execute(Mode::I8, &a, &b, &mut acc);
        assert_eq!(acc, ref_tile_i8(&a, &b));
    }

    #[test]
    fn i8_accumulates() {
        let a = patt(5);
        let b = patt(7);
        let mut unit = CampUnit::new();
        let mut acc = [[0i32; 4]; 4];
        unit.execute(Mode::I8, &a, &b, &mut acc);
        unit.execute(Mode::I8, &a, &b, &mut acc);
        let r = ref_tile_i8(&a, &b);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(acc[i][j], 2 * r[i][j]);
            }
        }
    }

    #[test]
    fn i4_matches_reference() {
        let a = patt(91);
        let b = patt(23);
        let nib = |buf: &[u8; 64], n: usize| -> i32 {
            let byte = buf[n / 2];
            let raw = if n.is_multiple_of(2) { byte & 0x0f } else { byte >> 4 };
            (((raw << 4) as i8) >> 4) as i32
        };
        let mut expect = [[0i32; 4]; 4];
        for l in 0..32 {
            for i in 0..4 {
                for j in 0..4 {
                    expect[i][j] += nib(&a, l * 4 + i) * nib(&b, l * 4 + j);
                }
            }
        }
        let mut unit = CampUnit::new();
        let mut acc = [[0i32; 4]; 4];
        unit.execute(Mode::I4, &a, &b, &mut acc);
        assert_eq!(acc, expect);
    }

    #[test]
    fn activity_per_issue_i8() {
        let mut unit = CampUnit::new();
        let mut acc = [[0i32; 4]; 4];
        unit.execute(Mode::I8, &patt(1), &patt(2), &mut acc);
        let act = unit.activity();
        assert_eq!(act.issues_i8, 1);
        // 256 8-bit products × 4 blocks each
        assert_eq!(act.block_mults, 1024);
        assert_eq!(act.intra_adds, 16 * 8);
        assert_eq!(act.inter_adds, 16 * 8);
    }

    #[test]
    fn activity_per_issue_i4() {
        let mut unit = CampUnit::new();
        let mut acc = [[0i32; 4]; 4];
        unit.execute(Mode::I4, &patt(1), &patt(2), &mut acc);
        let act = unit.activity();
        assert_eq!(act.issues_i4, 1);
        // 512 useful 4-bit products, one block each
        assert_eq!(act.block_mults, 512);
        assert_eq!(act.intra_adds, 16 * 3 * 8);
    }

    #[test]
    fn reset_clears_counters() {
        let mut unit = CampUnit::new();
        let mut acc = [[0i32; 4]; 4];
        unit.execute(Mode::I8, &patt(1), &patt(2), &mut acc);
        unit.reset_activity();
        assert_eq!(unit.activity(), CampActivity::default());
    }

    #[test]
    fn merge_activity() {
        let mut a = CampActivity { issues_i8: 1, ..CampActivity::default() };
        a.merge(&CampActivity {
            issues_i8: 0,
            issues_i4: 2,
            block_mults: 3,
            intra_adds: 4,
            inter_adds: 5,
        });
        assert_eq!(a.issues_i8, 1);
        assert_eq!(a.issues_i4, 2);
        assert_eq!(a.block_mults, 3);
    }
}
