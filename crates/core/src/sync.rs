//! Synchronization seam for the concurrency core.
//!
//! [`pool`](crate::pool) and [`session`](crate::session) take every
//! mutex, condvar and thread primitive from this module instead of
//! `std` directly. A normal build re-exports `std::sync` /
//! `std::thread` — zero cost, identical types. Under
//! `RUSTFLAGS="--cfg loom"` the same names resolve to the `camp-loom`
//! exhaustive interleaving model checker, so the models in
//! `tests/model/` explore every schedule of the *real* `WorkerPool`
//! latch protocol and `Session` pipeline, not a re-implementation.
//!
//! Keep the seam honest: only primitives whose interleavings the
//! models must explore belong here. Process-global bookkeeping that is
//! not part of a protocol (e.g. the session-id counter) stays on
//! `std::sync::atomic` deliberately.

#[cfg(loom)]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Thread spawn/join seam; mirrors the `std::thread` subset the
/// concurrency core uses.
pub mod thread {
    #[cfg(loom)]
    pub use loom::thread::{Builder, JoinHandle};
    #[cfg(not(loom))]
    pub use std::thread::{Builder, JoinHandle};
}
