//! Submit/poll serving sessions over any [`CampBackend`].
//!
//! A serving deployment does not call a blocking GeMM API: it enqueues
//! request batches and collects results when they are ready, keeping
//! several batches in flight so the machine never idles between them.
//! [`Session`] is that front end, generic over the execution substrate
//! — `Session<CampEngine>` serves at host speed, `Session<SimBackend>`
//! streams batches through the cycle-accurate simulated CAMP core —
//! built as a three-stage pipeline:
//!
//! 1. **submit** ([`Session::submit`]) — the caller hands over a batch
//!    of owned [`GemmRequest`]s and immediately gets a [`TicketId`]
//!    back; requests are validated here ([`RequestError`] instead of a
//!    panic deep in the pipeline);
//! 2. **stage** — a dedicated staging thread runs
//!    [`CampBackend::prepare`] on each request: the host engine
//!    pre-packs A (and dense B) into the panel layout the macro-kernel
//!    consumes, so the packing of batch N+1 overlaps the compute of
//!    batch N; substrates with nothing to stage pass requests through;
//! 3. **compute** — a driver thread owning the backend runs each staged
//!    batch ([`CampBackend::execute_prepared`]); on the host engine the
//!    steady state packs **zero** B bytes for registered weights and
//!    does no A-packing on the compute path.
//!
//! Results come back through [`Session::poll`] (non-blocking) or
//! [`Session::wait`] (blocking) as [`BatchOutcome`]s, in any order,
//! each exactly once. Batches complete in submission order; outputs are
//! bit-identical to calling [`CampBackend::execute_batch`] on the same
//! requests (property-tested, on both substrates).
//! [`Session::into_backend`] drains the pipeline and hands the backend
//! back.
//!
//! ```
//! use camp_core::backend::CampBackend;
//! use camp_core::{CampEngine, DType, GemmRequest};
//!
//! let (n, k) = (8, 32);
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//! let a: Vec<i8> = (0..4 * k).map(|i| (i % 13) as i8 - 6).collect();
//!
//! let mut engine = CampEngine::with_threads(2);
//! let weights = engine.register_weights(n, k, &w, DType::I8);
//! let req = GemmRequest::with_weights(4, a, weights).unwrap();
//! let expected = engine.execute(&req).unwrap();
//!
//! let mut session = engine.serve();
//! let ticket = session.submit(vec![req]).unwrap();
//! let outcome = session.wait(ticket);
//! assert_eq!(outcome.outputs[0], expected.output);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};

// the sync seam: std primitives normally, the camp-loom model checker
// under `--cfg loom` (see crate::sync and tests/model/)
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Condvar, Mutex, MutexGuard};

use camp_gemm::request::{GemmRequest, RequestError};
use camp_gemm::weights::{WeightHandle, WeightSnapshot};

use crate::backend::{BatchOutcome, CampBackend};

/// One GeMM of a serving batch, legacy form: an owned m×k activation
/// multiplied against a registered weight.
#[deprecated(
    since = "0.2.0",
    note = "build a GemmRequest (Operand::Handle) and submit that; From<Request> converts; \
            remove: v0.3"
)]
#[derive(Debug, Clone)]
pub struct Request {
    /// Rows of the activation / result.
    pub m: usize,
    /// Row-major m×k activation (k from the weight's registration).
    pub a: Vec<i8>,
    /// The registered weight to multiply against.
    pub weights: WeightHandle,
}

#[allow(deprecated)]
impl From<Request> for GemmRequest {
    fn from(r: Request) -> GemmRequest {
        GemmRequest::with_weights(r.m, r.a, r.weights)
            .expect("legacy requests carry no build-time-checkable shape")
    }
}

/// Identifier of one submitted batch; redeem it with [`Session::poll`]
/// or [`Session::wait`]. Stamped with its session's identity, so a
/// ticket presented to a different session panics instead of silently
/// redeeming that session's unrelated results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketId {
    session: u64,
    seq: u64,
}

/// Staged batches the stager may run ahead of the driver: one being
/// computed, one ready — the documented "pack batch N+1 while batch N
/// computes" pipeline. Beyond this the stager parks instead of staging
/// the whole backlog into memory.
const MAX_STAGED: usize = 2;

/// Pipeline state shared by the submitter, the stager and the driver,
/// generic over the backend's staged request form.
struct State<P> {
    /// Submitted, not yet staged.
    submitted: VecDeque<(u64, Vec<GemmRequest>)>,
    /// Staged (operands pre-packed), not yet computed; at most
    /// [`MAX_STAGED`].
    staged: VecDeque<(u64, Vec<P>)>,
    /// Computed, not yet collected (results are retained until
    /// redeemed or the session drops).
    done: HashMap<u64, BatchOutcome>,
    /// Collected-ticket tracking (poll and wait are one-shot; waiting
    /// again is a caller bug, not a hang), compacted so a long-lived
    /// session stays O(out-of-orderness): every ticket below
    /// `collected_floor` was redeemed, plus the sparse set above it.
    collected_floor: u64,
    collected: HashSet<u64>,
    shutdown: bool,
    stager_exited: bool,
    /// Set when a pipeline thread died; poll/wait panic instead of
    /// hanging.
    dead: Option<&'static str>,
}

impl<P> Default for State<P> {
    fn default() -> Self {
        State {
            submitted: VecDeque::new(),
            staged: VecDeque::new(),
            done: HashMap::new(),
            collected_floor: 0,
            collected: HashSet::new(),
            shutdown: false,
            stager_exited: false,
            dead: None,
        }
    }
}

impl<P> State<P> {
    fn is_collected(&self, ticket: u64) -> bool {
        ticket < self.collected_floor || self.collected.contains(&ticket)
    }

    fn mark_collected(&mut self, ticket: u64) {
        self.collected.insert(ticket);
        while self.collected.remove(&self.collected_floor) {
            self.collected_floor += 1;
        }
    }

    fn collected_count(&self) -> usize {
        self.collected_floor as usize + self.collected.len()
    }
}

struct Shared<P> {
    state: Mutex<State<P>>,
    /// Wakes the stager (new submission, or shutdown).
    submitted_cv: Condvar,
    /// Wakes the driver (new staged batch, or stager exit).
    staged_cv: Condvar,
    /// Wakes the stager when the driver makes room in the staged queue.
    stage_room_cv: Condvar,
    /// Wakes `wait` (new completed batch, or pipeline death).
    done_cv: Condvar,
}

impl<P> Shared<P> {
    fn new() -> Self {
        Shared {
            state: Mutex::new(State::default()),
            submitted_cv: Condvar::new(),
            staged_cv: Condvar::new(),
            stage_room_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Lock the state, ignoring mutex poisoning: every mutation below
    /// is atomic under the lock (queues stay consistent even if a
    /// caller panicked mid-`wait`), and shutdown must still work after
    /// a panic so `Drop` can join the pipeline threads.
    fn lock(&self) -> MutexGuard<'_, State<P>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wait on `cv`, ignoring poisoning like [`Shared::lock`].
    fn wait<'a>(&self, cv: &Condvar, st: MutexGuard<'a, State<P>>) -> MutexGuard<'a, State<P>> {
        cv.wait(st).unwrap_or_else(|e| e.into_inner())
    }

    /// Mark the pipeline dead and wake everyone.
    fn mark_dead(&self, who: &'static str) {
        let mut st = self.lock();
        st.dead = Some(who);
        self.submitted_cv.notify_all();
        self.staged_cv.notify_all();
        self.stage_room_cv.notify_all();
        self.done_cv.notify_all();
    }
}

/// Notifies the session if a pipeline thread unwinds, so callers
/// blocked in [`Session::wait`] fail fast instead of hanging.
struct DeathWatch<'a, P> {
    shared: &'a Shared<P>,
    who: &'static str,
    armed: bool,
}

impl<P> Drop for DeathWatch<'_, P> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.mark_dead(self.who);
        }
    }
}

/// Streaming serving front end over any [`CampBackend`]; see the
/// [module docs](self).
pub struct Session<B: CampBackend + Send + 'static> {
    shared: Arc<Shared<B::Prepared>>,
    /// Registration snapshot for submit-side validation (handles from
    /// another backend, stale handles and malformed shapes are rejected
    /// at submit, not deep in the pipeline).
    weights: WeightSnapshot,
    /// Process-unique identity stamped into this session's tickets.
    session_id: u64,
    next_ticket: u64,
    stager: Option<JoinHandle<()>>,
    driver: Option<JoinHandle<B>>,
}

impl<B: CampBackend + Send + 'static> std::fmt::Debug for Session<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("session_id", &self.session_id)
            .field("next_ticket", &self.next_ticket)
            .finish_non_exhaustive()
    }
}

impl<B: CampBackend + Send + 'static> Session<B> {
    /// Start serving on `backend`. Weights must already be registered:
    /// submissions are validated against this moment's registry.
    pub fn new(backend: B) -> Self {
        let weights = backend.weight_snapshot();
        let shared: Arc<Shared<B::Prepared>> = Arc::new(Shared::new());

        let stager_shared = Arc::clone(&shared);
        let stager_weights = weights.clone();
        let stager = crate::sync::thread::Builder::new()
            .name("camp-stager".into())
            .spawn(move || stager_loop::<B>(&stager_shared, &stager_weights))
            .expect("failed to spawn session stager");

        let driver_shared = Arc::clone(&shared);
        let driver = crate::sync::thread::Builder::new()
            .name("camp-driver".into())
            .spawn(move || driver_loop::<B>(&driver_shared, backend))
            .expect("failed to spawn session driver");

        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(0);
        Session {
            shared,
            weights,
            session_id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            next_ticket: 0,
            stager: Some(stager),
            driver: Some(driver),
        }
    }

    /// Enqueue one batch; returns immediately with the ticket that will
    /// redeem its results. Batches complete in submission order, with
    /// the operand staging of this batch overlapping the compute of
    /// earlier ones.
    ///
    /// Every request is validated against the registration snapshot
    /// taken when the session started: stale or foreign handles and
    /// malformed shapes are rejected here as [`RequestError`]s (the
    /// batch is returned to the caller untouched in spirit — nothing
    /// was enqueued).
    ///
    /// # Panics
    /// Panics if a pipeline thread has already died.
    pub fn submit(&mut self, batch: Vec<GemmRequest>) -> Result<TicketId, RequestError> {
        for r in &batch {
            r.resolve(&self.weights)?;
        }
        let seq = self.next_ticket;
        self.next_ticket += 1;
        let mut st = self.shared.lock();
        if let Some(who) = st.dead {
            panic!("serving session is dead: {who} thread panicked");
        }
        st.submitted.push_back((seq, batch));
        self.shared.submitted_cv.notify_one();
        Ok(TicketId { session: self.session_id, seq })
    }

    /// A ticket's queue key, after verifying it belongs to this session.
    fn check_ticket(&self, ticket: TicketId) -> u64 {
        assert_eq!(ticket.session, self.session_id, "ticket was issued by a different session");
        assert!(ticket.seq < self.next_ticket, "ticket was never issued by this session");
        ticket.seq
    }

    /// Non-blocking result check: `None` while the batch is still in
    /// the pipeline. The result is handed out exactly once — a second
    /// poll of the same ticket returns `None` again.
    pub fn poll(&mut self, ticket: TicketId) -> Option<BatchOutcome> {
        let seq = self.check_ticket(ticket);
        let mut st = self.shared.lock();
        // completed results stay retrievable even after a pipeline
        // thread died — only a still-pending ticket has to fail
        if let Some(result) = st.done.remove(&seq) {
            st.mark_collected(seq);
            return Some(result);
        }
        if let Some(who) = st.dead {
            panic!("serving session is dead: {who} thread panicked");
        }
        None
    }

    /// Block until the batch is computed; returns one [`BatchOutcome`]
    /// with per-request outputs in request order (stats merged across
    /// the batch, staging traffic included). Each ticket can be waited
    /// on exactly once.
    ///
    /// # Panics
    /// Panics if a pipeline thread died, or the ticket's result was
    /// already collected.
    pub fn wait(&mut self, ticket: TicketId) -> BatchOutcome {
        let seq = self.check_ticket(ticket);
        let mut st = self.shared.lock();
        loop {
            assert!(!st.is_collected(seq), "ticket result was already collected");
            if let Some(result) = st.done.remove(&seq) {
                st.mark_collected(seq);
                return result;
            }
            if let Some(who) = st.dead {
                panic!("serving session is dead: {who} thread panicked");
            }
            st = self.shared.wait(&self.shared.done_cv, st);
        }
    }

    /// Batches submitted whose results have not been collected yet
    /// (queued, staging, computing, or done-but-unredeemed).
    pub fn in_flight(&self) -> usize {
        let st = self.shared.lock();
        self.next_ticket as usize - st.collected_count()
    }

    /// Drain the pipeline (every submitted batch finishes; uncollected
    /// results are dropped) and return the backend, weights and warm
    /// pools intact.
    pub fn into_backend(mut self) -> B {
        self.begin_shutdown();
        if let Some(h) = self.stager.take() {
            let _ = h.join();
        }
        let driver = self.driver.take().expect("driver already joined");
        driver.join().expect("session driver panicked")
    }

    /// Legacy name for [`Session::into_backend`].
    #[deprecated(since = "0.2.0", note = "renamed to into_backend; remove: v0.3")]
    pub fn into_engine(self) -> B {
        self.into_backend()
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.lock();
        st.shutdown = true;
        self.shared.submitted_cv.notify_all();
        self.shared.staged_cv.notify_all();
        self.shared.stage_room_cv.notify_all();
    }
}

impl<B: CampBackend + Send + 'static> Drop for Session<B> {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.stager.take() {
            let _ = h.join();
        }
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

fn stager_loop<B: CampBackend>(shared: &Shared<B::Prepared>, weights: &WeightSnapshot) {
    let mut watch = DeathWatch { shared, who: "stager", armed: true };
    loop {
        let next = {
            let mut st = shared.lock();
            loop {
                if let Some(batch) = st.submitted.pop_front() {
                    break Some(batch);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.wait(&shared.submitted_cv, st);
            }
        };
        let Some((ticket, batch)) = next else {
            // graceful exit: tell the driver no more staged batches come
            let mut st = shared.lock();
            st.stager_exited = true;
            shared.staged_cv.notify_all();
            watch.armed = false;
            return;
        };
        // the pipeline overlap: this staging runs while the driver
        // computes the previous batch on the worker pool
        let staged: Vec<B::Prepared> = batch.into_iter().map(|r| B::prepare(r, weights)).collect();
        let mut st = shared.lock();
        // backpressure: hold at most MAX_STAGED pre-packed batches (the
        // one in hand counts once pushed) so a deep submission backlog
        // does not stage its packed copies all at once; the driver
        // signals room as it consumes (skip waiting if it died)
        while st.staged.len() >= MAX_STAGED && st.dead.is_none() {
            st = shared.wait(&shared.stage_room_cv, st);
        }
        st.staged.push_back((ticket, staged));
        shared.staged_cv.notify_one();
    }
}

fn driver_loop<B: CampBackend>(shared: &Shared<B::Prepared>, mut backend: B) -> B {
    let mut watch = DeathWatch { shared, who: "driver", armed: true };
    loop {
        let next = {
            let mut st = shared.lock();
            loop {
                if let Some(batch) = st.staged.pop_front() {
                    shared.stage_room_cv.notify_one();
                    break Some(batch);
                }
                if st.shutdown && st.stager_exited {
                    break None;
                }
                // a dead stager will never stage again nor set
                // stager_exited — exit so Drop/into_backend can join
                // instead of deadlocking
                if st.dead.is_some() {
                    break None;
                }
                st = shared.wait(&shared.staged_cv, st);
            }
        };
        let Some((ticket, staged)) = next else {
            watch.armed = false;
            return backend;
        };
        let result = backend.execute_prepared(staged);
        let mut st = shared.lock();
        st.done.insert(ticket, result);
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ExecStats, SimBackend};
    use crate::engine::{CampEngine, DType};
    use camp_gemm::gemm_i32_ref;

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    fn serving_setup(threads: usize) -> (CampEngine, WeightHandle, Vec<i8>, usize, usize) {
        let (n, k) = (12, 33);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::with_threads(threads);
        let h = eng.register_weights(n, k, &w, DType::I8);
        (eng, h, w, n, k)
    }

    fn handle_req(m: usize, a: Vec<i8>, h: WeightHandle) -> GemmRequest {
        GemmRequest::with_weights(m, a, h).expect("well-formed request")
    }

    fn host_packed_b(stats: &ExecStats) -> u64 {
        stats.as_host().expect("host stats").packed_b_bytes
    }

    #[test]
    fn submit_wait_matches_the_blocking_backend() {
        for threads in [1, 2, 4] {
            let (eng, h, w, n, k) = serving_setup(threads);
            let a1 = fill(7 * k, 3);
            let a2 = fill(4 * k, 11);
            let mut session = eng.serve();
            let t = session
                .submit(vec![handle_req(7, a1.clone(), h), handle_req(4, a2.clone(), h)])
                .unwrap();
            let outcome = session.wait(t);
            assert_eq!(outcome.outputs[0].c, gemm_i32_ref(7, n, k, &a1, &w), "threads={threads}");
            assert_eq!(outcome.outputs[1].c, gemm_i32_ref(4, n, k, &a2, &w), "threads={threads}");
            let stats = outcome.stats.as_host().expect("host session");
            assert_eq!(stats.packed_b_bytes, 0, "registered weights never pack B");
            assert!(stats.packed_a_bytes > 0, "staging traffic is accounted");
        }
    }

    #[test]
    fn many_batches_in_flight_complete_and_poll_in_any_order() {
        let (eng, h, w, n, k) = serving_setup(2);
        let mut session = eng.serve();
        let activations: Vec<Vec<i8>> = (0..6).map(|i| fill(3 * k, 3 + 2 * i)).collect();
        let tickets: Vec<TicketId> = activations
            .iter()
            .map(|a| session.submit(vec![handle_req(3, a.clone(), h)]).unwrap())
            .collect();
        // redeem newest-first: out-of-order collection must work
        for (a, t) in activations.iter().zip(&tickets).rev() {
            let outcome = session.wait(*t);
            assert_eq!(outcome.outputs[0].c, gemm_i32_ref(3, n, k, a, &w));
        }
    }

    #[test]
    fn poll_returns_none_until_ready_and_hands_out_once() {
        let (eng, h, w, n, k) = serving_setup(2);
        let a = fill(5 * k, 7);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(5, a.clone(), h)]).unwrap();
        // poll until ready (bounded busy loop, the batch is tiny)
        let mut got = None;
        for _ in 0..10_000 {
            if let Some(outcome) = session.poll(t) {
                got = Some(outcome);
                break;
            }
            std::thread::yield_now();
        }
        let outcome = got.expect("batch never completed");
        assert_eq!(outcome.outputs[0].c, gemm_i32_ref(5, n, k, &a, &w));
        assert!(session.poll(t).is_none(), "results are handed out exactly once");
    }

    #[test]
    fn i4_weights_serve_under_the_i4_kernel() {
        let (n, k) = (8, 40);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::with_threads(2);
        let h = eng.register_weights(n, k, &w, DType::I4);
        let a = fill(6 * k, 3);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(6, a.clone(), h)]).unwrap();
        assert_eq!(session.wait(t).outputs[0].c, gemm_i32_ref(6, n, k, &a, &w));
    }

    #[test]
    fn dense_requests_serve_with_b_staged_off_the_compute_path() {
        // sessions are no longer handle-only: dense operands are
        // pre-packed by the stager, bit-identically
        let (m, n, k) = (6, 10, 33);
        let w = fill(k * n, 5);
        let a = fill(m * k, 3);
        let req = GemmRequest::dense(m, n, k, a.clone(), w.clone()).unwrap();
        let mut session = CampEngine::with_threads(2).serve();
        let t = session.submit(vec![req]).unwrap();
        let outcome = session.wait(t);
        assert_eq!(outcome.outputs[0].c, gemm_i32_ref(m, n, k, &a, &w));
        assert!(host_packed_b(&outcome.stats) > 0, "dense B staging is accounted");
    }

    #[test]
    fn degenerate_requests_serve_zero_filled_results() {
        let (n, k) = (4, 4);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::new();
        let h = eng.register_weights(n, k, &w, DType::I8);
        let h0 = eng.register_weights(4, 0, &[], DType::I8);
        let mut session = eng.serve();
        let t = session
            .submit(vec![handle_req(0, Vec::new(), h), handle_req(3, Vec::new(), h0)])
            .unwrap();
        let outcome = session.wait(t);
        assert!(outcome.outputs[0].c.is_empty());
        assert_eq!(outcome.outputs[1].c, vec![0; 12]);
    }

    #[test]
    fn into_backend_drains_and_returns_a_warm_engine() {
        let (eng, h, w, n, k) = serving_setup(2);
        let a = fill(4 * k, 9);
        let req = handle_req(4, a.clone(), h);
        let mut session = eng.serve();
        let t = session.submit(vec![req.clone()]).unwrap();
        let outcome = session.wait(t);
        let mut eng = session.into_backend();
        // registry and pools survive the round trip
        assert_eq!(eng.execute(&req).unwrap().output, outcome.outputs[0]);
        assert_eq!(eng.execute(&req).unwrap().output.c, gemm_i32_ref(4, n, k, &a, &w));
    }

    #[test]
    fn large_requests_take_the_row_split_path() {
        // above BATCH_ROW_SPLIT_MACS: staged without a pre-packed A,
        // row-partitioned across the pool — still bit-identical
        let (n, k) = (160, 512);
        let m = 160; // 13.1 M MACs
        assert!((m * n * k) as u64 >= crate::engine::BATCH_ROW_SPLIT_MACS);
        let w = fill(k * n, 5);
        let a = fill(m * k, 3);
        let mut eng = CampEngine::with_threads(4);
        let h = eng.register_weights(n, k, &w, DType::I8);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(m, a.clone(), h)]).unwrap();
        assert_eq!(session.wait(t).outputs[0].c, gemm_i32_ref(m, n, k, &a, &w));
    }

    #[test]
    fn submit_rejects_malformed_activations_without_panicking() {
        let (eng, h, _, _, _) = serving_setup(1);
        let mut session = eng.serve();
        let err = session.submit(vec![handle_req(3, vec![0; 5], h)]).unwrap_err();
        assert!(matches!(err, RequestError::ShapeMismatch { operand: "A", .. }));
        // the session survives a rejected submission
        let t = session.submit(Vec::new()).unwrap();
        assert!(session.wait(t).outputs.is_empty());
    }

    #[test]
    fn submit_rejects_stale_handles() {
        let (mut eng, h, _, _, k) = serving_setup(1);
        eng.evict_weights(h).unwrap();
        let mut session = eng.serve();
        let err = session.submit(vec![handle_req(2, fill(2 * k, 3), h)]).unwrap_err();
        assert_eq!(err, RequestError::StaleHandle);
    }

    #[test]
    #[should_panic(expected = "ticket result was already collected")]
    fn waiting_twice_on_a_ticket_is_an_error() {
        let (eng, h, _, _, k) = serving_setup(1);
        let a = fill(2 * k, 3);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(2, a, h)]).unwrap();
        let _ = session.wait(t);
        let _ = session.wait(t);
    }

    #[test]
    fn session_steady_state_packs_no_b_and_pools_stop_growing() {
        let (eng, h, w, n, k) = serving_setup(3);
        let a = fill(8 * k, 3);
        let mut session = eng.serve();
        // warm-up round, then steady state
        let warm = session.submit(vec![handle_req(8, a.clone(), h)]).unwrap();
        let _ = session.wait(warm);
        let eng = session.into_backend();
        let warm_allocs = eng.pack_allocations();
        let mut session = eng.serve();
        for _ in 0..4 {
            let t = session.submit(vec![handle_req(8, a.clone(), h)]).unwrap();
            let outcome = session.wait(t);
            assert_eq!(outcome.outputs[0].c, gemm_i32_ref(8, n, k, &a, &w));
            assert_eq!(host_packed_b(&outcome.stats), 0, "steady-state serving must not pack B");
        }
        // pack pools are warm: steady-state batches grow nothing (the
        // per-request result and staged vectors are the caller-visible
        // allocations, not pool churn)
        assert_eq!(session.into_backend().pack_allocations(), warm_allocs);
    }

    #[test]
    fn deep_submission_backlogs_complete_in_order() {
        // many more batches than MAX_STAGED: backpressure parks the
        // stager without deadlock and every batch still completes
        let (eng, h, w, n, k) = serving_setup(2);
        let mut session = eng.serve();
        let activations: Vec<Vec<i8>> = (0..12).map(|i| fill(2 * k, 3 + 2 * i)).collect();
        let tickets: Vec<TicketId> = activations
            .iter()
            .map(|a| session.submit(vec![handle_req(2, a.clone(), h)]).unwrap())
            .collect();
        assert_eq!(session.in_flight(), 12);
        for (a, t) in activations.iter().zip(&tickets) {
            assert_eq!(session.wait(*t).outputs[0].c, gemm_i32_ref(2, n, k, a, &w));
        }
        assert_eq!(session.in_flight(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "serving session is dead")]
    fn a_poisoned_request_kills_the_session_loudly_not_silently() {
        // out-of-range i4 operands trip the kernel's debug assertion in
        // a worker; the death must surface on wait(), not hang it, and
        // the session must still shut down cleanly afterwards (Drop)
        let (n, k) = (4, 32);
        let w = fill(k * n, 5); // 4-bit safe
        let mut eng = CampEngine::new();
        let h = eng.register_weights(n, k, &w, DType::I4);
        let mut session = eng.serve();
        let a = vec![100i8; 2 * k]; // not 4-bit (handle requests defer the range check)
        let t = session.submit(vec![handle_req(2, a, h)]).unwrap();
        let _ = session.wait(t);
    }

    #[test]
    fn handles_from_another_backend_are_rejected_at_submit() {
        // same index, same shape, different engine: without the
        // registry stamp this would silently use the wrong weights
        let (eng, _, _, n, k) = serving_setup(1);
        let mut other = CampEngine::new();
        let foreign = other.register_weights(n, k, &fill(k * n, 9), DType::I8);
        let mut session = eng.serve();
        let err = session.submit(vec![handle_req(2, fill(2 * k, 3), foreign)]).unwrap_err();
        assert_eq!(err, RequestError::ForeignHandle);
    }

    #[test]
    #[should_panic(expected = "ticket was issued by a different session")]
    fn polling_a_foreign_ticket_fails_fast() {
        // the dangerous case: s2 has issued a ticket with the same
        // sequence number, so without the session stamp s1's ticket
        // would silently redeem s2's unrelated batch
        let (eng, h, _, _, k) = serving_setup(1);
        let mut s1 = eng.serve();
        let t = s1.submit(vec![handle_req(2, fill(2 * k, 3), h)]).unwrap();
        let _ = s1.wait(t);
        let (eng2, h2, _, _, k2) = serving_setup(1);
        let mut s2 = eng2.serve();
        let _ = s2.submit(vec![handle_req(2, fill(2 * k2, 5), h2)]).unwrap();
        // a ticket s2 never issued must panic, not spin or mis-redeem
        let _ = s2.poll(t);
    }

    #[test]
    fn legacy_requests_convert_into_the_new_form() {
        #[allow(deprecated)]
        let legacy = Request { m: 3, a: fill(3 * 33, 7), weights: serving_setup(1).1 };
        let req: GemmRequest = legacy.into();
        assert_eq!(req.m(), 3);
    }

    #[test]
    fn simulated_sessions_serve_batches_too() {
        // the ROADMAP next step that falls out of the generic session:
        // submit/poll serving of *simulated* batches
        let (n, k) = (8, 32);
        let w = fill(k * n, 5);
        let a = fill(4 * k, 3);
        let mut sim = SimBackend::a64fx();
        let h = crate::backend::CampBackend::register_weights(&mut sim, n, k, &w, DType::I8);
        let mut session = sim.serve();
        let t = session.submit(vec![handle_req(4, a.clone(), h)]).unwrap();
        let outcome = session.wait(t);
        assert_eq!(outcome.outputs[0].c, gemm_i32_ref(4, n, k, &a, &w));
        let stats = outcome.stats.as_sim().expect("simulated session");
        assert!(stats.cycles > 0, "simulated serving must report cycles");
        // the backend comes back usable
        let mut sim = session.into_backend();
        let req = handle_req(4, a.clone(), h);
        assert_eq!(sim.execute(&req).unwrap().output.c, gemm_i32_ref(4, n, k, &a, &w));
    }
}
