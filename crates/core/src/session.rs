//! Submit/poll serving sessions over any [`CampBackend`].
//!
//! A serving deployment does not call a blocking GeMM API: it enqueues
//! request batches and collects results when they are ready, keeping
//! several batches in flight so the machine never idles between them.
//! [`Session`] is that front end, generic over the execution substrate
//! — `Session<CampEngine>` serves at host speed, `Session<SimBackend>`
//! streams batches through the cycle-accurate simulated CAMP core —
//! built as a three-stage pipeline:
//!
//! 1. **submit** ([`Session::submit`]) — the caller hands over a batch
//!    of owned [`GemmRequest`]s and immediately gets a [`TicketId`]
//!    back; requests are validated here ([`RequestError`] instead of a
//!    panic deep in the pipeline);
//! 2. **stage** — a dedicated staging thread runs
//!    [`CampBackend::prepare`] on each request: the host engine
//!    pre-packs A (and dense B) into the panel layout the macro-kernel
//!    consumes, so the packing of batch N+1 overlaps the compute of
//!    batch N; substrates with nothing to stage pass requests through;
//! 3. **compute** — a driver thread owning the backend runs each staged
//!    batch ([`CampBackend::execute_prepared`]); on the host engine the
//!    steady state packs **zero** B bytes for registered weights and
//!    does no A-packing on the compute path.
//!
//! Results come back through [`Session::poll`] (non-blocking) or
//! [`Session::wait`] (blocking) as [`BatchOutcome`]s, in any order,
//! each exactly once. Batches complete in submission order; outputs are
//! bit-identical to calling [`CampBackend::execute_batch`] on the same
//! requests (property-tested, on both substrates).
//! [`Session::into_backend`] drains the pipeline and hands the backend
//! back.
//!
//! ```
//! use camp_core::backend::CampBackend;
//! use camp_core::{CampEngine, DType, GemmRequest};
//!
//! let (n, k) = (8, 32);
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//! let a: Vec<i8> = (0..4 * k).map(|i| (i % 13) as i8 - 6).collect();
//!
//! let mut engine = CampEngine::with_threads(2);
//! let weights = engine.register_weights(n, k, &w, DType::I8);
//! let req = GemmRequest::with_weights(4, a, weights).unwrap();
//! let expected = engine.execute(&req).unwrap();
//!
//! let mut session = engine.serve();
//! let ticket = session.submit(vec![req]).unwrap();
//! let outcome = session.wait(ticket);
//! assert_eq!(outcome.outputs[0], expected.output);
//! ```

use camp_gemm::request::{GemmRequest, RequestError};
use camp_gemm::weights::WeightHandle;

use crate::backend::{BatchOutcome, CampBackend};
use crate::dispatch::{DispatchOptions, DispatchSession, Dispatcher, StealPolicy};

pub use crate::dispatch::TicketId;

/// One GeMM of a serving batch, legacy form: an owned m×k activation
/// multiplied against a registered weight.
#[deprecated(
    since = "0.2.0",
    note = "build a GemmRequest (Operand::Handle) and submit that; From<Request> converts; \
            remove: v0.3"
)]
#[derive(Debug, Clone)]
pub struct Request {
    /// Rows of the activation / result.
    pub m: usize,
    /// Row-major m×k activation (k from the weight's registration).
    pub a: Vec<i8>,
    /// The registered weight to multiply against.
    pub weights: WeightHandle,
}

#[allow(deprecated)]
impl From<Request> for GemmRequest {
    fn from(r: Request) -> GemmRequest {
        GemmRequest::with_weights(r.m, r.a, r.weights)
            .expect("legacy requests carry no build-time-checkable shape")
    }
}

/// Streaming serving front end over any [`CampBackend`]; see the
/// [module docs](self).
///
/// Since the multi-tenant [`Dispatcher`] landed, `Session` is the
/// **single-tenant view** of the same machinery: a private dispatcher
/// configured for one client (one stager, an unbounded admission
/// window, no priority classes) plus the one [`DispatchSession`] on
/// it. The submit/poll/wait surface, ticket semantics and panic
/// messages are unchanged; serving deployments that want N clients
/// over one engine use [`Dispatcher`] (or
/// [`CampBackend::dispatch`]) directly.
pub struct Session<B: CampBackend + Send + 'static> {
    // field order is drop order: the client must close (cancelling
    // nothing — into_backend drains first) before the dispatcher joins
    // its threads
    client: DispatchSession<B>,
    dispatcher: Option<Dispatcher<B>>,
}

impl<B: CampBackend + Send + 'static> std::fmt::Debug for Session<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("session_id", &self.client.id()).finish_non_exhaustive()
    }
}

impl<B: CampBackend + Send + 'static> Session<B> {
    /// Start serving on `backend`. Weights must already be registered:
    /// submissions are validated against this moment's registry.
    pub fn new(backend: B) -> Self {
        // single-tenant configuration: one stager (the legacy pipeline
        // shape) and no admission bound (the legacy session never
        // rejected a submission for depth)
        let dispatcher = Dispatcher::with_options(
            backend,
            DispatchOptions { stagers: 1, queue_depth: usize::MAX, steal: StealPolicy::Eager },
        );
        let client = dispatcher.session();
        Session { client, dispatcher: Some(dispatcher) }
    }

    /// Enqueue one batch; returns immediately with the ticket that will
    /// redeem its results. Batches complete in submission order, with
    /// the operand staging of this batch overlapping the compute of
    /// earlier ones.
    ///
    /// Every request is validated against the registration snapshot
    /// taken when the session started: stale or foreign handles and
    /// malformed shapes are rejected here as [`RequestError`]s (the
    /// batch is returned to the caller untouched in spirit — nothing
    /// was enqueued).
    ///
    /// # Panics
    /// Panics if a pipeline thread has already died.
    pub fn submit(&mut self, batch: Vec<GemmRequest>) -> Result<TicketId, RequestError> {
        self.client.submit(batch)
    }

    /// Non-blocking result check: `None` while the batch is still in
    /// the pipeline. The result is handed out exactly once — a second
    /// poll of the same ticket returns `None` again.
    pub fn poll(&mut self, ticket: TicketId) -> Option<BatchOutcome> {
        self.client
            .poll(ticket)
            .map(|r| r.expect("single-tenant sessions never fail staged batches"))
    }

    /// Block until the batch is computed; returns one [`BatchOutcome`]
    /// with per-request outputs in request order (stats merged across
    /// the batch, staging traffic included). Each ticket can be waited
    /// on exactly once.
    ///
    /// # Panics
    /// Panics if a pipeline thread died, or the ticket's result was
    /// already collected.
    pub fn wait(&mut self, ticket: TicketId) -> BatchOutcome {
        self.client.wait(ticket).expect("single-tenant sessions never fail staged batches")
    }

    /// Batches submitted whose results have not been collected yet
    /// (queued, staging, computing, or done-but-unredeemed).
    pub fn in_flight(&self) -> usize {
        self.client.in_flight()
    }

    /// Drain the pipeline (every submitted batch finishes; uncollected
    /// results are dropped) and return the backend, weights and warm
    /// pools intact.
    pub fn into_backend(mut self) -> B {
        // drain BEFORE the client handle drops: a dropped client
        // cancels its unclaimed batches, and into_backend promises the
        // opposite — every submitted batch finishes
        let dispatcher = self.dispatcher.take().expect("dispatcher already taken");
        dispatcher.into_backend()
    }

    /// Legacy name for [`Session::into_backend`].
    #[deprecated(since = "0.2.0", note = "renamed to into_backend; remove: v0.3")]
    pub fn into_engine(self) -> B {
        self.into_backend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{ExecStats, SimBackend};
    use crate::engine::{CampEngine, DType};
    use camp_gemm::gemm_i32_ref;

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    fn serving_setup(threads: usize) -> (CampEngine, WeightHandle, Vec<i8>, usize, usize) {
        let (n, k) = (12, 33);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::with_threads(threads);
        let h = eng.register_weights(n, k, &w, DType::I8);
        (eng, h, w, n, k)
    }

    fn handle_req(m: usize, a: Vec<i8>, h: WeightHandle) -> GemmRequest {
        GemmRequest::with_weights(m, a, h).expect("well-formed request")
    }

    fn host_packed_b(stats: &ExecStats) -> u64 {
        stats.as_host().expect("host stats").packed_b_bytes
    }

    #[test]
    fn submit_wait_matches_the_blocking_backend() {
        for threads in [1, 2, 4] {
            let (eng, h, w, n, k) = serving_setup(threads);
            let a1 = fill(7 * k, 3);
            let a2 = fill(4 * k, 11);
            let mut session = eng.serve();
            let t = session
                .submit(vec![handle_req(7, a1.clone(), h), handle_req(4, a2.clone(), h)])
                .unwrap();
            let outcome = session.wait(t);
            assert_eq!(outcome.outputs[0].c, gemm_i32_ref(7, n, k, &a1, &w), "threads={threads}");
            assert_eq!(outcome.outputs[1].c, gemm_i32_ref(4, n, k, &a2, &w), "threads={threads}");
            let stats = outcome.stats.as_host().expect("host session");
            assert_eq!(stats.packed_b_bytes, 0, "registered weights never pack B");
            assert!(stats.packed_a_bytes > 0, "staging traffic is accounted");
        }
    }

    #[test]
    fn many_batches_in_flight_complete_and_poll_in_any_order() {
        let (eng, h, w, n, k) = serving_setup(2);
        let mut session = eng.serve();
        let activations: Vec<Vec<i8>> = (0..6).map(|i| fill(3 * k, 3 + 2 * i)).collect();
        let tickets: Vec<TicketId> = activations
            .iter()
            .map(|a| session.submit(vec![handle_req(3, a.clone(), h)]).unwrap())
            .collect();
        // redeem newest-first: out-of-order collection must work
        for (a, t) in activations.iter().zip(&tickets).rev() {
            let outcome = session.wait(*t);
            assert_eq!(outcome.outputs[0].c, gemm_i32_ref(3, n, k, a, &w));
        }
    }

    #[test]
    fn poll_returns_none_until_ready_and_hands_out_once() {
        let (eng, h, w, n, k) = serving_setup(2);
        let a = fill(5 * k, 7);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(5, a.clone(), h)]).unwrap();
        // poll until ready (bounded busy loop, the batch is tiny)
        let mut got = None;
        for _ in 0..10_000 {
            if let Some(outcome) = session.poll(t) {
                got = Some(outcome);
                break;
            }
            std::thread::yield_now();
        }
        let outcome = got.expect("batch never completed");
        assert_eq!(outcome.outputs[0].c, gemm_i32_ref(5, n, k, &a, &w));
        assert!(session.poll(t).is_none(), "results are handed out exactly once");
    }

    #[test]
    fn i4_weights_serve_under_the_i4_kernel() {
        let (n, k) = (8, 40);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::with_threads(2);
        let h = eng.register_weights(n, k, &w, DType::I4);
        let a = fill(6 * k, 3);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(6, a.clone(), h)]).unwrap();
        assert_eq!(session.wait(t).outputs[0].c, gemm_i32_ref(6, n, k, &a, &w));
    }

    #[test]
    fn dense_requests_serve_with_b_staged_off_the_compute_path() {
        // sessions are no longer handle-only: dense operands are
        // pre-packed by the stager, bit-identically
        let (m, n, k) = (6, 10, 33);
        let w = fill(k * n, 5);
        let a = fill(m * k, 3);
        let req = GemmRequest::dense(m, n, k, a.clone(), w.clone()).unwrap();
        let mut session = CampEngine::with_threads(2).serve();
        let t = session.submit(vec![req]).unwrap();
        let outcome = session.wait(t);
        assert_eq!(outcome.outputs[0].c, gemm_i32_ref(m, n, k, &a, &w));
        assert!(host_packed_b(&outcome.stats) > 0, "dense B staging is accounted");
    }

    #[test]
    fn degenerate_requests_serve_zero_filled_results() {
        let (n, k) = (4, 4);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::new();
        let h = eng.register_weights(n, k, &w, DType::I8);
        let h0 = eng.register_weights(4, 0, &[], DType::I8);
        let mut session = eng.serve();
        let t = session
            .submit(vec![handle_req(0, Vec::new(), h), handle_req(3, Vec::new(), h0)])
            .unwrap();
        let outcome = session.wait(t);
        assert!(outcome.outputs[0].c.is_empty());
        assert_eq!(outcome.outputs[1].c, vec![0; 12]);
    }

    #[test]
    fn into_backend_drains_and_returns_a_warm_engine() {
        let (eng, h, w, n, k) = serving_setup(2);
        let a = fill(4 * k, 9);
        let req = handle_req(4, a.clone(), h);
        let mut session = eng.serve();
        let t = session.submit(vec![req.clone()]).unwrap();
        let outcome = session.wait(t);
        let mut eng = session.into_backend();
        // registry and pools survive the round trip
        assert_eq!(eng.execute(&req).unwrap().output, outcome.outputs[0]);
        assert_eq!(eng.execute(&req).unwrap().output.c, gemm_i32_ref(4, n, k, &a, &w));
    }

    #[test]
    fn large_requests_take_the_row_split_path() {
        // above BATCH_ROW_SPLIT_MACS: staged without a pre-packed A,
        // row-partitioned across the pool — still bit-identical
        let (n, k) = (160, 512);
        let m = 160; // 13.1 M MACs
        assert!((m * n * k) as u64 >= crate::engine::BATCH_ROW_SPLIT_MACS);
        let w = fill(k * n, 5);
        let a = fill(m * k, 3);
        let mut eng = CampEngine::with_threads(4);
        let h = eng.register_weights(n, k, &w, DType::I8);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(m, a.clone(), h)]).unwrap();
        assert_eq!(session.wait(t).outputs[0].c, gemm_i32_ref(m, n, k, &a, &w));
    }

    #[test]
    fn submit_rejects_malformed_activations_without_panicking() {
        let (eng, h, _, _, _) = serving_setup(1);
        let mut session = eng.serve();
        let err = session.submit(vec![handle_req(3, vec![0; 5], h)]).unwrap_err();
        assert!(matches!(err, RequestError::ShapeMismatch { operand: "A", .. }));
        // the session survives a rejected submission
        let t = session.submit(Vec::new()).unwrap();
        assert!(session.wait(t).outputs.is_empty());
    }

    #[test]
    fn submit_rejects_stale_handles() {
        let (mut eng, h, _, _, k) = serving_setup(1);
        eng.evict_weights(h).unwrap();
        let mut session = eng.serve();
        let err = session.submit(vec![handle_req(2, fill(2 * k, 3), h)]).unwrap_err();
        assert_eq!(err, RequestError::StaleHandle);
    }

    #[test]
    #[should_panic(expected = "ticket result was already collected")]
    fn waiting_twice_on_a_ticket_is_an_error() {
        let (eng, h, _, _, k) = serving_setup(1);
        let a = fill(2 * k, 3);
        let mut session = eng.serve();
        let t = session.submit(vec![handle_req(2, a, h)]).unwrap();
        let _ = session.wait(t);
        let _ = session.wait(t);
    }

    #[test]
    fn session_steady_state_packs_no_b_and_pools_stop_growing() {
        let (eng, h, w, n, k) = serving_setup(3);
        let a = fill(8 * k, 3);
        let mut session = eng.serve();
        // warm-up round, then steady state
        let warm = session.submit(vec![handle_req(8, a.clone(), h)]).unwrap();
        let _ = session.wait(warm);
        let eng = session.into_backend();
        let warm_allocs = eng.pack_allocations();
        let mut session = eng.serve();
        for _ in 0..4 {
            let t = session.submit(vec![handle_req(8, a.clone(), h)]).unwrap();
            let outcome = session.wait(t);
            assert_eq!(outcome.outputs[0].c, gemm_i32_ref(8, n, k, &a, &w));
            assert_eq!(host_packed_b(&outcome.stats), 0, "steady-state serving must not pack B");
        }
        // pack pools are warm: steady-state batches grow nothing (the
        // per-request result and staged vectors are the caller-visible
        // allocations, not pool churn)
        assert_eq!(session.into_backend().pack_allocations(), warm_allocs);
    }

    #[test]
    fn deep_submission_backlogs_complete_in_order() {
        // many more batches than MAX_STAGED: backpressure parks the
        // stager without deadlock and every batch still completes
        let (eng, h, w, n, k) = serving_setup(2);
        let mut session = eng.serve();
        let activations: Vec<Vec<i8>> = (0..12).map(|i| fill(2 * k, 3 + 2 * i)).collect();
        let tickets: Vec<TicketId> = activations
            .iter()
            .map(|a| session.submit(vec![handle_req(2, a.clone(), h)]).unwrap())
            .collect();
        assert_eq!(session.in_flight(), 12);
        for (a, t) in activations.iter().zip(&tickets) {
            assert_eq!(session.wait(*t).outputs[0].c, gemm_i32_ref(2, n, k, a, &w));
        }
        assert_eq!(session.in_flight(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "serving session is dead")]
    fn a_poisoned_request_kills_the_session_loudly_not_silently() {
        // out-of-range i4 operands trip the kernel's debug assertion in
        // a worker; the death must surface on wait(), not hang it, and
        // the session must still shut down cleanly afterwards (Drop)
        let (n, k) = (4, 32);
        let w = fill(k * n, 5); // 4-bit safe
        let mut eng = CampEngine::new();
        let h = eng.register_weights(n, k, &w, DType::I4);
        let mut session = eng.serve();
        let a = vec![100i8; 2 * k]; // not 4-bit (handle requests defer the range check)
        let t = session.submit(vec![handle_req(2, a, h)]).unwrap();
        let _ = session.wait(t);
    }

    #[test]
    fn handles_from_another_backend_are_rejected_at_submit() {
        // same index, same shape, different engine: without the
        // registry stamp this would silently use the wrong weights
        let (eng, _, _, n, k) = serving_setup(1);
        let mut other = CampEngine::new();
        let foreign = other.register_weights(n, k, &fill(k * n, 9), DType::I8);
        let mut session = eng.serve();
        let err = session.submit(vec![handle_req(2, fill(2 * k, 3), foreign)]).unwrap_err();
        assert_eq!(err, RequestError::ForeignHandle);
    }

    #[test]
    #[should_panic(expected = "ticket was issued by a different session")]
    fn polling_a_foreign_ticket_fails_fast() {
        // the dangerous case: s2 has issued a ticket with the same
        // sequence number, so without the session stamp s1's ticket
        // would silently redeem s2's unrelated batch
        let (eng, h, _, _, k) = serving_setup(1);
        let mut s1 = eng.serve();
        let t = s1.submit(vec![handle_req(2, fill(2 * k, 3), h)]).unwrap();
        let _ = s1.wait(t);
        let (eng2, h2, _, _, k2) = serving_setup(1);
        let mut s2 = eng2.serve();
        let _ = s2.submit(vec![handle_req(2, fill(2 * k2, 5), h2)]).unwrap();
        // a ticket s2 never issued must panic, not spin or mis-redeem
        let _ = s2.poll(t);
    }

    #[test]
    fn legacy_requests_convert_into_the_new_form() {
        #[allow(deprecated)]
        let legacy = Request { m: 3, a: fill(3 * 33, 7), weights: serving_setup(1).1 };
        let req: GemmRequest = legacy.into();
        assert_eq!(req.m(), 3);
    }

    #[test]
    fn simulated_sessions_serve_batches_too() {
        // the ROADMAP next step that falls out of the generic session:
        // submit/poll serving of *simulated* batches
        let (n, k) = (8, 32);
        let w = fill(k * n, 5);
        let a = fill(4 * k, 3);
        let mut sim = SimBackend::a64fx();
        let h = crate::backend::CampBackend::register_weights(&mut sim, n, k, &w, DType::I8);
        let mut session = sim.serve();
        let t = session.submit(vec![handle_req(4, a.clone(), h)]).unwrap();
        let outcome = session.wait(t);
        assert_eq!(outcome.outputs[0].c, gemm_i32_ref(4, n, k, &a, &w));
        let stats = outcome.stats.as_sim().expect("simulated session");
        assert!(stats.cycles > 0, "simulated serving must report cycles");
        // the backend comes back usable
        let mut sim = session.into_backend();
        let req = handle_req(4, a.clone(), h);
        assert_eq!(sim.execute(&req).unwrap().output.c, gemm_i32_ref(4, n, k, &a, &w));
    }
}
