//! Submit/poll serving sessions over a [`CampEngine`].
//!
//! A serving deployment does not call a blocking GeMM API: it enqueues
//! request batches and collects results when they are ready, keeping
//! several batches in flight so the machine never idles between them.
//! [`Session`] is that front end, built as a three-stage pipeline:
//!
//! 1. **submit** ([`Session::submit`]) — the caller hands over a batch
//!    of owned [`Request`]s (activation + registered [`WeightHandle`])
//!    and immediately gets a [`TicketId`] back;
//! 2. **stage** — a dedicated staging thread pre-packs each request's A
//!    operand into the panel layout the macro-kernel consumes
//!    ([`camp_gemm::weights::prepack_a`]), so the A-packing of batch
//!    N+1 overlaps the compute of batch N;
//! 3. **compute** — a driver thread owning the engine runs each staged
//!    batch on the persistent worker pool: registered B panels
//!    everywhere, pre-packed A panels for everything below the
//!    row-split threshold — the steady state packs **zero** B bytes and
//!    does no A-packing on the compute path.
//!
//! Results come back through [`Session::poll`] (non-blocking) or
//! [`Session::wait`] (blocking), in any order, each exactly once.
//! Batches complete in submission order; results are bit-identical to
//! looping [`CampEngine::gemm_with_handle`] over the same requests
//! (property-tested). [`Session::into_engine`] drains the pipeline and
//! hands the engine back.
//!
//! ```
//! use camp_core::{CampEngine, DType, Request};
//!
//! let (n, k) = (8, 32);
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//! let a: Vec<i8> = (0..4 * k).map(|i| (i % 13) as i8 - 6).collect();
//!
//! let mut engine = CampEngine::with_threads(2);
//! let weights = engine.register_weights(n, k, &w, DType::I8);
//! let expected = engine.gemm_with_handle(4, &a, weights);
//!
//! let mut session = engine.serve();
//! let ticket = session.submit(vec![Request { m: 4, a, weights }]);
//! let results = session.wait(ticket);
//! assert_eq!(results[0], expected);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use camp_gemm::batch::packed_a_bytes;
use camp_gemm::weights::{host_block_plan, prepack_a, WeightHandle, WeightMeta};

use crate::engine::{CampEngine, EngineStats, StagedRequest, BATCH_ROW_SPLIT_MACS};

/// One GeMM of a serving batch: an owned m×k activation multiplied
/// against a weight matrix registered with the engine before the
/// session started ([`CampEngine::register_weights`]). The kernel (i8
/// vs i4) is the one the weight was registered for.
#[derive(Debug, Clone)]
pub struct Request {
    /// Rows of the activation / result.
    pub m: usize,
    /// Row-major m×k activation (k from the weight's registration).
    pub a: Vec<i8>,
    /// The registered weight to multiply against.
    pub weights: WeightHandle,
}

/// Identifier of one submitted batch; redeem it with [`Session::poll`]
/// or [`Session::wait`]. Stamped with its session's identity, so a
/// ticket presented to a different session panics instead of silently
/// redeeming that session's unrelated results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketId {
    session: u64,
    seq: u64,
}

/// Staged batches the stager may run ahead of the driver: one being
/// computed, one ready — the documented "pack batch N+1 while batch N
/// computes" pipeline. Beyond this the stager parks instead of staging
/// the whole backlog into memory.
const MAX_STAGED: usize = 2;

/// Pipeline state shared by the submitter, the stager and the driver.
#[derive(Default)]
struct State {
    /// Submitted, not yet staged.
    submitted: VecDeque<(u64, Vec<Request>)>,
    /// Staged (A pre-packed), not yet computed; at most [`MAX_STAGED`].
    staged: VecDeque<(u64, Vec<StagedRequest>)>,
    /// Computed, not yet collected (results are retained until
    /// redeemed or the session drops).
    done: HashMap<u64, (Vec<Vec<i32>>, EngineStats)>,
    /// Collected-ticket tracking (poll and wait are one-shot; waiting
    /// again is a caller bug, not a hang), compacted so a long-lived
    /// session stays O(out-of-orderness): every ticket below
    /// `collected_floor` was redeemed, plus the sparse set above it.
    collected_floor: u64,
    collected: HashSet<u64>,
    shutdown: bool,
    stager_exited: bool,
    /// Set when a pipeline thread died; poll/wait panic instead of
    /// hanging.
    dead: Option<&'static str>,
}

impl State {
    fn is_collected(&self, ticket: u64) -> bool {
        ticket < self.collected_floor || self.collected.contains(&ticket)
    }

    fn mark_collected(&mut self, ticket: u64) {
        self.collected.insert(ticket);
        while self.collected.remove(&self.collected_floor) {
            self.collected_floor += 1;
        }
    }

    fn collected_count(&self) -> usize {
        self.collected_floor as usize + self.collected.len()
    }
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the stager (new submission, or shutdown).
    submitted_cv: Condvar,
    /// Wakes the driver (new staged batch, or stager exit).
    staged_cv: Condvar,
    /// Wakes the stager when the driver makes room in the staged queue.
    stage_room_cv: Condvar,
    /// Wakes `wait` (new completed batch, or pipeline death).
    done_cv: Condvar,
}

impl Shared {
    fn new() -> Self {
        Shared {
            state: Mutex::new(State::default()),
            submitted_cv: Condvar::new(),
            staged_cv: Condvar::new(),
            stage_room_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Lock the state, ignoring mutex poisoning: every mutation below
    /// is atomic under the lock (queues stay consistent even if a
    /// caller panicked mid-`wait`), and shutdown must still work after
    /// a panic so `Drop` can join the pipeline threads.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wait on `cv`, ignoring poisoning like [`Shared::lock`].
    fn wait<'a>(&self, cv: &Condvar, st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        cv.wait(st).unwrap_or_else(|e| e.into_inner())
    }

    /// Mark the pipeline dead and wake everyone.
    fn mark_dead(&self, who: &'static str) {
        let mut st = self.lock();
        st.dead = Some(who);
        self.submitted_cv.notify_all();
        self.staged_cv.notify_all();
        self.stage_room_cv.notify_all();
        self.done_cv.notify_all();
    }
}

/// Notifies the session if a pipeline thread unwinds, so callers
/// blocked in [`Session::wait`] fail fast instead of hanging.
struct DeathWatch<'a> {
    shared: &'a Shared,
    who: &'static str,
    armed: bool,
}

impl Drop for DeathWatch<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.mark_dead(self.who);
        }
    }
}

/// Streaming serving front end over a [`CampEngine`]; see the
/// [module docs](self).
#[derive(Debug)]
pub struct Session {
    shared: Arc<Shared>,
    /// Registration snapshot for submit-side validation.
    metas: Vec<WeightMeta>,
    /// Identity of the engine's registry: handles from another engine
    /// are rejected at submit time even when indices/shapes coincide.
    registry_id: u64,
    /// Process-unique identity stamped into this session's tickets.
    session_id: u64,
    next_ticket: u64,
    stager: Option<JoinHandle<()>>,
    driver: Option<JoinHandle<CampEngine>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl Session {
    /// Start serving on `engine`. Weights must already be registered:
    /// submissions are validated against this moment's registry.
    pub fn new(engine: CampEngine) -> Self {
        let metas = engine.weight_metas();
        let registry_id = engine.weight_registry_id();
        let shared = Arc::new(Shared::new());

        let stager_shared = Arc::clone(&shared);
        let stager_metas = metas.clone();
        let stager = std::thread::Builder::new()
            .name("camp-stager".into())
            .spawn(move || stager_loop(&stager_shared, &stager_metas))
            .expect("failed to spawn session stager");

        let driver_shared = Arc::clone(&shared);
        let driver = std::thread::Builder::new()
            .name("camp-driver".into())
            .spawn(move || driver_loop(&driver_shared, engine))
            .expect("failed to spawn session driver");

        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(0);
        Session {
            shared,
            metas,
            registry_id,
            session_id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            next_ticket: 0,
            stager: Some(stager),
            driver: Some(driver),
        }
    }

    /// Enqueue one batch; returns immediately with the ticket that will
    /// redeem its results. Batches complete in submission order, with
    /// the A-packing of this batch overlapping the compute of earlier
    /// ones.
    ///
    /// # Panics
    /// Panics if a request's handle was not registered before the
    /// session started, or its activation length is not m×k for the
    /// registered k.
    pub fn submit(&mut self, batch: Vec<Request>) -> TicketId {
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(
                r.weights.registry(),
                self.registry_id,
                "request {i}: WeightHandle from a different engine's registry"
            );
            let meta = self
                .metas
                .get(r.weights.index())
                .unwrap_or_else(|| panic!("request {i}: unknown WeightHandle"));
            assert_eq!(
                r.a.len(),
                r.m * meta.k,
                "request {i}: activation must be m×k for the registered weight"
            );
        }
        let seq = self.next_ticket;
        self.next_ticket += 1;
        let mut st = self.shared.lock();
        if let Some(who) = st.dead {
            panic!("serving session is dead: {who} thread panicked");
        }
        st.submitted.push_back((seq, batch));
        self.shared.submitted_cv.notify_one();
        TicketId { session: self.session_id, seq }
    }

    /// A ticket's queue key, after verifying it belongs to this session.
    fn check_ticket(&self, ticket: TicketId) -> u64 {
        assert_eq!(ticket.session, self.session_id, "ticket was issued by a different session");
        assert!(ticket.seq < self.next_ticket, "ticket was never issued by this session");
        ticket.seq
    }

    /// Non-blocking result check: `None` while the batch is still in
    /// the pipeline. The result is handed out exactly once — a second
    /// poll of the same ticket returns `None` again.
    pub fn poll(&mut self, ticket: TicketId) -> Option<Vec<Vec<i32>>> {
        self.poll_with_stats(ticket).map(|(c, _)| c)
    }

    /// [`Session::poll`] plus the batch's merged [`EngineStats`]
    /// (staging traffic included; `packed_b_bytes` is always 0 since
    /// every request multiplies a registered weight).
    pub fn poll_with_stats(&mut self, ticket: TicketId) -> Option<(Vec<Vec<i32>>, EngineStats)> {
        let seq = self.check_ticket(ticket);
        let mut st = self.shared.lock();
        // completed results stay retrievable even after a pipeline
        // thread died — only a still-pending ticket has to fail
        if let Some(result) = st.done.remove(&seq) {
            st.mark_collected(seq);
            return Some(result);
        }
        if let Some(who) = st.dead {
            panic!("serving session is dead: {who} thread panicked");
        }
        None
    }

    /// Block until the batch is computed; returns one row-major C per
    /// request, in request order. Each ticket can be waited on exactly
    /// once.
    ///
    /// # Panics
    /// Panics if a pipeline thread died, or the ticket's result was
    /// already collected.
    pub fn wait(&mut self, ticket: TicketId) -> Vec<Vec<i32>> {
        self.wait_with_stats(ticket).0
    }

    /// [`Session::wait`] plus the batch's merged [`EngineStats`].
    pub fn wait_with_stats(&mut self, ticket: TicketId) -> (Vec<Vec<i32>>, EngineStats) {
        let seq = self.check_ticket(ticket);
        let mut st = self.shared.lock();
        loop {
            assert!(!st.is_collected(seq), "ticket result was already collected");
            if let Some(result) = st.done.remove(&seq) {
                st.mark_collected(seq);
                return result;
            }
            if let Some(who) = st.dead {
                panic!("serving session is dead: {who} thread panicked");
            }
            st = self.shared.wait(&self.shared.done_cv, st);
        }
    }

    /// Batches submitted whose results have not been collected yet
    /// (queued, staging, computing, or done-but-unredeemed).
    pub fn in_flight(&self) -> usize {
        let st = self.shared.lock();
        self.next_ticket as usize - st.collected_count()
    }

    /// Drain the pipeline (every submitted batch finishes; uncollected
    /// results are dropped) and return the engine, weights and warm
    /// pools intact.
    pub fn into_engine(mut self) -> CampEngine {
        self.begin_shutdown();
        if let Some(h) = self.stager.take() {
            let _ = h.join();
        }
        let driver = self.driver.take().expect("driver already joined");
        driver.join().expect("session driver panicked")
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.lock();
        st.shutdown = true;
        self.shared.submitted_cv.notify_all();
        self.shared.staged_cv.notify_all();
        self.shared.stage_room_cv.notify_all();
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(h) = self.stager.take() {
            let _ = h.join();
        }
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

/// Stage one request: resolve its shape from the registration and
/// pre-pack A (small requests only — row-split requests are packed by
/// the workers that own the rows).
fn stage_request(r: Request, metas: &[WeightMeta]) -> StagedRequest {
    let meta = metas[r.weights.index()];
    let mut staged = StagedRequest {
        m: r.m,
        n: meta.n,
        k: meta.k,
        dtype: meta.dtype,
        a: r.a,
        packed_a: None,
        packed_a_bytes: 0,
        handle: r.weights,
    };
    if !staged.is_degenerate() && staged.macs() < BATCH_ROW_SPLIT_MACS {
        let plan = host_block_plan(staged.m, staged.n, staged.k, staged.dtype.k_step());
        let mut buf = vec![0i8; packed_a_bytes(&plan)];
        prepack_a(&mut buf, &staged.a, staged.m, staged.k, &plan);
        staged.packed_a_bytes = buf.len() as u64;
        staged.packed_a = Some(buf);
    }
    staged
}

fn stager_loop(shared: &Shared, metas: &[WeightMeta]) {
    let mut watch = DeathWatch { shared, who: "stager", armed: true };
    loop {
        let next = {
            let mut st = shared.lock();
            loop {
                if let Some(batch) = st.submitted.pop_front() {
                    break Some(batch);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.wait(&shared.submitted_cv, st);
            }
        };
        let Some((ticket, batch)) = next else {
            // graceful exit: tell the driver no more staged batches come
            let mut st = shared.lock();
            st.stager_exited = true;
            shared.staged_cv.notify_all();
            watch.armed = false;
            return;
        };
        // the pipeline overlap: this packing runs while the driver
        // computes the previous batch on the worker pool
        let staged: Vec<StagedRequest> =
            batch.into_iter().map(|r| stage_request(r, metas)).collect();
        let mut st = shared.lock();
        // backpressure: hold at most MAX_STAGED pre-packed batches (the
        // one in hand counts once pushed) so a deep submission backlog
        // does not stage its packed-A copies all at once; the driver
        // signals room as it consumes (skip waiting if it died)
        while st.staged.len() >= MAX_STAGED && st.dead.is_none() {
            st = shared.wait(&shared.stage_room_cv, st);
        }
        st.staged.push_back((ticket, staged));
        shared.staged_cv.notify_one();
    }
}

fn driver_loop(shared: &Shared, mut engine: CampEngine) -> CampEngine {
    let mut watch = DeathWatch { shared, who: "driver", armed: true };
    loop {
        let next = {
            let mut st = shared.lock();
            loop {
                if let Some(batch) = st.staged.pop_front() {
                    shared.stage_room_cv.notify_one();
                    break Some(batch);
                }
                if st.shutdown && st.stager_exited {
                    break None;
                }
                // a dead stager will never stage again nor set
                // stager_exited — exit so Drop/into_engine can join
                // instead of deadlocking
                if st.dead.is_some() {
                    break None;
                }
                st = shared.wait(&shared.staged_cv, st);
            }
        };
        let Some((ticket, staged)) = next else {
            watch.armed = false;
            return engine;
        };
        let result = engine.run_staged(&staged);
        let mut st = shared.lock();
        st.done.insert(ticket, result);
        shared.done_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{camp_gemm_i4, camp_gemm_i8, DType};

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    fn serving_setup(threads: usize) -> (CampEngine, WeightHandle, Vec<i8>, usize, usize) {
        let (n, k) = (12, 33);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::with_threads(threads);
        let h = eng.register_weights(n, k, &w, DType::I8);
        (eng, h, w, n, k)
    }

    #[test]
    fn submit_wait_matches_the_blocking_engine() {
        for threads in [1, 2, 4] {
            let (eng, h, w, n, k) = serving_setup(threads);
            let a1 = fill(7 * k, 3);
            let a2 = fill(4 * k, 11);
            let mut session = eng.serve();
            let t = session.submit(vec![
                Request { m: 7, a: a1.clone(), weights: h },
                Request { m: 4, a: a2.clone(), weights: h },
            ]);
            let (cs, stats) = session.wait_with_stats(t);
            assert_eq!(cs[0], camp_gemm_i8(7, n, k, &a1, &w), "threads={threads}");
            assert_eq!(cs[1], camp_gemm_i8(4, n, k, &a2, &w), "threads={threads}");
            assert_eq!(stats.packed_b_bytes, 0, "sessions never pack B");
            assert!(stats.packed_a_bytes > 0, "staging traffic is accounted");
        }
    }

    #[test]
    fn many_batches_in_flight_complete_and_poll_in_any_order() {
        let (eng, h, w, n, k) = serving_setup(2);
        let mut session = eng.serve();
        let activations: Vec<Vec<i8>> = (0..6).map(|i| fill(3 * k, 3 + 2 * i)).collect();
        let tickets: Vec<TicketId> = activations
            .iter()
            .map(|a| session.submit(vec![Request { m: 3, a: a.clone(), weights: h }]))
            .collect();
        // redeem newest-first: out-of-order collection must work
        for (a, t) in activations.iter().zip(&tickets).rev() {
            let cs = session.wait(*t);
            assert_eq!(cs[0], camp_gemm_i8(3, n, k, a, &w));
        }
    }

    #[test]
    fn poll_returns_none_until_ready_and_hands_out_once() {
        let (eng, h, w, n, k) = serving_setup(2);
        let a = fill(5 * k, 7);
        let mut session = eng.serve();
        let t = session.submit(vec![Request { m: 5, a: a.clone(), weights: h }]);
        // poll until ready (bounded busy loop, the batch is tiny)
        let mut got = None;
        for _ in 0..10_000 {
            if let Some(cs) = session.poll(t) {
                got = Some(cs);
                break;
            }
            std::thread::yield_now();
        }
        let cs = got.expect("batch never completed");
        assert_eq!(cs[0], camp_gemm_i8(5, n, k, &a, &w));
        assert_eq!(session.poll(t), None, "results are handed out exactly once");
    }

    #[test]
    fn i4_weights_serve_under_the_i4_kernel() {
        let (n, k) = (8, 40);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::with_threads(2);
        let h = eng.register_weights(n, k, &w, DType::I4);
        let a = fill(6 * k, 3);
        let mut session = eng.serve();
        let t = session.submit(vec![Request { m: 6, a: a.clone(), weights: h }]);
        assert_eq!(session.wait(t)[0], camp_gemm_i4(6, n, k, &a, &w));
    }

    #[test]
    fn degenerate_requests_serve_zero_filled_results() {
        let (n, k) = (4, 4);
        let w = fill(k * n, 5);
        let mut eng = CampEngine::new();
        let h = eng.register_weights(n, k, &w, DType::I8);
        let h0 = eng.register_weights(4, 0, &[], DType::I8);
        let mut session = eng.serve();
        let t = session.submit(vec![
            Request { m: 0, a: Vec::new(), weights: h },
            Request { m: 3, a: Vec::new(), weights: h0 }, // k = 0
        ]);
        let cs = session.wait(t);
        assert!(cs[0].is_empty());
        assert_eq!(cs[1], vec![0; 12]);
    }

    #[test]
    fn into_engine_drains_and_returns_a_warm_engine() {
        let (eng, h, w, n, k) = serving_setup(2);
        let a = fill(4 * k, 9);
        let mut session = eng.serve();
        let t = session.submit(vec![Request { m: 4, a: a.clone(), weights: h }]);
        let cs = session.wait(t);
        let mut eng = session.into_engine();
        // registry and pools survive the round trip
        assert_eq!(eng.gemm_with_handle(4, &a, h), cs[0]);
        assert_eq!(eng.gemm_with_handle(4, &a, h), camp_gemm_i8(4, n, k, &a, &w));
    }

    #[test]
    fn large_requests_take_the_row_split_path() {
        // above BATCH_ROW_SPLIT_MACS: staged without a pre-packed A,
        // row-partitioned across the pool — still bit-identical
        let (n, k) = (160, 512);
        let m = 160; // 13.1 M MACs
        assert!((m * n * k) as u64 >= BATCH_ROW_SPLIT_MACS);
        let w = fill(k * n, 5);
        let a = fill(m * k, 3);
        let mut eng = CampEngine::with_threads(4);
        let h = eng.register_weights(n, k, &w, DType::I8);
        let mut session = eng.serve();
        let t = session.submit(vec![Request { m, a: a.clone(), weights: h }]);
        assert_eq!(session.wait(t)[0], camp_gemm_i8(m, n, k, &a, &w));
    }

    #[test]
    #[should_panic(expected = "request 0: activation must be m×k")]
    fn submit_rejects_malformed_activations() {
        let (eng, h, _, _, _) = serving_setup(1);
        let mut session = eng.serve();
        let _ = session.submit(vec![Request { m: 3, a: vec![0; 5], weights: h }]);
    }

    #[test]
    #[should_panic(expected = "ticket result was already collected")]
    fn waiting_twice_on_a_ticket_is_an_error() {
        let (eng, h, _, _, k) = serving_setup(1);
        let a = fill(2 * k, 3);
        let mut session = eng.serve();
        let t = session.submit(vec![Request { m: 2, a, weights: h }]);
        let _ = session.wait(t);
        let _ = session.wait(t);
    }

    #[test]
    fn session_steady_state_packs_no_b_and_pools_stop_growing() {
        let (eng, h, w, n, k) = serving_setup(3);
        let a = fill(8 * k, 3);
        let mut session = eng.serve();
        // warm-up round, then steady state
        let warm = session.submit(vec![Request { m: 8, a: a.clone(), weights: h }]);
        let _ = session.wait(warm);
        let eng = session.into_engine();
        let warm_allocs = eng.pack_allocations();
        let mut session = eng.serve();
        for _ in 0..4 {
            let t = session.submit(vec![Request { m: 8, a: a.clone(), weights: h }]);
            let (cs, stats) = session.wait_with_stats(t);
            assert_eq!(cs[0], camp_gemm_i8(8, n, k, &a, &w));
            assert_eq!(stats.packed_b_bytes, 0, "steady-state serving must not pack B");
        }
        // pack pools are warm: steady-state batches grow nothing (the
        // per-request result and staged-A vectors are the caller-visible
        // allocations, not pool churn)
        assert_eq!(session.into_engine().pack_allocations(), warm_allocs);
    }

    #[test]
    fn deep_submission_backlogs_complete_in_order() {
        // many more batches than MAX_STAGED: backpressure parks the
        // stager without deadlock and every batch still completes
        let (eng, h, w, n, k) = serving_setup(2);
        let mut session = eng.serve();
        let activations: Vec<Vec<i8>> = (0..12).map(|i| fill(2 * k, 3 + 2 * i)).collect();
        let tickets: Vec<TicketId> = activations
            .iter()
            .map(|a| session.submit(vec![Request { m: 2, a: a.clone(), weights: h }]))
            .collect();
        assert_eq!(session.in_flight(), 12);
        for (a, t) in activations.iter().zip(&tickets) {
            assert_eq!(session.wait(*t)[0], camp_gemm_i8(2, n, k, a, &w));
        }
        assert_eq!(session.in_flight(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "serving session is dead")]
    fn a_poisoned_request_kills_the_session_loudly_not_silently() {
        // out-of-range i4 operands trip the kernel's debug assertion in
        // a worker; the death must surface on wait(), not hang it, and
        // the session must still shut down cleanly afterwards (Drop)
        let (n, k) = (4, 32);
        let w = fill(k * n, 5); // 4-bit safe
        let mut eng = CampEngine::new();
        let h = eng.register_weights(n, k, &w, DType::I4);
        let mut session = eng.serve();
        let a = vec![100i8; 2 * k]; // not 4-bit
        let t = session.submit(vec![Request { m: 2, a, weights: h }]);
        let _ = session.wait(t);
    }

    #[test]
    #[should_panic(expected = "WeightHandle from a different engine's registry")]
    fn handles_from_another_engine_are_rejected_at_submit() {
        // same index, same shape, different engine: without the
        // registry stamp this would silently use the wrong weights
        let (eng, _, _, n, k) = serving_setup(1);
        let mut other = CampEngine::new();
        let foreign = other.register_weights(n, k, &fill(k * n, 9), DType::I8);
        let mut session = eng.serve();
        let _ = session.submit(vec![Request { m: 2, a: fill(2 * k, 3), weights: foreign }]);
    }

    #[test]
    #[should_panic(expected = "ticket was issued by a different session")]
    fn polling_a_foreign_ticket_fails_fast() {
        // the dangerous case: s2 has issued a ticket with the same
        // sequence number, so without the session stamp s1's ticket
        // would silently redeem s2's unrelated batch
        let (eng, h, _, _, k) = serving_setup(1);
        let mut s1 = eng.serve();
        let t = s1.submit(vec![Request { m: 2, a: fill(2 * k, 3), weights: h }]);
        let _ = s1.wait(t);
        let (eng2, h2, _, _, k2) = serving_setup(1);
        let mut s2 = eng2.serve();
        let _ = s2.submit(vec![Request { m: 2, a: fill(2 * k2, 5), weights: h2 }]);
        // a ticket s2 never issued must panic, not spin or mis-redeem
        let _ = s2.poll(t);
    }
}
