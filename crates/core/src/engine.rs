//! Host-speed CAMP GeMM engine.
//!
//! This is the downstream-facing library API: blocked integer matrix
//! multiplication whose micro-kernel is the `camp` instruction semantics
//! (§4.1, Fig. 9). Operands are packed exactly the way the simulated
//! kernels pack them — A into 4×k column-major panels, B into k×4
//! row-major panels — and the inner loop consumes 16 (i8) or 32 (i4)
//! k-steps per "issue", mirroring `camp_s64` in the paper's Fig. 9
//! listing. Results are bit-identical to a plain i32 GeMM (wrapping
//! accumulation), which the test-suite and property tests verify.

/// Per-call statistics of the engine (what the instruction stream would
/// have contained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `camp` issues.
    pub camp_issues: u64,
    /// 64-byte vector loads (operand fetches).
    pub vector_loads: u64,
    /// 64-byte vector stores (result tiles).
    pub vector_stores: u64,
    /// Bytes moved while packing panels.
    pub packed_bytes: u64,
    /// Multiply-accumulate operations represented.
    pub macs: u64,
}

/// Reference i32 GeMM over i8 inputs: `C[i][j] = Σ A[i][l]·B[l][j]`
/// (row-major, wrapping accumulation).
pub fn gemm_i32_ref(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for l in 0..k {
            let av = a[i * k + l] as i32;
            for j in 0..n {
                let idx = i * n + j;
                c[idx] = c[idx].wrapping_add(av.wrapping_mul(b[l * n + j] as i32));
            }
        }
    }
    c
}

fn pack_a_panel(a: &[i8], m: usize, k: usize, i0: usize, kk: usize) -> Vec<i8> {
    // 4 rows starting at i0, all k columns zero-padded to kk, col-major.
    let mut out = vec![0i8; 4 * kk];
    for l in 0..k {
        for r in 0..4 {
            let i = i0 + r;
            if i < m {
                out[l * 4 + r] = a[i * k + l];
            }
        }
    }
    out
}

fn pack_b_panel(b: &[i8], k: usize, n: usize, j0: usize, kk: usize) -> Vec<i8> {
    // 4 cols starting at j0, all k rows zero-padded to kk, row-major.
    let mut out = vec![0i8; kk * 4];
    for l in 0..k {
        for c in 0..4 {
            let j = j0 + c;
            if j < n {
                out[l * 4 + c] = b[l * n + j];
            }
        }
    }
    out
}

fn camp_issue_i8(a: &[i8], b: &[i8], acc: &mut [[i32; 4]; 4]) {
    // One `camp.s8`: 16 k-steps of the 4×4 tile.
    for l in 0..16 {
        for i in 0..4 {
            let av = a[l * 4 + i] as i32;
            for j in 0..4 {
                acc[i][j] = acc[i][j].wrapping_add(av.wrapping_mul(b[l * 4 + j] as i32));
            }
        }
    }
}

fn camp_issue_i4(a: &[i8], b: &[i8], acc: &mut [[i32; 4]; 4]) {
    // One `camp.s4`: 32 k-steps. Operand values must fit 4 bits.
    for l in 0..32 {
        for i in 0..4 {
            let av = a[l * 4 + i] as i32;
            debug_assert!((-8..8).contains(&av), "i4 operand {av} out of range");
            for j in 0..4 {
                let bv = b[l * 4 + j] as i32;
                debug_assert!((-8..8).contains(&bv), "i4 operand {bv} out of range");
                acc[i][j] = acc[i][j].wrapping_add(av.wrapping_mul(bv));
            }
        }
    }
}

fn camp_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    k_step: usize,
    issue: fn(&[i8], &[i8], &mut [[i32; 4]; 4]),
) -> (Vec<i32>, EngineStats) {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    let kk = k.div_ceil(k_step) * k_step;
    let mut c = vec![0i32; m * n];
    let mut stats = EngineStats { macs: (m * n * k) as u64, ..EngineStats::default() };

    for i0 in (0..m).step_by(4) {
        let pa = pack_a_panel(a, m, k, i0, kk);
        stats.packed_bytes += pa.len() as u64;
        for j0 in (0..n).step_by(4) {
            let pb = pack_b_panel(b, k, n, j0, kk);
            if i0 == 0 {
                stats.packed_bytes += pb.len() as u64;
            }
            let mut acc = [[0i32; 4]; 4];
            for l0 in (0..kk).step_by(k_step) {
                issue(&pa[l0 * 4..(l0 + k_step) * 4], &pb[l0 * 4..(l0 + k_step) * 4], &mut acc);
                stats.camp_issues += 1;
                stats.vector_loads += 2;
            }
            stats.vector_stores += 1;
            for (r, row) in acc.iter().enumerate() {
                let i = i0 + r;
                if i >= m {
                    break;
                }
                for (col, &v) in row.iter().enumerate() {
                    let j = j0 + col;
                    if j < n {
                        c[i * n + j] = v;
                    }
                }
            }
        }
    }
    (c, stats)
}

/// Blocked GeMM with the `camp.s8` micro-kernel.
///
/// `a` is row-major m×k, `b` row-major k×n; returns row-major m×n i32.
/// Accumulation wraps, matching the hardware and [`gemm_i32_ref`].
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn camp_gemm_i8(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    camp_gemm(m, n, k, a, b, 16, camp_issue_i8).0
}

/// Like [`camp_gemm_i8`] but also returns instruction-level statistics.
pub fn camp_gemm_i8_with_stats(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
) -> (Vec<i32>, EngineStats) {
    camp_gemm(m, n, k, a, b, 16, camp_issue_i8)
}

/// Blocked GeMM with the `camp.s4` micro-kernel. Operand values must lie
/// in [-8, 7] (4-bit signed); this is checked in debug builds.
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn camp_gemm_i4(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    camp_gemm(m, n, k, a, b, 32, camp_issue_i4).0
}

/// Like [`camp_gemm_i4`] but also returns instruction-level statistics.
pub fn camp_gemm_i4_with_stats(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
) -> (Vec<i32>, EngineStats) {
    camp_gemm(m, n, k, a, b, 32, camp_issue_i4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: i32, modulus: i32, offset: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % modulus + offset) as i8).collect()
    }

    #[test]
    fn small_exact() {
        let a = vec![1i8, 2, 3, 4, 5, 6]; // 2x3
        let b = vec![7i8, 8, 9, 10, 11, 12]; // 3x2
        let c = camp_gemm_i8(2, 2, 3, &a, &b);
        assert_eq!(c, vec![58, 64, 139, 154]);
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(m, n, k) in &[(1, 1, 1), (4, 4, 16), (5, 7, 33), (12, 9, 64), (17, 3, 100), (3, 17, 5)] {
            let a = fill(m * k, 31, 200, -100);
            let b = fill(k * n, 17, 200, -100);
            assert_eq!(
                camp_gemm_i8(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn i4_matches_reference() {
        for &(m, n, k) in &[(4, 4, 32), (6, 10, 45), (9, 5, 96)] {
            let a = fill(m * k, 7, 16, -8);
            let b = fill(k * n, 5, 16, -8);
            assert_eq!(
                camp_gemm_i4(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn stats_count_issues() {
        // 8×8×32: 4 tiles × 2 k-chunks = 8 camp issues, 16 loads
        let a = fill(8 * 32, 3, 10, -5);
        let b = fill(32 * 8, 5, 10, -5);
        let (_, s) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s.camp_issues, 8);
        assert_eq!(s.vector_loads, 16);
        assert_eq!(s.vector_stores, 4);
        assert_eq!(s.macs, 8 * 8 * 32);
    }

    #[test]
    fn i4_needs_half_the_issues() {
        let a = fill(8 * 32, 3, 16, -8);
        let b = fill(32 * 8, 5, 16, -8);
        let (_, s8) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        let (_, s4) = camp_gemm_i4_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s4.camp_issues * 2, s8.camp_issues);
    }

    #[test]
    fn ragged_edges_are_zero_padded_correctly() {
        let (m, n, k) = (5, 5, 17);
        let a = fill(m * k, 11, 40, -20);
        let b = fill(k * n, 13, 40, -20);
        assert_eq!(camp_gemm_i8(m, n, k, &a, &b), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    #[should_panic(expected = "A must be m×k")]
    fn wrong_a_len_panics() {
        let _ = camp_gemm_i8(2, 2, 2, &[0; 3], &[0; 4]);
    }

    #[test]
    fn extreme_values_wrap_like_reference() {
        let a = vec![i8::MIN; 4 * 16];
        let b = vec![i8::MIN; 16 * 4];
        assert_eq!(camp_gemm_i8(4, 4, 16, &a, &b), gemm_i32_ref(4, 4, 16, &a, &b));
    }
}
