//! Host-speed CAMP GeMM engine.
//!
//! This is the downstream-facing library API: blocked integer matrix
//! multiplication whose micro-kernel is the `camp` instruction semantics
//! (§4.1, Fig. 9). Operands are packed exactly the way the simulated
//! kernels pack them — A into 4×k column-major panels, B into k×4
//! row-major panels — and the inner loop consumes 16 (i8) or 32 (i4)
//! k-steps per "issue", mirroring `camp_s64` in the paper's Fig. 9
//! listing. Results are bit-identical to a plain i32 GeMM (wrapping
//! accumulation), which the test-suite and property tests verify.
//!
//! The engine shares `camp-gemm`'s blocked-loop skeleton
//! ([`camp_gemm::loops`]) with the simulated §5.3 driver and packs into
//! a reusable [`PackPool`] instead of allocating per panel, so the hot
//! loop is allocation-free after warm-up ([`CampEngine::pack_allocations`]
//! exposes the growth counter). An opt-in parallel path
//! ([`CampEngine::with_threads`] or the `*_parallel` helpers) splits the
//! row dimension across `std::thread::scope` workers — the Goto split of
//! the macro loop — with one pack-pool arena per worker; its results are
//! bit-identical to the serial path because every 4×4 tile is computed
//! by exactly one worker with identical arithmetic.

use camp_gemm::loops::{run_blocked, BlockPlan, BlockSink};
use camp_gemm::workspace::PackPool;

pub use camp_gemm::gemm_i32_ref;

/// Default row-block height (multiple of the 4-row register tile).
const MC: usize = 128;
/// Default column-block width (multiple of the 4-column register tile).
const NC: usize = 256;
/// Default depth-block size (multiple of both camp k-steps).
const KC: usize = 2048;

/// Per-call statistics of the engine (what the instruction stream would
/// have contained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `camp` issues.
    pub camp_issues: u64,
    /// 64-byte vector loads: operand fetches, plus one C-tile read per
    /// tile visit on k blocks after the first (the read-modify-write
    /// accumulation deep-k shapes require).
    pub vector_loads: u64,
    /// 64-byte vector stores (result tiles, once per tile per k block).
    pub vector_stores: u64,
    /// Bytes moved while packing panels. In the parallel path each
    /// worker packs its own copy of the B block, so this counts the
    /// per-worker (not deduplicated) traffic.
    pub packed_bytes: u64,
    /// Multiply-accumulate operations represented.
    pub macs: u64,
}

impl EngineStats {
    fn merge(&mut self, other: &EngineStats) {
        self.camp_issues += other.camp_issues;
        self.vector_loads += other.vector_loads;
        self.vector_stores += other.vector_stores;
        self.packed_bytes += other.packed_bytes;
        self.macs += other.macs;
    }
}

/// One micro-kernel step: consume `k_step` k-values of a packed 4-row A
/// panel and 4-column B panel into the 4×4 accumulator tile.
type IssueFn = fn(&[i8], &[i8], &mut [[i32; 4]; 4]);

fn camp_issue_i8(a: &[i8], b: &[i8], acc: &mut [[i32; 4]; 4]) {
    // One `camp.s8`: 16 k-steps of the 4×4 tile.
    for l in 0..16 {
        for i in 0..4 {
            let av = a[l * 4 + i] as i32;
            for j in 0..4 {
                acc[i][j] = acc[i][j].wrapping_add(av.wrapping_mul(b[l * 4 + j] as i32));
            }
        }
    }
}

fn camp_issue_i4(a: &[i8], b: &[i8], acc: &mut [[i32; 4]; 4]) {
    // One `camp.s4`: 32 k-steps. Operand values must fit 4 bits.
    for l in 0..32 {
        for i in 0..4 {
            let av = a[l * 4 + i] as i32;
            debug_assert!((-8..8).contains(&av), "i4 operand {av} out of range");
            for j in 0..4 {
                let bv = b[l * 4 + j] as i32;
                debug_assert!((-8..8).contains(&bv), "i4 operand {bv} out of range");
                acc[i][j] = acc[i][j].wrapping_add(av.wrapping_mul(bv));
            }
        }
    }
}

/// Host backend of the shared blocked-loop skeleton: packs blocks into
/// the pool's buffers and runs the camp issue loop as the macro-kernel.
struct HostBackend<'a> {
    a: &'a [i8],
    b: &'a [i8],
    c: &'a mut [i32],
    m: usize,
    n: usize,
    k: usize,
    k_step: usize,
    issue: IssueFn,
    pool: &'a mut PackPool,
    stats: EngineStats,
}

impl BlockSink for HostBackend<'_> {
    fn pack_b(&mut self, jc: usize, ncb: usize, pc: usize, kcb: usize) {
        // nR-column panels, row-major within the panel, zero-padded past
        // the matrix edge — the layout one `camp` B operand expects.
        let panel = kcb * 4;
        let buf = self.pool.b_buffer(ncb / 4 * panel);
        for (q, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
            let j0 = jc + q * 4;
            for l in 0..kcb {
                let lg = pc + l;
                for (cx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                    let j = j0 + cx;
                    *out = if lg < self.k && j < self.n { self.b[lg * self.n + j] } else { 0 };
                }
            }
        }
        self.stats.packed_bytes += (ncb / 4 * panel) as u64;
    }

    fn pack_a(&mut self, ic: usize, mcb: usize, pc: usize, kcb: usize) {
        // mR-row panels, column-major within the panel.
        let panel = kcb * 4;
        let buf = self.pool.a_buffer(mcb / 4 * panel);
        for (p, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
            let i0 = ic + p * 4;
            for l in 0..kcb {
                let lg = pc + l;
                for (rx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                    let i = i0 + rx;
                    *out = if lg < self.k && i < self.m { self.a[i * self.k + lg] } else { 0 };
                }
            }
        }
        self.stats.packed_bytes += (mcb / 4 * panel) as u64;
    }

    fn macro_kernel(
        &mut self,
        ic: usize,
        mcb: usize,
        jc: usize,
        ncb: usize,
        pc: usize,
        kcb: usize,
    ) {
        let panel = kcb * 4;
        let (abuf, bbuf) = self.pool.buffers();
        for q in 0..ncb / 4 {
            let pb = &bbuf[q * panel..(q + 1) * panel];
            for p in 0..mcb / 4 {
                let pa = &abuf[p * panel..(p + 1) * panel];
                let mut acc = [[0i32; 4]; 4];
                for l0 in (0..kcb).step_by(self.k_step) {
                    (self.issue)(
                        &pa[l0 * 4..(l0 + self.k_step) * 4],
                        &pb[l0 * 4..(l0 + self.k_step) * 4],
                        &mut acc,
                    );
                    self.stats.camp_issues += 1;
                    self.stats.vector_loads += 2;
                }
                // k blocks after the first read C back before storing
                // (read-modify-write); the first visit stores into a
                // zeroed C, so the stream has no load there.
                if pc > 0 {
                    self.stats.vector_loads += 1;
                }
                self.stats.vector_stores += 1;
                // accumulate the tile into C (read-modify-write across k
                // blocks), clipping the zero-padded edge
                for (rx, row) in acc.iter().enumerate() {
                    let i = ic + p * 4 + rx;
                    if i >= self.m {
                        break;
                    }
                    for (cx, &v) in row.iter().enumerate() {
                        let j = jc + q * 4 + cx;
                        if j < self.n {
                            let idx = i * self.n + j;
                            self.c[idx] = self.c[idx].wrapping_add(v);
                        }
                    }
                }
            }
        }
    }
}

/// Run the blocked loops for one worker's row range.
#[allow(clippy::too_many_arguments)]
fn gemm_range(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    pool: &mut PackPool,
    k_step: usize,
    issue: IssueFn,
) -> EngineStats {
    let plan = BlockPlan::new(m, n, k, 4, 4, k_step, (MC, NC, KC));
    let mut backend = HostBackend {
        a,
        b,
        c,
        m,
        n,
        k,
        k_step,
        issue,
        pool,
        stats: EngineStats { macs: (m * n * k) as u64, ..EngineStats::default() },
    };
    run_blocked(&plan, &mut backend);
    backend.stats
}

/// Reusable host-speed GeMM engine: owns one pack-pool arena per worker
/// thread, so the packing hot loop allocates nothing once the pools are
/// warm (each call still allocates its m×n result vector).
#[derive(Debug)]
pub struct CampEngine {
    threads: usize,
    pools: Vec<PackPool>,
}

impl Default for CampEngine {
    fn default() -> Self {
        CampEngine::new()
    }
}

impl CampEngine {
    /// Serial engine (one worker).
    pub fn new() -> Self {
        CampEngine::with_threads(1)
    }

    /// Engine running up to `threads` workers over row partitions of the
    /// Goto macro loop; `0` means one worker per available core.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
        CampEngine { threads, pools: Vec::new() }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total pack-buffer growths across all worker arenas. Flat across
    /// same-shape calls ⇒ the hot loop is allocation-free.
    pub fn pack_allocations(&self) -> u64 {
        self.pools.iter().map(PackPool::allocations).sum()
    }

    /// Blocked GeMM with the `camp.s8` micro-kernel; see [`camp_gemm_i8`].
    pub fn gemm_i8(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        self.gemm(m, n, k, a, b, 16, camp_issue_i8).0
    }

    /// [`CampEngine::gemm_i8`] plus instruction-level statistics.
    pub fn gemm_i8_with_stats(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) -> (Vec<i32>, EngineStats) {
        self.gemm(m, n, k, a, b, 16, camp_issue_i8)
    }

    /// Blocked GeMM with the `camp.s4` micro-kernel; see [`camp_gemm_i4`].
    pub fn gemm_i4(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        self.gemm(m, n, k, a, b, 32, camp_issue_i4).0
    }

    /// [`CampEngine::gemm_i4`] plus instruction-level statistics.
    pub fn gemm_i4_with_stats(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) -> (Vec<i32>, EngineStats) {
        self.gemm(m, n, k, a, b, 32, camp_issue_i4)
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
        k_step: usize,
        issue: IssueFn,
    ) -> (Vec<i32>, EngineStats) {
        assert_eq!(a.len(), m * k, "A must be m×k");
        assert_eq!(b.len(), k * n, "B must be k×n");
        let mut c = vec![0i32; m * n];
        if m == 0 || n == 0 || k == 0 {
            return (c, EngineStats::default());
        }

        // Row partition of the macro loop: chunks are multiples of the
        // 4-row tile so every worker owns whole register tiles, which
        // (with wrapping i32 accumulation) makes the result bit-identical
        // to the serial path for any worker count.
        let rows_per = m.div_ceil(self.threads).div_ceil(4) * 4;
        let workers = m.div_ceil(rows_per);
        while self.pools.len() < workers {
            self.pools.push(PackPool::new());
        }

        let mut total = EngineStats::default();
        if workers == 1 {
            total.merge(&gemm_range(m, n, k, a, b, &mut c, &mut self.pools[0], k_step, issue));
            return (c, total);
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for ((c_chunk, a_chunk), pool) in
                c.chunks_mut(rows_per * n).zip(a.chunks(rows_per * k)).zip(self.pools.iter_mut())
            {
                let m_local = c_chunk.len() / n;
                handles.push(scope.spawn(move || {
                    gemm_range(m_local, n, k, a_chunk, b, c_chunk, pool, k_step, issue)
                }));
            }
            for h in handles {
                total.merge(&h.join().expect("GeMM worker panicked"));
            }
        });
        (c, total)
    }
}

/// Blocked GeMM with the `camp.s8` micro-kernel.
///
/// `a` is row-major m×k, `b` row-major k×n; returns row-major m×n i32.
/// Accumulation wraps, matching the hardware and [`gemm_i32_ref`].
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn camp_gemm_i8(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    CampEngine::new().gemm_i8(m, n, k, a, b)
}

/// Like [`camp_gemm_i8`] but also returns instruction-level statistics.
pub fn camp_gemm_i8_with_stats(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
) -> (Vec<i32>, EngineStats) {
    CampEngine::new().gemm_i8_with_stats(m, n, k, a, b)
}

/// Blocked GeMM with the `camp.s4` micro-kernel. Operand values must lie
/// in [-8, 7] (4-bit signed); this is checked in debug builds.
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn camp_gemm_i4(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    CampEngine::new().gemm_i4(m, n, k, a, b)
}

/// Like [`camp_gemm_i4`] but also returns instruction-level statistics.
pub fn camp_gemm_i4_with_stats(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
) -> (Vec<i32>, EngineStats) {
    CampEngine::new().gemm_i4_with_stats(m, n, k, a, b)
}

/// [`camp_gemm_i8`] across `threads` host cores (`0` = all cores).
/// Bit-identical to the serial result.
pub fn camp_gemm_i8_parallel(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    threads: usize,
) -> Vec<i32> {
    CampEngine::with_threads(threads).gemm_i8(m, n, k, a, b)
}

/// [`camp_gemm_i4`] across `threads` host cores (`0` = all cores).
/// Bit-identical to the serial result.
pub fn camp_gemm_i4_parallel(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    threads: usize,
) -> Vec<i32> {
    CampEngine::with_threads(threads).gemm_i4(m, n, k, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: i32, modulus: i32, offset: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % modulus + offset) as i8).collect()
    }

    #[test]
    fn small_exact() {
        let a = vec![1i8, 2, 3, 4, 5, 6]; // 2x3
        let b = vec![7i8, 8, 9, 10, 11, 12]; // 3x2
        let c = camp_gemm_i8(2, 2, 3, &a, &b);
        assert_eq!(c, vec![58, 64, 139, 154]);
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(m, n, k) in
            &[(1, 1, 1), (4, 4, 16), (5, 7, 33), (12, 9, 64), (17, 3, 100), (3, 17, 5)]
        {
            let a = fill(m * k, 31, 200, -100);
            let b = fill(k * n, 17, 200, -100);
            assert_eq!(
                camp_gemm_i8(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn i4_matches_reference() {
        for &(m, n, k) in &[(4, 4, 32), (6, 10, 45), (9, 5, 96)] {
            let a = fill(m * k, 7, 16, -8);
            let b = fill(k * n, 5, 16, -8);
            assert_eq!(
                camp_gemm_i4(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn stats_count_issues() {
        // 8×8×32: 4 tiles × 2 k-chunks = 8 camp issues, 16 loads
        let a = fill(8 * 32, 3, 10, -5);
        let b = fill(32 * 8, 5, 10, -5);
        let (_, s) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s.camp_issues, 8);
        assert_eq!(s.vector_loads, 16);
        assert_eq!(s.vector_stores, 4);
        assert_eq!(s.macs, 8 * 8 * 32);
    }

    #[test]
    fn i4_needs_half_the_issues() {
        let a = fill(8 * 32, 3, 16, -8);
        let b = fill(32 * 8, 5, 16, -8);
        let (_, s8) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        let (_, s4) = camp_gemm_i4_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s4.camp_issues * 2, s8.camp_issues);
    }

    #[test]
    fn ragged_edges_are_zero_padded_correctly() {
        let (m, n, k) = (5, 5, 17);
        let a = fill(m * k, 11, 40, -20);
        let b = fill(k * n, 13, 40, -20);
        assert_eq!(camp_gemm_i8(m, n, k, &a, &b), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    #[should_panic(expected = "A must be m×k")]
    fn wrong_a_len_panics() {
        let _ = camp_gemm_i8(2, 2, 2, &[0; 3], &[0; 4]);
    }

    #[test]
    fn extreme_values_wrap_like_reference() {
        let a = vec![i8::MIN; 4 * 16];
        let b = vec![i8::MIN; 16 * 4];
        assert_eq!(camp_gemm_i8(4, 4, 16, &a, &b), gemm_i32_ref(4, 4, 16, &a, &b));
    }

    #[test]
    fn multi_block_shapes_match_reference() {
        // exceed MC/NC/KC so every loop level blocks at least twice
        let (m, n, k) = (2 * super::MC + 5, super::NC + 9, super::KC + 33);
        let a = fill(m * k, 31, 15, -8);
        let b = fill(k * n, 17, 15, -8);
        assert_eq!(camp_gemm_i8(m, n, k, &a, &b), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (m, n, k) = (37, 29, 65);
        let a = fill(m * k, 13, 200, -100);
        let b = fill(k * n, 7, 200, -100);
        let serial = camp_gemm_i8(m, n, k, &a, &b);
        for threads in [2, 3, 4, 16, 64] {
            assert_eq!(
                camp_gemm_i8_parallel(m, n, k, &a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
        let a4 = fill(m * k, 13, 16, -8);
        let b4 = fill(k * n, 7, 16, -8);
        assert_eq!(camp_gemm_i4_parallel(m, n, k, &a4, &b4, 3), camp_gemm_i4(m, n, k, &a4, &b4));
    }

    #[test]
    fn more_threads_than_row_tiles_is_fine() {
        let (m, n, k) = (6, 4, 16);
        let a = fill(m * k, 3, 10, -5);
        let b = fill(k * n, 5, 10, -5);
        assert_eq!(camp_gemm_i8_parallel(m, n, k, &a, &b, 32), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    fn hot_loop_is_allocation_free_after_warm_up() {
        let (m, n, k) = (64, 48, 160);
        let a = fill(m * k, 9, 30, -15);
        let b = fill(k * n, 11, 30, -15);
        let mut engine = CampEngine::new();
        let first = engine.gemm_i8(m, n, k, &a, &b);
        let warm = engine.pack_allocations();
        assert!(warm > 0, "first call must populate the pool");
        for _ in 0..5 {
            let again = engine.gemm_i8(m, n, k, &a, &b);
            assert_eq!(again, first);
        }
        assert_eq!(engine.pack_allocations(), warm, "steady state must not allocate");
    }

    #[test]
    fn deep_k_stats_count_rmw_traffic() {
        // one 4×4 tile, k spanning two KC blocks: the second block's
        // tile visit adds a C read; stores happen once per visit
        let k = 2 * super::KC;
        let a = fill(4 * k, 3, 16, -8);
        let b = fill(k * 4, 5, 16, -8);
        let (c, s) = camp_gemm_i8_with_stats(4, 4, k, &a, &b);
        assert_eq!(c, gemm_i32_ref(4, 4, k, &a, &b));
        assert_eq!(s.camp_issues, (k / 16) as u64);
        assert_eq!(s.vector_stores, 2);
        assert_eq!(s.vector_loads, 2 * s.camp_issues + 1);
    }

    #[test]
    fn default_engine_is_usable() {
        // Default must normalize like new(); a zero worker count would
        // divide by zero in the row partition.
        let a = fill(4 * 4, 3, 10, -5);
        let b = fill(4 * 4, 5, 10, -5);
        assert_eq!(CampEngine::default().gemm_i8(4, 4, 4, &a, &b), gemm_i32_ref(4, 4, 4, &a, &b));
    }

    #[test]
    fn parallel_stats_preserve_totals() {
        let (m, n, k) = (32, 16, 64);
        let a = fill(m * k, 3, 10, -5);
        let b = fill(k * n, 5, 10, -5);
        let mut eng = CampEngine::with_threads(4);
        let (_, s) = eng.gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(s.macs, (m * n * k) as u64);
        // every 4×4 tile is issued by exactly one worker
        let (_, serial) = camp_gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(s.camp_issues, serial.camp_issues);
        assert_eq!(s.vector_stores, serial.vector_stores);
    }
}
