//! Host-speed CAMP GeMM engine.
//!
//! This is the downstream-facing library API: blocked integer matrix
//! multiplication whose micro-kernel is the `camp` instruction semantics
//! (§4.1, Fig. 9). Operands are packed exactly the way the simulated
//! kernels pack them — A into 4×k column-major panels, B into k×4
//! row-major panels — and the inner loop consumes 16 (i8) or 32 (i4)
//! k-steps per "issue", mirroring `camp_s64` in the paper's Fig. 9
//! listing. Results are bit-identical to a plain i32 GeMM (wrapping
//! accumulation), which the test-suite and property tests verify.
//!
//! The engine shares `camp-gemm`'s blocked-loop skeleton
//! ([`camp_gemm::loops`]) with the simulated §5.3 driver and packs into
//! a reusable [`PackPool`] instead of allocating per panel, so the hot
//! loop is allocation-free after warm-up ([`CampEngine::pack_allocations`]
//! exposes the growth counter). An opt-in parallel path
//! ([`CampEngine::with_threads`] or the `*_parallel` helpers) splits the
//! row dimension across `std::thread::scope` workers — the Goto split of
//! the macro loop. B is packed exactly once per call into a shared
//! read-only panel that every worker consumes (workers no longer pack
//! private copies), and results are bit-identical to the serial path
//! because every 4×4 tile is computed by exactly one worker with
//! identical arithmetic.
//!
//! # Batched GeMM
//!
//! Transformer attention is dominated by *many small* GeMMs per step —
//! per-head (s×dₕ)·(dₕ×s) score and (s×s)·(s×dₕ) context products,
//! 12–20 heads per layer (§5.2, Fig. 14) — shapes where per-call setup
//! and operand re-packing swamp compute. [`CampEngine::gemm_i8_batch`] /
//! [`CampEngine::gemm_i4_batch`] take a slice of [`GemmProblem`]
//! descriptors and amortize all of it:
//!
//! * **B deduplication** — problems sharing one weight matrix (the QKV
//!   projections across heads and layers) pack B once into a pool-owned
//!   panel reused across the whole batch;
//! * **cross-item parallelism** — small problems are distributed across
//!   workers whole (one spawn per batch, not per call); problems above
//!   a MAC-count threshold fall back to the row-partition split;
//! * **bit-identity** — batch results equal looping the per-call API
//!   over the same problems, element for element.

use camp_gemm::batch::{packed_b_bytes, packed_b_offset};
use camp_gemm::loops::{for_each_b_block, run_blocked, BlockPlan, BlockSink};
use camp_gemm::workspace::{PackPool, PanelId};
use std::collections::HashMap;

pub use camp_gemm::batch::GemmProblem;
pub use camp_gemm::gemm_i32_ref;

/// Default row-block height (multiple of the 4-row register tile).
const MC: usize = 128;
/// Default column-block width (multiple of the 4-column register tile).
const NC: usize = 256;
/// Default depth-block size (multiple of both camp k-steps).
const KC: usize = 2048;

/// MAC count above which a batch item is row-partitioned across all
/// workers instead of sharing one worker with other items. Below it,
/// the per-item thread fan-out costs more than it buys (the attention
/// score/context products are ~1 M MACs); above it, a single problem
/// has enough rows to keep every worker busy on its own.
const BATCH_ROW_SPLIT_MACS: u64 = 8 * 1024 * 1024;

/// Per-call statistics of the engine (what the instruction stream would
/// have contained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `camp` issues.
    pub camp_issues: u64,
    /// 64-byte vector loads: operand fetches, plus one C-tile read per
    /// tile visit on k blocks after the first (the read-modify-write
    /// accumulation deep-k shapes require).
    pub vector_loads: u64,
    /// 64-byte vector stores (result tiles, once per tile per k block).
    pub vector_stores: u64,
    /// Bytes moved while packing panels, deduplicated: the parallel
    /// path packs B once into a shared read-only panel (not once per
    /// worker), and the batched API packs each unique B operand once
    /// per call no matter how many problems consume it.
    pub packed_bytes: u64,
    /// Multiply-accumulate operations represented.
    pub macs: u64,
}

impl EngineStats {
    fn merge(&mut self, other: &EngineStats) {
        self.camp_issues += other.camp_issues;
        self.vector_loads += other.vector_loads;
        self.vector_stores += other.vector_stores;
        self.packed_bytes += other.packed_bytes;
        self.macs += other.macs;
    }
}

/// One micro-kernel step: consume `k_step` k-values of a packed 4-row A
/// panel and 4-column B panel into the 4×4 accumulator tile.
type IssueFn = fn(&[i8], &[i8], &mut [[i32; 4]; 4]);

fn camp_issue_i8(a: &[i8], b: &[i8], acc: &mut [[i32; 4]; 4]) {
    // One `camp.s8`: 16 k-steps of the 4×4 tile.
    for l in 0..16 {
        for i in 0..4 {
            let av = a[l * 4 + i] as i32;
            for j in 0..4 {
                acc[i][j] = acc[i][j].wrapping_add(av.wrapping_mul(b[l * 4 + j] as i32));
            }
        }
    }
}

fn camp_issue_i4(a: &[i8], b: &[i8], acc: &mut [[i32; 4]; 4]) {
    // One `camp.s4`: 32 k-steps. Operand values must fit 4 bits.
    for l in 0..32 {
        for i in 0..4 {
            let av = a[l * 4 + i] as i32;
            debug_assert!((-8..8).contains(&av), "i4 operand {av} out of range");
            for j in 0..4 {
                let bv = b[l * 4 + j] as i32;
                debug_assert!((-8..8).contains(&bv), "i4 operand {bv} out of range");
                acc[i][j] = acc[i][j].wrapping_add(av.wrapping_mul(bv));
            }
        }
    }
}

/// Pack a block of row-major B starting at column `jc`, depth `pc` into
/// nR-column panels (row-major within the panel), zero-padded past the
/// matrix edge — the layout one `camp` B operand expects. `buf` must
/// hold exactly `ncb * kcb` bytes; its length determines the block
/// width.
fn pack_b_block(buf: &mut [i8], b: &[i8], n: usize, k: usize, jc: usize, pc: usize, kcb: usize) {
    let panel = kcb * 4;
    for (q, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
        let j0 = jc + q * 4;
        for l in 0..kcb {
            let lg = pc + l;
            for (cx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                let j = j0 + cx;
                *out = if lg < k && j < n { b[lg * n + j] } else { 0 };
            }
        }
    }
}

/// Pack every (jc, pc) block of B in the blocked loops' visit order
/// (shared with [`run_blocked`] via [`for_each_b_block`]) into `dst`
/// (sized by [`packed_b_bytes`]). Each block's bytes are bit-identical
/// to what per-block packing produces, so a macro-kernel reading at
/// [`packed_b_offset`] computes exactly the serial result.
fn prepack_b(dst: &mut [i8], b: &[i8], n: usize, k: usize, plan: &BlockPlan) {
    for_each_b_block(plan, |jc, ncb, pc, kcb| {
        let off = packed_b_offset(plan.kp, jc, ncb, pc);
        pack_b_block(&mut dst[off..off + ncb * kcb], b, n, k, jc, pc, kcb);
    });
}

/// Host backend of the shared blocked-loop skeleton: packs blocks into
/// the pool's buffers and runs the camp issue loop as the macro-kernel.
/// With `shared_b` set, B arrives fully pre-packed (see [`prepack_b`])
/// and the per-block B pack becomes a no-op.
struct HostBackend<'a> {
    a: &'a [i8],
    b: &'a [i8],
    c: &'a mut [i32],
    m: usize,
    n: usize,
    k: usize,
    /// Padded depth of the plan (for shared-panel block offsets).
    kp: usize,
    k_step: usize,
    issue: IssueFn,
    pool: &'a mut PackPool,
    shared_b: Option<&'a [i8]>,
    stats: EngineStats,
}

impl BlockSink for HostBackend<'_> {
    fn pack_b(&mut self, jc: usize, ncb: usize, pc: usize, kcb: usize) {
        if self.shared_b.is_some() {
            // B was packed once for all workers/batch items; the pack
            // traffic is accounted exactly once by the caller.
            return;
        }
        let buf = self.pool.b_buffer(ncb * kcb);
        pack_b_block(buf, self.b, self.n, self.k, jc, pc, kcb);
        self.stats.packed_bytes += (ncb * kcb) as u64;
    }

    fn pack_a(&mut self, ic: usize, mcb: usize, pc: usize, kcb: usize) {
        // mR-row panels, column-major within the panel.
        let panel = kcb * 4;
        let buf = self.pool.a_buffer(mcb / 4 * panel);
        for (p, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
            let i0 = ic + p * 4;
            for l in 0..kcb {
                let lg = pc + l;
                for (rx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                    let i = i0 + rx;
                    *out = if lg < self.k && i < self.m { self.a[i * self.k + lg] } else { 0 };
                }
            }
        }
        self.stats.packed_bytes += (mcb / 4 * panel) as u64;
    }

    fn macro_kernel(
        &mut self,
        ic: usize,
        mcb: usize,
        jc: usize,
        ncb: usize,
        pc: usize,
        kcb: usize,
    ) {
        let panel = kcb * 4;
        let (abuf, own_b) = self.pool.buffers();
        let bbuf = match self.shared_b {
            Some(packed) => {
                let off = packed_b_offset(self.kp, jc, ncb, pc);
                &packed[off..off + ncb * kcb]
            }
            None => own_b,
        };
        for q in 0..ncb / 4 {
            let pb = &bbuf[q * panel..(q + 1) * panel];
            for p in 0..mcb / 4 {
                let pa = &abuf[p * panel..(p + 1) * panel];
                let mut acc = [[0i32; 4]; 4];
                for l0 in (0..kcb).step_by(self.k_step) {
                    (self.issue)(
                        &pa[l0 * 4..(l0 + self.k_step) * 4],
                        &pb[l0 * 4..(l0 + self.k_step) * 4],
                        &mut acc,
                    );
                    self.stats.camp_issues += 1;
                    self.stats.vector_loads += 2;
                }
                // k blocks after the first read C back before storing
                // (read-modify-write); the first visit stores into a
                // zeroed C, so the stream has no load there.
                if pc > 0 {
                    self.stats.vector_loads += 1;
                }
                self.stats.vector_stores += 1;
                // accumulate the tile into C (read-modify-write across k
                // blocks), clipping the zero-padded edge
                for (rx, row) in acc.iter().enumerate() {
                    let i = ic + p * 4 + rx;
                    if i >= self.m {
                        break;
                    }
                    for (cx, &v) in row.iter().enumerate() {
                        let j = jc + q * 4 + cx;
                        if j < self.n {
                            let idx = i * self.n + j;
                            self.c[idx] = self.c[idx].wrapping_add(v);
                        }
                    }
                }
            }
        }
    }
}

/// Run the blocked loops for one worker's row range. With `shared_b`,
/// B is consumed from the caller's pre-packed panel.
#[allow(clippy::too_many_arguments)]
fn gemm_range(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    pool: &mut PackPool,
    k_step: usize,
    issue: IssueFn,
    shared_b: Option<&[i8]>,
) -> EngineStats {
    let plan = BlockPlan::new(m, n, k, 4, 4, k_step, (MC, NC, KC));
    let mut backend = HostBackend {
        a,
        b,
        c,
        m,
        n,
        k,
        kp: plan.kp,
        k_step,
        issue,
        pool,
        shared_b,
        stats: EngineStats { macs: (m * n * k) as u64, ..EngineStats::default() },
    };
    run_blocked(&plan, &mut backend);
    backend.stats
}

/// Worker row-chunk height (a multiple of the 4-row register tile, so
/// every worker owns whole tiles) and the resulting worker count for an
/// m-row problem across up to `threads` workers. The single source of
/// truth for the row split: `gemm` uses the worker count to decide
/// whether to pre-pack a shared B panel, and [`gemm_partitioned`] uses
/// the same numbers to chunk the work.
fn row_partition(m: usize, threads: usize) -> (usize, usize) {
    let rows_per = m.div_ceil(threads).div_ceil(4) * 4;
    (rows_per, m.div_ceil(rows_per))
}

/// Row partition of the macro loop across up to `threads` workers:
/// chunks are multiples of the 4-row tile so every worker owns whole
/// register tiles, which (with wrapping i32 accumulation) makes the
/// result bit-identical to the serial path for any worker count.
#[allow(clippy::too_many_arguments)]
fn gemm_partitioned(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    pools: &mut Vec<PackPool>,
    threads: usize,
    k_step: usize,
    issue: IssueFn,
    shared_b: Option<&[i8]>,
) -> EngineStats {
    let (rows_per, workers) = row_partition(m, threads);
    while pools.len() < workers {
        pools.push(PackPool::new());
    }
    let mut total = EngineStats::default();
    if workers == 1 {
        total.merge(&gemm_range(m, n, k, a, b, c, &mut pools[0], k_step, issue, shared_b));
        return total;
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ((c_chunk, a_chunk), pool) in
            c.chunks_mut(rows_per * n).zip(a.chunks(rows_per * k)).zip(pools.iter_mut())
        {
            let m_local = c_chunk.len() / n;
            handles.push(scope.spawn(move || {
                gemm_range(m_local, n, k, a_chunk, b, c_chunk, pool, k_step, issue, shared_b)
            }));
        }
        for h in handles {
            total.merge(&h.join().expect("GeMM worker panicked"));
        }
    });
    total
}

/// Reusable host-speed GeMM engine: owns one pack-pool arena per worker
/// thread plus a shared arena for pre-packed B panels, so the packing
/// hot loop allocates nothing once the pools are warm (each call still
/// allocates its m×n result vector).
#[derive(Debug)]
pub struct CampEngine {
    threads: usize,
    pools: Vec<PackPool>,
    /// Arena for B panels shared read-only across workers: the parallel
    /// path's single packed B, and the batch path's deduplicated B set.
    shared: PackPool,
}

impl Default for CampEngine {
    fn default() -> Self {
        CampEngine::new()
    }
}

impl CampEngine {
    /// Serial engine (one worker).
    pub fn new() -> Self {
        CampEngine::with_threads(1)
    }

    /// Engine running up to `threads` workers over row partitions of the
    /// Goto macro loop; `0` means one worker per available core.
    pub fn with_threads(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            threads
        };
        CampEngine { threads, pools: Vec::new(), shared: PackPool::new() }
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total pack-buffer growths across all arenas. Flat across
    /// same-shape calls ⇒ the hot loop is allocation-free.
    pub fn pack_allocations(&self) -> u64 {
        self.pools.iter().map(PackPool::allocations).sum::<u64>() + self.shared.allocations()
    }

    /// Blocked GeMM with the `camp.s8` micro-kernel; see [`camp_gemm_i8`].
    pub fn gemm_i8(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        self.gemm(m, n, k, a, b, 16, camp_issue_i8).0
    }

    /// [`CampEngine::gemm_i8`] plus instruction-level statistics.
    pub fn gemm_i8_with_stats(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) -> (Vec<i32>, EngineStats) {
        self.gemm(m, n, k, a, b, 16, camp_issue_i8)
    }

    /// Blocked GeMM with the `camp.s4` micro-kernel; see [`camp_gemm_i4`].
    pub fn gemm_i4(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        self.gemm(m, n, k, a, b, 32, camp_issue_i4).0
    }

    /// [`CampEngine::gemm_i4`] plus instruction-level statistics.
    pub fn gemm_i4_with_stats(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) -> (Vec<i32>, EngineStats) {
        self.gemm(m, n, k, a, b, 32, camp_issue_i4)
    }

    /// Run a batch of independent `camp.s8` GeMMs in one call; see the
    /// [module docs](self) for what the batch amortizes. Returns one
    /// row-major C per problem, in input order, bit-identical to calling
    /// [`CampEngine::gemm_i8`] per problem. Zero-dimension problems
    /// yield their natural degenerate result (empty, or all-zero when
    /// only k is 0).
    ///
    /// # Panics
    /// Panics if any problem's slice lengths do not match its
    /// dimensions.
    pub fn gemm_i8_batch(&mut self, problems: &[GemmProblem<'_>]) -> Vec<Vec<i32>> {
        self.gemm_batch(problems, 16, camp_issue_i8).0
    }

    /// [`CampEngine::gemm_i8_batch`] plus merged statistics.
    /// `packed_bytes` counts each unique B operand once.
    pub fn gemm_i8_batch_with_stats(
        &mut self,
        problems: &[GemmProblem<'_>],
    ) -> (Vec<Vec<i32>>, EngineStats) {
        self.gemm_batch(problems, 16, camp_issue_i8)
    }

    /// Batched [`CampEngine::gemm_i4`]; see [`CampEngine::gemm_i8_batch`].
    /// Operand values must lie in [-8, 7] (checked in debug builds).
    pub fn gemm_i4_batch(&mut self, problems: &[GemmProblem<'_>]) -> Vec<Vec<i32>> {
        self.gemm_batch(problems, 32, camp_issue_i4).0
    }

    /// [`CampEngine::gemm_i4_batch`] plus merged statistics.
    pub fn gemm_i4_batch_with_stats(
        &mut self,
        problems: &[GemmProblem<'_>],
    ) -> (Vec<Vec<i32>>, EngineStats) {
        self.gemm_batch(problems, 32, camp_issue_i4)
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
        k_step: usize,
        issue: IssueFn,
    ) -> (Vec<i32>, EngineStats) {
        assert_eq!(a.len(), m * k, "A must be m×k");
        assert_eq!(b.len(), k * n, "B must be k×n");
        let mut c = vec![0i32; m * n];
        if m == 0 || n == 0 || k == 0 {
            return (c, EngineStats::default());
        }

        let mut total = EngineStats::default();
        let (_, workers) = row_partition(m, self.threads);
        let panel_id = if workers > 1 {
            // Pack B once into a shared read-only panel instead of once
            // per worker — the packing traffic below is everything the
            // whole call moves for B.
            let plan = BlockPlan::new(m, n, k, 4, 4, k_step, (MC, NC, KC));
            self.shared.reset_panels();
            let id = self.shared.alloc_panel(packed_b_bytes(&plan));
            prepack_b(self.shared.panel_mut(id), b, n, k, &plan);
            total.packed_bytes += packed_b_bytes(&plan) as u64;
            Some(id)
        } else {
            None
        };
        let shared_b = panel_id.map(|id| self.shared.panel(id));
        total.merge(&gemm_partitioned(
            m,
            n,
            k,
            a,
            b,
            &mut c,
            &mut self.pools,
            self.threads,
            k_step,
            issue,
            shared_b,
        ));
        (c, total)
    }

    fn gemm_batch(
        &mut self,
        problems: &[GemmProblem<'_>],
        k_step: usize,
        issue: IssueFn,
    ) -> (Vec<Vec<i32>>, EngineStats) {
        for (i, p) in problems.iter().enumerate() {
            assert_eq!(p.a.len(), p.m * p.k, "problem {i}: A must be m×k");
            assert_eq!(p.b.len(), p.k * p.n, "problem {i}: B must be k×n");
        }
        let mut total = EngineStats::default();

        // --- B deduplication: pack each unique operand exactly once ---
        self.shared.reset_panels();
        let mut panel_of: HashMap<_, PanelId> = HashMap::new();
        let mut panel_ids: Vec<Option<PanelId>> = Vec::with_capacity(problems.len());
        for p in problems {
            if p.is_degenerate() {
                panel_ids.push(None);
                continue;
            }
            let plan = BlockPlan::new(p.m, p.n, p.k, 4, 4, k_step, (MC, NC, KC));
            let id = *panel_of.entry(p.b_key()).or_insert_with(|| {
                let id = self.shared.alloc_panel(packed_b_bytes(&plan));
                prepack_b(self.shared.panel_mut(id), p.b, p.n, p.k, &plan);
                total.packed_bytes += packed_b_bytes(&plan) as u64;
                id
            });
            panel_ids.push(Some(id));
        }

        // Degenerate results exist up front (all-zero when only k is 0,
        // empty otherwise); real results are filled below.
        let mut results: Vec<Vec<i32>> = problems
            .iter()
            .map(|p| if p.is_degenerate() { vec![0i32; p.m * p.n] } else { Vec::new() })
            .collect();

        // --- large problems: row-partition each across all workers ---
        for (i, p) in problems.iter().enumerate() {
            if p.is_degenerate() || p.macs() < BATCH_ROW_SPLIT_MACS {
                continue;
            }
            let mut c = vec![0i32; p.m * p.n];
            let shared_b = self.shared.panel(panel_ids[i].expect("non-degenerate"));
            total.merge(&gemm_partitioned(
                p.m,
                p.n,
                p.k,
                p.a,
                p.b,
                &mut c,
                &mut self.pools,
                self.threads,
                k_step,
                issue,
                Some(shared_b),
            ));
            results[i] = c;
        }

        // --- small problems: parallelism across batch items ---
        let mut small: Vec<usize> = (0..problems.len())
            .filter(|&i| !problems[i].is_degenerate() && problems[i].macs() < BATCH_ROW_SPLIT_MACS)
            .collect();
        if small.is_empty() {
            return (results, total);
        }
        // longest-processing-time greedy: biggest problems first onto
        // the least-loaded worker
        small.sort_by_key(|&i| std::cmp::Reverse(problems[i].macs()));
        let workers = self.threads.min(small.len()).max(1);
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); workers];
        let mut load = vec![0u64; workers];
        for i in small {
            let w = (0..workers).min_by_key(|&w| load[w]).expect("workers > 0");
            assignment[w].push(i);
            load[w] += problems[i].macs();
        }
        while self.pools.len() < workers {
            self.pools.push(PackPool::new());
        }
        let shared = &self.shared;
        let panel_ids = &panel_ids;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (list, pool) in assignment.iter().zip(self.pools.iter_mut()) {
                handles.push(scope.spawn(move || {
                    let mut out = Vec::with_capacity(list.len());
                    for &i in list {
                        let p = &problems[i];
                        let mut c = vec![0i32; p.m * p.n];
                        let panel = shared.panel(panel_ids[i].expect("non-degenerate"));
                        let stats = gemm_range(
                            p.m,
                            p.n,
                            p.k,
                            p.a,
                            p.b,
                            &mut c,
                            pool,
                            k_step,
                            issue,
                            Some(panel),
                        );
                        out.push((i, c, stats));
                    }
                    out
                }));
            }
            for h in handles {
                for (i, c, stats) in h.join().expect("batch worker panicked") {
                    results[i] = c;
                    total.merge(&stats);
                }
            }
        });
        (results, total)
    }
}

/// Blocked GeMM with the `camp.s8` micro-kernel.
///
/// `a` is row-major m×k, `b` row-major k×n; returns row-major m×n i32.
/// Accumulation wraps, matching the hardware and [`gemm_i32_ref`].
/// Zero-dimension problems return their degenerate result (empty, or
/// all-zero when only k is 0) instead of panicking.
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn camp_gemm_i8(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    CampEngine::new().gemm_i8(m, n, k, a, b)
}

/// Like [`camp_gemm_i8`] but also returns instruction-level statistics.
pub fn camp_gemm_i8_with_stats(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
) -> (Vec<i32>, EngineStats) {
    CampEngine::new().gemm_i8_with_stats(m, n, k, a, b)
}

/// Blocked GeMM with the `camp.s4` micro-kernel. Operand values must lie
/// in [-8, 7] (4-bit signed); this is checked in debug builds.
///
/// # Panics
/// Panics if slice lengths do not match the dimensions.
pub fn camp_gemm_i4(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    CampEngine::new().gemm_i4(m, n, k, a, b)
}

/// Like [`camp_gemm_i4`] but also returns instruction-level statistics.
pub fn camp_gemm_i4_with_stats(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
) -> (Vec<i32>, EngineStats) {
    CampEngine::new().gemm_i4_with_stats(m, n, k, a, b)
}

/// [`camp_gemm_i8`] across `threads` host cores (`0` = all cores).
/// Bit-identical to the serial result.
pub fn camp_gemm_i8_parallel(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    threads: usize,
) -> Vec<i32> {
    CampEngine::with_threads(threads).gemm_i8(m, n, k, a, b)
}

/// [`camp_gemm_i4`] across `threads` host cores (`0` = all cores).
/// Bit-identical to the serial result.
pub fn camp_gemm_i4_parallel(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    threads: usize,
) -> Vec<i32> {
    CampEngine::with_threads(threads).gemm_i4(m, n, k, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: i32, modulus: i32, offset: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % modulus + offset) as i8).collect()
    }

    #[test]
    fn small_exact() {
        let a = vec![1i8, 2, 3, 4, 5, 6]; // 2x3
        let b = vec![7i8, 8, 9, 10, 11, 12]; // 3x2
        let c = camp_gemm_i8(2, 2, 3, &a, &b);
        assert_eq!(c, vec![58, 64, 139, 154]);
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(m, n, k) in
            &[(1, 1, 1), (4, 4, 16), (5, 7, 33), (12, 9, 64), (17, 3, 100), (3, 17, 5)]
        {
            let a = fill(m * k, 31, 200, -100);
            let b = fill(k * n, 17, 200, -100);
            assert_eq!(
                camp_gemm_i8(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn i4_matches_reference() {
        for &(m, n, k) in &[(4, 4, 32), (6, 10, 45), (9, 5, 96)] {
            let a = fill(m * k, 7, 16, -8);
            let b = fill(k * n, 5, 16, -8);
            assert_eq!(
                camp_gemm_i4(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn stats_count_issues() {
        // 8×8×32: 4 tiles × 2 k-chunks = 8 camp issues, 16 loads
        let a = fill(8 * 32, 3, 10, -5);
        let b = fill(32 * 8, 5, 10, -5);
        let (_, s) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s.camp_issues, 8);
        assert_eq!(s.vector_loads, 16);
        assert_eq!(s.vector_stores, 4);
        assert_eq!(s.macs, 8 * 8 * 32);
    }

    #[test]
    fn i4_needs_half_the_issues() {
        let a = fill(8 * 32, 3, 16, -8);
        let b = fill(32 * 8, 5, 16, -8);
        let (_, s8) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        let (_, s4) = camp_gemm_i4_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s4.camp_issues * 2, s8.camp_issues);
    }

    #[test]
    fn ragged_edges_are_zero_padded_correctly() {
        let (m, n, k) = (5, 5, 17);
        let a = fill(m * k, 11, 40, -20);
        let b = fill(k * n, 13, 40, -20);
        assert_eq!(camp_gemm_i8(m, n, k, &a, &b), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    #[should_panic(expected = "A must be m×k")]
    fn wrong_a_len_panics() {
        let _ = camp_gemm_i8(2, 2, 2, &[0; 3], &[0; 4]);
    }

    #[test]
    fn zero_dimensions_return_degenerate_results() {
        // no dimension combination may panic, serial or parallel
        assert!(camp_gemm_i8(0, 4, 4, &[], &[0; 16]).is_empty());
        assert!(camp_gemm_i8(4, 0, 4, &[0; 16], &[]).is_empty());
        assert_eq!(camp_gemm_i8(4, 4, 0, &[], &[]), vec![0; 16]);
        assert!(camp_gemm_i8(0, 0, 0, &[], &[]).is_empty());
        assert_eq!(camp_gemm_i8_parallel(4, 4, 0, &[], &[], 8), vec![0; 16]);
        assert_eq!(camp_gemm_i4(4, 4, 0, &[], &[]), vec![0; 16]);
        let (_, s) = camp_gemm_i8_with_stats(0, 4, 4, &[], &[0; 16]);
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn extreme_values_wrap_like_reference() {
        let a = vec![i8::MIN; 4 * 16];
        let b = vec![i8::MIN; 16 * 4];
        assert_eq!(camp_gemm_i8(4, 4, 16, &a, &b), gemm_i32_ref(4, 4, 16, &a, &b));
    }

    #[test]
    fn multi_block_shapes_match_reference() {
        // exceed MC/NC/KC so every loop level blocks at least twice
        let (m, n, k) = (2 * super::MC + 5, super::NC + 9, super::KC + 33);
        let a = fill(m * k, 31, 15, -8);
        let b = fill(k * n, 17, 15, -8);
        assert_eq!(camp_gemm_i8(m, n, k, &a, &b), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (m, n, k) = (37, 29, 65);
        let a = fill(m * k, 13, 200, -100);
        let b = fill(k * n, 7, 200, -100);
        let serial = camp_gemm_i8(m, n, k, &a, &b);
        for threads in [2, 3, 4, 16, 64] {
            assert_eq!(
                camp_gemm_i8_parallel(m, n, k, &a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
        let a4 = fill(m * k, 13, 16, -8);
        let b4 = fill(k * n, 7, 16, -8);
        assert_eq!(camp_gemm_i4_parallel(m, n, k, &a4, &b4, 3), camp_gemm_i4(m, n, k, &a4, &b4));
    }

    #[test]
    fn more_threads_than_row_tiles_is_fine() {
        let (m, n, k) = (6, 4, 16);
        let a = fill(m * k, 3, 10, -5);
        let b = fill(k * n, 5, 10, -5);
        assert_eq!(camp_gemm_i8_parallel(m, n, k, &a, &b, 32), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    fn hot_loop_is_allocation_free_after_warm_up() {
        let (m, n, k) = (64, 48, 160);
        let a = fill(m * k, 9, 30, -15);
        let b = fill(k * n, 11, 30, -15);
        let mut engine = CampEngine::new();
        let first = engine.gemm_i8(m, n, k, &a, &b);
        let warm = engine.pack_allocations();
        assert!(warm > 0, "first call must populate the pool");
        for _ in 0..5 {
            let again = engine.gemm_i8(m, n, k, &a, &b);
            assert_eq!(again, first);
        }
        assert_eq!(engine.pack_allocations(), warm, "steady state must not allocate");
    }

    #[test]
    fn deep_k_stats_count_rmw_traffic() {
        // one 4×4 tile, k spanning two KC blocks: the second block's
        // tile visit adds a C read; stores happen once per visit
        let k = 2 * super::KC;
        let a = fill(4 * k, 3, 16, -8);
        let b = fill(k * 4, 5, 16, -8);
        let (c, s) = camp_gemm_i8_with_stats(4, 4, k, &a, &b);
        assert_eq!(c, gemm_i32_ref(4, 4, k, &a, &b));
        assert_eq!(s.camp_issues, (k / 16) as u64);
        assert_eq!(s.vector_stores, 2);
        assert_eq!(s.vector_loads, 2 * s.camp_issues + 1);
    }

    #[test]
    fn default_engine_is_usable() {
        // Default must normalize like new(); a zero worker count would
        // divide by zero in the row partition.
        let a = fill(4 * 4, 3, 10, -5);
        let b = fill(4 * 4, 5, 10, -5);
        assert_eq!(CampEngine::default().gemm_i8(4, 4, 4, &a, &b), gemm_i32_ref(4, 4, 4, &a, &b));
    }

    #[test]
    fn parallel_stats_preserve_totals() {
        let (m, n, k) = (32, 16, 64);
        let a = fill(m * k, 3, 10, -5);
        let b = fill(k * n, 5, 10, -5);
        let mut eng = CampEngine::with_threads(4);
        let (_, s) = eng.gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(s.macs, (m * n * k) as u64);
        // every 4×4 tile is issued by exactly one worker, and B is
        // packed once into the shared panel — the whole stats block
        // matches the serial run, packing traffic included
        let (_, serial) = camp_gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(s.camp_issues, serial.camp_issues);
        assert_eq!(s.vector_stores, serial.vector_stores);
        assert_eq!(s.vector_loads, serial.vector_loads);
        assert_eq!(s.packed_bytes, serial.packed_bytes, "parallel B packing must be deduplicated");
        assert_eq!(s, serial);
    }

    #[test]
    fn parallel_packed_bytes_stay_deduplicated_across_blocked_shapes() {
        // shapes spanning several (jc, pc) blocks so the shared panel
        // holds more than one block
        let (m, n, k) = (96, super::NC + 12, super::KC / 4 + 40);
        let a = fill(m * k, 7, 30, -15);
        let b = fill(k * n, 11, 30, -15);
        let (c_serial, serial) = camp_gemm_i8_with_stats(m, n, k, &a, &b);
        let mut eng = CampEngine::with_threads(5);
        let (c_par, par) = eng.gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(c_par, c_serial);
        assert_eq!(par, serial);
    }

    // ---- batched API ----

    fn mixed_problems(bufs: &[(Vec<i8>, Vec<i8>)]) -> Vec<GemmProblem<'_>> {
        // ragged shapes, one shared-B pair, one zero-dim problem
        let (a0, b0) = &bufs[0];
        let (a1, b1) = &bufs[1];
        let (a2, _) = &bufs[2];
        vec![
            GemmProblem::new(5, 7, 33, a0, b0),
            GemmProblem::new(12, 9, 16, a1, b1),
            GemmProblem::new(8, 7, 33, a2, b0), // shares B with problem 0
            GemmProblem::new(4, 4, 0, &[], &[]), // degenerate
        ]
    }

    fn batch_buffers() -> Vec<(Vec<i8>, Vec<i8>)> {
        vec![
            (fill(5 * 33, 3, 16, -8), fill(33 * 7, 5, 16, -8)),
            (fill(12 * 16, 7, 16, -8), fill(16 * 9, 11, 16, -8)),
            (fill(8 * 33, 13, 16, -8), Vec::new()),
        ]
    }

    #[test]
    fn batch_is_bit_identical_to_per_call_loop() {
        let bufs = batch_buffers();
        let problems = mixed_problems(&bufs);
        for threads in [1, 2, 3, 8, 64] {
            let mut eng = CampEngine::with_threads(threads);
            let batch = eng.gemm_i8_batch(&problems);
            assert_eq!(batch.len(), problems.len());
            let mut per_call = CampEngine::with_threads(threads);
            for (c, p) in batch.iter().zip(&problems) {
                assert_eq!(c, &per_call.gemm_i8(p.m, p.n, p.k, p.a, p.b), "threads={threads}");
            }
            // i4 path too (operands above are 4-bit safe)
            let batch4 = eng.gemm_i4_batch(&problems);
            for (c, p) in batch4.iter().zip(&problems) {
                assert_eq!(c, &per_call.gemm_i4(p.m, p.n, p.k, p.a, p.b), "i4 threads={threads}");
            }
        }
    }

    #[test]
    fn batch_zero_dim_problems_are_degenerate_not_fatal() {
        let b = fill(4 * 4, 3, 10, -5);
        let problems = [
            GemmProblem::new(0, 4, 4, &[], &b),
            GemmProblem::new(4, 0, 4, &b, &[]),
            GemmProblem::new(4, 4, 0, &[], &[]),
        ];
        let mut eng = CampEngine::with_threads(2);
        let (cs, stats) = eng.gemm_i8_batch_with_stats(&problems);
        assert!(cs[0].is_empty());
        assert!(cs[1].is_empty());
        assert_eq!(cs[2], vec![0; 16], "k=0 must produce a zero-filled m×n C");
        assert_eq!(stats, EngineStats::default(), "degenerate batch runs no kernels");
    }

    #[test]
    fn batch_dedups_shared_b_packing() {
        // three problems over one weight matrix: B must be packed once
        let (n, k) = (20, 33);
        let w = fill(k * n, 5, 16, -8);
        let a1 = fill(6 * k, 3, 16, -8);
        let a2 = fill(9 * k, 7, 16, -8);
        let a3 = fill(5 * k, 11, 16, -8);
        let problems = [
            GemmProblem::new(6, n, k, &a1, &w),
            GemmProblem::new(9, n, k, &a2, &w),
            GemmProblem::new(5, n, k, &a3, &w),
        ];
        let mut eng = CampEngine::new();
        let (_, batch) = eng.gemm_i8_batch_with_stats(&problems);
        let mut per_call_packed = 0;
        for p in &problems {
            let (_, s) = camp_gemm_i8_with_stats(p.m, p.n, p.k, p.a, p.b);
            per_call_packed += s.packed_bytes;
        }
        // packed B bytes of one problem = padded n × padded k
        let b_packed_once = (n.div_ceil(4) * 4 * k.div_ceil(16) * 16) as u64;
        assert_eq!(
            batch.packed_bytes,
            per_call_packed - 2 * b_packed_once,
            "two of the three B packs must be deduplicated away"
        );
    }

    #[test]
    fn batch_row_splits_large_problems_identically() {
        // straddle BATCH_ROW_SPLIT_MACS: one problem above (row-split
        // path), one below (cross-item path); both must match per-call
        let big = (160, 160, 512); // 13.1 M MACs
        assert!((big.0 * big.1 * big.2) as u64 >= super::BATCH_ROW_SPLIT_MACS);
        let small = (16, 16, 64);
        let ab = fill(big.0 * big.2, 3, 16, -8);
        let bb = fill(big.2 * big.1, 5, 16, -8);
        let asml = fill(small.0 * small.2, 7, 16, -8);
        let bsml = fill(small.2 * small.1, 11, 16, -8);
        let problems = [
            GemmProblem::new(big.0, big.1, big.2, &ab, &bb),
            GemmProblem::new(small.0, small.1, small.2, &asml, &bsml),
        ];
        let mut eng = CampEngine::with_threads(4);
        let batch = eng.gemm_i8_batch(&problems);
        assert_eq!(batch[0], camp_gemm_i8(big.0, big.1, big.2, &ab, &bb));
        assert_eq!(batch[1], camp_gemm_i8(small.0, small.1, small.2, &asml, &bsml));
    }

    #[test]
    fn batch_hot_loop_is_allocation_free_after_warm_up() {
        let bufs = batch_buffers();
        let problems = mixed_problems(&bufs);
        let mut eng = CampEngine::with_threads(2);
        let first = eng.gemm_i8_batch(&problems);
        let warm = eng.pack_allocations();
        assert!(warm > 0);
        for _ in 0..3 {
            assert_eq!(eng.gemm_i8_batch(&problems), first);
        }
        assert_eq!(eng.pack_allocations(), warm, "steady-state batches must not allocate");
    }

    #[test]
    #[should_panic(expected = "problem 1: B must be k×n")]
    fn batch_rejects_malformed_problems() {
        let a = fill(4 * 4, 3, 10, -5);
        let problems = [GemmProblem::new(4, 4, 4, &a, &a), GemmProblem::new(4, 4, 4, &a, &a[..8])];
        let _ = CampEngine::new().gemm_i8_batch(&problems);
    }
}
