//! Host-speed CAMP GeMM engine.
//!
//! This is the downstream-facing library API: blocked integer matrix
//! multiplication whose micro-kernel is the `camp` instruction semantics
//! (§4.1, Fig. 9). Operands are packed exactly the way the simulated
//! kernels pack them — A into 4×k column-major panels, B into k×4
//! row-major panels — and the inner loop consumes 16 (i8) or 32 (i4)
//! k-steps per "issue", mirroring `camp_s64` in the paper's Fig. 9
//! listing. Results are bit-identical to a plain i32 GeMM (wrapping
//! accumulation), which the test-suite and property tests verify.
//!
//! The engine shares `camp-gemm`'s blocked-loop skeleton
//! ([`camp_gemm::loops`]) with the simulated §5.3 driver and packs into
//! a reusable [`PackPool`] instead of allocating per panel, so the hot
//! loop is allocation-free after warm-up ([`CampEngine::pack_allocations`]
//! exposes the growth counter). An opt-in parallel path
//! ([`CampEngine::with_threads`] or the `*_parallel` helpers) splits the
//! row dimension across a **persistent worker pool**
//! ([`crate::pool::WorkerPool`]) — the Goto split of the macro loop.
//! Workers are spawned once per engine and parked between calls, so a
//! serving workload pays thread-spawn cost once, not per request. B is
//! packed exactly once per call into a shared read-only panel that every
//! worker consumes, and results are bit-identical to the serial path
//! because every 4×4 tile is computed by exactly one worker with
//! identical arithmetic.
//!
//! # Pre-packed weights
//!
//! A serving workload multiplies the same quantized weights against
//! millions of activations. [`CampEngine::register_weights`] packs a
//! weight matrix once into the engine's [`WeightRegistry`] and returns
//! a copyable [`WeightHandle`]; handle-operand [`GemmRequest`]s (and
//! [`GemmProblem::with_handle`] batch items) then run with **zero
//! B-packing** — [`EngineStats::packed_b_bytes`] stays 0 on the steady
//! state, which the test-suite asserts.
//!
//! # Batched GeMM
//!
//! Transformer attention is dominated by *many small* GeMMs per step —
//! per-head (s×dₕ)·(dₕ×s) score and (s×s)·(s×dₕ) context products,
//! 12–20 heads per layer (§5.2, Fig. 14) — shapes where per-call setup
//! and operand re-packing swamp compute.
//! [`CampBackend::execute_batch`](crate::backend::CampBackend::execute_batch)
//! takes a slice of requests and amortizes all of it:
//!
//! * **B deduplication** — problems sharing one weight matrix (the QKV
//!   projections across heads and layers) pack B once into a pool-owned
//!   panel reused across the whole batch, and problems carrying a
//!   [`WeightHandle`] skip packing entirely;
//! * **cross-item parallelism** — small problems are distributed across
//!   the persistent workers whole; problems above a MAC-count threshold
//!   fall back to the row-partition split;
//! * **bit-identity** — batch results equal looping the per-call API
//!   over the same problems, element for element.
//!
//! Each request's own [`DType`] wins, so one batch can mix i4 and i8
//! problems. For streaming
//! many batches, [`CampEngine::serve`] upgrades the engine into a
//! [`crate::session::Session`] with a submit/poll API that overlaps the
//! A-packing of one batch with the compute of the previous one.

use camp_gemm::batch::{
    packed_a_bytes, packed_a_offset, packed_b_bytes, packed_b_offset, BOperandKey,
};
use camp_gemm::host::{HostKernel, KernelInfo, SmallB};
use camp_gemm::loops::{
    for_each_b_block, for_each_row_strip, run_blocked, small_path, BlockPlan, BlockSink, SmallPath,
};
use camp_gemm::request::{GemmRequest, Operand, RequestError};
use camp_gemm::weights::{
    host_block_plan, pack_a_block, pack_b_block, prepack_a, prepack_b, WeightRegistry,
    WeightSnapshot,
};
use camp_gemm::workspace::{PackPool, PanelId};
use std::collections::HashMap;
use std::sync::Arc;

use crate::pool::{Job, WorkerPool};

pub use camp_gemm::batch::GemmProblem;
pub use camp_gemm::gemm_i32_ref;
pub use camp_gemm::weights::{DType, WeightHandle, WeightMeta};

/// MAC count above which a batch item is row-partitioned across all
/// workers instead of sharing one worker with other items. Below it,
/// the per-item fan-out costs more than it buys (the attention
/// score/context products are ~1 M MACs); above it, a single problem
/// has enough rows to keep every worker busy on its own.
pub(crate) const BATCH_ROW_SPLIT_MACS: u64 = 8 * 1024 * 1024;

/// Per-call statistics of the engine (what the instruction stream would
/// have contained).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `camp` issues.
    pub camp_issues: u64,
    /// 64-byte vector loads: operand fetches, plus one C-tile read per
    /// tile visit on k blocks after the first (the read-modify-write
    /// accumulation deep-k shapes require).
    pub vector_loads: u64,
    /// 64-byte vector stores (result tiles, once per tile per k block).
    pub vector_stores: u64,
    /// Bytes moved packing A panels (activations — paid per call; the
    /// serving session moves this work off the compute path by
    /// pre-packing the next batch while the current one runs).
    pub packed_a_bytes: u64,
    /// Bytes moved packing B panels, deduplicated: the parallel path
    /// packs B once into a shared read-only panel (not once per
    /// worker), the batched API packs each unique B operand once per
    /// call, and calls against a registered [`WeightHandle`] pack
    /// **nothing** — this stays 0 on the serving steady state.
    pub packed_b_bytes: u64,
    /// Multiply-accumulate operations represented.
    pub macs: u64,
    /// Requests classified onto the skinny small-m fast path (m ≤ 8 —
    /// the GEMV-shaped decode steps). Like every counter here this is a
    /// property of the *problem* (the request's overall shape), not of
    /// the schedule: one count per non-degenerate request, identical
    /// across tiers, thread counts and entry points.
    pub small_m_routed: u64,
    /// Requests classified onto the skinny small-n fast path.
    pub small_n_routed: u64,
    /// Requests classified onto the blocked (Goto-nest) path.
    pub blocked_routed: u64,
}

impl EngineStats {
    /// Total pack traffic, A and B panels combined.
    pub fn packed_bytes(&self) -> u64 {
        self.packed_a_bytes + self.packed_b_bytes
    }

    fn merge(&mut self, other: &EngineStats) {
        self.camp_issues += other.camp_issues;
        self.vector_loads += other.vector_loads;
        self.vector_stores += other.vector_stores;
        self.packed_a_bytes += other.packed_a_bytes;
        self.packed_b_bytes += other.packed_b_bytes;
        self.macs += other.macs;
        self.small_m_routed += other.small_m_routed;
        self.small_n_routed += other.small_n_routed;
        self.blocked_routed += other.blocked_routed;
    }

    /// Count one request's route classification from its overall shape
    /// (degenerate requests run no kernel and count nowhere). Stamped
    /// once per request at the entry points — never per row chunk — so
    /// the counters stay schedule-invariant.
    fn stamp_route(&mut self, m: usize, n: usize, k: usize) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        match small_path(m, n) {
            Some(SmallPath::SmallM) => self.small_m_routed += 1,
            Some(SmallPath::SmallN) => self.small_n_routed += 1,
            None => self.blocked_routed += 1,
        }
    }
}

/// Debug-build guard for the `camp.s4` kernel's operand contract:
/// values must fit 4 bits. The host tiers run i4 through the same
/// widening i8 arithmetic (the math is identical on 4-bit-safe
/// operands), so the range check lives at the engine entry points
/// instead of inside the micro-kernel.
fn debug_check_i4(dtype: DType, what: &str, vals: &[i8]) {
    if cfg!(debug_assertions) && dtype == DType::I4 {
        if let Some(v) = vals.iter().find(|v| !(-8..8).contains(*v)) {
            panic!("i4 {what} operand {v} out of range");
        }
    }
}

/// The [`EngineStats`] of running a problem through the blocked tile
/// path, computed arithmetically from the plan. This *is* the tile
/// path's accounting — same block traversal, same per-tile issue,
/// load and store counts — kept as one closed form so the skinny fast
/// paths ([`camp_gemm::host`]'s `run_small_m`/`run_small_n`) report
/// the canonical camp instruction stream for their problem even though
/// they execute a cheaper host schedule. Stats stay a property of the
/// *problem* (shape, dtype, operand placement), not of which host
/// schedule computed it, so counters remain comparable across paths
/// and stable under dispatch changes. A unit test pins this helper to
/// the instrumented blocked path.
fn tile_path_stats(
    m: usize,
    n: usize,
    k: usize,
    k_step: usize,
    plan: &BlockPlan,
    shared_b: bool,
    shared_a: bool,
) -> EngineStats {
    let mut s = EngineStats { macs: (m * n * k) as u64, ..EngineStats::default() };
    for_each_b_block(plan, |_jc, ncb, pc, kcb| {
        if !shared_b {
            s.packed_b_bytes += (ncb * kcb) as u64;
        }
        for_each_row_strip(plan, |_ic, mcb| {
            if !shared_a {
                s.packed_a_bytes += (mcb * kcb) as u64;
            }
            let tiles = ((mcb / 4) * (ncb / 4)) as u64;
            let steps = (kcb / k_step) as u64;
            s.camp_issues += tiles * steps;
            s.vector_loads += tiles * (2 * steps + u64::from(pc > 0));
            s.vector_stores += tiles;
        });
    });
    s
}

/// Host backend of the shared blocked-loop skeleton: packs blocks into
/// the pool's buffers and runs the camp issue loop as the macro-kernel.
/// With `shared_b` set, B arrives fully pre-packed (see
/// [`camp_gemm::weights::prepack_b`]) and the per-block B pack becomes
/// a no-op; `shared_a` does the same for a pre-packed A (the serving
/// session stages it off the compute path).
struct HostBackend<'a> {
    a: &'a [i8],
    b: &'a [i8],
    c: &'a mut [i32],
    m: usize,
    n: usize,
    k: usize,
    /// Padded depth of the plan (for shared-panel block offsets).
    kp: usize,
    k_step: usize,
    hk: &'static HostKernel,
    pool: &'a mut PackPool,
    shared_b: Option<&'a [i8]>,
    shared_a: Option<&'a [i8]>,
    stats: EngineStats,
}

impl BlockSink for HostBackend<'_> {
    fn pack_b(&mut self, jc: usize, ncb: usize, pc: usize, kcb: usize) {
        if self.shared_b.is_some() {
            // B was packed once for all workers/batch items (or at
            // weight-registration time); the pack traffic is accounted
            // exactly once by whoever packed it.
            return;
        }
        let buf = self.pool.b_buffer(ncb * kcb);
        pack_b_block(buf, self.b, self.n, self.k, jc, pc, kcb);
        self.stats.packed_b_bytes += (ncb * kcb) as u64;
    }

    fn pack_a(&mut self, ic: usize, mcb: usize, pc: usize, kcb: usize) {
        if self.shared_a.is_some() {
            // A was staged up front (serving session); traffic is
            // accounted by the stager.
            return;
        }
        let buf = self.pool.a_buffer(mcb * kcb);
        pack_a_block(buf, self.a, self.m, self.k, ic, pc, kcb);
        self.stats.packed_a_bytes += (mcb * kcb) as u64;
    }

    fn macro_kernel(
        &mut self,
        ic: usize,
        mcb: usize,
        jc: usize,
        ncb: usize,
        pc: usize,
        kcb: usize,
    ) {
        let panel = kcb * 4;
        let (own_a, own_b) = self.pool.buffers();
        let abuf = match self.shared_a {
            Some(packed) => {
                let off = packed_a_offset(self.kp, ic, mcb, pc);
                &packed[off..off + mcb * kcb]
            }
            None => own_a,
        };
        let bbuf = match self.shared_b {
            Some(packed) => {
                let off = packed_b_offset(self.kp, jc, ncb, pc);
                &packed[off..off + ncb * kcb]
            }
            None => own_b,
        };
        // Walk the B panels in groups sized to the tier's widened
        // register tile (`int_nr/4` adjacent 4-col panels per wide
        // call); a trailing group narrower than the tile falls back to
        // the 4x4 kernel panel-by-panel. The stats are per 4x4
        // subtile either way, so the counters are routing-invariant:
        // one issue per k-step per subtile, two operand loads each.
        let nwp = self.hk.int_nr() / 4;
        let qpanels = ncb / 4;
        let steps = (kcb / self.k_step) as u64;
        let mut q = 0;
        while q < qpanels {
            let group = if q + nwp <= qpanels { nwp } else { 1 };
            let pb = &bbuf[q * panel..(q + group) * panel];
            for p in 0..mcb / 4 {
                let pa = &abuf[p * panel..(p + 1) * panel];
                let mut acc = [[0i32; 4]; 16];
                let acc = &mut acc[..group * 4];
                if group > 1 {
                    // One wide call covers `group` subtiles (the
                    // dispatched tier holds all of them in registers
                    // across the k loop).
                    self.hk.tile_i8_wide(pa, pb, acc);
                } else {
                    let sub: &mut [[i32; 4]; 4] = (&mut acc[..4]).try_into().unwrap();
                    self.hk.tile_i8(pa, pb, sub);
                }
                self.stats.camp_issues += group as u64 * steps;
                self.stats.vector_loads += group as u64 * 2 * steps;
                // k blocks after the first read C back before storing
                // (read-modify-write); the first visit stores into a
                // zeroed C, so the stream has no load there.
                if pc > 0 {
                    self.stats.vector_loads += group as u64;
                }
                self.stats.vector_stores += group as u64;
                // accumulate each subtile into C (read-modify-write
                // across k blocks), clipping the zero-padded edge
                for (sq, sub) in acc.chunks_exact(4).enumerate() {
                    for (rx, row) in sub.iter().enumerate() {
                        let i = ic + p * 4 + rx;
                        if i >= self.m {
                            break;
                        }
                        for (cx, &v) in row.iter().enumerate() {
                            let j = jc + (q + sq) * 4 + cx;
                            if j < self.n {
                                let idx = i * self.n + j;
                                self.c[idx] = self.c[idx].wrapping_add(v);
                            }
                        }
                    }
                }
            }
            q += group;
        }
    }
}

/// Run one worker's row range: the skinny fast paths for GEMV-shaped
/// problems ([`small_path`]), the blocked loops otherwise. With
/// `shared_b` / `shared_a`, the operand is consumed from the caller's
/// pre-packed panel instead of being packed per block.
#[allow(clippy::too_many_arguments)]
fn gemm_range(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    pool: &mut PackPool,
    k_step: usize,
    hk: &'static HostKernel,
    shared_b: Option<&[i8]>,
    shared_a: Option<&[i8]>,
) -> EngineStats {
    let plan = host_block_plan(m, n, k, k_step);
    if let Some(path) = small_path(m, n) {
        // Skinny problems skip the Goto nest: raw A rows feed the
        // tier's small kernels directly (no A packing, no padded
        // register tile). Bit-identity with the blocked path is
        // structural — exact products, wrapping i32 accumulation —
        // and a staged A is simply ignored (the raw activation is
        // always present). Stats report the canonical camp stream for
        // the problem (see [`tile_path_stats`]).
        match path {
            SmallPath::SmallM => {
                let bsrc = match shared_b {
                    Some(panel) => SmallB::Panel(panel),
                    None => SmallB::Dense(b),
                };
                hk.run_small_m(m, n, k, &plan, a, bsrc, c);
            }
            SmallPath::SmallN => match shared_b {
                Some(panel) => hk.run_small_n(m, n, k, &plan, a, panel, c),
                None => {
                    // No resident panel to reuse, so packing a skinny B
                    // is pure overhead: feed the raw row-major B to the
                    // dense skinny-n kernel. The stats below still
                    // account the canonical pack traffic the blocked
                    // path would have incurred (they describe the
                    // problem, not the host schedule).
                    hk.small_n_dense(m, n, k, a, b, c);
                }
            },
        }
        return tile_path_stats(m, n, k, k_step, &plan, shared_b.is_some(), shared_a.is_some());
    }
    let mut backend = HostBackend {
        a,
        b,
        c,
        m,
        n,
        k,
        kp: plan.kp,
        k_step,
        hk,
        pool,
        shared_b,
        shared_a,
        stats: EngineStats { macs: (m * n * k) as u64, ..EngineStats::default() },
    };
    run_blocked(&plan, &mut backend);
    backend.stats
}

/// Worker row-chunk height (a multiple of the 4-row register tile, so
/// every worker owns whole tiles) and the resulting worker count for an
/// m-row problem across up to `threads` workers. The single source of
/// truth for the row split: `gemm` uses the worker count to decide
/// whether to pre-pack a shared B panel, and [`gemm_partitioned`] uses
/// the same numbers to chunk the work.
fn row_partition(m: usize, threads: usize) -> (usize, usize) {
    let rows_per = m.div_ceil(threads).div_ceil(4) * 4;
    (rows_per, m.div_ceil(rows_per))
}

/// Execute jobs on the persistent pool, or inline when the engine is
/// serial (no pool exists).
fn run_jobs(wp: Option<&WorkerPool>, jobs: Vec<Job<'_>>) {
    match wp {
        Some(wp) => wp.run(jobs),
        None => {
            for job in jobs {
                job();
            }
        }
    }
}

/// Row partition of the macro loop across up to `threads` workers on
/// the persistent pool: chunks are multiples of the 4-row tile so every
/// worker owns whole register tiles, which (with wrapping i32
/// accumulation) makes the result bit-identical to the serial path for
/// any worker count.
#[allow(clippy::too_many_arguments)]
fn gemm_partitioned(
    m: usize,
    n: usize,
    k: usize,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    pools: &mut Vec<PackPool>,
    wp: Option<&WorkerPool>,
    threads: usize,
    k_step: usize,
    hk: &'static HostKernel,
    shared_b: Option<&[i8]>,
) -> EngineStats {
    let (rows_per, workers) = row_partition(m, threads);
    while pools.len() < workers {
        pools.push(PackPool::new());
    }
    let mut total = EngineStats::default();
    if workers == 1 {
        total.merge(&gemm_range(m, n, k, a, b, c, &mut pools[0], k_step, hk, shared_b, None));
        return total;
    }
    let mut slots: Vec<Option<EngineStats>> = vec![None; workers];
    let jobs: Vec<Job<'_>> = c
        .chunks_mut(rows_per * n)
        .zip(a.chunks(rows_per * k))
        .zip(pools.iter_mut())
        .zip(slots.iter_mut())
        .map(|(((c_chunk, a_chunk), pool), slot)| -> Job<'_> {
            Box::new(move || {
                let m_local = c_chunk.len() / n;
                *slot = Some(gemm_range(
                    m_local, n, k, a_chunk, b, c_chunk, pool, k_step, hk, shared_b, None,
                ));
            })
        })
        .collect();
    run_jobs(wp, jobs);
    for s in slots.iter().flatten() {
        total.merge(s);
    }
    total
}

/// One non-degenerate work unit of a batch or serving dispatch: its
/// effective kernel, an always-pre-packed B panel, and optionally a
/// pre-packed A (serving session). [`run_work_items`] is the single
/// dispatch path both the batched API and the serving driver go
/// through, so the row-split rule and stats accounting cannot diverge
/// between them.
struct WorkItem<'a> {
    slot: usize,
    m: usize,
    n: usize,
    k: usize,
    k_step: usize,
    a: &'a [i8],
    /// Fully pre-packed A; consumed only on the cross-item path (the
    /// row-split path partitions rows, whose per-worker plans index A
    /// differently).
    shared_a: Option<&'a [i8]>,
    shared_b: &'a [i8],
}

impl WorkItem<'_> {
    fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Shared dispatch of a batch of work items: problems above
/// [`BATCH_ROW_SPLIT_MACS`] are row-partitioned across all workers,
/// the rest are distributed whole across the persistent workers.
/// Each result lands in `results[item.slot]`.
fn run_work_items(
    items: Vec<WorkItem<'_>>,
    results: &mut [Vec<i32>],
    pools: &mut Vec<PackPool>,
    wp: Option<&WorkerPool>,
    threads: usize,
    hk: &'static HostKernel,
) -> EngineStats {
    let mut total = EngineStats::default();
    let mut small = Vec::with_capacity(items.len());
    for it in items {
        total.stamp_route(it.m, it.n, it.k);
        // m ≤ 4 problems cannot row-split ([`row_partition`] chunks in
        // multiples of the 4-row register tile), so even a huge
        // GEMV-shaped (m = 1) decode item gains nothing from the
        // partitioned path — send it to the cross-item path where it
        // runs on the skinny small-m kernel and parallelizes across
        // batch items instead.
        if it.macs() < BATCH_ROW_SPLIT_MACS || it.m <= 4 {
            small.push(it);
            continue;
        }
        let mut c = vec![0i32; it.m * it.n];
        total.merge(&gemm_partitioned(
            it.m,
            it.n,
            it.k,
            it.a,
            &[],
            &mut c,
            pools,
            wp,
            threads,
            it.k_step,
            hk,
            Some(it.shared_b),
        ));
        results[it.slot] = c;
    }
    total.merge(&run_small_items(small, results, pools, wp, threads, hk));
    total
}

/// Distribute small items across the persistent workers
/// (longest-processing-time greedy — biggest problems first onto the
/// least-loaded worker) and write each result into `results[item.slot]`.
fn run_small_items(
    items: Vec<WorkItem<'_>>,
    results: &mut [Vec<i32>],
    pools: &mut Vec<PackPool>,
    wp: Option<&WorkerPool>,
    threads: usize,
    hk: &'static HostKernel,
) -> EngineStats {
    let mut total = EngineStats::default();
    if items.is_empty() {
        return total;
    }
    let workers = threads.min(items.len()).max(1);
    while pools.len() < workers {
        pools.push(PackPool::new());
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(items[i].macs()));
    let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for i in order {
        let w = (0..workers).min_by_key(|&w| load[w]).expect("workers > 0");
        assignment[w].push(i);
        load[w] += items[i].macs();
    }
    let items = &items;
    let mut cells: Vec<Vec<(usize, Vec<i32>, EngineStats)>> = vec![Vec::new(); workers];
    let jobs: Vec<Job<'_>> = assignment
        .iter()
        .zip(pools.iter_mut())
        .zip(cells.iter_mut())
        .map(|((list, pool), cell)| -> Job<'_> {
            Box::new(move || {
                for &i in list {
                    let it = &items[i];
                    let mut c = vec![0i32; it.m * it.n];
                    let s = gemm_range(
                        it.m,
                        it.n,
                        it.k,
                        it.a,
                        &[],
                        &mut c,
                        pool,
                        it.k_step,
                        hk,
                        Some(it.shared_b),
                        it.shared_a,
                    );
                    cell.push((it.slot, c, s));
                }
            })
        })
        .collect();
    // a single worker runs its one job inline, same code path
    run_jobs(if workers > 1 { wp } else { None }, jobs);
    for (slot, c, s) in cells.into_iter().flatten() {
        results[slot] = c;
        total.merge(&s);
    }
    total
}

/// The B side of a staged request.
#[derive(Debug)]
pub(crate) enum StagedB {
    /// Registered weight: the pre-packed panel is consumed directly,
    /// zero B-packing on the compute path.
    Handle(WeightHandle),
    /// Dense weights, fully pre-packed by the staging thread (off the
    /// compute path, like staged A).
    Packed(Vec<i8>),
}

/// One staged request of a serving batch: the activation and B operand
/// (both optionally pre-packed by the session's staging thread).
/// `packed_a_bytes`/`packed_b_bytes` are the staging traffic, folded
/// into the ticket's stats when the staged batch runs. This is the
/// host engine's `CampBackend::Prepared` form.
#[derive(Debug)]
pub struct StagedRequest {
    pub(crate) m: usize,
    pub(crate) n: usize,
    pub(crate) k: usize,
    pub(crate) dtype: DType,
    pub(crate) a: Arc<[i8]>,
    pub(crate) packed_a: Option<Vec<i8>>,
    pub(crate) packed_a_bytes: u64,
    pub(crate) packed_b_bytes: u64,
    pub(crate) b: StagedB,
}

impl StagedRequest {
    /// Stage one *validated* request off the compute path: resolve its
    /// shape, pre-pack dense B into the shared-panel layout, and
    /// pre-pack A for requests below the row-split threshold (row-split
    /// requests are packed by the workers that own the rows). Runs on
    /// the session's staging thread, overlapping the previous batch's
    /// compute.
    pub(crate) fn stage(req: GemmRequest, weights: &WeightSnapshot) -> StagedRequest {
        let r = req.resolve(weights).expect("session requests are validated at submit");
        let b = match req.weights() {
            Operand::Handle(h) => StagedB::Handle(*h),
            Operand::Dense(b) => {
                if r.is_degenerate() {
                    StagedB::Packed(Vec::new())
                } else {
                    // B-panel layout depends only on (n, k, k_step), so
                    // this one panel serves the cross-item path and
                    // every row-split worker alike
                    let plan = host_block_plan(r.m, r.n, r.k, r.dtype.k_step());
                    let mut buf = vec![0i8; packed_b_bytes(&plan)];
                    prepack_b(&mut buf, b, r.n, r.k, &plan);
                    StagedB::Packed(buf)
                }
            }
        };
        let packed_b = match &b {
            StagedB::Packed(buf) => buf.len() as u64,
            StagedB::Handle(_) => 0,
        };
        let mut staged = StagedRequest {
            m: r.m,
            n: r.n,
            k: r.k,
            dtype: r.dtype,
            a: req.activation_arc(),
            packed_a: None,
            packed_a_bytes: 0,
            packed_b_bytes: packed_b,
            b,
        };
        if !staged.is_degenerate() && staged.macs() < BATCH_ROW_SPLIT_MACS {
            let plan = host_block_plan(staged.m, staged.n, staged.k, staged.dtype.k_step());
            let mut buf = vec![0i8; packed_a_bytes(&plan)];
            prepack_a(&mut buf, &staged.a, staged.m, staged.k, &plan);
            staged.packed_a_bytes = buf.len() as u64;
            staged.packed_a = Some(buf);
        }
        staged
    }

    pub(crate) fn is_degenerate(&self) -> bool {
        self.m == 0 || self.n == 0 || self.k == 0
    }

    pub(crate) fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// Which packed panel a batch problem's B operand lives in.
enum PanelSrc {
    /// Packed this call into the engine's shared arena (slice operand).
    Transient(PanelId),
    /// Pre-packed at registration time — zero packing this call.
    Registered(WeightHandle),
}

/// Reusable host-speed GeMM engine: a persistent worker pool spawned
/// once at construction, one pack-pool arena per worker, a shared arena
/// for per-call pre-packed B panels, and a [`WeightRegistry`] of
/// pre-packed weights for serving workloads. The packing hot loop
/// allocates nothing once the pools are warm (each call still allocates
/// its m×n result vector).
#[derive(Debug)]
pub struct CampEngine {
    threads: usize,
    /// Host micro-kernel tier, dispatched once at construction from
    /// the [`camp_gemm::host::CpuFeatures`] probe (or pinned by
    /// [`CampEngine::with_threads_and_kernel`] /
    /// `CAMP_FORCE_SCALAR=1`). Every integer kernel call in this
    /// engine goes through this table.
    host: &'static HostKernel,
    pools: Vec<PackPool>,
    /// Arena for B panels shared read-only across workers: the parallel
    /// path's single packed B, and the batch path's deduplicated B set.
    shared: PackPool,
    /// Pre-packed weights (serving steady state packs no B at all).
    weights: WeightRegistry,
    /// Persistent workers; `None` for a serial engine. Behind an `Arc`
    /// so the pool is sharable outside the engine ([`CampEngine::worker_pool`])
    /// — the simulated driver schedules its block units on the same
    /// threads the host path computes on.
    workers: Option<std::sync::Arc<WorkerPool>>,
}

impl Default for CampEngine {
    fn default() -> Self {
        CampEngine::new()
    }
}

impl CampEngine {
    /// Serial engine (one worker, no pool threads).
    pub fn new() -> Self {
        CampEngine::with_threads(1)
    }

    /// Engine running up to `threads` workers over row partitions of
    /// the Goto macro loop; `0` means one worker per available core
    /// (the shared [`crate::backend::resolve_threads`] clamp: the
    /// resolved count is never below 1, since a zero worker count would
    /// divide by zero in the row partition). The worker threads are
    /// spawned **once** here — parallel calls only enqueue jobs on the
    /// persistent pool.
    pub fn with_threads(threads: usize) -> Self {
        CampEngine::with_threads_and_kernel(threads, HostKernel::detect())
    }

    /// [`CampEngine::with_threads`] pinned to a specific host-kernel
    /// tier instead of the detected best one. This is how the parity
    /// test-suite runs every available tier against the scalar
    /// reference *within one process*; production code should let
    /// [`HostKernel::detect`] choose (it honors `CAMP_FORCE_SCALAR`).
    pub fn with_threads_and_kernel(threads: usize, kernel: &'static HostKernel) -> Self {
        let threads = crate::backend::resolve_threads(threads);
        let workers = (threads > 1).then(|| std::sync::Arc::new(WorkerPool::new(threads)));
        CampEngine {
            threads,
            host: kernel,
            pools: Vec::new(),
            shared: PackPool::new(),
            weights: WeightRegistry::new(),
            workers,
        }
    }

    /// Engine honoring the `CAMP_THREADS` environment variable (see
    /// [`crate::backend::host_threads_from_env`]; unset means one
    /// worker per available core) — the one thread-configuration story
    /// every harness shares.
    pub fn from_env() -> Self {
        CampEngine::with_threads(crate::backend::host_threads_from_env())
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Which host-kernel tier this engine dispatches to, with the
    /// probed CPU features, register-tile geometry and active cache
    /// blocking — so serving logs and benches can record which kernel
    /// produced a number.
    ///
    /// ```
    /// let engine = camp_core::CampEngine::new();
    /// let info = engine.kernel_info();
    /// assert!(["scalar", "avx2", "avx512", "neon"].contains(&info.tier.as_str()));
    /// println!("{info}"); // e.g. "avx2 kernel (features: avx2 fma; ...)"
    /// ```
    pub fn kernel_info(&self) -> KernelInfo {
        self.host.info()
    }

    /// The dispatched host-kernel table itself (the f32 subsystem
    /// [`camp_gemm::host::HostGemmF32`] takes it directly).
    pub fn host_kernel(&self) -> &'static HostKernel {
        self.host
    }

    /// A sharable handle to the engine's persistent worker pool, or
    /// `None` for a serial engine. The pool implements
    /// [`camp_gemm::SimScheduler`], so the *simulated* driver
    /// (`simulate_gemm_on` / `simulate_gemm_batch_on`) can schedule its
    /// independent (jc, pc) block units on the same threads that serve
    /// the host-speed path — one thread budget for both halves, which
    /// is how the figure harnesses run `--sim-threads N` sweeps.
    ///
    /// The pool's [`WorkerPool::queued_jobs`] / [`WorkerPool::jobs_run`]
    /// counters let serving tests assert that draining a
    /// [`crate::dispatch::Dispatcher`] leaves no jobs queued — the
    /// "no leaked pool permits" invariant.
    pub fn worker_pool(&self) -> Option<std::sync::Arc<WorkerPool>> {
        self.workers.clone()
    }

    /// Total pack-buffer growths across the per-worker and shared
    /// arenas. Flat across same-shape calls ⇒ the hot loop is
    /// allocation-free. Weight registration (a one-time cost) is
    /// accounted separately by [`CampEngine::registered_weight_bytes`].
    pub fn pack_allocations(&self) -> u64 {
        self.pools.iter().map(PackPool::allocations).sum::<u64>() + self.shared.allocations()
    }

    // ---- pre-packed weight registry ----

    /// Pack the row-major k×n weight matrix `b` once for `dtype`'s
    /// kernel and keep the panel alive for the engine's lifetime. Every
    /// later call against the returned handle performs zero B-packing.
    ///
    /// ```
    /// use camp_core::{CampEngine, DType};
    ///
    /// let (n, k) = (8, 32);
    /// let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
    ///
    /// let mut engine = CampEngine::new();
    /// let weights = engine.register_weights(n, k, &w, DType::I8);
    /// assert_eq!(engine.registered_weights(), 1);
    /// assert_eq!(engine.weight_meta(weights).k, k);
    /// ```
    ///
    /// # Panics
    /// Panics if `b.len() != k * n`.
    pub fn register_weights(&mut self, n: usize, k: usize, b: &[i8], dtype: DType) -> WeightHandle {
        self.weights.register(n, k, b, dtype)
    }

    /// Shape/dtype of a registered weight.
    ///
    /// # Panics
    /// Panics on a foreign, unknown or evicted handle; use
    /// [`CampEngine::try_weight_meta`] for a `Result`.
    pub fn weight_meta(&self, h: WeightHandle) -> WeightMeta {
        self.weights.meta(h)
    }

    /// Shape/dtype of a registered weight, or why the handle is invalid
    /// ([`RequestError::StaleHandle`] after eviction).
    pub fn try_weight_meta(&self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        self.weights.try_meta(h)
    }

    /// Drop one registered weight: its packed panel is freed, and later
    /// uses of the handle fail ([`RequestError::StaleHandle`] through
    /// the request API) instead of multiplying stale or recycled
    /// weights. Long-lived serving engines use this to drop stale
    /// layers without restarting.
    pub fn evict_weights(&mut self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        self.weights.evict(h)
    }

    /// Drop every registered weight (e.g. before loading a new model
    /// into a long-lived engine).
    pub fn clear_weights(&mut self) {
        self.weights.clear()
    }

    /// Submit-time snapshot of the weight registry — what a serving
    /// [`crate::session::Session`] validates requests against.
    pub fn weight_snapshot(&self) -> WeightSnapshot {
        self.weights.snapshot()
    }

    /// Number of live registered weights.
    pub fn registered_weights(&self) -> usize {
        self.weights.len()
    }

    /// Total bytes packed at registration time (one-time; never paid on
    /// the steady-state request path, and not decreased by eviction —
    /// see [`CampEngine::resident_weight_bytes`]).
    pub fn registered_weight_bytes(&self) -> u64 {
        self.weights.packed_bytes()
    }

    /// Bytes currently resident for live registrations; eviction
    /// returns them.
    pub fn resident_weight_bytes(&self) -> u64 {
        self.weights.resident_bytes()
    }

    /// A [`GemmProblem`] over a registered weight, with shape and dtype
    /// filled in from the registration.
    ///
    /// To run one registered-weight GeMM, build a request instead — no
    /// B is packed; the panel built at registration is consumed
    /// directly, serially or by every pool worker:
    ///
    /// ```
    /// use camp_core::backend::CampBackend;
    /// use camp_core::{CampEngine, DType, GemmRequest};
    /// use camp_gemm::gemm_i32_ref;
    ///
    /// let (m, n, k) = (4, 8, 32);
    /// let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
    /// let a: Vec<i8> = (0..m * k).map(|i| (i % 13) as i8 - 6).collect();
    ///
    /// let mut engine = CampEngine::new();
    /// let weights = engine.register_weights(n, k, &w, DType::I8);
    /// let req = GemmRequest::with_weights(m, a.clone(), weights).unwrap();
    /// let outcome = engine.execute(&req).unwrap();
    /// assert_eq!(outcome.output.c, gemm_i32_ref(m, n, k, &a, &w));
    /// let stats = outcome.stats.as_host().unwrap();
    /// assert_eq!(stats.packed_b_bytes, 0); // steady state packs no B
    /// ```
    pub fn handle_problem<'a>(&self, m: usize, a: &'a [i8], h: WeightHandle) -> GemmProblem<'a> {
        let meta = self.weights.meta(h);
        GemmProblem::with_handle(m, meta.n, meta.k, a, h).with_dtype(meta.dtype)
    }

    /// Single registered-weight GeMM, bypassing the batch machinery:
    /// the reference path the test suite pins the request/batch
    /// surfaces against (stats included — `packed_b_bytes` must be 0).
    #[cfg(test)]
    fn handle_gemm(&mut self, m: usize, a: &[i8], h: WeightHandle) -> (Vec<i32>, EngineStats) {
        let meta = self.weights.meta(h);
        assert_eq!(a.len(), m * meta.k, "A must be m×k");
        let mut c = vec![0i32; m * meta.n];
        if m == 0 || meta.n == 0 || meta.k == 0 {
            return (c, EngineStats::default());
        }
        debug_check_i4(meta.dtype, "activation", a);
        let mut stats = gemm_partitioned(
            m,
            meta.n,
            meta.k,
            a,
            &[],
            &mut c,
            &mut self.pools,
            self.workers.as_deref(),
            self.threads,
            meta.dtype.k_step(),
            self.host,
            Some(self.weights.panel(h)),
        );
        stats.stamp_route(m, meta.n, meta.k);
        (c, stats)
    }

    /// Upgrade the engine into a serving [`crate::session::Session`]
    /// (submit/poll API, staged A- and B-packing overlapping compute).
    /// Register weights first: the session validates submissions
    /// against the registrations present at this call.
    pub fn serve(self) -> crate::session::Session<CampEngine> {
        crate::session::Session::new(self)
    }

    /// Single dense GeMM, bypassing the batch machinery: the reference
    /// path the test suite pins the request/batch surfaces against
    /// (bit-identical results, comparable stats).
    #[cfg(test)]
    fn gemm(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
        dtype: DType,
    ) -> (Vec<i32>, EngineStats) {
        assert_eq!(a.len(), m * k, "A must be m×k");
        assert_eq!(b.len(), k * n, "B must be k×n");
        let mut c = vec![0i32; m * n];
        if m == 0 || n == 0 || k == 0 {
            return (c, EngineStats::default());
        }
        debug_check_i4(dtype, "A", a);
        debug_check_i4(dtype, "B", b);
        let k_step = dtype.k_step();

        let mut total = EngineStats::default();
        let (_, workers) = row_partition(m, self.threads);
        let panel_id = if workers > 1 {
            // Pack B once into a shared read-only panel instead of once
            // per worker — the packing traffic below is everything the
            // whole call moves for B.
            let plan = host_block_plan(m, n, k, k_step);
            self.shared.reset_panels();
            let id = self.shared.alloc_panel(packed_b_bytes(&plan));
            prepack_b(self.shared.panel_mut(id), b, n, k, &plan);
            total.packed_b_bytes += packed_b_bytes(&plan) as u64;
            Some(id)
        } else {
            None
        };
        let shared_b = panel_id.map(|id| self.shared.panel(id));
        total.merge(&gemm_partitioned(
            m,
            n,
            k,
            a,
            b,
            &mut c,
            &mut self.pools,
            self.workers.as_deref(),
            self.threads,
            k_step,
            self.host,
            shared_b,
        ));
        total.stamp_route(m, n, k);
        (c, total)
    }

    pub(crate) fn gemm_batch_impl(
        &mut self,
        problems: &[GemmProblem<'_>],
        forced: Option<DType>,
    ) -> (Vec<Vec<i32>>, EngineStats) {
        // Effective kernel per problem: a forced dtype wins; otherwise
        // handles run under their registration and slices under their
        // own dtype field.
        let dtypes: Vec<DType> = problems
            .iter()
            .map(|p| match (forced, p.handle) {
                (Some(dt), _) => dt,
                (None, Some(h)) => self.weights.meta(h).dtype,
                (None, None) => p.dtype,
            })
            .collect();
        for (i, p) in problems.iter().enumerate() {
            assert_eq!(p.a.len(), p.m * p.k, "problem {i}: A must be m×k");
            match p.handle {
                None => assert_eq!(p.b.len(), p.k * p.n, "problem {i}: B must be k×n"),
                Some(h) => {
                    let meta = self.weights.meta(h);
                    assert_eq!(
                        (meta.n, meta.k),
                        (p.n, p.k),
                        "problem {i}: registered weight shape mismatch"
                    );
                    assert_eq!(
                        meta.dtype, dtypes[i],
                        "problem {i}: registered weight dtype mismatch"
                    );
                }
            }
        }
        let mut total = EngineStats::default();

        // --- B panels: handles as-registered (zero packing), slice
        // operands packed exactly once per unique (operand, k-step) ---
        self.shared.reset_panels();
        let mut panel_of: HashMap<(BOperandKey, usize), PanelId> = HashMap::new();
        let mut srcs: Vec<Option<PanelSrc>> = Vec::with_capacity(problems.len());
        for (p, dt) in problems.iter().zip(&dtypes) {
            if p.is_degenerate() {
                srcs.push(None);
                continue;
            }
            srcs.push(Some(match p.handle {
                Some(h) => PanelSrc::Registered(h),
                None => {
                    let k_step = dt.k_step();
                    let plan = host_block_plan(p.m, p.n, p.k, k_step);
                    let id = *panel_of.entry((p.b_key(), k_step)).or_insert_with(|| {
                        let id = self.shared.alloc_panel(packed_b_bytes(&plan));
                        prepack_b(self.shared.panel_mut(id), p.b, p.n, p.k, &plan);
                        total.packed_b_bytes += packed_b_bytes(&plan) as u64;
                        id
                    });
                    PanelSrc::Transient(id)
                }
            }));
        }

        // Degenerate results exist up front (all-zero when only k is 0,
        // empty otherwise); real results are filled below.
        let mut results: Vec<Vec<i32>> = problems
            .iter()
            .map(|p| if p.is_degenerate() { vec![0i32; p.m * p.n] } else { Vec::new() })
            .collect();

        let shared = &self.shared;
        let weights = &self.weights;
        let wp = self.workers.as_deref();
        let threads = self.threads;
        let hk = self.host;
        let pools = &mut self.pools;
        let panel = |src: &PanelSrc| -> &[i8] {
            match src {
                PanelSrc::Transient(id) => shared.panel(*id),
                PanelSrc::Registered(h) => weights.panel(*h),
            }
        };

        let items: Vec<WorkItem<'_>> = problems
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_degenerate())
            .map(|(i, p)| {
                debug_check_i4(dtypes[i], "batch A", p.a);
                if p.handle.is_none() {
                    debug_check_i4(dtypes[i], "batch B", p.b);
                }
                WorkItem {
                    slot: i,
                    m: p.m,
                    n: p.n,
                    k: p.k,
                    k_step: dtypes[i].k_step(),
                    a: p.a,
                    shared_a: None,
                    shared_b: panel(srcs[i].as_ref().expect("non-degenerate")),
                }
            })
            .collect();
        total.merge(&run_work_items(items, &mut results, pools, wp, threads, hk));
        (results, total)
    }

    /// Compute one staged serving batch (see [`crate::session`]):
    /// registered B panels (or stager-packed dense panels) everywhere,
    /// pre-packed A where the stager provided it, row-partitioning for
    /// oversized requests. Returns one row-major C per request plus the
    /// batch's merged stats (staging traffic included).
    pub(crate) fn run_staged(&mut self, reqs: &[StagedRequest]) -> (Vec<Vec<i32>>, EngineStats) {
        let mut total = EngineStats::default();
        for r in reqs {
            total.packed_a_bytes += r.packed_a_bytes;
            total.packed_b_bytes += r.packed_b_bytes;
        }
        let mut results: Vec<Vec<i32>> = reqs
            .iter()
            .map(|r| if r.is_degenerate() { vec![0i32; r.m * r.n] } else { Vec::new() })
            .collect();
        let weights = &self.weights;
        let wp = self.workers.as_deref();
        let threads = self.threads;
        let hk = self.host;
        let pools = &mut self.pools;

        let items: Vec<WorkItem<'_>> = reqs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_degenerate())
            .map(|(i, r)| {
                debug_check_i4(r.dtype, "staged activation", &r.a);
                WorkItem {
                    slot: i,
                    m: r.m,
                    n: r.n,
                    k: r.k,
                    k_step: r.dtype.k_step(),
                    a: &r.a,
                    shared_a: r.packed_a.as_deref(),
                    shared_b: match &r.b {
                        StagedB::Handle(h) => weights.panel(*h),
                        StagedB::Packed(buf) => buf,
                    },
                }
            })
            .collect();
        total.merge(&run_work_items(items, &mut results, pools, wp, threads, hk));
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_gemm::weights::HOST_BLOCKING;

    const MC: usize = HOST_BLOCKING.0;
    const NC: usize = HOST_BLOCKING.1;
    const KC: usize = HOST_BLOCKING.2;

    // ---- single-call helpers over the test-only reference path ----
    //
    // These carry the shapes of the removed dtype-suffixed shims so the
    // suite keeps pinning the batch/request surfaces against a direct
    // single-problem run of the engine.

    fn camp_gemm_i8(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        CampEngine::new().gemm(m, n, k, a, b, DType::I8).0
    }

    fn camp_gemm_i8_with_stats(
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) -> (Vec<i32>, EngineStats) {
        CampEngine::new().gemm(m, n, k, a, b, DType::I8)
    }

    fn camp_gemm_i4(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
        CampEngine::new().gemm(m, n, k, a, b, DType::I4).0
    }

    fn camp_gemm_i4_with_stats(
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
    ) -> (Vec<i32>, EngineStats) {
        CampEngine::new().gemm(m, n, k, a, b, DType::I4)
    }

    fn camp_gemm_i8_parallel(
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
        threads: usize,
    ) -> Vec<i32> {
        CampEngine::with_threads(threads).gemm(m, n, k, a, b, DType::I8).0
    }

    fn camp_gemm_i4_parallel(
        m: usize,
        n: usize,
        k: usize,
        a: &[i8],
        b: &[i8],
        threads: usize,
    ) -> Vec<i32> {
        CampEngine::with_threads(threads).gemm(m, n, k, a, b, DType::I4).0
    }

    /// Method shapes of the removed shims, over the same internals the
    /// request surface drives (`gemm_batch_impl`) or the test-only
    /// single-call path.
    trait EngineTestExt {
        fn gemm_i8(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32>;
        fn gemm_i8_with_stats(
            &mut self,
            m: usize,
            n: usize,
            k: usize,
            a: &[i8],
            b: &[i8],
        ) -> (Vec<i32>, EngineStats);
        fn gemm_i4(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32>;
        fn gemm_with_handle(&mut self, m: usize, a: &[i8], h: WeightHandle) -> Vec<i32>;
        fn gemm_with_handle_with_stats(
            &mut self,
            m: usize,
            a: &[i8],
            h: WeightHandle,
        ) -> (Vec<i32>, EngineStats);
        fn gemm_i8_batch(&mut self, problems: &[GemmProblem<'_>]) -> Vec<Vec<i32>>;
        fn gemm_i8_batch_with_stats(
            &mut self,
            problems: &[GemmProblem<'_>],
        ) -> (Vec<Vec<i32>>, EngineStats);
        fn gemm_i4_batch(&mut self, problems: &[GemmProblem<'_>]) -> Vec<Vec<i32>>;
        fn gemm_batch_with_stats(
            &mut self,
            problems: &[GemmProblem<'_>],
        ) -> (Vec<Vec<i32>>, EngineStats);
    }

    impl EngineTestExt for CampEngine {
        fn gemm_i8(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
            self.gemm(m, n, k, a, b, DType::I8).0
        }
        fn gemm_i8_with_stats(
            &mut self,
            m: usize,
            n: usize,
            k: usize,
            a: &[i8],
            b: &[i8],
        ) -> (Vec<i32>, EngineStats) {
            self.gemm(m, n, k, a, b, DType::I8)
        }
        fn gemm_i4(&mut self, m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
            self.gemm(m, n, k, a, b, DType::I4).0
        }
        fn gemm_with_handle(&mut self, m: usize, a: &[i8], h: WeightHandle) -> Vec<i32> {
            self.handle_gemm(m, a, h).0
        }
        fn gemm_with_handle_with_stats(
            &mut self,
            m: usize,
            a: &[i8],
            h: WeightHandle,
        ) -> (Vec<i32>, EngineStats) {
            self.handle_gemm(m, a, h)
        }
        fn gemm_i8_batch(&mut self, problems: &[GemmProblem<'_>]) -> Vec<Vec<i32>> {
            self.gemm_batch_impl(problems, Some(DType::I8)).0
        }
        fn gemm_i8_batch_with_stats(
            &mut self,
            problems: &[GemmProblem<'_>],
        ) -> (Vec<Vec<i32>>, EngineStats) {
            self.gemm_batch_impl(problems, Some(DType::I8))
        }
        fn gemm_i4_batch(&mut self, problems: &[GemmProblem<'_>]) -> Vec<Vec<i32>> {
            self.gemm_batch_impl(problems, Some(DType::I4)).0
        }
        fn gemm_batch_with_stats(
            &mut self,
            problems: &[GemmProblem<'_>],
        ) -> (Vec<Vec<i32>>, EngineStats) {
            self.gemm_batch_impl(problems, None)
        }
    }

    fn fill(len: usize, seed: i32, modulus: i32, offset: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % modulus + offset) as i8).collect()
    }

    #[test]
    fn small_exact() {
        let a = vec![1i8, 2, 3, 4, 5, 6]; // 2x3
        let b = vec![7i8, 8, 9, 10, 11, 12]; // 3x2
        let c = camp_gemm_i8(2, 2, 3, &a, &b);
        assert_eq!(c, vec![58, 64, 139, 154]);
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(m, n, k) in
            &[(1, 1, 1), (4, 4, 16), (5, 7, 33), (12, 9, 64), (17, 3, 100), (3, 17, 5)]
        {
            let a = fill(m * k, 31, 200, -100);
            let b = fill(k * n, 17, 200, -100);
            assert_eq!(
                camp_gemm_i8(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn i4_matches_reference() {
        for &(m, n, k) in &[(4, 4, 32), (6, 10, 45), (9, 5, 96)] {
            let a = fill(m * k, 7, 16, -8);
            let b = fill(k * n, 5, 16, -8);
            assert_eq!(
                camp_gemm_i4(m, n, k, &a, &b),
                gemm_i32_ref(m, n, k, &a, &b),
                "shape {m}x{n}x{k}"
            );
        }
    }

    #[test]
    fn stats_count_issues() {
        // 8×8×32: 4 tiles × 2 k-chunks = 8 camp issues, 16 loads
        let a = fill(8 * 32, 3, 10, -5);
        let b = fill(32 * 8, 5, 10, -5);
        let (_, s) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s.camp_issues, 8);
        assert_eq!(s.vector_loads, 16);
        assert_eq!(s.vector_stores, 4);
        assert_eq!(s.macs, 8 * 8 * 32);
        assert_eq!(s.packed_bytes(), s.packed_a_bytes + s.packed_b_bytes);
    }

    #[test]
    fn i4_needs_half_the_issues() {
        let a = fill(8 * 32, 3, 16, -8);
        let b = fill(32 * 8, 5, 16, -8);
        let (_, s8) = camp_gemm_i8_with_stats(8, 8, 32, &a, &b);
        let (_, s4) = camp_gemm_i4_with_stats(8, 8, 32, &a, &b);
        assert_eq!(s4.camp_issues * 2, s8.camp_issues);
    }

    #[test]
    fn ragged_edges_are_zero_padded_correctly() {
        let (m, n, k) = (5, 5, 17);
        let a = fill(m * k, 11, 40, -20);
        let b = fill(k * n, 13, 40, -20);
        assert_eq!(camp_gemm_i8(m, n, k, &a, &b), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    #[should_panic(expected = "A must be m×k")]
    fn wrong_a_len_panics() {
        let _ = camp_gemm_i8(2, 2, 2, &[0; 3], &[0; 4]);
    }

    #[test]
    fn zero_dimensions_return_degenerate_results() {
        // no dimension combination may panic, serial or parallel
        assert!(camp_gemm_i8(0, 4, 4, &[], &[0; 16]).is_empty());
        assert!(camp_gemm_i8(4, 0, 4, &[0; 16], &[]).is_empty());
        assert_eq!(camp_gemm_i8(4, 4, 0, &[], &[]), vec![0; 16]);
        assert!(camp_gemm_i8(0, 0, 0, &[], &[]).is_empty());
        assert_eq!(camp_gemm_i8_parallel(4, 4, 0, &[], &[], 8), vec![0; 16]);
        assert_eq!(camp_gemm_i4(4, 4, 0, &[], &[]), vec![0; 16]);
        let (_, s) = camp_gemm_i8_with_stats(0, 4, 4, &[], &[0; 16]);
        assert_eq!(s, EngineStats::default());
    }

    #[test]
    fn extreme_values_wrap_like_reference() {
        let a = vec![i8::MIN; 4 * 16];
        let b = vec![i8::MIN; 16 * 4];
        assert_eq!(camp_gemm_i8(4, 4, 16, &a, &b), gemm_i32_ref(4, 4, 16, &a, &b));
    }

    #[test]
    fn multi_block_shapes_match_reference() {
        // exceed MC/NC/KC so every loop level blocks at least twice
        let (m, n, k) = (2 * MC + 5, NC + 9, KC + 33);
        let a = fill(m * k, 31, 15, -8);
        let b = fill(k * n, 17, 15, -8);
        assert_eq!(camp_gemm_i8(m, n, k, &a, &b), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let (m, n, k) = (37, 29, 65);
        let a = fill(m * k, 13, 200, -100);
        let b = fill(k * n, 7, 200, -100);
        let serial = camp_gemm_i8(m, n, k, &a, &b);
        for threads in [2, 3, 4, 16, 64] {
            assert_eq!(
                camp_gemm_i8_parallel(m, n, k, &a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
        let a4 = fill(m * k, 13, 16, -8);
        let b4 = fill(k * n, 7, 16, -8);
        assert_eq!(camp_gemm_i4_parallel(m, n, k, &a4, &b4, 3), camp_gemm_i4(m, n, k, &a4, &b4));
    }

    #[test]
    fn more_threads_than_row_tiles_is_fine() {
        let (m, n, k) = (6, 4, 16);
        let a = fill(m * k, 3, 10, -5);
        let b = fill(k * n, 5, 10, -5);
        assert_eq!(camp_gemm_i8_parallel(m, n, k, &a, &b, 32), gemm_i32_ref(m, n, k, &a, &b));
    }

    #[test]
    fn zero_threads_resolve_to_at_least_one_worker() {
        // with_threads(0) means "all cores" and must clamp to >= 1 so
        // the row partition can never divide by zero
        let eng = CampEngine::with_threads(0);
        assert!(eng.threads() >= 1, "0 threads must resolve to >= 1");
        let a = fill(4 * 4, 3, 10, -5);
        let b = fill(4 * 4, 5, 10, -5);
        assert_eq!(
            CampEngine::with_threads(0).gemm_i8(4, 4, 4, &a, &b),
            gemm_i32_ref(4, 4, 4, &a, &b)
        );
    }

    #[test]
    fn persistent_pool_is_reused_across_calls() {
        // one engine, many parallel calls over different shapes: the
        // pool is spawned once and every result stays bit-identical
        let mut eng = CampEngine::with_threads(4);
        for &(m, n, k) in &[(37, 29, 65), (8, 8, 32), (64, 48, 160), (5, 7, 33)] {
            let a = fill(m * k, 13, 200, -100);
            let b = fill(k * n, 7, 200, -100);
            assert_eq!(eng.gemm_i8(m, n, k, &a, &b), camp_gemm_i8(m, n, k, &a, &b), "{m}x{n}x{k}");
        }
    }

    #[test]
    fn hot_loop_is_allocation_free_after_warm_up() {
        let (m, n, k) = (64, 48, 160);
        let a = fill(m * k, 9, 30, -15);
        let b = fill(k * n, 11, 30, -15);
        let mut engine = CampEngine::new();
        let first = engine.gemm_i8(m, n, k, &a, &b);
        let warm = engine.pack_allocations();
        assert!(warm > 0, "first call must populate the pool");
        for _ in 0..5 {
            let again = engine.gemm_i8(m, n, k, &a, &b);
            assert_eq!(again, first);
        }
        assert_eq!(engine.pack_allocations(), warm, "steady state must not allocate");
    }

    #[test]
    fn deep_k_stats_count_rmw_traffic() {
        // one 4×4 tile, k spanning two KC blocks: the second block's
        // tile visit adds a C read; stores happen once per visit
        let k = 2 * KC;
        let a = fill(4 * k, 3, 16, -8);
        let b = fill(k * 4, 5, 16, -8);
        let (c, s) = camp_gemm_i8_with_stats(4, 4, k, &a, &b);
        assert_eq!(c, gemm_i32_ref(4, 4, k, &a, &b));
        assert_eq!(s.camp_issues, (k / 16) as u64);
        assert_eq!(s.vector_stores, 2);
        assert_eq!(s.vector_loads, 2 * s.camp_issues + 1);
    }

    #[test]
    fn default_engine_is_usable() {
        // Default must normalize like new(); a zero worker count would
        // divide by zero in the row partition.
        let a = fill(4 * 4, 3, 10, -5);
        let b = fill(4 * 4, 5, 10, -5);
        assert_eq!(CampEngine::default().gemm_i8(4, 4, 4, &a, &b), gemm_i32_ref(4, 4, 4, &a, &b));
    }

    #[test]
    fn parallel_stats_preserve_totals() {
        let (m, n, k) = (32, 16, 64);
        let a = fill(m * k, 3, 10, -5);
        let b = fill(k * n, 5, 10, -5);
        let mut eng = CampEngine::with_threads(4);
        let (_, s) = eng.gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(s.macs, (m * n * k) as u64);
        // every 4×4 tile is issued by exactly one worker, and B is
        // packed once into the shared panel — the whole stats block
        // matches the serial run, packing traffic included
        let (_, serial) = camp_gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(s.camp_issues, serial.camp_issues);
        assert_eq!(s.vector_stores, serial.vector_stores);
        assert_eq!(s.vector_loads, serial.vector_loads);
        assert_eq!(
            s.packed_b_bytes, serial.packed_b_bytes,
            "parallel B packing must be deduplicated"
        );
        assert_eq!(s, serial);
    }

    #[test]
    fn parallel_packed_bytes_stay_deduplicated_across_blocked_shapes() {
        // shapes spanning several (jc, pc) blocks so the shared panel
        // holds more than one block
        let (m, n, k) = (96, NC + 12, KC / 4 + 40);
        let a = fill(m * k, 7, 30, -15);
        let b = fill(k * n, 11, 30, -15);
        let (c_serial, serial) = camp_gemm_i8_with_stats(m, n, k, &a, &b);
        let mut eng = CampEngine::with_threads(5);
        let (c_par, par) = eng.gemm_i8_with_stats(m, n, k, &a, &b);
        assert_eq!(c_par, c_serial);
        assert_eq!(par, serial);
    }

    // ---- pre-packed weight registry ----

    #[test]
    fn handle_calls_match_the_slice_api_and_pack_no_b() {
        let (n, k) = (20, 33);
        let w = fill(k * n, 5, 16, -8);
        for threads in [1, 3, 8] {
            let mut eng = CampEngine::with_threads(threads);
            let h = eng.register_weights(n, k, &w, DType::I8);
            assert_eq!(eng.registered_weights(), 1);
            assert!(eng.registered_weight_bytes() > 0);
            for m in [1, 6, 17] {
                let a = fill(m * k, 3, 16, -8);
                let (c, s) = eng.gemm_with_handle_with_stats(m, &a, h);
                assert_eq!(c, camp_gemm_i8(m, n, k, &a, &w), "threads={threads} m={m}");
                assert_eq!(s.packed_b_bytes, 0, "handle calls must never pack B");
                assert!(s.packed_a_bytes > 0, "A is still packed per call");
            }
        }
    }

    #[test]
    fn i4_handles_run_the_i4_kernel() {
        let (n, k) = (10, 40);
        let w = fill(k * n, 5, 16, -8);
        let a = fill(7 * k, 3, 16, -8);
        let mut eng = CampEngine::with_threads(2);
        let h = eng.register_weights(n, k, &w, DType::I4);
        assert_eq!(eng.weight_meta(h).dtype, DType::I4);
        assert_eq!(eng.gemm_with_handle(7, &a, h), camp_gemm_i4(7, n, k, &a, &w));
    }

    #[test]
    fn steady_state_handle_calls_have_zero_packed_b_bytes() {
        // the acceptance criterion: after warmup, repeated calls
        // against a registered weight move zero B-pack bytes and
        // allocate nothing
        let (n, k) = (48, 64);
        let w = fill(k * n, 7, 16, -8);
        let a = fill(32 * k, 3, 16, -8);
        let mut eng = CampEngine::with_threads(4);
        let h = eng.register_weights(n, k, &w, DType::I8);
        let (first, warm_stats) = eng.gemm_with_handle_with_stats(32, &a, h);
        assert_eq!(warm_stats.packed_b_bytes, 0);
        let warm_allocs = eng.pack_allocations();
        for _ in 0..5 {
            let (c, s) = eng.gemm_with_handle_with_stats(32, &a, h);
            assert_eq!(c, first);
            assert_eq!(s.packed_b_bytes, 0, "steady state must not pack B");
        }
        assert_eq!(eng.pack_allocations(), warm_allocs, "steady state must not allocate");
    }

    #[test]
    fn handle_problems_in_batches_skip_packing() {
        let (n, k) = (20, 33);
        let w = fill(k * n, 5, 16, -8);
        let a1 = fill(6 * k, 3, 16, -8);
        let a2 = fill(9 * k, 7, 16, -8);
        let mut eng = CampEngine::with_threads(2);
        let h = eng.register_weights(n, k, &w, DType::I8);
        let problems = [eng.handle_problem(6, &a1, h), eng.handle_problem(9, &a2, h)];
        let (cs, stats) = eng.gemm_i8_batch_with_stats(&problems);
        assert_eq!(cs[0], camp_gemm_i8(6, n, k, &a1, &w));
        assert_eq!(cs[1], camp_gemm_i8(9, n, k, &a2, &w));
        assert_eq!(stats.packed_b_bytes, 0, "registered weights must not repack in batches");
    }

    #[test]
    #[should_panic(expected = "registered weight dtype mismatch")]
    fn forced_kernel_rejects_mismatched_handles() {
        let w = fill(16 * 4, 5, 16, -8);
        let a = fill(4 * 16, 3, 16, -8);
        let mut eng = CampEngine::new();
        let h = eng.register_weights(4, 16, &w, DType::I4);
        let problems = [GemmProblem::with_handle(4, 4, 16, &a, h)];
        let _ = eng.gemm_i8_batch(&problems); // i8 batch, i4 handle
    }

    #[test]
    #[should_panic(expected = "registered weight shape mismatch")]
    fn handle_problems_must_match_registered_shape() {
        let w = fill(16 * 4, 5, 16, -8);
        let a = fill(4 * 16, 3, 16, -8);
        let mut eng = CampEngine::new();
        let h = eng.register_weights(4, 16, &w, DType::I8);
        let problems = [GemmProblem::with_handle(4, 8, 16, &a, h)];
        let _ = eng.gemm_i8_batch(&problems);
    }

    // ---- batched API ----

    fn mixed_problems(bufs: &[(Vec<i8>, Vec<i8>)]) -> Vec<GemmProblem<'_>> {
        // ragged shapes, one shared-B pair, one zero-dim problem
        let (a0, b0) = &bufs[0];
        let (a1, b1) = &bufs[1];
        let (a2, _) = &bufs[2];
        vec![
            GemmProblem::new(5, 7, 33, a0, b0),
            GemmProblem::new(12, 9, 16, a1, b1),
            GemmProblem::new(8, 7, 33, a2, b0), // shares B with problem 0
            GemmProblem::new(4, 4, 0, &[], &[]), // degenerate
        ]
    }

    fn batch_buffers() -> Vec<(Vec<i8>, Vec<i8>)> {
        vec![
            (fill(5 * 33, 3, 16, -8), fill(33 * 7, 5, 16, -8)),
            (fill(12 * 16, 7, 16, -8), fill(16 * 9, 11, 16, -8)),
            (fill(8 * 33, 13, 16, -8), Vec::new()),
        ]
    }

    #[test]
    fn batch_is_bit_identical_to_per_call_loop() {
        let bufs = batch_buffers();
        let problems = mixed_problems(&bufs);
        for threads in [1, 2, 3, 8, 64] {
            let mut eng = CampEngine::with_threads(threads);
            let batch = eng.gemm_i8_batch(&problems);
            assert_eq!(batch.len(), problems.len());
            let mut per_call = CampEngine::with_threads(threads);
            for (c, p) in batch.iter().zip(&problems) {
                assert_eq!(c, &per_call.gemm_i8(p.m, p.n, p.k, p.a, p.b), "threads={threads}");
            }
            // i4 path too (operands above are 4-bit safe)
            let batch4 = eng.gemm_i4_batch(&problems);
            for (c, p) in batch4.iter().zip(&problems) {
                assert_eq!(c, &per_call.gemm_i4(p.m, p.n, p.k, p.a, p.b), "i4 threads={threads}");
            }
        }
    }

    #[test]
    fn mixed_dtype_batch_runs_each_problem_under_its_own_kernel() {
        let a1 = fill(5 * 33, 3, 16, -8);
        let b1 = fill(33 * 7, 5, 16, -8);
        let a2 = fill(6 * 40, 7, 16, -8);
        let b2 = fill(40 * 9, 11, 16, -8);
        let problems = [
            GemmProblem::new(5, 7, 33, &a1, &b1), // defaults to i8
            GemmProblem::new(6, 9, 40, &a2, &b2).with_dtype(DType::I4),
            GemmProblem::new(5, 7, 33, &a1, &b1).with_dtype(DType::I4), // same B, other kernel
        ];
        for threads in [1, 2, 8] {
            let mut eng = CampEngine::with_threads(threads);
            let (cs, stats) = eng.gemm_batch_with_stats(&problems);
            assert_eq!(cs[0], camp_gemm_i8(5, 7, 33, &a1, &b1), "threads={threads}");
            assert_eq!(cs[1], camp_gemm_i4(6, 9, 40, &a2, &b2), "threads={threads}");
            assert_eq!(cs[2], camp_gemm_i4(5, 7, 33, &a1, &b1), "threads={threads}");
            // both dtypes issue camp instructions; the shared operand
            // is packed per kernel (layouts differ), never per problem
            assert!(stats.camp_issues > 0);
        }
    }

    #[test]
    fn mixed_dtype_batch_packs_shared_b_once_per_kernel() {
        // the same operand under i8 and i4 needs two packed layouts
        // (different padded depths) but each exactly once
        let (n, k) = (8, 48);
        let w = fill(k * n, 5, 16, -8);
        let a = fill(4 * k, 3, 16, -8);
        let problems = [
            GemmProblem::new(4, n, k, &a, &w),
            GemmProblem::new(4, n, k, &a, &w).with_dtype(DType::I4),
            GemmProblem::new(4, n, k, &a, &w), // dedups with problem 0
        ];
        let mut eng = CampEngine::new();
        let (_, stats) = eng.gemm_batch_with_stats(&problems);
        let packed_once = (n.div_ceil(4) * 4 * k.div_ceil(16) * 16) as u64;
        let packed_once_i4 = (n.div_ceil(4) * 4 * k.div_ceil(32) * 32) as u64;
        assert_eq!(stats.packed_b_bytes, packed_once + packed_once_i4);
    }

    #[test]
    fn batch_zero_dim_problems_are_degenerate_not_fatal() {
        let b = fill(4 * 4, 3, 10, -5);
        let problems = [
            GemmProblem::new(0, 4, 4, &[], &b),
            GemmProblem::new(4, 0, 4, &b, &[]),
            GemmProblem::new(4, 4, 0, &[], &[]),
        ];
        let mut eng = CampEngine::with_threads(2);
        let (cs, stats) = eng.gemm_i8_batch_with_stats(&problems);
        assert!(cs[0].is_empty());
        assert!(cs[1].is_empty());
        assert_eq!(cs[2], vec![0; 16], "k=0 must produce a zero-filled m×n C");
        assert_eq!(stats, EngineStats::default(), "degenerate batch runs no kernels");
    }

    #[test]
    fn batch_dedups_shared_b_packing() {
        // three problems over one weight matrix: B must be packed once
        let (n, k) = (20, 33);
        let w = fill(k * n, 5, 16, -8);
        let a1 = fill(6 * k, 3, 16, -8);
        let a2 = fill(9 * k, 7, 16, -8);
        let a3 = fill(5 * k, 11, 16, -8);
        let problems = [
            GemmProblem::new(6, n, k, &a1, &w),
            GemmProblem::new(9, n, k, &a2, &w),
            GemmProblem::new(5, n, k, &a3, &w),
        ];
        let mut eng = CampEngine::new();
        let (_, batch) = eng.gemm_i8_batch_with_stats(&problems);
        // packed B bytes of one problem = padded n × padded k
        let b_packed_once = (n.div_ceil(4) * 4 * k.div_ceil(16) * 16) as u64;
        assert_eq!(
            batch.packed_b_bytes, b_packed_once,
            "three problems over one weight matrix must pack B exactly once"
        );
        let mut per_call_packed = 0;
        for p in &problems {
            let (_, s) = camp_gemm_i8_with_stats(p.m, p.n, p.k, p.a, p.b);
            per_call_packed += s.packed_b_bytes;
        }
        assert_eq!(per_call_packed, 3 * b_packed_once, "the per-call loop packs B per problem");
    }

    #[test]
    fn batch_row_splits_large_problems_identically() {
        // straddle BATCH_ROW_SPLIT_MACS: one problem above (row-split
        // path), one below (cross-item path); both must match per-call
        let big = (160, 160, 512); // 13.1 M MACs
        assert!((big.0 * big.1 * big.2) as u64 >= BATCH_ROW_SPLIT_MACS);
        let small = (16, 16, 64);
        let ab = fill(big.0 * big.2, 3, 16, -8);
        let bb = fill(big.2 * big.1, 5, 16, -8);
        let asml = fill(small.0 * small.2, 7, 16, -8);
        let bsml = fill(small.2 * small.1, 11, 16, -8);
        let problems = [
            GemmProblem::new(big.0, big.1, big.2, &ab, &bb),
            GemmProblem::new(small.0, small.1, small.2, &asml, &bsml),
        ];
        let mut eng = CampEngine::with_threads(4);
        let batch = eng.gemm_i8_batch(&problems);
        assert_eq!(batch[0], camp_gemm_i8(big.0, big.1, big.2, &ab, &bb));
        assert_eq!(batch[1], camp_gemm_i8(small.0, small.1, small.2, &asml, &bsml));
    }

    #[test]
    fn decode_shaped_gemms_never_take_the_blocked_path() {
        use crate::dispatch::{DispatchOptions, Dispatcher, Priority, StealPolicy};

        // a 1×n×k GEMV above BATCH_ROW_SPLIT_MACS: the MAC rule alone
        // would row-split it — onto one worker, since m = 1 cannot
        // split — and run it through the blocked nest
        let (n, k) = (2048, 4096);
        assert!((n * k) as u64 >= BATCH_ROW_SPLIT_MACS);
        let w = fill(k * n, 5, 16, -8);
        let a = fill(k, 3, 16, -8);
        let asml = fill(64, 7, 16, -8);
        let wsml = fill(64 * 16, 11, 16, -8);
        let big_ref = gemm_i32_ref(1, n, k, &a, &w);

        let mut eng = CampEngine::with_threads(4);
        let h = eng.register_weights(n, k, &w, DType::I8);

        // the batch path
        let problems = [eng.handle_problem(1, &a, h), GemmProblem::new(1, 16, 64, &asml, &wsml)];
        let (cs, stats) = eng.gemm_batch_with_stats(&problems);
        assert_eq!(cs[0], big_ref);
        assert_eq!(cs[1], gemm_i32_ref(1, 16, 64, &asml, &wsml));
        assert_eq!(
            (stats.small_m_routed, stats.small_n_routed, stats.blocked_routed),
            (2, 0, 0),
            "every decode-shaped item must classify onto the small-m path"
        );

        // the dispatch path (the serving decode steps)
        let opts = DispatchOptions { stagers: 1, queue_depth: 4, steal: StealPolicy::Eager };
        let dispatcher = Dispatcher::with_options(eng, opts);
        let mut session = dispatcher.session();
        let req = GemmRequest::with_weights(1, a.clone(), h).unwrap();
        let t = session.submit_with(vec![req], Priority::Decode, None).unwrap();
        let out = session.wait(t).unwrap();
        assert_eq!(out.outputs[0].c, big_ref);
        let s = out.stats.as_host().expect("host engine ran");
        assert_eq!(
            (s.small_m_routed, s.blocked_routed),
            (1, 0),
            "a served decode step must never take the blocked path"
        );
        drop(session);
        let _ = dispatcher.into_backend();
    }

    #[test]
    fn batch_hot_loop_is_allocation_free_after_warm_up() {
        let bufs = batch_buffers();
        let problems = mixed_problems(&bufs);
        let mut eng = CampEngine::with_threads(2);
        let first = eng.gemm_i8_batch(&problems);
        let warm = eng.pack_allocations();
        assert!(warm > 0);
        for _ in 0..3 {
            assert_eq!(eng.gemm_i8_batch(&problems), first);
        }
        assert_eq!(eng.pack_allocations(), warm, "steady-state batches must not allocate");
    }

    #[test]
    #[should_panic(expected = "problem 1: B must be k×n")]
    fn batch_rejects_malformed_problems() {
        let a = fill(4 * 4, 3, 10, -5);
        let problems = [GemmProblem::new(4, 4, 4, &a, &a), GemmProblem::new(4, 4, 4, &a, &a[..8])];
        let _ = CampEngine::new().gemm_i8_batch(&problems);
    }
}
