//! The hybrid multiplier (§3, Fig. 5).
//!
//! A 2n-bit product is decomposed as
//!
//! ```text
//! A = a1·2ⁿ + a0,  B = b1·2ⁿ + b0
//! P = a1b1·2²ⁿ + (a1b0 + a0b1)·2ⁿ + a0b0          (Eq. 2)
//! ```
//!
//! recursively down to 4-bit building blocks (the paper picks 4 bits as
//! the smallest width that keeps CNN/LLM accuracy reasonable, Fig. 7).
//! For signed operands the most-significant part is signed and the rest
//! unsigned, so building blocks come in signed×signed, signed×unsigned
//! and unsigned×unsigned flavors — real implementations use a sign-control
//! input on one shared block, which is what we model.
//!
//! The model is bit-accurate (verified exhaustively for 8×8 and by
//! property tests up to 32×32) and counts every building-block activation
//! and adder bit so `camp-energy` can derive area and energy.

/// Width of the building block in bits.
pub const BLOCK_BITS: u32 = 4;

/// Activity counters for one [`HybridMultiplier`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HybridActivity {
    /// 4-bit building-block multiplications performed.
    pub block_mults: u64,
    /// Adder invocations in the recombination trees (one per partial-
    /// product merge).
    pub recombine_adds: u64,
}

impl HybridActivity {
    /// Fold counters from another multiplier instance.
    pub fn merge(&mut self, other: &HybridActivity) {
        self.block_mults += other.block_mults;
        self.recombine_adds += other.recombine_adds;
    }
}

/// Bit-accurate hybrid multiplier with activity accounting.
#[derive(Debug, Clone, Default)]
pub struct HybridMultiplier {
    activity: HybridActivity,
}

impl HybridMultiplier {
    /// New multiplier with zeroed activity counters.
    pub fn new() -> Self {
        HybridMultiplier::default()
    }

    /// Activity counters accumulated so far.
    pub fn activity(&self) -> &HybridActivity {
        &self.activity
    }

    /// Reset activity counters.
    pub fn reset_activity(&mut self) {
        self.activity = HybridActivity::default();
    }

    /// Number of 4-bit blocks needed for one `bits × bits` multiply.
    ///
    /// Halving the operand width quarters the block count — the scaling
    /// that makes the multiplier "align naturally" with outer products
    /// (§3): 8-bit → 4 blocks, 16-bit → 16 blocks.
    pub fn blocks_for(bits: u32) -> u64 {
        let per_side = (bits / BLOCK_BITS).max(1) as u64;
        per_side * per_side
    }

    /// 4-bit signed × signed building block (also models the
    /// signed/unsigned flavors internally via sign control).
    fn block_mul(&mut self, a: i64, b: i64) -> i64 {
        debug_assert!((-8..8).contains(&a), "block operand {a} out of 4-bit range");
        debug_assert!((-8..8).contains(&b), "block operand {b} out of 4-bit range");
        self.activity.block_mults += 1;
        a * b
    }

    fn block_mul_su(&mut self, a_signed: i64, b_unsigned: i64) -> i64 {
        debug_assert!((-8..8).contains(&a_signed));
        debug_assert!((0..16).contains(&b_unsigned));
        self.activity.block_mults += 1;
        a_signed * b_unsigned
    }

    fn block_mul_uu(&mut self, a: i64, b: i64) -> i64 {
        debug_assert!((0..16).contains(&a));
        debug_assert!((0..16).contains(&b));
        self.activity.block_mults += 1;
        a * b
    }

    /// Unsigned `bits × bits` multiply built recursively from 4-bit blocks.
    fn mul_unsigned(&mut self, bits: u32, a: u64, b: u64) -> u64 {
        debug_assert!(bits.is_power_of_two() && bits >= BLOCK_BITS);
        debug_assert!(bits == 64 || a < (1 << bits), "operand wider than {bits} bits");
        if bits == BLOCK_BITS {
            return self.block_mul_uu(a as i64, b as i64) as u64;
        }
        let half = bits / 2;
        let mask = (1u64 << half) - 1;
        let (a1, a0) = (a >> half, a & mask);
        let (b1, b0) = (b >> half, b & mask);
        let hh = self.mul_unsigned(half, a1, b1);
        let hl = self.mul_unsigned(half, a1, b0);
        let lh = self.mul_unsigned(half, a0, b1);
        let ll = self.mul_unsigned(half, a0, b0);
        self.activity.recombine_adds += 3;
        (hh << bits).wrapping_add((hl.wrapping_add(lh)) << half).wrapping_add(ll)
    }

    /// Signed `bits × bits` multiply built recursively from 4-bit blocks.
    ///
    /// The top sub-operand is treated as signed, the bottom as unsigned
    /// (two's-complement split), matching the hardware's sign-control
    /// scheme.
    fn mul_signed(&mut self, bits: u32, a: i64, b: i64) -> i64 {
        debug_assert!(bits.is_power_of_two() && bits >= BLOCK_BITS);
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        debug_assert!(a >= min && a <= max, "operand {a} outside {bits}-bit signed range");
        debug_assert!(b >= min && b <= max, "operand {b} outside {bits}-bit signed range");
        if bits == BLOCK_BITS {
            return self.block_mul(a, b);
        }
        let half = bits / 2;
        let mask = (1i64 << half) - 1;
        let (a1, a0) = (a >> half, a & mask); // a1 signed, a0 unsigned
        let (b1, b0) = (b >> half, b & mask);
        let hh = self.mul_signed(half, a1, b1);
        let hl = self.mul_signed_unsigned(half, a1, b0);
        let lh = self.mul_signed_unsigned(half, b1, a0);
        let ll = self.mul_unsigned(half, a0 as u64, b0 as u64) as i64;
        self.activity.recombine_adds += 3;
        (hh << bits) + ((hl + lh) << half) + ll
    }

    fn mul_signed_unsigned(&mut self, bits: u32, s: i64, u: i64) -> i64 {
        if bits == BLOCK_BITS {
            return self.block_mul_su(s, u);
        }
        let half = bits / 2;
        let mask = (1i64 << half) - 1;
        let (s1, s0) = (s >> half, s & mask);
        let (u1, u0) = (u >> half, u & mask);
        let hh = self.mul_signed_unsigned(half, s1, u1);
        let hl = self.mul_signed_unsigned(half, s1, u0);
        let lh = self.mul_unsigned(half, s0 as u64, u1 as u64) as i64;
        let ll = self.mul_unsigned(half, s0 as u64, u0 as u64) as i64;
        self.activity.recombine_adds += 3;
        (hh << bits) + ((hl + lh) << half) + ll
    }

    /// 8-bit signed multiply (one "8-bit hybrid multiplier" of the CAMP
    /// lane, internally four 4-bit blocks).
    pub fn mul_i8(&mut self, a: i8, b: i8) -> i16 {
        self.mul_signed(8, a as i64, b as i64) as i16
    }

    /// 4-bit signed multiply (one building block used directly).
    ///
    /// # Panics
    /// Debug-panics if operands are outside [-8, 7].
    pub fn mul_i4(&mut self, a: i8, b: i8) -> i16 {
        self.mul_signed(4, a as i64, b as i64) as i16
    }

    /// 16-bit signed multiply (sixteen blocks; exercised by the tiling
    /// generality tests — the paper notes the block width is a design
    /// parameter).
    pub fn mul_i16(&mut self, a: i16, b: i16) -> i32 {
        self.mul_signed(16, a as i64, b as i64) as i32
    }

    /// 32-bit signed multiply (64 blocks).
    pub fn mul_i32(&mut self, a: i32, b: i32) -> i64 {
        self.mul_signed(32, a as i64, b as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_i8() {
        let mut h = HybridMultiplier::new();
        for a in i8::MIN..=i8::MAX {
            for b in i8::MIN..=i8::MAX {
                assert_eq!(h.mul_i8(a, b), a as i16 * b as i16, "{a} * {b}");
            }
        }
    }

    #[test]
    fn exhaustive_i4() {
        let mut h = HybridMultiplier::new();
        for a in -8i8..8 {
            for b in -8i8..8 {
                assert_eq!(h.mul_i4(a, b), (a as i16) * (b as i16));
            }
        }
    }

    #[test]
    fn i16_boundaries() {
        let mut h = HybridMultiplier::new();
        for &a in &[i16::MIN, -1, 0, 1, i16::MAX, 12345, -321] {
            for &b in &[i16::MIN, -1, 0, 1, i16::MAX, -9876, 77] {
                assert_eq!(h.mul_i16(a, b), a as i32 * b as i32, "{a} * {b}");
            }
        }
    }

    #[test]
    fn i32_boundaries() {
        let mut h = HybridMultiplier::new();
        for &a in &[i32::MIN, -1, 0, 1, i32::MAX, 123456789, -987654321] {
            for &b in &[i32::MIN, -1, 0, 1, i32::MAX, -5, 7] {
                assert_eq!(h.mul_i32(a, b), a as i64 * b as i64, "{a} * {b}");
            }
        }
    }

    #[test]
    fn block_count_scaling() {
        assert_eq!(HybridMultiplier::blocks_for(4), 1);
        assert_eq!(HybridMultiplier::blocks_for(8), 4);
        assert_eq!(HybridMultiplier::blocks_for(16), 16);
        assert_eq!(HybridMultiplier::blocks_for(32), 64);
    }

    #[test]
    fn activity_counts_blocks() {
        let mut h = HybridMultiplier::new();
        h.mul_i8(3, -5);
        assert_eq!(h.activity().block_mults, 4);
        assert_eq!(h.activity().recombine_adds, 3);
        h.mul_i4(1, 1);
        assert_eq!(h.activity().block_mults, 5);
        h.reset_activity();
        assert_eq!(h.activity(), &HybridActivity::default());
    }

    #[test]
    fn sixteen_bit_uses_sixteen_blocks() {
        let mut h = HybridMultiplier::new();
        h.mul_i16(-20000, 31111);
        assert_eq!(h.activity().block_mults, 16);
    }

    #[test]
    fn activity_merge() {
        let mut a = HybridActivity { block_mults: 1, recombine_adds: 2 };
        a.merge(&HybridActivity { block_mults: 10, recombine_adds: 20 });
        assert_eq!(a.block_mults, 11);
        assert_eq!(a.recombine_adds, 22);
    }
}
