//! One GeMM API over interchangeable execution substrates.
//!
//! The workspace runs the same blocked CAMP GeMM on two substrates: the
//! **host-speed engine** ([`CampEngine`], parallel, serving-grade) and
//! the **cycle-accurate simulated driver** (`camp_gemm::driver`, the
//! paper's measurement instrument). [`CampBackend`] is the single
//! request/outcome surface over both: describe a problem once as a
//! [`GemmRequest`], execute it on either backend, and get back an
//! [`Outcome`] whose [`ExecStats`] says which substrate ran — callers
//! branch on stats, never on API.
//!
//! ```
//! use camp_core::backend::{CampBackend, ExecStats, SimBackend};
//! use camp_core::{CampEngine, DType, GemmRequest};
//! use camp_pipeline::CoreConfig;
//!
//! let (m, n, k) = (4, 8, 32);
//! let a: Vec<i8> = (0..m * k).map(|i| (i % 13) as i8 - 6).collect();
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//!
//! // one request, built once ...
//! let req = GemmRequest::dense(m, n, k, a, w).expect("well-formed");
//!
//! // ... executes on host silicon ...
//! let mut host = CampEngine::new();
//! let fast = host.execute(&req).expect("host outcome");
//!
//! // ... and on the simulated CAMP core, bit-identically
//! let mut sim = SimBackend::new(CoreConfig::a64fx());
//! let slow = sim.execute(&req).expect("sim outcome");
//! assert_eq!(fast.output.c, slow.output.c);
//!
//! // stats carry the substrate: instruction counts vs simulated cycles
//! assert!(matches!(fast.stats, ExecStats::Host(_)));
//! let ExecStats::Sim(stats) = slow.stats else { panic!() };
//! assert!(stats.cycles > 0);
//! ```
//!
//! Weight registration works on both substrates: a [`WeightHandle`]
//! from [`CampBackend::register_weights`] resolves against the backend
//! that issued it — the host pre-packs the panel (zero B-packing on
//! later calls), the simulator keeps a raw mirror (batches simulate the
//! pack once per unique weight and share the packed image). Evicted
//! handles surface as [`RequestError::StaleHandle`] instead of
//! panicking.
//!
//! # Thread configuration
//!
//! This is the one place the thread story lives:
//!
//! * **`CAMP_THREADS`** — host-engine worker count
//!   ([`host_threads_from_env`]; unset or `0` means one worker per
//!   available core). Workers are spawned once per engine.
//! * **`CAMP_SIM_THREADS`** — simulated-driver scheduler width
//!   ([`sim_threads_from_env`]; unset means `1` = serial, `0` means all
//!   cores). Results are **bit-identical at any value** — the flag buys
//!   wall-clock, never changes an answer.
//!
//! Both backends clamp through [`resolve_threads`]: `0` resolves to
//! the available parallelism and the result is never below 1 (a zero
//! worker count would divide the row partition by zero). Bench binaries
//! accept `--sim-threads N` on top, which overrides the environment.

use std::sync::Arc;

use camp_gemm::driver::{simulate_gemm_batch_on, GemmOptions, SerialScheduler, SimScheduler};
use camp_gemm::host::{int_blocking, CpuFeatures, KernelInfo};
use camp_gemm::request::{GemmRequest, Operand, RequestError, ResolvedRequest};
use camp_gemm::weights::{DType, WeightHandle, WeightMeta, WeightRegistry, WeightSnapshot};
use camp_gemm::{CMatrix, GemmProblem};
use camp_pipeline::{CoreConfig, SimStats};

use crate::dispatch::Dispatcher;
use crate::engine::{CampEngine, EngineStats, StagedRequest};
use crate::pool::WorkerPool;
use crate::session::Session;

// ---- thread configuration (the single source of truth) --------------------

/// Clamp a requested worker count the way every backend does: `0` means
/// one worker per available core, and the result is never below 1.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        requested
    }
    .max(1)
}

/// Host-engine worker count from the environment: `CAMP_THREADS`,
/// resolved through [`resolve_threads`] (unset or `0` = all cores).
pub fn host_threads_from_env() -> usize {
    resolve_threads(std::env::var("CAMP_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(0))
}

/// Simulated-driver scheduler width from the environment:
/// `CAMP_SIM_THREADS`, resolved through [`resolve_threads`] except that
/// *unset* means 1 (serial — simulation results are bit-identical at
/// any width, so parallelism is strictly opt-in).
pub fn sim_threads_from_env() -> usize {
    match std::env::var("CAMP_SIM_THREADS").ok().and_then(|s| s.parse().ok()) {
        Some(n) => resolve_threads(n),
        None => 1,
    }
}

// ---- outcomes -------------------------------------------------------------

/// Which substrate executed a request, with that substrate's native
/// statistics. Callers branch on this — not on which API they called.
// Variant sizes differ (SimStats carries the full cache/stall census),
// but an ExecStats lives next to a heap-allocated output matrix — the
// inline size is noise, and boxing would tax every stats read.
#[allow(clippy::large_enum_variant)]
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub enum ExecStats {
    /// Host-speed engine: instruction-stream accounting
    /// (camp issues, vector loads/stores, pack traffic).
    Host(EngineStats),
    /// Cycle-accurate simulator: pipeline/cache statistics in the
    /// **single-core view** (cycles are the serialized sum over every
    /// block of every request — the paper's frame of reference).
    Sim(SimStats),
}

impl ExecStats {
    /// Multiply-accumulates represented, whichever substrate ran.
    pub fn macs(&self) -> u64 {
        match self {
            ExecStats::Host(s) => s.macs,
            ExecStats::Sim(s) => s.macs,
        }
    }

    /// The host stats, if the host engine ran.
    pub fn as_host(&self) -> Option<&EngineStats> {
        match self {
            ExecStats::Host(s) => Some(s),
            ExecStats::Sim(_) => None,
        }
    }

    /// The simulator stats, if the simulated driver ran.
    pub fn as_sim(&self) -> Option<&SimStats> {
        match self {
            ExecStats::Sim(s) => Some(s),
            ExecStats::Host(_) => None,
        }
    }
}

/// One computed C matrix.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Output {
    /// Row-major `m × n` result (i32 accumulation, wrapping — identical
    /// across substrates).
    pub c: Vec<i32>,
    /// Rows of `c`.
    pub m: usize,
    /// Columns of `c`.
    pub n: usize,
    /// True when a MAC-budgeted simulated backend clamped the problem:
    /// `c` then holds the clamped (padded) measurement problem, not the
    /// requested product. Always false on the host engine.
    pub clamped: bool,
}

impl Output {
    /// Build an (unclamped) output. The struct is `#[non_exhaustive]`,
    /// so out-of-crate [`CampBackend`] implementations — adapters, the
    /// model-test mocks — construct through here.
    pub fn new(c: Vec<i32>, m: usize, n: usize) -> Self {
        Output { c, m, n, clamped: false }
    }
}

/// Result of one executed request: the output plus the substrate's
/// statistics.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// The computed matrix.
    pub output: Output,
    /// Which substrate ran, and what it measured.
    pub stats: ExecStats,
}

impl Outcome {
    /// Build an outcome (see [`Output::new`] for why this exists).
    pub fn new(output: Output, stats: ExecStats) -> Self {
        Outcome { output, stats }
    }
}

/// Result of one executed batch: per-request outputs (input order) plus
/// the batch-merged statistics.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One output per request, in input order.
    pub outputs: Vec<Output>,
    /// Merged statistics of the whole batch.
    pub stats: ExecStats,
}

impl BatchOutcome {
    /// Build a batch outcome (see [`Output::new`] for why this exists).
    pub fn new(outputs: Vec<Output>, stats: ExecStats) -> Self {
        BatchOutcome { outputs, stats }
    }
}

// ---- capability probes ----------------------------------------------------

/// What a backend can promise, for callers that adapt instead of
/// hard-coding a substrate.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Capability {
    /// Wall-clock performance is meaningful (run it for answers, not
    /// measurements).
    HostSpeed,
    /// [`ExecStats::Sim`] cycle/stall/cache accounting is available.
    CycleAccurateStats,
    /// Registered weights execute with zero B re-packing on the steady
    /// state (the host registry pre-packs; the simulator re-simulates
    /// one pack per unique weight per batch).
    ZeroRepackWeights,
    /// Problems above a MAC budget are clamped structure-preservingly
    /// (a measurement feature: outputs then describe the clamped
    /// problem).
    MacClamping,
}

// ---- the trait ------------------------------------------------------------

/// One GeMM backend: executes [`GemmRequest`]s, owns a weight registry,
/// and can be wrapped by the serving [`Session`] (whose staging thread
/// uses [`CampBackend::prepare`] to move work off the compute path).
///
/// Implementations must be **bit-identical** to each other for i32-
/// accumulating camp kernels: the same request batch produces the same
/// bytes on every backend (property-tested in `tests/backend_parity.rs`).
pub trait CampBackend {
    /// Staged form of a validated request, built off the compute path
    /// by the serving session's staging thread.
    type Prepared: Send + 'static;

    /// Stable human-readable identity ("host-engine", "sim-a64fx", …).
    fn name(&self) -> &'static str;

    /// Resolved worker/scheduler thread count.
    fn threads(&self) -> usize;

    /// Capability probe; see [`Capability`].
    fn supports(&self, cap: Capability) -> bool;

    /// Which micro-kernel tier this backend computes with: the host
    /// engine reports its dispatched [`camp_gemm::host::HostKernel`]
    /// (scalar / AVX2 / NEON plus the probed [`CpuFeatures`] and active
    /// blocking); the simulator reports its synthetic camp tier (the
    /// simulated VVA kernel is the same regardless of host silicon).
    fn kernel_info(&self) -> KernelInfo;

    /// Register a row-major k×n weight matrix for `dtype`'s kernel;
    /// the handle resolves only against this backend.
    fn register_weights(&mut self, n: usize, k: usize, b: &[i8], dtype: DType) -> WeightHandle;

    /// Drop one registration; later uses of the handle return
    /// [`RequestError::StaleHandle`].
    fn evict_weights(&mut self, h: WeightHandle) -> Result<WeightMeta, RequestError>;

    /// Drop every registration.
    fn clear_weights(&mut self);

    /// Shape/dtype of a registration, or why the handle is invalid.
    fn try_weight_meta(&self, h: WeightHandle) -> Result<WeightMeta, RequestError>;

    /// Submit-time snapshot of the registry (what a [`Session`]
    /// validates against).
    fn weight_snapshot(&self) -> WeightSnapshot;

    /// Execute a batch of requests; outputs come back in input order,
    /// with dense B operands deduplicated by buffer identity and
    /// handle operands resolved against this backend's registry.
    fn execute_batch(&mut self, reqs: &[GemmRequest]) -> Result<BatchOutcome, RequestError>;

    /// Execute one request.
    fn execute(&mut self, req: &GemmRequest) -> Result<Outcome, RequestError> {
        let mut batch = self.execute_batch(std::slice::from_ref(req))?;
        let output = batch.outputs.pop().expect("one request in, one output out");
        Ok(Outcome { output, stats: batch.stats })
    }

    /// Stage one *validated* request off the compute path (no `self`:
    /// this runs on the session's staging thread while the backend
    /// computes the previous batch). The host engine pre-packs operands
    /// here; substrates with nothing to stage return the request as-is.
    fn prepare(req: GemmRequest, weights: &WeightSnapshot) -> Self::Prepared;

    /// Execute one staged batch on the session's driver thread.
    /// Requests were validated at submit time, so this is infallible.
    fn execute_prepared(&mut self, batch: Vec<Self::Prepared>) -> BatchOutcome;

    /// Upgrade the backend into a submit/poll serving [`Session`]
    /// (register weights first — submissions validate against the
    /// registrations present now).
    fn serve(self) -> Session<Self>
    where
        Self: Sized + Send + 'static,
    {
        Session::new(self)
    }

    /// Upgrade the backend into a shared multi-tenant [`Dispatcher`]
    /// with [`crate::dispatch::DispatchOptions::from_env`]: N sessions
    /// over this one backend, with work-stealing staging, priorities
    /// and per-session
    /// admission control. Register weights first — submissions
    /// validate against the registrations present now.
    fn dispatch(self) -> Dispatcher<Self>
    where
        Self: Sized + Send + 'static,
    {
        Dispatcher::new(self)
    }
}

// ---- the host engine as a backend -----------------------------------------

impl CampBackend for CampEngine {
    type Prepared = StagedRequest;

    fn name(&self) -> &'static str {
        "host-engine"
    }

    fn threads(&self) -> usize {
        CampEngine::threads(self)
    }

    fn supports(&self, cap: Capability) -> bool {
        matches!(cap, Capability::HostSpeed | Capability::ZeroRepackWeights)
    }

    fn kernel_info(&self) -> KernelInfo {
        CampEngine::kernel_info(self)
    }

    fn register_weights(&mut self, n: usize, k: usize, b: &[i8], dtype: DType) -> WeightHandle {
        CampEngine::register_weights(self, n, k, b, dtype)
    }

    fn evict_weights(&mut self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        CampEngine::evict_weights(self, h)
    }

    fn clear_weights(&mut self) {
        CampEngine::clear_weights(self)
    }

    fn try_weight_meta(&self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        CampEngine::try_weight_meta(self, h)
    }

    fn weight_snapshot(&self) -> WeightSnapshot {
        CampEngine::weight_snapshot(self)
    }

    fn execute_batch(&mut self, reqs: &[GemmRequest]) -> Result<BatchOutcome, RequestError> {
        let snap = self.weight_snapshot();
        let resolved: Vec<ResolvedRequest> =
            reqs.iter().map(|r| r.resolve(&snap)).collect::<Result<_, _>>()?;
        let problems: Vec<GemmProblem<'_>> = reqs
            .iter()
            .zip(&resolved)
            .map(|(req, r)| match req.weights() {
                Operand::Dense(b) => {
                    GemmProblem::new(r.m, r.n, r.k, req.activation(), b).with_dtype(r.dtype)
                }
                Operand::Handle(h) => GemmProblem::with_handle(r.m, r.n, r.k, req.activation(), *h)
                    .with_dtype(r.dtype),
            })
            .collect();
        let (cs, stats) = self.gemm_batch_impl(&problems, None);
        let outputs = cs
            .into_iter()
            .zip(&resolved)
            .map(|(c, r)| Output { c, m: r.m, n: r.n, clamped: false })
            .collect();
        Ok(BatchOutcome { outputs, stats: ExecStats::Host(stats) })
    }

    fn prepare(req: GemmRequest, weights: &WeightSnapshot) -> StagedRequest {
        StagedRequest::stage(req, weights)
    }

    fn execute_prepared(&mut self, batch: Vec<StagedRequest>) -> BatchOutcome {
        let (cs, stats) = self.run_staged(&batch);
        let outputs = cs
            .into_iter()
            .zip(&batch)
            .map(|(c, r)| Output { c, m: r.m, n: r.n, clamped: false })
            .collect();
        BatchOutcome { outputs, stats: ExecStats::Host(stats) }
    }
}

// ---- the simulated backend ------------------------------------------------

/// The cycle-accurate substrate behind the unified API: requests run on
/// the parallel simulated driver (`camp_gemm::driver`), one independent
/// (jc, pc) block unit per `Simulator`, scheduled across
/// [`SimBackend::with_threads`] workers with **bit-identical** results
/// at any width. The dtype selects the camp kernel (`camp.s8` /
/// `camp.s4`), exactly like the host engine.
///
/// Weights registered here live in a *simulated* registry: a raw
/// mirror of the bytes with the same handle semantics (identity,
/// generations, eviction) as the host registry, so the same
/// [`GemmRequest`] — handle operands included — executes on both
/// substrates. Within a batch, every problem sharing one weight
/// simulates its packing once (the packed image is re-staged for the
/// sharers).
///
/// By default problems are simulated at full size. For harness-style
/// measurements, [`SimBackend::with_mac_budget`] enables the paper's
/// structure-preserving clamp; clamped outputs are flagged
/// ([`Output::clamped`]) because they describe the clamped measurement
/// problem, not the requested product.
#[derive(Debug)]
pub struct SimBackend {
    core: CoreConfig,
    mac_budget: u64,
    threads: usize,
    pool: Option<WorkerPool>,
    weights: WeightRegistry,
}

impl SimBackend {
    /// Serial simulated backend for `core` (no clamping, no verify
    /// overhead — correctness is the parity test suite's job).
    pub fn new(core: CoreConfig) -> Self {
        SimBackend {
            core,
            mac_budget: u64::MAX,
            threads: 1,
            pool: None,
            weights: WeightRegistry::raw_mirror(),
        }
    }

    /// Convenience: the paper's A64FX-like core.
    pub fn a64fx() -> Self {
        SimBackend::new(CoreConfig::a64fx())
    }

    /// Schedule block units across `threads` workers
    /// ([`resolve_threads`] clamping: 0 = all cores). Results are
    /// bit-identical at any width.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        let threads = resolve_threads(threads);
        self.threads = threads;
        self.pool = (threads > 1).then(|| WorkerPool::new(threads));
        self
    }

    /// Clamp problems above `mac_budget` MACs structure-preservingly
    /// (the figure harness rule); clamped outputs are flagged.
    #[must_use]
    pub fn with_mac_budget(mut self, mac_budget: u64) -> Self {
        self.mac_budget = mac_budget;
        self
    }

    /// The simulated core configuration.
    pub fn core(&self) -> CoreConfig {
        self.core
    }

    fn scheduler(&self) -> &dyn SimScheduler {
        match &self.pool {
            Some(pool) => pool,
            None => &SerialScheduler,
        }
    }
}

impl CampBackend for SimBackend {
    /// Nothing to stage: simulation stages operands into machine memory
    /// per block unit anyway, so the session pipeline passes requests
    /// through unchanged.
    type Prepared = GemmRequest;

    fn name(&self) -> &'static str {
        "cycle-accurate-sim"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn supports(&self, cap: Capability) -> bool {
        match cap {
            Capability::CycleAccurateStats => true,
            Capability::MacClamping => self.mac_budget != u64::MAX,
            Capability::HostSpeed | Capability::ZeroRepackWeights => false,
        }
    }

    fn kernel_info(&self) -> KernelInfo {
        // The simulated camp kernel is the same VVA program on any host;
        // the probe is reported for context, not dispatch.
        KernelInfo {
            tier: "sim-camp".to_string(),
            simd: false,
            features: CpuFeatures::detect(),
            int_tile_i8: (4, 4),
            int_tile_i4: (4, 4),
            f32_tile: (0, 0),
            int_blocking: int_blocking(),
            f32_blocking: (0, 0, 0),
        }
    }

    fn register_weights(&mut self, n: usize, k: usize, b: &[i8], dtype: DType) -> WeightHandle {
        self.weights.register(n, k, b, dtype)
    }

    fn evict_weights(&mut self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        self.weights.evict(h)
    }

    fn clear_weights(&mut self) {
        self.weights.clear()
    }

    fn try_weight_meta(&self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        self.weights.try_meta(h)
    }

    fn weight_snapshot(&self) -> WeightSnapshot {
        self.weights.snapshot()
    }

    fn execute_batch(&mut self, reqs: &[GemmRequest]) -> Result<BatchOutcome, RequestError> {
        let snap = self.weights.snapshot();
        let resolved: Vec<ResolvedRequest> =
            reqs.iter().map(|r| r.resolve(&snap)).collect::<Result<_, _>>()?;
        // raw B bytes per handle request (kept alive across the batch so
        // problems can borrow them; Arc clones, no copies)
        let raws: Vec<Option<Arc<[i8]>>> = reqs
            .iter()
            .map(|req| match req.weights() {
                Operand::Handle(h) => self.weights.raw(*h).map(Some),
                Operand::Dense(_) => Ok(None),
            })
            .collect::<Result<_, _>>()?;

        // simulate only the non-degenerate requests; degenerate ones get
        // the host engine's rule (empty, or all-zero when only k is 0)
        let mut problems: Vec<GemmProblem<'_>> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (i, (req, r)) in reqs.iter().zip(&resolved).enumerate() {
            if r.is_degenerate() {
                continue;
            }
            let b: &[i8] = match req.weights() {
                Operand::Dense(b) => b,
                Operand::Handle(_) => raws[i].as_deref().expect("raw bytes resolved above"),
            };
            problems.push(GemmProblem::new(r.m, r.n, r.k, req.activation(), b).with_dtype(r.dtype));
            slots.push(i);
        }

        let opts = GemmOptions { mac_budget: self.mac_budget, verify: false, ..Default::default() };
        let batch = simulate_gemm_batch_on(self.core, &problems, &opts, self.scheduler());

        let mut outputs: Vec<Output> = resolved
            .iter()
            .map(|r| Output { c: vec![0i32; r.m * r.n], m: r.m, n: r.n, clamped: false })
            .collect();
        let mut stats = SimStats::default();
        for (&slot, result) in slots.iter().zip(&batch.results) {
            let r = &resolved[slot];
            // the single-core frame: every block of every request
            // serialized on one core (the paper's view; lane-parallel
            // stats stay available through camp_gemm::driver directly)
            let mut single = result.stats;
            single.cycles = result.serial_cycles;
            stats.merge(&single);
            let CMatrix::I32(padded) = &result.c else {
                unreachable!("camp kernels accumulate i32");
            };
            outputs[slot] = if result.clamped {
                // the clamped (padded) measurement problem, flagged
                Output { c: padded.clone(), m: result.m, n: result.n, clamped: true }
            } else {
                // unpad the requested m×n region (np = result.n)
                let mut c = vec![0i32; r.m * r.n];
                for i in 0..r.m {
                    c[i * r.n..(i + 1) * r.n]
                        .copy_from_slice(&padded[i * result.n..i * result.n + r.n]);
                }
                Output { c, m: r.m, n: r.n, clamped: false }
            };
        }
        Ok(BatchOutcome { outputs, stats: ExecStats::Sim(stats) })
    }

    fn prepare(req: GemmRequest, _weights: &WeightSnapshot) -> GemmRequest {
        req
    }

    fn execute_prepared(&mut self, batch: Vec<GemmRequest>) -> BatchOutcome {
        self.execute_batch(&batch).expect("session requests are validated at submit")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_gemm::gemm_i32_ref;

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    #[test]
    fn thread_resolution_clamps_like_the_engines() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn one_request_runs_on_both_substrates_bit_identically() {
        let (m, n, k) = (5, 7, 33);
        let a = fill(m * k, 3);
        let w = fill(k * n, 5);
        let req = GemmRequest::dense(m, n, k, a.clone(), w.clone()).unwrap();
        let reference = gemm_i32_ref(m, n, k, &a, &w);

        let mut host = CampEngine::with_threads(2);
        let fast = host.execute(&req).unwrap();
        assert_eq!(fast.output.c, reference);
        assert_eq!((fast.output.m, fast.output.n), (m, n));
        assert!(!fast.output.clamped);
        assert!(fast.stats.as_host().is_some());
        assert_eq!(fast.stats.macs(), (m * n * k) as u64);

        let mut sim = SimBackend::a64fx();
        let slow = sim.execute(&req).unwrap();
        assert_eq!(slow.output.c, reference);
        assert!(slow.stats.as_sim().unwrap().cycles > 0);
        assert!(slow.stats.as_host().is_none());
    }

    #[test]
    fn handle_requests_execute_on_both_substrates() {
        let (m, n, k) = (4, 8, 40);
        let a = fill(m * k, 3);
        let w = fill(k * n, 5);
        let reference = gemm_i32_ref(m, n, k, &a, &w);

        let mut host = CampEngine::new();
        let mut sim = SimBackend::a64fx();
        let hh = CampBackend::register_weights(&mut host, n, k, &w, DType::I4);
        let sh = sim.register_weights(n, k, &w, DType::I4);

        let host_req = GemmRequest::with_weights(m, a.clone(), hh).unwrap();
        let sim_req = GemmRequest::with_weights(m, a.clone(), sh).unwrap();
        let fast = host.execute(&host_req).unwrap();
        let slow = sim.execute(&sim_req).unwrap();
        assert_eq!(fast.output.c, reference);
        assert_eq!(slow.output.c, reference);
        // the i4 registration drives the kernel on both sides
        assert_eq!(host.try_weight_meta(hh).unwrap().dtype, DType::I4);
        assert_eq!(sim.try_weight_meta(sh).unwrap().dtype, DType::I4);

        // handles do not cross substrates
        let crossed = host.execute(&sim_req).unwrap_err();
        assert_eq!(crossed, RequestError::ForeignHandle);
    }

    #[test]
    fn stale_handles_err_instead_of_panicking() {
        // same behavior on both substrates, via the trait
        fn check<B: CampBackend>(mut backend: B, n: usize, k: usize, w: &[i8]) {
            let h = backend.register_weights(n, k, w, DType::I8);
            let evicted = backend.evict_weights(h).unwrap();
            assert_eq!((evicted.n, evicted.k), (n, k));
            let req = GemmRequest::with_weights(2, vec![0i8; 2 * k], h).unwrap();
            assert_eq!(backend.execute(&req).unwrap_err(), RequestError::StaleHandle);
            assert_eq!(backend.try_weight_meta(h).unwrap_err(), RequestError::StaleHandle);
            assert_eq!(backend.evict_weights(h).unwrap_err(), RequestError::StaleHandle);
        }
        let (n, k) = (4, 16);
        let w = fill(k * n, 5);
        check(CampEngine::new(), n, k, &w);
        check(SimBackend::a64fx(), n, k, &w);
    }

    #[test]
    fn degenerate_requests_follow_the_host_rule_on_both_substrates() {
        // k = 0 yields an all-zero m×n C; m or n = 0 yields empty
        let zero_k = GemmRequest::dense(3, 4, 0, vec![], vec![]).unwrap();
        let zero_m = GemmRequest::dense(0, 4, 4, vec![], vec![0i8; 16]).unwrap();
        let mut host = CampEngine::new();
        let mut sim = SimBackend::a64fx();
        for req in [&zero_k, &zero_m] {
            let fast = host.execute(req).unwrap();
            let slow = sim.execute(req).unwrap();
            assert_eq!(fast.output.c, slow.output.c);
        }
        assert_eq!(host.execute(&zero_k).unwrap().output.c, vec![0i32; 12]);
        assert!(sim.execute(&zero_m).unwrap().output.c.is_empty());
    }

    #[test]
    fn sim_batches_dedup_shared_weights() {
        let (n, k) = (8, 32);
        let w: Arc<[i8]> = fill(k * n, 5).into();
        let a1 = fill(4 * k, 3);
        let a2 = fill(4 * k, 9);
        let shared = [
            GemmRequest::dense(4, n, k, a1.clone(), Arc::clone(&w)).unwrap(),
            GemmRequest::dense(4, n, k, a2, Arc::clone(&w)).unwrap(),
        ];
        let mut sim = SimBackend::a64fx();
        let both = sim.execute_batch(&shared).unwrap();
        let alone = sim.execute_batch(&shared[..1]).unwrap();
        assert_eq!(both.outputs[0].c, alone.outputs[0].c);
        // sharing one Arc means one simulated B-pack: the batch costs
        // less than two standalone runs
        let ExecStats::Sim(batch_stats) = &both.stats else { panic!() };
        let ExecStats::Sim(solo_stats) = &alone.stats else { panic!() };
        assert!(batch_stats.insts < 2 * solo_stats.insts, "B-pack must be deduplicated");
    }

    #[test]
    fn mac_clamping_is_opt_in_and_flagged() {
        let (m, n, k) = (64, 64, 64);
        let req = GemmRequest::dense(m, n, k, fill(m * k, 3), fill(k * n, 5)).unwrap();
        let mut sim = SimBackend::a64fx().with_mac_budget(10_000);
        assert!(sim.supports(Capability::MacClamping));
        let out = sim.execute(&req).unwrap();
        assert!(out.output.clamped, "a 262 k-MAC problem must clamp under a 10 k budget");
        assert!((out.output.m * out.output.n) <= m * n);
        let unclamped = SimBackend::a64fx();
        assert!(!unclamped.supports(Capability::MacClamping));
    }

    #[test]
    fn capability_probes_separate_the_substrates() {
        let host = CampEngine::new();
        let sim = SimBackend::a64fx().with_threads(2);
        assert!(host.supports(Capability::HostSpeed));
        assert!(host.supports(Capability::ZeroRepackWeights));
        assert!(!host.supports(Capability::CycleAccurateStats));
        assert!(sim.supports(Capability::CycleAccurateStats));
        assert!(!sim.supports(Capability::HostSpeed));
        assert_eq!(CampBackend::threads(&sim), 2);
        assert_ne!(CampBackend::name(&host), sim.name());
    }

    #[test]
    fn kernel_info_identifies_each_substrate() {
        let host = CampEngine::new();
        let info = CampBackend::kernel_info(&host);
        assert!(["scalar", "avx2", "avx512", "neon"].contains(&info.tier.as_str()));
        assert_eq!(info.int_tile_i8.0, 4);
        assert_eq!(info.int_tile_i8.1 % 4, 0);
        assert_eq!(info.int_tile_i4, info.int_tile_i8);
        assert!(info.int_blocking.0 > 0);
        // the Display form is what serving logs print
        assert!(info.to_string().contains(&info.tier));

        let sim = SimBackend::a64fx();
        let sinfo = sim.kernel_info();
        assert_eq!(sinfo.tier, "sim-camp");
        assert!(!sinfo.simd);
        assert_eq!(sinfo.int_tile_i8, (4, 4));
        assert_eq!(sinfo.int_tile_i4, (4, 4));
    }

    #[test]
    fn sim_pool_width_is_bit_invisible() {
        let (m, n, k) = (9, 11, 70);
        let req = GemmRequest::dense(m, n, k, fill(m * k, 3), fill(k * n, 5)).unwrap();
        let serial = SimBackend::a64fx().execute(&req).unwrap();
        let pooled = SimBackend::a64fx().with_threads(4).execute(&req).unwrap();
        assert_eq!(serial.output, pooled.output);
        assert_eq!(serial.stats, pooled.stats);
    }
}
