//! Multi-tenant serving dispatcher: N sessions, one engine.
//!
//! [`Session`](crate::session::Session) owns its backend exclusively —
//! concurrency stops at one client. Production serving means many
//! concurrent clients over one warm engine and one weight registry.
//! [`Dispatcher`] is that layer: it owns the backend, spawns a small
//! crew of **stager** threads plus one **driver** thread, and hands out
//! any number of [`DispatchSession`] clients, each with its own FIFO
//! queue, ticket space and admission bound.
//!
//! The pipeline generalizes the single-tenant session's three stages:
//!
//! 1. **submit** ([`DispatchSession::submit`] /
//!    [`DispatchSession::submit_with`]) — validates the batch against
//!    the registration snapshot, applies **admission control** (a
//!    session with [`DispatchOptions::queue_depth`] batches already in
//!    flight gets [`RequestError::Saturated`] back instead of unbounded
//!    memory growth), stamps a [`Priority`] and optional deadline, and
//!    returns a [`TicketId`];
//! 2. **stage** — the stager crew claims queued batches and runs
//!    [`CampBackend::prepare`] off the compute path. Claiming is
//!    **priority-aware and work-stealing**: under
//!    [`StealPolicy::Eager`] any stager takes the best-priority front
//!    batch of any session (stealing across sessions whenever its own
//!    are idle); [`StealPolicy::Pinned`] partitions sessions across
//!    stagers by slot for cache affinity. A per-session window of
//!    [`MAX_STAGED`] claimed-but-uncomputed batches preserves the
//!    "pack batch N+1 while batch N computes" overlap without staging
//!    a whole backlog into memory;
//! 3. **compute** — the driver owns the backend and repeatedly executes
//!    the *best* ready batch: highest [`Priority`] first
//!    (decode-latency-critical beats prefill-throughput), then earliest
//!    deadline, then admission order. An aging rule bounds priority
//!    inversion the other way: after [`DECODE_BURST`] consecutive
//!    decode batches the driver runs the best waiting prefill batch, so
//!    a decode flood cannot starve prefill indefinitely (and a prefill
//!    flood never delays decode by more than the one batch already on
//!    the engine). A picked batch whose deadline has **already passed**
//!    is shed — completed as [`RequestError::Shed`] without touching
//!    the engine (counted in [`DispatchStats::shed`]) — so an overload
//!    spends cycles only on batches that can still make their
//!    deadlines.
//!
//! Weight **eviction races** are first-class: [`Dispatcher::evict_weights`]
//! condemns the handle immediately (new submissions fail with
//! [`RequestError::StaleHandle`]) and queues a control op the driver
//! serializes with batch execution, so a stale handle racing a live
//! session errs per batch instead of panicking the engine.
//!
//! Every primitive comes from [`crate::sync`], so the whole protocol is
//! explored by the `camp-loom` model checker (`tests/model/dispatch_model.rs`)
//! under `RUSTFLAGS="--cfg loom"`.
//!
//! ```
//! use camp_core::backend::CampBackend;
//! use camp_core::dispatch::{DispatchOptions, Dispatcher, Priority, StealPolicy};
//! use camp_core::{CampEngine, DType, GemmRequest};
//!
//! let (n, k) = (8, 32);
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//! let mut engine = CampEngine::with_threads(2);
//! let weights = engine.register_weights(n, k, &w, DType::I8);
//!
//! let opts = DispatchOptions { stagers: 2, queue_depth: 8, steal: StealPolicy::Eager };
//! let dispatcher = Dispatcher::with_options(engine, opts);
//! let mut decode = dispatcher.session();
//! let mut prefill = dispatcher.session();
//!
//! let a: Vec<i8> = (0..2 * k).map(|i| (i % 13) as i8 - 6).collect();
//! let d = decode
//!     .submit_with(
//!         vec![GemmRequest::with_weights(2, a.clone(), weights).unwrap()],
//!         Priority::Decode,
//!         None,
//!     )
//!     .unwrap();
//! let p = prefill.submit(vec![GemmRequest::with_weights(2, a, weights).unwrap()]).unwrap();
//! assert_eq!(decode.wait(d).unwrap().outputs.len(), 1);
//! assert_eq!(prefill.wait(p).unwrap().outputs.len(), 1);
//! drop((decode, prefill));
//! let _engine = dispatcher.into_backend(); // drains, hands the warm engine back
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

// the sync seam: std primitives normally, the camp-loom model checker
// under `--cfg loom` (see crate::sync and tests/model/)
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Condvar, Mutex, MutexGuard};

use camp_gemm::request::{GemmRequest, Operand, RequestError};
use camp_gemm::weights::{WeightHandle, WeightMeta, WeightSnapshot};

use crate::backend::{BatchOutcome, CampBackend};

/// Batches one session may have claimed-but-uncomputed (being prepared,
/// ready, or on the engine) at a time: one computing, one staging — the
/// documented "pack batch N+1 while batch N computes" window. Beyond
/// this the stagers move to other sessions (or park) instead of staging
/// a whole backlog into memory.
pub const MAX_STAGED: usize = 2;

/// Aging bound: after this many *consecutive* decode batches the driver
/// runs the best waiting prefill batch, so a decode flood cannot starve
/// prefill work indefinitely. (The reverse inversion — prefill starving
/// decode — is bounded at one batch by the priority order itself.)
pub const DECODE_BURST: u32 = 8;

/// Scheduling class of a submitted batch. Decode-latency-critical work
/// outranks prefill-throughput work at every scheduling point (claim
/// order and execute order); `Ord` encodes that (`Decode > Prefill`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput-oriented work (prompt prefill, bulk scoring). The
    /// default for [`DispatchSession::submit`].
    #[default]
    Prefill,
    /// Latency-critical work (autoregressive decode steps); beats
    /// prefill whenever both are runnable.
    Decode,
}

/// How stagers pick sessions to stage from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum StealPolicy {
    /// Any stager claims the best pending batch of *any* session —
    /// work-stealing across sessions; claims outside a stager's home
    /// partition are counted in [`DispatchStats::stolen`]. The default.
    #[default]
    Eager,
    /// Sessions are partitioned across stagers by slot (`slot %
    /// stagers`); a stager only stages its own partition. No stealing,
    /// stable operand-cache affinity.
    Pinned,
}

/// Dispatcher construction knobs; see [`DispatchOptions::from_env`] for
/// the environment surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchOptions {
    /// Stager threads preparing operands off the compute path (≥ 1).
    pub stagers: usize,
    /// Default per-session admission bound: a session with this many
    /// batches in flight (submitted, not yet completed) has further
    /// submissions rejected with [`RequestError::Saturated`].
    /// [`Dispatcher::session_with_depth`] overrides per session.
    pub queue_depth: usize,
    /// Session-claiming policy of the stager crew.
    pub steal: StealPolicy,
}

impl Default for DispatchOptions {
    fn default() -> Self {
        DispatchOptions { stagers: 2, queue_depth: 8, steal: StealPolicy::Eager }
    }
}

impl DispatchOptions {
    /// Defaults with the environment overrides applied:
    ///
    /// * `CAMP_DISPATCH_STAGERS` — stager thread count (clamped ≥ 1);
    /// * `CAMP_QUEUE_DEPTH` — per-session admission bound (clamped ≥ 1);
    /// * `CAMP_STEAL_POLICY` — `eager` or `pinned` (anything else
    ///   panics loudly rather than silently serving with a policy the
    ///   operator did not ask for).
    pub fn from_env() -> Self {
        let mut opts = DispatchOptions::default();
        if let Some(n) = std::env::var("CAMP_DISPATCH_STAGERS").ok().and_then(|s| s.parse().ok()) {
            opts.stagers = 1usize.max(n);
        }
        if let Some(n) = std::env::var("CAMP_QUEUE_DEPTH").ok().and_then(|s| s.parse().ok()) {
            opts.queue_depth = 1usize.max(n);
        }
        if let Ok(s) = std::env::var("CAMP_STEAL_POLICY") {
            opts.steal = match s.to_ascii_lowercase().as_str() {
                "eager" => StealPolicy::Eager,
                "pinned" => StealPolicy::Pinned,
                other => panic!("CAMP_STEAL_POLICY must be 'eager' or 'pinned', got '{other}'"),
            };
        }
        opts
    }
}

/// Identifier of one submitted batch; redeem it with
/// [`DispatchSession::poll`] or [`DispatchSession::wait`] (or the
/// single-tenant [`crate::session::Session`] equivalents). Stamped with
/// its session's identity, so a ticket presented to a different session
/// panics instead of silently redeeming that session's unrelated
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketId {
    session: u64,
    seq: u64,
}

/// Monotonic + live counters of one dispatcher, snapshotted by
/// [`Dispatcher::stats`]. The regression suites assert on these: permit
/// accounting (`staging_live` returns to 0 after a drain), steal
/// accounting (`stolen == 0` under [`StealPolicy::Pinned`]), admission
/// accounting (`rejected` counts every [`RequestError::Saturated`]).
#[non_exhaustive]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Batches accepted by admission control, ever.
    pub submitted: u64,
    /// Batches executed to completion (successfully), ever.
    pub executed: u64,
    /// Batches cancelled unclaimed when their session dropped, ever.
    pub cancelled: u64,
    /// Submissions rejected with [`RequestError::Saturated`], ever.
    pub rejected: u64,
    /// Batches a stager claimed outside its home partition
    /// ([`StealPolicy::Eager`] only; pinned stagers never steal), ever.
    pub stolen: u64,
    /// Eviction control ops accepted by [`Dispatcher::evict_weights`],
    /// ever.
    pub evictions: u64,
    /// Batches failed with [`RequestError::StaleHandle`] because a
    /// handle they carry was condemned before they reached the engine,
    /// ever.
    pub stale_failures: u64,
    /// Batches shed because their deadline had already passed when the
    /// driver picked them — completed as [`RequestError::Shed`] without
    /// touching the engine, ever.
    pub shed: u64,
    /// Batches currently claimed-but-uncompleted across all sessions
    /// (being prepared, ready, or on the engine). 0 when drained.
    pub staging_live: usize,
    /// Batches staged and ready for the driver right now.
    pub ready_now: usize,
    /// Sessions currently open (or closed with work still in flight).
    pub sessions_live: usize,
}

// ---- shared state ----------------------------------------------------------

/// One queued batch: validated, not yet claimed by a stager.
struct Pending {
    seq: u64,
    batch: Vec<GemmRequest>,
    priority: Priority,
    deadline: Option<Instant>,
    /// Weight handles the batch references (for the condemned check).
    handles: Vec<WeightHandle>,
    /// Global admission order, the FIFO tie-breaker across sessions.
    admit: u64,
}

/// One staged batch: prepared, waiting for (or on) the engine.
struct ReadyBatch<P> {
    slot: usize,
    seq: u64,
    staged: Vec<P>,
    priority: Priority,
    deadline: Option<Instant>,
    handles: Vec<WeightHandle>,
    admit: u64,
}

/// Per-session queue + ticket state.
struct SessQueue {
    /// Admission bound: max batches in flight before `Saturated`.
    depth: usize,
    /// Submitted, not yet claimed by a stager.
    submitted: VecDeque<Pending>,
    /// Batches in flight: submitted and not yet completed/cancelled.
    /// This — not the queue length — is what admission control bounds,
    /// so the documented bound holds regardless of stager/driver
    /// interleaving.
    pending: usize,
    /// Claimed-but-uncompleted batches (≤ [`MAX_STAGED`]).
    staged_live: usize,
    /// Completed, not yet collected.
    done: HashMap<u64, Result<BatchOutcome, RequestError>>,
    /// Collected-ticket compaction (identical to the single-tenant
    /// session's): everything below the floor was redeemed, plus the
    /// sparse set above it.
    collected_floor: u64,
    collected: HashSet<u64>,
    /// The client was dropped; cancel unclaimed work, drop new results,
    /// reap the slot once in-flight work completes.
    closed: bool,
}

impl SessQueue {
    fn with_depth(depth: usize) -> Self {
        SessQueue {
            depth,
            submitted: VecDeque::new(),
            pending: 0,
            staged_live: 0,
            done: HashMap::new(),
            collected_floor: 0,
            collected: HashSet::new(),
            closed: false,
        }
    }

    fn is_collected(&self, ticket: u64) -> bool {
        ticket < self.collected_floor || self.collected.contains(&ticket)
    }

    fn mark_collected(&mut self, ticket: u64) {
        self.collected.insert(ticket);
        while self.collected.remove(&self.collected_floor) {
            self.collected_floor += 1;
        }
    }

    fn collected_count(&self) -> usize {
        self.collected_floor as usize + self.collected.len()
    }
}

/// Monotonic counters (the gauge fields of [`DispatchStats`] are
/// derived from live state at snapshot time).
#[derive(Default)]
struct Counters {
    submitted: u64,
    executed: u64,
    cancelled: u64,
    rejected: u64,
    stolen: u64,
    evictions: u64,
    stale_failures: u64,
    shed: u64,
}

/// Dispatcher state shared by clients, stagers and the driver.
///
/// Scheduling scans (`claim`, `pick_ready`) walk `Vec`s in slot/index
/// order on purpose: `HashMap`/`HashSet` iteration order must never
/// drive a scheduling decision or the loom models would explore
/// schedules production never runs (keyed lookups are fine).
struct DispState<P> {
    /// Session slots; `None` slots are reaped and reusable.
    sessions: Vec<Option<SessQueue>>,
    /// Staged batches awaiting the driver.
    ready: Vec<ReadyBatch<P>>,
    /// Eviction control ops awaiting the driver (serialized with batch
    /// execution — the driver owns the backend).
    controls: VecDeque<WeightHandle>,
    /// Handles condemned by [`Dispatcher::evict_weights`]: submissions
    /// and ready batches carrying one fail with `StaleHandle` instead
    /// of reaching an engine that may already have dropped the panel.
    condemned: HashSet<WeightHandle>,
    /// Global admission counter (cross-session FIFO tie-breaker).
    admit_seq: u64,
    /// Consecutive decode batches the driver has run (the aging rule).
    decode_run: u32,
    live_stagers: usize,
    shutdown: bool,
    /// Set when a pipeline thread died; clients panic instead of
    /// hanging.
    dead: Option<&'static str>,
    stats: Counters,
}

impl<P> DispState<P> {
    /// True while `worker` may yet have claimable work under `shutdown`
    /// — any visible session with a non-empty queue, *ignoring* the
    /// [`MAX_STAGED`] window (capped work still pending means "wait for
    /// the driver to make room", not "exit and drop it").
    fn drainable(&self, worker: usize, stagers: usize, steal: StealPolicy) -> bool {
        self.sessions.iter().enumerate().any(|(slot, q)| {
            q.as_ref().is_some_and(|q| {
                !q.submitted.is_empty() && (steal == StealPolicy::Eager || slot % stagers == worker)
            })
        })
    }

    /// Claim the best pending batch visible to `worker`: highest
    /// front-of-queue priority, then earliest admission, skipping
    /// sessions at their [`MAX_STAGED`] window (and, under
    /// [`StealPolicy::Pinned`], sessions outside the worker's
    /// partition).
    fn claim(
        &mut self,
        worker: usize,
        stagers: usize,
        steal: StealPolicy,
    ) -> Option<(usize, Pending)> {
        let mut best: Option<(usize, Priority, u64)> = None;
        for (slot, q) in self.sessions.iter().enumerate() {
            let Some(q) = q else { continue };
            if q.staged_live >= MAX_STAGED {
                continue;
            }
            if steal == StealPolicy::Pinned && slot % stagers != worker {
                continue;
            }
            let Some(front) = q.submitted.front() else { continue };
            let better = match best {
                None => true,
                Some((_, bp, ba)) => {
                    front.priority > bp || (front.priority == bp && front.admit < ba)
                }
            };
            if better {
                best = Some((slot, front.priority, front.admit));
            }
        }
        let (slot, _, _) = best?;
        if steal == StealPolicy::Eager && slot % stagers != worker {
            self.stats.stolen += 1;
        }
        let q = self.sessions[slot].as_mut().expect("claimed slot is live");
        q.staged_live += 1;
        Some((slot, q.submitted.pop_front().expect("claimed queue is non-empty")))
    }

    /// Index of the batch the driver should run next, or `None` when
    /// nothing is ready. Priority desc, deadline asc (`None` = ∞),
    /// admission asc — except that after [`DECODE_BURST`] consecutive
    /// decode batches the best *prefill* batch wins (bounded aging).
    fn pick_ready(&self) -> Option<usize> {
        if self.ready.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.ready.len() {
            if beats(&self.ready[i], &self.ready[best]) {
                best = i;
            }
        }
        if self.ready[best].priority == Priority::Decode && self.decode_run >= DECODE_BURST {
            let mut aged: Option<usize> = None;
            for (i, r) in self.ready.iter().enumerate() {
                if r.priority == Priority::Prefill {
                    let better = match aged {
                        None => true,
                        Some(a) => beats(r, &self.ready[a]),
                    };
                    if better {
                        aged = Some(i);
                    }
                }
            }
            if let Some(a) = aged {
                return Some(a);
            }
        }
        Some(best)
    }

    /// Book one batch's completion: frees its session's staging window
    /// and in-flight permit, files the result (unless the client is
    /// gone), reaps the slot if it was the last obligation.
    fn complete(&mut self, slot: usize, seq: u64, result: Result<BatchOutcome, RequestError>) {
        let q = self.sessions[slot].as_mut().expect("in-flight batch keeps its slot live");
        q.staged_live -= 1;
        q.pending -= 1;
        if !q.closed {
            q.done.insert(seq, result);
        }
        self.maybe_reap(slot);
    }

    /// Free a closed session's slot once nothing is in flight for it.
    fn maybe_reap(&mut self, slot: usize) {
        if let Some(q) = &self.sessions[slot] {
            if q.closed && q.pending == 0 {
                self.sessions[slot] = None;
            }
        }
    }
}

/// Execute-order comparison: does `a` beat `b`?
fn beats<P>(a: &ReadyBatch<P>, b: &ReadyBatch<P>) -> bool {
    if a.priority != b.priority {
        return a.priority > b.priority;
    }
    match (a.deadline, b.deadline) {
        (Some(x), Some(y)) if x != y => return x < y,
        (Some(_), None) => return true,
        (None, Some(_)) => return false,
        _ => {}
    }
    a.admit < b.admit
}

struct Shared<P> {
    state: Mutex<DispState<P>>,
    /// Wakes stagers: new submission, staging room freed, cancellation,
    /// shutdown. Always notified with `notify_all` — under
    /// [`StealPolicy::Pinned`] a `notify_one` could wake a stager that
    /// cannot see the new work while its owner sleeps (a lost wakeup;
    /// the seeded-bug model in `tests/model/` pins this class down).
    work_cv: Condvar,
    /// Wakes the driver: batch staged, control queued, stager crew
    /// exited, shutdown.
    ready_cv: Condvar,
    /// Wakes waiting clients: batch completed, pipeline death.
    done_cv: Condvar,
    /// Registration snapshot every submission validates against and
    /// every stager prepares against.
    weights: WeightSnapshot,
}

impl<P> Shared<P> {
    /// Lock the state, ignoring mutex poisoning: every mutation is
    /// atomic under the lock (queues stay consistent even if a caller
    /// panicked mid-`wait`), and shutdown must still work after a panic
    /// so `Drop` can join the pipeline threads.
    fn lock(&self) -> MutexGuard<'_, DispState<P>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wait on `cv`, ignoring poisoning like [`Shared::lock`].
    fn wait<'a>(
        &self,
        cv: &Condvar,
        st: MutexGuard<'a, DispState<P>>,
    ) -> MutexGuard<'a, DispState<P>> {
        cv.wait(st).unwrap_or_else(|e| e.into_inner())
    }

    /// Mark the pipeline dead and wake everyone.
    fn mark_dead(&self, who: &'static str) {
        let mut st = self.lock();
        st.dead = Some(who);
        self.work_cv.notify_all();
        self.ready_cv.notify_all();
        self.done_cv.notify_all();
    }
}

/// Notifies the dispatcher if a pipeline thread unwinds, so clients
/// blocked in [`DispatchSession::wait`] fail fast instead of hanging.
struct DeathWatch<'a, P> {
    shared: &'a Shared<P>,
    who: &'static str,
    armed: bool,
}

impl<P> Drop for DeathWatch<'_, P> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.mark_dead(self.who);
        }
    }
}

fn next_session_id() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    // process-global identity, not protocol state: deliberately std
    // even under loom (see the crate::sync module docs)
    static NEXT_SESSION_ID: AtomicU64 = AtomicU64::new(0);
    NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed)
}

// ---- pipeline threads ------------------------------------------------------

fn stager_loop<B: CampBackend>(
    shared: &Shared<B::Prepared>,
    worker: usize,
    stagers: usize,
    steal: StealPolicy,
) {
    let mut watch = DeathWatch { shared, who: "stager", armed: true };
    loop {
        let claimed = {
            let mut st = shared.lock();
            loop {
                if st.dead.is_some() {
                    break None;
                }
                if let Some(claimed) = st.claim(worker, stagers, steal) {
                    break Some(claimed);
                }
                if st.shutdown && !st.drainable(worker, stagers, steal) {
                    break None;
                }
                st = shared.wait(&shared.work_cv, st);
            }
        };
        let Some((slot, pending)) = claimed else {
            let mut st = shared.lock();
            st.live_stagers -= 1;
            if st.live_stagers == 0 {
                // the driver's exit predicate depends on this count
                shared.ready_cv.notify_all();
            }
            watch.armed = false;
            return;
        };
        // the pipeline overlap: this staging runs while the driver
        // computes other batches on the engine
        let Pending { seq, batch, priority, deadline, handles, admit } = pending;
        let staged: Vec<B::Prepared> =
            batch.into_iter().map(|r| B::prepare(r, &shared.weights)).collect();
        let mut st = shared.lock();
        st.ready.push(ReadyBatch { slot, seq, staged, priority, deadline, handles, admit });
        shared.ready_cv.notify_all();
    }
}

enum DriverAction<P> {
    Evict(WeightHandle),
    Run(ReadyBatch<P>),
    Exit,
}

fn driver_loop<B: CampBackend>(shared: &Shared<B::Prepared>, mut backend: B) -> B {
    let mut watch = DeathWatch { shared, who: "driver", armed: true };
    loop {
        let action = {
            let mut st = shared.lock();
            loop {
                if st.dead.is_some() {
                    break DriverAction::Exit;
                }
                // controls first: an eviction must not wait behind a
                // backlog of batches that will each fail against it
                if let Some(h) = st.controls.pop_front() {
                    break DriverAction::Evict(h);
                }
                if let Some(i) = st.pick_ready() {
                    let chosen = st.ready.remove(i);
                    st.decode_run = match chosen.priority {
                        Priority::Decode => st.decode_run + 1,
                        Priority::Prefill => 0,
                    };
                    if chosen.handles.iter().any(|h| st.condemned.contains(h)) {
                        // condemned while queued: fail the batch without
                        // touching the (possibly already evicted) panel
                        st.stats.stale_failures += 1;
                        st.complete(chosen.slot, chosen.seq, Err(RequestError::StaleHandle));
                        shared.work_cv.notify_all();
                        shared.done_cv.notify_all();
                        continue;
                    }
                    if chosen.deadline.is_some_and(|dl| Instant::now() > dl) {
                        // deadline already missed: computing it would
                        // only delay batches that can still make theirs
                        st.stats.shed += 1;
                        st.complete(chosen.slot, chosen.seq, Err(RequestError::Shed));
                        shared.work_cv.notify_all();
                        shared.done_cv.notify_all();
                        continue;
                    }
                    break DriverAction::Run(chosen);
                }
                if st.shutdown && st.live_stagers == 0 && st.controls.is_empty() {
                    break DriverAction::Exit;
                }
                st = shared.wait(&shared.ready_cv, st);
            }
        };
        match action {
            DriverAction::Exit => {
                watch.armed = false;
                return backend;
            }
            DriverAction::Evict(h) => {
                // the driver owns the backend, so this cannot race an
                // execute; a handle evicted behind the snapshot's back
                // is already an error, ignore it
                let _ = backend.evict_weights(h);
            }
            DriverAction::Run(ready) => {
                let result = backend.execute_prepared(ready.staged);
                let mut st = shared.lock();
                st.stats.executed += 1;
                st.complete(ready.slot, ready.seq, Ok(result));
                shared.work_cv.notify_all();
                shared.done_cv.notify_all();
            }
        }
    }
}

// ---- the client handle -----------------------------------------------------

/// One tenant's handle onto a shared [`Dispatcher`]: its own FIFO
/// queue, ticket space, admission bound and result map. Dropping the
/// handle cancels its unclaimed batches and releases the slot once
/// in-flight work completes.
pub struct DispatchSession<B: CampBackend + Send + 'static> {
    shared: Arc<Shared<B::Prepared>>,
    slot: usize,
    /// Process-unique identity stamped into this session's tickets.
    id: u64,
    next_seq: u64,
}

impl<B: CampBackend + Send + 'static> std::fmt::Debug for DispatchSession<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DispatchSession")
            .field("id", &self.id)
            .field("slot", &self.slot)
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl<B: CampBackend + Send + 'static> DispatchSession<B> {
    /// Enqueue one batch at [`Priority::Prefill`] with no deadline; see
    /// [`DispatchSession::submit_with`].
    pub fn submit(&mut self, batch: Vec<GemmRequest>) -> Result<TicketId, RequestError> {
        self.submit_with(batch, Priority::Prefill, None)
    }

    /// Enqueue one batch; returns immediately with the ticket that will
    /// redeem its results. Within one session, batches of equal
    /// priority complete in submission order; across sessions the
    /// dispatcher schedules by priority, deadline, then admission
    /// order.
    ///
    /// Every request is validated against the registration snapshot
    /// taken when the dispatcher started — stale or foreign handles and
    /// malformed shapes are rejected here as [`RequestError`]s, and a
    /// handle condemned by [`Dispatcher::evict_weights`] rejects as
    /// [`RequestError::StaleHandle`]. A session already at its
    /// admission bound rejects with [`RequestError::Saturated`]
    /// (deterministically: the bound counts batches in flight, not
    /// queue occupancy, so it does not depend on how far the pipeline
    /// happens to have drained the queue). Nothing is enqueued on any
    /// error.
    ///
    /// # Panics
    /// Panics if a pipeline thread has already died, or the dispatcher
    /// was shut down while this handle was kept alive.
    pub fn submit_with(
        &mut self,
        batch: Vec<GemmRequest>,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<TicketId, RequestError> {
        let mut handles = Vec::new();
        for r in &batch {
            r.resolve(&self.shared.weights)?;
            if let Operand::Handle(h) = r.weights() {
                handles.push(*h);
            }
        }
        let mut st = self.shared.lock();
        if let Some(who) = st.dead {
            panic!("serving session is dead: {who} thread panicked");
        }
        if st.shutdown {
            panic!("dispatcher is shut down");
        }
        if handles.iter().any(|h| st.condemned.contains(h)) {
            return Err(RequestError::StaleHandle);
        }
        let q = self.shared.queue(&mut st, self.slot);
        if q.pending >= q.depth {
            let depth = q.depth;
            st.stats.rejected += 1;
            return Err(RequestError::Saturated { depth });
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        q.pending += 1;
        let admit = st.admit_seq;
        st.admit_seq += 1;
        let q = self.shared.queue(&mut st, self.slot);
        q.submitted.push_back(Pending { seq, batch, priority, deadline, handles, admit });
        st.stats.submitted += 1;
        self.shared.work_cv.notify_all();
        Ok(TicketId { session: self.id, seq })
    }

    /// A ticket's queue key, after verifying it belongs to this
    /// session.
    fn check_ticket(&self, ticket: TicketId) -> u64 {
        assert_eq!(ticket.session, self.id, "ticket was issued by a different session");
        assert!(ticket.seq < self.next_seq, "ticket was never issued by this session");
        ticket.seq
    }

    /// Non-blocking result check: `None` while the batch is still in
    /// the pipeline. The result is handed out exactly once — a second
    /// poll of the same ticket returns `None` again. `Some(Err(_))`
    /// reports a batch failed in flight (today: condemned by a racing
    /// [`Dispatcher::evict_weights`]).
    pub fn poll(&mut self, ticket: TicketId) -> Option<Result<BatchOutcome, RequestError>> {
        let seq = self.check_ticket(ticket);
        let mut st = self.shared.lock();
        // completed results stay retrievable even after a pipeline
        // thread died — only a still-pending ticket has to fail
        let q = self.shared.queue(&mut st, self.slot);
        if let Some(result) = q.done.remove(&seq) {
            q.mark_collected(seq);
            return Some(result);
        }
        if let Some(who) = st.dead {
            panic!("serving session is dead: {who} thread panicked");
        }
        None
    }

    /// Block until the batch completes; `Err` reports a batch failed in
    /// flight (today: condemned by a racing
    /// [`Dispatcher::evict_weights`]). Each ticket can be waited on
    /// exactly once.
    ///
    /// # Panics
    /// Panics if a pipeline thread died, or the ticket's result was
    /// already collected.
    pub fn wait(&mut self, ticket: TicketId) -> Result<BatchOutcome, RequestError> {
        let seq = self.check_ticket(ticket);
        let mut st = self.shared.lock();
        loop {
            let q = self.shared.queue(&mut st, self.slot);
            assert!(!q.is_collected(seq), "ticket result was already collected");
            if let Some(result) = q.done.remove(&seq) {
                q.mark_collected(seq);
                return result;
            }
            if let Some(who) = st.dead {
                panic!("serving session is dead: {who} thread panicked");
            }
            st = self.shared.wait(&self.shared.done_cv, st);
        }
    }

    /// Batches submitted whose results have not been collected yet
    /// (queued, staging, computing, or done-but-unredeemed).
    pub fn in_flight(&self) -> usize {
        let mut st = self.shared.lock();
        let collected = self.shared.queue(&mut st, self.slot).collected_count();
        self.next_seq as usize - collected
    }

    /// This session's process-unique identity (the stamp in its
    /// tickets).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl<P> Shared<P> {
    /// A live client's queue. The slot cannot be reaped while the
    /// client exists (reaping requires `closed`, set only on drop).
    fn queue<'a>(
        &self,
        st: &'a mut MutexGuard<'_, DispState<P>>,
        slot: usize,
    ) -> &'a mut SessQueue {
        st.sessions[slot].as_mut().expect("live client keeps its slot")
    }
}

impl<B: CampBackend + Send + 'static> Drop for DispatchSession<B> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        if let Some(q) = st.sessions[self.slot].as_mut() {
            q.closed = true;
            // cancel what no stager claimed yet; in-flight batches run
            // to completion (their results are dropped)
            let cancelled = q.submitted.len();
            q.pending -= cancelled;
            q.submitted.clear();
            q.done.clear();
            st.stats.cancelled += cancelled as u64;
            st.maybe_reap(self.slot);
        }
        // cancellation can change every stager's drainable() answer
        self.shared.work_cv.notify_all();
    }
}

// ---- the dispatcher --------------------------------------------------------

/// Shared multi-tenant serving front end over one [`CampBackend`]; see
/// the [module docs](self). Create sessions with
/// [`Dispatcher::session`], reclaim the warm backend with
/// [`Dispatcher::into_backend`].
pub struct Dispatcher<B: CampBackend + Send + 'static> {
    shared: Arc<Shared<B::Prepared>>,
    options: DispatchOptions,
    stagers: Vec<JoinHandle<()>>,
    driver: Option<JoinHandle<B>>,
}

impl<B: CampBackend + Send + 'static> std::fmt::Debug for Dispatcher<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("options", &self.options)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<B: CampBackend + Send + 'static> Dispatcher<B> {
    /// Start dispatching on `backend` with [`DispatchOptions::from_env`].
    /// Weights must already be registered: submissions are validated
    /// against this moment's registry.
    pub fn new(backend: B) -> Self {
        Dispatcher::with_options(backend, DispatchOptions::from_env())
    }

    /// Start dispatching on `backend` with explicit options.
    pub fn with_options(backend: B, options: DispatchOptions) -> Self {
        assert!(options.stagers >= 1, "a dispatcher needs at least one stager");
        assert!(options.queue_depth >= 1, "a zero admission bound would reject everything");
        let shared: Arc<Shared<B::Prepared>> = Arc::new(Shared {
            state: Mutex::new(DispState {
                sessions: Vec::new(),
                ready: Vec::new(),
                controls: VecDeque::new(),
                condemned: HashSet::new(),
                admit_seq: 0,
                decode_run: 0,
                live_stagers: options.stagers,
                shutdown: false,
                dead: None,
                stats: Counters::default(),
            }),
            work_cv: Condvar::new(),
            ready_cv: Condvar::new(),
            done_cv: Condvar::new(),
            weights: backend.weight_snapshot(),
        });

        let stagers = (0..options.stagers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let (count, steal) = (options.stagers, options.steal);
                crate::sync::thread::Builder::new()
                    .name(format!("camp-dispatch-stager-{worker}"))
                    .spawn(move || stager_loop::<B>(&shared, worker, count, steal))
                    .expect("failed to spawn dispatch stager")
            })
            .collect();

        let driver_shared = Arc::clone(&shared);
        let driver = crate::sync::thread::Builder::new()
            .name("camp-dispatch-driver".into())
            .spawn(move || driver_loop::<B>(&driver_shared, backend))
            .expect("failed to spawn dispatch driver");

        Dispatcher { shared, options, stagers, driver: Some(driver) }
    }

    /// Open a session at the dispatcher's default admission bound
    /// ([`DispatchOptions::queue_depth`]).
    pub fn session(&self) -> DispatchSession<B> {
        self.session_with_depth(self.options.queue_depth)
    }

    /// Open a session with its own admission bound: at `depth` batches
    /// in flight, further submissions return [`RequestError::Saturated`].
    pub fn session_with_depth(&self, depth: usize) -> DispatchSession<B> {
        assert!(depth >= 1, "a zero admission bound would reject everything");
        let mut st = self.shared.lock();
        let slot = match st.sessions.iter().position(Option::is_none) {
            Some(slot) => slot,
            None => {
                st.sessions.push(None);
                st.sessions.len() - 1
            }
        };
        st.sessions[slot] = Some(SessQueue::with_depth(depth));
        DispatchSession {
            shared: Arc::clone(&self.shared),
            slot,
            id: next_session_id(),
            next_seq: 0,
        }
    }

    /// Condemn a weight registration: the handle is rejected at every
    /// later submission, batches already queued against it fail with
    /// [`RequestError::StaleHandle`] instead of reaching the engine,
    /// and the driver evicts the backend registration in series with
    /// batch execution. Returns the registration's metadata, or
    /// [`RequestError::StaleHandle`] on a double eviction — a handle
    /// racing a live session errs, it never panics.
    pub fn evict_weights(&self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        let meta = self.shared.weights.meta(h)?;
        let mut st = self.shared.lock();
        if !st.condemned.insert(h) {
            return Err(RequestError::StaleHandle);
        }
        st.controls.push_back(h);
        st.stats.evictions += 1;
        self.shared.ready_cv.notify_all();
        Ok(meta)
    }

    /// Snapshot of the dispatcher's counters and gauges.
    pub fn stats(&self) -> DispatchStats {
        let st = self.shared.lock();
        DispatchStats {
            submitted: st.stats.submitted,
            executed: st.stats.executed,
            cancelled: st.stats.cancelled,
            rejected: st.stats.rejected,
            stolen: st.stats.stolen,
            evictions: st.stats.evictions,
            stale_failures: st.stats.stale_failures,
            shed: st.stats.shed,
            staging_live: st.sessions.iter().flatten().map(|q| q.staged_live).sum(),
            ready_now: st.ready.len(),
            sessions_live: st.sessions.iter().flatten().count(),
        }
    }

    /// The options this dispatcher runs with.
    pub fn options(&self) -> DispatchOptions {
        self.options
    }

    /// Drain the pipeline (every batch still queued by a live session
    /// finishes; uncollected results are dropped when their sessions
    /// drop) and return the backend, weights and warm pools intact.
    /// Sessions kept alive across this call panic on their next
    /// submission.
    pub fn into_backend(mut self) -> B {
        self.begin_shutdown();
        for h in self.stagers.drain(..) {
            let _ = h.join();
        }
        let driver = self.driver.take().expect("driver already joined");
        driver.join().expect("dispatcher driver panicked")
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.lock();
        st.shutdown = true;
        self.shared.work_cv.notify_all();
        self.shared.ready_cv.notify_all();
    }
}

impl<B: CampBackend + Send + 'static> Drop for Dispatcher<B> {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.stagers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Capability, ExecStats, Output};
    use crate::engine::{CampEngine, DType, EngineStats};
    use camp_gemm::gemm_i32_ref;
    use camp_gemm::KernelInfo;
    use std::sync::OnceLock;

    /// Shared permit counter gating the mock driver: executions block
    /// until a permit is granted, so tests pin the pipeline in a known
    /// state and release it deterministically.
    type Gate = std::sync::Arc<(std::sync::Mutex<usize>, std::sync::Condvar)>;

    fn grant(gate: &Gate, n: usize) {
        let mut permits = gate.0.lock().unwrap();
        *permits += n;
        gate.1.notify_all();
    }

    /// Mock backend whose `execute_prepared` consumes one [`Gate`]
    /// permit per batch and logs the batch's m (the tests' batch
    /// identity) in execution order.
    struct GateBackend {
        gate: Gate,
        log: std::sync::Arc<std::sync::Mutex<Vec<usize>>>,
    }

    impl GateBackend {
        fn new(permits: usize) -> (Self, Gate, std::sync::Arc<std::sync::Mutex<Vec<usize>>>) {
            let gate: Gate =
                std::sync::Arc::new((std::sync::Mutex::new(permits), std::sync::Condvar::new()));
            let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            (GateBackend { gate: std::sync::Arc::clone(&gate), log: log.clone() }, gate, log)
        }
    }

    impl CampBackend for GateBackend {
        type Prepared = GemmRequest;

        fn name(&self) -> &'static str {
            "test-gate"
        }

        fn threads(&self) -> usize {
            1
        }

        fn supports(&self, _cap: Capability) -> bool {
            false
        }

        fn kernel_info(&self) -> KernelInfo {
            unimplemented!("not part of the dispatch protocol")
        }

        fn register_weights(
            &mut self,
            _n: usize,
            _k: usize,
            _b: &[i8],
            _dtype: DType,
        ) -> WeightHandle {
            unimplemented!("gate tests submit dense requests only")
        }

        fn evict_weights(&mut self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
            unimplemented!("gate tests submit dense requests only")
        }

        fn clear_weights(&mut self) {}

        fn try_weight_meta(&self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
            unimplemented!("gate tests submit dense requests only")
        }

        fn weight_snapshot(&self) -> WeightSnapshot {
            WeightSnapshot::empty()
        }

        fn execute_batch(&mut self, _reqs: &[GemmRequest]) -> Result<BatchOutcome, RequestError> {
            unimplemented!("dispatchers drive execute_prepared")
        }

        fn prepare(req: GemmRequest, _weights: &WeightSnapshot) -> GemmRequest {
            req
        }

        fn execute_prepared(&mut self, batch: Vec<GemmRequest>) -> BatchOutcome {
            let (permits, cv) = &*self.gate;
            let mut p = permits.lock().unwrap();
            while *p == 0 {
                p = cv.wait(p).unwrap();
            }
            *p -= 1;
            drop(p);
            self.log.lock().unwrap().push(batch.first().map_or(0, |r| r.m()));
            let outputs =
                batch.iter().map(|r| Output::new(vec![0; r.m()], r.m(), 1)).collect::<Vec<_>>();
            BatchOutcome::new(outputs, ExecStats::Host(EngineStats::default()))
        }
    }

    /// An m×1 GeMM over k = 1: `m` is the batch's identity in the
    /// execution log.
    fn req(m: usize) -> GemmRequest {
        GemmRequest::dense(m, 1, 1, vec![1i8; m], vec![1i8]).expect("well-formed request")
    }

    fn opts(stagers: usize, steal: StealPolicy) -> DispatchOptions {
        DispatchOptions { stagers, queue_depth: 8, steal }
    }

    /// Poll the dispatcher until `pred` holds (the pipeline threads are
    /// asynchronous; 5 s cap, far beyond any real staging latency).
    fn wait_for<B: CampBackend + Send + 'static>(
        d: &Dispatcher<B>,
        pred: impl Fn(&DispatchStats) -> bool,
    ) -> DispatchStats {
        for _ in 0..50_000 {
            let s = d.stats();
            if pred(&s) {
                return s;
            }
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        panic!("dispatcher never reached the expected state: {:?}", d.stats());
    }

    #[test]
    fn saturation_fires_deterministically_at_the_bound_and_recovers() {
        let (backend, gate, _log) = GateBackend::new(0);
        let dispatcher = Dispatcher::with_options(backend, opts(1, StealPolicy::Eager));
        let mut session = dispatcher.session_with_depth(3);

        // the bound counts batches in flight, not queue occupancy: with
        // the driver gated shut, exactly `depth` submissions are
        // admitted no matter how the stager interleaves
        let tickets: Vec<TicketId> =
            (0..3).map(|i| session.submit(vec![req(i + 1)]).expect("below the bound")).collect();
        let err = session.submit(vec![req(99)]).unwrap_err();
        assert_eq!(err, RequestError::Saturated { depth: 3 });
        assert!(err.to_string().contains("bounded depth 3"), "{err}");
        // nothing was enqueued: still exactly 3 in flight
        assert_eq!(session.in_flight(), 3);
        let stats = dispatcher.stats();
        assert_eq!((stats.submitted, stats.rejected), (3, 1));

        // drain: the session recovers without leaking staging permits
        grant(&gate, 3);
        for t in tickets {
            assert_eq!(session.wait(t).expect("gated batches complete").outputs.len(), 1);
        }
        let stats = wait_for(&dispatcher, |s| s.staging_live == 0);
        assert_eq!(stats.executed, 3);
        grant(&gate, 1);
        let t = session.submit(vec![req(4)]).expect("drained sessions admit again");
        assert_eq!(session.wait(t).expect("admitted batch completes").outputs[0].m, 4);
    }

    #[test]
    fn decode_overtakes_queued_prefill() {
        let (backend, gate, log) = GateBackend::new(0);
        let dispatcher = Dispatcher::with_options(backend, opts(1, StealPolicy::Eager));
        let mut prefill = dispatcher.session();
        let mut decode = dispatcher.session();

        let p1 = prefill.submit(vec![req(1)]).unwrap();
        let p2 = prefill.submit(vec![req(2)]).unwrap();
        let d = decode.submit_with(vec![req(3)], Priority::Decode, None).unwrap();
        // pin the pipeline: batch 1 on the (gated) engine, batches 2
        // and 3 staged and ready
        wait_for(&dispatcher, |s| s.staging_live == 3 && s.ready_now == 2);

        grant(&gate, 3);
        assert_eq!(decode.wait(d).unwrap().outputs[0].m, 3);
        assert_eq!(prefill.wait(p1).unwrap().outputs[0].m, 1);
        assert_eq!(prefill.wait(p2).unwrap().outputs[0].m, 2);
        // the decode batch overtook the still-queued prefill batch;
        // which prefill batch reached the engine before the decode one
        // was staged is a benign race, so only the relative order is
        // asserted
        let log = log.lock().unwrap();
        let pos = |m| log.iter().position(|&x| x == m).unwrap();
        assert!(pos(3) < pos(2), "decode must beat the queued prefill batch: {log:?}");
        assert!(pos(1) < pos(2), "per-session FIFO must hold: {log:?}");
    }

    #[test]
    fn deadlines_order_equal_priority_work() {
        let (backend, gate, log) = GateBackend::new(0);
        let dispatcher = Dispatcher::with_options(backend, opts(1, StealPolicy::Eager));
        let mut a = dispatcher.session();
        let mut b = dispatcher.session();

        let now = Instant::now();
        let gate_batch = a.submit(vec![req(9)]).unwrap(); // occupies the engine
        let relaxed = a.submit_with(vec![req(1)], Priority::Prefill, None).unwrap();
        let urgent = b
            .submit_with(
                vec![req(2)],
                Priority::Prefill,
                Some(now + std::time::Duration::from_millis(1)),
            )
            .unwrap();
        wait_for(&dispatcher, |s| s.staging_live == 3 && s.ready_now == 2);

        grant(&gate, 3);
        assert!(a.wait(gate_batch).is_ok());
        assert!(a.wait(relaxed).is_ok());
        assert!(b.wait(urgent).is_ok());
        // the deadline batch beat the earlier-admitted no-deadline one
        let log = log.lock().unwrap();
        let pos = |m| log.iter().position(|&x| x == m).unwrap();
        assert!(pos(2) < pos(1), "earliest deadline must run first at equal priority: {log:?}");
    }

    #[test]
    fn missed_deadlines_are_shed_not_computed() {
        let (backend, gate, log) = GateBackend::new(0);
        let dispatcher = Dispatcher::with_options(backend, opts(1, StealPolicy::Eager));
        let mut session = dispatcher.session();

        // occupy the (gated) engine so the doomed batch waits in ready;
        // Decode priority guarantees the blocker wins the first pick no
        // matter how staging interleaves
        let blocker = session.submit_with(vec![req(9)], Priority::Decode, None).unwrap();
        let doomed =
            session.submit_with(vec![req(1)], Priority::Prefill, Some(Instant::now())).unwrap();
        let live = session
            .submit_with(
                vec![req(2)],
                Priority::Prefill,
                Some(Instant::now() + std::time::Duration::from_secs(3600)),
            )
            .unwrap();
        // pin: blocker on the engine, doomed staged behind it (the
        // third batch waits out the MAX_STAGED window in the queue)
        wait_for(&dispatcher, |s| s.staging_live == 2 && s.ready_now == 1);
        // let the already-expired deadline pass unambiguously
        std::thread::sleep(std::time::Duration::from_millis(5));

        // 3 permits offered, but the shed batch must not consume one
        grant(&gate, 3);
        assert_eq!(session.wait(doomed).unwrap_err(), RequestError::Shed);
        assert_eq!(session.wait(blocker).unwrap().outputs[0].m, 9);
        assert_eq!(session.wait(live).unwrap().outputs[0].m, 2);
        let stats = wait_for(&dispatcher, |s| s.staging_live == 0);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.executed, 2, "only the batches that can make their deadlines run");
        let log = log.lock().unwrap();
        assert_eq!(&*log, &[9, 2], "the shed batch must never reach the engine: {log:?}");
        assert!(RequestError::Shed.to_string().contains("shed"));
    }

    #[test]
    fn pinned_stagers_never_steal() {
        let (backend, gate, _log) = GateBackend::new(0);
        grant(&gate, 12);
        let dispatcher = Dispatcher::with_options(backend, opts(2, StealPolicy::Pinned));
        let mut s0 = dispatcher.session();
        let mut s1 = dispatcher.session();
        let t0: Vec<TicketId> = (0..6).map(|i| s0.submit(vec![req(i + 1)]).unwrap()).collect();
        let t1: Vec<TicketId> = (0..6).map(|i| s1.submit(vec![req(i + 10)]).unwrap()).collect();
        for t in t0 {
            assert!(s0.wait(t).is_ok());
        }
        for t in t1 {
            assert!(s1.wait(t).is_ok());
        }
        let stats = dispatcher.stats();
        assert_eq!(stats.stolen, 0, "pinned stagers must never claim outside their partition");
        assert_eq!(stats.executed, 12);
    }

    /// Rendezvous in `prepare`: both stagers must be staging
    /// *simultaneously* before either proceeds, which forces each of
    /// the two claims onto a different stager.
    struct BarrierBackend;

    static STEAL_BARRIER: OnceLock<std::sync::Barrier> = OnceLock::new();

    impl CampBackend for BarrierBackend {
        type Prepared = GemmRequest;

        fn name(&self) -> &'static str {
            "test-barrier"
        }

        fn threads(&self) -> usize {
            1
        }

        fn supports(&self, _cap: Capability) -> bool {
            false
        }

        fn kernel_info(&self) -> KernelInfo {
            unimplemented!("not part of the dispatch protocol")
        }

        fn register_weights(
            &mut self,
            _n: usize,
            _k: usize,
            _b: &[i8],
            _dtype: DType,
        ) -> WeightHandle {
            unimplemented!("barrier tests submit dense requests only")
        }

        fn evict_weights(&mut self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
            unimplemented!("barrier tests submit dense requests only")
        }

        fn clear_weights(&mut self) {}

        fn try_weight_meta(&self, _h: WeightHandle) -> Result<WeightMeta, RequestError> {
            unimplemented!("barrier tests submit dense requests only")
        }

        fn weight_snapshot(&self) -> WeightSnapshot {
            WeightSnapshot::empty()
        }

        fn execute_batch(&mut self, _reqs: &[GemmRequest]) -> Result<BatchOutcome, RequestError> {
            unimplemented!("dispatchers drive execute_prepared")
        }

        fn prepare(req: GemmRequest, _weights: &WeightSnapshot) -> GemmRequest {
            STEAL_BARRIER.get_or_init(|| std::sync::Barrier::new(2)).wait();
            req
        }

        fn execute_prepared(&mut self, batch: Vec<GemmRequest>) -> BatchOutcome {
            let outputs =
                batch.iter().map(|r| Output::new(vec![0; r.m()], r.m(), 1)).collect::<Vec<_>>();
            BatchOutcome::new(outputs, ExecStats::Host(EngineStats::default()))
        }
    }

    #[test]
    fn eager_stagers_steal_across_sessions() {
        // one session, two eager stagers, two batches: the prepare
        // barrier forces one claim onto each stager, and only worker 0
        // is home for slot 0 — exactly one claim is a steal
        let dispatcher = Dispatcher::with_options(BarrierBackend, opts(2, StealPolicy::Eager));
        let mut session = dispatcher.session();
        let t1 = session.submit(vec![req(1)]).unwrap();
        let t2 = session.submit(vec![req(2)]).unwrap();
        assert!(session.wait(t1).is_ok());
        assert!(session.wait(t2).is_ok());
        assert_eq!(dispatcher.stats().stolen, 1, "exactly one of the two claims crossed homes");
        drop(session);
        let _ = dispatcher.into_backend();
    }

    #[test]
    fn aging_bounds_prefill_starvation_under_a_decode_flood() {
        let (backend, gate, log) = GateBackend::new(0);
        let dispatcher = Dispatcher::with_options(backend, opts(2, StealPolicy::Eager));
        let mut d1 = dispatcher.session();
        let mut d2 = dispatcher.session();
        let mut p = dispatcher.session();

        let mut decode_tickets = Vec::new();
        for i in 0..6 {
            decode_tickets
                .push((0, d1.submit_with(vec![req(100 + i)], Priority::Decode, None).unwrap()));
            decode_tickets
                .push((1, d2.submit_with(vec![req(200 + i)], Priority::Decode, None).unwrap()));
        }
        // pin: one decode on the gated engine, both decode sessions at
        // their staging window — the first executed batch is decode
        wait_for(&dispatcher, |s| s.staging_live == 4 && s.ready_now == 3);
        let pt = p.submit(vec![req(7)]).unwrap();

        grant(&gate, 13);
        for (who, t) in decode_tickets {
            let outcome = if who == 0 { d1.wait(t) } else { d2.wait(t) };
            assert!(outcome.is_ok());
        }
        assert!(p.wait(pt).is_ok());

        let log = log.lock().unwrap();
        let pos = log.iter().position(|&m| m == 7).expect("prefill batch executed");
        assert!(pos >= 1, "the engine already held a decode batch: {log:?}");
        assert!(
            pos <= DECODE_BURST as usize,
            "aging must run prefill after at most {DECODE_BURST} consecutive decodes: {log:?}"
        );
    }

    #[test]
    fn eviction_racing_a_live_session_errs_and_never_panics() {
        let (n, k) = (4, 16);
        let w1: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
        let w2: Vec<i8> = (0..k * n).map(|i| (i % 13) as i8 - 6).collect();
        let a: Vec<i8> = (0..2 * k).map(|i| (i % 11) as i8 - 5).collect();
        let mut engine = CampEngine::with_threads(1);
        let h1 = engine.register_weights(n, k, &w1, DType::I8);
        let h2 = engine.register_weights(n, k, &w2, DType::I8);

        let dispatcher = Dispatcher::with_options(engine, opts(1, StealPolicy::Eager));
        let mut session = dispatcher.session();
        let racing: Vec<TicketId> = (0..4)
            .map(|_| {
                session
                    .submit(vec![GemmRequest::with_weights(2, a.clone(), h1).unwrap()])
                    .expect("live handle admits")
            })
            .collect();

        let meta = dispatcher.evict_weights(h1).expect("first eviction succeeds");
        assert_eq!((meta.n, meta.k), (n, k));
        assert_eq!(dispatcher.evict_weights(h1).unwrap_err(), RequestError::StaleHandle);

        // post-condemnation submissions reject immediately ...
        let err =
            session.submit(vec![GemmRequest::with_weights(2, a.clone(), h1).unwrap()]).unwrap_err();
        assert_eq!(err, RequestError::StaleHandle);

        // ... and every batch racing the eviction either completed
        // before it or failed cleanly as stale — never a panic
        let mut completed = 0;
        for t in racing {
            match session.wait(t) {
                Ok(outcome) => {
                    completed += 1;
                    assert_eq!(outcome.outputs[0].c, gemm_i32_ref(2, n, k, &a, &w1));
                }
                Err(e) => assert_eq!(e, RequestError::StaleHandle),
            }
        }

        // the surviving registration still serves
        let t = session
            .submit(vec![GemmRequest::with_weights(2, a.clone(), h2).unwrap()])
            .expect("uncondemned handle admits");
        assert_eq!(session.wait(t).unwrap().outputs[0].c, gemm_i32_ref(2, n, k, &a, &w2));

        let stats = dispatcher.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.stale_failures, 4 - completed);
        drop(session);
        let mut engine = dispatcher.into_backend();
        // the driver really evicted the backend registration
        assert_eq!(engine.evict_weights(h1).unwrap_err(), RequestError::StaleHandle);
        assert!(engine.evict_weights(h2).is_ok());
    }

    #[test]
    fn dropped_sessions_cancel_unclaimed_work_and_release_their_slot() {
        let (backend, gate, _log) = GateBackend::new(0);
        let dispatcher = Dispatcher::with_options(backend, opts(1, StealPolicy::Eager));
        let mut session = dispatcher.session_with_depth(64);
        for i in 0..5 {
            session.submit(vec![req(i + 1)]).unwrap();
        }
        // the staging window claims exactly 2; 3 stay queued
        wait_for(&dispatcher, |s| s.staging_live == 2);
        drop(session);
        let stats = wait_for(&dispatcher, |s| s.cancelled == 3);
        assert_eq!(stats.sessions_live, 1, "in-flight work pins the slot");

        // in-flight batches run to completion; the slot is reaped after
        grant(&gate, 2);
        let stats = wait_for(&dispatcher, |s| s.sessions_live == 0);
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.staging_live, 0, "no staging permits leak past a reap");

        // the freed slot is reused by the next session
        let mut again = dispatcher.session();
        grant(&gate, 1);
        let t = again.submit(vec![req(9)]).unwrap();
        assert_eq!(again.wait(t).unwrap().outputs[0].m, 9);
    }

    #[test]
    fn cross_session_tickets_fail_fast() {
        let (backend, gate, _log) = GateBackend::new(4);
        grant(&gate, 0);
        let dispatcher = Dispatcher::with_options(backend, opts(1, StealPolicy::Eager));
        let mut a = dispatcher.session();
        let mut b = dispatcher.session();
        let ta = a.submit(vec![req(1)]).unwrap();
        let _tb = b.submit(vec![req(2)]).unwrap();
        assert!(a.wait(ta).is_ok());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.poll(ta)));
        let msg = *caught.unwrap_err().downcast::<String>().expect("panic message");
        assert!(msg.contains("different session"), "{msg}");
    }

    #[test]
    fn into_backend_drains_every_live_session() {
        let (backend, gate, log) = GateBackend::new(0);
        grant(&gate, 6);
        let dispatcher = Dispatcher::with_options(backend, opts(2, StealPolicy::Eager));
        let mut a = dispatcher.session();
        let mut b = dispatcher.session();
        for i in 0..3 {
            a.submit(vec![req(i + 1)]).unwrap();
            b.submit(vec![req(i + 10)]).unwrap();
        }
        // drain without collecting: every submitted batch must execute
        let _backend = dispatcher.into_backend();
        assert_eq!(log.lock().unwrap().len(), 6);
        drop(a);
        drop(b);
    }

    #[test]
    fn env_options_apply_and_validate() {
        // avoid cross-test env races: set, read, restore immediately
        std::env::set_var("CAMP_DISPATCH_STAGERS", "3");
        std::env::set_var("CAMP_QUEUE_DEPTH", "0");
        std::env::set_var("CAMP_STEAL_POLICY", "PINNED");
        let opts = DispatchOptions::from_env();
        std::env::remove_var("CAMP_DISPATCH_STAGERS");
        std::env::remove_var("CAMP_QUEUE_DEPTH");
        std::env::remove_var("CAMP_STEAL_POLICY");
        assert_eq!(opts.stagers, 3);
        assert_eq!(opts.queue_depth, 1, "zero depth clamps to 1");
        assert_eq!(opts.steal, StealPolicy::Pinned);
        assert_eq!(DispatchOptions::default(), DispatchOptions::from_env());
    }
}
