//! Structural description of the CAMP hardware block (Fig. 8/10).
//!
//! These counts drive the analytic area model in `camp-energy` and the
//! utilization numbers quoted in DESIGN.md.

use crate::hybrid::BLOCK_BITS;

/// Static structure of one CAMP unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampStructure {
    /// Number of 64-bit lanes (8 for a 512-bit vector register).
    pub lanes: usize,
    /// 8-bit hybrid multipliers per lane (32 in the paper).
    pub mult8_per_lane: usize,
    /// Intra-lane adders (one per output index).
    pub intra_lane_adders: usize,
    /// Shared inter-lane accumulators (one per output index).
    pub inter_lane_accumulators: usize,
    /// Auxiliary (accumulation) register width in bits.
    pub aux_register_bits: usize,
}

impl Default for CampStructure {
    fn default() -> Self {
        CampStructure::paper()
    }
}

impl CampStructure {
    /// The configuration evaluated in the paper: 8 lanes × 32 8-bit
    /// multipliers, 16 intra-lane adders, 16 inter-lane accumulators and
    /// a 512-bit auxiliary register (4×4 × 32-bit).
    pub fn paper() -> Self {
        CampStructure {
            lanes: 8,
            mult8_per_lane: 32,
            intra_lane_adders: 16,
            inter_lane_accumulators: 16,
            aux_register_bits: 512,
        }
    }

    /// Total 8-bit multipliers.
    pub fn total_mult8(&self) -> usize {
        self.lanes * self.mult8_per_lane
    }

    /// Total 4-bit building blocks (each 8-bit multiplier holds four).
    pub fn total_blocks(&self) -> usize {
        self.total_mult8() * (8 / BLOCK_BITS as usize) * (8 / BLOCK_BITS as usize)
    }

    /// Useful multiplies per issue in 8-bit mode (4×4 tile × k = 16).
    pub fn useful_mults_i8(&self) -> usize {
        16 * 16
    }

    /// Useful multiplies per issue in 4-bit mode (4×4 tile × k = 32).
    pub fn useful_mults_i4(&self) -> usize {
        16 * 32
    }

    /// Multiplier-array utilization in 8-bit mode (1.0 in the paper's
    /// design: all 256 8-bit multipliers produce useful products).
    pub fn utilization_i8(&self) -> f64 {
        self.useful_mults_i8() as f64 / self.total_mult8() as f64
    }

    /// Block utilization in 4-bit mode (0.5: the Cartesian array provides
    /// 1024 4-bit products, 512 are architecturally useful).
    pub fn utilization_i4(&self) -> f64 {
        self.useful_mults_i4() as f64 / self.total_blocks() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_totals() {
        let s = CampStructure::paper();
        assert_eq!(s.total_mult8(), 256);
        assert_eq!(s.total_blocks(), 1024);
    }

    #[test]
    fn utilizations() {
        let s = CampStructure::paper();
        assert!((s.utilization_i8() - 1.0).abs() < 1e-12);
        assert!((s.utilization_i4() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(CampStructure::default(), CampStructure::paper());
    }
}
