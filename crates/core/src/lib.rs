//! # camp-core — the CAMP architecture (paper's primary contribution)
//!
//! Three layers, mirroring §3–§4 of the paper:
//!
//! * [`hybrid`] — the **hybrid multiplier**: a divide-and-conquer
//!   composition of 4-bit building blocks (Fig. 5, Eq. 1–2). One 8-bit
//!   multiply uses four 4-bit blocks; reconfigured, the same blocks
//!   perform four independent 4-bit multiplies. The model is bit-accurate
//!   and counts block activations for the area/energy model.
//! * [`mod@unit`] — the **CAMP functional unit** (Fig. 8/10): 8 lanes × 32
//!   8-bit hybrid multipliers, 16 intra-lane adders, 16 inter-lane
//!   accumulators and the auxiliary register. Computes the outer
//!   (Cartesian) product of a 4×k and a k×4 register block.
//! * [`engine`] — a host-speed **CAMP GeMM engine**: GotoBLAS-style
//!   blocked matrix multiplication whose micro-kernel is the `camp`
//!   instruction's semantics. This is the library a downstream user calls
//!   to run quantized GeMM the way the paper's modified ulmBLAS does. It
//!   shares `camp-gemm`'s blocked-loop skeleton and pack-buffer pool, and
//!   [`engine::CampEngine`] optionally runs the macro loop across a
//!   **persistent worker pool** ([`pool`]) with bit-identical results.
//!   For attention-style workloads of many small GeMMs,
//!   [`backend::CampBackend::execute_batch`] runs a whole batch of
//!   [`GemmRequest`]s per call, deduplicating shared weight matrices
//!   and parallelizing across batch items.
//! * [`session`] — the **serving layer**: register weights once
//!   ([`engine::CampEngine::register_weights`] packs B into a
//!   persistent panel), then stream request batches through a
//!   submit/poll [`session::Session`] that overlaps the A-packing of
//!   one batch with the compute of the previous one. The steady state
//!   spawns no threads and packs zero B bytes per request.
//! * [`dispatch`] — the **multi-tenant serving layer**: one
//!   [`dispatch::Dispatcher`] owns the warm engine and hands out any
//!   number of per-tenant sessions — work-stealing stagers,
//!   decode/prefill [`dispatch::Priority`] with deadlines and an aging
//!   bound, per-session admission control
//!   ([`RequestError::Saturated`]), and panic-free weight-eviction
//!   races. [`session::Session`] is its single-tenant wrapper.
//!
//! * [`backend`] — **one GeMM API** over interchangeable substrates:
//!   the [`backend::CampBackend`] trait, implemented by the host-speed
//!   [`CampEngine`] and the cycle-accurate [`backend::SimBackend`].
//!   Describe a problem once as a [`GemmRequest`], execute it on either
//!   substrate (bit-identically), branch on [`backend::ExecStats`] —
//!   and serve either one through the generic [`session::Session`].
//!
//! # Quickstart
//!
//! ```
//! use camp_core::backend::CampBackend;
//! use camp_core::{gemm_i32_ref, CampEngine, GemmRequest};
//!
//! let (m, n, k) = (5, 7, 33);
//! let a: Vec<i8> = (0..m * k).map(|i| (i % 17) as i8 - 8).collect();
//! let b: Vec<i8> = (0..k * n).map(|i| (i % 13) as i8 - 6).collect();
//! let req = GemmRequest::dense(m, n, k, a.clone(), b.clone()).unwrap();
//! let fast = CampEngine::new().execute(&req).unwrap();
//! assert_eq!(fast.output.c, gemm_i32_ref(m, n, k, &a, &b));
//! ```

pub mod backend;
pub mod dispatch;
pub mod engine;
pub mod hybrid;
pub mod pool;
pub mod session;
pub mod structure;
pub mod sync;
pub mod unit;

pub use backend::{BatchOutcome, CampBackend, Capability, ExecStats, Outcome, Output, SimBackend};
pub use dispatch::{
    DispatchOptions, DispatchSession, DispatchStats, Dispatcher, Priority, StealPolicy,
};
pub use engine::{
    gemm_i32_ref, CampEngine, DType, EngineStats, GemmProblem, WeightHandle, WeightMeta,
};
pub use hybrid::HybridMultiplier;
pub use pool::WorkerPool;
#[allow(deprecated)]
pub use session::Request;
pub use session::{Session, TicketId};
pub use structure::CampStructure;
pub use unit::{CampActivity, CampUnit};

pub use camp_gemm::request::{GemmRequest, GemmRequestBuilder, Operand, RequestError};
pub use camp_gemm::weights::WeightSnapshot;
