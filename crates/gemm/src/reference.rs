//! Host-side reference GeMMs and deterministic data generation.

/// Tiny deterministic PRNG (SplitMix64) so workload generation does not
/// need an external dependency and is reproducible across harness runs.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform i8 in `[lo, hi]`.
    pub fn next_i8(&mut self, lo: i8, hi: i8) -> i8 {
        let span = (hi as i64 - lo as i64 + 1) as u64;
        (lo as i64 + (self.next_u64() % span) as i64) as i8
    }

    /// Vector of i8 values in `[lo, hi]`.
    pub fn i8_vec(&mut self, len: usize, lo: i8, hi: i8) -> Vec<i8> {
        (0..len).map(|_| self.next_i8(lo, hi)).collect()
    }
}

/// Reference i32 GeMM over i8 inputs: `C[i][j] = Σ A[i][l]·B[l][j]`
/// (row-major, wrapping accumulation). This is the golden model every
/// kernel dispatcher and the host-speed engine are validated against.
pub fn gemm_i32_ref(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for l in 0..k {
            let av = a[i * k + l] as i32;
            for j in 0..n {
                let idx = i * n + j;
                c[idx] = c[idx].wrapping_add(av.wrapping_mul(b[l * n + j] as i32));
            }
        }
    }
    c
}

/// i8-accumulator wrapping GeMM — the semantics of the paper's
/// overflow-unsafe `handv-int8` baseline (§5.3 point 2).
pub fn gemm_i8_wrapping_ref(m: usize, n: usize, k: usize, a: &[i8], b: &[i8]) -> Vec<i8> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0i8; m * n];
    for i in 0..m {
        for l in 0..k {
            let av = a[i * k + l];
            for j in 0..n {
                let p = av.wrapping_mul(b[l * n + j]);
                c[i * n + j] = c[i * n + j].wrapping_add(p);
            }
        }
    }
    c
}

/// f32 reference GeMM (row-major).
pub fn gemm_f32_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0f32; m * n];
    for i in 0..m {
        for l in 0..k {
            let av = a[i * k + l];
            for j in 0..n {
                c[i * n + j] += av * b[l * n + j];
            }
        }
    }
    c
}

/// f32 reference GeMM with fused-multiply-add semantics: each output
/// element is one correctly-rounded fma chain
/// `acc = fma(A[i][l], B[l][j], acc)` over `l` ascending from `+0.0`.
/// This is the *bit-exact* golden model for every `camp_gemm::host`
/// f32 tier — scalar `mul_add`, AVX2 `vfmadd` and NEON `vfma` all
/// realize exactly this chain, so their outputs match it bitwise.
pub fn gemm_f32_fma_ref(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0f32;
            for l in 0..k {
                acc = a[i * k + l].mul_add(b[l * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn i8_range_respected() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.next_i8(-8, 7);
            assert!((-8..=7).contains(&v));
        }
    }

    #[test]
    fn i8_wrapping_matches_manual() {
        // 2×2×2 with values that overflow i8
        let a = vec![100i8, 100, 1, 2];
        let b = vec![100i8, 1, 100, 2];
        let c = gemm_i8_wrapping_ref(2, 2, 2, &a, &b);
        let expect00 = (100i8.wrapping_mul(100)).wrapping_add(100i8.wrapping_mul(100));
        assert_eq!(c[0], expect00);
    }

    #[test]
    fn f32_ref_small() {
        let a = vec![1.0f32, 2.0, 3.0, 4.0];
        let b = vec![5.0f32, 6.0, 7.0, 8.0];
        let c = gemm_f32_ref(2, 2, 2, &a, &b);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn fma_ref_agrees_with_plain_ref_on_exact_inputs() {
        // small-integer-valued inputs: both references are exact, so
        // they must agree; larger random inputs only agree to rounding
        let mut r = SplitMix64::new(9);
        let (m, n, k) = (3, 5, 7);
        let a: Vec<f32> = (0..m * k).map(|_| r.next_i8(-8, 8) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|_| r.next_i8(-8, 8) as f32).collect();
        assert_eq!(gemm_f32_fma_ref(m, n, k, &a, &b), gemm_f32_ref(m, n, k, &a, &b));
    }

    #[test]
    fn distribution_covers_range() {
        let mut r = SplitMix64::new(3);
        let v = r.i8_vec(4096, -8, 7);
        assert!(v.contains(&-8));
        assert!(v.contains(&7));
    }
}
