//! Shared blocked-loop skeleton (shared-types module of the dispatch
//! layer).
//!
//! Both GeMM halves of this workspace — the simulated §5.3 driver
//! ([`crate::driver`]) and the host-speed CAMP engine in `camp-core` —
//! run the same GotoBLAS five-loop structure (Fig. 3): loop over column
//! blocks (`nc`), over depth blocks (`kc`, packing B), over row blocks
//! (`mc`, packing A), then hand the packed panels to a macro-kernel.
//! This module owns that structure once, as pure host-side control flow
//! with no dependency on either execution substrate. A backend plugs in
//! by implementing [`BlockSink`]; [`run_blocked`] drives it.

/// Round `x` up to the next multiple of `to`.
pub fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

/// Padded problem dimensions plus the cache-blocking factors, all
/// normalized so every block boundary is tile-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockPlan {
    /// m padded to a multiple of `mr`.
    pub mp: usize,
    /// n padded to a multiple of `nr`.
    pub np: usize,
    /// k padded to a multiple of the macro-kernel's k-unit.
    pub kp: usize,
    /// Row-block height (multiple of `mr`, ≤ `mp`).
    pub mc: usize,
    /// Column-block width (multiple of `nr`, ≤ `np`).
    pub nc: usize,
    /// Depth-block size (multiple of the k-unit, ≤ `kp`).
    pub kc: usize,
}

impl BlockPlan {
    /// Build a plan for an m×n×k problem on an `mr`×`nr` register tile
    /// whose macro-kernel consumes `k_unit` k-values per iteration.
    /// `(dmc, dnc, dkc)` are the desired blocking factors; they are
    /// clamped to the padded problem and re-aligned to the tile.
    ///
    /// A zero dimension yields a degenerate plan whose padded space is
    /// empty; [`run_blocked`] then visits nothing, so the m×n result of
    /// a k=0 problem stays all-zero and empty results stay empty. This
    /// matches the host engine, which returns an empty (or zero-filled)
    /// C for zero-dimension problems instead of panicking.
    ///
    /// # Panics
    /// Panics if a tile parameter is zero.
    pub fn new(
        m: usize,
        n: usize,
        k: usize,
        mr: usize,
        nr: usize,
        k_unit: usize,
        (dmc, dnc, dkc): (usize, usize, usize),
    ) -> Self {
        assert!(mr > 0 && nr > 0 && k_unit > 0, "tile must be positive");
        let mp = round_up(m, mr);
        let np = round_up(n, nr);
        let kp = round_up(k, k_unit);
        BlockPlan {
            mp,
            np,
            kp,
            mc: round_up(dmc.max(1).min(mp), mr),
            nc: round_up(dnc.max(1).min(np), nr),
            kc: round_up(dkc.max(1).min(kp), k_unit),
        }
    }
}

/// Largest m the host engine routes to the skinny-m fast path
/// (`camp_gemm::host`'s `run_small_m`): two 4-row register tiles.
/// Decode-shaped serving GeMMs sit well under this.
pub const SMALL_M_MAX: usize = 8;

/// Largest n the host engine routes to the skinny-n fast path
/// (`run_small_n`): two 4-column packed panels.
pub const SMALL_N_MAX: usize = 8;

/// Which skinny fast path a problem shape takes, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmallPath {
    /// m ≤ [`SMALL_M_MAX`]: GEMV-shaped decode step.
    SmallM,
    /// n ≤ [`SMALL_N_MAX`]: narrow projection.
    SmallN,
}

/// The single source of truth for skinny-path selection, shared by the
/// direct, batched and session entry points so they all route
/// identically. Zero-dimension problems return `None` (the engine
/// short-circuits those before any kernel runs); a problem that is
/// skinny both ways takes the m path (raw-B problems then need no
/// packing at all).
pub fn small_path(m: usize, n: usize) -> Option<SmallPath> {
    if m == 0 || n == 0 {
        None
    } else if m <= SMALL_M_MAX {
        Some(SmallPath::SmallM)
    } else if n <= SMALL_N_MAX {
        Some(SmallPath::SmallN)
    } else {
        None
    }
}

/// Backend hooks invoked by [`run_blocked`] at each stage of the
/// five-loop nest. Coordinates are in (padded) element space; every
/// block is tile-aligned by construction of [`BlockPlan`].
pub trait BlockSink {
    /// Pack the `kcb`×`ncb` block of B starting at `(pc, jc)`.
    fn pack_b(&mut self, jc: usize, ncb: usize, pc: usize, kcb: usize);
    /// Pack the `mcb`×`kcb` block of A starting at `(ic, pc)`.
    fn pack_a(&mut self, ic: usize, mcb: usize, pc: usize, kcb: usize);
    /// Run the macro-kernel over the packed blocks, updating the
    /// `mcb`×`ncb` block of C at `(ic, jc)`.
    fn macro_kernel(&mut self, ic: usize, mcb: usize, jc: usize, ncb: usize, pc: usize, kcb: usize);
}

/// Visit every `(jc, ncb, pc, kcb)` B block of the plan in the order
/// [`run_blocked`] packs them (jc outer, pc inner). This is the single
/// source of truth for the B traversal: anything that lays out B per
/// block — the per-block packing inside `run_blocked`, or a fully
/// pre-packed shared panel indexed by `crate::batch::packed_b_offset` —
/// must iterate identically, so both go through here.
pub fn for_each_b_block(plan: &BlockPlan, mut f: impl FnMut(usize, usize, usize, usize)) {
    let mut jc = 0;
    while jc < plan.np {
        let ncb = plan.nc.min(plan.np - jc);
        let mut pc = 0;
        while pc < plan.kp {
            let kcb = plan.kc.min(plan.kp - pc);
            f(jc, ncb, pc, kcb);
            pc += kcb;
        }
        jc += ncb;
    }
}

/// Visit every *unique* `(ic, mcb, pc, kcb)` A block of the plan, row
/// strips outer, depth blocks inner. [`run_blocked`] re-packs each A
/// block once per column strip; a fully pre-packed A (see
/// `camp_gemm::weights::prepack_a`, laid out by
/// [`crate::batch::packed_a_offset`]) holds each block exactly once and
/// serves every column strip, which is what lets a serving session pack
/// a batch's A operands while the previous batch computes.
pub fn for_each_a_block(plan: &BlockPlan, mut f: impl FnMut(usize, usize, usize, usize)) {
    let mut ic = 0;
    while ic < plan.mp {
        let mcb = plan.mc.min(plan.mp - ic);
        let mut pc = 0;
        while pc < plan.kp {
            let kcb = plan.kc.min(plan.kp - pc);
            f(ic, mcb, pc, kcb);
            pc += kcb;
        }
        ic += mcb;
    }
}

/// Visit every `(ic, mcb)` row strip of the plan, in ascending-`ic`
/// order — the macro loop [`run_blocked`] runs inside each (jc, pc)
/// block. The parallel simulated driver replays exactly this traversal
/// per independent block unit, so serial and parallel runs visit
/// identical row strips in identical order (the bit-identity contract).
pub fn for_each_row_strip(plan: &BlockPlan, mut f: impl FnMut(usize, usize)) {
    let mut ic = 0;
    while ic < plan.mp {
        let mcb = plan.mc.min(plan.mp - ic);
        f(ic, mcb);
        ic += mcb;
    }
}

/// Drive the GotoBLAS loops 3–5 over `sink` (Fig. 3): B is packed once
/// per (jc, pc) block and reused for every row block; A is packed once
/// per (ic, pc) block. A degenerate (zero-dimension) plan visits no
/// blocks at all — not even `pack_b` — so sinks never see empty blocks.
pub fn run_blocked(plan: &BlockPlan, sink: &mut dyn BlockSink) {
    if plan.mp == 0 || plan.np == 0 || plan.kp == 0 {
        return;
    }
    for_each_b_block(plan, |jc, ncb, pc, kcb| {
        sink.pack_b(jc, ncb, pc, kcb);
        for_each_row_strip(plan, |ic, mcb| {
            sink.pack_a(ic, mcb, pc, kcb);
            sink.macro_kernel(ic, mcb, jc, ncb, pc, kcb);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_pads_and_aligns() {
        let p = BlockPlan::new(5, 7, 19, 4, 4, 128, (64, 128, 4096));
        assert_eq!((p.mp, p.np, p.kp), (8, 8, 128));
        assert_eq!((p.mc, p.nc, p.kc), (8, 8, 128));
    }

    #[test]
    fn plan_respects_requested_blocking() {
        let p = BlockPlan::new(256, 256, 512, 4, 16, 2, (64, 128, 96));
        assert_eq!((p.mc, p.nc, p.kc), (64, 128, 96));
    }

    #[derive(Default)]
    struct Recorder {
        packs_b: Vec<(usize, usize, usize, usize)>,
        packs_a: Vec<(usize, usize, usize, usize)>,
        macros: Vec<(usize, usize, usize, usize, usize, usize)>,
    }

    impl BlockSink for Recorder {
        fn pack_b(&mut self, jc: usize, ncb: usize, pc: usize, kcb: usize) {
            self.packs_b.push((jc, ncb, pc, kcb));
        }
        fn pack_a(&mut self, ic: usize, mcb: usize, pc: usize, kcb: usize) {
            self.packs_a.push((ic, mcb, pc, kcb));
        }
        fn macro_kernel(
            &mut self,
            ic: usize,
            mcb: usize,
            jc: usize,
            ncb: usize,
            pc: usize,
            kcb: usize,
        ) {
            self.macros.push((ic, mcb, jc, ncb, pc, kcb));
        }
    }

    #[test]
    fn loop_nest_covers_problem_without_overlap() {
        let plan = BlockPlan::new(12, 20, 96, 4, 4, 32, (8, 8, 32));
        let mut r = Recorder::default();
        run_blocked(&plan, &mut r);
        // B packed once per (jc, pc) pair
        assert_eq!(r.packs_b.len(), (20usize.div_ceil(8)) * (96usize.div_ceil(32)));
        // A packed once per (ic, pc) pair per column block
        assert_eq!(r.packs_a.len(), r.packs_b.len() * 12usize.div_ceil(8));
        assert_eq!(r.macros.len(), r.packs_a.len());
        // blocks tile the full padded space exactly
        let covered: usize = r.macros.iter().map(|&(_, mcb, _, ncb, _, kcb)| mcb * ncb * kcb).sum();
        assert_eq!(covered, plan.mp * plan.np * plan.kp);
    }

    #[test]
    fn a_block_iterator_tiles_the_padded_row_depth_space() {
        let plan = BlockPlan::new(12, 20, 96, 4, 4, 32, (8, 8, 32));
        let mut covered = 0usize;
        let mut blocks = Vec::new();
        for_each_a_block(&plan, |ic, mcb, pc, kcb| {
            covered += mcb * kcb;
            blocks.push((ic, pc));
        });
        // each (ic, pc) exactly once, tiling mp×kp
        assert_eq!(covered, plan.mp * plan.kp);
        let mut dedup = blocks.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), blocks.len(), "A blocks must be unique");
        // run_blocked packs the same (ic, pc) set, repeated per column strip
        let mut r = Recorder::default();
        run_blocked(&plan, &mut r);
        let strips = 20usize.div_ceil(8);
        assert_eq!(r.packs_a.len(), blocks.len() * strips);
    }

    #[test]
    fn row_strips_tile_the_padded_rows_in_order() {
        let plan = BlockPlan::new(13, 8, 8, 4, 4, 1, (8, 8, 8));
        let mut covered = 0usize;
        let mut prev_end = 0usize;
        for_each_row_strip(&plan, |ic, mcb| {
            assert_eq!(ic, prev_end, "strips must be contiguous and ascending");
            prev_end = ic + mcb;
            covered += mcb;
        });
        assert_eq!(covered, plan.mp);
    }

    #[test]
    fn small_path_chooser_routes_by_shape() {
        assert_eq!(small_path(1, 4096), Some(SmallPath::SmallM));
        assert_eq!(small_path(SMALL_M_MAX, 4096), Some(SmallPath::SmallM));
        assert_eq!(small_path(4096, SMALL_N_MAX), Some(SmallPath::SmallN));
        assert_eq!(small_path(4096, 1), Some(SmallPath::SmallN));
        // skinny both ways prefers the m path
        assert_eq!(small_path(2, 2), Some(SmallPath::SmallM));
        // full-size and zero-dimension problems take the blocked nest
        assert_eq!(small_path(SMALL_M_MAX + 1, SMALL_N_MAX + 1), None);
        assert_eq!(small_path(0, 4), None);
        assert_eq!(small_path(4, 0), None);
    }

    #[test]
    fn zero_dims_yield_empty_traversal() {
        // zero-dimension problems must not panic anywhere: the plan is
        // degenerate and the loop nest visits no blocks
        for (m, n, k) in [(0, 4, 4), (4, 0, 4), (4, 4, 0), (0, 0, 0)] {
            let plan = BlockPlan::new(m, n, k, 4, 4, 1, (4, 4, 4));
            let mut r = Recorder::default();
            run_blocked(&plan, &mut r);
            assert!(r.packs_b.is_empty(), "{m}x{n}x{k} packed B");
            assert!(r.packs_a.is_empty(), "{m}x{n}x{k} packed A");
            assert!(r.macros.is_empty(), "{m}x{n}x{k} ran a macro-kernel");
        }
    }
}
