//! Pre-packed weight registry and the host-side packing routines it
//! shares with `camp-core`'s engine.
//!
//! A serving workload multiplies the *same* quantized weight matrices
//! against millions of distinct activations. Re-packing B on every call
//! is pure overhead: the packed image of a k×n operand depends only on
//! (n, k), the kernel's k-step and the blocking — never on the
//! activation — so it can be built exactly once and consumed forever.
//! [`WeightRegistry::register`] packs a weight matrix into a
//! pool-owned persistent panel ([`crate::workspace::PackPool`]'s
//! persistent arena) and returns a copyable [`WeightHandle`]; every
//! later GeMM against that handle runs with **zero B-packing**.
//!
//! This module is also the single source of truth for the host engine's
//! packed layouts: [`pack_a_block`] / [`pack_b_block`] pack one cache
//! block, [`prepack_a`] / [`prepack_b`] lay out a whole operand in the
//! blocked loops' visit order (offsets from
//! [`crate::batch::packed_a_offset`] / [`crate::batch::packed_b_offset`]),
//! and [`host_block_plan`] pins the blocking factors. The engine, the
//! registry and the serving session all pack through these functions, so
//! a pre-packed panel is bit-identical to what per-block packing would
//! have produced and results cannot diverge:
//!
//! ```
//! use camp_gemm::batch::packed_b_bytes;
//! use camp_gemm::weights::{host_block_plan, prepack_b, DType, WeightRegistry};
//!
//! let (n, k) = (8, 40);
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//!
//! let mut registry = WeightRegistry::new();
//! let handle = registry.register(n, k, &w, DType::I8);
//!
//! // the registered panel is exactly a standalone prepack of the operand
//! let plan = host_block_plan(1, n, k, DType::I8.k_step());
//! let mut expect = vec![0i8; packed_b_bytes(&plan)];
//! prepack_b(&mut expect, &w, n, k, &plan);
//! assert_eq!(registry.panel(handle), &expect[..]);
//! ```
//!
//! (`CampEngine::register_weights` and handle-operand `GemmRequest`s in
//! `camp-core` wrap this registry behind the engine API — see their
//! doctests.)

use std::sync::Arc;

use crate::batch::{packed_a_offset, packed_b_bytes, packed_b_offset};
use crate::loops::{for_each_a_block, for_each_b_block, BlockPlan};
use crate::request::RequestError;
use crate::workspace::{PackPool, PersistentId};

/// Default host-engine cache blocking: (mc, nc, kc), multiples of the
/// 4×4 register tile and both camp k-steps. The *active* blocking is
/// [`crate::host::int_blocking`], which applies the validated
/// `CAMP_MC`/`CAMP_NC`/`CAMP_KC` environment overrides over these
/// defaults; every host-side packer goes through [`host_block_plan`],
/// so pre-packed panels and per-block packing always agree on layout.
pub const HOST_BLOCKING: (usize, usize, usize) = (128, 256, 2048);

/// The [`BlockPlan`] every host-side GeMM over a 4×4 camp tile uses.
/// B-panel layout depends only on `n`, `k`, `k_step` and the blocking
/// (never `m` or the dispatched [`crate::host::HostKernel`] tier), so
/// a plan built here for any `m` indexes the same packed B image.
pub fn host_block_plan(m: usize, n: usize, k: usize, k_step: usize) -> BlockPlan {
    BlockPlan::new(m, n, k, 4, 4, k_step, crate::host::int_blocking())
}

/// Element type a problem runs under — selects the camp kernel
/// (`camp.s8` vs `camp.s4`) and with it the packed-operand layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 8-bit operands, 16 k-steps per `camp.s8` issue.
    I8,
    /// 4-bit operands (stored one per byte, values in [-8, 7]),
    /// 32 k-steps per `camp.s4` issue.
    I4,
}

impl DType {
    /// k-values one camp issue of this dtype consumes.
    pub fn k_step(self) -> usize {
        match self {
            DType::I8 => 16,
            DType::I4 => 32,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DType::I8 => "i8",
            DType::I4 => "i4",
        }
    }
}

/// Copyable handle to one registered weight matrix, valid until that
/// registration is evicted ([`WeightRegistry::evict`] /
/// [`WeightRegistry::clear`]). Handles are stamped with their
/// registry's identity *and* their slot's generation: using one against
/// a different engine's registry, or after its registration was
/// evicted, fails loudly (the legacy lookups panic; the request API
/// returns [`RequestError::StaleHandle`]) instead of silently
/// multiplying the wrong weights when shapes happen to coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightHandle {
    registry: u64,
    index: usize,
    generation: u64,
}

impl WeightHandle {
    /// Slot index of this handle in its registry.
    pub fn index(self) -> usize {
        self.index
    }

    /// Identity of the registry that issued this handle (see
    /// [`WeightRegistry::id`]).
    pub fn registry(self) -> u64 {
        self.registry
    }

    /// Generation of the slot when this handle was issued; a slot
    /// re-used after eviction carries a higher generation, which is how
    /// stale handles are detected.
    pub fn generation(self) -> u64 {
        self.generation
    }
}

/// Submit-time view of a registry: registry identity plus the
/// generation and metadata of every live slot. A serving session
/// validates submissions against this snapshot without holding the
/// backend, and [`crate::request::GemmRequest::resolve`] reads handle
/// shapes out of it.
#[derive(Debug, Clone)]
pub struct WeightSnapshot {
    registry: u64,
    entries: Vec<Option<(u64, WeightMeta)>>,
}

impl WeightSnapshot {
    /// An empty snapshot tied to no registry (every handle is foreign).
    pub fn empty() -> Self {
        WeightSnapshot { registry: u64::MAX, entries: Vec::new() }
    }

    /// Shape/dtype of a handle's registration at snapshot time, or why
    /// the handle is invalid.
    pub fn meta(&self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        if h.registry != self.registry {
            return Err(RequestError::ForeignHandle);
        }
        match self.entries.get(h.index) {
            None => Err(RequestError::UnknownHandle),
            Some(None) => Err(RequestError::StaleHandle),
            Some(Some((generation, meta))) => {
                if *generation == h.generation {
                    Ok(*meta)
                } else {
                    Err(RequestError::StaleHandle)
                }
            }
        }
    }

    /// Live registrations in the snapshot.
    pub fn live(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

/// Shape and dtype of one registered weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightMeta {
    /// Columns of the weight matrix (N of the GeMM).
    pub n: usize,
    /// Rows of the weight matrix (K of the GeMM).
    pub k: usize,
    /// Kernel the panel was packed for.
    pub dtype: DType,
}

impl WeightMeta {
    /// Multiply-accumulates of one m-row GeMM against this weight.
    pub fn macs(&self, m: usize) -> u64 {
        m as u64 * self.n as u64 * self.k as u64
    }
}

/// One live registration.
#[derive(Debug)]
struct Entry {
    meta: WeightMeta,
    panel: PersistentId,
    /// Raw row-major k×n bytes; kept only in raw-mirror mode (the
    /// simulated backend stages these into machine memory).
    raw: Option<Arc<[i8]>>,
    /// Resident bytes of this registration (packed panel or raw copy).
    bytes: u64,
}

/// One registry slot: its current generation plus the live entry, if
/// any. Evicting clears the entry; re-registering into the slot bumps
/// the generation, which is what invalidates outstanding handles.
#[derive(Debug)]
struct Slot {
    generation: u64,
    entry: Option<Entry>,
}

/// Registry of pre-packed B operands: each registration packs the
/// weight once into a persistent pool panel; lookups are index reads.
/// Long-lived serving engines can drop stale layers with
/// [`WeightRegistry::evict`] / [`WeightRegistry::clear`] — evicted
/// storage is freed and the slot is recycled under a new generation, so
/// outstanding handles to the old registration fail loudly instead of
/// reading the new occupant.
///
/// [`WeightRegistry::raw_mirror`] builds the *simulated* flavor of the
/// registry: identical handle semantics (identity, generations,
/// eviction), but registrations keep the raw weight bytes (for staging
/// into simulated machine memory) instead of a host-packed panel.
#[derive(Debug)]
pub struct WeightRegistry {
    id: u64,
    pool: PackPool,
    slots: Vec<Slot>,
    /// Evicted slot indices awaiting re-use.
    free: Vec<usize>,
    packed_bytes: u64,
    resident_bytes: u64,
    /// Raw-mirror mode: keep raw bytes, skip host packing.
    raw_mode: bool,
}

impl Default for WeightRegistry {
    fn default() -> Self {
        WeightRegistry::new()
    }
}

impl WeightRegistry {
    /// Empty host registry (packed panels) with a process-unique
    /// identity.
    pub fn new() -> Self {
        WeightRegistry::with_mode(false)
    }

    /// Empty **raw-mirror** registry: registrations keep the raw
    /// row-major weight bytes (readable via [`WeightRegistry::raw`])
    /// and pack no host panels — the storage mode of the simulated
    /// backend's weight registry.
    pub fn raw_mirror() -> Self {
        WeightRegistry::with_mode(true)
    }

    fn with_mode(raw_mode: bool) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(0);
        WeightRegistry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            pool: PackPool::new(),
            slots: Vec::new(),
            free: Vec::new(),
            packed_bytes: 0,
            resident_bytes: 0,
            raw_mode,
        }
    }

    /// Process-unique identity stamped into every handle this registry
    /// issues.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pack the row-major k×n weight matrix `b` for `dtype`'s kernel and
    /// keep the panel alive until the registration is evicted.
    /// Zero-dimension weights register an empty panel (their GeMMs are
    /// degenerate). In raw-mirror mode the raw bytes are kept instead of
    /// a packed panel.
    ///
    /// # Panics
    /// Panics if `b.len() != k * n`.
    pub fn register(&mut self, n: usize, k: usize, b: &[i8], dtype: DType) -> WeightHandle {
        assert_eq!(b.len(), k * n, "weights must be k×n");
        let (panel, raw, bytes) = if self.raw_mode {
            let raw: Arc<[i8]> = Arc::from(b);
            let bytes = raw.len() as u64;
            (self.pool.alloc_persistent(0), Some(raw), bytes)
        } else {
            let plan = host_block_plan(4, n, k, dtype.k_step());
            let bytes = if n == 0 || k == 0 { 0 } else { packed_b_bytes(&plan) };
            let id = self.pool.alloc_persistent(bytes);
            prepack_b(self.pool.persistent_mut(id), b, n, k, &plan);
            self.packed_bytes += bytes as u64;
            (id, None, bytes as u64)
        };
        self.resident_bytes += bytes;
        let entry = Entry { meta: WeightMeta { n, k, dtype }, panel, raw, bytes };
        let index = match self.free.pop() {
            Some(index) => {
                // re-use the evicted slot under a fresh generation, so
                // handles to the old occupant read as stale
                let slot = &mut self.slots[index];
                slot.generation += 1;
                slot.entry = Some(entry);
                index
            }
            None => {
                self.slots.push(Slot { generation: 0, entry: Some(entry) });
                self.slots.len() - 1
            }
        };
        WeightHandle { registry: self.id, index, generation: self.slots[index].generation }
    }

    /// Fallible lookup: the entry behind a handle, or why the handle is
    /// invalid.
    fn try_entry(&self, h: WeightHandle) -> Result<&Entry, RequestError> {
        if h.registry != self.id {
            return Err(RequestError::ForeignHandle);
        }
        let slot = self.slots.get(h.index).ok_or(RequestError::UnknownHandle)?;
        if slot.generation != h.generation {
            return Err(RequestError::StaleHandle);
        }
        slot.entry.as_ref().ok_or(RequestError::StaleHandle)
    }

    fn entry(&self, h: WeightHandle) -> &Entry {
        match self.try_entry(h) {
            Ok(e) => e,
            Err(RequestError::ForeignHandle) => {
                panic!("WeightHandle from a different registry")
            }
            Err(RequestError::StaleHandle) => panic!("stale WeightHandle (evicted registration)"),
            Err(_) => panic!("unknown WeightHandle"),
        }
    }

    /// Shape/dtype of a registered weight.
    ///
    /// # Panics
    /// Panics on a foreign, unknown or evicted handle (the legacy
    /// surface; use [`WeightRegistry::try_meta`] for a `Result`).
    pub fn meta(&self, h: WeightHandle) -> WeightMeta {
        self.entry(h).meta
    }

    /// Shape/dtype of a registered weight, or why the handle is
    /// invalid ([`RequestError::StaleHandle`] after eviction).
    pub fn try_meta(&self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        Ok(self.try_entry(h)?.meta)
    }

    /// The packed panel of a registered weight, ready for any worker to
    /// consume at [`packed_b_offset`] offsets.
    ///
    /// # Panics
    /// Panics on a foreign, unknown or evicted handle, and in
    /// raw-mirror mode (no packed panels exist there).
    pub fn panel(&self, h: WeightHandle) -> &[i8] {
        assert!(!self.raw_mode, "raw-mirror registries hold no packed panels");
        self.pool.persistent(self.entry(h).panel)
    }

    /// The raw row-major k×n bytes of a registration (raw-mirror mode
    /// only; host registries keep only the packed form).
    pub fn raw(&self, h: WeightHandle) -> Result<Arc<[i8]>, RequestError> {
        let entry = self.try_entry(h)?;
        entry
            .raw
            .clone()
            .ok_or(RequestError::Unsupported("registry does not retain raw weight bytes"))
    }

    /// Drop one registration: its storage is freed, later uses of the
    /// handle are stale, and the slot is recycled by a future
    /// [`WeightRegistry::register`] under a new generation.
    pub fn evict(&mut self, h: WeightHandle) -> Result<WeightMeta, RequestError> {
        // validate first so a bad handle cannot free anything
        self.try_entry(h)?;
        let slot = &mut self.slots[h.index];
        let entry = slot.entry.take().expect("validated live entry");
        self.pool.free_persistent(entry.panel);
        self.resident_bytes -= entry.bytes;
        self.free.push(h.index);
        Ok(entry.meta)
    }

    /// Evict every live registration (a serving engine dropping a whole
    /// stale model). Outstanding handles all become stale.
    pub fn clear(&mut self) {
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if let Some(entry) = slot.entry.take() {
                self.pool.free_persistent(entry.panel);
                self.resident_bytes -= entry.bytes;
                self.free.push(index);
            }
        }
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_some()).count()
    }

    /// True when nothing is registered (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes packed at registration time, cumulatively (one-time
    /// cost the steady state never pays again; not decreased by
    /// eviction — see [`WeightRegistry::resident_bytes`]).
    pub fn packed_bytes(&self) -> u64 {
        self.packed_bytes
    }

    /// Bytes currently resident for live registrations; eviction
    /// returns them, which is the point of registry hygiene on
    /// long-lived serving engines.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Submit-time snapshot of every slot (identity, generations,
    /// metadata) — what a serving session validates requests against.
    pub fn snapshot(&self) -> WeightSnapshot {
        WeightSnapshot {
            registry: self.id,
            entries: self
                .slots
                .iter()
                .map(|s| s.entry.as_ref().map(|e| (s.generation, e.meta)))
                .collect(),
        }
    }
}

/// Pack a block of row-major B starting at column `jc`, depth `pc` into
/// nR-column panels (row-major within the panel), zero-padded past the
/// matrix edge — the layout one `camp` B operand expects. `buf` must
/// hold exactly `ncb * kcb` bytes; its length determines the block
/// width.
///
/// Dispatches through the detected [`crate::host::HostKernel`]'s
/// vectorized packer;
/// the image is byte-identical to [`crate::host::scalar::pack_b_block`]
/// (the layout reference) on every tier, so panels packed here remain
/// consumable by any tier.
pub fn pack_b_block(
    buf: &mut [i8],
    b: &[i8],
    n: usize,
    k: usize,
    jc: usize,
    pc: usize,
    kcb: usize,
) {
    crate::host::HostKernel::detect().pack_b_block(buf, b, n, k, jc, pc, kcb)
}

/// Pack a block of row-major A starting at row `ic`, depth `pc` into
/// mR-row panels (column-major within the panel), zero-padded past the
/// matrix edge. `buf` must hold exactly `mcb * kcb` bytes; its length
/// determines the block height.
///
/// Dispatches through the detected [`crate::host::HostKernel`]'s
/// vectorized packer;
/// byte-identical to [`crate::host::scalar::pack_a_block`].
pub fn pack_a_block(
    buf: &mut [i8],
    a: &[i8],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    kcb: usize,
) {
    crate::host::HostKernel::detect().pack_a_block(buf, a, m, k, ic, pc, kcb)
}

/// Pack every (jc, pc) block of B in the blocked loops' visit order
/// (shared with `run_blocked` via [`for_each_b_block`]) into `dst`
/// (sized by [`packed_b_bytes`]). Each block's bytes are bit-identical
/// to what per-block packing produces, so a macro-kernel reading at
/// [`packed_b_offset`] computes exactly the serial result.
pub fn prepack_b(dst: &mut [i8], b: &[i8], n: usize, k: usize, plan: &BlockPlan) {
    for_each_b_block(plan, |jc, ncb, pc, kcb| {
        let off = packed_b_offset(plan.kp, jc, ncb, pc);
        pack_b_block(&mut dst[off..off + ncb * kcb], b, n, k, jc, pc, kcb);
    });
}

/// Pack every (ic, pc) block of A once into `dst` (sized by
/// [`crate::batch::packed_a_bytes`]), in [`for_each_a_block`] order. A macro-kernel
/// reading at [`packed_a_offset`] sees exactly the bytes per-block
/// packing would have produced — the serving session uses this to
/// overlap the A-packing of one batch with the compute of another.
pub fn prepack_a(dst: &mut [i8], a: &[i8], m: usize, k: usize, plan: &BlockPlan) {
    for_each_a_block(plan, |ic, mcb, pc, kcb| {
        let off = packed_a_offset(plan.kp, ic, mcb, pc);
        pack_a_block(&mut dst[off..off + mcb * kcb], a, m, k, ic, pc, kcb);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::packed_a_bytes;

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    #[test]
    fn dtype_k_steps_match_the_camp_issues() {
        assert_eq!(DType::I8.k_step(), 16);
        assert_eq!(DType::I4.k_step(), 32);
        assert_ne!(DType::I8.name(), DType::I4.name());
    }

    #[test]
    fn register_packs_once_and_serves_forever() {
        let (n, k) = (10, 33);
        let b = fill(k * n, 7);
        let mut reg = WeightRegistry::new();
        let h = reg.register(n, k, &b, DType::I8);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let meta = reg.meta(h);
        assert_eq!((meta.n, meta.k, meta.dtype), (n, k, DType::I8));
        assert_eq!(meta.macs(5), 5 * n as u64 * k as u64);
        // panel bytes equal a standalone prepack of the same operand
        let plan = host_block_plan(1, n, k, 16);
        let mut expect = vec![0i8; packed_b_bytes(&plan)];
        prepack_b(&mut expect, &b, n, k, &plan);
        assert_eq!(reg.panel(h), &expect[..]);
        assert_eq!(reg.packed_bytes(), expect.len() as u64);
    }

    #[test]
    fn i4_and_i8_registrations_pack_distinct_layouts() {
        // k between the two k-steps: padded depth (and so panel size)
        // must differ between the kernels
        let (n, k) = (4, 20);
        let b = fill(k * n, 5);
        let mut reg = WeightRegistry::new();
        let h8 = reg.register(n, k, &b, DType::I8);
        let h4 = reg.register(n, k, &b, DType::I4);
        assert_eq!(reg.panel(h8).len(), 4 * 32); // kp = 32 under k-step 16
        assert_eq!(reg.panel(h4).len(), 4 * 32); // kp = 32 under k-step 32
        assert_eq!(reg.snapshot().live(), 2);
        assert_eq!(reg.snapshot().meta(h4).unwrap().dtype, DType::I4);
    }

    #[test]
    fn zero_dim_weights_register_empty_panels() {
        let mut reg = WeightRegistry::new();
        let h = reg.register(0, 8, &[], DType::I8);
        assert!(reg.panel(h).is_empty());
        let h2 = reg.register(4, 0, &[], DType::I4);
        assert!(reg.panel(h2).is_empty());
        assert_eq!(reg.packed_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "WeightHandle from a different registry")]
    fn foreign_handles_are_rejected_even_when_shapes_coincide() {
        // the dangerous case: the other registry has an entry with the
        // same index and shape — without the identity stamp this would
        // silently multiply the wrong weights
        let mut reg = WeightRegistry::new();
        let h = reg.register(4, 4, &fill(16, 3), DType::I8);
        let mut other = WeightRegistry::new();
        let _ = other.register(4, 4, &fill(16, 7), DType::I8);
        let _ = other.meta(h);
    }

    #[test]
    fn evicted_handles_go_stale_and_free_storage() {
        let (n, k) = (8, 40);
        let mut reg = WeightRegistry::new();
        let h1 = reg.register(n, k, &fill(k * n, 3), DType::I8);
        let h2 = reg.register(n, k, &fill(k * n, 7), DType::I8);
        assert_eq!(reg.len(), 2);
        let resident = reg.resident_bytes();
        assert!(resident > 0);

        let meta = reg.evict(h1).expect("live handle evicts");
        assert_eq!((meta.n, meta.k), (n, k));
        assert_eq!(reg.len(), 1);
        assert!(reg.resident_bytes() < resident, "eviction must return bytes");
        // the stale handle errs through the fallible surface ...
        assert_eq!(reg.try_meta(h1).unwrap_err(), RequestError::StaleHandle);
        assert_eq!(reg.evict(h1).unwrap_err(), RequestError::StaleHandle);
        // ... while the survivor stays valid
        assert!(reg.try_meta(h2).is_ok());
        assert!(!reg.panel(h2).is_empty());
    }

    #[test]
    fn recycled_slots_change_generation() {
        // the dangerous case: a new registration re-uses the evicted
        // slot, so without generations the stale handle would silently
        // read the *new* weights
        let mut reg = WeightRegistry::new();
        let old = reg.register(4, 16, &fill(64, 3), DType::I8);
        reg.evict(old).unwrap();
        let new = reg.register(4, 16, &fill(64, 9), DType::I8);
        assert_eq!(old.index(), new.index(), "slot must be recycled");
        assert_ne!(old.generation(), new.generation());
        assert_eq!(reg.try_meta(old).unwrap_err(), RequestError::StaleHandle);
        assert!(reg.try_meta(new).is_ok());
    }

    #[test]
    fn clear_evicts_everything() {
        let mut reg = WeightRegistry::new();
        let hs: Vec<_> = (0..3).map(|i| reg.register(4, 16, &fill(64, 3 + i), DType::I8)).collect();
        reg.clear();
        assert!(reg.is_empty());
        assert_eq!(reg.resident_bytes(), 0);
        for h in hs {
            assert_eq!(reg.try_meta(h).unwrap_err(), RequestError::StaleHandle);
        }
        // the registry keeps working after a clear
        let h = reg.register(4, 16, &fill(64, 11), DType::I8);
        assert!(reg.try_meta(h).is_ok());
    }

    #[test]
    #[should_panic(expected = "stale WeightHandle")]
    fn legacy_lookups_panic_on_stale_handles() {
        let mut reg = WeightRegistry::new();
        let h = reg.register(4, 16, &fill(64, 3), DType::I8);
        reg.evict(h).unwrap();
        let _ = reg.meta(h);
    }

    #[test]
    fn raw_mirror_registries_keep_the_bytes_not_panels() {
        let (n, k) = (6, 24);
        let b = fill(k * n, 5);
        let mut reg = WeightRegistry::raw_mirror();
        let h = reg.register(n, k, &b, DType::I4);
        assert_eq!(&reg.raw(h).unwrap()[..], &b[..]);
        assert_eq!(reg.packed_bytes(), 0, "raw mirrors pack nothing");
        assert_eq!(reg.resident_bytes(), (k * n) as u64);
        // the host registry, conversely, has no raw bytes to give
        let mut host = WeightRegistry::new();
        let hh = host.register(n, k, &b, DType::I8);
        assert!(host.raw(hh).is_err());
    }

    #[test]
    fn snapshots_resolve_handles_like_the_registry() {
        let mut reg = WeightRegistry::new();
        let h1 = reg.register(4, 16, &fill(64, 3), DType::I8);
        let h2 = reg.register(8, 32, &fill(256, 5), DType::I4);
        reg.evict(h1).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.live(), 1);
        assert_eq!(snap.meta(h1).unwrap_err(), RequestError::StaleHandle);
        assert_eq!(snap.meta(h2).unwrap(), reg.meta(h2));
        let foreign = WeightRegistry::new().snapshot();
        assert_eq!(foreign.meta(h2).unwrap_err(), RequestError::ForeignHandle);
        assert!(WeightSnapshot::empty().meta(h2).is_err());
    }

    #[test]
    fn prepacked_a_blocks_match_per_block_packing() {
        let (m, k) = (13, 70);
        let a = fill(m * k, 11);
        let plan = host_block_plan(m, 8, k, 16);
        let mut packed = vec![99i8; packed_a_bytes(&plan)];
        prepack_a(&mut packed, &a, m, k, &plan);
        // every (ic, pc) block read at its offset equals a fresh
        // per-block pack of the same coordinates
        for_each_a_block(&plan, |ic, mcb, pc, kcb| {
            let mut fresh = vec![0i8; mcb * kcb];
            pack_a_block(&mut fresh, &a, m, k, ic, pc, kcb);
            let off = packed_a_offset(plan.kp, ic, mcb, pc);
            assert_eq!(&packed[off..off + mcb * kcb], &fresh[..], "block ({ic}, {pc})");
        });
    }

    #[test]
    fn host_plan_b_layout_is_independent_of_m() {
        let (n, k) = (300, 2100); // spans several (jc, pc) blocks
        for m in [1, 4, 129, 1000] {
            let p = host_block_plan(m, n, k, 16);
            let q = host_block_plan(4, n, k, 16);
            assert_eq!((p.np, p.kp, p.nc, p.kc), (q.np, q.kp, q.nc, q.kc), "m={m}");
        }
    }
}
