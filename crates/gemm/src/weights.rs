//! Pre-packed weight registry and the host-side packing routines it
//! shares with `camp-core`'s engine.
//!
//! A serving workload multiplies the *same* quantized weight matrices
//! against millions of distinct activations. Re-packing B on every call
//! is pure overhead: the packed image of a k×n operand depends only on
//! (n, k), the kernel's k-step and the blocking — never on the
//! activation — so it can be built exactly once and consumed forever.
//! [`WeightRegistry::register`] packs a weight matrix into a
//! pool-owned persistent panel ([`crate::workspace::PackPool`]'s
//! persistent arena) and returns a copyable [`WeightHandle`]; every
//! later GeMM against that handle runs with **zero B-packing**.
//!
//! This module is also the single source of truth for the host engine's
//! packed layouts: [`pack_a_block`] / [`pack_b_block`] pack one cache
//! block, [`prepack_a`] / [`prepack_b`] lay out a whole operand in the
//! blocked loops' visit order (offsets from
//! [`crate::batch::packed_a_offset`] / [`crate::batch::packed_b_offset`]),
//! and [`host_block_plan`] pins the blocking factors. The engine, the
//! registry and the serving session all pack through these functions, so
//! a pre-packed panel is bit-identical to what per-block packing would
//! have produced and results cannot diverge:
//!
//! ```
//! use camp_gemm::batch::packed_b_bytes;
//! use camp_gemm::weights::{host_block_plan, prepack_b, DType, WeightRegistry};
//!
//! let (n, k) = (8, 40);
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//!
//! let mut registry = WeightRegistry::new();
//! let handle = registry.register(n, k, &w, DType::I8);
//!
//! // the registered panel is exactly a standalone prepack of the operand
//! let plan = host_block_plan(1, n, k, DType::I8.k_step());
//! let mut expect = vec![0i8; packed_b_bytes(&plan)];
//! prepack_b(&mut expect, &w, n, k, &plan);
//! assert_eq!(registry.panel(handle), &expect[..]);
//! ```
//!
//! (`CampEngine::register_weights` / `gemm_with_handle` in `camp-core`
//! wrap this registry behind the engine API — see their doctests.)

use crate::batch::{packed_a_offset, packed_b_bytes, packed_b_offset};
use crate::loops::{for_each_a_block, for_each_b_block, BlockPlan};
use crate::workspace::{PackPool, PersistentId};

/// Host-engine cache blocking: (mc, nc, kc), multiples of the 4×4
/// register tile and both camp k-steps. Shared by every host-side
/// packer so pre-packed panels and per-block packing agree on layout.
pub const HOST_BLOCKING: (usize, usize, usize) = (128, 256, 2048);

/// The [`BlockPlan`] every host-side GeMM over a 4×4 camp tile uses.
/// B-panel layout depends only on `n`, `k` and `k_step` (never `m`), so
/// a plan built here for any `m` indexes the same packed B image.
pub fn host_block_plan(m: usize, n: usize, k: usize, k_step: usize) -> BlockPlan {
    BlockPlan::new(m, n, k, 4, 4, k_step, HOST_BLOCKING)
}

/// Element type a problem runs under — selects the camp kernel
/// (`camp.s8` vs `camp.s4`) and with it the packed-operand layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 8-bit operands, 16 k-steps per `camp.s8` issue.
    I8,
    /// 4-bit operands (stored one per byte, values in [-8, 7]),
    /// 32 k-steps per `camp.s4` issue.
    I4,
}

impl DType {
    /// k-values one camp issue of this dtype consumes.
    pub fn k_step(self) -> usize {
        match self {
            DType::I8 => 16,
            DType::I4 => 32,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DType::I8 => "i8",
            DType::I4 => "i4",
        }
    }
}

/// Copyable handle to one registered weight matrix. Valid for the
/// lifetime of the registry (registrations are never evicted). Handles
/// are stamped with their registry's identity, so using one against a
/// different engine's registry panics instead of silently multiplying
/// the wrong weights when shapes happen to coincide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WeightHandle {
    registry: u64,
    index: usize,
}

impl WeightHandle {
    /// Index of this handle in registration order.
    pub fn index(self) -> usize {
        self.index
    }

    /// Identity of the registry that issued this handle (see
    /// [`WeightRegistry::id`]).
    pub fn registry(self) -> u64 {
        self.registry
    }
}

/// Shape and dtype of one registered weight matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightMeta {
    /// Columns of the weight matrix (N of the GeMM).
    pub n: usize,
    /// Rows of the weight matrix (K of the GeMM).
    pub k: usize,
    /// Kernel the panel was packed for.
    pub dtype: DType,
}

impl WeightMeta {
    /// Multiply-accumulates of one m-row GeMM against this weight.
    pub fn macs(&self, m: usize) -> u64 {
        m as u64 * self.n as u64 * self.k as u64
    }
}

/// Registry of pre-packed B operands: each registration packs the
/// weight once into a persistent pool panel; lookups are index reads.
#[derive(Debug)]
pub struct WeightRegistry {
    id: u64,
    pool: PackPool,
    entries: Vec<(WeightMeta, PersistentId)>,
    packed_bytes: u64,
}

impl Default for WeightRegistry {
    fn default() -> Self {
        WeightRegistry::new()
    }
}

impl WeightRegistry {
    /// Empty registry with a process-unique identity.
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(0);
        WeightRegistry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            pool: PackPool::new(),
            entries: Vec::new(),
            packed_bytes: 0,
        }
    }

    /// Process-unique identity stamped into every handle this registry
    /// issues.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Pack the row-major k×n weight matrix `b` for `dtype`'s kernel and
    /// keep the panel alive for the registry's lifetime. Zero-dimension
    /// weights register an empty panel (their GeMMs are degenerate).
    ///
    /// # Panics
    /// Panics if `b.len() != k * n`.
    pub fn register(&mut self, n: usize, k: usize, b: &[i8], dtype: DType) -> WeightHandle {
        assert_eq!(b.len(), k * n, "weights must be k×n");
        let plan = host_block_plan(4, n, k, dtype.k_step());
        let bytes = if n == 0 || k == 0 { 0 } else { packed_b_bytes(&plan) };
        let id = self.pool.alloc_persistent(bytes);
        prepack_b(self.pool.persistent_mut(id), b, n, k, &plan);
        self.packed_bytes += bytes as u64;
        self.entries.push((WeightMeta { n, k, dtype }, id));
        WeightHandle { registry: self.id, index: self.entries.len() - 1 }
    }

    fn entry(&self, h: WeightHandle) -> &(WeightMeta, PersistentId) {
        assert_eq!(h.registry, self.id, "WeightHandle from a different registry");
        self.entries.get(h.index).expect("unknown WeightHandle")
    }

    /// Shape/dtype of a registered weight.
    ///
    /// # Panics
    /// Panics on a handle from a different registry.
    pub fn meta(&self, h: WeightHandle) -> WeightMeta {
        self.entry(h).0
    }

    /// The packed panel of a registered weight, ready for any worker to
    /// consume at [`packed_b_offset`] offsets.
    ///
    /// # Panics
    /// Panics on a handle from a different registry.
    pub fn panel(&self, h: WeightHandle) -> &[i8] {
        self.pool.persistent(self.entry(h).1)
    }

    /// Number of registered weights.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes packed at registration time (one-time cost the
    /// steady state never pays again).
    pub fn packed_bytes(&self) -> u64 {
        self.packed_bytes
    }

    /// Metadata of every registration, in handle order — the snapshot a
    /// serving session validates submissions against.
    pub fn metas(&self) -> Vec<WeightMeta> {
        self.entries.iter().map(|(m, _)| *m).collect()
    }
}

/// Pack a block of row-major B starting at column `jc`, depth `pc` into
/// nR-column panels (row-major within the panel), zero-padded past the
/// matrix edge — the layout one `camp` B operand expects. `buf` must
/// hold exactly `ncb * kcb` bytes; its length determines the block
/// width.
pub fn pack_b_block(
    buf: &mut [i8],
    b: &[i8],
    n: usize,
    k: usize,
    jc: usize,
    pc: usize,
    kcb: usize,
) {
    let panel = kcb * 4;
    for (q, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
        let j0 = jc + q * 4;
        for l in 0..kcb {
            let lg = pc + l;
            for (cx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                let j = j0 + cx;
                *out = if lg < k && j < n { b[lg * n + j] } else { 0 };
            }
        }
    }
}

/// Pack a block of row-major A starting at row `ic`, depth `pc` into
/// mR-row panels (column-major within the panel), zero-padded past the
/// matrix edge. `buf` must hold exactly `mcb * kcb` bytes; its length
/// determines the block height.
pub fn pack_a_block(
    buf: &mut [i8],
    a: &[i8],
    m: usize,
    k: usize,
    ic: usize,
    pc: usize,
    kcb: usize,
) {
    let panel = kcb * 4;
    for (p, panel_buf) in buf.chunks_exact_mut(panel).enumerate() {
        let i0 = ic + p * 4;
        for l in 0..kcb {
            let lg = pc + l;
            for (rx, out) in panel_buf[l * 4..l * 4 + 4].iter_mut().enumerate() {
                let i = i0 + rx;
                *out = if lg < k && i < m { a[i * k + lg] } else { 0 };
            }
        }
    }
}

/// Pack every (jc, pc) block of B in the blocked loops' visit order
/// (shared with `run_blocked` via [`for_each_b_block`]) into `dst`
/// (sized by [`packed_b_bytes`]). Each block's bytes are bit-identical
/// to what per-block packing produces, so a macro-kernel reading at
/// [`packed_b_offset`] computes exactly the serial result.
pub fn prepack_b(dst: &mut [i8], b: &[i8], n: usize, k: usize, plan: &BlockPlan) {
    for_each_b_block(plan, |jc, ncb, pc, kcb| {
        let off = packed_b_offset(plan.kp, jc, ncb, pc);
        pack_b_block(&mut dst[off..off + ncb * kcb], b, n, k, jc, pc, kcb);
    });
}

/// Pack every (ic, pc) block of A once into `dst` (sized by
/// [`crate::batch::packed_a_bytes`]), in [`for_each_a_block`] order. A macro-kernel
/// reading at [`packed_a_offset`] sees exactly the bytes per-block
/// packing would have produced — the serving session uses this to
/// overlap the A-packing of one batch with the compute of another.
pub fn prepack_a(dst: &mut [i8], a: &[i8], m: usize, k: usize, plan: &BlockPlan) {
    for_each_a_block(plan, |ic, mcb, pc, kcb| {
        let off = packed_a_offset(plan.kp, ic, mcb, pc);
        pack_a_block(&mut dst[off..off + mcb * kcb], a, m, k, ic, pc, kcb);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::packed_a_bytes;

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    #[test]
    fn dtype_k_steps_match_the_camp_issues() {
        assert_eq!(DType::I8.k_step(), 16);
        assert_eq!(DType::I4.k_step(), 32);
        assert_ne!(DType::I8.name(), DType::I4.name());
    }

    #[test]
    fn register_packs_once_and_serves_forever() {
        let (n, k) = (10, 33);
        let b = fill(k * n, 7);
        let mut reg = WeightRegistry::new();
        let h = reg.register(n, k, &b, DType::I8);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let meta = reg.meta(h);
        assert_eq!((meta.n, meta.k, meta.dtype), (n, k, DType::I8));
        assert_eq!(meta.macs(5), 5 * n as u64 * k as u64);
        // panel bytes equal a standalone prepack of the same operand
        let plan = host_block_plan(1, n, k, 16);
        let mut expect = vec![0i8; packed_b_bytes(&plan)];
        prepack_b(&mut expect, &b, n, k, &plan);
        assert_eq!(reg.panel(h), &expect[..]);
        assert_eq!(reg.packed_bytes(), expect.len() as u64);
    }

    #[test]
    fn i4_and_i8_registrations_pack_distinct_layouts() {
        // k between the two k-steps: padded depth (and so panel size)
        // must differ between the kernels
        let (n, k) = (4, 20);
        let b = fill(k * n, 5);
        let mut reg = WeightRegistry::new();
        let h8 = reg.register(n, k, &b, DType::I8);
        let h4 = reg.register(n, k, &b, DType::I4);
        assert_eq!(reg.panel(h8).len(), 4 * 32); // kp = 32 under k-step 16
        assert_eq!(reg.panel(h4).len(), 4 * 32); // kp = 32 under k-step 32
        assert_eq!(reg.metas().len(), 2);
        assert_eq!(reg.metas()[1].dtype, DType::I4);
    }

    #[test]
    fn zero_dim_weights_register_empty_panels() {
        let mut reg = WeightRegistry::new();
        let h = reg.register(0, 8, &[], DType::I8);
        assert!(reg.panel(h).is_empty());
        let h2 = reg.register(4, 0, &[], DType::I4);
        assert!(reg.panel(h2).is_empty());
        assert_eq!(reg.packed_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "WeightHandle from a different registry")]
    fn foreign_handles_are_rejected_even_when_shapes_coincide() {
        // the dangerous case: the other registry has an entry with the
        // same index and shape — without the identity stamp this would
        // silently multiply the wrong weights
        let mut reg = WeightRegistry::new();
        let h = reg.register(4, 4, &fill(16, 3), DType::I8);
        let mut other = WeightRegistry::new();
        let _ = other.register(4, 4, &fill(16, 7), DType::I8);
        let _ = other.meta(h);
    }

    #[test]
    fn prepacked_a_blocks_match_per_block_packing() {
        let (m, k) = (13, 70);
        let a = fill(m * k, 11);
        let plan = host_block_plan(m, 8, k, 16);
        let mut packed = vec![99i8; packed_a_bytes(&plan)];
        prepack_a(&mut packed, &a, m, k, &plan);
        // every (ic, pc) block read at its offset equals a fresh
        // per-block pack of the same coordinates
        for_each_a_block(&plan, |ic, mcb, pc, kcb| {
            let mut fresh = vec![0i8; mcb * kcb];
            pack_a_block(&mut fresh, &a, m, k, ic, pc, kcb);
            let off = packed_a_offset(plan.kp, ic, mcb, pc);
            assert_eq!(&packed[off..off + mcb * kcb], &fresh[..], "block ({ic}, {pc})");
        });
    }

    #[test]
    fn host_plan_b_layout_is_independent_of_m() {
        let (n, k) = (300, 2100); // spans several (jc, pc) blocks
        for m in [1, 4, 129, 1000] {
            let p = host_block_plan(m, n, k, 16);
            let q = host_block_plan(4, n, k, 16);
            assert_eq!((p.np, p.kp, p.nc, p.kc), (q.np, q.kp, q.nc, q.kc), "m={m}");
        }
    }
}
