//! Analytic address-trace generators for the Fig. 1 cache-miss-rate
//! experiment (naive "Matmul" vs ulmBLAS-style blocked GeMM).
//!
//! The paper measures L1D miss rate on an A64FX core. Rather than
//! executing billions of instructions, these generators replay the
//! *memory reference stream* of each algorithm — at element granularity,
//! in exact loop order — against the `camp-cache` hierarchy. Prefetching
//! is disabled for this experiment so the miss rate reflects pure access
//! locality, which is what Fig. 1 contrasts.

use crate::loops::{for_each_b_block, for_each_row_strip, BlockPlan};
use camp_cache::{Hierarchy, HierarchyConfig};

/// Outcome of a trace replay.
#[derive(Debug, Clone, Copy)]
pub struct TraceResult {
    /// L1D demand miss rate in [0, 1].
    pub l1_miss_rate: f64,
    /// L2 demand miss rate in [0, 1].
    pub l2_miss_rate: f64,
    /// Demand accesses replayed.
    pub accesses: u64,
    /// True if the replay stopped early at the access budget.
    pub truncated: bool,
}

fn no_prefetch(mut cfg: HierarchyConfig) -> HierarchyConfig {
    cfg.l1d.prefetch = false;
    cfg.l2.prefetch = false;
    cfg
}

fn result(h: &Hierarchy, truncated: bool) -> TraceResult {
    TraceResult {
        l1_miss_rate: h.l1d().stats().demand_miss_rate(),
        l2_miss_rate: h.l2().stats().demand_miss_rate(),
        accesses: h.l1d().stats().accesses,
        truncated,
    }
}

/// Replay the naive triple-loop matmul (`MATMUL` in the paper: A
/// row-major, B column-major, scalar accumulator), stopping after
/// `budget` accesses.
pub fn naive_trace(
    cfg: HierarchyConfig,
    m: usize,
    n: usize,
    k: usize,
    elem: usize,
    budget: u64,
) -> TraceResult {
    let mut h = Hierarchy::new(no_prefetch(cfg));
    let a0 = 0u64;
    let b0 = (m * k * elem) as u64;
    let c0 = b0 + (k * n * elem) as u64;
    let mut count = 0u64;
    for i in 0..m {
        for j in 0..n {
            for l in 0..k {
                h.access(a0 + ((i * k + l) * elem) as u64, elem as u32, false, 1);
                h.access(b0 + ((l * n + j) * elem) as u64, elem as u32, false, 2);
                count += 2;
            }
            h.access(c0 + ((i * n + j) * elem) as u64, elem as u32, true, 3);
            count += 1;
            if count >= budget {
                return result(&h, true);
            }
        }
    }
    result(&h, false)
}

/// Blocking parameters of the ulmBLAS-style trace.
#[derive(Debug, Clone, Copy)]
pub struct BlockedTraceParams {
    /// Rows per A block (L2 panel height).
    pub mc: usize,
    /// Columns per B block.
    pub nc: usize,
    /// Depth per block (L1 panel).
    pub kc: usize,
    /// Micro-kernel rows.
    pub mr: usize,
    /// Micro-kernel columns.
    pub nr: usize,
}

impl Default for BlockedTraceParams {
    fn default() -> Self {
        BlockedTraceParams { mc: 128, nc: 512, kc: 256, mr: 4, nr: 4 }
    }
}

/// Replay the GotoBLAS/ulmBLAS blocked GeMM reference stream: B-panel
/// packing, A-panel packing and the packed streaming micro-kernel,
/// stopping after `budget` accesses.
///
/// The (jc, pc) block traversal and the row-strip loop come from the
/// shared skeleton ([`for_each_b_block`] / [`for_each_row_strip`] over
/// an element-granular [`BlockPlan`]), so this trace replays exactly
/// the stream whose blocks the parallel simulated driver partitions
/// into units.
pub fn blocked_trace(
    cfg: HierarchyConfig,
    m: usize,
    n: usize,
    k: usize,
    elem: usize,
    p: BlockedTraceParams,
    budget: u64,
) -> TraceResult {
    let mut h = Hierarchy::new(no_prefetch(cfg));
    let a0 = 0u64;
    let b0 = (m * k * elem) as u64;
    let c0 = b0 + (k * n * elem) as u64;
    let ap0 = c0 + (m * n * elem) as u64;
    let bp0 = ap0 + (p.mc * p.kc * elem) as u64;
    let mut count = 0u64;
    let e = elem as u32;

    // element-granular plan: tile 1×1, k-unit 1 — padding-free, so the
    // traversal visits exactly the raw (jc, pc) blocks
    let plan = BlockPlan::new(m, n, k, 1, 1, 1, (p.mc, p.nc, p.kc));
    let mut truncated = false;
    for_each_b_block(&plan, |jc, ncb, pc, kcb| {
        if truncated {
            return;
        }
        // pack B panel: read B (row-major slice), write packed
        for jj in 0..ncb {
            for l in 0..kcb {
                h.access(b0 + (((pc + l) * n + jc + jj) * elem) as u64, e, false, 10);
                h.access(bp0 + ((jj * kcb + l) * elem) as u64, e, true, 11);
                count += 2;
            }
        }
        for_each_row_strip(&plan, |ic, mcb| {
            if truncated {
                return;
            }
            // pack A block
            for ii in 0..mcb {
                for l in 0..kcb {
                    h.access(a0 + (((ic + ii) * k + pc + l) * elem) as u64, e, false, 12);
                    h.access(ap0 + ((ii * kcb + l) * elem) as u64, e, true, 13);
                    count += 2;
                }
            }
            // macro kernel: stream packed panels
            let mut j = 0;
            'strip: while j < ncb {
                let mut i = 0;
                while i < mcb {
                    for l in 0..kcb {
                        for r in 0..p.mr.min(mcb - i) {
                            h.access(ap0 + (((i + r) * kcb + l) * elem) as u64, e, false, 14);
                            count += 1;
                        }
                        for cidx in 0..p.nr.min(ncb - j) {
                            h.access(bp0 + (((j + cidx) * kcb + l) * elem) as u64, e, false, 15);
                            count += 1;
                        }
                    }
                    // C tile read-modify-write
                    for r in 0..p.mr.min(mcb - i) {
                        for cidx in 0..p.nr.min(ncb - j) {
                            let addr = c0 + (((ic + i + r) * n + jc + j + cidx) * elem) as u64;
                            h.access(addr, e, false, 16);
                            h.access(addr, e, true, 17);
                            count += 2;
                        }
                    }
                    if count >= budget {
                        truncated = true;
                        break 'strip;
                    }
                    i += p.mr;
                }
                j += p.nr;
            }
        });
    });
    result(&h, truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_beats_naive_at_512() {
        let cfg = HierarchyConfig::a64fx();
        let naive = naive_trace(cfg, 256, 256, 256, 4, 20_000_000);
        let blocked =
            blocked_trace(cfg, 256, 256, 256, 4, BlockedTraceParams::default(), 20_000_000);
        assert!(
            naive.l1_miss_rate > 3.0 * blocked.l1_miss_rate,
            "naive {} vs blocked {}",
            naive.l1_miss_rate,
            blocked.l1_miss_rate
        );
        assert!(blocked.l1_miss_rate < 0.05, "blocked CMR {}", blocked.l1_miss_rate);
    }

    #[test]
    fn naive_miss_rate_grows_with_size() {
        let cfg = HierarchyConfig::a64fx();
        let small = naive_trace(cfg, 64, 64, 64, 4, 10_000_000);
        let large = naive_trace(cfg, 256, 256, 256, 4, 10_000_000);
        assert!(large.l1_miss_rate >= small.l1_miss_rate);
    }

    #[test]
    fn budget_truncates() {
        let cfg = HierarchyConfig::a64fx();
        let r = naive_trace(cfg, 128, 128, 128, 4, 1000);
        assert!(r.truncated);
        assert!(r.accesses >= 1000);
    }

    #[test]
    fn tiny_problem_fits_cache() {
        let cfg = HierarchyConfig::a64fx();
        // 16×16×16 f32 = 3 KB total: everything fits L1 after cold misses
        let r = naive_trace(cfg, 16, 16, 16, 4, 10_000_000);
        assert!(r.l1_miss_rate < 0.02, "tiny CMR {}", r.l1_miss_rate);
    }
}
