//! Kernel-dispatch layer: one descriptor per GeMM implementation.
//!
//! Every method of the §5.3 experiment matrix is described by a
//! [`MicroKernel`] — its register-tile geometry, element/accumulator
//! types, packing programs and macro-kernel builder — so the blocked
//! driver ([`crate::driver`]) is a single generic skeleton that never
//! matches on the method. Adding an 8th kernel means implementing this
//! trait (plus its packing/macro programs in [`crate::pack`] /
//! [`crate::kernels`]) and listing it in [`Method::all`]; the driver,
//! verification, staging and blocking logic pick the new kernel up
//! unchanged. See the README's "kernel dispatch layer" section for a
//! walkthrough.
//!
//! The host-speed engine has the same seam one layer down: a
//! [`HostKernel`] is the native-silicon analogue of a [`MicroKernel`]
//! descriptor — a table of micro-kernel function pointers per tier
//! (scalar / AVX2 / NEON), selected once at engine construction from a
//! [`CpuFeatures`] runtime probe instead of a `Method` flag. Both
//! descriptors feed the same blocked-loop skeleton in
//! [`crate::loops`]; see `docs/HOST_KERNELS.md` for the dispatch
//! story. The types are re-exported here so the two kernel seams read
//! side by side.

pub use crate::host::{CpuFeatures, HostKernel, HostTier};

use crate::kernels;
use crate::pack;
use camp_isa::inst::{CampMode, Program};
use camp_isa::reg::S;
use camp_pipeline::{CoreKind, Simulator};

/// Cycle budget for any single simulated program invocation.
pub(crate) const RUN_BUDGET: u64 = 4_000_000_000;

/// Storage type of the A/B operands in (simulated) main memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemKind {
    /// One byte per element.
    I8,
    /// Two elements per byte (4-bit data stored nibble-packed).
    I4Nibble,
    /// Four bytes per element, integer.
    I32,
    /// Four bytes per element, float.
    F32,
}

impl ElemKind {
    /// Bytes occupied by `cols` consecutive row elements.
    pub fn row_bytes(self, cols: usize) -> usize {
        match self {
            ElemKind::I8 => cols,
            ElemKind::I4Nibble => cols / 2,
            ElemKind::I32 | ElemKind::F32 => cols * 4,
        }
    }

    /// `row_bytes` over a u64 element offset (for address arithmetic).
    pub fn col_offset(self, col: u64) -> u64 {
        match self {
            ElemKind::I8 => col,
            ElemKind::I4Nibble => col / 2,
            ElemKind::I32 | ElemKind::F32 => col * 4,
        }
    }
}

/// Accumulator/result type in C, selecting the verification reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccKind {
    /// i32 accumulation (wrapping) — checked against `gemm_i32_ref`.
    I32,
    /// Wrapping i8 accumulation (the overflow-unsafe baseline) —
    /// checked against `gemm_i8_wrapping_ref`.
    I8Wrapping,
    /// f32 accumulation — checked against `gemm_f32_ref`.
    F32,
}

impl AccKind {
    /// Bytes per element of C.
    pub fn c_elem_bytes(self) -> usize {
        match self {
            AccKind::I8Wrapping => 1,
            AccKind::I32 | AccKind::F32 => 4,
        }
    }
}

/// Register-tile geometry and data types of one micro-kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelGeometry {
    /// Register-tile rows.
    pub mr: usize,
    /// Register-tile columns.
    pub nr: usize,
    /// k values consumed per micro-kernel primitive (one `camp`, one
    /// MLA column, one `smmla` octet, ...).
    pub k_step: usize,
    /// k values consumed per macro-kernel loop iteration (k-step ×
    /// unroll factor); k is padded to a multiple of this.
    pub k_unit: usize,
    /// A/B storage type.
    pub elem: ElemKind,
    /// Accumulator type.
    pub acc: AccKind,
}

impl KernelGeometry {
    /// Packed-A panel bytes for a kc-deep block (mR rows × kc columns).
    pub fn a_panel_bytes(&self, kc: usize) -> usize {
        self.elem.row_bytes(kc) * self.mr
    }

    /// Packed-B panel bytes for a kc-deep block (kc rows × nR columns).
    pub fn b_panel_bytes(&self, kc: usize) -> usize {
        self.elem.row_bytes(self.nr) * kc
    }

    /// Packed-A panel bytes contributed by one k-column.
    pub fn a_panel_bytes_per_kcol(&self) -> usize {
        match self.elem {
            ElemKind::I4Nibble => self.mr / 2,
            _ => self.elem.row_bytes(1) * self.mr,
        }
    }
}

/// The A-block packing recipe of a kernel: a scalar gather program
/// (covering any k tail) and an optional vectorized bulk program, as
/// optimized BLAS packs use.
pub struct PackAPlan {
    /// Scalar gather packer; row pointers in `x20..`, destination
    /// `x11`, iteration count `x12`.
    pub scalar: Program,
    /// k-columns consumed per scalar-program iteration.
    pub scalar_cols_per_iter: usize,
    /// Vectorized bulk packer and the k-columns it consumes per chunk.
    pub vector: Option<(Program, usize)>,
}

/// Addresses and block coordinates handed to a kernel's B-block packer.
#[derive(Debug, Clone, Copy)]
pub struct PackBCtx {
    /// Base address of B in simulated memory.
    pub b_base: u64,
    /// Base address of the packed-B buffer.
    pub bpack: u64,
    /// B row stride in bytes.
    pub ldb: u64,
    /// First column of the block.
    pub jc: usize,
    /// Block width in elements.
    pub ncb: usize,
    /// First k-row of the block.
    pub pc: usize,
    /// Block depth in k-values.
    pub kcb: usize,
}

/// A B-block packing routine with its programs pre-assembled; built
/// once per GeMM by [`MicroKernel::pack_b_packer`].
pub type BPacker = Box<dyn Fn(&mut Simulator, &PackBCtx)>;

/// A GeMM implementation, described declaratively: the blocked driver
/// consumes this trait and nothing else.
pub trait MicroKernel: Sync {
    /// Display name matching the paper's legends.
    fn name(&self) -> &'static str;

    /// Register-tile geometry and data types.
    fn geometry(&self) -> KernelGeometry;

    /// Build the macro-kernel program (GotoBLAS loops 1–2 plus the
    /// micro-kernel) for this method.
    fn macro_program(&self) -> Program;

    /// Build the A-block packing recipe.
    fn pack_a_plan(&self) -> PackAPlan;

    /// Build this kernel's B-block packer. Called once per GeMM so the
    /// packing programs are assembled once; the returned closure runs
    /// them for each (jc, pc) block described by a [`PackBCtx`].
    fn pack_b_packer(&self) -> BPacker;

    /// Default kc blocking for a core kind: kc is sized so the packed
    /// A and B panels fit in L1 (Fig. 3's constraint). Byte-sized
    /// operands allow much deeper panels than f32; the CAMP
    /// micro-kernel in particular accumulates the whole k extent in the
    /// auxiliary register whenever it fits (Fig. 9).
    fn default_kc(&self, kind: CoreKind) -> usize;
}

// ---- shared B-pack shapes -------------------------------------------------

/// Row-copy B pack: panels whose source rows are contiguous; one
/// program run per nR-column panel (`x10` source, `x11` destination,
/// `x12` k-rows, `x13` row stride).
fn pack_b_row_copy(sim: &mut Simulator, ctx: &PackBCtx, geo: &KernelGeometry, prog: &Program) {
    let panel_bytes = geo.b_panel_bytes(ctx.kcb) as u64;
    for p in 0..ctx.ncb / geo.nr {
        let col = (ctx.jc + p * geo.nr) as u64;
        let mm = sim.machine_mut();
        mm.set_x(S(10), ctx.b_base + ctx.pc as u64 * ctx.ldb + geo.elem.col_offset(col));
        mm.set_x(S(11), ctx.bpack + p as u64 * panel_bytes);
        mm.set_x(S(12), ctx.kcb as u64);
        mm.set_x(S(13), ctx.ldb);
        sim.run(prog, RUN_BUDGET).expect("pack B");
    }
}

/// Gather B pack: `rows` parallel source-row pointers in `x20..`,
/// advancing by `x14 = rows·ldb`; `x12` counts row groups
/// (`kcb / rows`). Used by the narrow CAMP panels and the MMLA octet
/// transpose.
fn pack_b_gather_rows(
    sim: &mut Simulator,
    ctx: &PackBCtx,
    geo: &KernelGeometry,
    prog: &Program,
    rows: usize,
) {
    let panel_bytes = geo.b_panel_bytes(ctx.kcb) as u64;
    for p in 0..ctx.ncb / geo.nr {
        let col = (ctx.jc + p * geo.nr) as u64;
        let mm = sim.machine_mut();
        for t in 0..rows as u8 {
            mm.set_x(
                S(20 + t),
                ctx.b_base + (ctx.pc as u64 + t as u64) * ctx.ldb + geo.elem.col_offset(col),
            );
        }
        mm.set_x(S(11), ctx.bpack + p as u64 * panel_bytes);
        mm.set_x(S(12), (ctx.kcb / rows) as u64);
        mm.set_x(S(14), rows as u64 * ctx.ldb);
        sim.run(prog, RUN_BUDGET).expect("pack B");
    }
}

// ---- the seven kernels ----------------------------------------------------

/// CAMP with 8-bit operands (`camp.s8`).
pub struct Camp8Kernel;

impl MicroKernel for Camp8Kernel {
    fn name(&self) -> &'static str {
        "CAMP-8bit"
    }

    fn geometry(&self) -> KernelGeometry {
        KernelGeometry {
            mr: 4,
            nr: 4,
            k_step: 16,
            k_unit: 128, // 16 × unroll 8
            elem: ElemKind::I8,
            acc: AccKind::I32,
        }
    }

    fn macro_program(&self) -> Program {
        kernels::macro_camp(CampMode::I8)
    }

    fn pack_a_plan(&self) -> PackAPlan {
        PackAPlan {
            scalar: pack::pack_a_rows(4, 1),
            scalar_cols_per_iter: 1,
            vector: Some((pack::pack_a_transpose4(1), 64)),
        }
    }

    fn pack_b_packer(&self) -> BPacker {
        let geo = self.geometry();
        let prog = pack::pack_b_rows4(4);
        Box::new(move |sim, ctx| pack_b_gather_rows(sim, ctx, &geo, &prog, 4))
    }

    fn default_kc(&self, kind: CoreKind) -> usize {
        match kind {
            CoreKind::OutOfOrder => 4096,
            CoreKind::InOrder => 2048,
        }
    }
}

/// CAMP with 4-bit operands (`camp.s4`), nibble-packed in memory.
pub struct Camp4Kernel;

impl MicroKernel for Camp4Kernel {
    fn name(&self) -> &'static str {
        "CAMP-4bit"
    }

    fn geometry(&self) -> KernelGeometry {
        KernelGeometry {
            mr: 4,
            nr: 4,
            k_step: 32,
            k_unit: 128, // 32 × unroll 4
            elem: ElemKind::I4Nibble,
            acc: AccKind::I32,
        }
    }

    fn macro_program(&self) -> Program {
        kernels::macro_camp(CampMode::I4)
    }

    fn pack_a_plan(&self) -> PackAPlan {
        PackAPlan {
            scalar: pack::pack_a_camp4(),
            scalar_cols_per_iter: 2,
            vector: Some((pack::pack_a_camp4_vec(), 128)),
        }
    }

    fn pack_b_packer(&self) -> BPacker {
        let geo = self.geometry();
        let prog = pack::pack_b_rows4(2);
        Box::new(move |sim, ctx| pack_b_gather_rows(sim, ctx, &geo, &prog, 4))
    }

    fn default_kc(&self, kind: CoreKind) -> usize {
        match kind {
            CoreKind::OutOfOrder => 4096,
            CoreKind::InOrder => 2048,
        }
    }
}

/// Hand-vectorized 32-bit integer ulmBLAS (also the edge BLIS-int32
/// baseline).
pub struct HandvInt32Kernel;

impl MicroKernel for HandvInt32Kernel {
    fn name(&self) -> &'static str {
        "handv-int32"
    }

    fn geometry(&self) -> KernelGeometry {
        KernelGeometry {
            mr: 4,
            nr: 16,
            k_step: 1,
            k_unit: 2,
            elem: ElemKind::I32,
            acc: AccKind::I32,
        }
    }

    fn macro_program(&self) -> Program {
        kernels::macro_handv_int32()
    }

    fn pack_a_plan(&self) -> PackAPlan {
        PackAPlan {
            scalar: pack::pack_a_rows(4, 4),
            scalar_cols_per_iter: 1,
            vector: Some((pack::pack_a_transpose4(4), 16)),
        }
    }

    fn pack_b_packer(&self) -> BPacker {
        let geo = self.geometry();
        let prog = pack::pack_b_rows(64);
        Box::new(move |sim, ctx| pack_b_row_copy(sim, ctx, &geo, &prog))
    }

    fn default_kc(&self, kind: CoreKind) -> usize {
        match kind {
            CoreKind::OutOfOrder => 256,
            CoreKind::InOrder => 128,
        }
    }
}

/// Hand-vectorized 8-bit integer kernel with wrapping 8-bit
/// accumulators (overflow-unsafe, as in the paper).
pub struct HandvInt8Kernel;

impl MicroKernel for HandvInt8Kernel {
    fn name(&self) -> &'static str {
        "handv-int8"
    }

    fn geometry(&self) -> KernelGeometry {
        KernelGeometry {
            mr: 4,
            nr: 64,
            k_step: 1,
            k_unit: 2,
            elem: ElemKind::I8,
            acc: AccKind::I8Wrapping,
        }
    }

    fn macro_program(&self) -> Program {
        kernels::macro_handv_int8()
    }

    fn pack_a_plan(&self) -> PackAPlan {
        PackAPlan {
            scalar: pack::pack_a_rows(4, 1),
            scalar_cols_per_iter: 1,
            vector: Some((pack::pack_a_transpose4(1), 64)),
        }
    }

    fn pack_b_packer(&self) -> BPacker {
        let geo = self.geometry();
        let prog = pack::pack_b_rows(64);
        Box::new(move |sim, ctx| pack_b_row_copy(sim, ctx, &geo, &prog))
    }

    fn default_kc(&self, kind: CoreKind) -> usize {
        match kind {
            CoreKind::OutOfOrder => 512,
            CoreKind::InOrder => 256,
        }
    }
}

/// gemmlowp-like widening int8 kernel (k-pair interleaved panels).
pub struct GemmlowpKernel;

impl MicroKernel for GemmlowpKernel {
    fn name(&self) -> &'static str {
        "gemmlowp"
    }

    fn geometry(&self) -> KernelGeometry {
        KernelGeometry {
            mr: 4,
            nr: 32,
            k_step: 2,
            k_unit: 2,
            elem: ElemKind::I8,
            acc: AccKind::I32,
        }
    }

    fn macro_program(&self) -> Program {
        kernels::macro_gemmlowp()
    }

    fn pack_a_plan(&self) -> PackAPlan {
        PackAPlan {
            scalar: pack::pack_a_gemmlowp(),
            scalar_cols_per_iter: 2,
            vector: Some((pack::pack_a_transpose4(2), 64)),
        }
    }

    fn pack_b_packer(&self) -> BPacker {
        // The vectorized pair-interleave covers two 32-column panels per
        // pass; a lone trailing panel falls back to the scalar packer.
        let geo = self.geometry();
        let vec_prog = pack::pack_b_gemmlowp_vec();
        let scalar_prog = pack::pack_b_gemmlowp(32);
        Box::new(move |sim, ctx| {
            let panel_bytes = geo.b_panel_bytes(ctx.kcb) as u64;
            let panels = ctx.ncb / geo.nr;
            let mut p = 0;
            while p < panels {
                let col = (ctx.jc + p * geo.nr) as u64;
                let dst = ctx.bpack + p as u64 * panel_bytes;
                let mm = sim.machine_mut();
                mm.set_x(S(20), ctx.b_base + ctx.pc as u64 * ctx.ldb + col);
                mm.set_x(S(21), ctx.b_base + (ctx.pc as u64 + 1) * ctx.ldb + col);
                mm.set_x(S(11), dst);
                mm.set_x(S(12), (ctx.kcb / 2) as u64);
                mm.set_x(S(14), 2 * ctx.ldb);
                if p + 1 < panels {
                    mm.set_x(S(15), dst + panel_bytes);
                    sim.run(&vec_prog, RUN_BUDGET).expect("pack B (vector)");
                    p += 2;
                } else {
                    sim.run(&scalar_prog, RUN_BUDGET).expect("pack B");
                    p += 1;
                }
            }
        })
    }

    fn default_kc(&self, kind: CoreKind) -> usize {
        match kind {
            CoreKind::OutOfOrder => 512,
            CoreKind::InOrder => 256,
        }
    }
}

/// OpenBLAS-SGEMM-like f32 kernel (the normalization baseline).
pub struct OpenblasF32Kernel;

impl MicroKernel for OpenblasF32Kernel {
    fn name(&self) -> &'static str {
        "OpenBLAS"
    }

    fn geometry(&self) -> KernelGeometry {
        KernelGeometry {
            mr: 8,
            nr: 32,
            k_step: 1,
            k_unit: 1,
            elem: ElemKind::F32,
            acc: AccKind::F32,
        }
    }

    fn macro_program(&self) -> Program {
        kernels::macro_openblas_f32()
    }

    fn pack_a_plan(&self) -> PackAPlan {
        PackAPlan {
            scalar: pack::pack_a_rows(8, 4),
            scalar_cols_per_iter: 1,
            vector: Some((pack::pack_a_transpose8_words(), 16)),
        }
    }

    fn pack_b_packer(&self) -> BPacker {
        let geo = self.geometry();
        let prog = pack::pack_b_rows(128);
        Box::new(move |sim, ctx| pack_b_row_copy(sim, ctx, &geo, &prog))
    }

    fn default_kc(&self, kind: CoreKind) -> usize {
        match kind {
            CoreKind::OutOfOrder => 256,
            CoreKind::InOrder => 128,
        }
    }
}

/// Arm FEAT_I8MM `smmla` kernel (§7.2 comparison).
pub struct MmlaKernel;

impl MicroKernel for MmlaKernel {
    fn name(&self) -> &'static str {
        "MMLA"
    }

    fn geometry(&self) -> KernelGeometry {
        KernelGeometry { mr: 8, nr: 8, k_step: 8, k_unit: 8, elem: ElemKind::I8, acc: AccKind::I32 }
    }

    fn macro_program(&self) -> Program {
        kernels::macro_mmla()
    }

    fn pack_a_plan(&self) -> PackAPlan {
        PackAPlan { scalar: pack::pack_a_rows(8, 8), scalar_cols_per_iter: 8, vector: None }
    }

    fn pack_b_packer(&self) -> BPacker {
        let geo = self.geometry();
        let prog = pack::pack_b_mmla();
        Box::new(move |sim, ctx| pack_b_gather_rows(sim, ctx, &geo, &prog, 8))
    }

    fn default_kc(&self, kind: CoreKind) -> usize {
        match kind {
            CoreKind::OutOfOrder => 512,
            CoreKind::InOrder => 256,
        }
    }
}

// ---- the method enum ------------------------------------------------------

static CAMP8: Camp8Kernel = Camp8Kernel;
static CAMP4: Camp4Kernel = Camp4Kernel;
static HANDV_INT32: HandvInt32Kernel = HandvInt32Kernel;
static HANDV_INT8: HandvInt8Kernel = HandvInt8Kernel;
static GEMMLOWP: GemmlowpKernel = GemmlowpKernel;
static OPENBLAS_F32: OpenblasF32Kernel = OpenblasF32Kernel;
static MMLA: MmlaKernel = MmlaKernel;

/// GeMM implementation under test (the §5.3 experiment matrix). A thin
/// enum: every kernel-specific fact lives in the [`MicroKernel`] the
/// method resolves to via [`Method::dispatcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// CAMP with 8-bit operands (`camp.s8`).
    Camp8,
    /// CAMP with 4-bit operands (`camp.s4`).
    Camp4,
    /// Hand-vectorized 32-bit integer ulmBLAS (also the edge BLIS-int32
    /// baseline).
    HandvInt32,
    /// Hand-vectorized 8-bit integer kernel with wrapping 8-bit
    /// accumulators (overflow-unsafe, as in the paper).
    HandvInt8,
    /// gemmlowp-like widening int8 kernel.
    Gemmlowp,
    /// OpenBLAS-SGEMM-like f32 kernel (the normalization baseline).
    OpenblasF32,
    /// Arm FEAT_I8MM `smmla` kernel (§7.2 comparison).
    Mmla,
}

impl Method {
    /// All methods, CAMP first.
    pub fn all() -> [Method; 7] {
        [
            Method::Camp8,
            Method::Camp4,
            Method::HandvInt32,
            Method::HandvInt8,
            Method::Gemmlowp,
            Method::OpenblasF32,
            Method::Mmla,
        ]
    }

    /// The camp method a host-engine [`crate::weights::DType`] runs
    /// under — the mapping `CampBackend::execute_batch` applies per
    /// request, mirrored by the simulated batch driver.
    pub fn for_dtype(dtype: crate::weights::DType) -> Method {
        match dtype {
            crate::weights::DType::I8 => Method::Camp8,
            crate::weights::DType::I4 => Method::Camp4,
        }
    }

    /// Resolve to the kernel descriptor the driver consumes.
    pub fn dispatcher(self) -> &'static dyn MicroKernel {
        match self {
            Method::Camp8 => &CAMP8,
            Method::Camp4 => &CAMP4,
            Method::HandvInt32 => &HANDV_INT32,
            Method::HandvInt8 => &HANDV_INT8,
            Method::Gemmlowp => &GEMMLOWP,
            Method::OpenblasF32 => &OPENBLAS_F32,
            Method::Mmla => &MMLA,
        }
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        self.dispatcher().name()
    }

    /// Micro-kernel register-tile rows.
    pub fn mr(self) -> usize {
        self.dispatcher().geometry().mr
    }

    /// Micro-kernel register-tile columns.
    pub fn nr(self) -> usize {
        self.dispatcher().geometry().nr
    }

    /// k values consumed per micro-kernel primitive.
    pub fn k_step(self) -> usize {
        self.dispatcher().geometry().k_step
    }

    /// k values consumed per macro-kernel loop iteration.
    pub fn k_unit(self) -> usize {
        self.dispatcher().geometry().k_unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_the_paper_table() {
        // the §5.3 table in the crate docs
        let geos: Vec<(Method, usize, usize, usize)> =
            Method::all().into_iter().map(|m| (m, m.mr(), m.nr(), m.k_step())).collect();
        assert_eq!(
            geos,
            vec![
                (Method::Camp8, 4, 4, 16),
                (Method::Camp4, 4, 4, 32),
                (Method::HandvInt32, 4, 16, 1),
                (Method::HandvInt8, 4, 64, 1),
                (Method::Gemmlowp, 4, 32, 2),
                (Method::OpenblasF32, 8, 32, 1),
                (Method::Mmla, 8, 8, 8),
            ]
        );
    }

    #[test]
    fn panel_bytes_match_layout_formulas() {
        for m in Method::all() {
            let geo = m.dispatcher().geometry();
            let kc = 256;
            let (a_expect, b_expect) = match m {
                Method::Camp8 => (4 * kc, 4 * kc),
                Method::Camp4 => (2 * kc, 2 * kc),
                Method::HandvInt32 => (16 * kc, 64 * kc),
                Method::HandvInt8 => (4 * kc, 64 * kc),
                Method::Gemmlowp => (4 * kc, 32 * kc),
                Method::OpenblasF32 => (32 * kc, 128 * kc),
                Method::Mmla => (8 * kc, 8 * kc),
            };
            assert_eq!(geo.a_panel_bytes(kc), a_expect, "{} A panel", m.name());
            assert_eq!(geo.b_panel_bytes(kc), b_expect, "{} B panel", m.name());
        }
    }

    #[test]
    fn k_unit_is_a_multiple_of_k_step() {
        for m in Method::all() {
            let geo = m.dispatcher().geometry();
            assert_eq!(geo.k_unit % geo.k_step, 0, "{}", m.name());
        }
    }

    #[test]
    fn all_macro_programs_assemble() {
        for m in Method::all() {
            let p = m.dispatcher().macro_program();
            assert!(!p.insts().is_empty(), "{}", m.name());
        }
    }

    #[test]
    fn pack_plans_cover_any_tail() {
        // the scalar packer must be able to finish what the vector
        // packer leaves: its per-iteration column count divides both the
        // vector chunk and the k-unit
        for m in Method::all() {
            let plan = m.dispatcher().pack_a_plan();
            let geo = m.dispatcher().geometry();
            assert_eq!(geo.k_unit % plan.scalar_cols_per_iter, 0, "{}", m.name());
            if let Some((_, chunk)) = plan.vector {
                assert_eq!(chunk % plan.scalar_cols_per_iter, 0, "{}", m.name());
            }
        }
    }
}
