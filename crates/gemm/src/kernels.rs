//! Macro-kernel program builders (GotoBLAS loops 1–2 plus micro-kernel).
//!
//! One program per method; the host driver re-runs it for every cache
//! block with fresh register parameters:
//!
//! * `x1` — packed-A base, `x2` — packed-B base, `x3` — C block base
//! * `x4` — k-loop iterations (kc / k-step)
//! * `x5` — row-panel count (mc / mR), `x6` — column-panel count (nc / nR)
//! * `x7` — C row stride in bytes
//! * `x8` — packed-B panel bytes, `x9` — packed-A panel bytes
//! * `x30` — 64-byte scratch line (tile spills)
//!
//! Internal registers: `x15` j, `x16` B-panel base, `x17` i, `x18` A
//! pointer, `x19` B pointer, `x20` k counter, `x21` C tile pointer,
//! `x22..x29` temporaries.

use camp_isa::asm::Assembler;
use camp_isa::inst::{CampMode, ElemType, Program, VOp};
use camp_isa::reg::{S, V};

fn log2(x: usize) -> u8 {
    debug_assert!(x.is_power_of_two());
    x.trailing_zeros() as u8
}

/// Emit the shared three-loop skeleton around a micro-kernel.
fn skeleton(
    name: &str,
    mr: usize,
    c_tile_step_bytes: usize,
    emit_init: impl Fn(&mut Assembler),
    emit_k_body: impl Fn(&mut Assembler),
    emit_c_update: impl Fn(&mut Assembler),
) -> Program {
    let mut a = Assembler::new(name);
    a.li(S(15), 0);
    a.label("jr_top");
    a.mul(S(16), S(15), S(8));
    a.add(S(16), S(16), S(2));
    a.li(S(17), 0);
    a.label("ir_top");
    a.mul(S(18), S(17), S(9));
    a.add(S(18), S(18), S(1));
    a.mv(S(19), S(16));
    emit_init(&mut a);
    a.li(S(20), 0);
    a.label("k_top");
    emit_k_body(&mut a);
    a.addi(S(20), S(20), 1);
    a.blt(S(20), S(4), "k_top");
    // C tile pointer: x3 + (i*mR)*ldc + j*tile_step
    a.slli(S(22), S(17), log2(mr));
    a.mul(S(22), S(22), S(7));
    a.add(S(21), S(3), S(22));
    a.slli(S(23), S(15), log2(c_tile_step_bytes));
    a.add(S(21), S(21), S(23));
    emit_c_update(&mut a);
    a.addi(S(17), S(17), 1);
    a.blt(S(17), S(5), "ir_top");
    a.addi(S(15), S(15), 1);
    a.blt(S(15), S(6), "jr_top");
    a.finish()
}

/// Scalar read-modify-write of a 4×4 i32 tile spilled at `x30` into C at
/// `x21` (used by the CAMP kernels — the Fig. 9 `store_32bit` step plus
/// the C accumulation the framework performs).
fn emit_camp_c_update(a: &mut Assembler) {
    a.vstore(V(2), S(30), 0);
    for r in 0..4 {
        for c in 0..4i64 {
            a.lw(S(28), S(30), (r * 4 + c as usize) as i64 * 4);
            a.lw(S(29), S(21), c * 4);
            a.add(S(28), S(28), S(29));
            a.store_s(S(28), S(21), c * 4, 4);
        }
        if r != 3 {
            a.add(S(21), S(21), S(7));
        }
    }
}

/// CAMP macro-kernel (8-bit or 4-bit): the Fig. 9 micro-kernel — two
/// vector loads and one `camp` per k-step, accumulating in the auxiliary
/// register. The k-loop is unrolled (4× for i8, 2× for i4) the way the
/// paper's hand-written micro-kernel is, so loop overhead does not mask
/// the single-instruction matrix multiply.
pub fn macro_camp(mode: CampMode) -> Program {
    let (name, unroll) = match mode {
        CampMode::I8 => ("macro_camp8", 8i64),
        CampMode::I4 => ("macro_camp4", 4),
    };
    skeleton(
        name,
        4,
        16,
        |a| a.vzero(V(2)),
        |a| {
            for u in 0..unroll {
                a.vload(V(0), S(18), u * 64);
                a.vload(V(1), S(19), u * 64);
                a.camp(mode, V(2), V(0), V(1));
            }
            a.addi(S(18), S(18), unroll * 64);
            a.addi(S(19), S(19), unroll * 64);
        },
        emit_camp_c_update,
    )
}

/// Hand-vectorized int32 kernel (4×16 tile): the `handv-int32` baseline,
/// also used as the edge SoC's BLIS-int32 baseline. The k-loop is
/// unrolled 2× with a second accumulator set to break the
/// multiply-accumulate dependence chain, as the hand-tuned intrinsics
/// version does.
pub fn macro_handv_int32() -> Program {
    skeleton(
        "macro_handv_int32",
        4,
        64,
        |a| {
            for r in 0..4 {
                a.vzero(V(4 + r));
                a.vzero(V(12 + r));
            }
        },
        |a| {
            a.vload(V(1), S(19), 0); // B row l: 16 × i32
            for r in 0..4u8 {
                a.vload_rep(ElemType::I32, V(0), S(18), r as i64 * 4);
                a.vbin(VOp::Mla, ElemType::I32, V(4 + r), V(0), V(1));
            }
            a.vload(V(2), S(19), 64); // B row l+1
            for r in 0..4u8 {
                a.vload_rep(ElemType::I32, V(3), S(18), 16 + r as i64 * 4);
                a.vbin(VOp::Mla, ElemType::I32, V(12 + r), V(3), V(2));
            }
            a.addi(S(18), S(18), 32);
            a.addi(S(19), S(19), 128);
        },
        |a| {
            for r in 0..4u8 {
                a.vbin(VOp::Add, ElemType::I32, V(4 + r), V(4 + r), V(12 + r));
                a.vload(V(8), S(21), 0);
                a.vbin(VOp::Add, ElemType::I32, V(8), V(8), V(4 + r));
                a.vstore(V(8), S(21), 0);
                if r != 3 {
                    a.add(S(21), S(21), S(7));
                }
            }
        },
    )
}

/// Hand-vectorized int8 kernel (4×64 tile) with an 8-bit accumulator —
/// the overflow-unsafe `handv-int8` baseline of §5.3. Unrolled 2× with
/// dual accumulators like its int32 sibling.
pub fn macro_handv_int8() -> Program {
    skeleton(
        "macro_handv_int8",
        4,
        64,
        |a| {
            for r in 0..4 {
                a.vzero(V(4 + r));
                a.vzero(V(12 + r));
            }
        },
        |a| {
            a.vload(V(1), S(19), 0); // B row l: 64 × i8
            for r in 0..4u8 {
                a.vload_rep(ElemType::I8, V(0), S(18), r as i64);
                a.vbin(VOp::Mla, ElemType::I8, V(4 + r), V(0), V(1));
            }
            a.vload(V(2), S(19), 64); // B row l+1
            for r in 0..4u8 {
                a.vload_rep(ElemType::I8, V(3), S(18), 4 + r as i64);
                a.vbin(VOp::Mla, ElemType::I8, V(12 + r), V(3), V(2));
            }
            a.addi(S(18), S(18), 8);
            a.addi(S(19), S(19), 128);
        },
        |a| {
            for r in 0..4u8 {
                a.vbin(VOp::Add, ElemType::I8, V(4 + r), V(4 + r), V(12 + r));
                a.vload(V(8), S(21), 0);
                a.vbin(VOp::Add, ElemType::I8, V(8), V(8), V(4 + r));
                a.vstore(V(8), S(21), 0);
                if r != 3 {
                    a.add(S(21), S(21), S(7));
                }
            }
        },
    )
}

/// gemmlowp-like widening int8 kernel (4×32 tile, k-pairs): `smull` +
/// `sadalp` style accumulation into i32 lanes, plus a modeled
/// requantization pass on output (the extra adds against `v31`).
pub fn macro_gemmlowp() -> Program {
    skeleton(
        "macro_gemmlowp",
        4,
        128,
        |a| {
            for r in 0..8 {
                a.vzero(V(8 + r));
            }
            a.vzero(V(31));
        },
        |a| {
            a.vload(V(1), S(19), 0); // interleaved B pair: 32 cols × 2 k
            for r in 0..4u8 {
                a.load_s(S(28), S(18), r as i64 * 2, 2);
                a.vdup(ElemType::I16, V(0), S(28));
                a.vmull(V(2), V(0), V(1), false);
                a.vmull(V(3), V(0), V(1), true);
                a.vadalp(V(8 + 2 * r), V(2));
                a.vadalp(V(9 + 2 * r), V(3));
            }
            a.addi(S(18), S(18), 8);
            a.addi(S(19), S(19), 64);
        },
        |a| {
            for r in 0..4u8 {
                // requantization pipeline proxy (adds zero, costs issue slots)
                a.vbin(VOp::Add, ElemType::I32, V(8 + 2 * r), V(8 + 2 * r), V(31));
                a.vbin(VOp::Add, ElemType::I32, V(9 + 2 * r), V(9 + 2 * r), V(31));
                a.vload(V(4), S(21), 0);
                a.vbin(VOp::Add, ElemType::I32, V(4), V(4), V(8 + 2 * r));
                a.vstore(V(4), S(21), 0);
                a.vload(V(5), S(21), 64);
                a.vbin(VOp::Add, ElemType::I32, V(5), V(5), V(9 + 2 * r));
                a.vstore(V(5), S(21), 64);
                if r != 3 {
                    a.add(S(21), S(21), S(7));
                }
            }
        },
    )
}

/// OpenBLAS-SGEMM-like f32 kernel (8×32 tile, FMA-bound, replicating
/// loads for A) — the paper's performance baseline.
pub fn macro_openblas_f32() -> Program {
    skeleton(
        "macro_openblas_f32",
        8,
        128,
        |a| {
            for r in 0..16 {
                a.vzero(V(8 + r));
            }
        },
        |a| {
            a.vload(V(0), S(19), 0); // B row cols 0..16
            a.vload(V(1), S(19), 64); // B row cols 16..32
            for r in 0..8u8 {
                a.vload_rep(ElemType::F32, V(2), S(18), r as i64 * 4);
                a.vbin(VOp::Mla, ElemType::F32, V(8 + 2 * r), V(2), V(0));
                a.vbin(VOp::Mla, ElemType::F32, V(9 + 2 * r), V(2), V(1));
            }
            a.addi(S(18), S(18), 32);
            a.addi(S(19), S(19), 128);
        },
        |a| {
            for r in 0..8u8 {
                a.vload(V(4), S(21), 0);
                a.vbin(VOp::Add, ElemType::F32, V(4), V(4), V(8 + 2 * r));
                a.vstore(V(4), S(21), 0);
                a.vload(V(5), S(21), 64);
                a.vbin(VOp::Add, ElemType::F32, V(5), V(5), V(9 + 2 * r));
                a.vstore(V(5), S(21), 64);
                if r != 7 {
                    a.add(S(21), S(21), S(7));
                }
            }
        },
    )
}

/// Arm `smmla` kernel (8×8 tile, k-octets): quadword zips broadcast each
/// B column-pair across segments, four `smmla` per octet, and a scalar
/// scatter for the segment-interleaved result tile.
pub fn macro_mmla() -> Program {
    skeleton(
        "macro_mmla",
        8,
        32,
        |a| {
            for j in 0..4 {
                a.vzero(V(8 + j));
            }
        },
        |a| {
            a.vload(V(0), S(18), 0); // A: 4 row-pair segments × 8 k
            a.vload(V(1), S(19), 0); // B: 4 col-pair segments × 8 k
            a.vzip(V(2), V(1), V(1), 16, false); // [B0 B0 B1 B1]
            a.vzip(V(3), V(1), V(1), 16, true); // [B2 B2 B3 B3]
            a.vzip(V(4), V(2), V(2), 16, false); // [B0 ×4]
            a.vzip(V(5), V(2), V(2), 16, true); // [B1 ×4]
            a.vzip(V(6), V(3), V(3), 16, false); // [B2 ×4]
            a.vzip(V(7), V(3), V(3), 16, true); // [B3 ×4]
            for j in 0..4u8 {
                a.smmla(V(8 + j), V(0), V(4 + j));
            }
            a.addi(S(18), S(18), 64);
            a.addi(S(19), S(19), 64);
        },
        |a| {
            // acc j: segment s holds the 2×2 block rows (2s, 2s+1),
            // cols (2j, 2j+1) — scatter through scratch.
            for j in 0..4u8 {
                a.vstore(V(8 + j), S(30), 0);
                a.addi(S(22), S(21), j as i64 * 8);
                for s in 0..4 {
                    for i in 0..2 {
                        for jj in 0..2i64 {
                            let sc_off = (s * 16 + (i * 2 + jj as usize) * 4) as i64;
                            a.lw(S(28), S(30), sc_off);
                            a.lw(S(29), S(22), jj * 4);
                            a.add(S(28), S(28), S(29));
                            a.store_s(S(28), S(22), jj * 4, 4);
                        }
                        if !(s == 3 && i == 1) {
                            a.add(S(22), S(22), S(7));
                        }
                    }
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_isa::inst::InstClass;

    fn count_class(p: &Program, c: InstClass) -> usize {
        p.insts().iter().filter(|i| i.class() == c).count()
    }

    #[test]
    fn camp_kernel_static_shape() {
        let p = macro_camp(CampMode::I8);
        // unrolled 8×: one camp + two loads per k-step
        assert_eq!(count_class(&p, InstClass::Camp), 8);
        assert_eq!(count_class(&p, InstClass::VLoad), 16);
        assert_eq!(count_class(&p, InstClass::VStore), 1);
        let p4 = macro_camp(CampMode::I4);
        assert_eq!(count_class(&p4, InstClass::Camp), 4);
    }

    #[test]
    fn handv32_kernel_static_shape() {
        let p = macro_handv_int32();
        // 2 B-row loads + 8 replicating loads + 4 C loads
        assert_eq!(count_class(&p, InstClass::VLoad), 14);
        assert_eq!(count_class(&p, InstClass::VMul), 8);
    }

    #[test]
    fn gemmlowp_uses_widening_ops() {
        let p = macro_gemmlowp();
        let mulls =
            p.insts().iter().filter(|i| matches!(i, camp_isa::inst::Inst::VMull { .. })).count();
        assert_eq!(mulls, 8);
    }

    #[test]
    fn openblas_kernel_is_fma_dense() {
        let p = macro_openblas_f32();
        assert_eq!(count_class(&p, InstClass::VMul), 16);
    }

    #[test]
    fn mmla_kernel_has_four_smmla_and_six_zips() {
        let p = macro_mmla();
        let smmla =
            p.insts().iter().filter(|i| matches!(i, camp_isa::inst::Inst::Smmla { .. })).count();
        let zips =
            p.insts().iter().filter(|i| matches!(i, camp_isa::inst::Inst::VZip { .. })).count();
        assert_eq!(smmla, 4);
        assert_eq!(zips, 6);
    }

    #[test]
    fn all_kernels_assemble() {
        let _ = macro_camp(CampMode::I8);
        let _ = macro_camp(CampMode::I4);
        let _ = macro_handv_int32();
        let _ = macro_handv_int8();
        let _ = macro_gemmlowp();
        let _ = macro_openblas_f32();
        let _ = macro_mmla();
    }
}
