//! Simple bump allocator for laying out matrices in machine memory.

/// Address-space planner for one simulated GeMM.
#[derive(Debug, Clone)]
pub struct Workspace {
    next: u64,
}

impl Workspace {
    /// Start allocating at a small offset (address 0 is left unused so a
    /// zero register is never a valid pointer).
    pub fn new() -> Self {
        Workspace { next: 256 }
    }

    /// Reserve `bytes` aligned to `align` (power of two); returns the base
    /// address.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        base
    }

    /// Total bytes consumed so far (machine memory must be at least this).
    pub fn total(&self) -> u64 {
        self.next
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut w = Workspace::new();
        let a = w.alloc(100, 64);
        let b = w.alloc(50, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(w.total() >= b + 50);
    }

    #[test]
    fn zero_page_is_reserved() {
        let mut w = Workspace::new();
        assert!(w.alloc(1, 1) >= 256);
    }
}
