//! Buffer management for both GeMM halves: a bump allocator laying out
//! matrices in *simulated* machine memory ([`Workspace`]), and a
//! reusable *host-side* pack-buffer pool ([`PackPool`]) for the
//! host-speed engine's packed A/B panels.
//!
//! The pool's contract is that the steady state allocates nothing:
//! buffers grow to their high-water mark once and are recycled from
//! then on, which [`PackPool::allocations`] makes observable:
//!
//! ```
//! use camp_gemm::PackPool;
//!
//! let mut pool = PackPool::new();
//! pool.a_buffer(1024).fill(1);
//! pool.b_buffer(4096).fill(2);
//! let warm = pool.allocations();
//! for _ in 0..100 {
//!     pool.a_buffer(1024); // same-size requests reuse the buffers
//!     pool.b_buffer(4096);
//! }
//! assert_eq!(pool.allocations(), warm, "steady state is allocation-free");
//! ```

/// Address-space planner for one simulated GeMM.
#[derive(Debug, Clone)]
pub struct Workspace {
    next: u64,
}

impl Workspace {
    /// Start allocating at a small offset (address 0 is left unused so a
    /// zero register is never a valid pointer).
    pub fn new() -> Self {
        Workspace { next: 256 }
    }

    /// Reserve `bytes` aligned to `align` (power of two); returns the base
    /// address.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        base
    }

    /// Total bytes consumed so far (machine memory must be at least this).
    pub fn total(&self) -> u64 {
        self.next
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

/// Reusable host-side pack buffers for one GeMM worker.
///
/// The blocked host engine packs each A/B block into panel buffers
/// before the macro-kernel consumes them. Allocating those per panel
/// (as the engine originally did with `vec![0; …]`) puts an allocator
/// round-trip in the hottest loop; a `PackPool` instead grows its two
/// buffers to the high-water mark once and hands out slices from then
/// on. [`PackPool::allocations`] counts actual growths so tests can
/// assert the steady state allocates nothing.
///
/// One pool serves one worker: the parallel engine path gives each
/// thread its own arena. Alongside the two per-block A/B buffers, a
/// pool also owns an arena of long-lived *panels* ([`PackPool::alloc_panel`])
/// for callers that must keep several packed B operands alive at once —
/// the batched engine deduplicates shared weight matrices by packing
/// each unique B into one panel and pointing every batch item at it.
#[derive(Debug, Default)]
pub struct PackPool {
    a: Vec<i8>,
    b: Vec<i8>,
    /// Bytes of `a`/`b` actually packed by the most recent
    /// `a_buffer`/`b_buffer` call — `buffers()` hands out exactly these,
    /// never the stale high-water-mark tail.
    a_packed: usize,
    b_packed: usize,
    /// Panel storage (high-water length, never truncated) and the
    /// logical size of each live panel's current allocation.
    panels: Vec<Vec<i8>>,
    panel_lens: Vec<usize>,
    live_panels: usize,
    /// Persistent panels ([`PackPool::alloc_persistent`]): never
    /// recycled by [`PackPool::reset_panels`], exactly sized. The weight
    /// registry keeps pre-packed B operands here until eviction.
    persistent: Vec<Vec<i8>>,
    /// Freed persistent slots awaiting re-use, so an evict/re-register
    /// churn loop on a long-lived registry does not grow the slot table
    /// without bound.
    persistent_free: Vec<usize>,
    allocations: u64,
}

/// Handle to one pool-owned panel (see [`PackPool::alloc_panel`]).
/// Valid until the next [`PackPool::reset_panels`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PanelId(usize);

/// Handle to one *persistent* pool-owned panel (see
/// [`PackPool::alloc_persistent`]). Never invalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersistentId(usize);

impl PackPool {
    /// Empty pool; buffers grow on first use.
    pub fn new() -> Self {
        PackPool::default()
    }

    /// Borrow the A pack buffer with room for `bytes` bytes, growing it
    /// if needed. Contents are unspecified: packers must write every
    /// byte they later read (zero-padding included).
    pub fn a_buffer(&mut self, bytes: usize) -> &mut [i8] {
        if self.a.len() < bytes {
            self.a.resize(bytes, 0);
            self.allocations += 1;
        }
        self.a_packed = bytes;
        &mut self.a[..bytes]
    }

    /// Borrow the B pack buffer with room for `bytes` bytes; see
    /// [`PackPool::a_buffer`].
    pub fn b_buffer(&mut self, bytes: usize) -> &mut [i8] {
        if self.b.len() < bytes {
            self.b.resize(bytes, 0);
            self.allocations += 1;
        }
        self.b_packed = bytes;
        &mut self.b[..bytes]
    }

    /// Both packed buffers, read-only (for the macro-kernel), sized to
    /// exactly what the most recent `a_buffer`/`b_buffer` calls packed.
    /// The underlying storage is a high-water mark, so without the size
    /// tracking a smaller block packed after a larger one would expose a
    /// stale tail of the previous block's panels.
    pub fn buffers(&self) -> (&[i8], &[i8]) {
        (&self.a[..self.a_packed], &self.b[..self.b_packed])
    }

    /// Invalidate all panel handles and recycle their storage. Call at
    /// the start of a batch; previously grown panel buffers are reused,
    /// so a steady-state batch loop allocates nothing.
    pub fn reset_panels(&mut self) {
        self.live_panels = 0;
    }

    /// Allocate a pool-owned panel of exactly `bytes` bytes and return
    /// its handle. Contents are unspecified (packers must write every
    /// byte they later read), so the steady state neither allocates nor
    /// zero-fills: storage stays at its high-water length and only the
    /// logical size is recorded. Unlike the per-block A/B buffers, any
    /// number of panels can be live at once.
    pub fn alloc_panel(&mut self, bytes: usize) -> PanelId {
        if self.live_panels == self.panels.len() {
            self.panels.push(Vec::new());
            self.panel_lens.push(0);
        }
        let panel = &mut self.panels[self.live_panels];
        if panel.len() < bytes {
            panel.resize(bytes, 0);
            self.allocations += 1;
        }
        self.panel_lens[self.live_panels] = bytes;
        self.live_panels += 1;
        PanelId(self.live_panels - 1)
    }

    /// Mutable access to a live panel (for packing).
    ///
    /// # Panics
    /// Panics if `id` is not live (allocated since the last reset).
    pub fn panel_mut(&mut self, id: PanelId) -> &mut [i8] {
        assert!(id.0 < self.live_panels, "stale PanelId");
        &mut self.panels[id.0][..self.panel_lens[id.0]]
    }

    /// Read-only access to a live panel (for the macro-kernel).
    ///
    /// # Panics
    /// Panics if `id` is not live (allocated since the last reset).
    pub fn panel(&self, id: PanelId) -> &[i8] {
        assert!(id.0 < self.live_panels, "stale PanelId");
        &self.panels[id.0][..self.panel_lens[id.0]]
    }

    /// Allocate a panel that survives [`PackPool::reset_panels`] —
    /// storage for operands with registration lifetime (pre-packed
    /// weights), not per-call scratch. Zero-filled, exactly sized; each
    /// call allocates fresh storage (registration is a one-time cost,
    /// so the growth counter is bumped for honesty, not reuse), but a
    /// slot freed by [`PackPool::free_persistent`] is recycled instead
    /// of growing the slot table.
    pub fn alloc_persistent(&mut self, bytes: usize) -> PersistentId {
        self.allocations += 1;
        match self.persistent_free.pop() {
            Some(slot) => {
                self.persistent[slot] = vec![0; bytes];
                PersistentId(slot)
            }
            None => {
                self.persistent.push(vec![0; bytes]);
                PersistentId(self.persistent.len() - 1)
            }
        }
    }

    /// Mutable access to a persistent panel (for packing at
    /// registration time).
    pub fn persistent_mut(&mut self, id: PersistentId) -> &mut [i8] {
        &mut self.persistent[id.0]
    }

    /// Free a persistent panel's storage (weight eviction): the bytes
    /// are returned to the allocator immediately and the slot is
    /// recycled by the next [`PackPool::alloc_persistent`]. The caller
    /// must drop the id — the weight registry does, since eviction
    /// removes the only entry holding it.
    pub fn free_persistent(&mut self, id: PersistentId) {
        self.persistent[id.0] = Vec::new();
        self.persistent_free.push(id.0);
    }

    /// Read-only access to a persistent panel (for the macro-kernel).
    pub fn persistent(&self, id: PersistentId) -> &[i8] {
        &self.persistent[id.0]
    }

    /// Number of buffer growths since construction. Flat across calls
    /// ⇒ the hot loop is allocation-free.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut w = Workspace::new();
        let a = w.alloc(100, 64);
        let b = w.alloc(50, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(w.total() >= b + 50);
    }

    #[test]
    fn zero_page_is_reserved() {
        let mut w = Workspace::new();
        assert!(w.alloc(1, 1) >= 256);
    }

    #[test]
    fn pack_pool_reuses_buffers() {
        let mut p = PackPool::new();
        let _ = p.a_buffer(1024);
        let _ = p.b_buffer(4096);
        assert_eq!(p.allocations(), 2);
        // same or smaller requests are served without allocating
        for _ in 0..10 {
            let _ = p.a_buffer(1024);
            let _ = p.b_buffer(512);
        }
        assert_eq!(p.allocations(), 2);
        // a larger request grows once
        let _ = p.a_buffer(2048);
        assert_eq!(p.allocations(), 3);
        let (a, b) = p.buffers();
        assert_eq!((a.len(), b.len()), (2048, 512));
    }

    #[test]
    fn buffers_are_sized_to_the_packed_block_not_the_high_water_mark() {
        let mut p = PackPool::new();
        p.a_buffer(1024).fill(7);
        p.b_buffer(1024).fill(9);
        // a smaller block packed after a larger one must not expose the
        // stale tail of the previous block
        p.a_buffer(64).fill(1);
        p.b_buffer(96).fill(2);
        let (a, b) = p.buffers();
        assert_eq!(a.len(), 64);
        assert_eq!(b.len(), 96);
        assert!(a.iter().all(|&v| v == 1));
        assert!(b.iter().all(|&v| v == 2));
    }

    #[test]
    fn multiple_panels_are_live_simultaneously() {
        let mut p = PackPool::new();
        let one = p.alloc_panel(16);
        let two = p.alloc_panel(32);
        p.panel_mut(one).fill(1);
        p.panel_mut(two).fill(2);
        assert_eq!(p.panel(one).len(), 16);
        assert_eq!(p.panel(two).len(), 32);
        assert!(p.panel(one).iter().all(|&v| v == 1), "panels must not alias");
        let grown = p.allocations();
        // steady state: same-size reallocation after reset is free
        p.reset_panels();
        let one2 = p.alloc_panel(16);
        let two2 = p.alloc_panel(32);
        assert_eq!(p.panel(one2).len(), 16);
        assert_eq!(p.panel(two2).len(), 32);
        assert_eq!(p.allocations(), grown, "panel reuse must not allocate");
    }

    #[test]
    fn freed_persistent_slots_are_recycled() {
        // the evict/re-register churn of a long-lived registry must not
        // grow the slot table without bound
        let mut p = PackPool::new();
        let first = p.alloc_persistent(32);
        p.persistent_mut(first).fill(1);
        p.free_persistent(first);
        let second = p.alloc_persistent(16);
        assert_eq!(first, second, "freed slot must be recycled");
        assert_eq!(p.persistent(second).len(), 16);
        assert!(p.persistent(second).iter().all(|&v| v == 0), "recycled slots are zeroed");
        // a third allocation (no free slots left) grows the table
        let third = p.alloc_persistent(8);
        assert_ne!(second, third);
    }

    #[test]
    fn persistent_panels_survive_resets() {
        let mut p = PackPool::new();
        let keep = p.alloc_persistent(24);
        p.persistent_mut(keep).fill(5);
        // transient churn must not disturb persistent storage
        for round in 0..3 {
            p.reset_panels();
            let t = p.alloc_panel(64);
            p.panel_mut(t).fill(round as i8);
        }
        assert_eq!(p.persistent(keep).len(), 24);
        assert!(p.persistent(keep).iter().all(|&v| v == 5));
    }

    #[test]
    #[should_panic(expected = "stale PanelId")]
    fn stale_panel_handles_are_rejected() {
        let mut p = PackPool::new();
        let id = p.alloc_panel(8);
        p.reset_panels();
        let _ = p.panel(id);
    }
}
