//! Buffer management for both GeMM halves: a bump allocator laying out
//! matrices in *simulated* machine memory ([`Workspace`]), and a
//! reusable *host-side* pack-buffer pool ([`PackPool`]) for the
//! host-speed engine's packed A/B panels.

/// Address-space planner for one simulated GeMM.
#[derive(Debug, Clone)]
pub struct Workspace {
    next: u64,
}

impl Workspace {
    /// Start allocating at a small offset (address 0 is left unused so a
    /// zero register is never a valid pointer).
    pub fn new() -> Self {
        Workspace { next: 256 }
    }

    /// Reserve `bytes` aligned to `align` (power of two); returns the base
    /// address.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        base
    }

    /// Total bytes consumed so far (machine memory must be at least this).
    pub fn total(&self) -> u64 {
        self.next
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

/// Reusable host-side pack buffers for one GeMM worker.
///
/// The blocked host engine packs each A/B block into panel buffers
/// before the macro-kernel consumes them. Allocating those per panel
/// (as the engine originally did with `vec![0; …]`) puts an allocator
/// round-trip in the hottest loop; a `PackPool` instead grows its two
/// buffers to the high-water mark once and hands out slices from then
/// on. [`PackPool::allocations`] counts actual growths so tests can
/// assert the steady state allocates nothing.
///
/// One pool serves one worker: the parallel engine path gives each
/// thread its own arena.
#[derive(Debug, Default)]
pub struct PackPool {
    a: Vec<i8>,
    b: Vec<i8>,
    allocations: u64,
}

impl PackPool {
    /// Empty pool; buffers grow on first use.
    pub fn new() -> Self {
        PackPool::default()
    }

    /// Borrow the A pack buffer with room for `bytes` bytes, growing it
    /// if needed. Contents are unspecified: packers must write every
    /// byte they later read (zero-padding included).
    pub fn a_buffer(&mut self, bytes: usize) -> &mut [i8] {
        if self.a.len() < bytes {
            self.a.resize(bytes, 0);
            self.allocations += 1;
        }
        &mut self.a[..bytes]
    }

    /// Borrow the B pack buffer with room for `bytes` bytes; see
    /// [`PackPool::a_buffer`].
    pub fn b_buffer(&mut self, bytes: usize) -> &mut [i8] {
        if self.b.len() < bytes {
            self.b.resize(bytes, 0);
            self.allocations += 1;
        }
        &mut self.b[..bytes]
    }

    /// Both packed buffers, read-only (for the macro-kernel).
    pub fn buffers(&self) -> (&[i8], &[i8]) {
        (&self.a, &self.b)
    }

    /// Number of buffer growths since construction. Flat across calls
    /// ⇒ the hot loop is allocation-free.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut w = Workspace::new();
        let a = w.alloc(100, 64);
        let b = w.alloc(50, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
        assert!(w.total() >= b + 50);
    }

    #[test]
    fn zero_page_is_reserved() {
        let mut w = Workspace::new();
        assert!(w.alloc(1, 1) >= 256);
    }

    #[test]
    fn pack_pool_reuses_buffers() {
        let mut p = PackPool::new();
        let _ = p.a_buffer(1024);
        let _ = p.b_buffer(4096);
        assert_eq!(p.allocations(), 2);
        // same or smaller requests are served without allocating
        for _ in 0..10 {
            let _ = p.a_buffer(1024);
            let _ = p.b_buffer(512);
        }
        assert_eq!(p.allocations(), 2);
        // a larger request grows once
        let _ = p.a_buffer(2048);
        assert_eq!(p.allocations(), 3);
        let (a, b) = p.buffers();
        assert!(a.len() >= 2048 && b.len() >= 4096);
    }
}
