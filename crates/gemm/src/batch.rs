//! Batched-GeMM building blocks shared by the host engine and its
//! consumers.
//!
//! Transformer attention runs *many small* GeMMs per step — per-head
//! (s×dₕ)·(dₕ×s) score and (s×s)·(s×dₕ) context products, 12–20 heads
//! per layer (§5.2, Fig. 14) — shapes where per-call setup and operand
//! re-packing swamp compute. A batch call amortizes both: problems are
//! described by [`GemmProblem`] descriptors, problems sharing one
//! weight matrix reuse a single packed copy of it, and the engine moves
//! parallelism across batch items instead of inside each tiny GeMM.
//!
//! This module owns the substrate-independent pieces: the problem
//! descriptor, the operand-identity key used for B deduplication, and
//! the layout of a *fully pre-packed* B operand (every (jc, pc) block
//! of the blocked loops, concatenated in visit order) that lets one
//! packed panel serve any number of batch items and workers.
//!
//! The same descriptors drive both execution substrates: the host
//! engine (`CampBackend::execute_batch` in `camp-core`) and the
//! simulated driver ([`crate::driver::simulate_gemm_batch`]), which
//! applies the
//! identical B-dedup rule to the *simulated* packing work:
//!
//! ```
//! use camp_gemm::{simulate_gemm_batch, GemmOptions, GemmProblem};
//! use camp_pipeline::CoreConfig;
//!
//! let a: Vec<i8> = (0..4 * 8).map(|i| (i % 13) as i8 - 6).collect();
//! let w: Vec<i8> = (0..8 * 4).map(|i| (i % 15) as i8 - 7).collect();
//! let problems = [
//!     GemmProblem::new(4, 4, 8, &a, &w),
//!     GemmProblem::new(4, 4, 8, &a, &w), // same weights: B packed once
//! ];
//! assert_eq!(problems[0].b_key(), problems[1].b_key());
//! let batch = simulate_gemm_batch(CoreConfig::a64fx(), &problems, &GemmOptions::default());
//! assert!(batch.results.iter().all(|r| r.correct));
//! // the dedup consumer simulated fewer instructions: no B-pack program
//! assert!(batch.results[1].stats.insts < batch.results[0].stats.insts);
//! ```

use crate::loops::BlockPlan;
use crate::weights::{DType, WeightHandle};

/// One GeMM of a batch: row-major C (m×n) = A (m×k) · B (k×n), borrowing
/// its operands. Values must fit the kernel the batch runs under (i8 for
/// `camp.s8`, [-8, 7] for `camp.s4`).
///
/// B is either a borrowed slice (packed — and deduplicated — by the
/// engine per batch call) or a [`WeightHandle`] into the engine's
/// registry ([`GemmProblem::with_handle`]), in which case the batch
/// performs **zero** B-packing for this problem. `dtype` selects the
/// kernel the problem runs under (`CampBackend::execute_batch` maps
/// each request's dtype the same way).
#[derive(Debug, Clone, Copy)]
pub struct GemmProblem<'a> {
    /// Rows of A / C.
    pub m: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Row-major m×k left operand.
    pub a: &'a [i8],
    /// Row-major k×n right operand; empty (and ignored) when `handle`
    /// is set.
    pub b: &'a [i8],
    /// Pre-registered B operand; `None` means pack `b` at call time.
    pub handle: Option<WeightHandle>,
    /// Kernel this problem runs under in mixed-dtype batches.
    pub dtype: DType,
}

impl<'a> GemmProblem<'a> {
    /// Describe one problem with a borrowed B operand (i8 kernel by
    /// default; see [`GemmProblem::with_dtype`]).
    pub fn new(m: usize, n: usize, k: usize, a: &'a [i8], b: &'a [i8]) -> Self {
        GemmProblem { m, n, k, a, b, handle: None, dtype: DType::I8 }
    }

    /// Describe a problem whose B operand was pre-registered with the
    /// engine. `n`/`k` must match the registration (checked at call
    /// time), and the problem's dtype is set to the handle's at call
    /// time in dtype-respecting entry points.
    pub fn with_handle(m: usize, n: usize, k: usize, a: &'a [i8], handle: WeightHandle) -> Self {
        GemmProblem { m, n, k, a, b: &[], handle: Some(handle), dtype: DType::I8 }
    }

    /// Select the kernel this problem runs under in mixed-dtype batch
    /// calls.
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Multiply-accumulate operations of this problem.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// True if any dimension is zero (the result is empty or all-zero
    /// and no kernel work runs).
    pub fn is_degenerate(&self) -> bool {
        self.m == 0 || self.n == 0 || self.k == 0
    }

    /// Identity of the packed form of this problem's B operand. Two
    /// problems whose keys match can share one packed B panel: same
    /// buffer and same (n, k) means the same values in the same packed
    /// layout (the layout depends only on n, k and the blocking, never
    /// on m).
    pub fn b_key(&self) -> BOperandKey {
        BOperandKey { addr: self.b.as_ptr() as usize, len: self.b.len(), n: self.n, k: self.k }
    }
}

/// Hashable identity of a packed B operand (see [`GemmProblem::b_key`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BOperandKey {
    addr: usize,
    len: usize,
    n: usize,
    k: usize,
}

/// Total bytes of a fully pre-packed B: every (jc, pc) block of the
/// plan's traversal, concatenated. Each column strip of width `ncb`
/// spans the whole padded depth, so the total is exactly `np·kp` —
/// the same bytes a blocked per-(jc, pc) packing moves in one full
/// traversal.
pub fn packed_b_bytes(plan: &BlockPlan) -> usize {
    plan.np * plan.kp
}

/// Byte offset of the (jc, pc) block inside a fully pre-packed B, for a
/// plan whose padded depth is `kp`.
///
/// Column strips before `jc` (total width `jc`) each span the padded
/// depth `kp`; within the current strip of width `ncb`, the `pc`
/// previous depth blocks hold `ncb` bytes per k-value.
pub fn packed_b_offset(kp: usize, jc: usize, ncb: usize, pc: usize) -> usize {
    jc * kp + ncb * pc
}

/// Total bytes of a fully pre-packed A: every *unique* (ic, pc) block
/// (see [`crate::loops::for_each_a_block`]) exactly once. Each row
/// strip of height `mcb` spans the whole padded depth, so the total is
/// `mp·kp`. Unlike B — which the blocked loops also pack once per
/// block — the loops re-pack A once per *column strip*, so a pre-packed
/// A additionally elides the repeats for wide problems.
pub fn packed_a_bytes(plan: &BlockPlan) -> usize {
    plan.mp * plan.kp
}

/// Byte offset of the (ic, pc) block inside a fully pre-packed A, for a
/// plan whose padded depth is `kp` — the mirror of [`packed_b_offset`]:
/// row strips before `ic` (total height `ic`) each span the padded
/// depth, and within the current strip of height `mcb` the `pc`
/// previous depth blocks hold `mcb` bytes per k-value.
pub fn packed_a_offset(kp: usize, ic: usize, mcb: usize, pc: usize) -> usize {
    ic * kp + mcb * pc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b_keys_identify_shared_operands() {
        let b1 = vec![1i8; 12];
        let b2 = vec![1i8; 12];
        let a = vec![0i8; 8];
        let p1 = GemmProblem::new(2, 3, 4, &a, &b1);
        let p2 = GemmProblem::new(7, 3, 4, &a, &b1); // different m, same B
        let p3 = GemmProblem::new(2, 3, 4, &a, &b2); // equal values, different buffer
        let p4 = GemmProblem::new(2, 4, 3, &a, &b1); // same buffer, different shape
        assert_eq!(p1.b_key(), p2.b_key(), "m must not affect B identity");
        assert_ne!(p1.b_key(), p3.b_key(), "distinct buffers are distinct operands");
        assert_ne!(p1.b_key(), p4.b_key(), "shape is part of the packed identity");
    }

    #[test]
    fn degenerate_problems_are_flagged() {
        let empty: [i8; 0] = [];
        assert!(GemmProblem::new(0, 3, 4, &empty, &[0; 12]).is_degenerate());
        assert!(GemmProblem::new(2, 3, 0, &empty, &empty).is_degenerate());
        assert!(!GemmProblem::new(1, 1, 1, &[1], &[1]).is_degenerate());
    }

    #[test]
    fn handle_problems_carry_dtype_and_empty_b() {
        let a = vec![0i8; 8];
        let h = {
            let mut reg = crate::weights::WeightRegistry::new();
            reg.register(3, 4, &[0i8; 12], crate::weights::DType::I4)
        };
        let p = GemmProblem::with_handle(2, 3, 4, &a, h).with_dtype(crate::weights::DType::I4);
        assert_eq!(p.handle, Some(h));
        assert!(p.b.is_empty());
        assert_eq!(p.dtype, crate::weights::DType::I4);
        assert!(!p.is_degenerate());
        // plain problems default to the i8 kernel with no handle
        let q = GemmProblem::new(2, 3, 4, &a, &[0i8; 12]);
        assert_eq!(q.handle, None);
        assert_eq!(q.dtype, crate::weights::DType::I8);
    }

    #[test]
    fn packed_a_layout_offsets_tile_the_panel() {
        // unique A blocks in for_each_a_block order must be contiguous
        // and cover packed_a_bytes exactly (the mirror of the B test)
        let plan = BlockPlan::new(22, 20, 96, 4, 4, 32, (8, 8, 32));
        let mut expected = 0usize;
        crate::loops::for_each_a_block(&plan, |ic, mcb, pc, kcb| {
            assert_eq!(packed_a_offset(plan.kp, ic, mcb, pc), expected);
            expected += mcb * kcb;
        });
        assert_eq!(expected, packed_a_bytes(&plan));
    }

    #[test]
    fn packed_b_layout_offsets_tile_the_panel() {
        // blocks in run_blocked's own visit order (via the shared
        // for_each_b_block iterator) must be contiguous and cover
        // packed_b_bytes exactly
        let plan = BlockPlan::new(12, 20, 96, 4, 4, 32, (8, 8, 32));
        let mut expected = 0usize;
        crate::loops::for_each_b_block(&plan, |jc, ncb, pc, kcb| {
            assert_eq!(packed_b_offset(plan.kp, jc, ncb, pc), expected);
            expected += ncb * kcb;
        });
        assert_eq!(expected, packed_b_bytes(&plan));
    }
}
