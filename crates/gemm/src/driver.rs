//! Host-side blocked-GeMM driver: a single generic skeleton over the
//! kernel-dispatch layer.
//!
//! The driver owns what is common to every method — dimension clamping
//! and padding, memory layout, operand staging, the GotoBLAS loop nest
//! (via [`crate::loops`]), macro-kernel invocation and verification —
//! and consumes a [`crate::dispatch::MicroKernel`] descriptor for everything
//! kernel-specific. It contains no per-method tables: adding a kernel
//! touches only [`crate::dispatch`].

use crate::dispatch::{AccKind, ElemKind, KernelGeometry, PackBCtx, RUN_BUDGET};
use crate::loops::{run_blocked, BlockPlan, BlockSink};
use crate::reference::{gemm_f32_ref, gemm_i32_ref, gemm_i8_wrapping_ref, SplitMix64};
use crate::workspace::Workspace;
use camp_isa::inst::Program;
use camp_isa::reg::S;
use camp_pipeline::{CoreConfig, CoreKind, SimStats, Simulator};

pub use crate::dispatch::Method;

/// Options for [`simulate_gemm`].
#[derive(Debug, Clone, Copy)]
pub struct GemmOptions {
    /// Workload RNG seed.
    pub seed: u64,
    /// Maximum m·n·k the simulator will run exactly; larger problems are
    /// clamped structure-preservingly (all methods identically, so
    /// normalized metrics are unaffected).
    pub mac_budget: u64,
    /// Cache-blocking override (mc, nc, kc); defaults depend on the core.
    pub blocking: Option<(usize, usize, usize)>,
    /// Verify results against the host reference.
    pub verify: bool,
}

impl Default for GemmOptions {
    fn default() -> Self {
        GemmOptions { seed: 0xC0FF_EE00, mac_budget: 48_000_000, blocking: None, verify: true }
    }
}

/// Result of one simulated GeMM.
#[derive(Debug, Clone)]
pub struct GemmResult {
    /// Accumulated pipeline/cache statistics (packing + macro-kernels).
    pub stats: SimStats,
    /// True if the simulated result matched the host reference (always
    /// true when verification is disabled).
    pub correct: bool,
    /// Simulated dimensions after clamping and tile padding.
    pub m: usize,
    /// Simulated n.
    pub n: usize,
    /// Simulated k.
    pub k: usize,
    /// True if the requested problem was clamped to fit the MAC budget.
    pub clamped: bool,
    /// Effective GOPS at the core's clock (2 ops per MAC).
    pub gops: f64,
}

fn clamp_dims(
    mut m: usize,
    mut n: usize,
    mut k: usize,
    budget: u64,
) -> (usize, usize, usize, bool) {
    let mut clamped = false;
    while (m as u64) * (n as u64) * (k as u64) > budget {
        if m >= n && m >= k && m > 16 {
            m /= 2;
        } else if n >= k && n > 16 {
            n /= 2;
        } else if k > 16 {
            k /= 2;
        } else {
            break;
        }
        clamped = true;
    }
    (m, n, k, clamped)
}

struct Buffers {
    a_base: u64,
    b_base: u64,
    c_base: u64,
    apack: u64,
    bpack: u64,
    scratch: u64,
    total: u64,
}

fn layout(geo: &KernelGeometry, plan: &BlockPlan) -> Buffers {
    let mut w = Workspace::new();
    let a_base = w.alloc(geo.elem.row_bytes(plan.mp * plan.kp) as u64, 64);
    let b_base = w.alloc(geo.elem.row_bytes(plan.kp * plan.np) as u64, 64);
    let c_base = w.alloc((plan.mp * plan.np * geo.acc.c_elem_bytes()) as u64, 64);
    let apack = w.alloc((plan.mc / geo.mr * geo.a_panel_bytes(plan.kc)) as u64, 64);
    let bpack = w.alloc((plan.nc / geo.nr * geo.b_panel_bytes(plan.kc)) as u64, 64);
    let scratch = w.alloc(64, 64);
    let total = w.total() + 4096;
    Buffers { a_base, b_base, c_base, apack, bpack, scratch, total }
}

/// Pack 4-bit values two per byte, low nibble first (the layout the
/// `camp.s4` load path expects). An odd trailing element occupies the
/// low nibble of a final byte whose high nibble is zero — with
/// `chunks_exact(2)` alone it would silently be dropped.
pub(crate) fn pack_nibbles(vals: &[i8]) -> Vec<i8> {
    let mut out = Vec::with_capacity(vals.len().div_ceil(2));
    for pair in vals.chunks(2) {
        let lo = pair[0] as u8 & 0x0f;
        let hi = pair.get(1).map_or(0, |&v| (v as u8) << 4);
        out.push((lo | hi) as i8);
    }
    out
}

/// Write the generated operands into simulated memory in the kernel's
/// storage format.
fn stage_operands(sim: &mut Simulator, geo: &KernelGeometry, bufs: &Buffers, a: &[i8], b: &[i8]) {
    let mm = sim.machine_mut();
    match geo.elem {
        ElemKind::I4Nibble => {
            // 4-bit data lives nibble-packed in main memory (two values
            // per byte, row-major), as a quantized deployment stores it.
            for (i, &byte) in pack_nibbles(a).iter().enumerate() {
                mm.write_i8(bufs.a_base + i as u64, byte);
            }
            for (i, &byte) in pack_nibbles(b).iter().enumerate() {
                mm.write_i8(bufs.b_base + i as u64, byte);
            }
        }
        ElemKind::I8 => {
            for (i, &v) in a.iter().enumerate() {
                mm.write_i8(bufs.a_base + i as u64, v);
            }
            for (i, &v) in b.iter().enumerate() {
                mm.write_i8(bufs.b_base + i as u64, v);
            }
        }
        ElemKind::F32 => {
            for (i, &v) in a.iter().enumerate() {
                mm.write_f32(bufs.a_base + i as u64 * 4, v as f32);
            }
            for (i, &v) in b.iter().enumerate() {
                mm.write_f32(bufs.b_base + i as u64 * 4, v as f32);
            }
        }
        ElemKind::I32 => {
            for (i, &v) in a.iter().enumerate() {
                mm.write_i32(bufs.a_base + i as u64 * 4, v as i32);
            }
            for (i, &v) in b.iter().enumerate() {
                mm.write_i32(bufs.b_base + i as u64 * 4, v as i32);
            }
        }
    }
}

/// The simulation backend of the shared loop skeleton: packs blocks and
/// runs macro-kernels as simulated programs against one persistent
/// machine + cache state.
struct SimBackend {
    sim: Simulator,
    geo: KernelGeometry,
    bufs: Buffers,
    lda: u64,
    ldb: u64,
    ldc: u64,
    macro_prog: Program,
    pack_a: crate::dispatch::PackAPlan,
    pack_b: crate::dispatch::BPacker,
}

impl SimBackend {
    /// Source bytes covering `cols` k-columns of A.
    fn a_col_bytes(&self, cols: usize) -> u64 {
        self.geo.elem.row_bytes(cols) as u64
    }

    fn set_a_row_ptrs(&mut self, ic: usize, panel: usize, pc: usize, col_off: u64) {
        let mr = self.geo.mr;
        let base_col = self.a_col_bytes(pc);
        let mm = self.sim.machine_mut();
        for r in 0..mr as u8 {
            mm.set_x(
                S(20 + r),
                self.bufs.a_base
                    + (ic + panel * mr + r as usize) as u64 * self.lda
                    + base_col
                    + col_off,
            );
        }
    }
}

impl BlockSink for SimBackend {
    fn pack_b(&mut self, jc: usize, ncb: usize, pc: usize, kcb: usize) {
        let ctx = PackBCtx {
            b_base: self.bufs.b_base,
            bpack: self.bufs.bpack,
            ldb: self.ldb,
            jc,
            ncb,
            pc,
            kcb,
        };
        (self.pack_b)(&mut self.sim, &ctx);
    }

    fn pack_a(&mut self, ic: usize, mcb: usize, pc: usize, kcb: usize) {
        let per_kcol = self.geo.a_panel_bytes_per_kcol();
        for p in 0..mcb / self.geo.mr {
            let dst = self.bufs.apack + (p * self.geo.a_panel_bytes(kcb)) as u64;
            // vectorized bulk pass over whole chunks, as optimized BLAS
            // packs do ...
            let mut done_cols = 0usize;
            let cols_per_chunk = self.pack_a.vector.as_ref().map(|&(_, c)| c);
            if let Some(cols_per_chunk) = cols_per_chunk {
                let chunks = kcb / cols_per_chunk;
                if chunks > 0 {
                    self.set_a_row_ptrs(ic, p, pc, 0);
                    let mm = self.sim.machine_mut();
                    mm.set_x(S(11), dst);
                    mm.set_x(S(12), chunks as u64);
                    let (vec_prog, _) = self.pack_a.vector.as_ref().expect("vector plan present");
                    self.sim.run(vec_prog, RUN_BUDGET).expect("pack A (vector)");
                    done_cols = chunks * cols_per_chunk;
                }
            }
            // ... then the scalar gather covers the sub-chunk tail
            let tail = kcb - done_cols;
            if tail > 0 {
                let col_off = self.a_col_bytes(done_cols);
                self.set_a_row_ptrs(ic, p, pc, col_off);
                let mm = self.sim.machine_mut();
                mm.set_x(S(11), dst + (done_cols * per_kcol) as u64);
                mm.set_x(S(12), (tail / self.pack_a.scalar_cols_per_iter) as u64);
                self.sim.run(&self.pack_a.scalar, RUN_BUDGET).expect("pack A (tail)");
            }
        }
    }

    fn macro_kernel(
        &mut self,
        ic: usize,
        mcb: usize,
        jc: usize,
        ncb: usize,
        _pc: usize,
        kcb: usize,
    ) {
        let geo = &self.geo;
        let mm = self.sim.machine_mut();
        mm.set_x(S(1), self.bufs.apack);
        mm.set_x(S(2), self.bufs.bpack);
        mm.set_x(
            S(3),
            self.bufs.c_base + ic as u64 * self.ldc + (jc * geo.acc.c_elem_bytes()) as u64,
        );
        // one macro k-iteration consumes k_unit values (k-step × unroll)
        mm.set_x(S(4), (kcb / geo.k_unit) as u64);
        mm.set_x(S(5), (mcb / geo.mr) as u64);
        mm.set_x(S(6), (ncb / geo.nr) as u64);
        mm.set_x(S(7), self.ldc);
        mm.set_x(S(8), geo.b_panel_bytes(kcb) as u64);
        mm.set_x(S(9), geo.a_panel_bytes(kcb) as u64);
        mm.set_x(S(30), self.bufs.scratch);
        self.sim.run(&self.macro_prog, RUN_BUDGET).expect("macro kernel");
    }
}

/// Simulate one blocked GeMM of `method` on `core` for an m×n×k problem.
///
/// Returns accumulated statistics and a correctness verdict against the
/// host reference. Problems larger than `opts.mac_budget` MACs are
/// clamped (identically for every method). Zero-dimension problems are
/// degenerate, not an error: they return an all-zero [`GemmResult`]
/// (no simulated work), consistent with the host engine's empty result.
///
/// # Panics
/// Panics if the simulated machine faults (a bug in the kernels — every
/// kernel is covered by tests).
pub fn simulate_gemm(
    core: CoreConfig,
    method: Method,
    m: usize,
    n: usize,
    k: usize,
    opts: &GemmOptions,
) -> GemmResult {
    if m == 0 || n == 0 || k == 0 {
        return GemmResult {
            stats: SimStats::default(),
            correct: true,
            m: 0,
            n: 0,
            k: 0,
            clamped: false,
            gops: 0.0,
        };
    }
    let kernel = method.dispatcher();
    let geo = kernel.geometry();
    let (m, n, k, clamped) = clamp_dims(m, n, k, opts.mac_budget);

    let blocking = opts.blocking.unwrap_or_else(|| {
        let kc = kernel.default_kc(core.kind);
        match core.kind {
            CoreKind::InOrder => (64, 128, kc),
            CoreKind::OutOfOrder => (128, 512, kc),
        }
    });
    let plan = BlockPlan::new(m, n, k, geo.mr, geo.nr, geo.k_unit, blocking);
    let (mp, np, kp) = (plan.mp, plan.np, plan.kp);

    let bufs = layout(&geo, &plan);
    let mut sim = Simulator::new(core, bufs.total as usize);

    // ---- workload ----
    let mut rng = SplitMix64::new(opts.seed);
    let mut a_host = vec![0i8; mp * kp];
    for i in 0..m {
        for l in 0..k {
            a_host[i * kp + l] = rng.next_i8(-8, 7);
        }
    }
    let mut b_host = vec![0i8; kp * np];
    for l in 0..k {
        for j in 0..n {
            b_host[l * np + j] = rng.next_i8(-8, 7);
        }
    }
    stage_operands(&mut sim, &geo, &bufs, &a_host, &b_host);

    // ---- blocked loops over the simulation backend ----
    let mut backend = SimBackend {
        sim,
        geo,
        lda: geo.elem.row_bytes(kp) as u64,
        ldb: geo.elem.row_bytes(np) as u64,
        ldc: (np * geo.acc.c_elem_bytes()) as u64,
        macro_prog: kernel.macro_program(),
        pack_a: kernel.pack_a_plan(),
        pack_b: kernel.pack_b_packer(),
        bufs,
    };
    run_blocked(&plan, &mut backend);
    let sim = backend.sim;

    // ---- verification ----
    let correct = if opts.verify {
        verify(&sim, geo.acc, &a_host, &b_host, mp, np, kp, backend.bufs.c_base)
    } else {
        true
    };

    let gops = sim.stats().gops(core.freq_ghz);
    GemmResult { stats: *sim.stats(), correct, m: mp, n: np, k: kp, clamped, gops }
}

#[allow(clippy::too_many_arguments)]
fn verify(
    sim: &Simulator,
    acc: AccKind,
    a: &[i8],
    b: &[i8],
    mp: usize,
    np: usize,
    kp: usize,
    c_base: u64,
) -> bool {
    let machine = sim.machine();
    match acc {
        AccKind::I8Wrapping => {
            let expect = gemm_i8_wrapping_ref(mp, np, kp, a, b);
            (0..mp * np).all(|i| machine.read_i8(c_base + i as u64) == expect[i])
        }
        AccKind::F32 => {
            let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let expect = gemm_f32_ref(mp, np, kp, &af, &bf);
            (0..mp * np).all(|i| machine.read_f32(c_base + i as u64 * 4) == expect[i])
        }
        AccKind::I32 => {
            let expect = gemm_i32_ref(mp, np, kp, a, b);
            (0..mp * np).all(|i| machine.read_i32(c_base + i as u64 * 4) == expect[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(core: CoreConfig, method: Method, m: usize, n: usize, k: usize) -> GemmResult {
        let r = simulate_gemm(core, method, m, n, k, &GemmOptions::default());
        assert!(r.correct, "{} produced wrong results at {m}x{n}x{k}", method.name());
        assert!(r.stats.cycles > 0);
        r
    }

    #[test]
    fn camp8_correct_small() {
        check(CoreConfig::a64fx(), Method::Camp8, 16, 16, 32);
    }

    #[test]
    fn camp4_correct_small() {
        check(CoreConfig::a64fx(), Method::Camp4, 16, 16, 64);
    }

    #[test]
    fn handv_int32_correct_small() {
        check(CoreConfig::a64fx(), Method::HandvInt32, 16, 32, 16);
    }

    #[test]
    fn handv_int8_correct_small() {
        check(CoreConfig::a64fx(), Method::HandvInt8, 8, 64, 16);
    }

    #[test]
    fn gemmlowp_correct_small() {
        check(CoreConfig::a64fx(), Method::Gemmlowp, 8, 32, 16);
    }

    #[test]
    fn openblas_correct_small() {
        check(CoreConfig::a64fx(), Method::OpenblasF32, 16, 32, 8);
    }

    #[test]
    fn mmla_correct_small() {
        check(CoreConfig::a64fx(), Method::Mmla, 16, 16, 16);
    }

    #[test]
    fn all_methods_correct_on_edge_core() {
        for method in Method::all() {
            let r = simulate_gemm(
                CoreConfig::edge_riscv(),
                method,
                24,
                24,
                40,
                &GemmOptions::default(),
            );
            assert!(r.correct, "{} wrong on edge core", method.name());
        }
    }

    #[test]
    fn all_dispatchers_correct_on_ragged_shapes() {
        // m, n, k deliberately not multiples of any kernel's mr/nr/k_step;
        // verification inside simulate_gemm cross-checks every dispatcher
        // against gemm_i32_ref / gemm_i8_wrapping_ref / gemm_f32_ref.
        for (m, n, k) in [(5, 7, 19), (13, 3, 41), (9, 33, 27)] {
            for method in Method::all() {
                let r =
                    simulate_gemm(CoreConfig::a64fx(), method, m, n, k, &GemmOptions::default());
                assert!(r.correct, "{} wrong at ragged {m}x{n}x{k}", method.name());
                let geo = method.dispatcher().geometry();
                assert_eq!(r.m % geo.mr, 0);
                assert_eq!(r.n % geo.nr, 0);
                assert_eq!(r.k % geo.k_unit, 0);
            }
        }
    }

    #[test]
    fn ragged_dims_are_padded() {
        let r = check(CoreConfig::a64fx(), Method::Camp8, 5, 7, 19);
        assert_eq!(r.m, 8);
        assert_eq!(r.n, 8);
        assert_eq!(r.k, 128); // rounded to the unrolled k-unit
    }

    #[test]
    fn camp8_beats_openblas_at_paper_scale_k() {
        // The paper's CNN/LLM layers have k in the hundreds-to-thousands;
        // the CAMP advantage comes from the k-loop, so use a deep problem.
        let opts = GemmOptions::default();
        let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 128, 128, 512, &opts);
        let blas = simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, 128, 128, 512, &opts);
        assert!(camp.correct && blas.correct);
        assert!(
            camp.stats.cycles * 2 < blas.stats.cycles,
            "CAMP ({}) should clearly beat OpenBLAS ({})",
            camp.stats.cycles,
            blas.stats.cycles
        );
    }

    #[test]
    fn camp4_uses_fewer_instructions_than_camp8() {
        let opts = GemmOptions::default();
        let c8 = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 64, 64, 512, &opts);
        let c4 = simulate_gemm(CoreConfig::a64fx(), Method::Camp4, 64, 64, 512, &opts);
        assert!(c4.correct && c8.correct);
        assert!(
            c4.stats.insts < c8.stats.insts,
            "camp4 {} insts vs camp8 {}",
            c4.stats.insts,
            c8.stats.insts
        );
        assert!(c4.stats.cycles < c8.stats.cycles);
    }

    #[test]
    fn clamping_kicks_in() {
        let opts = GemmOptions { mac_budget: 1_000_000, verify: false, ..GemmOptions::default() };
        let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 1024, 1024, 1024, &opts);
        assert!(r.clamped);
        assert!((r.m * r.n * r.k) as u64 <= 2_000_000);
    }

    #[test]
    fn zero_dimension_returns_empty_result() {
        // zero-dim problems are degenerate, not a panic: no simulated
        // work, verdict trivially correct (matches the host engine)
        for (m, n, k) in [(0, 16, 16), (16, 0, 16), (16, 16, 0), (0, 0, 0)] {
            for method in [Method::Camp8, Method::Camp4, Method::OpenblasF32] {
                let r =
                    simulate_gemm(CoreConfig::a64fx(), method, m, n, k, &GemmOptions::default());
                assert!(r.correct, "{} at {m}x{n}x{k}", method.name());
                assert_eq!(r.stats.cycles, 0);
                assert_eq!(r.stats.insts, 0);
                assert_eq!((r.m, r.n, r.k), (0, 0, 0));
                assert!(!r.clamped);
            }
        }
    }

    #[test]
    fn pack_nibbles_handles_odd_length() {
        // even: two values per byte, low nibble first
        assert_eq!(pack_nibbles(&[1, 2, 3, 4]), vec![0x21, 0x43]);
        // odd: the trailing element must survive in the low nibble
        let packed = pack_nibbles(&[1, 2, 3]);
        assert_eq!(packed, vec![0x21, 0x03]);
        // negative values pack as their 4-bit two's complement
        let packed = pack_nibbles(&[-1, -8, 7]);
        assert_eq!(packed, vec![0x8fu8 as i8, 0x07]);
        // empty stays empty
        assert!(pack_nibbles(&[]).is_empty());
    }

    #[test]
    fn odd_length_i4_staging_preserves_last_element() {
        // an odd element count must round-trip: the final value lands in
        // the low nibble of the last byte instead of being dropped
        let vals: Vec<i8> = (0..9).map(|i| (i % 16) - 8).collect();
        let packed = pack_nibbles(&vals);
        assert_eq!(packed.len(), 5);
        let mut unpacked = Vec::new();
        for &b in &packed {
            unpacked.push(((b as u8 & 0x0f) as i8) << 4 >> 4);
            unpacked.push(((b as u8 >> 4) as i8) << 4 >> 4);
        }
        assert_eq!(&unpacked[..9], &vals[..], "odd trailing element lost");
        assert_eq!(unpacked[9], 0, "pad nibble must read as zero");
    }

    #[test]
    fn multi_block_k_accumulates_correctly() {
        // kp > kc forces C read-modify-write across k blocks
        let opts = GemmOptions { blocking: Some((32, 64, 32)), ..GemmOptions::default() };
        let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 32, 32, 96, &opts);
        assert!(r.correct);
        let r = simulate_gemm(CoreConfig::a64fx(), Method::HandvInt32, 32, 32, 96, &opts);
        assert!(r.correct);
    }
}
