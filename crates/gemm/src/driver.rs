//! Host-side blocked-GeMM driver: GotoBLAS loops 3–5, program dispatch,
//! data generation and verification.

use crate::kernels;
use crate::pack;
use crate::reference::{gemm_f32_ref, gemm_i8_wrapping_ref, SplitMix64};
use crate::workspace::Workspace;
use camp_core::gemm_i32_ref;
use camp_isa::inst::{CampMode, Program};
use camp_isa::reg::S;
use camp_pipeline::{CoreConfig, CoreKind, SimStats, Simulator};

/// GeMM implementation under test (the §5.3 experiment matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// CAMP with 8-bit operands (`camp.s8`).
    Camp8,
    /// CAMP with 4-bit operands (`camp.s4`).
    Camp4,
    /// Hand-vectorized 32-bit integer ulmBLAS (also the edge BLIS-int32
    /// baseline).
    HandvInt32,
    /// Hand-vectorized 8-bit integer kernel with wrapping 8-bit
    /// accumulators (overflow-unsafe, as in the paper).
    HandvInt8,
    /// gemmlowp-like widening int8 kernel.
    Gemmlowp,
    /// OpenBLAS-SGEMM-like f32 kernel (the normalization baseline).
    OpenblasF32,
    /// Arm FEAT_I8MM `smmla` kernel (§7.2 comparison).
    Mmla,
}

impl Method {
    /// All methods, CAMP first.
    pub fn all() -> [Method; 7] {
        [
            Method::Camp8,
            Method::Camp4,
            Method::HandvInt32,
            Method::HandvInt8,
            Method::Gemmlowp,
            Method::OpenblasF32,
            Method::Mmla,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            Method::Camp8 => "CAMP-8bit",
            Method::Camp4 => "CAMP-4bit",
            Method::HandvInt32 => "handv-int32",
            Method::HandvInt8 => "handv-int8",
            Method::Gemmlowp => "gemmlowp",
            Method::OpenblasF32 => "OpenBLAS",
            Method::Mmla => "MMLA",
        }
    }

    /// Micro-kernel register-tile rows.
    pub fn mr(self) -> usize {
        match self {
            Method::Camp8 | Method::Camp4 | Method::HandvInt32 | Method::HandvInt8 | Method::Gemmlowp => 4,
            Method::OpenblasF32 | Method::Mmla => 8,
        }
    }

    /// Micro-kernel register-tile columns.
    pub fn nr(self) -> usize {
        match self {
            Method::Camp8 | Method::Camp4 => 4,
            Method::HandvInt32 => 16,
            Method::HandvInt8 => 64,
            Method::Gemmlowp => 32,
            Method::OpenblasF32 => 32,
            Method::Mmla => 8,
        }
    }

    /// k values consumed per micro-kernel primitive (one `camp`, one
    /// MLA column, one `smmla` octet, ...).
    pub fn k_step(self) -> usize {
        match self {
            Method::Camp8 => 16,
            Method::Camp4 => 32,
            Method::HandvInt32 | Method::HandvInt8 | Method::OpenblasF32 => 1,
            Method::Gemmlowp => 2,
            Method::Mmla => 8,
        }
    }

    /// k values consumed per macro-kernel loop iteration (k-step ×
    /// unroll factor); k is padded to a multiple of this.
    pub fn k_unit(self) -> usize {
        match self {
            Method::Camp8 => 128, // 16 × unroll 8
            Method::Camp4 => 128, // 32 × unroll 4
            Method::HandvInt32 | Method::HandvInt8 => 2,
            Method::Gemmlowp => 2,
            Method::OpenblasF32 => 1,
            Method::Mmla => 8,
        }
    }

    /// Bytes per element of A/B in main memory.
    fn ab_elem(self) -> usize {
        match self {
            Method::HandvInt32 | Method::OpenblasF32 => 4,
            _ => 1,
        }
    }

    /// Bytes per element of C.
    fn c_elem(self) -> usize {
        match self {
            Method::HandvInt8 => 1,
            _ => 4,
        }
    }

    /// Packed-A panel bytes for a kc-deep block.
    fn a_panel_bytes(self, kc: usize) -> usize {
        match self {
            Method::Camp8 => 4 * kc,
            Method::Camp4 => 2 * kc,
            Method::HandvInt32 => 16 * kc,
            Method::HandvInt8 => 4 * kc,
            Method::Gemmlowp => 4 * kc,
            Method::OpenblasF32 => 32 * kc,
            Method::Mmla => 8 * kc,
        }
    }

    /// Packed-B panel bytes for a kc-deep block.
    fn b_panel_bytes(self, kc: usize) -> usize {
        match self {
            Method::Camp8 => 4 * kc,
            Method::Camp4 => 2 * kc,
            Method::HandvInt32 => 64 * kc,
            Method::HandvInt8 => 64 * kc,
            Method::Gemmlowp => 64 * kc / 2,
            Method::OpenblasF32 => 128 * kc,
            Method::Mmla => 8 * kc,
        }
    }

    fn macro_program(self) -> Program {
        match self {
            Method::Camp8 => kernels::macro_camp(CampMode::I8),
            Method::Camp4 => kernels::macro_camp(CampMode::I4),
            Method::HandvInt32 => kernels::macro_handv_int32(),
            Method::HandvInt8 => kernels::macro_handv_int8(),
            Method::Gemmlowp => kernels::macro_gemmlowp(),
            Method::OpenblasF32 => kernels::macro_openblas_f32(),
            Method::Mmla => kernels::macro_mmla(),
        }
    }
}

/// Options for [`simulate_gemm`].
#[derive(Debug, Clone, Copy)]
pub struct GemmOptions {
    /// Workload RNG seed.
    pub seed: u64,
    /// Maximum m·n·k the simulator will run exactly; larger problems are
    /// clamped structure-preservingly (all methods identically, so
    /// normalized metrics are unaffected).
    pub mac_budget: u64,
    /// Cache-blocking override (mc, nc, kc); defaults depend on the core.
    pub blocking: Option<(usize, usize, usize)>,
    /// Verify results against the host reference.
    pub verify: bool,
}

impl Default for GemmOptions {
    fn default() -> Self {
        GemmOptions { seed: 0xC0FF_EE00, mac_budget: 48_000_000, blocking: None, verify: true }
    }
}

/// Result of one simulated GeMM.
#[derive(Debug, Clone)]
pub struct GemmResult {
    /// Accumulated pipeline/cache statistics (packing + macro-kernels).
    pub stats: SimStats,
    /// True if the simulated result matched the host reference (always
    /// true when verification is disabled).
    pub correct: bool,
    /// Simulated dimensions after clamping and tile padding.
    pub m: usize,
    /// Simulated n.
    pub n: usize,
    /// Simulated k.
    pub k: usize,
    /// True if the requested problem was clamped to fit the MAC budget.
    pub clamped: bool,
    /// Effective GOPS at the core's clock (2 ops per MAC).
    pub gops: f64,
}

fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

fn clamp_dims(mut m: usize, mut n: usize, mut k: usize, budget: u64) -> (usize, usize, usize, bool) {
    let mut clamped = false;
    while (m as u64) * (n as u64) * (k as u64) > budget {
        if m >= n && m >= k && m > 16 {
            m /= 2;
        } else if n >= k && n > 16 {
            n /= 2;
        } else if k > 16 {
            k /= 2;
        } else {
            break;
        }
        clamped = true;
    }
    (m, n, k, clamped)
}

struct Buffers {
    a_base: u64,
    b_base: u64,
    c_base: u64,
    apack: u64,
    bpack: u64,
    scratch: u64,
    total: u64,
}

fn layout(method: Method, mp: usize, np: usize, kp: usize, mc: usize, nc: usize, kc: usize) -> Buffers {
    let mut w = Workspace::new();
    let e = method.ab_elem() as u64;
    let a_base = w.alloc((mp * kp) as u64 * e, 64);
    let b_base = w.alloc((kp * np) as u64 * e, 64);
    let c_base = w.alloc((mp * np * method.c_elem()) as u64, 64);
    let apack = w.alloc((mc / method.mr() * method.a_panel_bytes(kc)) as u64, 64);
    let bpack = w.alloc((nc / method.nr() * method.b_panel_bytes(kc)) as u64, 64);
    let scratch = w.alloc(64, 64);
    let total = w.total() + 4096;
    Buffers { a_base, b_base, c_base, apack, bpack, scratch, total }
}

const RUN_BUDGET: u64 = 4_000_000_000;

/// Simulate one blocked GeMM of `method` on `core` for an m×n×k problem.
///
/// Returns accumulated statistics and a correctness verdict against the
/// host reference. Problems larger than `opts.mac_budget` MACs are
/// clamped (identically for every method).
///
/// # Panics
/// Panics if the simulated machine faults (a bug in the kernels — every
/// kernel is covered by tests) or if a dimension is zero.
pub fn simulate_gemm(
    core: CoreConfig,
    method: Method,
    m: usize,
    n: usize,
    k: usize,
    opts: &GemmOptions,
) -> GemmResult {
    assert!(m > 0 && n > 0 && k > 0, "dimensions must be positive");
    let (m, n, k, clamped) = clamp_dims(m, n, k, opts.mac_budget);
    let mr = method.mr();
    let nr = method.nr();
    let ks = method.k_unit();
    let mp = round_up(m, mr);
    let np = round_up(n, nr);
    let kp = round_up(k, ks);

    // Per-method cache blocking: kc is sized so the packed A and B
    // panels fit in L1 (Fig. 3's constraint). Byte-sized operands allow
    // much deeper panels than f32; the CAMP micro-kernel in particular
    // accumulates the whole k extent in the auxiliary register whenever
    // it fits (Fig. 9).
    let (dmc, dnc, dkc) = opts.blocking.unwrap_or_else(|| {
        let kc = match (core.kind, method) {
            (CoreKind::OutOfOrder, Method::Camp8 | Method::Camp4) => 4096,
            (CoreKind::OutOfOrder, Method::HandvInt8 | Method::Gemmlowp | Method::Mmla) => 512,
            (CoreKind::OutOfOrder, _) => 256,
            (CoreKind::InOrder, Method::Camp8 | Method::Camp4) => 2048,
            (CoreKind::InOrder, Method::HandvInt8 | Method::Gemmlowp | Method::Mmla) => 256,
            (CoreKind::InOrder, _) => 128,
        };
        match core.kind {
            CoreKind::InOrder => (64, 128, kc),
            CoreKind::OutOfOrder => (128, 512, kc),
        }
    });
    let mc = round_up(dmc.min(mp), mr);
    let nc = round_up(dnc.min(np), nr);
    let kc = round_up(dkc.min(kp), ks);

    let bufs = layout(method, mp, np, kp, mc, nc, kc);
    let mut sim = Simulator::new(core, bufs.total as usize);

    // ---- workload ----
    let mut rng = SplitMix64::new(opts.seed);
    let mut a_host = vec![0i8; mp * kp];
    for i in 0..m {
        for l in 0..k {
            a_host[i * kp + l] = rng.next_i8(-8, 7);
        }
    }
    let mut b_host = vec![0i8; kp * np];
    for l in 0..k {
        for j in 0..n {
            b_host[l * np + j] = rng.next_i8(-8, 7);
        }
    }

    {
        let mm = sim.machine_mut();
        match method.ab_elem() {
            1 if method == Method::Camp4 => {
                // 4-bit data lives nibble-packed in main memory (two
                // values per byte, row-major), as a quantized deployment
                // stores it.
                for (i, pair) in a_host.chunks_exact(2).enumerate() {
                    let byte = (pair[0] as u8 & 0x0f) | ((pair[1] as u8) << 4);
                    mm.write_i8(bufs.a_base + i as u64, byte as i8);
                }
                for (i, pair) in b_host.chunks_exact(2).enumerate() {
                    let byte = (pair[0] as u8 & 0x0f) | ((pair[1] as u8) << 4);
                    mm.write_i8(bufs.b_base + i as u64, byte as i8);
                }
            }
            1 => {
                for (i, &v) in a_host.iter().enumerate() {
                    mm.write_i8(bufs.a_base + i as u64, v);
                }
                for (i, &v) in b_host.iter().enumerate() {
                    mm.write_i8(bufs.b_base + i as u64, v);
                }
            }
            4 => {
                if method == Method::OpenblasF32 {
                    for (i, &v) in a_host.iter().enumerate() {
                        mm.write_f32(bufs.a_base + i as u64 * 4, v as f32);
                    }
                    for (i, &v) in b_host.iter().enumerate() {
                        mm.write_f32(bufs.b_base + i as u64 * 4, v as f32);
                    }
                } else {
                    for (i, &v) in a_host.iter().enumerate() {
                        mm.write_i32(bufs.a_base + i as u64 * 4, v as i32);
                    }
                    for (i, &v) in b_host.iter().enumerate() {
                        mm.write_i32(bufs.b_base + i as u64 * 4, v as i32);
                    }
                }
            }
            _ => unreachable!(),
        }
    }

    // ---- programs ----
    let macro_prog = method.macro_program();
    let e = method.ab_elem();
    // Row strides in bytes; the 4-bit path stores two elements per byte.
    let (lda, ldb) = if method == Method::Camp4 {
        ((kp / 2) as u64, (np / 2) as u64)
    } else {
        ((kp * e) as u64, (np * e) as u64)
    };
    let ldc = (np * method.c_elem()) as u64;

    let pack_a_prog: Program = match method {
        Method::Camp8 | Method::HandvInt8 => pack::pack_a_rows(4, 1),
        Method::Camp4 => pack::pack_a_camp4(),
        Method::HandvInt32 => pack::pack_a_rows(4, 4),
        Method::Gemmlowp => pack::pack_a_gemmlowp(),
        Method::OpenblasF32 => pack::pack_a_rows(8, 4),
        Method::Mmla => pack::pack_a_rows(8, 8),
    };
    // Vectorized bulk A-pack: (program, k-columns per chunk). The scalar
    // program above handles the sub-chunk tail, as optimized BLAS packs
    // do.
    let pack_a_vec: Option<(Program, usize)> = match method {
        Method::Camp8 | Method::HandvInt8 => Some((pack::pack_a_transpose4(1), 64)),
        Method::Camp4 => Some((pack::pack_a_camp4_vec(), 128)),
        Method::HandvInt32 => Some((pack::pack_a_transpose4(4), 16)),
        Method::Gemmlowp => Some((pack::pack_a_transpose4(2), 64)),
        Method::OpenblasF32 => Some((pack::pack_a_transpose8_words(), 16)),
        Method::Mmla => None,
    };
    // Packed-panel bytes per k-column (for pointer advances).
    let panel_bytes_per_kcol = method.a_panel_bytes(kp.max(1)) / kp.max(1);
    let pack_b_lowp_vec = pack::pack_b_gemmlowp_vec();
    let pack_b_prog: Program = match method {
        Method::Camp8 => pack::pack_b_rows4(4),
        Method::Camp4 => pack::pack_b_rows4(2),
        Method::HandvInt32 | Method::HandvInt8 => pack::pack_b_rows(64),
        Method::Gemmlowp => pack::pack_b_gemmlowp(32),
        Method::OpenblasF32 => pack::pack_b_rows(128),
        Method::Mmla => pack::pack_b_mmla(),
    };

    // ---- blocked loops (host side: GotoBLAS loops 3–5) ----
    let mut jc = 0;
    while jc < np {
        let ncb = nc.min(np - jc);
        let mut pc = 0;
        while pc < kp {
            let kcb = kc.min(kp - pc);
            // ---- pack B block ----
            if method == Method::Gemmlowp {
                // vectorized pair-interleave covers two 32-column panels
                // per pass; a lone trailing panel falls back to scalar
                let panels = ncb / nr;
                let mut p = 0;
                while p < panels {
                    let col = (jc + p * nr) as u64;
                    let dst = bufs.bpack + (p * method.b_panel_bytes(kcb)) as u64;
                    let mm = sim.machine_mut();
                    mm.set_x(S(20), bufs.b_base + pc as u64 * ldb + col);
                    mm.set_x(S(21), bufs.b_base + (pc as u64 + 1) * ldb + col);
                    mm.set_x(S(11), dst);
                    mm.set_x(S(12), (kcb / 2) as u64);
                    mm.set_x(S(14), 2 * ldb);
                    if p + 1 < panels {
                        mm.set_x(S(15), dst + method.b_panel_bytes(kcb) as u64);
                        sim.run(&pack_b_lowp_vec, RUN_BUDGET).expect("pack B (vector)");
                        p += 2;
                    } else {
                        sim.run(&pack_b_prog, RUN_BUDGET).expect("pack B");
                        p += 1;
                    }
                }
            }
            for p in 0..ncb / nr {
                if method == Method::Gemmlowp {
                    break;
                }
                let col = (jc + p * nr) as u64;
                let dst = bufs.bpack + (p * method.b_panel_bytes(kcb)) as u64;
                let mm = sim.machine_mut();
                match method {
                    Method::Gemmlowp => unreachable!("handled above"),
                    Method::Mmla => {
                        for t in 0..8u8 {
                            mm.set_x(S(20 + t), bufs.b_base + (pc as u64 + t as u64) * ldb + col);
                        }
                        mm.set_x(S(11), dst);
                        mm.set_x(S(12), (kcb / 8) as u64);
                        mm.set_x(S(14), 8 * ldb);
                    }
                    Method::Camp4 => {
                        for t in 0..4u8 {
                            mm.set_x(S(20 + t), bufs.b_base + (pc as u64 + t as u64) * ldb + col / 2);
                        }
                        mm.set_x(S(11), dst);
                        mm.set_x(S(12), (kcb / 4) as u64);
                        mm.set_x(S(14), 4 * ldb);
                    }
                    Method::Camp8 => {
                        for t in 0..4u8 {
                            mm.set_x(S(20 + t), bufs.b_base + (pc as u64 + t as u64) * ldb + col);
                        }
                        mm.set_x(S(11), dst);
                        mm.set_x(S(12), (kcb / 4) as u64);
                        mm.set_x(S(14), 4 * ldb);
                    }
                    _ => {
                        mm.set_x(S(10), bufs.b_base + pc as u64 * ldb + col * e as u64);
                        mm.set_x(S(11), dst);
                        mm.set_x(S(12), kcb as u64);
                        mm.set_x(S(13), ldb);
                    }
                }
                sim.run(&pack_b_prog, RUN_BUDGET).expect("pack B");
            }

            let mut ic = 0;
            while ic < mp {
                let mcb = mc.min(mp - ic);
                // ---- pack A block ----
                for p in 0..mcb / mr {
                    let dst = bufs.apack + (p * method.a_panel_bytes(kcb)) as u64;
                    // source bytes per k-column (½ byte for nibble data)
                    let src_col_bytes = |cols: usize| -> u64 {
                        if method == Method::Camp4 {
                            (cols / 2) as u64
                        } else {
                            (cols * e) as u64
                        }
                    };
                    let set_row_ptrs = |sim: &mut Simulator, col_off: u64| {
                        let mm = sim.machine_mut();
                        for r in 0..mr as u8 {
                            mm.set_x(
                                S(20 + r),
                                bufs.a_base
                                    + (ic + p * mr + r as usize) as u64 * lda
                                    + src_col_bytes(pc)
                                    + col_off,
                            );
                        }
                    };
                    let mut done_cols = 0usize;
                    if let Some((vec_prog, cpc)) = &pack_a_vec {
                        let chunks = kcb / cpc;
                        if chunks > 0 {
                            set_row_ptrs(&mut sim, 0);
                            let mm = sim.machine_mut();
                            mm.set_x(S(11), dst);
                            mm.set_x(S(12), chunks as u64);
                            sim.run(vec_prog, RUN_BUDGET).expect("pack A (vector)");
                            done_cols = chunks * cpc;
                        }
                    }
                    let tail = kcb - done_cols;
                    if tail > 0 {
                        set_row_ptrs(&mut sim, src_col_bytes(done_cols));
                        let mm = sim.machine_mut();
                        mm.set_x(S(11), dst + (done_cols * panel_bytes_per_kcol) as u64);
                        let count = match method {
                            Method::Gemmlowp | Method::Camp4 => tail / 2,
                            Method::Mmla => tail / 8,
                            _ => tail,
                        };
                        mm.set_x(S(12), count as u64);
                        sim.run(&pack_a_prog, RUN_BUDGET).expect("pack A (tail)");
                    }
                }

                // ---- macro-kernel ----
                {
                    let mm = sim.machine_mut();
                    mm.set_x(S(1), bufs.apack);
                    mm.set_x(S(2), bufs.bpack);
                    mm.set_x(S(3), bufs.c_base + ic as u64 * ldc + (jc * method.c_elem()) as u64);
                    mm.set_x(S(4), (kcb / ks) as u64);
                    mm.set_x(S(5), (mcb / mr) as u64);
                    mm.set_x(S(6), (ncb / nr) as u64);
                    mm.set_x(S(7), ldc);
                    mm.set_x(S(8), method.b_panel_bytes(kcb) as u64);
                    mm.set_x(S(9), method.a_panel_bytes(kcb) as u64);
                    mm.set_x(S(30), bufs.scratch);
                }
                sim.run(&macro_prog, RUN_BUDGET).expect("macro kernel");
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }

    // ---- verification ----
    let correct = if opts.verify {
        verify(&sim, method, &a_host, &b_host, mp, np, kp, bufs.c_base)
    } else {
        true
    };

    let gops = sim.stats().gops(core.freq_ghz);
    GemmResult { stats: *sim.stats(), correct, m: mp, n: np, k: kp, clamped, gops }
}

#[allow(clippy::too_many_arguments)]
fn verify(
    sim: &Simulator,
    method: Method,
    a: &[i8],
    b: &[i8],
    mp: usize,
    np: usize,
    kp: usize,
    c_base: u64,
) -> bool {
    let machine = sim.machine();
    match method {
        Method::HandvInt8 => {
            let expect = gemm_i8_wrapping_ref(mp, np, kp, a, b);
            (0..mp * np).all(|i| machine.read_i8(c_base + i as u64) == expect[i])
        }
        Method::OpenblasF32 => {
            let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let expect = gemm_f32_ref(mp, np, kp, &af, &bf);
            (0..mp * np).all(|i| machine.read_f32(c_base + i as u64 * 4) == expect[i])
        }
        _ => {
            let expect = gemm_i32_ref(mp, np, kp, a, b);
            (0..mp * np).all(|i| machine.read_i32(c_base + i as u64 * 4) == expect[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(core: CoreConfig, method: Method, m: usize, n: usize, k: usize) -> GemmResult {
        let r = simulate_gemm(core, method, m, n, k, &GemmOptions::default());
        assert!(r.correct, "{} produced wrong results at {m}x{n}x{k}", method.name());
        assert!(r.stats.cycles > 0);
        r
    }

    #[test]
    fn camp8_correct_small() {
        check(CoreConfig::a64fx(), Method::Camp8, 16, 16, 32);
    }

    #[test]
    fn camp4_correct_small() {
        check(CoreConfig::a64fx(), Method::Camp4, 16, 16, 64);
    }

    #[test]
    fn handv_int32_correct_small() {
        check(CoreConfig::a64fx(), Method::HandvInt32, 16, 32, 16);
    }

    #[test]
    fn handv_int8_correct_small() {
        check(CoreConfig::a64fx(), Method::HandvInt8, 8, 64, 16);
    }

    #[test]
    fn gemmlowp_correct_small() {
        check(CoreConfig::a64fx(), Method::Gemmlowp, 8, 32, 16);
    }

    #[test]
    fn openblas_correct_small() {
        check(CoreConfig::a64fx(), Method::OpenblasF32, 16, 32, 8);
    }

    #[test]
    fn mmla_correct_small() {
        check(CoreConfig::a64fx(), Method::Mmla, 16, 16, 16);
    }

    #[test]
    fn all_methods_correct_on_edge_core() {
        for method in Method::all() {
            let r = simulate_gemm(
                CoreConfig::edge_riscv(),
                method,
                24,
                24,
                40,
                &GemmOptions::default(),
            );
            assert!(r.correct, "{} wrong on edge core", method.name());
        }
    }

    #[test]
    fn ragged_dims_are_padded() {
        let r = check(CoreConfig::a64fx(), Method::Camp8, 5, 7, 19);
        assert_eq!(r.m, 8);
        assert_eq!(r.n, 8);
        assert_eq!(r.k, 128); // rounded to the unrolled k-unit
    }

    #[test]
    fn camp8_beats_openblas_at_paper_scale_k() {
        // The paper's CNN/LLM layers have k in the hundreds-to-thousands;
        // the CAMP advantage comes from the k-loop, so use a deep problem.
        let opts = GemmOptions::default();
        let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 128, 128, 512, &opts);
        let blas = simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, 128, 128, 512, &opts);
        assert!(camp.correct && blas.correct);
        assert!(
            camp.stats.cycles * 2 < blas.stats.cycles,
            "CAMP ({}) should clearly beat OpenBLAS ({})",
            camp.stats.cycles,
            blas.stats.cycles
        );
    }

    #[test]
    fn camp4_uses_fewer_instructions_than_camp8() {
        let opts = GemmOptions::default();
        let c8 = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 64, 64, 512, &opts);
        let c4 = simulate_gemm(CoreConfig::a64fx(), Method::Camp4, 64, 64, 512, &opts);
        assert!(c4.correct && c8.correct);
        assert!(
            c4.stats.insts < c8.stats.insts,
            "camp4 {} insts vs camp8 {}",
            c4.stats.insts,
            c8.stats.insts
        );
        assert!(c4.stats.cycles < c8.stats.cycles);
    }

    #[test]
    fn clamping_kicks_in() {
        let opts = GemmOptions { mac_budget: 1_000_000, verify: false, ..GemmOptions::default() };
        let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 1024, 1024, 1024, &opts);
        assert!(r.clamped);
        assert!((r.m * r.n * r.k) as u64 <= 2_000_000);
    }

    #[test]
    fn multi_block_k_accumulates_correctly() {
        // kp > kc forces C read-modify-write across k blocks
        let opts = GemmOptions { blocking: Some((32, 64, 32)), ..GemmOptions::default() };
        let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 32, 32, 96, &opts);
        assert!(r.correct);
        let r = simulate_gemm(CoreConfig::a64fx(), Method::HandvInt32, 32, 32, 96, &opts);
        assert!(r.correct);
    }
}
