//! Host-side blocked-GeMM driver: a single generic skeleton over the
//! kernel-dispatch layer, decomposed into independent block units.
//!
//! The driver owns what is common to every method — dimension clamping
//! and padding, memory layout, operand staging, the GotoBLAS loop nest
//! (via [`crate::loops`]), macro-kernel invocation and verification —
//! and consumes a [`crate::dispatch::MicroKernel`] descriptor for everything
//! kernel-specific. It contains no per-method tables: adding a kernel
//! touches only [`crate::dispatch`].
//!
//! # Parallel decomposition
//!
//! A simulated GeMM is decomposed into one *unit* per (jc, pc) block of
//! the blocked loops. Each unit runs on its **own** [`Simulator`]
//! instance (own machine memory, own cache state): it packs its B
//! block, then walks every row strip (pack A + macro-kernel) of that
//! block, and finally hands back its [`SimStats`] and its partial-C
//! contribution. Units are scheduled through a [`SimScheduler`] — the
//! serial default runs them in order on the calling thread; `camp-core`
//! implements the trait for its persistent `WorkerPool`, which runs the
//! same units concurrently.
//!
//! Because every unit is deterministic and owns all of its state, the
//! decomposition — not the thread count — defines the result:
//! `simulate_gemm` with one scheduler thread is **bit-identical**
//! (stats and output) to any other thread count. Partial C blocks merge
//! on the host in a fixed order (depth-ascending per column strip, the
//! order the serial read-modify-write would apply them), and stats
//! merge deterministically: depth blocks of one column strip chain
//! **sequentially** ([`SimStats::merge`] — they are serialized by the C
//! dependency), independent column strips — the *lanes* — merge **in
//! parallel** ([`SimStats::merge_parallel`]: cycles max, work summed).
//! See `docs/SIMULATOR.md` for the full contract.
//!
//! [`simulate_gemm_batch`] extends the same machinery across many
//! [`GemmProblem`] descriptors (each batch item is one more parallel
//! lane) with B-operand deduplication mirrored from [`crate::batch`]:
//! problems sharing one weight matrix simulate its packing once, and
//! the packed image is re-staged for the other problems' units.

use crate::batch::GemmProblem;
use crate::dispatch::{AccKind, ElemKind, KernelGeometry, PackBCtx, RUN_BUDGET};
use crate::loops::{for_each_b_block, for_each_row_strip, BlockPlan, BlockSink};
use crate::reference::{gemm_f32_ref, gemm_i32_ref, gemm_i8_wrapping_ref, SplitMix64};
use crate::weights::DType;
use crate::workspace::Workspace;
use camp_isa::inst::Program;
use camp_isa::reg::S;
use camp_pipeline::{CoreConfig, CoreKind, SimStats, Simulator};
use std::collections::HashMap;

pub use crate::dispatch::Method;

/// Options for [`simulate_gemm`].
#[derive(Debug, Clone, Copy)]
pub struct GemmOptions {
    /// Workload RNG seed.
    pub seed: u64,
    /// Maximum m·n·k the simulator will run exactly; larger problems are
    /// clamped structure-preservingly (all methods identically, so
    /// normalized metrics are unaffected).
    pub mac_budget: u64,
    /// Cache-blocking override (mc, nc, kc); defaults depend on the core.
    pub blocking: Option<(usize, usize, usize)>,
    /// Verify results against the host reference.
    pub verify: bool,
}

impl Default for GemmOptions {
    fn default() -> Self {
        GemmOptions { seed: 0xC0FF_EE00, mac_budget: 48_000_000, blocking: None, verify: true }
    }
}

// ---- scheduling -----------------------------------------------------------

/// One borrowed block-unit job: the driver owns everything it captures
/// for `'env`, and the scheduler guarantees it has finished before
/// [`SimScheduler::run_jobs`] returns.
pub type SimJob<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Where the driver's independent block units execute.
///
/// The contract is the `std::thread::scope` guarantee: every job has
/// finished (not merely been queued) when `run_jobs` returns, so jobs
/// may borrow from the caller's stack. `camp-core` implements this for
/// its persistent `WorkerPool` (the same pool the host engine computes
/// on), which is how the benches run paper sweeps with `--sim-threads N`.
pub trait SimScheduler: Sync {
    /// Execute every job to completion, in any order or interleaving.
    fn run_jobs<'env>(&self, jobs: Vec<SimJob<'env>>);
}

/// The default scheduler: runs units one after another on the calling
/// thread. Results are bit-identical to any parallel scheduler because
/// units are deterministic and merged in a fixed order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialScheduler;

impl SimScheduler for SerialScheduler {
    fn run_jobs<'env>(&self, jobs: Vec<SimJob<'env>>) {
        for job in jobs {
            job();
        }
    }
}

// ---- results --------------------------------------------------------------

/// The C matrix a simulated GeMM produced, in the accumulator type of
/// the kernel that ran ([`AccKind`]); row-major over the padded
/// `m × n` of the [`GemmResult`] that carries it.
#[derive(Debug, Clone, PartialEq)]
pub enum CMatrix {
    /// Wrapping 8-bit accumulation (the overflow-unsafe baseline).
    I8(Vec<i8>),
    /// 32-bit integer accumulation.
    I32(Vec<i32>),
    /// f32 accumulation.
    F32(Vec<f32>),
}

impl CMatrix {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            CMatrix::I8(v) => v.len(),
            CMatrix::I32(v) => v.len(),
            CMatrix::F32(v) => v.len(),
        }
    }

    /// True when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn zeros(acc: AccKind, len: usize) -> Self {
        match acc {
            AccKind::I8Wrapping => CMatrix::I8(vec![0; len]),
            AccKind::I32 => CMatrix::I32(vec![0; len]),
            AccKind::F32 => CMatrix::F32(vec![0.0; len]),
        }
    }

    /// Accumulate a unit's partial contribution (`mp × ncb`, columns
    /// `[jc, jc + ncb)`) into this full `mp × np` matrix. Integer
    /// accumulation wraps (matching the kernels); f32 partials are
    /// applied in the caller's order — depth-ascending, the order the
    /// serial read-modify-write applies them.
    fn accumulate(&mut self, part: &CMatrix, np: usize, jc: usize, ncb: usize) {
        match (self, part) {
            (CMatrix::I8(dst), CMatrix::I8(src)) => {
                for (i, row) in src.chunks_exact(ncb).enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        let d = &mut dst[i * np + jc + j];
                        *d = d.wrapping_add(v);
                    }
                }
            }
            (CMatrix::I32(dst), CMatrix::I32(src)) => {
                for (i, row) in src.chunks_exact(ncb).enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        let d = &mut dst[i * np + jc + j];
                        *d = d.wrapping_add(v);
                    }
                }
            }
            (CMatrix::F32(dst), CMatrix::F32(src)) => {
                for (i, row) in src.chunks_exact(ncb).enumerate() {
                    for (j, &v) in row.iter().enumerate() {
                        dst[i * np + jc + j] += v;
                    }
                }
            }
            _ => unreachable!("accumulator kinds of one GeMM cannot differ"),
        }
    }
}

/// Result of one simulated GeMM.
#[derive(Debug, Clone)]
pub struct GemmResult {
    /// Merged pipeline/cache statistics: `cycles` is the
    /// max-across-lanes parallel model, every other field is the summed
    /// work of all blocks (see [`SimStats::merge_parallel`]).
    pub stats: SimStats,
    /// The computed C matrix (padded `m × n`, row-major).
    pub c: CMatrix,
    /// True if the simulated result matched the host reference (always
    /// true when verification is disabled).
    pub correct: bool,
    /// Simulated dimensions after clamping and tile padding.
    pub m: usize,
    /// Simulated n.
    pub n: usize,
    /// Simulated k.
    pub k: usize,
    /// True if the requested problem was clamped to fit the MAC budget.
    pub clamped: bool,
    /// Independent column-strip lanes the stats model merged across
    /// (1 for problems that fit one nc strip).
    pub lanes: usize,
    /// Cycles of a fully serialized run: the sum over every lane, i.e.
    /// what one core executing all blocks back to back would take. The
    /// single-core number the paper's absolute figures use.
    pub serial_cycles: u64,
    /// Effective GOPS of the parallel model at the core's clock
    /// (2 ops per MAC, `stats.cycles` wall-clock).
    pub gops: f64,
    /// Effective GOPS of one core running every block serially
    /// (`serial_cycles` wall-clock) — comparable to the paper's
    /// single-core numbers.
    pub serial_gops: f64,
}

impl GemmResult {
    /// Reframe the result to the **single-core** view: `stats.cycles`
    /// becomes [`GemmResult::serial_cycles`] (every block back to back
    /// on one core) and `gops` becomes
    /// [`GemmResult::serial_gops`]. Every other stats field is a
    /// schedule-independent work count and is unchanged, as are the
    /// output bits. The figure harnesses report this view — the paper
    /// measures single cores — while the default fields model the
    /// parallel lane cluster (see `docs/SIMULATOR.md`).
    pub fn into_single_core(mut self) -> GemmResult {
        self.stats.cycles = self.serial_cycles;
        self.gops = self.serial_gops;
        self
    }
}

/// Result of one [`simulate_gemm_batch`] call.
#[derive(Debug, Clone)]
pub struct SimBatchResult {
    /// One [`GemmResult`] per input problem, in input order. Each is
    /// bit-identical to what a standalone [`simulate_gemm`]-style run
    /// of that problem produces (B-dedup changes only pack accounting).
    pub results: Vec<GemmResult>,
    /// Batch-merged statistics: every batch item is one more parallel
    /// lane (`cycles` max across items, work summed).
    pub stats: SimStats,
}

fn clamp_dims(
    mut m: usize,
    mut n: usize,
    mut k: usize,
    budget: u64,
) -> (usize, usize, usize, bool) {
    let mut clamped = false;
    while (m as u64) * (n as u64) * (k as u64) > budget {
        if m >= n && m >= k && m > 16 {
            m /= 2;
        } else if n >= k && n > 16 {
            n /= 2;
        } else if k > 16 {
            k /= 2;
        } else {
            break;
        }
        clamped = true;
    }
    (m, n, k, clamped)
}

struct Buffers {
    a_base: u64,
    b_base: u64,
    c_base: u64,
    apack: u64,
    bpack: u64,
    scratch: u64,
    total: u64,
}

fn layout(geo: &KernelGeometry, plan: &BlockPlan) -> Buffers {
    let mut w = Workspace::new();
    let a_base = w.alloc(geo.elem.row_bytes(plan.mp * plan.kp) as u64, 64);
    let b_base = w.alloc(geo.elem.row_bytes(plan.kp * plan.np) as u64, 64);
    let c_base = w.alloc((plan.mp * plan.np * geo.acc.c_elem_bytes()) as u64, 64);
    let apack = w.alloc((plan.mc / geo.mr * geo.a_panel_bytes(plan.kc)) as u64, 64);
    let bpack = w.alloc((plan.nc / geo.nr * geo.b_panel_bytes(plan.kc)) as u64, 64);
    let scratch = w.alloc(64, 64);
    let total = w.total() + 4096;
    Buffers { a_base, b_base, c_base, apack, bpack, scratch, total }
}

/// Pack 4-bit values two per byte, low nibble first (the layout the
/// `camp.s4` load path expects). An odd trailing element occupies the
/// low nibble of a final byte whose high nibble is zero. Dispatches
/// through the detected [`crate::host::HostKernel`]'s vectorized
/// packer; byte-identical to [`crate::host::scalar::pack_nibbles`] on
/// every tier.
pub(crate) fn pack_nibbles(vals: &[i8]) -> Vec<i8> {
    crate::host::HostKernel::detect().pack_nibbles(vals)
}

/// Stage only the A elements a (pc, kcb) unit reads — k-columns
/// `[pc, pc + kcb)` of every row — at the addresses they would occupy
/// in a fully staged operand, so programs see identical pointers.
/// Staging writes machine memory directly (it never touches the cache
/// model), so partial staging is invisible to the simulated stats;
/// it only removes redundant host-side setup work per unit.
fn stage_a_unit(
    sim: &mut Simulator,
    geo: &KernelGeometry,
    bufs: &Buffers,
    a: &[i8],
    plan: &BlockPlan,
    spec: UnitSpec,
) {
    for i in 0..plan.mp {
        let row = i * plan.kp;
        stage_range(sim, geo.elem, bufs.a_base, a, row + spec.pc, row + spec.pc + spec.kcb);
    }
}

/// Stage only the B rows a (pc, kcb) unit reads — k-rows
/// `[pc, pc + kcb)`, a contiguous row-major span. Skipped entirely for
/// batch units that consume a pre-packed B image ([`simulate_unit`]
/// stages that directly into the pack buffer).
fn stage_b_unit(
    sim: &mut Simulator,
    geo: &KernelGeometry,
    bufs: &Buffers,
    b: &[i8],
    plan: &BlockPlan,
    spec: UnitSpec,
) {
    stage_range(sim, geo.elem, bufs.b_base, b, spec.pc * plan.np, (spec.pc + spec.kcb) * plan.np);
}

/// Write elements `[start, end)` of a row-major matrix into simulated
/// memory in the kernel's storage format, at the same addresses a full
/// staging would have used. For nibble-packed data, `start` must be
/// even (block boundaries always are: pc is a k-unit multiple and np a
/// tile multiple, both even for the i4 kernels) so the range begins on
/// a byte boundary.
fn stage_range(
    sim: &mut Simulator,
    elem: ElemKind,
    base: u64,
    vals: &[i8],
    start: usize,
    end: usize,
) {
    let mm = sim.machine_mut();
    match elem {
        ElemKind::I4Nibble => {
            // 4-bit data lives nibble-packed in main memory (two values
            // per byte, row-major), as a quantized deployment stores it.
            debug_assert_eq!(start % 2, 0, "nibble staging must start on a byte boundary");
            let byte0 = (start / 2) as u64;
            for (i, &byte) in pack_nibbles(&vals[start..end]).iter().enumerate() {
                mm.write_i8(base + byte0 + i as u64, byte);
            }
        }
        ElemKind::I8 => {
            for (i, &v) in vals[start..end].iter().enumerate() {
                mm.write_i8(base + (start + i) as u64, v);
            }
        }
        ElemKind::F32 => {
            for (i, &v) in vals[start..end].iter().enumerate() {
                mm.write_f32(base + (start + i) as u64 * 4, v as f32);
            }
        }
        ElemKind::I32 => {
            for (i, &v) in vals[start..end].iter().enumerate() {
                mm.write_i32(base + (start + i) as u64 * 4, v as i32);
            }
        }
    }
}

/// The simulation backend of the shared loop skeleton: packs blocks and
/// runs macro-kernels as simulated programs against one persistent
/// machine + cache state (one per block unit in the parallel
/// decomposition).
struct SimBackend {
    sim: Simulator,
    geo: KernelGeometry,
    bufs: Buffers,
    lda: u64,
    ldb: u64,
    ldc: u64,
    macro_prog: Program,
    pack_a: crate::dispatch::PackAPlan,
    pack_b: crate::dispatch::BPacker,
}

impl SimBackend {
    /// Source bytes covering `cols` k-columns of A.
    fn a_col_bytes(&self, cols: usize) -> u64 {
        self.geo.elem.row_bytes(cols) as u64
    }

    fn set_a_row_ptrs(&mut self, ic: usize, panel: usize, pc: usize, col_off: u64) {
        let mr = self.geo.mr;
        let base_col = self.a_col_bytes(pc);
        let mm = self.sim.machine_mut();
        for r in 0..mr as u8 {
            mm.set_x(
                S(20 + r),
                self.bufs.a_base
                    + (ic + panel * mr + r as usize) as u64 * self.lda
                    + base_col
                    + col_off,
            );
        }
    }
}

impl BlockSink for SimBackend {
    fn pack_b(&mut self, jc: usize, ncb: usize, pc: usize, kcb: usize) {
        let ctx = PackBCtx {
            b_base: self.bufs.b_base,
            bpack: self.bufs.bpack,
            ldb: self.ldb,
            jc,
            ncb,
            pc,
            kcb,
        };
        (self.pack_b)(&mut self.sim, &ctx);
    }

    fn pack_a(&mut self, ic: usize, mcb: usize, pc: usize, kcb: usize) {
        let per_kcol = self.geo.a_panel_bytes_per_kcol();
        for p in 0..mcb / self.geo.mr {
            let dst = self.bufs.apack + (p * self.geo.a_panel_bytes(kcb)) as u64;
            // vectorized bulk pass over whole chunks, as optimized BLAS
            // packs do ...
            let mut done_cols = 0usize;
            let cols_per_chunk = self.pack_a.vector.as_ref().map(|&(_, c)| c);
            if let Some(cols_per_chunk) = cols_per_chunk {
                let chunks = kcb / cols_per_chunk;
                if chunks > 0 {
                    self.set_a_row_ptrs(ic, p, pc, 0);
                    let mm = self.sim.machine_mut();
                    mm.set_x(S(11), dst);
                    mm.set_x(S(12), chunks as u64);
                    let (vec_prog, _) = self.pack_a.vector.as_ref().expect("vector plan present");
                    self.sim.run(vec_prog, RUN_BUDGET).expect("pack A (vector)");
                    done_cols = chunks * cols_per_chunk;
                }
            }
            // ... then the scalar gather covers the sub-chunk tail
            let tail = kcb - done_cols;
            if tail > 0 {
                let col_off = self.a_col_bytes(done_cols);
                self.set_a_row_ptrs(ic, p, pc, col_off);
                let mm = self.sim.machine_mut();
                mm.set_x(S(11), dst + (done_cols * per_kcol) as u64);
                mm.set_x(S(12), (tail / self.pack_a.scalar_cols_per_iter) as u64);
                self.sim.run(&self.pack_a.scalar, RUN_BUDGET).expect("pack A (tail)");
            }
        }
    }

    fn macro_kernel(
        &mut self,
        ic: usize,
        mcb: usize,
        jc: usize,
        ncb: usize,
        _pc: usize,
        kcb: usize,
    ) {
        let geo = &self.geo;
        let mm = self.sim.machine_mut();
        mm.set_x(S(1), self.bufs.apack);
        mm.set_x(S(2), self.bufs.bpack);
        mm.set_x(
            S(3),
            self.bufs.c_base + ic as u64 * self.ldc + (jc * geo.acc.c_elem_bytes()) as u64,
        );
        // one macro k-iteration consumes k_unit values (k-step × unroll)
        mm.set_x(S(4), (kcb / geo.k_unit) as u64);
        mm.set_x(S(5), (mcb / geo.mr) as u64);
        mm.set_x(S(6), (ncb / geo.nr) as u64);
        mm.set_x(S(7), self.ldc);
        mm.set_x(S(8), geo.b_panel_bytes(kcb) as u64);
        mm.set_x(S(9), geo.a_panel_bytes(kcb) as u64);
        mm.set_x(S(30), self.bufs.scratch);
        self.sim.run(&self.macro_prog, RUN_BUDGET).expect("macro kernel");
    }
}

// ---- the block-unit decomposition -----------------------------------------

/// One independent work unit of the decomposition: a (jc, pc) block of
/// the blocked loops, tagged with the column-strip lane it belongs to.
#[derive(Debug, Clone, Copy)]
struct UnitSpec {
    /// Column-strip index (the parallel lane of the stats model).
    lane: usize,
    jc: usize,
    ncb: usize,
    pc: usize,
    kcb: usize,
}

/// What one unit hands back to the merge.
struct UnitOut {
    stats: SimStats,
    /// `mp × ncb` partial contribution to columns `[jc, jc + ncb)`.
    c: CMatrix,
    /// Raw packed-B image of this block, snapshotted when another batch
    /// problem shares the operand and will consume it pre-packed.
    packed_b: Option<Vec<u8>>,
}

/// Enumerate the plan's (jc, pc) units in the blocked loops' visit
/// order (jc outer, pc inner), tagging each with its lane. Units of one
/// lane appear depth-ascending — the order their partial C and stats
/// are chained in the merge.
fn unit_specs(plan: &BlockPlan) -> Vec<UnitSpec> {
    let mut specs = Vec::new();
    let mut lane = 0usize;
    let mut last_jc = None;
    for_each_b_block(plan, |jc, ncb, pc, kcb| {
        if last_jc.is_some() && last_jc != Some(jc) {
            lane += 1;
        }
        last_jc = Some(jc);
        specs.push(UnitSpec { lane, jc, ncb, pc, kcb });
    });
    specs
}

/// Packed-B bytes of one (ncb × kcb) block: `ncb / nr` panels of
/// `b_panel_bytes(kcb)` each.
fn bpack_block_bytes(geo: &KernelGeometry, ncb: usize, kcb: usize) -> usize {
    ncb / geo.nr * geo.b_panel_bytes(kcb)
}

/// Read the unit's C columns `[jc, jc + ncb)` out of simulated memory.
fn extract_c(
    sim: &Simulator,
    acc: AccKind,
    c_base: u64,
    ldc: u64,
    mp: usize,
    jc: usize,
    ncb: usize,
) -> CMatrix {
    let machine = sim.machine();
    let mut out = CMatrix::zeros(acc, mp * ncb);
    match &mut out {
        CMatrix::I8(v) => {
            for i in 0..mp {
                for j in 0..ncb {
                    v[i * ncb + j] = machine.read_i8(c_base + i as u64 * ldc + (jc + j) as u64);
                }
            }
        }
        CMatrix::I32(v) => {
            for i in 0..mp {
                for j in 0..ncb {
                    v[i * ncb + j] =
                        machine.read_i32(c_base + i as u64 * ldc + ((jc + j) * 4) as u64);
                }
            }
        }
        CMatrix::F32(v) => {
            for i in 0..mp {
                for j in 0..ncb {
                    v[i * ncb + j] =
                        machine.read_f32(c_base + i as u64 * ldc + ((jc + j) * 4) as u64);
                }
            }
        }
    }
    out
}

/// Simulate one (jc, pc) block unit on a fresh [`Simulator`]: stage the
/// operands, pack B (or pre-stage `prepacked_b`, the dedup path), then
/// pack A and run the macro-kernel for every row strip. Deterministic
/// and self-contained — the parallel driver's unit of scheduling.
#[allow(clippy::too_many_arguments)]
fn simulate_unit(
    core: CoreConfig,
    method: Method,
    plan: &BlockPlan,
    a_host: &[i8],
    b_host: &[i8],
    spec: UnitSpec,
    prepacked_b: Option<&[u8]>,
    snapshot_b: bool,
) -> UnitOut {
    let kernel = method.dispatcher();
    let geo = kernel.geometry();
    let bufs = layout(&geo, plan);
    let mut sim = Simulator::new(core, bufs.total as usize);
    stage_a_unit(&mut sim, &geo, &bufs, a_host, plan, spec);
    if prepacked_b.is_none() {
        stage_b_unit(&mut sim, &geo, &bufs, b_host, plan, spec);
    }
    let mut backend = SimBackend {
        sim,
        geo,
        lda: geo.elem.row_bytes(plan.kp) as u64,
        ldb: geo.elem.row_bytes(plan.np) as u64,
        ldc: (plan.np * geo.acc.c_elem_bytes()) as u64,
        macro_prog: kernel.macro_program(),
        pack_a: kernel.pack_a_plan(),
        pack_b: kernel.pack_b_packer(),
        bufs,
    };
    let block_bytes = bpack_block_bytes(&geo, spec.ncb, spec.kcb);
    match prepacked_b {
        // dedup path: the packed image another unit produced is staged
        // directly; this unit pays no B-pack instructions
        Some(img) => {
            debug_assert_eq!(img.len(), block_bytes, "pre-packed B image size mismatch");
            backend.sim.machine_mut().write_bytes(backend.bufs.bpack, img);
        }
        None => backend.pack_b(spec.jc, spec.ncb, spec.pc, spec.kcb),
    }
    for_each_row_strip(plan, |ic, mcb| {
        backend.pack_a(ic, mcb, spec.pc, spec.kcb);
        backend.macro_kernel(ic, mcb, spec.jc, spec.ncb, spec.pc, spec.kcb);
    });
    let packed_b =
        snapshot_b.then(|| backend.sim.machine().mem(backend.bufs.bpack, block_bytes).to_vec());
    let c = extract_c(
        &backend.sim,
        geo.acc,
        backend.bufs.c_base,
        backend.ldc,
        plan.mp,
        spec.jc,
        spec.ncb,
    );
    UnitOut { stats: *backend.sim.stats(), c, packed_b }
}

// ---- problems -------------------------------------------------------------

/// One fully planned problem: padded operands, block plan and unit
/// list, plus its role in batch B-deduplication.
struct ProblemCtx {
    method: Method,
    plan: BlockPlan,
    /// Padded `mp × kp` A, row-major.
    a_host: Vec<i8>,
    /// Padded `kp × np` B, row-major (kept even on the dedup path: the
    /// host reference verifies against it).
    b_host: Vec<i8>,
    specs: Vec<UnitSpec>,
    lanes: usize,
    clamped: bool,
    /// `Some(i)`: reuse problem `i`'s simulated pack-B images.
    owner: Option<usize>,
    /// Another problem reuses this problem's pack-B images: snapshot
    /// them.
    share_b: bool,
    degenerate: bool,
}

fn block_plan_for(
    core: CoreConfig,
    method: Method,
    m: usize,
    n: usize,
    k: usize,
    opts: &GemmOptions,
) -> BlockPlan {
    let kernel = method.dispatcher();
    let geo = kernel.geometry();
    let blocking = opts.blocking.unwrap_or_else(|| {
        let kc = kernel.default_kc(core.kind);
        match core.kind {
            CoreKind::InOrder => (64, 128, kc),
            CoreKind::OutOfOrder => (128, 512, kc),
        }
    });
    BlockPlan::new(m, n, k, geo.mr, geo.nr, geo.k_unit, blocking)
}

fn degenerate_ctx(method: Method) -> ProblemCtx {
    ProblemCtx {
        method,
        plan: BlockPlan::new(0, 0, 0, 1, 1, 1, (1, 1, 1)),
        a_host: Vec::new(),
        b_host: Vec::new(),
        specs: Vec::new(),
        lanes: 0,
        clamped: false,
        owner: None,
        share_b: false,
        degenerate: true,
    }
}

fn ctx_from_plan(
    method: Method,
    plan: BlockPlan,
    a_host: Vec<i8>,
    b_host: Vec<i8>,
    clamped: bool,
) -> ProblemCtx {
    let specs = unit_specs(&plan);
    let lanes = specs.last().map_or(0, |s| s.lane + 1);
    ProblemCtx {
        method,
        plan,
        a_host,
        b_host,
        specs,
        lanes,
        clamped,
        owner: None,
        share_b: false,
        degenerate: false,
    }
}

/// Plan a seeded-random problem (the figure harness workload): same RNG
/// stream as every prior revision of the driver, padded into the plan.
fn rng_ctx(
    core: CoreConfig,
    method: Method,
    m: usize,
    n: usize,
    k: usize,
    opts: &GemmOptions,
) -> ProblemCtx {
    if m == 0 || n == 0 || k == 0 {
        return degenerate_ctx(method);
    }
    let (m, n, k, clamped) = clamp_dims(m, n, k, opts.mac_budget);
    let plan = block_plan_for(core, method, m, n, k, opts);
    let (mp, np, kp) = (plan.mp, plan.np, plan.kp);
    let mut rng = SplitMix64::new(opts.seed);
    let mut a_host = vec![0i8; mp * kp];
    for i in 0..m {
        for l in 0..k {
            a_host[i * kp + l] = rng.next_i8(-8, 7);
        }
    }
    let mut b_host = vec![0i8; kp * np];
    for l in 0..k {
        for j in 0..n {
            b_host[l * np + j] = rng.next_i8(-8, 7);
        }
    }
    ctx_from_plan(method, plan, a_host, b_host, clamped)
}

/// Plan one batch problem from its [`GemmProblem`] descriptor: the
/// problem's own operands (not RNG), the camp kernel its dtype selects,
/// clamped to the MAC budget like any simulated problem.
fn problem_ctx(core: CoreConfig, p: &GemmProblem<'_>, opts: &GemmOptions) -> ProblemCtx {
    assert!(
        p.handle.is_none(),
        "simulate_gemm_batch needs borrowed B operands; WeightHandle problems \
         are a host-engine feature"
    );
    let method = Method::for_dtype(p.dtype);
    if p.is_degenerate() {
        return degenerate_ctx(method);
    }
    assert_eq!(p.a.len(), p.m * p.k, "A must be m×k");
    assert_eq!(p.b.len(), p.k * p.n, "B must be k×n");
    if p.dtype == DType::I4 {
        debug_assert!(
            p.a.iter().chain(p.b.iter()).all(|v| (-8..8).contains(v)),
            "i4 problems need operand values in [-8, 7]"
        );
    }
    let (m2, n2, k2, clamped) = clamp_dims(p.m, p.n, p.k, opts.mac_budget);
    let plan = block_plan_for(core, method, m2, n2, k2, opts);
    let (mp, np, kp) = (plan.mp, plan.np, plan.kp);
    let mut a_host = vec![0i8; mp * kp];
    for i in 0..m2 {
        a_host[i * kp..i * kp + k2].copy_from_slice(&p.a[i * p.k..i * p.k + k2]);
    }
    let mut b_host = vec![0i8; kp * np];
    for l in 0..k2 {
        b_host[l * np..l * np + n2].copy_from_slice(&p.b[l * p.n..l * p.n + n2]);
    }
    ctx_from_plan(method, plan, a_host, b_host, clamped)
}

/// Run every unit of every problem on `sched`: one wave for problems
/// that simulate their own B packing (snapshotting blocks other
/// problems share), then one wave for the dedup consumers. Within a
/// wave, all units of all problems are scheduled together, so batch
/// items parallelize even when each is a single unit.
///
/// The wave boundary is a global barrier: a dedup consumer waits for
/// *every* wave-1 unit, not just its owner's — a deliberate
/// simplicity/wall-clock tradeoff (the `SimScheduler` contract has no
/// completion dependencies). A dependency-aware scheduler that
/// releases consumers per owner is on the roadmap; results would be
/// identical either way.
fn run_ctxs(core: CoreConfig, ctxs: &[ProblemCtx], sched: &dyn SimScheduler) -> Vec<Vec<UnitOut>> {
    let mut outs: Vec<Vec<Option<UnitOut>>> =
        ctxs.iter().map(|c| (0..c.specs.len()).map(|_| None).collect()).collect();

    // wave 1: B owners (everything, in the non-batch case)
    {
        let mut jobs: Vec<SimJob<'_>> = Vec::new();
        for (ctx, row) in ctxs.iter().zip(outs.iter_mut()) {
            if ctx.owner.is_some() {
                continue;
            }
            for (spec, slot) in ctx.specs.iter().zip(row.iter_mut()) {
                let spec = *spec;
                jobs.push(Box::new(move || {
                    *slot = Some(simulate_unit(
                        core,
                        ctx.method,
                        &ctx.plan,
                        &ctx.a_host,
                        &ctx.b_host,
                        spec,
                        None,
                        ctx.share_b,
                    ));
                }));
            }
        }
        sched.run_jobs(jobs);
    }

    // collect the snapshots dedup consumers re-stage
    let mut snapshots: HashMap<usize, Vec<Option<Vec<u8>>>> = HashMap::new();
    for (i, (ctx, row)) in ctxs.iter().zip(outs.iter_mut()).enumerate() {
        if ctx.share_b {
            let snaps = row
                .iter_mut()
                .map(|o| o.as_mut().expect("owner unit ran").packed_b.take())
                .collect();
            snapshots.insert(i, snaps);
        }
    }

    // wave 2: dedup consumers, pack-B replaced by the owner's image
    {
        let mut jobs: Vec<SimJob<'_>> = Vec::new();
        for (ctx, row) in ctxs.iter().zip(outs.iter_mut()) {
            let Some(owner) = ctx.owner else { continue };
            let snaps = &snapshots[&owner];
            for ((u, spec), slot) in ctx.specs.iter().enumerate().zip(row.iter_mut()) {
                let spec = *spec;
                let pre = snaps[u].as_deref().expect("owner snapshotted every block");
                jobs.push(Box::new(move || {
                    *slot = Some(simulate_unit(
                        core,
                        ctx.method,
                        &ctx.plan,
                        &ctx.a_host,
                        &ctx.b_host,
                        spec,
                        Some(pre),
                        false,
                    ));
                }));
            }
        }
        sched.run_jobs(jobs);
    }

    outs.into_iter()
        .map(|row| row.into_iter().map(|o| o.expect("every unit job ran")).collect())
        .collect()
}

/// Merge a problem's unit outputs into its [`GemmResult`]: partial C
/// blocks fold depth-ascending per column strip, lane stats chain
/// sequentially within a strip and merge in parallel across strips.
fn finish_problem(core: CoreConfig, ctx: &ProblemCtx, outs: Vec<UnitOut>) -> GemmResult {
    let geo = ctx.method.dispatcher().geometry();
    if ctx.degenerate {
        return GemmResult {
            stats: SimStats::default(),
            c: CMatrix::zeros(geo.acc, 0),
            correct: true,
            m: 0,
            n: 0,
            k: 0,
            clamped: false,
            lanes: 0,
            serial_cycles: 0,
            gops: 0.0,
            serial_gops: 0.0,
        };
    }
    let plan = &ctx.plan;
    let mut lane_stats = vec![SimStats::default(); ctx.lanes];
    let mut c = CMatrix::zeros(geo.acc, plan.mp * plan.np);
    for (spec, out) in ctx.specs.iter().zip(&outs) {
        // depth blocks of one strip are serialized by the C dependency
        lane_stats[spec.lane].merge(&out.stats);
        c.accumulate(&out.c, plan.np, spec.jc, spec.ncb);
    }
    let mut stats = SimStats::default();
    for ls in &lane_stats {
        stats.merge_parallel(ls);
    }
    let serial_cycles: u64 = lane_stats.iter().map(|s| s.cycles).sum();
    let gops = stats.gops(core.freq_ghz);
    let serial_gops = if serial_cycles == 0 {
        0.0
    } else {
        2.0 * stats.macs as f64 / serial_cycles as f64 * core.freq_ghz
    };
    GemmResult {
        stats,
        correct: true, // verification is layered on by the caller
        c,
        m: plan.mp,
        n: plan.np,
        k: plan.kp,
        clamped: ctx.clamped,
        lanes: ctx.lanes,
        serial_cycles,
        gops,
        serial_gops,
    }
}

fn verify_host(ctx: &ProblemCtx, result: &mut GemmResult) {
    let geo = ctx.method.dispatcher().geometry();
    let (mp, np, kp) = (ctx.plan.mp, ctx.plan.np, ctx.plan.kp);
    result.correct = match (&result.c, geo.acc) {
        (CMatrix::I8(c), AccKind::I8Wrapping) => {
            *c == gemm_i8_wrapping_ref(mp, np, kp, &ctx.a_host, &ctx.b_host)
        }
        (CMatrix::I32(c), AccKind::I32) => *c == gemm_i32_ref(mp, np, kp, &ctx.a_host, &ctx.b_host),
        (CMatrix::F32(c), AccKind::F32) => {
            let af: Vec<f32> = ctx.a_host.iter().map(|&v| v as f32).collect();
            let bf: Vec<f32> = ctx.b_host.iter().map(|&v| v as f32).collect();
            *c == gemm_f32_ref(mp, np, kp, &af, &bf)
        }
        _ => false,
    };
}

// ---- public entry points --------------------------------------------------

/// Simulate one blocked GeMM of `method` on `core` for an m×n×k problem
/// on the serial scheduler — see [`simulate_gemm_on`].
pub fn simulate_gemm(
    core: CoreConfig,
    method: Method,
    m: usize,
    n: usize,
    k: usize,
    opts: &GemmOptions,
) -> GemmResult {
    simulate_gemm_on(core, method, m, n, k, opts, &SerialScheduler)
}

/// Simulate one blocked GeMM of `method` on `core` for an m×n×k
/// problem, scheduling its independent (jc, pc) block units on `sched`.
///
/// Returns merged statistics, the computed [`CMatrix`] and a
/// correctness verdict against the host reference. The result — output
/// bits and every stats field — is **independent of the scheduler**:
/// units are deterministic, self-contained simulations merged in a
/// fixed order (property-tested across all seven methods). Problems
/// larger than `opts.mac_budget` MACs are clamped (identically for
/// every method). Zero-dimension problems are degenerate, not an error:
/// they return an all-zero [`GemmResult`] (no simulated work),
/// consistent with the host engine's empty result.
///
/// # Panics
/// Panics if the simulated machine faults (a bug in the kernels — every
/// kernel is covered by tests).
pub fn simulate_gemm_on(
    core: CoreConfig,
    method: Method,
    m: usize,
    n: usize,
    k: usize,
    opts: &GemmOptions,
    sched: &dyn SimScheduler,
) -> GemmResult {
    let ctx = rng_ctx(core, method, m, n, k, opts);
    let ctxs = [ctx];
    let outs = run_ctxs(core, &ctxs, sched).pop().expect("one problem in, one out");
    let mut result = finish_problem(core, &ctxs[0], outs);
    if opts.verify && !ctxs[0].degenerate {
        verify_host(&ctxs[0], &mut result);
    }
    result
}

/// Simulate a batch of GeMMs described by the same [`GemmProblem`]
/// descriptors the host engine consumes, on the serial scheduler — see
/// [`simulate_gemm_batch_on`].
pub fn simulate_gemm_batch(
    core: CoreConfig,
    problems: &[GemmProblem<'_>],
    opts: &GemmOptions,
) -> SimBatchResult {
    simulate_gemm_batch_on(core, problems, opts, &SerialScheduler)
}

/// Simulate a batch of GeMMs over their **own** operands (not the
/// seeded RNG workload): each problem runs under the camp kernel its
/// [`DType`] selects (mirroring `CampBackend::execute_batch`), every
/// problem — and every (jc, pc) block within it — is an independent
/// unit on `sched`, and problems sharing one B operand
/// ([`GemmProblem::b_key`] identity, post-clamp) simulate its packing
/// **once**: the packed image is re-staged for the other problems'
/// units, which therefore pay no B-pack instructions — the simulated
/// mirror of the host batch's B deduplication.
///
/// Per-problem results are bit-identical to running each problem alone
/// (dedup changes only pack accounting); the batch [`SimStats`] treats
/// each problem as one more parallel lane. i4 problems need operand
/// values in [-8, 7], like the host engine's i4 kernel.
///
/// # Panics
/// Panics if a problem carries a [`crate::weights::WeightHandle`]
/// (simulation needs the raw B bytes) or mis-sized operands.
pub fn simulate_gemm_batch_on(
    core: CoreConfig,
    problems: &[GemmProblem<'_>],
    opts: &GemmOptions,
    sched: &dyn SimScheduler,
) -> SimBatchResult {
    let mut ctxs: Vec<ProblemCtx> = problems.iter().map(|p| problem_ctx(core, p, opts)).collect();

    // B dedup, mirroring crate::batch: same buffer + same packed shape
    // (post-clamp n/k and dtype) ⇒ same packed image
    let mut owner_of: HashMap<(usize, usize, usize, usize, DType), usize> = HashMap::new();
    for i in 0..ctxs.len() {
        if ctxs[i].degenerate {
            continue;
        }
        let p = &problems[i];
        let key = (p.b.as_ptr() as usize, p.b.len(), ctxs[i].plan.np, ctxs[i].plan.kp, p.dtype);
        match owner_of.get(&key) {
            Some(&owner) => {
                ctxs[i].owner = Some(owner);
                ctxs[owner].share_b = true;
            }
            None => {
                owner_of.insert(key, i);
            }
        }
    }

    let outs = run_ctxs(core, &ctxs, sched);
    let mut results = Vec::with_capacity(ctxs.len());
    for (ctx, out) in ctxs.iter().zip(outs) {
        let mut r = finish_problem(core, ctx, out);
        if opts.verify && !ctx.degenerate {
            verify_host(ctx, &mut r);
        }
        results.push(r);
    }
    let mut stats = SimStats::default();
    for r in &results {
        // each batch item is one more parallel lane
        stats.merge_parallel(&r.stats);
    }
    SimBatchResult { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(core: CoreConfig, method: Method, m: usize, n: usize, k: usize) -> GemmResult {
        let r = simulate_gemm(core, method, m, n, k, &GemmOptions::default());
        assert!(r.correct, "{} produced wrong results at {m}x{n}x{k}", method.name());
        assert!(r.stats.cycles > 0);
        r
    }

    #[test]
    fn camp8_correct_small() {
        check(CoreConfig::a64fx(), Method::Camp8, 16, 16, 32);
    }

    #[test]
    fn camp4_correct_small() {
        check(CoreConfig::a64fx(), Method::Camp4, 16, 16, 64);
    }

    #[test]
    fn handv_int32_correct_small() {
        check(CoreConfig::a64fx(), Method::HandvInt32, 16, 32, 16);
    }

    #[test]
    fn handv_int8_correct_small() {
        check(CoreConfig::a64fx(), Method::HandvInt8, 8, 64, 16);
    }

    #[test]
    fn gemmlowp_correct_small() {
        check(CoreConfig::a64fx(), Method::Gemmlowp, 8, 32, 16);
    }

    #[test]
    fn openblas_correct_small() {
        check(CoreConfig::a64fx(), Method::OpenblasF32, 16, 32, 8);
    }

    #[test]
    fn mmla_correct_small() {
        check(CoreConfig::a64fx(), Method::Mmla, 16, 16, 16);
    }

    #[test]
    fn all_methods_correct_on_edge_core() {
        for method in Method::all() {
            let r = simulate_gemm(
                CoreConfig::edge_riscv(),
                method,
                24,
                24,
                40,
                &GemmOptions::default(),
            );
            assert!(r.correct, "{} wrong on edge core", method.name());
        }
    }

    #[test]
    fn all_dispatchers_correct_on_ragged_shapes() {
        // m, n, k deliberately not multiples of any kernel's mr/nr/k_step;
        // verification inside simulate_gemm cross-checks every dispatcher
        // against gemm_i32_ref / gemm_i8_wrapping_ref / gemm_f32_ref.
        for (m, n, k) in [(5, 7, 19), (13, 3, 41), (9, 33, 27)] {
            for method in Method::all() {
                let r =
                    simulate_gemm(CoreConfig::a64fx(), method, m, n, k, &GemmOptions::default());
                assert!(r.correct, "{} wrong at ragged {m}x{n}x{k}", method.name());
                let geo = method.dispatcher().geometry();
                assert_eq!(r.m % geo.mr, 0);
                assert_eq!(r.n % geo.nr, 0);
                assert_eq!(r.k % geo.k_unit, 0);
            }
        }
    }

    #[test]
    fn ragged_dims_are_padded() {
        let r = check(CoreConfig::a64fx(), Method::Camp8, 5, 7, 19);
        assert_eq!(r.m, 8);
        assert_eq!(r.n, 8);
        assert_eq!(r.k, 128); // rounded to the unrolled k-unit
    }

    #[test]
    fn camp8_beats_openblas_at_paper_scale_k() {
        // The paper's CNN/LLM layers have k in the hundreds-to-thousands;
        // the CAMP advantage comes from the k-loop, so use a deep problem.
        let opts = GemmOptions::default();
        let camp = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 128, 128, 512, &opts);
        let blas = simulate_gemm(CoreConfig::a64fx(), Method::OpenblasF32, 128, 128, 512, &opts);
        assert!(camp.correct && blas.correct);
        assert!(
            camp.stats.cycles * 2 < blas.stats.cycles,
            "CAMP ({}) should clearly beat OpenBLAS ({})",
            camp.stats.cycles,
            blas.stats.cycles
        );
    }

    #[test]
    fn camp4_uses_fewer_instructions_than_camp8() {
        let opts = GemmOptions::default();
        let c8 = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 64, 64, 512, &opts);
        let c4 = simulate_gemm(CoreConfig::a64fx(), Method::Camp4, 64, 64, 512, &opts);
        assert!(c4.correct && c8.correct);
        assert!(
            c4.stats.insts < c8.stats.insts,
            "camp4 {} insts vs camp8 {}",
            c4.stats.insts,
            c8.stats.insts
        );
        assert!(c4.stats.cycles < c8.stats.cycles);
    }

    #[test]
    fn clamping_kicks_in() {
        let opts = GemmOptions { mac_budget: 1_000_000, verify: false, ..GemmOptions::default() };
        let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 1024, 1024, 1024, &opts);
        assert!(r.clamped);
        assert!((r.m * r.n * r.k) as u64 <= 2_000_000);
    }

    #[test]
    fn zero_dimension_returns_empty_result() {
        // zero-dim problems are degenerate, not a panic: no simulated
        // work, verdict trivially correct (matches the host engine)
        for (m, n, k) in [(0, 16, 16), (16, 0, 16), (16, 16, 0), (0, 0, 0)] {
            for method in [Method::Camp8, Method::Camp4, Method::OpenblasF32] {
                let r =
                    simulate_gemm(CoreConfig::a64fx(), method, m, n, k, &GemmOptions::default());
                assert!(r.correct, "{} at {m}x{n}x{k}", method.name());
                assert_eq!(r.stats.cycles, 0);
                assert_eq!(r.stats.insts, 0);
                assert_eq!((r.m, r.n, r.k), (0, 0, 0));
                assert!(!r.clamped);
                assert!(r.c.is_empty());
                assert_eq!(r.lanes, 0);
            }
        }
    }

    #[test]
    fn pack_nibbles_handles_odd_length() {
        // even: two values per byte, low nibble first
        assert_eq!(pack_nibbles(&[1, 2, 3, 4]), vec![0x21, 0x43]);
        // odd: the trailing element must survive in the low nibble
        let packed = pack_nibbles(&[1, 2, 3]);
        assert_eq!(packed, vec![0x21, 0x03]);
        // negative values pack as their 4-bit two's complement
        let packed = pack_nibbles(&[-1, -8, 7]);
        assert_eq!(packed, vec![0x8fu8 as i8, 0x07]);
        // empty stays empty
        assert!(pack_nibbles(&[]).is_empty());
    }

    #[test]
    fn odd_length_i4_staging_preserves_last_element() {
        // an odd element count must round-trip: the final value lands in
        // the low nibble of the last byte instead of being dropped
        let vals: Vec<i8> = (0..9).map(|i| (i % 16) - 8).collect();
        let packed = pack_nibbles(&vals);
        assert_eq!(packed.len(), 5);
        let mut unpacked = Vec::new();
        for &b in &packed {
            unpacked.push(((b as u8 & 0x0f) as i8) << 4 >> 4);
            unpacked.push(((b as u8 >> 4) as i8) << 4 >> 4);
        }
        assert_eq!(&unpacked[..9], &vals[..], "odd trailing element lost");
        assert_eq!(unpacked[9], 0, "pad nibble must read as zero");
    }

    #[test]
    fn multi_block_k_accumulates_correctly() {
        // kp > kc forces partial-C merging across depth units
        let opts = GemmOptions { blocking: Some((32, 64, 32)), ..GemmOptions::default() };
        let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 32, 32, 96, &opts);
        assert!(r.correct);
        let r = simulate_gemm(CoreConfig::a64fx(), Method::HandvInt32, 32, 32, 96, &opts);
        assert!(r.correct);
    }

    /// A deliberately adversarial scheduler: runs the borrowed jobs in
    /// reverse order, each on its own spawned thread. If any unit
    /// depended on shared state or submission order, results would
    /// diverge from [`SerialScheduler`].
    struct ReverseThreadScheduler;

    impl SimScheduler for ReverseThreadScheduler {
        fn run_jobs<'env>(&self, jobs: Vec<SimJob<'env>>) {
            std::thread::scope(|s| {
                for job in jobs.into_iter().rev() {
                    s.spawn(job);
                }
            });
        }
    }

    /// Blocking that splits a modest problem into several lanes and
    /// several depth blocks for every kernel geometry.
    fn multi_unit_opts() -> GemmOptions {
        GemmOptions { blocking: Some((16, 32, 128)), ..GemmOptions::default() }
    }

    #[test]
    fn scheduler_choice_is_bit_invisible() {
        // every method, on a shape that decomposes into multiple lanes
        // and depth blocks: serial vs reverse-threaded must agree on
        // every stats field and every output bit
        for method in Method::all() {
            let opts = multi_unit_opts();
            let serial =
                simulate_gemm_on(CoreConfig::a64fx(), method, 20, 70, 260, &opts, &SerialScheduler);
            let parallel = simulate_gemm_on(
                CoreConfig::a64fx(),
                method,
                20,
                70,
                260,
                &opts,
                &ReverseThreadScheduler,
            );
            assert!(serial.correct, "{}", method.name());
            assert!(serial.lanes > 1, "{} should split into lanes", method.name());
            assert_eq!(serial.stats, parallel.stats, "{} stats diverged", method.name());
            assert_eq!(serial.c, parallel.c, "{} output bits diverged", method.name());
            assert_eq!(serial.serial_cycles, parallel.serial_cycles);
        }
    }

    #[test]
    fn lane_model_cycles_are_bounded_by_the_serial_sum() {
        let opts = multi_unit_opts();
        let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 20, 70, 260, &opts);
        assert!(r.lanes > 1);
        assert!(r.stats.cycles < r.serial_cycles, "max lane must beat the serial sum");
        assert!(r.stats.cycles * r.lanes as u64 >= r.serial_cycles, "max × lanes bounds the sum");
        assert!(r.gops > r.serial_gops, "parallel model must report higher throughput");
    }

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    #[test]
    fn batch_matches_standalone_per_problem() {
        let (m1, n1, k1) = (9, 11, 40);
        let (m2, n2, k2) = (5, 7, 19);
        let a1 = fill(m1 * k1, 3);
        let b1 = fill(k1 * n1, 5);
        let a2 = fill(m2 * k2, 7);
        let b2 = fill(k2 * n2, 11);
        let problems = [
            GemmProblem::new(m1, n1, k1, &a1, &b1),
            GemmProblem::new(m2, n2, k2, &a2, &b2).with_dtype(DType::I4),
        ];
        let opts = GemmOptions::default();
        let batch = simulate_gemm_batch(CoreConfig::a64fx(), &problems, &opts);
        assert_eq!(batch.results.len(), 2);
        for (r, p) in batch.results.iter().zip(&problems) {
            assert!(r.correct, "batch problem {}x{}x{} wrong", p.m, p.n, p.k);
        }
        // a one-problem batch of the same descriptor is bit-identical
        for (i, p) in problems.iter().enumerate() {
            let solo = simulate_gemm_batch(CoreConfig::a64fx(), &[*p], &opts);
            assert_eq!(solo.results[0].c, batch.results[i].c);
            assert_eq!(solo.results[0].stats, batch.results[i].stats);
        }
        // batch stats: cycles = max across items, work sums
        let (r1, r2) = (&batch.results[0], &batch.results[1]);
        assert_eq!(batch.stats.cycles, r1.stats.cycles.max(r2.stats.cycles));
        assert_eq!(batch.stats.insts, r1.stats.insts + r2.stats.insts);
    }

    #[test]
    fn batch_dedup_skips_pack_b_with_identical_results() {
        let (n, k) = (12, 48);
        let b = fill(k * n, 5);
        let a1 = fill(8 * k, 3);
        let a2 = fill(8 * k, 9);
        let opts = GemmOptions::default();
        let shared = [
            GemmProblem::new(8, n, k, &a1, &b),
            GemmProblem::new(8, n, k, &a2, &b), // same B buffer: dedup
        ];
        let batch = simulate_gemm_batch(CoreConfig::a64fx(), &shared, &opts);
        assert!(batch.results.iter().all(|r| r.correct));
        // the dedup consumer must compute the same C it would alone...
        let alone = simulate_gemm_batch(CoreConfig::a64fx(), &shared[1..], &opts);
        assert_eq!(batch.results[1].c, alone.results[0].c);
        // ...while simulating strictly fewer instructions (no B pack)
        assert!(
            batch.results[1].stats.insts < alone.results[0].stats.insts,
            "dedup consumer must skip the B-pack program ({} vs {})",
            batch.results[1].stats.insts,
            alone.results[0].stats.insts
        );
        // the owner simulates the pack exactly as it would alone
        assert_eq!(batch.results[0].stats.insts, {
            let solo = simulate_gemm_batch(CoreConfig::a64fx(), &shared[..1], &opts);
            solo.results[0].stats.insts
        });
    }

    #[test]
    fn batch_accepts_degenerate_problems() {
        let a = fill(8, 3);
        let b = fill(8, 5);
        let problems = [GemmProblem::new(0, 4, 2, &[], &b), GemmProblem::new(2, 4, 2, &a[..4], &b)];
        let batch = simulate_gemm_batch(CoreConfig::a64fx(), &problems, &GemmOptions::default());
        assert!(batch.results[0].c.is_empty());
        assert_eq!(batch.results[0].stats.cycles, 0);
        assert!(batch.results[1].correct);
    }

    #[test]
    #[should_panic(expected = "borrowed B operands")]
    fn batch_rejects_handle_problems() {
        let mut reg = crate::weights::WeightRegistry::new();
        let h = reg.register(4, 16, &fill(64, 3), DType::I8);
        let a = fill(2 * 16, 5);
        let p = GemmProblem::with_handle(2, 4, 16, &a, h);
        let _ = simulate_gemm_batch(CoreConfig::a64fx(), &[p], &GemmOptions::default());
    }
}
