//! Typed GeMM requests: the substrate-independent description of one
//! `C = A · B` that a `CampBackend` implementation (see
//! `camp_core::backend`) executes.
//!
//! The host engine and the cycle-accurate simulated driver historically
//! exposed two disjoint call surfaces (a dtype-suffixed method zoo vs
//! `simulate_gemm*`). A [`GemmRequest`] is the one description both
//! understand: build it once with the typed builder, then hand the same
//! request to any backend (`camp_core::backend` owns the trait):
//!
//! ```
//! use camp_gemm::request::{GemmRequest, Operand};
//! use camp_gemm::weights::DType;
//!
//! let (m, n, k) = (4, 8, 32);
//! let a: Vec<i8> = (0..m * k).map(|i| (i % 13) as i8 - 6).collect();
//! let w: Vec<i8> = (0..k * n).map(|i| (i % 15) as i8 - 7).collect();
//!
//! let req = GemmRequest::builder()
//!     .m(m)
//!     .n(n)
//!     .k(k)
//!     .activation(a)
//!     .weights(Operand::from_dense(w))
//!     .dtype(DType::I8)
//!     .build()
//!     .expect("well-formed request");
//! assert_eq!(req.m(), m);
//! ```
//!
//! Construction is **fallible, not panicking**: [`GemmRequestBuilder::build`]
//! returns [`RequestError`] on shape mismatches (the old APIs asserted),
//! and handle-typed requests are validated against the registry when the
//! backend resolves them ([`GemmRequest::resolve`]), where a dropped
//! registration surfaces as [`RequestError::StaleHandle`].
//!
//! Operands are shared, immutable buffers (`Arc<[i8]>`): cloning a
//! request is cheap, requests outlive threads (the serving session moves
//! them across its pipeline), and two requests built from one buffer
//! keep the pointer identity the batch B-deduplication keys on.

use std::sync::Arc;

use crate::weights::{DType, WeightHandle, WeightMeta, WeightSnapshot};

/// Why a request could not be built or executed.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// A builder field required for this operand kind was not set.
    MissingField(&'static str),
    /// An operand's length disagrees with the request dimensions.
    ShapeMismatch {
        /// Which operand ("A" or "B").
        operand: &'static str,
        /// Elements the dimensions require.
        expected: usize,
        /// Elements actually provided.
        got: usize,
    },
    /// The request's n/k/dtype disagree with the handle's registration.
    RegistrationMismatch(&'static str),
    /// The handle was issued by a different registry (another backend).
    ForeignHandle,
    /// The handle's index was never issued by this registry.
    UnknownHandle,
    /// The handle's registration was evicted (or its slot re-used by a
    /// newer registration) — see `WeightRegistry::evict`.
    StaleHandle,
    /// An i4 request carries operand values outside [-8, 7].
    OperandRange(&'static str),
    /// The backend cannot execute this request (capability gap).
    Unsupported(&'static str),
    /// Admission control: the serving session's staging queue is at its
    /// bounded depth (the carried value). Back off and resubmit; the
    /// session recovers as staged work drains — nothing was enqueued.
    Saturated {
        /// The session's configured staging depth (the documented
        /// bound at which this error fires deterministically).
        depth: usize,
    },
    /// The batch's deadline had already passed when the dispatcher's
    /// driver picked it, so it was shed (completed as cancelled)
    /// instead of computed. Counted in `DispatchStats::shed`.
    Shed,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::MissingField(what) => write!(f, "request field `{what}` is required"),
            RequestError::ShapeMismatch { operand, expected, got } => {
                write!(f, "operand {operand} holds {got} elements, dimensions require {expected}")
            }
            RequestError::RegistrationMismatch(what) => {
                write!(f, "request {what} disagrees with the weight registration")
            }
            RequestError::ForeignHandle => {
                write!(f, "WeightHandle was issued by a different registry")
            }
            RequestError::UnknownHandle => write!(f, "WeightHandle was never issued"),
            RequestError::StaleHandle => {
                write!(f, "WeightHandle registration was evicted (stale handle)")
            }
            RequestError::OperandRange(operand) => {
                write!(f, "i4 operand {operand} holds values outside [-8, 7]")
            }
            RequestError::Unsupported(what) => write!(f, "backend cannot execute request: {what}"),
            RequestError::Saturated { depth } => {
                write!(f, "session staging queue is saturated (bounded depth {depth})")
            }
            RequestError::Shed => {
                write!(f, "batch deadline passed before execution; shed instead of computed")
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// The B side of a request: raw weights packed by the backend at call
/// time, or a handle to weights registered (and, on the host, pre-packed)
/// up front.
#[derive(Debug, Clone)]
pub enum Operand {
    /// Row-major k×n weights, shared and immutable. Requests cloning one
    /// `Arc` keep pointer identity, so a batch packs the operand once.
    Dense(Arc<[i8]>),
    /// Weights registered with the executing backend
    /// (`CampBackend::register_weights`).
    Handle(WeightHandle),
}

impl Operand {
    /// Dense weights from any owned or borrowed buffer.
    pub fn from_dense(b: impl Into<Arc<[i8]>>) -> Self {
        Operand::Dense(b.into())
    }
}

impl From<WeightHandle> for Operand {
    fn from(h: WeightHandle) -> Self {
        Operand::Handle(h)
    }
}

/// One validated GeMM: row-major C (m×n) = A (m×k) · B (k×n), with the
/// kernel selected by [`DType`]. Build via [`GemmRequest::builder`]; see
/// the [module docs](self).
#[non_exhaustive]
#[derive(Debug, Clone)]
pub struct GemmRequest {
    m: usize,
    /// Always `Some` for dense requests; optional (cross-checked) for
    /// handle requests, whose shape lives in the registration.
    n: Option<usize>,
    k: Option<usize>,
    a: Arc<[i8]>,
    weights: Operand,
    /// `None` means "the registration's dtype" for handles, I8 for
    /// dense operands.
    dtype: Option<DType>,
}

/// The concrete problem a backend runs after resolving a request
/// against its registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedRequest {
    /// Rows of A / C.
    pub m: usize,
    /// Columns of B / C.
    pub n: usize,
    /// Inner dimension.
    pub k: usize,
    /// Kernel the request runs under.
    pub dtype: DType,
}

impl ResolvedRequest {
    /// Multiply-accumulate operations of the resolved problem.
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// True if any dimension is zero (the result is empty or all-zero
    /// and no kernel runs).
    pub fn is_degenerate(&self) -> bool {
        self.m == 0 || self.n == 0 || self.k == 0
    }
}

impl GemmRequest {
    /// Start building a request.
    pub fn builder() -> GemmRequestBuilder {
        GemmRequestBuilder::default()
    }

    /// Convenience: a dense i8 request in one call (the builder's
    /// `m/n/k/activation/weights` chain). Use the builder to select
    /// [`DType::I4`].
    pub fn dense(
        m: usize,
        n: usize,
        k: usize,
        a: impl Into<Arc<[i8]>>,
        b: impl Into<Arc<[i8]>>,
    ) -> Result<GemmRequest, RequestError> {
        GemmRequest::builder()
            .m(m)
            .n(n)
            .k(k)
            .activation(a)
            .weights(Operand::Dense(b.into()))
            .build()
    }

    /// Convenience: a request against a registered weight (shape and
    /// dtype resolved from the registration at execute time).
    pub fn with_weights(
        m: usize,
        a: impl Into<Arc<[i8]>>,
        weights: WeightHandle,
    ) -> Result<GemmRequest, RequestError> {
        GemmRequest::builder().m(m).activation(a).weights(Operand::Handle(weights)).build()
    }

    /// Rows of the activation / result.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Requested n, if pinned at build time (always for dense operands).
    pub fn n(&self) -> Option<usize> {
        self.n
    }

    /// Requested k, if pinned at build time (always for dense operands).
    pub fn k(&self) -> Option<usize> {
        self.k
    }

    /// The activation buffer (row-major m×k once resolved).
    pub fn activation(&self) -> &[i8] {
        &self.a
    }

    /// Shared handle to the activation buffer.
    pub fn activation_arc(&self) -> Arc<[i8]> {
        Arc::clone(&self.a)
    }

    /// The B operand.
    pub fn weights(&self) -> &Operand {
        &self.weights
    }

    /// Requested dtype, if pinned at build time.
    pub fn dtype(&self) -> Option<DType> {
        self.dtype
    }

    /// Resolve the request against a backend's registration snapshot:
    /// dense requests use their pinned shape; handle requests take
    /// n/k/dtype from the registration, cross-checked against any the
    /// builder pinned. This is where [`RequestError::StaleHandle`] (and
    /// foreign/unknown handles) surface instead of panicking.
    pub fn resolve(&self, weights: &WeightSnapshot) -> Result<ResolvedRequest, RequestError> {
        let resolved = match &self.weights {
            Operand::Dense(_) => {
                // build() guarantees shape and length coherence
                let (n, k) = (self.n.expect("dense built"), self.k.expect("dense built"));
                ResolvedRequest { m: self.m, n, k, dtype: self.dtype.unwrap_or(DType::I8) }
            }
            Operand::Handle(h) => {
                let meta: WeightMeta = weights.meta(*h)?;
                if let Some(n) = self.n {
                    if n != meta.n {
                        return Err(RequestError::RegistrationMismatch("n"));
                    }
                }
                if let Some(k) = self.k {
                    if k != meta.k {
                        return Err(RequestError::RegistrationMismatch("k"));
                    }
                }
                if let Some(dt) = self.dtype {
                    if dt != meta.dtype {
                        return Err(RequestError::RegistrationMismatch("dtype"));
                    }
                }
                ResolvedRequest { m: self.m, n: meta.n, k: meta.k, dtype: meta.dtype }
            }
        };
        if self.a.len() != resolved.m * resolved.k {
            return Err(RequestError::ShapeMismatch {
                operand: "A",
                expected: resolved.m * resolved.k,
                got: self.a.len(),
            });
        }
        Ok(resolved)
    }
}

/// Builder for [`GemmRequest`]; every setter is `#[must_use]` (the
/// builder is by-value) and [`GemmRequestBuilder::build`] validates
/// instead of panicking.
#[derive(Debug, Default, Clone)]
pub struct GemmRequestBuilder {
    m: Option<usize>,
    n: Option<usize>,
    k: Option<usize>,
    a: Option<Arc<[i8]>>,
    weights: Option<Operand>,
    dtype: Option<DType>,
}

impl GemmRequestBuilder {
    /// Rows of the activation / result.
    #[must_use]
    pub fn m(mut self, m: usize) -> Self {
        self.m = Some(m);
        self
    }

    /// Columns of B / C (required for dense operands; optional
    /// cross-check for handles).
    #[must_use]
    pub fn n(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Inner dimension (required for dense operands; optional
    /// cross-check for handles).
    #[must_use]
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Row-major m×k activation.
    #[must_use]
    pub fn activation(mut self, a: impl Into<Arc<[i8]>>) -> Self {
        self.a = Some(a.into());
        self
    }

    /// The B operand (dense weights or a registered handle).
    #[must_use]
    pub fn weights(mut self, weights: impl Into<Operand>) -> Self {
        self.weights = Some(weights.into());
        self
    }

    /// Kernel selection (defaults: I8 for dense operands, the
    /// registration's dtype for handles).
    #[must_use]
    pub fn dtype(mut self, dtype: DType) -> Self {
        self.dtype = Some(dtype);
        self
    }

    /// Validate and build. Dense requests must pin `n` and `k` and have
    /// coherent operand lengths; i4 dense requests are range-checked.
    /// Handle requests defer registration checks to
    /// [`GemmRequest::resolve`].
    pub fn build(self) -> Result<GemmRequest, RequestError> {
        let m = self.m.ok_or(RequestError::MissingField("m"))?;
        let a = self.a.ok_or(RequestError::MissingField("activation"))?;
        let weights = self.weights.ok_or(RequestError::MissingField("weights"))?;
        let i4 = self.dtype == Some(DType::I4);
        if let Operand::Dense(b) = &weights {
            let n = self.n.ok_or(RequestError::MissingField("n"))?;
            let k = self.k.ok_or(RequestError::MissingField("k"))?;
            if a.len() != m * k {
                return Err(RequestError::ShapeMismatch {
                    operand: "A",
                    expected: m * k,
                    got: a.len(),
                });
            }
            if b.len() != k * n {
                return Err(RequestError::ShapeMismatch {
                    operand: "B",
                    expected: k * n,
                    got: b.len(),
                });
            }
            if i4 && !b.iter().all(|v| (-8..8).contains(v)) {
                return Err(RequestError::OperandRange("B"));
            }
        }
        if i4 && !a.iter().all(|v| (-8..8).contains(v)) {
            return Err(RequestError::OperandRange("A"));
        }
        Ok(GemmRequest { m, n: self.n, k: self.k, a, weights, dtype: self.dtype })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightRegistry;

    fn fill(len: usize, seed: i32) -> Vec<i8> {
        (0..len).map(|i| ((i as i32 * seed) % 16 - 8) as i8).collect()
    }

    #[test]
    fn dense_build_checks_both_operand_lengths() {
        let a = fill(4 * 8, 3);
        let b = fill(8 * 6, 5);
        let req = GemmRequest::dense(4, 6, 8, a.clone(), b.clone()).unwrap();
        assert_eq!((req.m(), req.n(), req.k()), (4, Some(6), Some(8)));
        assert_eq!(req.activation(), &a[..]);

        let bad_a = GemmRequest::dense(4, 6, 8, fill(7, 3), b.clone());
        assert_eq!(
            bad_a.unwrap_err(),
            RequestError::ShapeMismatch { operand: "A", expected: 32, got: 7 }
        );
        let bad_b = GemmRequest::dense(4, 6, 8, a, fill(5, 5));
        assert_eq!(
            bad_b.unwrap_err(),
            RequestError::ShapeMismatch { operand: "B", expected: 48, got: 5 }
        );
    }

    #[test]
    fn dense_build_requires_the_full_shape() {
        let err = GemmRequest::builder()
            .m(4)
            .activation(fill(8, 3))
            .weights(Operand::from_dense(fill(4, 5)))
            .build()
            .unwrap_err();
        assert_eq!(err, RequestError::MissingField("n"));
        let err = GemmRequest::builder().build().unwrap_err();
        assert_eq!(err, RequestError::MissingField("m"));
    }

    #[test]
    fn i4_requests_are_range_checked_at_build() {
        let ok = fill(4 * 8, 3); // [-8, 7]
        let out = vec![100i8; 8 * 4];
        let err = GemmRequest::builder()
            .m(4)
            .n(4)
            .k(8)
            .activation(ok.clone())
            .weights(Operand::from_dense(out))
            .dtype(DType::I4)
            .build()
            .unwrap_err();
        assert_eq!(err, RequestError::OperandRange("B"));
        let err = GemmRequest::builder()
            .m(4)
            .n(4)
            .k(8)
            .activation(vec![99i8; 32])
            .weights(Operand::from_dense(fill(32, 5)))
            .dtype(DType::I4)
            .build()
            .unwrap_err();
        assert_eq!(err, RequestError::OperandRange("A"));
    }

    #[test]
    fn handle_requests_resolve_from_the_registration() {
        let mut reg = WeightRegistry::new();
        let h = reg.register(6, 8, &fill(48, 5), DType::I4);
        let snap = reg.snapshot();
        let req = GemmRequest::with_weights(3, fill(3 * 8, 3), h).unwrap();
        let r = req.resolve(&snap).unwrap();
        assert_eq!((r.m, r.n, r.k, r.dtype), (3, 6, 8, DType::I4));
        assert_eq!(r.macs(), 3 * 6 * 8);
        assert!(!r.is_degenerate());

        // a pinned shape that disagrees with the registration errors
        let req =
            GemmRequest::builder().m(3).n(7).activation(fill(24, 3)).weights(h).build().unwrap();
        assert_eq!(req.resolve(&snap).unwrap_err(), RequestError::RegistrationMismatch("n"));
        let req = GemmRequest::builder()
            .m(3)
            .dtype(DType::I8)
            .activation(fill(24, 3))
            .weights(h)
            .build()
            .unwrap();
        assert_eq!(req.resolve(&snap).unwrap_err(), RequestError::RegistrationMismatch("dtype"));

        // activation length is checked against the registered k
        let req = GemmRequest::with_weights(3, fill(5, 3), h).unwrap();
        assert_eq!(
            req.resolve(&snap).unwrap_err(),
            RequestError::ShapeMismatch { operand: "A", expected: 24, got: 5 }
        );
    }

    #[test]
    fn cloned_requests_share_operand_identity() {
        // batch B-dedup keys on pointer identity: clones must keep it
        let req = GemmRequest::dense(2, 2, 4, fill(8, 3), fill(8, 5)).unwrap();
        let clone = req.clone();
        let (Operand::Dense(b1), Operand::Dense(b2)) = (req.weights(), clone.weights()) else {
            panic!("dense operands expected");
        };
        assert_eq!(b1.as_ptr(), b2.as_ptr());
        assert_eq!(req.activation().as_ptr(), clone.activation().as_ptr());
    }

    #[test]
    fn errors_render_for_humans() {
        let e = RequestError::StaleHandle;
        assert!(format!("{e}").contains("stale"));
        let e = RequestError::ShapeMismatch { operand: "B", expected: 4, got: 2 };
        assert!(format!("{e}").contains("B"));
    }
}
