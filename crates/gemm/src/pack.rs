//! Packing-program builders.
//!
//! GotoBLAS packs the A block into column-major mR-row panels and the B
//! block into row-major nR-column panels before the macro-kernel runs
//! (the `Pack Ai` / `Pack Bp` stages of Fig. 3). These are simulated
//! programs so their instruction and memory traffic is part of every
//! result, exactly as it is for the paper's ulmBLAS-based measurements.
//!
//! Register conventions (the host driver sets these before each
//! invocation):
//!
//! * `x10` — source base (row-copy packers)
//! * `x11` — destination pointer
//! * `x12` — iteration count
//! * `x13` — source row stride in bytes
//! * `x14` — pre-scaled row-advance stride (variant-specific)
//! * `x20..x27` — source row pointers (gather packers)

use camp_isa::asm::Assembler;
use camp_isa::inst::Program;
use camp_isa::reg::{S, V};

/// Gather-pack `mr` matrix rows into a column-major panel: one element
/// of width `elem_w` per row per step.
///
/// Row pointers live in `x20..x20+mr-1`; destination advances
/// `mr*elem_w` per step; `x12` counts steps.
///
/// # Panics
/// Panics if `mr > 8` or `elem_w` is not 1, 2, 4 or 8.
pub fn pack_a_rows(mr: usize, elem_w: u8) -> Program {
    assert!(mr <= 8, "at most 8 row pointers");
    assert!(matches!(elem_w, 1 | 2 | 4 | 8));
    let mut a = Assembler::new(format!("pack_a_{mr}x{elem_w}"));
    a.label("top");
    for r in 0..mr {
        let rp = S(20 + r as u8);
        a.load_s(S(28), rp, 0, elem_w);
        a.store_s(S(28), S(11), (r as i64) * elem_w as i64, elem_w);
        a.addi(rp, rp, elem_w as i64);
    }
    a.addi(S(11), S(11), (mr as i64) * elem_w as i64);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// Copy-pack `row_bytes` contiguous bytes per source row into a dense
/// panel (used for B panels whose rows are already contiguous).
///
/// `x10` source (advances by `x13` per row), `x11` destination
/// (advances by `row_bytes`), `x12` row count.
///
/// # Panics
/// Panics unless `row_bytes` is 2, 4, 64 or 128.
pub fn pack_b_rows(row_bytes: usize) -> Program {
    let mut a = Assembler::new(format!("pack_b_{row_bytes}"));
    a.label("top");
    match row_bytes {
        2 => {
            a.load_s(S(28), S(10), 0, 2);
            a.store_s(S(28), S(11), 0, 2);
        }
        4 => {
            a.lw(S(28), S(10), 0);
            a.store_s(S(28), S(11), 0, 4);
        }
        64 => {
            a.vload(V(0), S(10), 0);
            a.vstore(V(0), S(11), 0);
        }
        128 => {
            a.vload(V(0), S(10), 0);
            a.vstore(V(0), S(11), 0);
            a.vload(V(1), S(10), 64);
            a.vstore(V(1), S(11), 64);
        }
        other => panic!("unsupported pack row width {other}"),
    }
    a.add(S(10), S(10), S(13));
    a.addi(S(11), S(11), row_bytes as i64);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// Nibble-pack pass for the 4-bit CAMP path: compresses `x12` output
/// bytes from 2× as many i8 values (each in [-8, 7]) at `x10` into the
/// packed-nibble panel at `x11`.
pub fn nibble_pack() -> Program {
    let mut a = Assembler::new("nibble_pack");
    a.label("top");
    a.lb(S(28), S(10), 0);
    a.lb(S(29), S(10), 1);
    a.andi(S(28), S(28), 0x0f);
    a.slli(S(29), S(29), 4);
    a.andi(S(29), S(29), 0xf0);
    a.add(S(28), S(28), S(29));
    a.store_s(S(28), S(11), 0, 1);
    a.addi(S(10), S(10), 2);
    a.addi(S(11), S(11), 1);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// Unrolled narrow-row B pack for the CAMP panels (4 or 2 bytes per
/// panel row): four k-rows per iteration through four source row
/// pointers (`x20..x23`, advancing by `x14 = 4·ldb`), destination `x11`,
/// iteration count `x12` (= rows/4).
pub fn pack_b_rows4(row_bytes: u8) -> Program {
    assert!(matches!(row_bytes, 2 | 4));
    let w = row_bytes as i64;
    let mut a = Assembler::new(format!("pack_b4_{row_bytes}"));
    a.label("top");
    for r in 0..4u8 {
        a.load_s(S(28), S(20 + r), 0, row_bytes);
        a.store_s(S(28), S(11), r as i64 * w, row_bytes);
    }
    for r in 0..4u8 {
        a.add(S(20 + r), S(20 + r), S(14));
    }
    a.addi(S(11), S(11), 4 * w);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// Vectorized 4-row panel transpose (the optimized-pack path real BLAS
/// libraries use): interleaves four source rows at `granule`-byte
/// granularity via two levels of `zip`, producing the column-major panel
/// 64 bytes of source per row at a time.
///
/// * granule 1 — byte panels (CAMP-8bit, handv-int8): 64 columns/chunk
/// * granule 2 — k-pair panels (gemmlowp): 32 pairs/chunk
/// * granule 4 — word panels (handv-int32): 16 columns/chunk
///
/// Row pointers in `x20..x23` (advance 64 bytes per chunk), destination
/// `x11`, chunk count `x12`.
pub fn pack_a_transpose4(granule: u8) -> Program {
    assert!(matches!(granule, 1 | 2 | 4));
    let mut a = Assembler::new(format!("pack_a_zip4_g{granule}"));
    a.label("top");
    for r in 0..4u8 {
        a.vload(V(r), S(20 + r), 0);
    }
    a.vzip(V(4), V(0), V(2), granule, false);
    a.vzip(V(5), V(0), V(2), granule, true);
    a.vzip(V(6), V(1), V(3), granule, false);
    a.vzip(V(7), V(1), V(3), granule, true);
    a.vzip(V(8), V(4), V(6), granule, false);
    a.vzip(V(9), V(4), V(6), granule, true);
    a.vzip(V(10), V(5), V(7), granule, false);
    a.vzip(V(11), V(5), V(7), granule, true);
    for (i, v) in [8u8, 9, 10, 11].into_iter().enumerate() {
        a.vstore(V(v), S(11), i as i64 * 64);
    }
    for r in 0..4u8 {
        a.addi(S(20 + r), S(20 + r), 64);
    }
    a.addi(S(11), S(11), 256);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// Vectorized 8-row word-panel transpose (OpenBLAS-style f32 pack):
/// three zip levels over 8 source rows, 16 columns per chunk.
///
/// Row pointers in `x20..x27`, destination `x11`, chunk count `x12`.
pub fn pack_a_transpose8_words() -> Program {
    let mut a = Assembler::new("pack_a_zip8_w");
    a.label("top");
    for r in 0..8u8 {
        a.vload(V(r), S(20 + r), 0);
    }
    // level 1: evens (r0 r4), (r2 r6); odds (r1 r5), (r3 r7)
    a.vzip(V(8), V(0), V(4), 4, false); // a
    a.vzip(V(9), V(0), V(4), 4, true); // a'
    a.vzip(V(10), V(2), V(6), 4, false); // b
    a.vzip(V(11), V(2), V(6), 4, true); // b'
    a.vzip(V(12), V(1), V(5), 4, false); // c
    a.vzip(V(13), V(1), V(5), 4, true); // c'
    a.vzip(V(14), V(3), V(7), 4, false); // d
    a.vzip(V(15), V(3), V(7), 4, true); // d'
                                        // level 2
    a.vzip(V(16), V(8), V(10), 4, false); // e  (evens cols 0-3)
    a.vzip(V(17), V(8), V(10), 4, true); // e' (evens cols 4-7)
    a.vzip(V(18), V(12), V(14), 4, false); // f  (odds cols 0-3)
    a.vzip(V(19), V(12), V(14), 4, true); // f' (odds cols 4-7)
    a.vzip(V(20), V(9), V(11), 4, false); // g  (evens cols 8-11)
    a.vzip(V(21), V(9), V(11), 4, true); // g' (evens cols 12-15)
    a.vzip(V(22), V(13), V(15), 4, false); // h
    a.vzip(V(23), V(13), V(15), 4, true); // h'
                                          // level 3: full column interleave
    a.vzip(V(24), V(16), V(18), 4, false); // cols 0-1
    a.vzip(V(25), V(16), V(18), 4, true); // cols 2-3
    a.vzip(V(26), V(17), V(19), 4, false); // cols 4-5
    a.vzip(V(27), V(17), V(19), 4, true); // cols 6-7
    a.vzip(V(28), V(20), V(22), 4, false); // cols 8-9
    a.vzip(V(29), V(20), V(22), 4, true); // cols 10-11
    a.vzip(V(30), V(21), V(23), 4, false); // cols 12-13
    a.vzip(V(31), V(21), V(23), 4, true); // cols 14-15
    for (i, v) in (24u8..32).enumerate() {
        a.vstore(V(v), S(11), i as i64 * 64);
    }
    for r in 0..8u8 {
        a.addi(S(20 + r), S(20 + r), 64);
    }
    a.addi(S(11), S(11), 512);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// Vectorized 4-bit CAMP A pack: unpacks four nibble-packed rows,
/// byte-transposes them and re-packs pairwise into the column-major
/// nibble panel — 128 k-columns per chunk.
///
/// Row pointers in `x20..x23` (advance 64 bytes/chunk), destination
/// `x11`, chunk count `x12`.
pub fn pack_a_camp4_vec() -> Program {
    let mut a = Assembler::new("pack_a_camp4_vec");
    a.label("top");
    for r in 0..4u8 {
        a.vload(V(r), S(20 + r), 0);
    }
    for (half, hi) in [(0u8, false), (1, true)] {
        // unpack this half: rows as 64 consecutive i8 columns
        for r in 0..4u8 {
            a.vunpack4(V(4 + r), V(r), hi);
        }
        // byte transpose
        a.vzip(V(8), V(4), V(6), 1, false);
        a.vzip(V(9), V(4), V(6), 1, true);
        a.vzip(V(10), V(5), V(7), 1, false);
        a.vzip(V(11), V(5), V(7), 1, true);
        a.vzip(V(12), V(8), V(10), 1, false); // cols 0-15 col-major
        a.vzip(V(13), V(8), V(10), 1, true); // cols 16-31
        a.vzip(V(14), V(9), V(11), 1, false); // cols 32-47
        a.vzip(V(15), V(9), V(11), 1, true); // cols 48-63
                                             // pairwise nibble re-pack: 2 bytes per column
        a.vpack4(V(16), V(12), V(13));
        a.vpack4(V(17), V(14), V(15));
        a.vstore(V(16), S(11), half as i64 * 128);
        a.vstore(V(17), S(11), half as i64 * 128 + 64);
    }
    for r in 0..4u8 {
        a.addi(S(20 + r), S(20 + r), 64);
    }
    a.addi(S(11), S(11), 256);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// Vectorized gemmlowp B pack: one byte-zip of two k-rows produces the
/// pair-interleaved layout for two adjacent 32-column panels at once.
///
/// `x20`/`x21` source row-pair pointers (advance by `x14 = 2·ldb`),
/// `x11` even-panel destination, `x15` odd-panel destination (both
/// advance 64 bytes per pair), `x12` pair count.
pub fn pack_b_gemmlowp_vec() -> Program {
    let mut a = Assembler::new("pack_b_lowp_vec");
    a.label("top");
    a.vload(V(0), S(20), 0);
    a.vload(V(1), S(21), 0);
    a.vzip(V(2), V(0), V(1), 1, false);
    a.vzip(V(3), V(0), V(1), 1, true);
    a.vstore(V(2), S(11), 0);
    a.vstore(V(3), S(15), 0);
    a.add(S(20), S(20), S(14));
    a.add(S(21), S(21), S(14));
    a.addi(S(11), S(11), 64);
    a.addi(S(15), S(15), 64);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// 4-bit CAMP A pack: converts four row-major nibble-packed source rows
/// (byte pointers in `x20..x23`) into the column-major nibble panel the
/// `camp.s4` operand expects (column l of the panel holds rows 0–3 in
/// nibble-index order). Processes two k-columns (one source byte per
/// row) per iteration; `x12` counts k-pairs.
pub fn pack_a_camp4() -> Program {
    let mut a = Assembler::new("pack_a_camp4");
    a.label("top");
    // load one byte from each row: holds nibbles for columns l (lo) and
    // l+1 (hi)
    for r in 0..4u8 {
        a.lb(S(24 + r), S(20 + r), 0);
    }
    // four output bytes: (col, row-pair) = (l, 0–1), (l, 2–3),
    // (l+1, 0–1), (l+1, 2–3)
    for (slot, (hi_col, row0)) in
        [(false, 0u8), (false, 2), (true, 0), (true, 2)].into_iter().enumerate()
    {
        let lo_src = S(24 + row0);
        let hi_src = S(24 + row0 + 1);
        if hi_col {
            a.srli(S(28), lo_src, 4);
            a.andi(S(28), S(28), 0x0f);
            a.srli(S(29), hi_src, 4);
            a.andi(S(29), S(29), 0x0f);
        } else {
            a.andi(S(28), lo_src, 0x0f);
            a.andi(S(29), hi_src, 0x0f);
        }
        a.slli(S(29), S(29), 4);
        a.add(S(28), S(28), S(29));
        let out_off = match slot {
            0 => 0, // col l rows 0-1
            1 => 1, // col l rows 2-3
            2 => 2, // col l+1 rows 0-1
            _ => 3, // col l+1 rows 2-3
        };
        a.store_s(S(28), S(11), out_off, 1);
    }
    for r in 0..4u8 {
        a.addi(S(20 + r), S(20 + r), 1);
    }
    a.addi(S(11), S(11), 4);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// gemmlowp-style interleaved B pack: for each k-pair, emits
/// `{B[2p][j], B[2p+1][j]}` byte pairs for `nr` columns.
///
/// `x20`/`x21` point at the two source rows (advance by `x14 = 2·ldb`),
/// `x11` destination, `x12` pair count.
pub fn pack_b_gemmlowp(nr: usize) -> Program {
    let mut a = Assembler::new(format!("pack_b_lowp_{nr}"));
    a.label("top");
    for j in 0..nr {
        a.lb(S(28), S(20), j as i64);
        a.store_s(S(28), S(11), 2 * j as i64, 1);
        a.lb(S(28), S(21), j as i64);
        a.store_s(S(28), S(11), 2 * j as i64 + 1, 1);
    }
    a.add(S(20), S(20), S(14));
    a.add(S(21), S(21), S(14));
    a.addi(S(11), S(11), 2 * nr as i64);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// gemmlowp-style A pack: per k-pair, 2 consecutive elements of each of
/// 4 rows (`x20..x23`, advancing by 2), giving 8 bytes per step.
pub fn pack_a_gemmlowp() -> Program {
    let mut a = Assembler::new("pack_a_lowp");
    a.label("top");
    for r in 0..4u8 {
        let rp = S(20 + r);
        a.load_s(S(28), rp, 0, 2);
        a.store_s(S(28), S(11), r as i64 * 2, 2);
        a.addi(rp, rp, 2);
    }
    a.addi(S(11), S(11), 8);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

/// MMLA B pack: per 8-k octet, transposes an 8×8 byte block so each of 8
/// columns becomes a contiguous 8-byte run (the `2×8 · (2×8)ᵀ` operand
/// layout that FEAT_I8MM requires; cf. §7.2 — "this layout conflicts with
/// the GotoBLAS algorithm ... by modifying the packing strategy").
///
/// `x20..x27` point at 8 consecutive source k-rows (advance by
/// `x14 = 8·ldb`), `x11` destination, `x12` octet count.
pub fn pack_b_mmla() -> Program {
    let mut a = Assembler::new("pack_b_mmla");
    a.label("top");
    for c in 0..8u8 {
        for t in 0..8u8 {
            a.lb(S(28), S(20 + t), c as i64);
            a.store_s(S(28), S(11), c as i64 * 8 + t as i64, 1);
        }
    }
    for t in 0..8u8 {
        a.add(S(20 + t), S(20 + t), S(14));
    }
    a.addi(S(11), S(11), 64);
    a.addi(S(12), S(12), -1);
    a.bne(S(12), S(0), "top");
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camp_isa::machine::Machine;

    fn mach() -> Machine {
        Machine::new(1 << 16)
    }

    #[test]
    fn pack_a_transposes_rows_to_col_major() {
        let mut m = mach();
        // A: 4 rows × 8 cols i8 at 0x100, row stride 8
        for r in 0..4 {
            for c in 0..8 {
                m.write_i8(0x100 + r * 8 + c, (10 * r + c) as i8);
            }
        }
        let p = pack_a_rows(4, 1);
        for r in 0..4u8 {
            m.set_x(S(20 + r), 0x100 + r as u64 * 8);
        }
        m.set_x(S(11), 0x400);
        m.set_x(S(12), 8);
        m.run(&p, 10_000).unwrap();
        // col-major: dst[l*4 + r] = A[r][l]
        for l in 0..8 {
            for r in 0..4 {
                assert_eq!(m.read_i8(0x400 + l * 4 + r), (10 * r + l) as i8);
            }
        }
    }

    #[test]
    fn pack_b_rows_copies_with_stride() {
        let mut m = mach();
        // B rows of 4 bytes at stride 32
        for l in 0..5 {
            for j in 0..4 {
                m.write_i8(0x200 + l * 32 + j, (l * 4 + j) as i8);
            }
        }
        let p = pack_b_rows(4);
        m.set_x(S(10), 0x200);
        m.set_x(S(11), 0x800);
        m.set_x(S(12), 5);
        m.set_x(S(13), 32);
        m.run(&p, 10_000).unwrap();
        for i in 0..20 {
            assert_eq!(m.read_i8(0x800 + i), i as i8);
        }
    }

    #[test]
    fn pack_b_rows_vector_variant() {
        let mut m = mach();
        for l in 0..3u64 {
            for j in 0..64u64 {
                m.write_i8(0x400 + l * 100 + j, (l + j) as i8);
            }
        }
        let p = pack_b_rows(64);
        m.set_x(S(10), 0x400);
        m.set_x(S(11), 0x1000);
        m.set_x(S(12), 3);
        m.set_x(S(13), 100);
        m.run(&p, 10_000).unwrap();
        for l in 0..3u64 {
            for j in 0..64u64 {
                assert_eq!(m.read_i8(0x1000 + l * 64 + j), (l + j) as i8);
            }
        }
    }

    #[test]
    fn nibble_pack_compresses_pairs() {
        let mut m = mach();
        let vals: [i8; 8] = [-8, 7, 0, -1, 3, -3, 5, 2];
        for (i, &v) in vals.iter().enumerate() {
            m.write_i8(0x100 + i as u64, v);
        }
        let p = nibble_pack();
        m.set_x(S(10), 0x100);
        m.set_x(S(11), 0x200);
        m.set_x(S(12), 4);
        m.run(&p, 1000).unwrap();
        for i in 0..4 {
            let b = m.read_i8(0x200 + i as u64) as u8;
            let lo = ((b & 0xf) << 4) as i8 >> 4;
            let hi = (b >> 4) as i8 | if b & 0x80 != 0 { -16 } else { 0 };
            assert_eq!(lo, vals[2 * i]);
            assert_eq!(hi, vals[2 * i + 1]);
        }
    }

    /// Run a scalar packer and its vectorized counterpart on the same
    /// source and compare outputs byte for byte.
    fn compare_packs(
        scalar: &camp_isa::inst::Program,
        vec: &camp_isa::inst::Program,
        rows: usize,
        row_stride: u64,
        scalar_count: u64,
        vec_count: u64,
        out_bytes: usize,
    ) {
        let mut m = mach();
        for r in 0..rows as u64 {
            for c in 0..row_stride {
                m.write_i8(0x1000 + r * row_stride + c, (r as i64 * 67 + c as i64 * 13) as i8);
            }
        }
        for r in 0..rows as u8 {
            m.set_x(S(20 + r), 0x1000 + r as u64 * row_stride);
        }
        m.set_x(S(11), 0x4000);
        m.set_x(S(12), scalar_count);
        m.run(scalar, 1_000_000).unwrap();
        for r in 0..rows as u8 {
            m.set_x(S(20 + r), 0x1000 + r as u64 * row_stride);
        }
        m.set_x(S(11), 0x8000);
        m.set_x(S(12), vec_count);
        m.run(vec, 1_000_000).unwrap();
        for i in 0..out_bytes as u64 {
            assert_eq!(m.read_i8(0x4000 + i), m.read_i8(0x8000 + i), "mismatch at packed byte {i}");
        }
    }

    #[test]
    fn zip4_byte_pack_matches_scalar() {
        // 4 rows × 128 byte columns
        compare_packs(&pack_a_rows(4, 1), &pack_a_transpose4(1), 4, 256, 128, 2, 4 * 128);
    }

    #[test]
    fn zip4_word_pack_matches_scalar() {
        // 4 rows × 32 word columns (128 bytes per row)
        compare_packs(&pack_a_rows(4, 4), &pack_a_transpose4(4), 4, 256, 32, 2, 4 * 32 * 4);
    }

    #[test]
    fn zip4_pair_pack_matches_scalar_gemmlowp() {
        // 4 rows × 64 pairs (128 bytes per row)
        compare_packs(&pack_a_gemmlowp(), &pack_a_transpose4(2), 4, 256, 64, 2, 4 * 64 * 2);
    }

    #[test]
    fn zip8_word_pack_matches_scalar() {
        // 8 rows × 32 word columns
        compare_packs(&pack_a_rows(8, 4), &pack_a_transpose8_words(), 8, 256, 32, 2, 8 * 32 * 4);
    }

    #[test]
    fn camp4_vec_pack_matches_scalar() {
        // 4 rows × 256 nibble columns (128 bytes per row, nibble-packed)
        compare_packs(&pack_a_camp4(), &pack_a_camp4_vec(), 4, 256, 128, 2, 4 * 256 / 2);
    }

    #[test]
    fn gemmlowp_b_vec_pack_matches_scalar_two_panels() {
        let mut m = mach();
        // 8 k-rows × 64 cols, ldb 64
        for l in 0..8u64 {
            for j in 0..64u64 {
                m.write_i8(0x1000 + l * 64 + j, (l * 64 + j) as i8);
            }
        }
        // scalar: panel 0 (cols 0..32) and panel 1 (cols 32..64)
        let scalar = pack_b_gemmlowp(32);
        for (panel, dst) in [(0u64, 0x4000u64), (32, 0x4000 + 4 * 8 * 32)] {
            m.set_x(S(20), 0x1000 + panel);
            m.set_x(S(21), 0x1040 + panel);
            m.set_x(S(11), dst);
            m.set_x(S(12), 4);
            m.set_x(S(14), 128);
            m.run(&scalar, 100_000).unwrap();
        }
        // vectorized: both panels at once
        let vec = pack_b_gemmlowp_vec();
        m.set_x(S(20), 0x1000);
        m.set_x(S(21), 0x1040);
        m.set_x(S(11), 0x8000);
        m.set_x(S(15), 0x8000 + 4 * 8 * 32);
        m.set_x(S(12), 4);
        m.set_x(S(14), 128);
        m.run(&vec, 100_000).unwrap();
        for i in 0..(8 * 64) as u64 {
            assert_eq!(m.read_i8(0x4000 + i), m.read_i8(0x8000 + i), "byte {i}");
        }
    }

    #[test]
    fn camp4_a_pack_builds_column_major_nibbles() {
        let mut m = mach();
        // 4 rows × 8 cols of 4-bit values, nibble-packed row-major
        // (4 bytes per row), row stride 4
        let val = |r: usize, l: usize| ((r * 8 + l) % 16) as u8;
        for r in 0..4u64 {
            for p in 0..4u64 {
                let lo = val(r as usize, 2 * p as usize);
                let hi = val(r as usize, 2 * p as usize + 1);
                m.write_i8(0x100 + r * 4 + p, (lo | (hi << 4)) as i8);
            }
        }
        let p = pack_a_camp4();
        for r in 0..4u8 {
            m.set_x(S(20 + r), 0x100 + r as u64 * 4);
        }
        m.set_x(S(11), 0x400);
        m.set_x(S(12), 4); // 8 columns = 4 pairs
        m.run(&p, 10_000).unwrap();
        // panel nibble n = l*4 + r must hold val(r, l)
        for l in 0..8 {
            for r in 0..4 {
                let n = l * 4 + r;
                let byte = m.read_i8(0x400 + (n / 2) as u64) as u8;
                let nib = if n % 2 == 0 { byte & 0xf } else { byte >> 4 };
                assert_eq!(nib, val(r, l), "l={l} r={r}");
            }
        }
    }

    #[test]
    fn pack_b_rows_two_byte_variant() {
        let mut m = mach();
        for l in 0..6u64 {
            m.write_i8(0x700 + l * 8, l as i8);
            m.write_i8(0x700 + l * 8 + 1, (l + 100) as i8);
        }
        let p = pack_b_rows(2);
        m.set_x(S(10), 0x700);
        m.set_x(S(11), 0xd00);
        m.set_x(S(12), 6);
        m.set_x(S(13), 8);
        m.run(&p, 1000).unwrap();
        for l in 0..6u64 {
            assert_eq!(m.read_i8(0xd00 + l * 2), l as i8);
            assert_eq!(m.read_i8(0xd00 + l * 2 + 1), (l + 100) as i8);
        }
    }

    #[test]
    fn gemmlowp_b_pack_interleaves_k_pairs() {
        let mut m = mach();
        // 4 k-rows × 8 cols at stride 16
        for l in 0..4 {
            for j in 0..8 {
                m.write_i8(0x300 + l * 16 + j, (l * 8 + j) as i8);
            }
        }
        let p = pack_b_gemmlowp(8);
        m.set_x(S(20), 0x300);
        m.set_x(S(21), 0x310);
        m.set_x(S(11), 0x900);
        m.set_x(S(12), 2);
        m.set_x(S(14), 32);
        m.run(&p, 10_000).unwrap();
        // pair 0: {B[0][j], B[1][j]}
        for j in 0..8 {
            assert_eq!(m.read_i8(0x900 + 2 * j), j as i8);
            assert_eq!(m.read_i8(0x900 + 2 * j + 1), (8 + j) as i8);
        }
        // pair 1 starts at 16: {B[2][j], B[3][j]}
        for j in 0..8 {
            assert_eq!(m.read_i8(0x910 + 2 * j), (16 + j) as i8);
            assert_eq!(m.read_i8(0x910 + 2 * j + 1), (24 + j) as i8);
        }
    }

    #[test]
    fn gemmlowp_a_pack_pairs_rows() {
        let mut m = mach();
        for r in 0..4 {
            for l in 0..4 {
                m.write_i8(0x500 + r * 16 + l, (r * 4 + l) as i8);
            }
        }
        let p = pack_a_gemmlowp();
        for r in 0..4u8 {
            m.set_x(S(20 + r), 0x500 + r as u64 * 16);
        }
        m.set_x(S(11), 0xa00);
        m.set_x(S(12), 2);
        m.run(&p, 1000).unwrap();
        // pair 0: rows 0..4 elements (0,1)
        for r in 0..4 {
            assert_eq!(m.read_i8(0xa00 + r * 2), (r * 4) as i8);
            assert_eq!(m.read_i8(0xa00 + r * 2 + 1), (r * 4 + 1) as i8);
        }
        // pair 1 at offset 8: elements (2,3)
        for r in 0..4 {
            assert_eq!(m.read_i8(0xa08 + r * 2), (r * 4 + 2) as i8);
        }
    }

    #[test]
    fn mmla_b_pack_transposes_octets() {
        let mut m = mach();
        // 8 k-rows × 8 cols, ldb 8
        for l in 0..8 {
            for c in 0..8 {
                m.write_i8(0x600 + l * 8 + c, (l * 8 + c) as i8);
            }
        }
        let p = pack_b_mmla();
        for t in 0..8u8 {
            m.set_x(S(20 + t), 0x600 + t as u64 * 8);
        }
        m.set_x(S(11), 0xc00);
        m.set_x(S(12), 1);
        m.set_x(S(14), 64);
        m.run(&p, 10_000).unwrap();
        // dst[c*8 + t] = B[t][c]
        for c in 0..8 {
            for t in 0..8 {
                assert_eq!(m.read_i8(0xc00 + c * 8 + t), (t * 8 + c) as i8);
            }
        }
    }
}
