//! # camp-gemm — blocked GeMM kernels over the simulated vector machine
//!
//! Implements the software half of the paper's co-design: a
//! GotoBLAS/ulmBLAS-style blocked matrix multiplication (Fig. 3) whose
//! packing routines and macro-kernels are *simulated programs* written in
//! the VVA assembly of `camp-isa`, timed by `camp-pipeline`.
//!
//! Every method evaluated in the paper's §5.3 is implemented:
//!
//! | [`Method`] | paper baseline | data | register tile |
//! |---|---|---|---|
//! | `Camp8` | CAMP 8-bit | i8 | 4×4, k-step 16 (one `camp.s8`) |
//! | `Camp4` | CAMP 4-bit | i4 | 4×4, k-step 32 (one `camp.s4`) |
//! | `HandvInt32` | handv-int32 / edge BLIS-int32 | i32 | 4×16 |
//! | `HandvInt8` | handv-int8 (overflow-unsafe) | i8 | 4×64 |
//! | `Gemmlowp` | gemmlowp-like widening int8 | i8 | 4×32, k-step 2 |
//! | `OpenblasF32` | OpenBLAS SGEMM-like | f32 | 8×32 |
//! | `Mmla` | Arm FEAT_I8MM `smmla` kernel | i8 | 8×8, k-step 8 |
//!
//! The five-loop cache blocking runs on the host (3 outer loops, the
//! shared [`loops`] skeleton) and dispatches simulated packing programs
//! and macro-kernels (inner 2 loops plus micro-kernel — >99.9 % of
//! dynamic instructions) against a single persistent machine + cache
//! state, mirroring how the original code runs under gem5.
//!
//! Everything kernel-specific is described by a [`dispatch::MicroKernel`]
//! descriptor — geometry, element/accumulator types, packing programs,
//! macro-kernel builder, default blocking — so [`driver`] is a single
//! generic skeleton and a new kernel plugs in without touching it (see
//! the README's "kernel dispatch layer" section). The same skeleton and
//! the [`workspace::PackPool`] buffer arena also back `camp-core`'s
//! host-speed engine, whose native micro-kernels live in [`host`]: a
//! [`HostKernel`] tier (scalar / AVX2 / NEON) selected once from a
//! [`CpuFeatures`] runtime probe — the host-silicon mirror of the
//! simulator's [`dispatch::MicroKernel`] seam.
//!
//! For the Fig. 1 cache-miss-rate experiment the [`trace`] module
//! generates naive and blocked GeMM address streams analytically and
//! replays them against `camp-cache` without a pipeline.
//!
//! # Example
//!
//! ```
//! use camp_gemm::{simulate_gemm, GemmOptions, Method};
//! use camp_pipeline::CoreConfig;
//!
//! let r = simulate_gemm(CoreConfig::a64fx(), Method::Camp8, 32, 32, 64, &GemmOptions::default());
//! assert!(r.correct);
//! assert!(r.stats.cycles > 0);
//! ```

pub mod batch;
pub mod dispatch;
pub mod driver;
pub mod host;
pub mod kernels;
pub mod loops;
pub mod pack;
pub mod reference;
pub mod request;
pub mod trace;
pub mod weights;
pub mod workspace;

pub use batch::GemmProblem;
pub use dispatch::{AccKind, ElemKind, KernelGeometry, MicroKernel};
pub use driver::{
    simulate_gemm, simulate_gemm_batch, simulate_gemm_batch_on, simulate_gemm_on, CMatrix,
    GemmOptions, GemmResult, Method, SerialScheduler, SimBatchResult, SimJob, SimScheduler,
};
pub use host::{gemm_f32, CpuFeatures, HostGemmF32, HostKernel, HostTier, KernelInfo};
pub use reference::{
    gemm_f32_fma_ref, gemm_f32_ref, gemm_i32_ref, gemm_i8_wrapping_ref, SplitMix64,
};
pub use request::{GemmRequest, GemmRequestBuilder, Operand, RequestError, ResolvedRequest};
pub use weights::{DType, WeightHandle, WeightMeta, WeightRegistry, WeightSnapshot};
pub use workspace::{PackPool, PanelId, PersistentId};
